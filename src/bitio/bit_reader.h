// bit_reader.h - LSB-first bit-granular input stream (pairs with BitWriter).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>

namespace pastri::bitio {

/// Consumes bits in the order `BitWriter` produced them.
///
/// Out-of-range reads throw `std::out_of_range`; a corrupt or truncated
/// compressed stream therefore surfaces as an exception rather than UB.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `nbits` bits (0 <= nbits <= 64) as an unsigned value.
  std::uint64_t read_bits(unsigned nbits) {
    assert(nbits <= 64);
    if (nbits == 0) return 0;
    if (pos_ + nbits > 8 * data_.size()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < nbits) {
      const std::size_t byte = pos_ >> 3;
      const unsigned bit = static_cast<unsigned>(pos_ & 7);
      const unsigned take = std::min<unsigned>(nbits - got, 8 - bit);
      const std::uint64_t chunk =
          (static_cast<std::uint64_t>(data_[byte]) >> bit) &
          ((std::uint64_t{1} << take) - 1);
      out |= chunk << got;
      got += take;
      pos_ += take;
    }
    return out;
  }

  bool read_bit() { return read_bits(1) != 0; }

  /// Read a two's-complement signed value of `nbits` bits.
  std::int64_t read_signed(unsigned nbits) {
    std::uint64_t raw = read_bits(nbits);
    if (nbits < 64 && (raw & (std::uint64_t{1} << (nbits - 1)))) {
      raw |= ~((std::uint64_t{1} << nbits) - 1);  // sign extend
    }
    return static_cast<std::int64_t>(raw);
  }

  /// Read a unary-coded unsigned value (count of one-bits before a zero).
  unsigned read_unary() {
    unsigned v = 0;
    while (read_bit()) ++v;
    return v;
  }

  template <typename T>
  T read_raw() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if constexpr (sizeof(T) <= 8) {
      std::uint64_t tmp = read_bits(8 * sizeof(T));
      std::memcpy(&v, &tmp, sizeof(T));
    } else {
      auto* p = reinterpret_cast<unsigned char*>(&v);
      for (std::size_t i = 0; i < sizeof(T); ++i)
        p[i] = static_cast<unsigned char>(read_bits(8));
    }
    return v;
  }

  /// Skip forward to the next byte boundary.
  void align_to_byte() { pos_ = (pos_ + 7) & ~std::size_t{7}; }

  /// Skip `nbits` without decoding them.
  void skip_bits(std::size_t nbits) {
    if (pos_ + nbits > 8 * data_.size()) {
      throw std::out_of_range("BitReader: skip past end of stream");
    }
    pos_ += nbits;
  }

  std::size_t bit_position() const { return pos_; }
  std::size_t bits_remaining() const { return 8 * data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace pastri::bitio
