// bit_reader.h - LSB-first bit-granular input stream (pairs with BitWriter).
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>

namespace pastri::bitio {

/// Consumes bits in the order `BitWriter` produced them.
///
/// Two access families share the cursor:
///
///   * Checked reads (`read_bits`, `read_signed`, `read_unary`, ...)
///     throw `std::out_of_range` on an out-of-range read, so a corrupt
///     or truncated compressed stream surfaces as an exception rather
///     than UB.  All of them go through a word-granular fast path: one
///     unaligned 64-bit load + shift when at least 8 bytes remain, with
///     the original byte loop kept only for the stream tail.
///
///   * Speculative reads (`peek_bits`, `consume`, `take_bits`,
///     `take_signed`) never bounds-check individually.  Peeks beyond the
///     end of the span return zero bits (never touching out-of-range
///     memory), and `consume` may push the cursor logically past the
///     end.  Decoders use them to run a whole block payload with a
///     single hoisted bounds check -- `check_overrun()` at the end --
///     instead of one check per symbol; a corrupt stream still throws,
///     from the hoisted check.  Until `check_overrun()` passes, values
///     produced by speculative reads must be treated as tentative.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `nbits` bits (0 <= nbits <= 64) as an unsigned value.
  std::uint64_t read_bits(unsigned nbits) {
    assert(nbits <= 64);
    if (nbits == 0) return 0;
    if (pos_ + nbits > 8 * data_.size()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    const std::size_t byte = pos_ >> 3;
    const unsigned bit = static_cast<unsigned>(pos_ & 7);
    if (byte + 8 <= data_.size()) {
      // Word fast path: one unaligned load covers 64-bit >= 57 bits; a
      // read reaching further pulls its top bits from the next byte
      // (which the bounds check above proved is in range).
      std::uint64_t word;
      std::memcpy(&word, data_.data() + byte, 8);  // little-endian hosts
      word >>= bit;
      const unsigned have = 64 - bit;
      if (nbits > have) {
        word |= static_cast<std::uint64_t>(data_[byte + 8]) << have;
      }
      pos_ += nbits;
      return nbits == 64 ? word : word & mask_(nbits);
    }
    return read_bits_tail_(nbits);
  }

  bool read_bit() { return read_bits(1) != 0; }

  /// Read a two's-complement signed value of `nbits` bits.
  std::int64_t read_signed(unsigned nbits) {
    return sign_extend_(read_bits(nbits), nbits);
  }

  /// Read a run of `count` two's-complement values of `nbits` bits each
  /// (the fixed-width PQ/SQ arrays).  One bounds check for the whole
  /// run, then unchecked word loads.
  void read_signed_run(unsigned nbits, std::span<std::int64_t> out) {
    assert(nbits >= 1 && nbits <= 57);
    if (pos_ + nbits * out.size() > 8 * data_.size()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    // Windowed: one unaligned load serves floor(57/nbits)+ values; the
    // bounds check above already proved the whole run is in range.
    std::uint64_t window = 0;
    unsigned valid = 0;
    std::size_t i = 0;
    for (; i < out.size(); ++i) {
      if (valid < nbits) {
        const std::size_t byte = pos_ >> 3;
        if (byte + 8 > data_.size()) break;  // tail: peek path below
        std::uint64_t word;
        std::memcpy(&word, data_.data() + byte, 8);  // little-endian
        const unsigned bit = static_cast<unsigned>(pos_ & 7);
        window = word >> bit;
        valid = 64 - bit;  // >= 57 >= nbits
      }
      out[i] = sign_extend_(window & mask_(nbits), nbits);
      window >>= nbits;
      valid -= nbits;
      pos_ += nbits;
    }
    for (; i < out.size(); ++i) {
      out[i] = sign_extend_(peek_bits(nbits), nbits);
      pos_ += nbits;
    }
  }

  /// Read a unary-coded value: the count of one-bits before the
  /// terminating zero-bit, both consumed -- the exact inverse of
  /// `BitWriter::write_unary` (test_bitio pins the convention).
  /// Word-scan fast path: count trailing ones on the peeked word.
  unsigned read_unary() {
    unsigned v = 0;
    for (;;) {
      // Peeked bits beyond the end are zero, so a truncated run still
      // terminates; the position check below then rejects it.
      const unsigned ones = static_cast<unsigned>(
          std::countr_one(peek_bits(kMaxPeek)));
      if (ones < kMaxPeek) {
        pos_ += ones + 1;
        if (pos_ > 8 * data_.size()) {
          throw std::out_of_range("BitReader: read past end of stream");
        }
        return v + ones;
      }
      v += kMaxPeek;
      pos_ += kMaxPeek;
      if (pos_ >= 8 * data_.size()) {
        throw std::out_of_range("BitReader: read past end of stream");
      }
    }
  }

  // ---- Speculative access (hoisted bounds check) -----------------------

  /// Largest peek width a single unaligned load can serve at any bit
  /// offset (64 minus the worst-case 7-bit shift).
  static constexpr unsigned kMaxPeek = 57;

  /// Return the next `nbits` bits (<= kMaxPeek) without consuming them.
  /// Bits beyond the end of the span read as zero; never bounds-throws.
  std::uint64_t peek_bits(unsigned nbits) const {
    assert(nbits <= kMaxPeek);
    const std::size_t byte = pos_ >> 3;
    const unsigned bit = static_cast<unsigned>(pos_ & 7);
    std::uint64_t word = 0;
    if (byte + 8 <= data_.size()) {
      std::memcpy(&word, data_.data() + byte, 8);  // little-endian hosts
    } else if (byte < data_.size()) {
      std::memcpy(&word, data_.data() + byte, data_.size() - byte);
    }
    word >>= bit;
    return word & mask_(nbits);
  }

  /// Advance the cursor without a bounds check (may run logically past
  /// the end; pair with `check_overrun`).
  void consume(unsigned nbits) { pos_ += nbits; }

  /// Unchecked read of `nbits` (0 <= nbits <= 64): peek + consume, zero
  /// bits past the end.  Pair with `check_overrun`.
  std::uint64_t take_bits(unsigned nbits) {
    assert(nbits <= 64);
    if (nbits <= kMaxPeek) {
      const std::uint64_t v = peek_bits(nbits);
      pos_ += nbits;
      return v;
    }
    const std::uint64_t lo = peek_bits(32);
    pos_ += 32;
    const std::uint64_t hi = peek_bits(nbits - 32);
    pos_ += nbits - 32;
    return lo | (hi << 32);
  }

  /// Unchecked two's-complement read.  Pair with `check_overrun`.
  std::int64_t take_signed(unsigned nbits) {
    return sign_extend_(take_bits(nbits), nbits);
  }

  /// The underlying byte span.  Bulk decoders window it directly (one
  /// unaligned load per several symbols) instead of peeking per symbol.
  std::span<const std::uint8_t> data() const { return data_; }

  /// Checked bounds probe for bulk kernel unpacks: verify that `nbits`
  /// more bits exist from the cursor, throwing exactly like a checked
  /// read on truncation.  Callers then hand `data()`/`bit_position()`
  /// to a bulk decode kernel (core/simd) and `seek_unchecked` past the
  /// run -- one check for the whole run, like `read_signed_run`.
  void require_bits(std::size_t nbits) const {
    if (pos_ + nbits > 8 * data_.size()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
  }

  /// Unchecked absolute cursor move (speculative family; may land
  /// logically past the end -- pair with `check_overrun`).
  void seek_unchecked(std::size_t bitpos) { pos_ = bitpos; }

  /// Whether speculative consumption ran past the end of the span.
  bool overrun() const { return pos_ > 8 * data_.size(); }

  /// The hoisted bounds check: throws if any speculative read ran past
  /// the end of the payload.
  void check_overrun() const {
    if (overrun()) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
  }

  // ---- Misc ------------------------------------------------------------

  template <typename T>
  T read_raw() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if constexpr (sizeof(T) <= 8) {
      std::uint64_t tmp = read_bits(8 * sizeof(T));
      std::memcpy(&v, &tmp, sizeof(T));
    } else {
      auto* p = reinterpret_cast<unsigned char*>(&v);
      for (std::size_t i = 0; i < sizeof(T); ++i)
        p[i] = static_cast<unsigned char>(read_bits(8));
    }
    return v;
  }

  /// Skip forward to the next byte boundary.
  void align_to_byte() { pos_ = (pos_ + 7) & ~std::size_t{7}; }

  /// Skip `nbits` without decoding them.
  void skip_bits(std::size_t nbits) {
    if (pos_ + nbits > 8 * data_.size()) {
      throw std::out_of_range("BitReader: skip past end of stream");
    }
    pos_ += nbits;
  }

  std::size_t bit_position() const { return pos_; }
  std::size_t bits_remaining() const {
    const std::size_t total = 8 * data_.size();
    return pos_ <= total ? total - pos_ : 0;
  }

 private:
  static constexpr std::uint64_t mask_(unsigned nbits) {
    return nbits >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << nbits) - 1;
  }

  static std::int64_t sign_extend_(std::uint64_t raw, unsigned nbits) {
    if (nbits < 64 && nbits > 0 &&
        (raw & (std::uint64_t{1} << (nbits - 1)))) {
      raw |= ~((std::uint64_t{1} << nbits) - 1);
    }
    return static_cast<std::int64_t>(raw);
  }

  /// Byte-loop fallback for reads within 8 bytes of the stream tail
  /// (bounds already checked by the caller).
  std::uint64_t read_bits_tail_(unsigned nbits) {
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < nbits) {
      const std::size_t byte = pos_ >> 3;
      const unsigned bit = static_cast<unsigned>(pos_ & 7);
      const unsigned take = std::min<unsigned>(nbits - got, 8 - bit);
      const std::uint64_t chunk =
          (static_cast<std::uint64_t>(data_[byte]) >> bit) & mask_(take);
      out |= chunk << got;
      got += take;
      pos_ += take;
    }
    return out;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace pastri::bitio
