// varint.h - zigzag and LEB128-style variable-length integer helpers.
//
// Used by stream headers (block metadata) where field magnitudes vary by
// orders of magnitude between (ss|ss) and (ff|ff) blocks.
#pragma once

#include <cstdint>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri::bitio {

/// Map a signed integer to an unsigned one so small magnitudes stay small:
/// 0,-1,1,-2,2,... -> 0,1,2,3,4,...
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// LEB128 on top of the bit stream (7 payload bits + 1 continuation bit).
inline void write_varint(BitWriter& w, std::uint64_t v) {
  while (v >= 0x80) {
    w.write_bits((v & 0x7F) | 0x80, 8);
    v >>= 7;
  }
  w.write_bits(v, 8);
}

inline std::uint64_t read_varint(BitReader& r) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    const std::uint64_t byte = r.read_bits(8);
    v |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw std::out_of_range("varint too long");
  }
  return v;
}

inline void write_svarint(BitWriter& w, std::int64_t v) {
  write_varint(w, zigzag_encode(v));
}

inline std::int64_t read_svarint(BitReader& r) {
  return zigzag_decode(read_varint(r));
}

/// Exact number of bytes write_varint emits for `v` (1 byte per started
/// 7-bit group).  Used for stream-size accounting and offset-table math.
constexpr unsigned varint_width(std::uint64_t v) {
  unsigned w = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++w;
  }
  return w;
}

/// Minimum number of bits needed to store values in [0, n-1]; at least 1.
constexpr unsigned bits_for_count(std::uint64_t n) {
  unsigned b = 1;
  while ((std::uint64_t{1} << b) < n && b < 63) ++b;
  return b;
}

}  // namespace pastri::bitio
