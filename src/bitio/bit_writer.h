// bit_writer.h - LSB-first bit-granular output stream.
//
// All PaSTRI stream components (quantized pattern, scales, ECQ prefix
// codes) are written through this writer so that the compressed size is
// exactly the number of bits the quantization calculus of the paper
// (Section IV-B) predicts, rounded up to whole bytes only once per stream.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace pastri::bitio {

/// Accumulates bits least-significant-first into a growable byte buffer.
///
/// Writing order is little-endian within a byte: the first bit written
/// lands in bit 0 of byte 0.  `BitReader` consumes in the same order, so
/// the pair round-trips arbitrary bit sequences.
class BitWriter {
 public:
  BitWriter() = default;

  /// Append the low `nbits` bits of `value` (0 <= nbits <= 64).
  void write_bits(std::uint64_t value, unsigned nbits) {
    assert(nbits <= 64);
    if (nbits == 0) return;
    if (nbits < 64) value &= (std::uint64_t{1} << nbits) - 1;
    acc_ |= value << fill_;
    if (fill_ + nbits < 64) {
      fill_ += nbits;
      return;
    }
    const unsigned spill = fill_ + nbits - 64;
    flush_acc_();
    acc_ = spill ? (value >> (nbits - spill)) : 0;
    fill_ = spill;
  }

  /// Append a single bit.
  void write_bit(bool bit) { write_bits(bit ? 1u : 0u, 1); }

  /// Append a signed value in `nbits` bits using two's complement.
  void write_signed(std::int64_t value, unsigned nbits) {
    write_bits(static_cast<std::uint64_t>(value), nbits);
  }

  /// Append a run of fixed-width two's-complement values (the PQ/SQ
  /// arrays).  Bit-identical to calling write_signed per element.
  void write_signed_run(std::span<const std::int64_t> values,
                        unsigned nbits) {
    bytes_.reserve(bytes_.size() + (nbits * values.size()) / 8 + 8);
    for (std::int64_t v : values) {
      write_bits(static_cast<std::uint64_t>(v), nbits);
    }
  }

  /// Append an unsigned value in unary: `value` one-bits then a zero-bit.
  void write_unary(unsigned value) {
    for (unsigned i = 0; i < value; ++i) write_bit(true);
    write_bit(false);
  }

  /// Append the raw bytes of a trivially copyable value, byte-aligned
  /// relative to the value itself (the stream itself need not be aligned).
  template <typename T>
  void write_raw(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t tmp = 0;
    if constexpr (sizeof(T) <= 8) {
      std::memcpy(&tmp, &v, sizeof(T));
      write_bits(tmp, 8 * sizeof(T));
    } else {
      const auto* p = reinterpret_cast<const unsigned char*>(&v);
      for (std::size_t i = 0; i < sizeof(T); ++i) write_bits(p[i], 8);
    }
  }

  /// Append whole bytes (the stream need not be byte-aligned).
  void write_bytes(std::span<const std::uint8_t> bytes) {
    if (fill_ % 8 == 0) {
      // Fast path: flush the accumulator, then bulk-append.
      flush_partial_();
      bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
      return;
    }
    for (std::uint8_t b : bytes) write_bits(b, 8);
  }

  /// Number of bits written so far.
  std::size_t bit_count() const { return 8 * bytes_.size() + fill_; }

  /// Finish the stream: pads the final partial byte with zero bits.
  /// The writer may continue to be used afterwards (pad bits remain).
  std::vector<std::uint8_t> take() {
    align_to_byte();
    flush_partial_();
    std::vector<std::uint8_t> out = std::move(bytes_);
    bytes_.clear();
    acc_ = 0;
    fill_ = 0;
    return out;
  }

  /// Finish the stream like `take`, but keep ownership of the buffer:
  /// returns a view of the padded bytes, valid until the next write.
  /// With `restart()` this lets a driver reuse one writer (and its
  /// heap buffer) across many blocks without per-block allocation.
  std::span<const std::uint8_t> finish_view() {
    align_to_byte();
    flush_partial_();
    return bytes_;
  }

  /// Reset to an empty stream, retaining the buffer capacity.
  void restart() {
    bytes_.clear();
    acc_ = 0;
    fill_ = 0;
  }

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte() {
    const unsigned rem = fill_ % 8;
    if (rem != 0) write_bits(0, 8 - rem);
  }

 private:
  void flush_acc_() {
    const std::size_t n = bytes_.size();
    bytes_.resize(n + 8);
    std::memcpy(bytes_.data() + n, &acc_, 8);  // little-endian hosts only
    acc_ = 0;
  }

  void flush_partial_() {
    unsigned fill = fill_;
    std::uint64_t acc = acc_;
    while (fill >= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc & 0xFF));
      acc >>= 8;
      fill -= 8;
    }
    assert(fill == 0);
    acc_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;  // bits currently buffered in acc_
};

}  // namespace pastri::bitio
