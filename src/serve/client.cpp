#include "serve/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/pastri_capi.h"

namespace pastri::serve {
namespace {

int connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    throw std::runtime_error("cannot resolve " + host);
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, 0);
  if (fd < 0) {
    ::freeaddrinfo(res);
    throw std::runtime_error("socket() failed");
  }
  if (::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    ::freeaddrinfo(res);
    ::close(fd);
    throw std::runtime_error("cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  ::freeaddrinfo(res);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {
  write_all_(kHello, sizeof(kHello));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::write_all_(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw std::runtime_error("serve client: send failed");
  }
}

void Client::read_exact_(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    throw std::runtime_error("serve client: connection closed");
  }
}

std::pair<std::int32_t, std::vector<std::uint8_t>> Client::raw_frame(
    std::uint8_t opcode, const std::vector<std::uint8_t>& payload) {
  WireWriter head;
  head.u32(static_cast<std::uint32_t>(payload.size()));
  head.u8(opcode);
  write_all_(head.data().data(), head.data().size());
  if (!payload.empty()) write_all_(payload.data(), payload.size());

  std::uint8_t rhead[9];
  read_exact_(rhead, sizeof(rhead));
  std::uint32_t body_len;
  std::int32_t status;
  std::memcpy(&body_len, rhead, 4);
  std::memcpy(&status, rhead + 5, 4);
  if (body_len > kMaxFrameBytes) {
    throw std::runtime_error("serve client: oversized response");
  }
  std::vector<std::uint8_t> body(body_len);
  if (body_len != 0) read_exact_(body.data(), body_len);
  return {status, std::move(body)};
}

std::vector<std::uint8_t> Client::call_(
    std::uint8_t opcode, const std::vector<std::uint8_t>& payload) {
  auto [status, body] = raw_frame(opcode, payload);
  if (status != PASTRI_OK) {
    throw RpcError(status,
                   std::string("serve rpc failed: ") +
                       pastri_status_name(
                           static_cast<pastri_status>(status)));
  }
  return body;
}

std::vector<double> Client::values_response_(
    std::vector<std::uint8_t> body) {
  WireReader r(body);
  const std::uint64_t count = r.u64();
  if (r.remaining() != count * sizeof(double)) {
    throw std::runtime_error("serve client: malformed values response");
  }
  std::vector<double> values(count);
  std::memcpy(values.data(), r.rest(), r.remaining());
  return values;
}

StoreInfo Client::open_store(const std::string& path,
                             std::size_t cache_blocks,
                             std::size_t cache_shards) {
  WireWriter w;
  w.u8(0);
  w.u64(cache_blocks);
  w.u32(static_cast<std::uint32_t>(cache_shards));
  w.f64(0.0);
  w.str(path);
  const auto body =
      call_(static_cast<std::uint8_t>(Opcode::kOpenStore), w.data());
  WireReader r(body);
  StoreInfo info;
  info.id = r.u32();
  info.num_blocks = r.u64();
  info.block_size = r.u64();
  return info;
}

StoreInfo Client::open_eri(const std::string& molecule, double error_bound,
                           std::size_t cache_blocks,
                           std::size_t cache_shards) {
  WireWriter w;
  w.u8(1);
  w.u64(cache_blocks);
  w.u32(static_cast<std::uint32_t>(cache_shards));
  w.f64(error_bound);
  w.str(molecule);
  const auto body =
      call_(static_cast<std::uint8_t>(Opcode::kOpenStore), w.data());
  WireReader r(body);
  StoreInfo info;
  info.id = r.u32();
  info.num_blocks = r.u64();
  info.block_size = r.u64();
  return info;
}

std::vector<double> Client::get_block(std::uint32_t store,
                                      std::uint64_t block) {
  WireWriter w;
  w.u32(store);
  w.u64(block);
  return values_response_(
      call_(static_cast<std::uint8_t>(Opcode::kGetBlock), w.data()));
}

std::vector<double> Client::get_range(std::uint32_t store,
                                      std::uint64_t first,
                                      std::uint64_t count) {
  WireWriter w;
  w.u32(store);
  w.u64(first);
  w.u64(count);
  return values_response_(
      call_(static_cast<std::uint8_t>(Opcode::kGetRange), w.data()));
}

std::vector<double> Client::shell_block(std::uint32_t store,
                                        std::uint32_t p, std::uint32_t q,
                                        std::uint32_t u, std::uint32_t v) {
  WireWriter w;
  w.u32(store);
  w.u32(p);
  w.u32(q);
  w.u32(u);
  w.u32(v);
  return values_response_(
      call_(static_cast<std::uint8_t>(Opcode::kShellBlock), w.data()));
}

CacheStats Client::stats(std::uint32_t store) {
  WireWriter w;
  w.u32(store);
  const auto body =
      call_(static_cast<std::uint8_t>(Opcode::kStats), w.data());
  WireReader r(body);
  CacheStats st;
  st.hits = r.u64();
  st.misses = r.u64();
  st.bytes = r.u64();
  st.unique_blocks = r.u64();
  return st;
}

std::uint32_t Client::put_open(const std::string& path,
                               std::uint16_t num_sub_blocks,
                               std::uint16_t sub_block_size,
                               double error_bound) {
  WireWriter w;
  w.u16(num_sub_blocks);
  w.u16(sub_block_size);
  w.f64(error_bound);
  w.str(path);
  const auto body =
      call_(static_cast<std::uint8_t>(Opcode::kPutOpen), w.data());
  WireReader r(body);
  return r.u32();
}

void Client::put_chunk(std::uint32_t session,
                       const std::vector<double>& values) {
  WireWriter w;
  w.u32(session);
  w.bytes(values.data(), values.size() * sizeof(double));
  call_(static_cast<std::uint8_t>(Opcode::kPutChunk), w.data());
}

PutResult Client::put_close(std::uint32_t session) {
  WireWriter w;
  w.u32(session);
  const auto body =
      call_(static_cast<std::uint8_t>(Opcode::kPutClose), w.data());
  WireReader r(body);
  PutResult res;
  res.num_blocks = r.u64();
  res.input_bytes = r.u64();
  res.output_bytes = r.u64();
  return res;
}

void Client::ping() { call_(static_cast<std::uint8_t>(Opcode::kPing), {}); }

std::string Client::http_get(const std::string& host, std::uint16_t port,
                             const std::string& path) {
  const int fd = connect_tcp(host, port);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0) {
      ::close(fd);
      throw std::runtime_error("serve client: send failed");
    }
    sent += static_cast<std::size_t>(w);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return response;
}

}  // namespace pastri::serve
