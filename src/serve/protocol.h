// protocol.h - Wire format of the pastri_serve daemon.
//
// One TCP port carries two protocols, disambiguated by the first four
// bytes of a connection:
//
//   * "PSRV" -- the binary block protocol below.  The client sends the
//     4-byte hello once, then a sequence of frames; the server answers
//     each frame with exactly one response frame on the same socket.
//   * "GET " -- plaintext HTTP.  `GET /metrics` returns the process
//     metrics registry in Prometheus text exposition format; anything
//     else is 404.  The connection closes after one response.
//
// Request frame (all integers little-endian):
//     u32 payload_len   length of everything after the opcode byte
//     u8  opcode        Opcode below
//     u8  payload[payload_len]
//
// Response frame:
//     u32 body_len      length of everything after the status field
//     u8  opcode        echo of the request opcode
//     i32 status        pastri_status; body is empty unless PASTRI_OK
//     u8  body[body_len]
//
// Every malformed frame (unknown opcode, short payload, oversized
// length) yields a status response, never a dropped connection mid
// frame and never a crash; the server closes the connection after
// responding to a frame it could not trust the framing of.
//
// Request payloads / response bodies per opcode:
//
//   OPEN_STORE   u8 kind (0 = container/manifest path, 1 = ERI molecule
//                name), u64 cache_capacity_blocks, u32 cache_shards,
//                f64 error_bound (kind 1 only; <= 0 = default),
//                u16 name_len, name bytes
//             -> u32 store_id, u64 num_blocks, u64 block_size (0 for
//                ERI stores, whose blocks are per-quartet sized)
//   GET_BLOCK    u32 store_id, u64 block
//             -> u64 count, f64 values[count]
//   GET_RANGE    u32 store_id, u64 first, u64 count
//             -> u64 count, f64 values[count]
//   SHELL_BLOCK  u32 store_id, u32 p, u32 q, u32 u, u32 v
//             -> u64 count, f64 values[count]
//   STATS        u32 store_id
//             -> u64 hits, u64 misses, u64 bytes, u64 unique_blocks
//   PUT_OPEN     u16 num_sub_blocks, u16 sub_block_size,
//                f64 error_bound (<= 0 = default), u16 path_len, path
//             -> u32 session_id
//   PUT_CHUNK    u32 session_id, f64 values[] (whole payload; chunk
//                boundaries need not align to blocks)
//             -> empty (the response is the backpressure: it is sent
//                only after the chunk is queued, and queueing blocks
//                while the session's bounded queue is full)
//   PUT_CLOSE    u32 session_id
//             -> u64 num_blocks, u64 input_bytes, u64 output_bytes
//   PING         empty -> empty
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pastri::serve {

/// Binary-protocol connection hello ("PSRV").
inline constexpr std::uint8_t kHello[4] = {'P', 'S', 'R', 'V'};

/// Hard cap on a frame payload / response body.  Large enough for a
/// GET_RANGE of thousands of blocks, small enough that a corrupt
/// length field cannot make the server allocate unbounded memory.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class Opcode : std::uint8_t {
  kOpenStore = 0x01,
  kGetBlock = 0x02,
  kGetRange = 0x03,
  kShellBlock = 0x04,
  kStats = 0x05,
  kPutOpen = 0x06,
  kPutChunk = 0x07,
  kPutClose = 0x08,
  kPing = 0x09,
};

/// Little-endian append/read helpers shared by the server, the client,
/// and the protocol tests.  Readers throw std::out_of_range when the
/// buffer is short -- the server maps that to
/// PASTRI_ERR_INVALID_ARGUMENT rather than trusting a malformed frame.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_(&v, 2); }
  void u32(std::uint32_t v) { append_(&v, 4); }
  void u64(std::uint64_t v) { append_(&v, 8); }
  void i32(std::int32_t v) { append_(&v, 4); }
  void f64(double v) { append_(&v, 8); }
  void bytes(const void* data, std::size_t n) { append_(data, n); }
  void str(const std::string& s) {
    u16(static_cast<std::uint16_t>(s.size()));
    append_(s.data(), s.size());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append_(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}
  // A reader only borrows the buffer; refuse temporaries outright.
  explicit WireReader(std::vector<std::uint8_t>&&) = delete;

  std::uint8_t u8() { return take_<std::uint8_t>(); }
  std::uint16_t u16() { return take_<std::uint16_t>(); }
  std::uint32_t u32() { return take_<std::uint32_t>(); }
  std::uint64_t u64() { return take_<std::uint64_t>(); }
  std::int32_t i32() { return take_<std::int32_t>(); }
  double f64() { return take_<double>(); }

  std::string str() {
    const std::size_t n = u16();
    need_(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// The unread tail (e.g. the f64 payload of PUT_CHUNK).
  const std::uint8_t* rest() const { return data_ + pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  void expect_end() const {
    if (pos_ != size_) {
      throw std::out_of_range("protocol: trailing bytes in frame");
    }
  }

 private:
  template <typename T>
  T take_() {
    need_(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need_(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw std::out_of_range("protocol: short frame");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pastri::serve
