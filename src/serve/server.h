// server.h - The pastri_serve daemon core: a long-running TCP service
// exposing compressed block stores to concurrent clients over the
// frame protocol in protocol.h, plus a plaintext HTTP `GET /metrics`
// Prometheus endpoint on the same port.
//
// Threading model:
//   * one accept thread pushes connections into a bounded queue;
//   * a fixed pool of workers each serve one connection at a time,
//     frame by frame (connection-per-worker keeps request handling
//     allocation-light and makes per-connection state -- PUT sessions
//     -- trivially single-writer);
//   * admission control sheds load instead of queueing it unboundedly:
//     a full accept queue answers PASTRI_ERR_BUSY and closes, as do
//     store registry overflow and per-connection PUT session caps.
//
// Stores are registered server-wide and deduplicated by (kind, name):
// every client reading the same container shares one BlockStore and
// therefore one mutex-striped cache (core/sharded_cache.h) -- warm hits
// from different workers contend only on their key's shard, and cold
// misses decode outside any lock.  GET_RANGE batches into the
// OpenMP-parallel BlockReader range decoder.
//
// PUT sessions stream values into a StreamWriter through a bounded
// chunk queue drained by a per-session encoder thread; the PUT_CHUNK
// response is withheld while the queue is full, which backpressures the
// client through TCP instead of buffering unboundedly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/sharded_cache.h"

namespace pastri::serve {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
  /// (retrieve it with port() after start()).
  std::uint16_t port = 0;
  std::size_t num_workers = 4;
  /// Accepted connections waiting for a worker beyond this are answered
  /// PASTRI_ERR_BUSY and closed.
  std::size_t accept_queue_depth = 16;
  /// Server-wide cap on distinct open stores.
  std::size_t max_open_stores = 32;
  /// Per-connection cap on concurrent PUT sessions.
  std::size_t max_put_sessions = 4;
  /// Bounded depth (in chunks) of each PUT session's encode queue.
  std::size_t put_queue_depth = 8;
  /// Cache geometry for stores opened without an explicit config.
  CacheConfig default_cache{1024, 8};
};

class Server {
 public:
  explicit Server(const ServerConfig& config = {});
  ~Server();  ///< calls stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and spawn the accept thread + worker pool.  Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const;

  /// Stop accepting, finish in-flight frames, join all threads, drop
  /// all stores.  Idempotent; also run by the destructor.
  void stop();

  const ServerConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pastri::serve
