#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/pastri.h"
#include "core/pastri_capi.h"
#include "core/stream.h"
#include "io/block_store.h"
#include "obs/export.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "qc/compressed_eri_store.h"
#include "qc/molecule.h"
#include "qc/sto3g.h"
#include "serve/protocol.h"

namespace pastri::serve {
namespace {

struct ServeMetrics {
  obs::Counter requests = obs::registry().counter(obs::kServeRequests);
  obs::Histogram request_ns = obs::registry().histogram(obs::kServeRequestNs);
  obs::Counter bytes_in = obs::registry().counter(obs::kServeBytesIn);
  obs::Counter bytes_out = obs::registry().counter(obs::kServeBytesOut);
  obs::Counter shed = obs::registry().counter(obs::kServeShed);
  obs::Counter errors = obs::registry().counter(obs::kServeErrors);
  obs::Gauge active_connections =
      obs::registry().gauge(obs::kServeActiveConnections);
  obs::Gauge open_stores = obs::registry().gauge(obs::kServeOpenStores);
  obs::Gauge put_queue_depth =
      obs::registry().gauge(obs::kServePutQueueDepth);
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

/// A registered store: exactly one backing is non-null (same shape as
/// the pastri_store C handle, but shared across connections).
struct StoreEntry {
  std::unique_ptr<io::BlockStore> file;
  std::unique_ptr<qc::CompressedEriStore> eri;
};

/// Thrown by request handlers to produce a non-OK response frame.
struct RequestError : std::runtime_error {
  RequestError(pastri_status s, const std::string& what)
      : std::runtime_error(what), status(s) {}
  pastri_status status;
};

/// One streaming write in flight on a connection.  The handler thread
/// enqueues chunks; the encoder thread drains them into a StreamWriter.
/// The queue is bounded: enqueue blocks until space, which holds back
/// the PUT_CHUNK response and so backpressures the client via TCP.
class PutSession {
 public:
  PutSession(const std::string& path, const BlockSpec& spec,
             const Params& params, std::size_t queue_depth)
      : path_(path),
        out_(path, std::ios::binary),
        sink_(out_),
        writer_(sink_, spec, params),
        queue_depth_(queue_depth == 0 ? 1 : queue_depth) {
    if (!out_) {
      throw RequestError(PASTRI_ERR_IO, "cannot open " + path);
    }
    encoder_ = std::thread([this] { encode_loop_(); });
  }

  ~PutSession() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    if (encoder_.joinable()) encoder_.join();
  }

  void put(std::vector<double>&& chunk) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [this] { return queue_.size() < queue_depth_ || failed_; });
    if (failed_) throw RequestError(status_, error_);
    queue_.push_back(std::move(chunk));
    metrics().put_queue_depth.set(static_cast<double>(queue_.size()));
    cv_.notify_all();
  }

  /// Drain the queue, finish the container, and return the writer's
  /// stats.  The session is unusable afterwards.
  Stats close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    if (encoder_.joinable()) encoder_.join();
    if (failed_) throw RequestError(status_, error_);
    const std::size_t total = writer_.finish();
    out_.close();
    if (!out_) {
      throw RequestError(PASTRI_ERR_IO, "write failed: " + path_);
    }
    Stats stats = writer_.stats();
    stats.output_bytes = total;
    return stats;
  }

 private:
  void encode_loop_() {
    for (;;) {
      std::vector<double> chunk;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return !queue_.empty() || done_; });
        if (queue_.empty()) return;
        chunk = std::move(queue_.front());
        queue_.pop_front();
        metrics().put_queue_depth.set(static_cast<double>(queue_.size()));
      }
      cv_.notify_all();
      try {
        writer_.put_values(chunk);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        failed_ = true;
        status_ = PASTRI_ERR_INVALID_ARGUMENT;
        error_ = e.what();
        queue_.clear();
        cv_.notify_all();
        return;
      }
    }
  }

  std::string path_;
  std::ofstream out_;
  OstreamSink sink_;
  StreamWriter writer_;
  std::size_t queue_depth_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::vector<double>> queue_;
  bool done_ = false;
  bool failed_ = false;
  pastri_status status_ = PASTRI_OK;
  std::string error_;

  std::thread encoder_;
};

}  // namespace

struct Server::Impl {
  explicit Impl(const ServerConfig& cfg) : config(cfg) {}

  ServerConfig config;
  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> stopping{false};
  std::thread accept_thread;
  std::vector<std::thread> workers;

  // Bounded queue of accepted connections awaiting a worker.
  std::mutex conn_mu;
  std::condition_variable conn_cv;
  std::deque<int> conn_queue;

  // Server-wide store registry, deduplicated by (kind, name) so every
  // client of the same container shares one sharded cache.
  std::mutex store_mu;
  std::map<std::string, std::uint32_t> store_ids;
  std::vector<std::shared_ptr<StoreEntry>> stores;
  std::atomic<std::size_t> active_connections{0};

  // ---- socket helpers --------------------------------------------------

  /// Read exactly n bytes.  Returns false on orderly EOF before any
  /// byte; throws on mid-buffer EOF/error.  Honors the receive timeout
  /// so a stalled peer cannot pin a worker past stop().
  bool read_exact(int fd, void* buf, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, p + got, n - got, 0);
      if (r > 0) {
        got += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) {
        if (got == 0) return false;
        throw RequestError(PASTRI_ERR_CORRUPT_STREAM,
                           "connection closed mid-frame");
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stopping.load(std::memory_order_relaxed)) {
          throw RequestError(PASTRI_ERR_BUSY, "server stopping");
        }
        continue;
      }
      throw RequestError(PASTRI_ERR_IO, "recv failed");
    }
    metrics().bytes_in.add(n);
    return true;
  }

  void write_all(int fd, const void* buf, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
      if (w >= 0) {
        sent += static_cast<std::size_t>(w);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stopping.load(std::memory_order_relaxed)) {
          throw RequestError(PASTRI_ERR_BUSY, "server stopping");
        }
        continue;
      }
      throw RequestError(PASTRI_ERR_IO, "send failed");
    }
    metrics().bytes_out.add(n);
  }

  void send_response(int fd, std::uint8_t opcode, pastri_status status,
                     const std::vector<std::uint8_t>& body) {
    WireWriter head;
    head.u32(static_cast<std::uint32_t>(body.size()));
    head.u8(opcode);
    head.i32(static_cast<std::int32_t>(status));
    write_all(fd, head.data().data(), head.data().size());
    if (!body.empty()) write_all(fd, body.data(), body.size());
  }

  // ---- store registry --------------------------------------------------

  std::shared_ptr<StoreEntry> store(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(store_mu);
    if (id >= stores.size() || !stores[id]) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, "unknown store id");
    }
    return stores[id];
  }

  std::uint32_t register_store(const std::string& key,
                               std::shared_ptr<StoreEntry> entry) {
    std::lock_guard<std::mutex> lock(store_mu);
    if (auto it = store_ids.find(key); it != store_ids.end()) {
      return it->second;
    }
    if (stores.size() >= config.max_open_stores) {
      throw RequestError(PASTRI_ERR_BUSY, "open store cap reached");
    }
    const auto id = static_cast<std::uint32_t>(stores.size());
    stores.push_back(std::move(entry));
    store_ids.emplace(key, id);
    metrics().open_stores.set(static_cast<double>(stores.size()));
    return id;
  }

  /// Look up an existing store by registry key without creating one.
  std::shared_ptr<StoreEntry> find_store(const std::string& key,
                                         std::uint32_t* id) {
    std::lock_guard<std::mutex> lock(store_mu);
    if (auto it = store_ids.find(key); it != store_ids.end()) {
      *id = it->second;
      return stores[it->second];
    }
    return nullptr;
  }

  // ---- request handlers ------------------------------------------------

  std::vector<std::uint8_t> handle_open_store(WireReader& req) {
    const std::uint8_t kind = req.u8();
    const std::uint64_t cache_blocks = req.u64();
    const std::uint32_t cache_shards = req.u32();
    const double error_bound = req.f64();
    const std::string name = req.str();
    req.expect_end();
    if (kind > 1) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "unknown store kind");
    }
    const std::string key =
        (kind == 0 ? "file:" : "eri:" + std::to_string(error_bound) + ":") +
        name;
    CacheConfig cache = config.default_cache;
    if (cache_blocks != 0) {
      cache.capacity_blocks = static_cast<std::size_t>(cache_blocks);
      cache.num_shards = cache_shards == 0 ? cache.num_shards : cache_shards;
    }

    std::uint32_t id = 0;
    std::shared_ptr<StoreEntry> entry = find_store(key, &id);
    if (!entry) {
      entry = std::make_shared<StoreEntry>();
      try {
        if (kind == 0) {
          entry->file = std::make_unique<io::BlockStore>(name, cache);
        } else {
          Params params;
          if (error_bound > 0.0) params.error_bound = error_bound;
          const qc::Molecule mol = qc::make_molecule(name);
          const qc::BasisSet basis = qc::make_sto3g_basis(mol);
          entry->eri =
              std::make_unique<qc::CompressedEriStore>(basis, params);
          entry->eri->set_cache(cache);
        }
      } catch (const std::invalid_argument& e) {
        throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, e.what());
      } catch (const std::runtime_error& e) {
        throw RequestError(PASTRI_ERR_CORRUPT_STREAM, e.what());
      }
      id = register_store(key, entry);
    }

    WireWriter out;
    out.u32(id);
    if (entry->file) {
      out.u64(entry->file->num_blocks());
      out.u64(entry->file->block_size());
    } else {
      const std::uint64_t n = entry->eri->num_shells();
      out.u64(n * n * n * n);
      out.u64(0);
    }
    return out.take();
  }

  std::vector<std::uint8_t> handle_get_block(WireReader& req) {
    const std::uint32_t id = req.u32();
    const std::uint64_t block = req.u64();
    req.expect_end();
    const auto entry = store(id);
    if (!entry->file) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "not a file-backed store");
    }
    std::shared_ptr<const std::vector<double>> values;
    try {
      values = entry->file->block(static_cast<std::size_t>(block));
    } catch (const std::out_of_range& e) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, e.what());
    } catch (const std::runtime_error& e) {
      throw RequestError(PASTRI_ERR_CORRUPT_STREAM, e.what());
    }
    WireWriter out;
    out.u64(values->size());
    out.bytes(values->data(), values->size() * sizeof(double));
    return out.take();
  }

  std::vector<std::uint8_t> handle_get_range(WireReader& req) {
    const std::uint32_t id = req.u32();
    const std::uint64_t first = req.u64();
    const std::uint64_t count = req.u64();
    req.expect_end();
    const auto entry = store(id);
    if (!entry->file) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "not a file-backed store");
    }
    const std::uint64_t block_bytes =
        entry->file->block_size() * sizeof(double);
    if (block_bytes == 0 || count > kMaxFrameBytes / block_bytes) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "range larger than the frame cap");
    }
    std::vector<double> values;
    try {
      values = entry->file->range(static_cast<std::size_t>(first),
                                  static_cast<std::size_t>(count));
    } catch (const std::out_of_range& e) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, e.what());
    } catch (const std::runtime_error& e) {
      throw RequestError(PASTRI_ERR_CORRUPT_STREAM, e.what());
    }
    WireWriter out;
    out.u64(values.size());
    out.bytes(values.data(), values.size() * sizeof(double));
    return out.take();
  }

  std::vector<std::uint8_t> handle_shell_block(WireReader& req) {
    const std::uint32_t id = req.u32();
    const std::uint32_t p = req.u32();
    const std::uint32_t q = req.u32();
    const std::uint32_t u = req.u32();
    const std::uint32_t v = req.u32();
    req.expect_end();
    const auto entry = store(id);
    if (!entry->eri) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, "not an ERI store");
    }
    std::shared_ptr<const std::vector<double>> values;
    try {
      values = entry->eri->shell_block(p, q, u, v);
    } catch (const std::out_of_range& e) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, e.what());
    } catch (const std::invalid_argument& e) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, e.what());
    }
    WireWriter out;
    out.u64(values->size());
    out.bytes(values->data(), values->size() * sizeof(double));
    return out.take();
  }

  std::vector<std::uint8_t> handle_stats(WireReader& req) {
    const std::uint32_t id = req.u32();
    req.expect_end();
    const auto entry = store(id);
    const CacheStats st =
        entry->file ? entry->file->cache_stats() : entry->eri->cache_stats();
    WireWriter out;
    out.u64(st.hits);
    out.u64(st.misses);
    out.u64(st.bytes);
    out.u64(st.unique_blocks);
    return out.take();
  }

  // ---- connection loop -------------------------------------------------

  struct ConnectionState {
    std::map<std::uint32_t, std::unique_ptr<PutSession>> puts;
    std::uint32_t next_put_id = 1;
  };

  std::vector<std::uint8_t> handle_put_open(ConnectionState& conn,
                                            WireReader& req) {
    BlockSpec spec;
    spec.num_sub_blocks = req.u16();
    spec.sub_block_size = req.u16();
    const double error_bound = req.f64();
    const std::string path = req.str();
    req.expect_end();
    if (conn.puts.size() >= config.max_put_sessions) {
      throw RequestError(PASTRI_ERR_BUSY, "PUT session cap reached");
    }
    Params params;
    if (error_bound > 0.0) params.error_bound = error_bound;
    std::unique_ptr<PutSession> session;
    try {
      session = std::make_unique<PutSession>(path, spec, params,
                                             config.put_queue_depth);
    } catch (const std::invalid_argument& e) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT, e.what());
    }
    const std::uint32_t sid = conn.next_put_id++;
    conn.puts.emplace(sid, std::move(session));
    WireWriter out;
    out.u32(sid);
    return out.take();
  }

  std::vector<std::uint8_t> handle_put_chunk(ConnectionState& conn,
                                             WireReader& req) {
    const std::uint32_t sid = req.u32();
    const std::size_t bytes = req.remaining();
    if (bytes % sizeof(double) != 0) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "chunk is not a whole number of doubles");
    }
    auto it = conn.puts.find(sid);
    if (it == conn.puts.end()) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "unknown PUT session");
    }
    std::vector<double> chunk(bytes / sizeof(double));
    std::memcpy(chunk.data(), req.rest(), bytes);
    it->second->put(std::move(chunk));
    return {};
  }

  std::vector<std::uint8_t> handle_put_close(ConnectionState& conn,
                                             WireReader& req) {
    const std::uint32_t sid = req.u32();
    req.expect_end();
    auto it = conn.puts.find(sid);
    if (it == conn.puts.end()) {
      throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                         "unknown PUT session");
    }
    Stats stats;
    try {
      stats = it->second->close();
    } catch (...) {
      conn.puts.erase(it);
      throw;
    }
    conn.puts.erase(it);
    WireWriter out;
    out.u64(stats.num_blocks);
    out.u64(stats.input_bytes);
    out.u64(stats.output_bytes);
    return out.take();
  }

  /// One binary-protocol frame: returns false when the peer hung up.
  bool serve_frame(int fd, ConnectionState& conn) {
    std::uint8_t head[5];
    if (!read_exact(fd, head, 4)) return false;
    std::uint32_t payload_len;
    std::memcpy(&payload_len, head, 4);
    if (payload_len > kMaxFrameBytes) {
      // The framing itself cannot be trusted past this point; respond
      // and let the caller close the connection.
      metrics().errors.inc();
      send_response(fd, 0, PASTRI_ERR_INVALID_ARGUMENT, {});
      return false;
    }
    read_exact(fd, head + 4, 1);
    const std::uint8_t opcode = head[4];
    std::vector<std::uint8_t> payload(payload_len);
    if (payload_len != 0) read_exact(fd, payload.data(), payload_len);

    const auto start = std::chrono::steady_clock::now();
    metrics().requests.inc();
    pastri_status status = PASTRI_OK;
    std::vector<std::uint8_t> body;
    try {
      WireReader req(payload);
      switch (static_cast<Opcode>(opcode)) {
        case Opcode::kOpenStore: body = handle_open_store(req); break;
        case Opcode::kGetBlock: body = handle_get_block(req); break;
        case Opcode::kGetRange: body = handle_get_range(req); break;
        case Opcode::kShellBlock: body = handle_shell_block(req); break;
        case Opcode::kStats: body = handle_stats(req); break;
        case Opcode::kPutOpen: body = handle_put_open(conn, req); break;
        case Opcode::kPutChunk: body = handle_put_chunk(conn, req); break;
        case Opcode::kPutClose: body = handle_put_close(conn, req); break;
        case Opcode::kPing: req.expect_end(); break;
        default:
          throw RequestError(PASTRI_ERR_INVALID_ARGUMENT,
                             "unknown opcode");
      }
    } catch (const RequestError& e) {
      status = e.status;
      body.clear();
    } catch (const std::out_of_range&) {
      status = PASTRI_ERR_INVALID_ARGUMENT;  // short / trailing frame
      body.clear();
    } catch (const std::exception&) {
      status = PASTRI_ERR_INTERNAL;
      body.clear();
    }
    if (status != PASTRI_OK) metrics().errors.inc();
    send_response(fd, opcode, status, body);
    metrics().request_ns.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    return true;
  }

  void serve_http(int fd, const char hello[4]) {
    // Read the rest of the request head (we already have 4 bytes).
    std::string request(hello, 4);
    char c;
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t r = ::recv(fd, &c, 1, 0);
      if (r <= 0) {
        if (r < 0 && (errno == EINTR ||
                      ((errno == EAGAIN || errno == EWOULDBLOCK) &&
                       !stopping.load(std::memory_order_relaxed)))) {
          continue;
        }
        return;
      }
      request.push_back(c);
    }
    const std::size_t sp1 = request.find(' ');
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    const std::string path = sp2 == std::string::npos
                                 ? std::string()
                                 : request.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string body, head;
    if (path == "/metrics") {
      body = obs::export_prometheus(obs::registry().snapshot());
      head = "HTTP/1.1 200 OK\r\nContent-Type: text/plain; "
             "version=0.0.4\r\n";
    } else {
      body = "not found\n";
      head = "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n";
    }
    head += "Content-Length: " + std::to_string(body.size()) +
            "\r\nConnection: close\r\n\r\n";
    try {
      write_all(fd, head.data(), head.size());
      write_all(fd, body.data(), body.size());
    } catch (const RequestError&) {
      // Peer went away mid-response; nothing to clean up.
    }
  }

  void serve_connection(int fd) {
    metrics().active_connections.set(
        static_cast<double>(++active_connections));
    char hello[4];
    try {
      if (read_exact(fd, hello, 4)) {
        if (std::memcmp(hello, kHello, 4) == 0) {
          ConnectionState conn;
          while (!stopping.load(std::memory_order_relaxed)) {
            if (!serve_frame(fd, conn)) break;
          }
        } else if (std::memcmp(hello, "GET ", 4) == 0) {
          serve_http(fd, hello);
        }
        // Anything else: unknown protocol, close silently.
      }
    } catch (const RequestError&) {
      // Framing/transport failure: the connection is beyond saving.
      metrics().errors.inc();
    }
    ::close(fd);
    metrics().active_connections.set(
        static_cast<double>(--active_connections));
  }

  void worker_loop() {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(conn_mu);
        conn_cv.wait(lock, [this] {
          return !conn_queue.empty() ||
                 stopping.load(std::memory_order_relaxed);
        });
        if (conn_queue.empty()) return;  // stopping
        fd = conn_queue.front();
        conn_queue.pop_front();
      }
      serve_connection(fd);
    }
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listen socket closed by stop()
      }
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        return;
      }
      // Bound every read so a stalled peer cannot pin a worker forever.
      timeval tv{};
      tv.tv_usec = 200 * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(conn_mu);
        if (conn_queue.size() >= config.accept_queue_depth) {
          shed = true;
        } else {
          conn_queue.push_back(fd);
        }
      }
      if (shed) {
        metrics().shed.inc();
        try {
          send_response(fd, 0, PASTRI_ERR_BUSY, {});
        } catch (const RequestError&) {
        }
        ::close(fd);
      } else {
        conn_cv.notify_one();
      }
    }
  }
};

Server::Server(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  Impl& s = *impl_;
  if (s.listen_fd >= 0) throw std::logic_error("Server already started");
  s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (s.listen_fd < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(s.config.port);
  if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(s.listen_fd, 64) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw std::runtime_error("cannot bind 127.0.0.1:" +
                             std::to_string(s.config.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  s.bound_port = ntohs(addr.sin_port);

  const std::size_t workers =
      s.config.num_workers == 0 ? 1 : s.config.num_workers;
  s.workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    s.workers.emplace_back([&s] { s.worker_loop(); });
  }
  s.accept_thread = std::thread([&s] { s.accept_loop(); });
}

std::uint16_t Server::port() const { return impl_->bound_port; }

const ServerConfig& Server::config() const { return impl_->config; }

void Server::stop() {
  Impl& s = *impl_;
  if (s.listen_fd < 0) return;
  s.stopping.store(true, std::memory_order_relaxed);
  ::shutdown(s.listen_fd, SHUT_RDWR);
  ::close(s.listen_fd);
  if (s.accept_thread.joinable()) s.accept_thread.join();
  s.conn_cv.notify_all();
  for (std::thread& w : s.workers) {
    if (w.joinable()) w.join();
  }
  s.workers.clear();
  {
    std::lock_guard<std::mutex> lock(s.conn_mu);
    for (int fd : s.conn_queue) ::close(fd);
    s.conn_queue.clear();
  }
  {
    std::lock_guard<std::mutex> lock(s.store_mu);
    s.stores.clear();
    s.store_ids.clear();
    metrics().open_stores.set(0.0);
  }
  s.listen_fd = -1;
}

}  // namespace pastri::serve
