// client.h - Blocking client for the pastri_serve binary protocol.
//
// One Client owns one TCP connection; calls are synchronous
// request/response pairs, so a Client must not be shared across threads
// without external serialization (open one Client per thread instead --
// the server is built for many concurrent connections).  Non-OK
// response statuses surface as RpcError; transport failures as
// std::runtime_error.
//
// Used by bench_serve, the Serve test suite, and `pastri_tool
// serve-client`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/sharded_cache.h"
#include "serve/protocol.h"

namespace pastri::serve {

/// A response frame with a non-OK pastri_status.
struct RpcError : std::runtime_error {
  RpcError(std::int32_t s, const std::string& what)
      : std::runtime_error(what), status(s) {}
  std::int32_t status;
};

struct StoreInfo {
  std::uint32_t id = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t block_size = 0;  ///< 0 for ERI stores
};

struct PutResult {
  std::uint64_t num_blocks = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
};

class Client {
 public:
  /// Connect and send the binary-protocol hello.  Throws
  /// std::runtime_error when the daemon is unreachable.
  Client(const std::string& host, std::uint16_t port);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  StoreInfo open_store(const std::string& path,
                       std::size_t cache_blocks = 0,
                       std::size_t cache_shards = 0);
  StoreInfo open_eri(const std::string& molecule, double error_bound = 0.0,
                     std::size_t cache_blocks = 0,
                     std::size_t cache_shards = 0);
  std::vector<double> get_block(std::uint32_t store, std::uint64_t block);
  std::vector<double> get_range(std::uint32_t store, std::uint64_t first,
                                std::uint64_t count);
  std::vector<double> shell_block(std::uint32_t store, std::uint32_t p,
                                  std::uint32_t q, std::uint32_t u,
                                  std::uint32_t v);
  CacheStats stats(std::uint32_t store);
  std::uint32_t put_open(const std::string& path,
                         std::uint16_t num_sub_blocks,
                         std::uint16_t sub_block_size,
                         double error_bound = 0.0);
  void put_chunk(std::uint32_t session,
                 const std::vector<double>& values);
  PutResult put_close(std::uint32_t session);
  void ping();

  /// Send an arbitrary frame and return {status, body} -- the fuzz
  /// tests use this to probe malformed payloads.
  std::pair<std::int32_t, std::vector<std::uint8_t>> raw_frame(
      std::uint8_t opcode, const std::vector<std::uint8_t>& payload);

  /// Plain HTTP GET against the same port on a throwaway connection
  /// (static: the metrics endpoint is one-request-per-connection).
  /// Returns the full response (status line, headers, body).
  static std::string http_get(const std::string& host, std::uint16_t port,
                              const std::string& path);

 private:
  std::vector<std::uint8_t> call_(std::uint8_t opcode,
                                  const std::vector<std::uint8_t>& payload);
  std::vector<double> values_response_(std::vector<std::uint8_t> body);
  void write_all_(const void* buf, std::size_t n);
  void read_exact_(void* buf, std::size_t n);

  int fd_ = -1;
};

}  // namespace pastri::serve
