// metrics.h - Z-Checker-style compression quality assessment.
//
// The paper evaluates with Z-Checker (Tao et al. 2017): compression
// ratio, bit rate (64/ratio for doubles), PSNR = 20 log10(range/sqrt(MSE))
// and point-wise maximum error.  This module computes those plus the
// supporting statistics the analysis benches need.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pastri::zchecker {

struct ErrorStats {
  std::size_t n = 0;
  double max_abs_error = 0.0;
  double mse = 0.0;
  double value_range = 0.0;  ///< max - min of the original data
  double psnr_db = 0.0;      ///< 20 log10(range / rmse)
  double mean_abs_error = 0.0;
};

/// Compare original vs reconstructed data point-wise.
ErrorStats compare(std::span<const double> original,
                   std::span<const double> reconstructed);

struct RatePoint {
  double error_bound = 0.0;
  double ratio = 0.0;     ///< original bytes / compressed bytes
  double bitrate = 0.0;   ///< bits per value = 64 / ratio
  double psnr_db = 0.0;
};

/// Compression ratio and bit rate for double data.
double compression_ratio(std::size_t original_bytes,
                         std::size_t compressed_bytes);
double bitrate_bits_per_value(std::size_t original_bytes,
                              std::size_t compressed_bytes);

/// Histogram of values into `bins` equal-width bins over [lo, hi].
std::vector<std::size_t> histogram(std::span<const double> data, double lo,
                                   double hi, std::size_t bins);

/// Pearson correlation between two equal-length series (used to verify
/// the sub-block pattern property in tests).
double pearson_correlation(std::span<const double> a,
                           std::span<const double> b);

/// Lag-k autocorrelation of a series.  Z-Checker reports the
/// autocorrelation of compression errors: values near zero mean the
/// error behaves like white noise (desirable -- no structured artifact).
double autocorrelation(std::span<const double> x, std::size_t lag);

/// Autocorrelation of the point-wise compression error at lags 1..max_lag.
std::vector<double> error_autocorrelation(
    std::span<const double> original, std::span<const double> reconstructed,
    std::size_t max_lag);

}  // namespace pastri::zchecker
