#include "zchecker/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pastri::zchecker {

ErrorStats compare(std::span<const double> original,
                   std::span<const double> reconstructed) {
  assert(original.size() == reconstructed.size());
  ErrorStats s;
  s.n = original.size();
  if (s.n == 0) return s;

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum_sq = 0.0, sum_abs = 0.0;
  for (std::size_t i = 0; i < s.n; ++i) {
    const double e = original[i] - reconstructed[i];
    s.max_abs_error = std::max(s.max_abs_error, std::abs(e));
    sum_sq += e * e;
    sum_abs += std::abs(e);
    lo = std::min(lo, original[i]);
    hi = std::max(hi, original[i]);
  }
  s.mse = sum_sq / static_cast<double>(s.n);
  s.mean_abs_error = sum_abs / static_cast<double>(s.n);
  s.value_range = hi - lo;
  const double rmse = std::sqrt(s.mse);
  s.psnr_db = rmse > 0.0 && s.value_range > 0.0
                  ? 20.0 * std::log10(s.value_range / rmse)
                  : std::numeric_limits<double>::infinity();
  return s;
}

double compression_ratio(std::size_t original_bytes,
                         std::size_t compressed_bytes) {
  return compressed_bytes == 0
             ? 0.0
             : static_cast<double>(original_bytes) /
                   static_cast<double>(compressed_bytes);
}

double bitrate_bits_per_value(std::size_t original_bytes,
                              std::size_t compressed_bytes) {
  const double ratio = compression_ratio(original_bytes, compressed_bytes);
  return ratio > 0.0 ? 64.0 / ratio : 0.0;
}

std::vector<std::size_t> histogram(std::span<const double> data, double lo,
                                   double hi, std::size_t bins) {
  assert(bins > 0 && hi > lo);
  std::vector<std::size_t> h(bins, 0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double v : data) {
    if (v < lo || v >= hi) continue;
    ++h[static_cast<std::size_t>((v - lo) * scale)];
  }
  return h;
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom > 0.0 ? cov / denom : 0.0;
}

double autocorrelation(std::span<const double> x, std::size_t lag) {
  const std::size_t n = x.size();
  if (lag >= n || n < 2) return 0.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    den += (x[i] - mean) * (x[i] - mean);
  }
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (x[i] - mean) * (x[i + lag] - mean);
  }
  return den > 0.0 ? num / den : 0.0;
}

std::vector<double> error_autocorrelation(
    std::span<const double> original,
    std::span<const double> reconstructed, std::size_t max_lag) {
  assert(original.size() == reconstructed.size());
  std::vector<double> err(original.size());
  for (std::size_t i = 0; i < err.size(); ++i) {
    err[i] = original[i] - reconstructed[i];
  }
  std::vector<double> out;
  out.reserve(max_lag);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    out.push_back(autocorrelation(err, lag));
  }
  return out;
}

}  // namespace pastri::zchecker
