#include "zchecker/dataset_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "core/scaling.h"

namespace pastri::zchecker {

DatasetStats analyze_dataset(const EriDataset& ds) {
  DatasetStats st;
  st.num_blocks = ds.num_blocks;
  st.min_nonzero_extremum = std::numeric_limits<double>::infinity();

  const pastri::BlockSpec spec{ds.shape.num_sub_blocks(),
                               ds.shape.sub_block_size()};
  double log_sum = 0.0, dev_sum = 0.0;
  std::size_t nonzero = 0;

  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    const auto block = ds.block(b);
    double mx = 0.0;
    for (double v : block) mx = std::max(mx, std::abs(v));
    if (mx == 0.0) {
      ++st.zero_blocks;
      continue;
    }
    ++nonzero;
    st.min_nonzero_extremum = std::min(st.min_nonzero_extremum, mx);
    st.max_extremum = std::max(st.max_extremum, mx);
    const double lg = std::log10(mx);
    log_sum += lg;
    const int decade = static_cast<int>(std::floor(lg));
    if (decade >= -16 && decade < 0) {
      ++st.extremum_decades[static_cast<std::size_t>(decade + 16)];
    }

    // ER pattern quality.
    const auto sel =
        pastri::select_pattern(block, spec, pastri::ScalingMetric::ER);
    const auto pattern = block.subspan(
        sel.pattern_sub_block * spec.sub_block_size, spec.sub_block_size);
    double dev = 0.0;
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        dev = std::max(dev,
                       std::abs(block[j * spec.sub_block_size + i] -
                                sel.scales[j] * pattern[i]));
      }
    }
    const double rel = dev / mx;
    dev_sum += rel;
    st.worst_relative_deviation =
        std::max(st.worst_relative_deviation, rel);
  }
  if (nonzero > 0) {
    st.mean_log10_extremum = log_sum / static_cast<double>(nonzero);
    st.mean_relative_deviation = dev_sum / static_cast<double>(nonzero);
  }
  if (st.zero_blocks == st.num_blocks) st.min_nonzero_extremum = 0.0;
  return st;
}

void print_dataset_stats(const DatasetStats& st) {
  std::printf("blocks        : %zu (%zu screened to zero, %.1f%%)\n",
              st.num_blocks, st.zero_blocks,
              st.num_blocks
                  ? 100.0 * st.zero_blocks / st.num_blocks
                  : 0.0);
  std::printf("block extrema : %.3e .. %.3e (mean decade 1e%.1f)\n",
              st.min_nonzero_extremum, st.max_extremum,
              st.mean_log10_extremum);
  std::printf("ER deviation  : mean %.2e, worst %.2e (relative to "
              "block extremum)\n",
              st.mean_relative_deviation, st.worst_relative_deviation);
  std::printf("extremum decades (1e-16..1e0):");
  for (std::size_t i = 0; i < st.extremum_decades.size(); ++i) {
    std::printf(" %zu", st.extremum_decades[i]);
  }
  std::printf("\n");
}

}  // namespace pastri::zchecker
