// dataset_stats.h - Descriptive statistics of ERI datasets.
//
// The paper's analysis (Sections III-B and IV-C) rests on population
// properties of the block stream: how block magnitudes are distributed,
// how many quartets screen out, and how well the scaled pattern explains
// each block.  This module computes those summaries for inspection tools
// and benches.
#pragma once

#include <array>
#include <cstddef>

#include "qc/dataset.h"

namespace pastri::zchecker {

using qc::EriDataset;

struct DatasetStats {
  std::size_t num_blocks = 0;
  std::size_t zero_blocks = 0;        ///< exactly-zero (screened) blocks
  double min_nonzero_extremum = 0.0;  ///< smallest nonzero block max|v|
  double max_extremum = 0.0;          ///< largest block max|v|
  double mean_log10_extremum = 0.0;   ///< over nonzero blocks

  /// Histogram of log10(block extremum) in [-16, 0), one decade per bin.
  std::array<std::size_t, 16> extremum_decades{};

  /// Pattern quality: per-block max deviation from the ER scaled pattern,
  /// relative to the block extremum; summarized as mean and worst.
  double mean_relative_deviation = 0.0;
  double worst_relative_deviation = 0.0;
};

/// Scan a dataset (single pass per block).
DatasetStats analyze_dataset(const EriDataset& ds);

/// Pretty-print to stdout (used by eri_dataset_tool).
void print_dataset_stats(const DatasetStats& stats);

}  // namespace pastri::zchecker
