#include "compressors/compressor_iface.h"

#include "compressors/sz/sz.h"
#include "compressors/zfp/zfp.h"
#include "core/pastri.h"

namespace pastri::baselines {
namespace {

class PastriAdapter final : public LossyCompressor {
 public:
  explicit PastriAdapter(const pastri::BlockSpec& spec) : spec_(spec) {}

  std::string name() const override { return "PaSTRI"; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     double eb) const override {
    pastri::Params p;
    p.error_bound = eb;
    return pastri::compress(data, spec_, p);
  }

  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override {
    return pastri::decompress(stream);
  }

 private:
  pastri::BlockSpec spec_;
};

class SzAdapter final : public LossyCompressor {
 public:
  std::string name() const override { return "SZ"; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     double eb) const override {
    SzParams p;
    p.error_bound = eb;
    return sz_compress(data, p);
  }

  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override {
    return sz_decompress(stream);
  }
};

class ZfpAdapter final : public LossyCompressor {
 public:
  std::string name() const override { return "ZFP"; }

  std::vector<std::uint8_t> compress(std::span<const double> data,
                                     double eb) const override {
    ZfpParams p;
    p.tolerance = eb;
    return zfp_compress(data, p);
  }

  std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const override {
    return zfp_decompress(stream);
  }
};

}  // namespace

std::unique_ptr<LossyCompressor> make_pastri_compressor(
    const pastri::BlockSpec& spec) {
  return std::make_unique<PastriAdapter>(spec);
}
std::unique_ptr<LossyCompressor> make_sz_compressor() {
  return std::make_unique<SzAdapter>();
}
std::unique_ptr<LossyCompressor> make_zfp_compressor() {
  return std::make_unique<ZfpAdapter>();
}

}  // namespace pastri::baselines
