#include "compressors/lossless/lzss.h"

#include <array>
#include <cstring>
#include <stdexcept>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri::baselines {
namespace {

constexpr std::uint32_t kMagic = 0x53535A4C;  // "LZSS"
constexpr std::size_t kWindow = 1u << 15;     // 32 KiB
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashSize = 1u << 16;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;
}

}  // namespace

std::vector<std::uint8_t> lzss_compress(std::span<const std::uint8_t> data) {
  bitio::BitWriter w;
  w.write_bits(kMagic, 32);
  w.write_bits(data.size(), 64);

  // Hash chains: head per hash bucket, prev per position (within window).
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(data.size(), -1);

  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t best_len = 0, best_dist = 0;
    if (i + kMinMatch <= data.size()) {
      const std::uint32_t h = hash4(&data[i]);
      std::int64_t cand = head[h];
      int chain = 64;  // bounded chain walk keeps this O(n)
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t maxl = std::min(kMaxMatch, data.size() - i);
        while (len < maxl && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
        }
        cand = prev[c];
      }
    }

    if (best_len >= kMinMatch) {
      w.write_bit(true);
      w.write_bits(best_dist - 1, 15);
      w.write_bits(best_len - kMinMatch, 8);
      // Insert all covered positions into the hash chains.
      const std::size_t end = i + best_len;
      for (; i < end && i + 4 <= data.size(); ++i) {
        const std::uint32_t h = hash4(&data[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      i = end;
    } else {
      w.write_bit(false);
      w.write_bits(data[i], 8);
      if (i + 4 <= data.size()) {
        const std::uint32_t h = hash4(&data[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }
  }
  return w.take();
}

std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("LZSS: bad stream magic");
  }
  const std::uint64_t n = r.read_bits(64);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    if (r.read_bit()) {
      const std::size_t dist = static_cast<std::size_t>(r.read_bits(15)) + 1;
      const std::size_t len =
          static_cast<std::size_t>(r.read_bits(8)) + kMinMatch;
      if (dist > out.size()) throw std::runtime_error("LZSS: bad distance");
      const std::size_t start = out.size() - dist;
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[start + k]);  // overlapping copies allowed
      }
    } else {
      out.push_back(static_cast<std::uint8_t>(r.read_bits(8)));
    }
  }
  if (out.size() != n) throw std::runtime_error("LZSS: length mismatch");
  return out;
}

}  // namespace pastri::baselines
