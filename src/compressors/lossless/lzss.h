// lzss.h - Deflate-style lossless baseline (LZ77 window + flagged
// literal/match tokens).
//
// Stands in for the GZIP/DEFLATE class of lossless compressors the paper
// dismisses in Sections I-II: on double-precision scientific data their
// ratio is limited (~1.1-2x) because mantissa bytes look random.  The
// `bench_ablation_lossless` experiment reproduces that observation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pastri::baselines {

/// Compress arbitrary bytes (greedy LZSS, 32 KiB window, 3..258 match).
std::vector<std::uint8_t> lzss_compress(std::span<const std::uint8_t> data);

/// Inverse of lzss_compress.  Throws std::runtime_error on corrupt input.
std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> stream);

}  // namespace pastri::baselines
