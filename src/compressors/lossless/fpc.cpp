#include "compressors/lossless/fpc.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri::baselines {
namespace {

constexpr std::uint32_t kMagic = 0x43504600;  // "FPC"

/// The two FPC predictors, shared verbatim by encoder and decoder so the
/// tables evolve identically on both sides.
class Predictors {
 public:
  explicit Predictors(unsigned table_log2)
      : mask_((std::size_t{1} << table_log2) - 1),
        fcm_(mask_ + 1, 0),
        dfcm_(mask_ + 1, 0) {}

  std::uint64_t predict_fcm() const { return fcm_[fcm_hash_]; }
  std::uint64_t predict_dfcm() const {
    return dfcm_[dfcm_hash_] + last_;
  }

  void update(std::uint64_t actual) {
    fcm_[fcm_hash_] = actual;
    fcm_hash_ = ((fcm_hash_ << 6) ^ (actual >> 48)) & mask_;
    const std::uint64_t delta = actual - last_;
    dfcm_[dfcm_hash_] = delta;
    dfcm_hash_ = ((dfcm_hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = actual;
  }

 private:
  std::size_t mask_;
  std::vector<std::uint64_t> fcm_, dfcm_;
  std::size_t fcm_hash_ = 0, dfcm_hash_ = 0;
  std::uint64_t last_ = 0;
};

/// Leading-zero-byte count, with FPC's quirk: a count of 4 is encoded as
/// 3 (the 3-bit header can express only 8 of the 9 possibilities, and 4
/// is the rarest).
unsigned lzb_code(std::uint64_t residual) {
  unsigned bytes =
      residual == 0 ? 8u
                    : static_cast<unsigned>(std::countl_zero(residual)) / 8;
  if (bytes == 4) bytes = 3;
  return bytes >= 4 ? bytes - 1 : bytes;  // map {0..3,5..8} -> 0..7
}

unsigned lzb_from_code(unsigned code) {
  return code >= 4 ? code + 1 : code;  // inverse of lzb_code
}

}  // namespace

std::vector<std::uint8_t> fpc_compress(std::span<const double> data,
                                       const FpcParams& params) {
  if (params.table_log2 < 4 || params.table_log2 > 24) {
    throw std::invalid_argument("FPC: table_log2 out of [4, 24]");
  }
  bitio::BitWriter w;
  w.write_bits(kMagic, 32);
  w.write_bits(params.table_log2, 8);
  w.write_bits(data.size(), 64);

  Predictors pred(params.table_log2);
  for (double d : data) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, 8);
    const std::uint64_t r1 = bits ^ pred.predict_fcm();
    const std::uint64_t r2 = bits ^ pred.predict_dfcm();
    const bool use_dfcm = r2 < r1;
    const std::uint64_t residual = use_dfcm ? r2 : r1;
    const unsigned code = lzb_code(residual);
    const unsigned payload_bytes = 8 - lzb_from_code(code);
    w.write_bit(use_dfcm);
    w.write_bits(code, 3);
    if (payload_bytes > 0) w.write_bits(residual, 8 * payload_bytes);
    pred.update(bits);
  }
  return w.take();
}

std::vector<double> fpc_decompress(std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("FPC: bad stream magic");
  }
  const unsigned table_log2 = static_cast<unsigned>(r.read_bits(8));
  if (table_log2 < 4 || table_log2 > 24) {
    throw std::runtime_error("FPC: corrupt header");
  }
  const std::uint64_t n = r.read_bits(64);

  Predictors pred(table_log2);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool use_dfcm = r.read_bit();
    const unsigned code = static_cast<unsigned>(r.read_bits(3));
    const unsigned payload_bytes = 8 - lzb_from_code(code);
    const std::uint64_t residual =
        payload_bytes > 0 ? r.read_bits(8 * payload_bytes) : 0;
    const std::uint64_t prediction =
        use_dfcm ? pred.predict_dfcm() : pred.predict_fcm();
    const std::uint64_t bits = prediction ^ residual;
    std::memcpy(&out[i], &bits, 8);
    pred.update(bits);
  }
  return out;
}

}  // namespace pastri::baselines
