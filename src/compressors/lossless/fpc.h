// fpc.h - FPC, the high-speed lossless double compressor of Burtscher &
// Ratanaworabhan (IEEE ToC 2009), cited as reference [9] of the paper's
// related work on lossless floating-point compression.
//
// FPC predicts each double with two hash-table predictors (FCM and
// DFCM), XORs the better prediction with the actual bits, and stores a
// 4-bit header (predictor selector + leading-zero-byte count) plus the
// nonzero residual bytes.  On ERI data its ratio sits in the 1.1-2x
// band the paper quotes for lossless compressors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pastri::baselines {

struct FpcParams {
  /// log2 of the predictor hash-table size (FPC's "level"); bigger
  /// tables predict better and cost memory.  Range [4, 24].
  unsigned table_log2 = 16;
};

std::vector<std::uint8_t> fpc_compress(std::span<const double> data,
                                       const FpcParams& params = {});

std::vector<double> fpc_decompress(std::span<const std::uint8_t> stream);

}  // namespace pastri::baselines
