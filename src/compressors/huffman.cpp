#include "compressors/huffman.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

#include "bitio/varint.h"

namespace pastri::baselines {
namespace {

constexpr unsigned kMaxCodeLen = 58;

}  // namespace

HuffmanCodec HuffmanCodec::from_frequencies(
    std::span<const std::uint64_t> freq) {
  HuffmanCodec h;
  h.lengths_.assign(freq.size(), 0);

  // Heap-based Huffman tree; node = (weight, id).  Ids < n are leaves.
  struct Node {
    std::uint64_t weight;
    std::uint32_t id;
    bool operator>(const Node& o) const {
      return weight != o.weight ? weight > o.weight : id > o.id;
    }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<>> heap;
  std::vector<std::array<std::int64_t, 2>> children;
  children.reserve(freq.size());
  std::uint32_t next_id = static_cast<std::uint32_t>(freq.size());
  for (std::uint32_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) heap.push({freq[s], s});
  }
  if (heap.empty()) {
    h.build_canonical_();
    return h;
  }
  if (heap.size() == 1) {
    h.lengths_[heap.top().id] = 1;
    h.build_canonical_();
    return h;
  }
  std::vector<std::uint32_t> internal_first;
  while (heap.size() > 1) {
    const Node a = heap.top();
    heap.pop();
    const Node b = heap.top();
    heap.pop();
    children.push_back({a.id, b.id});
    heap.push({a.weight + b.weight, next_id++});
  }
  // Depth-first traversal to assign lengths.
  struct Item {
    std::uint32_t id;
    unsigned depth;
  };
  std::vector<Item> stack{{heap.top().id, 0}};
  const std::uint32_t nleaves = static_cast<std::uint32_t>(freq.size());
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    if (it.id < nleaves) {
      h.lengths_[it.id] =
          static_cast<std::uint8_t>(std::min(it.depth, kMaxCodeLen));
      continue;
    }
    const auto& ch = children[it.id - nleaves];
    stack.push_back({static_cast<std::uint32_t>(ch[0]), it.depth + 1});
    stack.push_back({static_cast<std::uint32_t>(ch[1]), it.depth + 1});
  }
  h.build_canonical_();
  return h;
}

void HuffmanCodec::build_canonical_() {
  codes_.assign(lengths_.size(), 0);
  sorted_symbols_.clear();
  max_len_ = 0;
  for (unsigned l : lengths_) max_len_ = std::max(max_len_, l);
  first_code_.assign(max_len_ + 2, 0);
  first_symbol_.assign(max_len_ + 2, 0);
  if (max_len_ == 0) return;

  // Symbols sorted by (length, symbol value).
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) sorted_symbols_.push_back(s);
  }
  std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return lengths_[a] != lengths_[b] ? lengths_[a] < lengths_[b]
                                                : a < b;
            });
  std::vector<std::uint32_t> count(max_len_ + 2, 0);
  for (unsigned l : lengths_) {
    if (l > 0) ++count[l];
  }
  std::uint64_t code = 0;
  std::uint32_t sym_offset = 0;
  for (unsigned l = 1; l <= max_len_; ++l) {
    first_code_[l] = code;
    first_symbol_[l] = sym_offset;
    code += count[l];
    sym_offset += count[l];
    code <<= 1;
  }
  // Assign codes in sorted order.
  std::vector<std::uint64_t> next(max_len_ + 2);
  for (unsigned l = 1; l <= max_len_; ++l) next[l] = first_code_[l];
  for (std::uint32_t s : sorted_symbols_) {
    codes_[s] = next[lengths_[s]]++;
  }
}

void HuffmanCodec::encode(bitio::BitWriter& w, std::uint32_t symbol) const {
  const unsigned len = lengths_[symbol];
  assert(len > 0 && "encoding symbol with no code");
  const std::uint64_t code = codes_[symbol];
  // MSB-first so canonical prefix decoding works.
  for (unsigned i = len; i-- > 0;) {
    w.write_bit((code >> i) & 1);
  }
}

std::uint32_t HuffmanCodec::decode(bitio::BitReader& r) const {
  std::uint64_t code = 0;
  for (unsigned l = 1; l <= max_len_; ++l) {
    code = (code << 1) | (r.read_bit() ? 1 : 0);
    const std::uint32_t cnt =
        (l + 1 <= max_len_ ? first_symbol_[l + 1]
                           : static_cast<std::uint32_t>(
                                 sorted_symbols_.size())) -
        first_symbol_[l];
    if (cnt > 0 && code >= first_code_[l] && code < first_code_[l] + cnt) {
      return sorted_symbols_[first_symbol_[l] +
                             static_cast<std::uint32_t>(code -
                                                        first_code_[l])];
    }
  }
  throw std::runtime_error("Huffman: invalid code in stream");
}

void HuffmanCodec::serialize(bitio::BitWriter& w) const {
  bitio::write_varint(w, lengths_.size());
  for (std::size_t i = 0; i < lengths_.size();) {
    if (lengths_[i] == 0) {
      std::size_t run = 0;
      while (i + run < lengths_.size() && lengths_[i + run] == 0) ++run;
      w.write_bits(0, 6);
      bitio::write_varint(w, run);
      i += run;
    } else {
      w.write_bits(lengths_[i], 6);
      ++i;
    }
  }
}

HuffmanCodec HuffmanCodec::from_stream(bitio::BitReader& r) {
  HuffmanCodec h;
  const std::uint64_t n = bitio::read_varint(r);
  if (n > (std::uint64_t{1} << 24)) {
    throw std::runtime_error("Huffman: absurd alphabet size");
  }
  h.lengths_.assign(n, 0);
  for (std::size_t i = 0; i < n;) {
    const unsigned len = static_cast<unsigned>(r.read_bits(6));
    if (len == 0) {
      const std::uint64_t run = bitio::read_varint(r);
      if (i + run > n) throw std::runtime_error("Huffman: bad zero run");
      i += run;
    } else {
      h.lengths_[i] = static_cast<std::uint8_t>(len);
      ++i;
    }
  }
  h.build_canonical_();
  return h;
}

std::size_t HuffmanCodec::dictionary_bits() const {
  bitio::BitWriter w;
  serialize(w);
  return w.bit_count();
}

}  // namespace pastri::baselines
