// zfp.h - ZFP-style fixed-accuracy compressor for 1-D double data.
//
// Reimplements the mechanism of ZFP (Lindstrom, TVCG 2014) that the paper
// benchmarks against, in its 1-D form: values are grouped in blocks of 4,
// aligned to a per-block common exponent, converted to 64-bit fixed
// point, decorrelated with ZFP's reversible integer lifting transform,
// mapped to negabinary, and entropy-coded with the embedded bit-plane
// group-testing coder, truncated at the precision implied by the absolute
// error tolerance.  ZFP's weakness on 1-D data (the paper's Section II:
// "suffers from the low compression ratio for 1D datasets") is inherent
// to the 4-sample transform and reproduces here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pastri::baselines {

struct ZfpParams {
  double tolerance = 1e-10;  ///< absolute error tolerance (accuracy mode)
};

std::vector<std::uint8_t> zfp_compress(std::span<const double> data,
                                       const ZfpParams& params);

std::vector<double> zfp_decompress(std::span<const std::uint8_t> stream);

// Exposed for unit tests.
namespace zfp_detail {
void fwd_lift(std::int64_t* p);
void inv_lift(std::int64_t* p);
std::uint64_t int_to_negabinary(std::int64_t x);
std::int64_t negabinary_to_int(std::uint64_t u);
}  // namespace zfp_detail

}  // namespace pastri::baselines
