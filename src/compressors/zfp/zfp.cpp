#include "compressors/zfp/zfp.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <stdexcept>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri::baselines {
namespace zfp_detail {

// Fuzzed payloads can drive the lifting steps through the whole int64
// range; do the +/- in uint64 (two's-complement wraparound, the ring the
// reference ZFP transform is defined over) so the arithmetic stays well
// defined.
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

// ZFP's reversible 1-D lifting transform over a block of 4 integers
// (a rounded 4-point orthogonal transform akin to a slanted DCT).
void fwd_lift(std::int64_t* p) {
  std::int64_t x = p[0], y = p[1], z = p[2], w = p[3];
  x = wrap_add(x, w); x >>= 1; w = wrap_sub(w, x);
  z = wrap_add(z, y); z >>= 1; y = wrap_sub(y, z);
  x = wrap_add(x, z); x >>= 1; z = wrap_sub(z, x);
  w = wrap_add(w, y); w >>= 1; y = wrap_sub(y, w);
  w = wrap_add(w, y >> 1);
  y = wrap_sub(y, w >> 1);
  p[0] = x; p[1] = y; p[2] = z; p[3] = w;
}

void inv_lift(std::int64_t* p) {
  std::int64_t x = p[0], y = p[1], z = p[2], w = p[3];
  y = wrap_add(y, w >> 1);
  w = wrap_sub(w, y >> 1);
  y = wrap_add(y, w); w <<= 1; w = wrap_sub(w, y);
  z = wrap_add(z, x); x <<= 1; x = wrap_sub(x, z);
  y = wrap_add(y, z); z <<= 1; z = wrap_sub(z, y);
  w = wrap_add(w, x); x <<= 1; x = wrap_sub(x, w);
  p[0] = x; p[1] = y; p[2] = z; p[3] = w;
}

constexpr std::uint64_t kNbMask = 0xaaaaaaaaaaaaaaaaULL;

std::uint64_t int_to_negabinary(std::int64_t x) {
  return (static_cast<std::uint64_t>(x) + kNbMask) ^ kNbMask;
}

std::int64_t negabinary_to_int(std::uint64_t u) {
  return static_cast<std::int64_t>((u ^ kNbMask) - kNbMask);
}

}  // namespace zfp_detail

namespace {

using namespace zfp_detail;

constexpr std::uint32_t kMagic = 0x50465A;  // "ZFP"
constexpr int kIntPrec = 64;
constexpr int kBlock = 4;
constexpr int kExpBias = 1074;  // emax in [-1074, 1023] -> 12-bit field

/// Exponent of the block maximum, as ZFP's exponent(): the e such that
/// 2^(e-1) <= max|x| < 2^e ... frexp convention: x = f * 2^e, 0.5<=|f|<1.
int block_exponent(const double* f) {
  double m = 0.0;
  for (int i = 0; i < kBlock; ++i) m = std::max(m, std::abs(f[i]));
  if (m == 0.0) return INT_MIN;
  int e;
  std::frexp(m, &e);
  return e;
}

/// Precision needed for tolerance 2^minexp at block exponent emax
/// (ZFP's accuracy-mode precision formula for 1-D, with 2*(dims+1) = 4
/// guard bits).
int block_precision(int emax, int minexp) {
  return std::clamp(emax - minexp + 4, 0, kIntPrec);
}

/// ZFP's embedded bit-plane group-testing coder for one block of 4
/// negabinary integers, transcribed from encode_ints/decode_ints.
void encode_ints(bitio::BitWriter& w, const std::uint64_t* data,
                 int maxprec) {
  const int kmin = kIntPrec > maxprec ? kIntPrec - maxprec : 0;
  int n = 0;
  for (int k = kIntPrec; k-- > kmin;) {
    // Gather bit plane k across the block.
    std::uint64_t x = 0;
    for (int i = 0; i < kBlock; ++i) {
      x += ((data[i] >> k) & 1u) << i;
    }
    // Verbatim bits for already-significant coefficients.
    w.write_bits(x, static_cast<unsigned>(n));
    x >>= n;
    // Group-test the rest.
    auto write_ret = [&](bool b) {
      w.write_bit(b);
      return b;
    };
    for (; n < kBlock && write_ret(x != 0); x >>= 1, ++n) {
      for (; n < kBlock - 1 && !write_ret(x & 1); x >>= 1, ++n) {
      }
    }
  }
}

void decode_ints(bitio::BitReader& r, std::uint64_t* data, int maxprec) {
  const int kmin = kIntPrec > maxprec ? kIntPrec - maxprec : 0;
  for (int i = 0; i < kBlock; ++i) data[i] = 0;
  int n = 0;
  for (int k = kIntPrec; k-- > kmin;) {
    std::uint64_t x = r.read_bits(static_cast<unsigned>(n));
    for (; n < kBlock && r.read_bit(); x += std::uint64_t{1} << n++) {
      for (; n < kBlock - 1 && !r.read_bit(); ++n) {
      }
    }
    // Deposit bit plane k.
    for (int i = 0; x; ++i, x >>= 1) {
      data[i] += (x & 1) << k;
    }
  }
}

void encode_block(bitio::BitWriter& w, const double* f, int minexp) {
  const int emax = block_exponent(f);
  const int maxprec = emax == INT_MIN ? 0 : block_precision(emax, minexp);
  if (maxprec == 0) {
    w.write_bit(false);  // empty block: reconstructs as zeros
    return;
  }
  w.write_bit(true);
  w.write_bits(static_cast<std::uint64_t>(emax + kExpBias), 12);

  // Block-floating-point cast to 64-bit fixed point with 2 guard bits.
  std::int64_t q[kBlock];
  const double scale = std::ldexp(1.0, kIntPrec - 2 - emax);
  for (int i = 0; i < kBlock; ++i) {
    q[i] = static_cast<std::int64_t>(f[i] * scale);
  }
  fwd_lift(q);
  std::uint64_t u[kBlock];
  for (int i = 0; i < kBlock; ++i) u[i] = int_to_negabinary(q[i]);
  encode_ints(w, u, maxprec);
}

void decode_block(bitio::BitReader& r, double* f, int minexp) {
  if (!r.read_bit()) {
    for (int i = 0; i < kBlock; ++i) f[i] = 0.0;
    return;
  }
  const int emax = static_cast<int>(r.read_bits(12)) - kExpBias;
  const int maxprec = block_precision(emax, minexp);
  std::uint64_t u[kBlock];
  decode_ints(r, u, maxprec);
  std::int64_t q[kBlock];
  for (int i = 0; i < kBlock; ++i) q[i] = negabinary_to_int(u[i]);
  inv_lift(q);
  const double scale = std::ldexp(1.0, emax - (kIntPrec - 2));
  for (int i = 0; i < kBlock; ++i) {
    f[i] = static_cast<double>(q[i]) * scale;
  }
}

}  // namespace

std::vector<std::uint8_t> zfp_compress(std::span<const double> data,
                                       const ZfpParams& params) {
  if (!(params.tolerance > 0.0)) {
    throw std::invalid_argument("ZFP: tolerance must be positive");
  }
  const int minexp =
      static_cast<int>(std::floor(std::log2(params.tolerance)));

  bitio::BitWriter w;
  w.write_bits(kMagic, 32);
  w.write_raw(params.tolerance);
  w.write_bits(data.size(), 64);

  double buf[kBlock];
  for (std::size_t i = 0; i < data.size(); i += kBlock) {
    const std::size_t m = std::min<std::size_t>(kBlock, data.size() - i);
    for (std::size_t j = 0; j < kBlock; ++j) {
      buf[j] = j < m ? data[i + j] : 0.0;  // pad the final block
    }
    encode_block(w, buf, minexp);
  }
  return w.take();
}

std::vector<double> zfp_decompress(std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("ZFP: bad stream magic");
  }
  const double tol = r.read_raw<double>();
  const std::uint64_t n = r.read_bits(64);
  if (!(tol > 0.0)) throw std::runtime_error("ZFP: corrupt header");
  const int minexp = static_cast<int>(std::floor(std::log2(tol)));

  std::vector<double> out(n);
  double buf[kBlock];
  for (std::size_t i = 0; i < n; i += kBlock) {
    decode_block(r, buf, minexp);
    const std::size_t m = std::min<std::size_t>(kBlock, n - i);
    for (std::size_t j = 0; j < m; ++j) out[i + j] = buf[j];
  }
  return out;
}

}  // namespace pastri::baselines
