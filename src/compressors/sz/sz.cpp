#include "compressors/sz/sz.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "bitio/varint.h"
#include "compressors/huffman.h"

namespace pastri::baselines {
namespace {

constexpr std::uint32_t kMagic = 0x315A53;  // "SZ1"

/// Best-fit curve-fitting prediction (SZ 1.x): constant, linear, or
/// quadratic extrapolation from preceding decompressed values.  The
/// predictor for point i is chosen as the one that would have predicted
/// point i-1 best -- a decision both encoder and decoder can replay from
/// decompressed data alone, so no side information is stored.
struct Predictor {
  double d1 = 0, d2 = 0, d3 = 0, d4 = 0;  // d[i-1] .. d[i-4]
  std::size_t seen = 0;

  static double constant(double a) { return a; }
  static double linear(double a, double b) { return 2 * a - b; }
  static double quadratic(double a, double b, double c) {
    return 3 * a - 3 * b + c;
  }

  double predict() const {
    if (seen == 0) return 0.0;
    if (seen == 1) return constant(d1);
    if (seen == 2) return linear(d1, d2);
    // Pick the model that best reproduced d[i-1] from its predecessors.
    const double e1 = std::abs(d1 - constant(d2));
    const double e2 = std::abs(d1 - linear(d2, d3));
    const double e3 =
        seen >= 4 ? std::abs(d1 - quadratic(d2, d3, d4)) : e2 + 1.0;
    if (e1 <= e2 && e1 <= e3) return constant(d1);
    if (e2 <= e3) return linear(d1, d2);
    return quadratic(d1, d2, d3);
  }

  void push(double v) {
    d4 = d3;
    d3 = d2;
    d2 = d1;
    d1 = v;
    ++seen;
  }
};

/// Binary-representation outlier codec: sign + raw exponent + just enough
/// mantissa bits for the requested absolute bound.
unsigned mantissa_bits_needed(int unbiased_exp, double eb) {
  const int eb_exp = static_cast<int>(std::floor(std::log2(eb)));
  const int k = unbiased_exp - eb_exp + 1;
  return static_cast<unsigned>(std::clamp(k, 0, 52));
}

void write_outlier(bitio::BitWriter& w, double v, double eb) {
  if (std::abs(v) <= eb || !std::isfinite(v)) {
    w.write_bit(true);  // "tiny": reconstruct as zero
    return;
  }
  w.write_bit(false);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  const std::uint64_t sign = bits >> 63;
  const std::uint64_t expf = (bits >> 52) & 0x7FF;
  const std::uint64_t mant = bits & ((std::uint64_t{1} << 52) - 1);
  w.write_bit(sign != 0);
  w.write_bits(expf, 11);
  const unsigned k = mantissa_bits_needed(static_cast<int>(expf) - 1023, eb);
  if (k > 0) w.write_bits(mant >> (52 - k), k);
}

double read_outlier(bitio::BitReader& r, double eb) {
  if (r.read_bit()) return 0.0;
  const bool neg = r.read_bit();
  const std::uint64_t expf = r.read_bits(11);
  const unsigned k = mantissa_bits_needed(static_cast<int>(expf) - 1023, eb);
  std::uint64_t mant = 0;
  if (k > 0) mant = r.read_bits(k) << (52 - k);
  const std::uint64_t bits =
      (neg ? std::uint64_t{1} << 63 : 0) | (expf << 52) | mant;
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace

std::vector<std::uint8_t> sz_compress(std::span<const double> data,
                                      const SzParams& params,
                                      SzStats* stats) {
  if (!(params.error_bound > 0.0)) {
    throw std::invalid_argument("SZ: error bound must be positive");
  }
  if (params.intervals < 4 || std::popcount(params.intervals) != 1) {
    throw std::invalid_argument("SZ: intervals must be a power of two >= 4");
  }
  const double eb = params.error_bound;
  const std::int64_t radius = params.intervals / 2;

  // Pass 1: quantize against the running decompressed signal.
  std::vector<std::uint32_t> codes(data.size());
  std::vector<double> outliers;
  Predictor pred;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = pred.predict();
    const double delta = data[i] - p;
    const double qd = std::nearbyint(delta / (2.0 * eb));
    double recon;
    if (std::abs(qd) < static_cast<double>(radius)) {
      const auto q = static_cast<std::int64_t>(qd);
      codes[i] = static_cast<std::uint32_t>(q + radius);
      recon = p + static_cast<double>(q) * 2.0 * eb;
    } else {
      codes[i] = 0;  // unpredictable
      outliers.push_back(data[i]);
      // Reconstruct exactly as the decoder will.
      bitio::BitWriter tmp;
      write_outlier(tmp, data[i], eb);
      const auto bytes = tmp.take();
      bitio::BitReader rd(bytes);
      recon = read_outlier(rd, eb);
    }
    pred.push(recon);
  }

  // Pass 2: Huffman over the code alphabet.
  std::vector<std::uint64_t> freq(params.intervals, 0);
  for (std::uint32_t c : codes) ++freq[c];
  const HuffmanCodec huff = HuffmanCodec::from_frequencies(freq);

  bitio::BitWriter w;
  w.write_bits(kMagic, 32);
  w.write_raw(eb);
  w.write_bits(params.intervals, 32);
  w.write_bits(data.size(), 64);
  huff.serialize(w);
  const std::size_t dict_bits = w.bit_count();
  for (std::uint32_t c : codes) huff.encode(w, c);
  const std::size_t payload_bits = w.bit_count() - dict_bits;
  for (double v : outliers) write_outlier(w, v, eb);

  if (stats) {
    stats->quantized_points = data.size() - outliers.size();
    stats->unpredictable_points = outliers.size();
    stats->huffman_dictionary_bits = huff.dictionary_bits();
    stats->huffman_payload_bits = payload_bits;
    stats->outlier_bits = w.bit_count() - dict_bits - payload_bits;
  }
  return w.take();
}

std::vector<double> sz_decompress(std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("SZ: bad stream magic");
  }
  const double eb = r.read_raw<double>();
  const std::uint32_t intervals = static_cast<std::uint32_t>(r.read_bits(32));
  const std::uint64_t n = r.read_bits(64);
  if (!(eb > 0.0) || intervals < 4) {
    throw std::runtime_error("SZ: corrupt header");
  }
  const std::int64_t radius = intervals / 2;
  const HuffmanCodec huff = HuffmanCodec::from_stream(r);

  std::vector<std::uint32_t> codes(n);
  for (auto& c : codes) c = huff.decode(r);

  std::vector<double> out(n);
  Predictor pred;
  for (std::size_t i = 0; i < n; ++i) {
    double recon;
    if (codes[i] == 0) {
      recon = read_outlier(r, eb);
    } else {
      const double p = pred.predict();
      recon = p + static_cast<double>(static_cast<std::int64_t>(codes[i]) -
                                      radius) *
                      2.0 * eb;
    }
    out[i] = recon;
    pred.push(recon);
  }
  return out;
}

}  // namespace pastri::baselines
