// sz.h - SZ-style error-bounded lossy compressor for 1-D double data.
//
// Reimplements the algorithm family of SZ 1.4 (Di & Cappello, IPDPS'16;
// Tao et al., IPDPS'17) that the paper benchmarks against:
//
//   1. Predict each value from preceding *decompressed* neighbours with
//      the best-fit curve-fitting predictor (constant / linear /
//      quadratic extrapolation).
//   2. Error-controlled linear-scaling quantization of the prediction
//      residual into 2*radius bins of width 2*EB.
//   3. Canonical Huffman coding of the bin indices.
//   4. Values whose residual exceeds the bin range ("unpredictable data")
//      are stored by binary representation analysis: sign + exponent +
//      just enough mantissa bits to honour the error bound.
//
// The point-wise absolute error bound holds by construction, as in SZ.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pastri::baselines {

struct SzParams {
  double error_bound = 1e-10;
  /// Number of quantization intervals (SZ's "quantization_intervals").
  /// Must be a power of two; bin indices occupy [1, intervals-1] with 0
  /// reserved for unpredictable values.
  std::uint32_t intervals = 65536;
};

struct SzStats {
  std::size_t quantized_points = 0;
  std::size_t unpredictable_points = 0;
  std::size_t huffman_dictionary_bits = 0;
  std::size_t huffman_payload_bits = 0;
  std::size_t outlier_bits = 0;
};

std::vector<std::uint8_t> sz_compress(std::span<const double> data,
                                      const SzParams& params,
                                      SzStats* stats = nullptr);

std::vector<double> sz_decompress(std::span<const std::uint8_t> stream);

}  // namespace pastri::baselines
