#include "compressors/rpp/rpp.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri::baselines {
namespace {

constexpr std::uint32_t kMagic = 0x52505000;  // "RPP"

unsigned mantissa_bits_needed(int unbiased_exp, int eb_exp) {
  return static_cast<unsigned>(
      std::clamp(unbiased_exp - eb_exp + 1, 0, 52));
}

}  // namespace

std::vector<std::uint8_t> rpp_compress(std::span<const double> data,
                                       double error_bound) {
  if (!(error_bound > 0.0)) {
    throw std::invalid_argument("RPP: error bound must be positive");
  }
  const int eb_exp = static_cast<int>(std::floor(std::log2(error_bound)));

  bitio::BitWriter w;
  w.write_bits(kMagic, 32);
  w.write_raw(error_bound);
  w.write_bits(data.size(), 64);

  for (double v : data) {
    if (std::abs(v) <= error_bound || !std::isfinite(v)) {
      w.write_bit(true);  // "tiny": reconstructs as zero
      continue;
    }
    w.write_bit(false);
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    w.write_bit((bits >> 63) != 0);
    const std::uint64_t expf = (bits >> 52) & 0x7FF;
    w.write_bits(expf, 11);
    const unsigned k =
        mantissa_bits_needed(static_cast<int>(expf) - 1023, eb_exp);
    if (k > 0) {
      w.write_bits((bits & ((std::uint64_t{1} << 52) - 1)) >> (52 - k), k);
    }
  }
  return w.take();
}

std::vector<double> rpp_decompress(std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("RPP: bad stream magic");
  }
  const double eb = r.read_raw<double>();
  if (!(eb > 0.0)) throw std::runtime_error("RPP: corrupt header");
  const int eb_exp = static_cast<int>(std::floor(std::log2(eb)));
  const std::uint64_t n = r.read_bits(64);

  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.read_bit()) continue;  // zero
    const bool neg = r.read_bit();
    const std::uint64_t expf = r.read_bits(11);
    const unsigned k =
        mantissa_bits_needed(static_cast<int>(expf) - 1023, eb_exp);
    std::uint64_t mant = 0;
    if (k > 0) mant = r.read_bits(k) << (52 - k);
    const std::uint64_t bits =
        (neg ? std::uint64_t{1} << 63 : 0) | (expf << 52) | mant;
    std::memcpy(&out[i], &bits, 8);
  }
  return out;
}

}  // namespace pastri::baselines
