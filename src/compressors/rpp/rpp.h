// rpp.h - Reduced-precision pack: the "customized real number format"
// baseline of the paper's Section II (Fulscher & Widmark 1993, paper
// ref. [19]), which "may lead to a compression ratio of only
// approximately 1.5-2.5 times".
//
// Each value is stored as sign + IEEE exponent + just enough mantissa
// bits to satisfy the absolute error bound; values at or below the bound
// collapse to a one-bit zero flag.  No prediction, no entropy coding --
// precisely the class of scheme the paper argues is insufficient.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pastri::baselines {

std::vector<std::uint8_t> rpp_compress(std::span<const double> data,
                                       double error_bound);

std::vector<double> rpp_decompress(std::span<const std::uint8_t> stream);

}  // namespace pastri::baselines
