// huffman.h - Canonical Huffman coding over a dense symbol alphabet.
//
// Used by the SZ-style baseline to entropy-code quantization bins, and by
// the `bench_ablation_huffman_ecq` experiment that reproduces the paper's
// Section IV-C argument for why PaSTRI's fixed trees beat Huffman on ECQ
// streams (dictionary cost, single-occurrence degradation, serialization).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri::baselines {

/// Canonical Huffman codec for symbols in [0, alphabet_size).
class HuffmanCodec {
 public:
  /// Build from symbol frequencies (size = alphabet size).  Symbols with
  /// zero frequency get no code.  Code lengths are capped at 58 bits
  /// (alphabets here are <= 2^16, so the cap never binds in practice).
  static HuffmanCodec from_frequencies(std::span<const std::uint64_t> freq);

  /// Reconstruct a codec from serialized code lengths.
  static HuffmanCodec from_stream(bitio::BitReader& r);

  /// Serialize code lengths (RLE of zero runs) so the decoder can rebuild
  /// the canonical code.
  void serialize(bitio::BitWriter& w) const;

  void encode(bitio::BitWriter& w, std::uint32_t symbol) const;
  std::uint32_t decode(bitio::BitReader& r) const;

  /// Exact bit cost of a symbol (0 if the symbol has no code).
  unsigned code_length(std::uint32_t symbol) const {
    return lengths_[symbol];
  }

  std::size_t alphabet_size() const { return lengths_.size(); }

  /// Bits needed to serialize the dictionary.
  std::size_t dictionary_bits() const;

 private:
  void build_canonical_();

  std::vector<std::uint8_t> lengths_;       // per symbol
  std::vector<std::uint64_t> codes_;        // canonical codes (MSB-first)
  // Decoding tables (canonical): per length, first code and symbol offset.
  std::vector<std::uint64_t> first_code_;   // index by length
  std::vector<std::uint32_t> first_symbol_; // index by length
  std::vector<std::uint32_t> sorted_symbols_;
  unsigned max_len_ = 0;
};

}  // namespace pastri::baselines
