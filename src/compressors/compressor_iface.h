// compressor_iface.h - Uniform interface over the three lossy codecs the
// paper evaluates (PaSTRI, SZ, ZFP), used by the Fig. 9-11 benches, the
// examples, and the cross-compressor property tests.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/block_spec.h"

namespace pastri::baselines {

/// An error-bounded lossy compressor for 1-D double data.
class LossyCompressor {
 public:
  virtual ~LossyCompressor() = default;

  virtual std::string name() const = 0;

  /// Compress with a point-wise absolute error bound `eb`.
  virtual std::vector<std::uint8_t> compress(std::span<const double> data,
                                             double eb) const = 0;

  virtual std::vector<double> decompress(
      std::span<const std::uint8_t> stream) const = 0;
};

/// PaSTRI needs the block geometry (the BF configuration); the baselines
/// treat data as a flat 1-D array, exactly as the paper runs them.
std::unique_ptr<LossyCompressor> make_pastri_compressor(
    const pastri::BlockSpec& spec);
std::unique_ptr<LossyCompressor> make_sz_compressor();
std::unique_ptr<LossyCompressor> make_zfp_compressor();

}  // namespace pastri::baselines
