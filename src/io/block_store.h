// block_store.h - Long-lived, read-mostly handle over compressed block
// data: the C++ backing of the pastri_store_* C API and the store the
// pastri_serve daemon serves concurrent clients from.
//
// A BlockStore opens one of
//   * a raw PaSTRI container (as written by pastri_stream_* or the C++
//     StreamWriter -- "PSTR" magic),
//   * a pastri_tool container ("TSCP" magic; the tool header is
//     skipped),
//   * a sharded dataset, when the path is its manifest file
//     ("<dir>/<basename>.manifest"); shard streams are concatenated in
//     dataset block order,
// loads the compressed bytes into memory once, and serves decoded
// blocks through a mutex-striped LRU cache (core/sharded_cache.h) with
// the decode itself running outside any lock -- concurrent readers on
// warm data touch only their key's shard mutex, and cold misses decode
// in parallel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pastri.h"
#include "core/sharded_cache.h"

namespace pastri::io {

class BlockStore {
 public:
  /// Sniffs the backing from the path/magic as described above.  Throws
  /// std::runtime_error on unreadable/malformed input,
  /// std::invalid_argument on an empty path.
  explicit BlockStore(const std::string& path,
                      const CacheConfig& cache = {1024, 8});

  /// Stream metadata (shard 0's header for sharded datasets; all shards
  /// must agree on the block spec).
  const StreamInfo& info() const { return info_; }
  std::size_t num_blocks() const { return num_blocks_; }
  std::size_t block_size() const { return info_.spec.block_size(); }
  std::size_t compressed_bytes() const { return compressed_bytes_; }

  /// Decode block `index` (store-global block order) through the cache:
  /// shard-locked O(1) on a warm hit, lock-free decode + deduped insert
  /// on a miss.  Thread-safe.  Throws std::out_of_range.
  std::shared_ptr<const std::vector<double>> block(std::size_t index) const;

  /// Decode blocks [first, first+count) into a fresh vector, batching
  /// each per-shard span into the block-parallel BlockReader range
  /// decoder.  Bypasses the cache (bulk reads would churn it).
  /// Thread-safe.  Throws std::out_of_range.
  std::vector<double> range(std::size_t first, std::size_t count) const;

  void set_cache(const CacheConfig& config) { cache_.configure(config); }
  CacheConfig cache_config() const { return cache_.config(); }
  CacheStats cache_stats() const { return cache_.stats(); }

 private:
  struct Shard {
    std::vector<std::uint8_t> bytes;    ///< the whole container
    std::size_t stream_offset = 0;      ///< PaSTRI stream start in bytes
    std::unique_ptr<BlockReader> reader;
    std::size_t first_block = 0;        ///< store-global index of block 0
  };

  void open_container_(const std::string& path);
  void open_manifest_(const std::string& path);
  void add_shard_(std::vector<std::uint8_t>&& bytes,
                  const std::string& what);

  std::vector<Shard> shards_;
  StreamInfo info_;
  std::size_t num_blocks_ = 0;
  std::size_t compressed_bytes_ = 0;
  mutable ShardedBlockCache<std::size_t> cache_;
};

}  // namespace pastri::io
