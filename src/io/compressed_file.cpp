#include "io/compressed_file.h"

#include <fstream>
#include <stdexcept>

#include "io/file_per_process.h"

namespace pastri::io {
namespace {

constexpr char kManifestMagic[] = "PaSTRIshards v1";

std::string manifest_path(const std::string& dir,
                          const std::string& basename) {
  return dir + "/" + basename + ".manifest";
}

}  // namespace

std::size_t write_compressed_dataset(const qc::EriDataset& ds,
                                     const Params& params, int num_shards,
                                     const std::string& dir,
                                     const std::string& basename) {
  if (num_shards < 1) {
    throw std::invalid_argument("num_shards must be >= 1");
  }
  const std::size_t shards = static_cast<std::size_t>(num_shards);
  const BlockSpec spec{ds.shape.num_sub_blocks(),
                       ds.shape.sub_block_size()};
  const std::size_t bs = ds.shape.block_size();

  ShardLayout layout;
  layout.num_shards = shards;
  const std::size_t base = ds.num_blocks / shards;
  const std::size_t extra = ds.num_blocks % shards;
  for (std::size_t s = 0; s < shards; ++s) {
    layout.blocks_per_shard.push_back(base + (s < extra ? 1 : 0));
  }

  std::size_t total = 0;
  std::size_t block0 = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t nblocks = layout.blocks_per_shard[s];
    const std::span<const double> chunk(
        ds.values.data() + block0 * bs, nblocks * bs);
    const auto stream = compress(chunk, spec, params);
    write_rank_file(dir, basename, static_cast<int>(s), stream);
    total += stream.size();
    block0 += nblocks;
  }

  std::ofstream mf(manifest_path(dir, basename), std::ios::trunc);
  if (!mf) throw std::runtime_error("cannot write manifest");
  mf << kManifestMagic << "\n";
  mf << ds.label << "\n";
  mf << ds.shape.n[0] << " " << ds.shape.n[1] << " " << ds.shape.n[2]
     << " " << ds.shape.n[3] << "\n";
  mf << ds.num_blocks << " " << shards << "\n";
  for (std::size_t n : layout.blocks_per_shard) mf << n << " ";
  mf << "\n";
  if (!mf) throw std::runtime_error("manifest write failed");
  return total;
}

CompressedDatasetInfo read_manifest(const std::string& dir,
                                    const std::string& basename) {
  std::ifstream mf(manifest_path(dir, basename));
  if (!mf) throw std::runtime_error("cannot open manifest");
  std::string magic;
  std::getline(mf, magic);
  if (magic != kManifestMagic) {
    throw std::runtime_error("bad manifest magic");
  }
  CompressedDatasetInfo info;
  std::getline(mf, info.label);
  for (auto& n : info.shape.n) {
    unsigned v;
    mf >> v;
    n = static_cast<std::uint16_t>(v);
  }
  mf >> info.num_blocks >> info.layout.num_shards;
  info.layout.blocks_per_shard.resize(info.layout.num_shards);
  for (auto& n : info.layout.blocks_per_shard) mf >> n;
  if (!mf) throw std::runtime_error("truncated manifest");
  return info;
}

qc::EriDataset read_compressed_dataset(const std::string& dir,
                                       const std::string& basename) {
  const CompressedDatasetInfo info = read_manifest(dir, basename);
  qc::EriDataset ds;
  ds.label = info.label;
  ds.shape = info.shape;
  ds.num_blocks = info.num_blocks;
  ds.values.reserve(info.num_blocks * info.shape.block_size());
  for (std::size_t s = 0; s < info.layout.num_shards; ++s) {
    const auto bytes = read_rank_file(dir, basename, static_cast<int>(s));
    const auto values = decompress(bytes);
    if (values.size() !=
        info.layout.blocks_per_shard[s] * info.shape.block_size()) {
      throw std::runtime_error("shard size mismatch");
    }
    ds.values.insert(ds.values.end(), values.begin(), values.end());
  }
  return ds;
}

}  // namespace pastri::io
