#include "io/compressed_file.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/format_detail.h"
#include "io/file_per_process.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri::io {
namespace {

constexpr char kManifestMagic[] = "PaSTRIshards v1";

/// Shard-level telemetry (obs/metric_names.h); the per-slice read
/// counters live in file_per_process.cpp.
struct ShardMetrics {
  obs::Histogram shard_append_ns =
      obs::registry().histogram(obs::kIoShardAppendNs);
  obs::Counter shard_bytes_written =
      obs::registry().counter(obs::kIoShardBytesWritten);
  obs::Counter shards_finished =
      obs::registry().counter(obs::kIoShardsFinished);
  obs::Counter blocks_read = obs::registry().counter(obs::kIoBlocksRead);
};

const ShardMetrics& shard_metrics() {
  static const ShardMetrics m;
  return m;
}

std::string manifest_path(const std::string& dir,
                          const std::string& basename) {
  return dir + "/" + basename + ".manifest";
}

/// Parse a shard's stream header with one small ranged read.
StreamInfo peek_shard(const std::string& dir, const std::string& basename,
                      int shard, std::size_t file_size) {
  const auto head = read_rank_file_slice(
      dir, basename, shard, 0,
      std::min(file_size, detail::kGlobalHeaderBytes));
  return peek_info(head);
}

/// Decode blocks [local_first, local_first+local_count) of one shard.
/// Indexed shards: header + footer + offset table + one contiguous
/// payload span, four ranged reads in total.  Legacy (unindexed) shards:
/// full read, then the in-memory random-access path.
std::vector<double> read_shard_blocks(const std::string& dir,
                                      const std::string& basename,
                                      int shard, std::size_t local_first,
                                      std::size_t local_count) {
  shard_metrics().blocks_read.add(local_count);
  const std::size_t fsize = rank_file_size(dir, basename, shard);
  const StreamInfo info = peek_shard(dir, basename, shard, fsize);
  if (local_first + local_count < local_first ||
      local_first + local_count > info.num_blocks) {
    throw std::out_of_range("read_shard_blocks: range out of range");
  }
  if (info.version != kStreamVersionIndexed) {
    // v2 shards have no offset table; v4 shards carry a pattern
    // dictionary whose defining payloads may live anywhere in the shard,
    // so a contiguous payload span is not self-contained.  Both fall
    // back to one full read + the in-memory random-access path
    // (BlockReader scans v2 / pre-decodes the v4 dictionary bases).
    const auto bytes = read_rank_file(dir, basename, shard);
    return BlockReader(bytes).read_range(local_first, local_count);
  }
  if (fsize < detail::kGlobalHeaderBytes + detail::kIndexFooterBytes) {
    throw std::runtime_error("shard too short for index footer");
  }
  const auto tail =
      read_rank_file_slice(dir, basename, shard,
                           fsize - detail::kIndexFooterBytes,
                           detail::kIndexFooterBytes);
  const detail::IndexFooter footer =
      detail::parse_index_footer(tail, fsize);
  if (footer.num_blocks != info.num_blocks) {
    throw std::runtime_error(
        "shard index footer disagrees with its header");
  }
  const std::size_t table_end = fsize - detail::kIndexFooterBytes;
  const auto table =
      read_rank_file_slice(dir, basename, shard, footer.index_offset,
                           table_end - footer.index_offset);
  const BlockIndex index =
      BlockIndex::parse(table, detail::kGlobalHeaderBytes,
                        footer.index_offset, info.num_blocks);
  const std::size_t bs = info.spec.block_size();
  if (bs != 0 &&
      local_count > std::numeric_limits<std::size_t>::max() / bs) {
    throw std::runtime_error("pastri-io: shard block range too large");
  }
  std::vector<double> out(local_count * bs);
  if (local_count == 0) return out;
  const BlockExtent& lo = index.extent(local_first);
  const BlockExtent& hi = index.extent(local_first + local_count - 1);
  const std::size_t span_begin = lo.offset;
  const std::size_t span_end = hi.offset + hi.length;
  const auto payload = read_rank_file_slice(
      dir, basename, shard, span_begin, span_end - span_begin);
  const Params params = info.to_params();
  for (std::size_t b = 0; b < local_count; ++b) {
    const BlockExtent& e = index.extent(local_first + b);
    bitio::BitReader r(std::span<const std::uint8_t>(payload).subspan(
        e.offset - span_begin, e.length));
    decompress_block(r, info.spec, params,
                     std::span<double>(out).subspan(b * bs, bs));
  }
  return out;
}

}  // namespace

// ---- Layout / manifest / resume helpers ---------------------------------

ShardLayout make_shard_layout(std::size_t num_blocks, int num_shards) {
  if (num_shards < 1) {
    throw std::invalid_argument("num_shards must be >= 1");
  }
  const std::size_t shards = static_cast<std::size_t>(num_shards);
  ShardLayout layout;
  layout.num_shards = shards;
  const std::size_t base = num_blocks / shards;
  const std::size_t extra = num_blocks % shards;
  layout.blocks_per_shard.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    layout.blocks_per_shard.push_back(base + (s < extra ? 1 : 0));
  }
  return layout;
}

std::size_t shard_first_block(const ShardLayout& layout, std::size_t s) {
  if (s > layout.blocks_per_shard.size()) {
    throw std::out_of_range("shard_first_block: shard out of range");
  }
  std::size_t first = 0;
  for (std::size_t i = 0; i < s; ++i) first += layout.blocks_per_shard[i];
  return first;
}

void write_dataset_manifest(const std::string& dir,
                            const std::string& basename,
                            const std::string& label,
                            const qc::BlockShape& shape,
                            std::size_t num_blocks,
                            const ShardLayout& layout) {
  std::ofstream mf(manifest_path(dir, basename), std::ios::trunc);
  if (!mf) throw std::runtime_error("cannot write manifest");
  mf << kManifestMagic << "\n";
  mf << label << "\n";
  mf << shape.n[0] << " " << shape.n[1] << " " << shape.n[2] << " "
     << shape.n[3] << "\n";
  mf << num_blocks << " " << layout.num_shards << "\n";
  for (std::size_t n : layout.blocks_per_shard) mf << n << " ";
  mf << "\n";
  if (!mf) throw std::runtime_error("manifest write failed");
}

bool shard_is_complete(const std::string& dir, const std::string& basename,
                       int shard, std::size_t expected_blocks) {
  try {
    const std::size_t fsize = rank_file_size(dir, basename, shard);
    const StreamInfo info = peek_shard(dir, basename, shard, fsize);
    if (info.num_blocks != expected_blocks) return false;
    // The header alone is not proof of completion: a fresh ShardWriter
    // declaring expected_blocks writes it final before any payload.  A
    // finished shard additionally carries an intact trailing footer and
    // a parsable offset table; a mid-dump truncation loses both.
    if (info.version >= kStreamVersionDict) {
      const auto tail = read_rank_file_slice(
          dir, basename, shard, fsize - detail::kDictFooterBytes,
          detail::kDictFooterBytes);
      const detail::DictFooter footer =
          detail::parse_dict_footer(tail, fsize);
      return footer.num_blocks == expected_blocks;
    }
    if (info.version == kStreamVersionIndexed) {
      const auto tail = read_rank_file_slice(
          dir, basename, shard, fsize - detail::kIndexFooterBytes,
          detail::kIndexFooterBytes);
      const detail::IndexFooter footer =
          detail::parse_index_footer(tail, fsize);
      if (footer.num_blocks != expected_blocks) return false;
      const auto table = read_rank_file_slice(
          dir, basename, shard, footer.index_offset,
          fsize - detail::kIndexFooterBytes - footer.index_offset);
      BlockIndex::parse(table, detail::kGlobalHeaderBytes,
                        footer.index_offset, info.num_blocks);
      return true;
    }
    // Legacy v2 shards have no footer to validate structurally; prove
    // completeness the hard way by decoding the whole shard.
    const auto bytes = read_rank_file(dir, basename, shard);
    return decompress(bytes).size() ==
           expected_blocks * info.spec.block_size();
  } catch (...) {
    return false;
  }
}

// ---- ShardWriter --------------------------------------------------------

namespace {

std::unique_ptr<AsyncSink> maybe_async(OstreamSink& sink,
                                       const ShardIo& io) {
  if (!io.async) return nullptr;
  return std::make_unique<AsyncSink>(
      sink, AsyncSink::Options{.queue_depth = io.queue_depth,
                               .chunk_bytes = io.chunk_bytes});
}

}  // namespace

ShardWriter::ShardWriter(const std::string& dir, const std::string& basename,
                         int shard, const BlockSpec& spec,
                         const Params& params,
                         std::uint64_t expected_blocks, const ShardIo& io)
    : path_(rank_file_path(dir, basename, shard)) {
  file_.open(path_, std::ios::binary | std::ios::out | std::ios::trunc);
  if (!file_) throw std::runtime_error("cannot open for write: " + path_);
  sink_ = std::make_unique<OstreamSink>(file_);
  async_ = maybe_async(*sink_, io);
  writer_ = std::make_unique<StreamWriter>(
      async_ ? static_cast<ByteSink&>(*async_) : *sink_, spec, params,
      StreamWriterOptions{.expected_blocks = expected_blocks});
}

ShardWriter::ShardWriter(const std::string& dir, const std::string& basename,
                         int shard, const Params& params, const ShardIo& io)
    : path_(rank_file_path(dir, basename, shard)), appending_(true) {
  const std::size_t fsize = rank_file_size(dir, basename, shard);
  const StreamInfo info = peek_shard(dir, basename, shard, fsize);
  if (info.version < kStreamVersionIndexed) {
    throw std::runtime_error(
        "ShardWriter: cannot append to an unindexed (v2) shard");
  }
  if (info.version >= kStreamVersionDict) {
    throw std::runtime_error(
        "ShardWriter: cannot append to a dictionary (v4) shard; its "
        "dictionary was sealed at finish()");
  }
  if (fsize < detail::kGlobalHeaderBytes + detail::kIndexFooterBytes) {
    throw std::runtime_error("shard too short for index footer");
  }
  const auto tail =
      read_rank_file_slice(dir, basename, shard,
                           fsize - detail::kIndexFooterBytes,
                           detail::kIndexFooterBytes);
  const detail::IndexFooter footer =
      detail::parse_index_footer(tail, fsize);
  if (footer.num_blocks != info.num_blocks) {
    throw std::runtime_error(
        "shard index footer disagrees with its header");
  }
  const std::size_t table_end = fsize - detail::kIndexFooterBytes;
  const auto table =
      read_rank_file_slice(dir, basename, shard, footer.index_offset,
                           table_end - footer.index_offset);
  const BlockIndex index =
      BlockIndex::parse(table, detail::kGlobalHeaderBytes,
                        footer.index_offset, info.num_blocks);
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
  if (!file_) throw std::runtime_error("cannot open for append: " + path_);
  file_.seekp(static_cast<std::streamoff>(index.payload_end()));
  sink_ = std::make_unique<OstreamSink>(file_, 0);
  async_ = maybe_async(*sink_, io);
  writer_ = std::make_unique<StreamWriter>(
      async_ ? static_cast<ByteSink&>(*async_) : *sink_, info, params,
      index);
}

ShardWriter::~ShardWriter() = default;

void ShardWriter::put_block(std::span<const double> block) {
  obs::ScopedTimer timer(shard_metrics().shard_append_ns);
  writer_->put_block(block);
}

void ShardWriter::put_values(std::span<const double> values) {
  obs::ScopedTimer timer(shard_metrics().shard_append_ns);
  writer_->put_values(values);
}

std::size_t ShardWriter::finish() {
  const std::size_t total = writer_->finish();
  if (async_) {
    async_->flush();
    io_stats_.backpressure_wait_ns = async_->backpressure_wait_ns();
    io_stats_.idle_wait_ns = async_->idle_wait_ns();
    io_stats_.apply_ns = async_->apply_ns();
    async_.reset();  // join the drain thread before flushing the file
  }
  shard_metrics().shards_finished.inc();
  shard_metrics().shard_bytes_written.add(total);
  file_.flush();
  if (!file_) throw std::runtime_error("write failed: " + path_);
  file_.close();
  if (appending_) {
    // Re-emitting the table over the old one can only grow the file, but
    // truncate defensively so a finished shard never carries stale bytes.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    if (!ec && size != total) {
      std::filesystem::resize_file(path_, total, ec);
      if (ec) throw std::runtime_error("truncate failed: " + path_);
    }
  }
  return total;
}

// ---- ShardedDatasetWriter ----------------------------------------------

ShardedDatasetWriter::ShardedDatasetWriter(
    const std::string& dir, const std::string& basename, std::string label,
    const qc::BlockShape& shape, std::size_t num_blocks,
    const Params& params, int num_shards, const ShardIo& io)
    : dir_(dir),
      basename_(basename),
      label_(std::move(label)),
      shape_(shape),
      num_blocks_(num_blocks),
      params_(params),
      layout_(make_shard_layout(num_blocks, num_shards)),
      io_(io) {}

ShardedDatasetWriter::~ShardedDatasetWriter() = default;

void ShardedDatasetWriter::roll_() {
  const BlockSpec spec{shape_.num_sub_blocks(), shape_.sub_block_size()};
  while (shard_ < layout_.num_shards) {
    if (!cur_) {
      cur_ = std::make_unique<ShardWriter>(
          dir_, basename_, static_cast<int>(shard_), spec, params_,
          layout_.blocks_per_shard[shard_], io_);
      blocks_in_shard_ = 0;
    }
    if (blocks_in_shard_ < layout_.blocks_per_shard[shard_]) return;
    total_bytes_ += cur_->finish();
    io_stats_.backpressure_wait_ns += cur_->io_stats().backpressure_wait_ns;
    io_stats_.idle_wait_ns += cur_->io_stats().idle_wait_ns;
    io_stats_.apply_ns += cur_->io_stats().apply_ns;
    cur_.reset();
    ++shard_;
  }
}

void ShardedDatasetWriter::put_block(std::span<const double> block) {
  roll_();
  if (!cur_) {
    throw std::runtime_error(
        "ShardedDatasetWriter: more blocks than declared");
  }
  cur_->put_block(block);
  ++blocks_in_shard_;
  ++blocks_written_;
}

void ShardedDatasetWriter::put_values(std::span<const double> values) {
  const std::size_t bs = shape_.block_size();
  if (!tail_.empty()) {
    const std::size_t take = std::min(bs - tail_.size(), values.size());
    tail_.insert(tail_.end(), values.begin(), values.begin() + take);
    values = values.subspan(take);
    if (tail_.size() == bs) {
      put_block(tail_);
      tail_.clear();
    }
  }
  while (values.size() >= bs) {
    put_block(values.first(bs));
    values = values.subspan(bs);
  }
  if (!values.empty()) tail_.assign(values.begin(), values.end());
}

std::size_t ShardedDatasetWriter::finish() {
  if (!tail_.empty()) {
    throw std::runtime_error(
        "ShardedDatasetWriter: trailing partial block");
  }
  roll_();  // finishes the open shard and any remaining zero-block ones
  if (blocks_written_ != num_blocks_ || shard_ != layout_.num_shards) {
    throw std::runtime_error(
        "ShardedDatasetWriter: fewer blocks than declared");
  }
  write_dataset_manifest(dir_, basename_, label_, shape_, num_blocks_,
                         layout_);
  return total_bytes_;
}

std::size_t write_compressed_dataset(const qc::EriDataset& ds,
                                     const Params& params, int num_shards,
                                     const std::string& dir,
                                     const std::string& basename) {
  // Streams through ShardedDatasetWriter -- same shard layout, manifest,
  // and shard bytes as compressing each shard whole ever produced.
  ShardedDatasetWriter writer(dir, basename, ds.label, ds.shape,
                              ds.num_blocks, params, num_shards);
  writer.put_values(ds.values);
  return writer.finish();
}

CompressedDatasetInfo read_manifest(const std::string& dir,
                                    const std::string& basename) {
  std::ifstream mf(manifest_path(dir, basename));
  if (!mf) throw std::runtime_error("cannot open manifest");
  std::string magic;
  std::getline(mf, magic);
  if (magic != kManifestMagic) {
    throw std::runtime_error("bad manifest magic");
  }
  CompressedDatasetInfo info;
  std::getline(mf, info.label);
  for (auto& n : info.shape.n) {
    unsigned v;
    mf >> v;
    n = static_cast<std::uint16_t>(v);
  }
  mf >> info.num_blocks >> info.layout.num_shards;
  info.layout.blocks_per_shard.resize(info.layout.num_shards);
  for (auto& n : info.layout.blocks_per_shard) mf >> n;
  if (!mf) throw std::runtime_error("truncated manifest");
  return info;
}

std::vector<std::size_t> shard_block_counts(const std::string& dir,
                                            const std::string& basename) {
  const CompressedDatasetInfo info = read_manifest(dir, basename);
  std::vector<std::size_t> counts(info.layout.num_shards);
  std::size_t total = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    const int shard = static_cast<int>(s);
    const std::size_t fsize = rank_file_size(dir, basename, shard);
    counts[s] = peek_shard(dir, basename, shard, fsize).num_blocks;
    total += counts[s];
  }
  if (total != info.num_blocks) {
    throw std::runtime_error(
        "shard headers disagree with manifest block count");
  }
  return counts;
}

std::vector<double> read_blocks(const std::string& dir,
                                const std::string& basename,
                                std::size_t first, std::size_t count) {
  const std::vector<std::size_t> counts = shard_block_counts(dir, basename);
  std::size_t total = 0;
  for (std::size_t n : counts) total += n;
  if (first + count < first || first + count > total) {
    throw std::out_of_range("read_blocks: range exceeds dataset");
  }
  std::vector<double> out;
  std::size_t shard_first = 0;  // dataset index of this shard's block 0
  for (std::size_t s = 0; s < counts.size() && count > 0; ++s) {
    const std::size_t shard_end = shard_first + counts[s];
    if (first < shard_end) {
      const std::size_t local_first = first - shard_first;
      const std::size_t take =
          std::min(count, counts[s] - local_first);
      const auto values = read_shard_blocks(
          dir, basename, static_cast<int>(s), local_first, take);
      out.insert(out.end(), values.begin(), values.end());
      first += take;
      count -= take;
    }
    shard_first = shard_end;
  }
  return out;
}

qc::EriDataset read_compressed_dataset(const std::string& dir,
                                       const std::string& basename) {
  const CompressedDatasetInfo info = read_manifest(dir, basename);
  qc::EriDataset ds;
  ds.label = info.label;
  ds.shape = info.shape;
  ds.num_blocks = info.num_blocks;
  ds.values.reserve(info.num_blocks * info.shape.block_size());
  for (std::size_t s = 0; s < info.layout.num_shards; ++s) {
    // Each shard's own header says how many blocks it holds; the
    // manifest's per-shard layout is advisory only.
    const auto bytes = read_rank_file(dir, basename, static_cast<int>(s));
    const StreamInfo shard = peek_info(bytes);
    const auto values = decompress(bytes);
    if (values.size() != shard.num_blocks * info.shape.block_size()) {
      throw std::runtime_error("shard size mismatch");
    }
    ds.values.insert(ds.values.end(), values.begin(), values.end());
  }
  if (ds.values.size() != info.num_blocks * info.shape.block_size()) {
    throw std::runtime_error(
        "shard headers disagree with manifest block count");
  }
  return ds;
}

}  // namespace pastri::io
