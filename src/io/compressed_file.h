// compressed_file.h - On-disk container for PaSTRI-compressed ERI
// datasets, sharded file-per-process as the paper's Bebop experiment
// does ("file-per-process mode with POSIX I/O on each process").
//
// Each shard is an independent PaSTRI stream over a contiguous range of
// blocks, so ranks can dump and load their shards with no coordination;
// a small manifest records the dataset metadata and shard layout.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/pastri.h"
#include "core/stream.h"
#include "qc/dataset.h"

namespace pastri::io {

struct ShardLayout {
  std::size_t num_shards = 1;
  std::vector<std::size_t> blocks_per_shard;  ///< one entry per shard
};

/// Streams blocks into one shard file (`<dir>/<basename>.<shard>`) as
/// they arrive -- the shard is one PaSTRI container written through a
/// core StreamWriter, so peak memory is O(batch), not O(shard), and the
/// bytes are identical to compressing the whole shard at once.
class ShardWriter {
 public:
  /// Create/truncate a fresh shard.  Declaring `expected_blocks` writes
  /// the header final immediately; with kUnknownBlockCount the count is
  /// back-filled at finish() (shard files are seekable, so both work).
  ShardWriter(const std::string& dir, const std::string& basename,
              int shard, const BlockSpec& spec, const Params& params,
              std::uint64_t expected_blocks = kUnknownBlockCount);

  /// Reopen an existing shard and append blocks after the ones it holds:
  /// the old offset table and footer are overwritten and re-emitted at
  /// finish().  Throws std::runtime_error on a legacy (v2, unindexed)
  /// shard -- it has no table to extend -- and std::invalid_argument if
  /// `params` disagree with the shard header's bound/metric/tree.
  ShardWriter(const std::string& dir, const std::string& basename,
              int shard, const Params& params);

  ~ShardWriter();
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// Append one block / an arbitrary slice of values (partial block
  /// tails carry over between calls, as in StreamWriter::put_values).
  void put_block(std::span<const double> block);
  void put_values(std::span<const double> values);

  /// Total blocks the finished shard will hold (pre-existing + appended).
  std::size_t blocks() const { return writer_->blocks_appended(); }

  /// Emit the offset table and footer; returns the shard size in bytes.
  std::size_t finish();

  const Stats& stats() const { return writer_->stats(); }

 private:
  std::string path_;
  std::fstream file_;
  std::unique_ptr<OstreamSink> sink_;
  std::unique_ptr<StreamWriter> writer_;
  bool appending_ = false;
};

/// Streams a whole dataset into `num_shards` shard files plus the
/// manifest, routing blocks to shards in the same contiguous layout
/// `write_compressed_dataset` uses.  Blocks are compressed and written
/// as they arrive; nothing dense is ever buffered beyond one encode
/// batch, so a compute -> compress pipeline needs no ERI tensor.
class ShardedDatasetWriter {
 public:
  /// The dataset metadata (label/shape/total block count) is declared
  /// up-front -- it fixes the shard layout and the manifest contents.
  ShardedDatasetWriter(const std::string& dir, const std::string& basename,
                       std::string label, const qc::BlockShape& shape,
                       std::size_t num_blocks, const Params& params,
                       int num_shards);
  ~ShardedDatasetWriter();
  ShardedDatasetWriter(const ShardedDatasetWriter&) = delete;
  ShardedDatasetWriter& operator=(const ShardedDatasetWriter&) = delete;

  void put_block(std::span<const double> block);
  void put_values(std::span<const double> values);

  std::size_t blocks_written() const { return blocks_written_; }

  /// Finish the open shard, write the manifest.  Throws
  /// std::runtime_error unless exactly the declared number of blocks
  /// was appended.  Returns total compressed bytes across shards.
  std::size_t finish();

 private:
  void roll_();  ///< close full shards, open the next one

  std::string dir_, basename_, label_;
  qc::BlockShape shape_;
  std::size_t num_blocks_ = 0;
  Params params_;
  ShardLayout layout_;

  std::unique_ptr<ShardWriter> cur_;
  std::size_t shard_ = 0;            // index of the open/next shard
  std::size_t blocks_in_shard_ = 0;  // appended to the open shard
  std::size_t blocks_written_ = 0;
  std::size_t total_bytes_ = 0;
  std::vector<double> tail_;  // partial block from put_values
};

/// Compress `ds` into `num_shards` independent streams under
/// `<dir>/<basename>.manifest` + `<dir>/<basename>.<shard>`.
/// Returns the total compressed bytes written.
std::size_t write_compressed_dataset(const qc::EriDataset& ds,
                                     const Params& params, int num_shards,
                                     const std::string& dir,
                                     const std::string& basename);

/// Load a dataset written by write_compressed_dataset.  Values satisfy
/// the stream's error bound relative to the originals.
qc::EriDataset read_compressed_dataset(const std::string& dir,
                                       const std::string& basename);

/// Read only the manifest (label, shape, shard layout).
struct CompressedDatasetInfo {
  std::string label;
  qc::BlockShape shape;
  std::size_t num_blocks = 0;
  ShardLayout layout;
};
CompressedDatasetInfo read_manifest(const std::string& dir,
                                    const std::string& basename);

/// Per-shard block counts read from the shard stream headers themselves
/// (one small ranged read per shard), NOT from the manifest -- the
/// shards are the source of truth for their own layout.  Throws
/// std::runtime_error if the totals disagree with the manifest.
std::vector<std::size_t> shard_block_counts(const std::string& dir,
                                            const std::string& basename);

/// Load only dataset blocks [first, first+count), in dataset block
/// order, without reading whole shards: indexed (v3) shards are touched
/// with four ranged reads (header, footer, offset table, payload span);
/// legacy shards fall back to a full read.  Returns count*block_size
/// doubles.  Throws std::out_of_range if the range exceeds the dataset.
std::vector<double> read_blocks(const std::string& dir,
                                const std::string& basename,
                                std::size_t first, std::size_t count);

}  // namespace pastri::io
