// compressed_file.h - On-disk container for PaSTRI-compressed ERI
// datasets, sharded file-per-process as the paper's Bebop experiment
// does ("file-per-process mode with POSIX I/O on each process").
//
// Each shard is an independent PaSTRI stream over a contiguous range of
// blocks, so ranks can dump and load their shards with no coordination;
// a small manifest records the dataset metadata and shard layout.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/pastri.h"
#include "core/stream.h"
#include "qc/dataset.h"

namespace pastri::io {

struct ShardLayout {
  std::size_t num_shards = 1;
  std::vector<std::size_t> blocks_per_shard;  ///< one entry per shard
};

/// The contiguous layout every sharded writer/reader in this module
/// uses: blocks are dealt round-down with the remainder spread over the
/// leading shards.  Exposed so out-of-process producers (the pipeline's
/// resume path, the fork-based bench ranks) can address "shard s holds
/// dataset blocks [first_block(s), first_block(s)+count)" without a
/// ShardedDatasetWriter instance.
ShardLayout make_shard_layout(std::size_t num_blocks, int num_shards);

/// Dataset block index of shard `s`'s first block under `layout`.
std::size_t shard_first_block(const ShardLayout& layout, std::size_t s);

/// Write the dataset manifest for shards produced outside
/// ShardedDatasetWriter (per-rank dumps, resumed dumps).  The layout
/// must describe the shard files actually on disk.
void write_dataset_manifest(const std::string& dir,
                            const std::string& basename,
                            const std::string& label,
                            const qc::BlockShape& shape,
                            std::size_t num_blocks,
                            const ShardLayout& layout);

/// True iff `<dir>/<basename>.<shard>` exists and parses as a finished
/// container holding exactly `expected_blocks`: header block count
/// final, trailing index/dict footer intact, offset table consistent.
/// Any parse failure (missing file, mid-dump truncation, stale partial
/// shard) returns false rather than throwing -- this is the resume
/// probe, and an unreadable shard just means "redo it".
bool shard_is_complete(const std::string& dir, const std::string& basename,
                       int shard, std::size_t expected_blocks);

/// io-stage knobs shared by ShardWriter/ShardedDatasetWriter: when
/// `async` is set the shard bytes drain to disk on a background thread
/// through core AsyncSink, overlapping file io with the encode stage.
/// Shard bytes are identical either way.
struct ShardIo {
  bool async = false;
  std::size_t queue_depth = 4;           ///< chunks in flight per shard
  std::size_t chunk_bytes = 256 * 1024;  ///< io coalescing granularity
};

/// Cumulative AsyncSink telemetry, all zero when io was synchronous.
struct ShardIoStats {
  std::uint64_t backpressure_wait_ns = 0;  ///< encode blocked on io
  std::uint64_t idle_wait_ns = 0;          ///< io waiting for encode
  std::uint64_t apply_ns = 0;              ///< io busy in write/patch
};

/// Streams blocks into one shard file (`<dir>/<basename>.<shard>`) as
/// they arrive -- the shard is one PaSTRI container written through a
/// core StreamWriter, so peak memory is O(batch), not O(shard), and the
/// bytes are identical to compressing the whole shard at once.
class ShardWriter {
 public:
  /// Create/truncate a fresh shard.  Declaring `expected_blocks` writes
  /// the header final immediately; with kUnknownBlockCount the count is
  /// back-filled at finish() (shard files are seekable, so both work).
  ShardWriter(const std::string& dir, const std::string& basename,
              int shard, const BlockSpec& spec, const Params& params,
              std::uint64_t expected_blocks = kUnknownBlockCount,
              const ShardIo& io = {});

  /// Reopen an existing shard and append blocks after the ones it holds:
  /// the old offset table and footer are overwritten and re-emitted at
  /// finish().  Throws std::runtime_error on a legacy (v2, unindexed)
  /// shard -- it has no table to extend -- and std::invalid_argument if
  /// `params` disagree with the shard header's bound/metric/tree.
  ShardWriter(const std::string& dir, const std::string& basename,
              int shard, const Params& params, const ShardIo& io = {});

  ~ShardWriter();
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  /// Append one block / an arbitrary slice of values (partial block
  /// tails carry over between calls, as in StreamWriter::put_values).
  void put_block(std::span<const double> block);
  void put_values(std::span<const double> values);

  /// Total blocks the finished shard will hold (pre-existing + appended).
  std::size_t blocks() const { return writer_->blocks_appended(); }

  /// Emit the offset table and footer; returns the shard size in bytes.
  std::size_t finish();

  const Stats& stats() const { return writer_->stats(); }

  /// AsyncSink telemetry, final once finish() returned (zeros when sync).
  const ShardIoStats& io_stats() const { return io_stats_; }

 private:
  std::string path_;
  std::fstream file_;
  std::unique_ptr<OstreamSink> sink_;
  std::unique_ptr<AsyncSink> async_;  ///< only when ShardIo::async
  std::unique_ptr<StreamWriter> writer_;
  ShardIoStats io_stats_;
  bool appending_ = false;
};

/// Streams a whole dataset into `num_shards` shard files plus the
/// manifest, routing blocks to shards in the same contiguous layout
/// `write_compressed_dataset` uses.  Blocks are compressed and written
/// as they arrive; nothing dense is ever buffered beyond one encode
/// batch, so a compute -> compress pipeline needs no ERI tensor.
class ShardedDatasetWriter {
 public:
  /// The dataset metadata (label/shape/total block count) is declared
  /// up-front -- it fixes the shard layout and the manifest contents.
  ShardedDatasetWriter(const std::string& dir, const std::string& basename,
                       std::string label, const qc::BlockShape& shape,
                       std::size_t num_blocks, const Params& params,
                       int num_shards, const ShardIo& io = {});
  ~ShardedDatasetWriter();
  ShardedDatasetWriter(const ShardedDatasetWriter&) = delete;
  ShardedDatasetWriter& operator=(const ShardedDatasetWriter&) = delete;

  void put_block(std::span<const double> block);
  void put_values(std::span<const double> values);

  std::size_t blocks_written() const { return blocks_written_; }

  /// Summed over finished shards (zeros when io is synchronous).
  const ShardIoStats& io_stats() const { return io_stats_; }

  /// Finish the open shard, write the manifest.  Throws
  /// std::runtime_error unless exactly the declared number of blocks
  /// was appended.  Returns total compressed bytes across shards.
  std::size_t finish();

 private:
  void roll_();  ///< close full shards, open the next one

  std::string dir_, basename_, label_;
  qc::BlockShape shape_;
  std::size_t num_blocks_ = 0;
  Params params_;
  ShardLayout layout_;
  ShardIo io_;
  ShardIoStats io_stats_;

  std::unique_ptr<ShardWriter> cur_;
  std::size_t shard_ = 0;            // index of the open/next shard
  std::size_t blocks_in_shard_ = 0;  // appended to the open shard
  std::size_t blocks_written_ = 0;
  std::size_t total_bytes_ = 0;
  std::vector<double> tail_;  // partial block from put_values
};

/// Compress `ds` into `num_shards` independent streams under
/// `<dir>/<basename>.manifest` + `<dir>/<basename>.<shard>`.
/// Returns the total compressed bytes written.
std::size_t write_compressed_dataset(const qc::EriDataset& ds,
                                     const Params& params, int num_shards,
                                     const std::string& dir,
                                     const std::string& basename);

/// Load a dataset written by write_compressed_dataset.  Values satisfy
/// the stream's error bound relative to the originals.
qc::EriDataset read_compressed_dataset(const std::string& dir,
                                       const std::string& basename);

/// Read only the manifest (label, shape, shard layout).
struct CompressedDatasetInfo {
  std::string label;
  qc::BlockShape shape;
  std::size_t num_blocks = 0;
  ShardLayout layout;
};
CompressedDatasetInfo read_manifest(const std::string& dir,
                                    const std::string& basename);

/// Per-shard block counts read from the shard stream headers themselves
/// (one small ranged read per shard), NOT from the manifest -- the
/// shards are the source of truth for their own layout.  Throws
/// std::runtime_error if the totals disagree with the manifest.
std::vector<std::size_t> shard_block_counts(const std::string& dir,
                                            const std::string& basename);

/// Load only dataset blocks [first, first+count), in dataset block
/// order, without reading whole shards: indexed (v3) shards are touched
/// with four ranged reads (header, footer, offset table, payload span);
/// legacy shards fall back to a full read.  Returns count*block_size
/// doubles.  Throws std::out_of_range if the range exceeds the dataset.
std::vector<double> read_blocks(const std::string& dir,
                                const std::string& basename,
                                std::size_t first, std::size_t count);

}  // namespace pastri::io
