// compressed_file.h - On-disk container for PaSTRI-compressed ERI
// datasets, sharded file-per-process as the paper's Bebop experiment
// does ("file-per-process mode with POSIX I/O on each process").
//
// Each shard is an independent PaSTRI stream over a contiguous range of
// blocks, so ranks can dump and load their shards with no coordination;
// a small manifest records the dataset metadata and shard layout.
#pragma once

#include <string>
#include <vector>

#include "core/pastri.h"
#include "qc/dataset.h"

namespace pastri::io {

struct ShardLayout {
  std::size_t num_shards = 1;
  std::vector<std::size_t> blocks_per_shard;  ///< one entry per shard
};

/// Compress `ds` into `num_shards` independent streams under
/// `<dir>/<basename>.manifest` + `<dir>/<basename>.<shard>`.
/// Returns the total compressed bytes written.
std::size_t write_compressed_dataset(const qc::EriDataset& ds,
                                     const Params& params, int num_shards,
                                     const std::string& dir,
                                     const std::string& basename);

/// Load a dataset written by write_compressed_dataset.  Values satisfy
/// the stream's error bound relative to the originals.
qc::EriDataset read_compressed_dataset(const std::string& dir,
                                       const std::string& basename);

/// Read only the manifest (label, shape, shard layout).
struct CompressedDatasetInfo {
  std::string label;
  qc::BlockShape shape;
  std::size_t num_blocks = 0;
  ShardLayout layout;
};
CompressedDatasetInfo read_manifest(const std::string& dir,
                                    const std::string& basename);

/// Per-shard block counts read from the shard stream headers themselves
/// (one small ranged read per shard), NOT from the manifest -- the
/// shards are the source of truth for their own layout.  Throws
/// std::runtime_error if the totals disagree with the manifest.
std::vector<std::size_t> shard_block_counts(const std::string& dir,
                                            const std::string& basename);

/// Load only dataset blocks [first, first+count), in dataset block
/// order, without reading whole shards: indexed (v3) shards are touched
/// with four ranged reads (header, footer, offset table, payload span);
/// legacy shards fall back to a full read.  Returns count*block_size
/// doubles.  Throws std::out_of_range if the range exceeds the dataset.
std::vector<double> read_blocks(const std::string& dir,
                                const std::string& basename,
                                std::size_t first, std::size_t count);

}  // namespace pastri::io
