// store_capi.cpp - The pastri_store_* C API family (declared in
// core/pastri_capi.h).  Lives in the io library rather than core
// because a store handle reaches down every layer: io (container and
// shard files), qc (ERI stores over a basis), and core (readers,
// sharded cache).  Same contract as the rest of the C API: every entry
// point returns pastri_status, no exception ever crosses the boundary,
// failures record a thread-local message for
// pastri_last_error_message().
#include <cstring>
#include <memory>

#include "core/capi_detail.h"
#include "core/pastri_capi.h"
#include "io/block_store.h"
#include "qc/compressed_eri_store.h"
#include "qc/eri_pipeline.h"
#include "qc/molecule.h"
#include "qc/sto3g.h"

namespace {

using pastri::capi::fail;

pastri::CacheConfig to_cpp_cache(const pastri_store_cache_config* cfg) {
  pastri::CacheConfig out{1024, 8};
  if (cfg != nullptr) {
    out.capacity_blocks = cfg->capacity_blocks;
    out.num_shards = cfg->num_shards == 0 ? 8 : cfg->num_shards;
  }
  return out;
}

}  // namespace

/* Opaque store handle: exactly one backing is non-null. */
struct pastri_store {
  std::unique_ptr<pastri::io::BlockStore> file;
  std::unique_ptr<pastri::qc::CompressedEriStore> eri;

  pastri::CacheStats stats() const {
    return file ? file->cache_stats() : eri->cache_stats();
  }
};

extern "C" {

void pastri_store_cache_config_init(pastri_store_cache_config* config) {
  if (config == nullptr) return;
  config->capacity_blocks = 1024;
  config->num_shards = 8;
}

pastri_status pastri_store_open(const char* path,
                                const pastri_store_cache_config* cache,
                                pastri_store** out) {
  if (path == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    auto store = std::make_unique<pastri_store>();
    store->file = std::make_unique<pastri::io::BlockStore>(
        path, to_cpp_cache(cache));
    *out = store.release();
    return PASTRI_OK;
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_store_open_eri(const char* molecule,
                                    const pastri_params* params,
                                    const pastri_store_cache_config* cache,
                                    pastri_store** out) {
  if (molecule == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    pastri::Params p;
    if (params != nullptr) p = pastri::capi::to_cpp_params(*params);
    const pastri::qc::Molecule mol = pastri::qc::make_molecule(molecule);
    const pastri::qc::BasisSet basis = pastri::qc::make_sto3g_basis(mol);
    auto store = std::make_unique<pastri_store>();
    store->eri =
        std::make_unique<pastri::qc::CompressedEriStore>(basis, p);
    store->eri->set_cache(to_cpp_cache(cache));
    *out = store.release();
    return PASTRI_OK;
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_store_num_blocks(const pastri_store* store,
                                      size_t* out) {
  if (store == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  *out = store->file ? store->file->num_blocks()
                     : store->eri->num_shells() * store->eri->num_shells() *
                           store->eri->num_shells() *
                           store->eri->num_shells();
  return PASTRI_OK;
}

pastri_status pastri_store_block_size(const pastri_store* store,
                                      size_t* out) {
  if (store == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  if (!store->file) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT,
                "ERI stores have per-quartet block sizes; use "
                "pastri_store_shell_block");
  }
  *out = store->file->block_size();
  return PASTRI_OK;
}

pastri_status pastri_store_get_block(pastri_store* store, size_t block,
                                     double* out, size_t out_capacity) {
  if (store == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  if (!store->file) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT,
                "not a file-backed store; use pastri_store_shell_block");
  }
  try {
    if (block >= store->file->num_blocks()) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "block index out of range");
    }
    if (out_capacity < store->file->block_size()) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "output buffer too small");
    }
    const auto values = store->file->block(block);
    std::memcpy(out, values->data(), values->size() * sizeof(double));
    return PASTRI_OK;
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_store_get_range(pastri_store* store, size_t first,
                                     size_t count, double* out,
                                     size_t out_capacity) {
  if (store == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  if (!store->file) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT,
                "not a file-backed store; use pastri_store_shell_block");
  }
  try {
    if (first + count < first ||
        first + count > store->file->num_blocks()) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "block range out of range");
    }
    const std::size_t need = count * store->file->block_size();
    if (out_capacity < need) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "output buffer too small");
    }
    const auto values = store->file->range(first, count);
    std::memcpy(out, values.data(), values.size() * sizeof(double));
    return PASTRI_OK;
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_store_shell_block(pastri_store* store, size_t p,
                                       size_t q, size_t u, size_t v,
                                       double* out, size_t out_capacity,
                                       size_t* out_count) {
  if (store == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  if (!store->eri) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT,
                "not an ERI store; use pastri_store_get_block");
  }
  try {
    const auto values = store->eri->shell_block(p, q, u, v);
    if (out_capacity < values->size()) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "output buffer too small");
    }
    std::memcpy(out, values->data(), values->size() * sizeof(double));
    if (out_count != nullptr) *out_count = values->size();
    return PASTRI_OK;
  } catch (const std::out_of_range& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_store_set_cache(
    pastri_store* store, const pastri_store_cache_config* cache) {
  if (store == nullptr || cache == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::CacheConfig cfg = to_cpp_cache(cache);
    if (store->file) store->file->set_cache(cfg);
    else store->eri->set_cache(cfg);
    return PASTRI_OK;
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_store_get_cache_stats(const pastri_store* store,
                                           pastri_store_cache_stats* out) {
  if (store == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::CacheStats st = store->stats();
    out->hits = st.hits;
    out->misses = st.misses;
    out->bytes = st.bytes;
    out->unique_blocks = st.unique_blocks;
    return PASTRI_OK;
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

void pastri_store_close(pastri_store* store) { delete store; }

void pastri_eri_dump_options_init(pastri_eri_dump_options* options) {
  if (options == nullptr) return;
  options->num_shards = 1;
  options->resume = 0;
  options->pipelined = 1;
  options->batch_blocks = 0;
}

pastri_status pastri_eri_dump(const char* molecule, const char* config,
                              const pastri_params* params,
                              const char* dir, const char* basename,
                              const pastri_eri_dump_options* options,
                              pastri_eri_dump_result* result) {
  if (molecule == nullptr || config == nullptr || dir == nullptr ||
      basename == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    pastri::Params p;
    if (params != nullptr) p = pastri::capi::to_cpp_params(*params);
    pastri_eri_dump_options defaults;
    pastri_eri_dump_options_init(&defaults);
    const pastri_eri_dump_options& o =
        options != nullptr ? *options : defaults;
    if (o.num_shards < 1) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "num_shards must be >= 1");
    }

    const pastri::qc::Molecule mol = pastri::qc::make_molecule(molecule);
    pastri::qc::DatasetOptions dopt;
    dopt.config = pastri::qc::parse_config(config);

    pastri::qc::EriDumpOptions dump;
    dump.num_shards = o.num_shards;
    dump.resume = o.resume != 0;
    pastri::qc::EriPipelineOptions popt;
    popt.pipelined = o.pipelined != 0;
    popt.async_io = o.pipelined != 0;
    popt.batch_blocks = o.batch_blocks;

    const pastri::qc::EriDumpResult r =
        pastri::qc::dump_eri_sharded(mol, dopt, p, dir, basename, dump,
                                     popt);
    if (result != nullptr) {
      result->num_blocks = r.pipeline.meta.num_blocks;
      result->bytes_written = r.pipeline.bytes_written;
      result->shards_total = r.shards_total;
      result->shards_reused = r.shards_reused;
      result->wall_ns = r.pipeline.wall_ns;
      result->overlap_efficiency = r.pipeline.overlap_efficiency;
    }
    return PASTRI_OK;
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_IO, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

}  // extern "C"
