// pfs_model.h - Parallel-filesystem performance model for the Fig. 10
// experiment.
//
// The paper measures dump/load of the alanine (dd|dd) dataset on Bebop
// (GPFS, POSIX file-per-process, 256-2048 cores).  We do not have a
// 2048-core GPFS system, so we model the cost structure explicitly --
// which is faithful to the paper's own observation that the experiment is
// "dominated by the disk access times for reading and writing":
//
//   t_dump(N) = t_compress(N) + compressed_size / B_agg(N)
//   t_load(N) = compressed_size / B_agg(N) + t_decompress(N)
//
// where per-core compute parallelizes perfectly (PaSTRI/SZ/ZFP are all
// embarrassingly parallel over files) and the aggregate filesystem
// bandwidth saturates with core count:
//
//   B_agg(N) = min(N * b_core, B_peak * N / (N + N_half))
//
// All compute rates and compression ratios are *measured* from the real
// codecs in this repository; only the filesystem constants are modelled
// (defaults approximate a mid-size GPFS installation).
#pragma once

#include <string>
#include <vector>

namespace pastri::io {

/// Defaults are calibrated against the magnitudes the paper reports for
/// Bebop's GPFS under file-per-process POSIX I/O from hundreds of ranks:
/// uncompressed dump/load of the TB-scale workload takes "more than
/// thousands of seconds", while compressed dumps land in minutes.  That
/// pins the *effective contended* aggregate bandwidth near 500 MB/s --
/// far below GPFS hardware peak, as expected when thousands of files are
/// created simultaneously.
struct PfsModel {
  double peak_bandwidth_mbps = 500.0;   ///< contended aggregate GPFS BW
  double half_saturation_cores = 128.0; ///< cores at half of peak
  double per_core_bandwidth_mbps = 50.0;  ///< single-stream share

  /// Effective aggregate bandwidth for N concurrent files.
  double aggregate_bandwidth(int cores) const;
};

/// One compressor's measured characteristics on the target dataset.
struct CodecProfile {
  std::string name;
  double compression_ratio = 1.0;
  double compress_rate_mbps = 1.0;    ///< per core, measured
  double decompress_rate_mbps = 1.0;  ///< per core, measured
};

/// The modelled experiment: `total_data_mb` of original data split
/// file-per-process over `cores` ranks.
struct IoTimes {
  double compute_seconds = 0.0;  ///< (de)compression, parallelized
  double io_seconds = 0.0;       ///< PFS transfer of the compressed bytes
  double total_seconds() const { return compute_seconds + io_seconds; }
};

IoTimes dump_time(const PfsModel& pfs, const CodecProfile& codec,
                  double total_data_mb, int cores);
IoTimes load_time(const PfsModel& pfs, const CodecProfile& codec,
                  double total_data_mb, int cores);

/// Raw (uncompressed) transfer time, for the paper's remark that writing
/// the original data "takes extremely long time".
double raw_io_time(const PfsModel& pfs, double total_data_mb, int cores);

}  // namespace pastri::io
