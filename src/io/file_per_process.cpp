#include "io/file_per_process.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri::io {
namespace {

std::string rank_path(const std::string& dir, const std::string& basename,
                      int rank) {
  return rank_file_path(dir, basename, rank);
}

/// Ranged-read telemetry (obs/metric_names.h): every slice read a shard
/// consumer issues is counted here, whatever layer asked for it.
struct SliceMetrics {
  obs::Counter ranged_reads = obs::registry().counter(obs::kIoRangedReads);
  obs::Counter ranged_read_bytes =
      obs::registry().counter(obs::kIoRangedReadBytes);
  obs::Histogram ranged_read_ns =
      obs::registry().histogram(obs::kIoRangedReadNs);
};

const SliceMetrics& slice_metrics() {
  static const SliceMetrics m;
  return m;
}

}  // namespace

std::string rank_file_path(const std::string& dir,
                           const std::string& basename, int rank) {
  return dir + "/" + basename + "." + std::to_string(rank);
}

void write_rank_file(const std::string& dir, const std::string& basename,
                     int rank, std::span<const std::uint8_t> data) {
  const std::string path = rank_path(dir, basename, rank);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

std::vector<std::uint8_t> read_rank_file(const std::string& dir,
                                         const std::string& basename,
                                         int rank) {
  const std::string path = rank_path(dir, basename, rank);
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw std::runtime_error("read failed: " + path);
  return data;
}

std::size_t rank_file_size(const std::string& dir,
                           const std::string& basename, int rank) {
  const std::string path = rank_path(dir, basename, rank);
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("cannot stat: " + path);
  return static_cast<std::size_t>(size);
}

std::vector<std::uint8_t> read_rank_file_slice(const std::string& dir,
                                               const std::string& basename,
                                               int rank, std::size_t offset,
                                               std::size_t count) {
  const SliceMetrics& metrics = slice_metrics();
  obs::ScopedTimer timer(metrics.ranged_read_ns);
  metrics.ranged_reads.inc();
  metrics.ranged_read_bytes.add(count);
  const std::string path = rank_path(dir, basename, rank);
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  if (offset > size || count > size - offset) {
    throw std::runtime_error("slice out of range: " + path);
  }
  f.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::uint8_t> data(count);
  f.read(reinterpret_cast<char*>(data.data()),
         static_cast<std::streamsize>(count));
  if (!f) throw std::runtime_error("read failed: " + path);
  return data;
}

bool remove_rank_file(const std::string& dir, const std::string& basename,
                      int rank) {
  std::error_code ec;
  return std::filesystem::remove(rank_path(dir, basename, rank), ec);
}

double timed_dump(const std::string& dir, const std::string& basename,
                  int ranks, std::span<const std::uint8_t> data) {
  if (ranks < 1) throw std::invalid_argument("ranks must be >= 1");
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t chunk = (data.size() + ranks - 1) / ranks;
  for (int r = 0; r < ranks; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * chunk;
    if (off >= data.size()) {
      write_rank_file(dir, basename, r, {});
      continue;
    }
    write_rank_file(dir, basename, r,
                    data.subspan(off, std::min(chunk, data.size() - off)));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::uint8_t> timed_load(const std::string& dir,
                                     const std::string& basename, int ranks,
                                     double* seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> out;
  for (int r = 0; r < ranks; ++r) {
    const auto part = read_rank_file(dir, basename, r);
    out.insert(out.end(), part.begin(), part.end());
  }
  if (seconds) {
    *seconds = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  }
  return out;
}

}  // namespace pastri::io
