// file_per_process.h - POSIX file-per-process dump/load, the I/O pattern
// the paper uses on GPFS ("file-per-process mode with POSIX I/O on each
// process", Section V-A).  Locally this exercises the real read/write
// path; the Fig. 10 bench combines it with the PfsModel to extrapolate
// to cluster scale.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pastri::io {

/// Path of rank `rank`'s file: `<dir>/<basename>.<rank>`.
std::string rank_file_path(const std::string& dir,
                           const std::string& basename, int rank);

/// Write `data` as `<dir>/<basename>.<rank>` (created/truncated).
/// Throws std::runtime_error on failure.
void write_rank_file(const std::string& dir, const std::string& basename,
                     int rank, std::span<const std::uint8_t> data);

/// Read back a rank file written by write_rank_file.
std::vector<std::uint8_t> read_rank_file(const std::string& dir,
                                         const std::string& basename,
                                         int rank);

/// Size in bytes of a rank file.  Throws std::runtime_error if missing.
std::size_t rank_file_size(const std::string& dir,
                           const std::string& basename, int rank);

/// Read `count` bytes starting at `offset` from a rank file.  The slice
/// must lie inside the file; throws std::runtime_error otherwise.  This
/// is the primitive behind partial shard loads: header, index footer,
/// offset table, and payload ranges are each one small ranged read
/// instead of pulling the whole shard.
std::vector<std::uint8_t> read_rank_file_slice(const std::string& dir,
                                               const std::string& basename,
                                               int rank, std::size_t offset,
                                               std::size_t count);

/// Remove a rank file (best-effort; returns false if it did not exist).
bool remove_rank_file(const std::string& dir, const std::string& basename,
                      int rank);

/// Dump `data` split evenly over `ranks` files, each written serially;
/// returns total elapsed seconds.  Used to measure the local single-node
/// write rate that seeds the PfsModel.
double timed_dump(const std::string& dir, const std::string& basename,
                  int ranks, std::span<const std::uint8_t> data);

/// Load previously dumped rank files back into one buffer; returns
/// elapsed seconds via `*seconds` (may be null).
std::vector<std::uint8_t> timed_load(const std::string& dir,
                                     const std::string& basename, int ranks,
                                     double* seconds);

}  // namespace pastri::io
