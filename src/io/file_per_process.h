// file_per_process.h - POSIX file-per-process dump/load, the I/O pattern
// the paper uses on GPFS ("file-per-process mode with POSIX I/O on each
// process", Section V-A).  Locally this exercises the real read/write
// path; the Fig. 10 bench combines it with the PfsModel to extrapolate
// to cluster scale.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pastri::io {

/// Write `data` as `<dir>/<basename>.<rank>` (created/truncated).
/// Throws std::runtime_error on failure.
void write_rank_file(const std::string& dir, const std::string& basename,
                     int rank, std::span<const std::uint8_t> data);

/// Read back a rank file written by write_rank_file.
std::vector<std::uint8_t> read_rank_file(const std::string& dir,
                                         const std::string& basename,
                                         int rank);

/// Remove a rank file (best-effort; returns false if it did not exist).
bool remove_rank_file(const std::string& dir, const std::string& basename,
                      int rank);

/// Dump `data` split evenly over `ranks` files, each written serially;
/// returns total elapsed seconds.  Used to measure the local single-node
/// write rate that seeds the PfsModel.
double timed_dump(const std::string& dir, const std::string& basename,
                  int ranks, std::span<const std::uint8_t> data);

/// Load previously dumped rank files back into one buffer; returns
/// elapsed seconds via `*seconds` (may be null).
std::vector<std::uint8_t> timed_load(const std::string& dir,
                                     const std::string& basename, int ranks,
                                     double* seconds);

}  // namespace pastri::io
