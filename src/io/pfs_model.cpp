#include "io/pfs_model.h"

#include <algorithm>
#include <stdexcept>

namespace pastri::io {

double PfsModel::aggregate_bandwidth(int cores) const {
  if (cores < 1) throw std::invalid_argument("cores must be >= 1");
  const double n = static_cast<double>(cores);
  const double linear = n * per_core_bandwidth_mbps;
  const double saturating =
      peak_bandwidth_mbps * n / (n + half_saturation_cores);
  return std::min(linear, saturating);
}

IoTimes dump_time(const PfsModel& pfs, const CodecProfile& codec,
                  double total_data_mb, int cores) {
  IoTimes t;
  const double per_core_mb = total_data_mb / cores;
  t.compute_seconds = per_core_mb / codec.compress_rate_mbps;
  const double compressed_mb = total_data_mb / codec.compression_ratio;
  t.io_seconds = compressed_mb / pfs.aggregate_bandwidth(cores);
  return t;
}

IoTimes load_time(const PfsModel& pfs, const CodecProfile& codec,
                  double total_data_mb, int cores) {
  IoTimes t;
  const double compressed_mb = total_data_mb / codec.compression_ratio;
  t.io_seconds = compressed_mb / pfs.aggregate_bandwidth(cores);
  const double per_core_mb = total_data_mb / cores;
  t.compute_seconds = per_core_mb / codec.decompress_rate_mbps;
  return t;
}

double raw_io_time(const PfsModel& pfs, double total_data_mb, int cores) {
  return total_data_mb / pfs.aggregate_bandwidth(cores);
}

}  // namespace pastri::io
