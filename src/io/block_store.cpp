#include "io/block_store.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/compressed_file.h"

namespace pastri::io {
namespace {

// Container magics, little-endian as the first four file bytes.
constexpr std::uint32_t kStreamMagic = 0x52545350;  // "PSTR"
constexpr std::uint32_t kToolMagic = 0x50435354;    // "TSCP"

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("BlockStore: cannot open " + path);
  const auto size = f.tellg();
  f.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw std::runtime_error("BlockStore: read failed: " + path);
  return data;
}

std::uint32_t leading_magic(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 4) return 0;
  std::uint32_t m;
  std::memcpy(&m, bytes.data(), 4);
  return m;
}

/// Byte offset of the PaSTRI stream inside a pastri_tool ("TSCP")
/// container: magic, label length + label, four 16-bit shape fields.
std::size_t tool_stream_offset(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8) {
    throw std::runtime_error("BlockStore: truncated tool container");
  }
  std::uint32_t label_len;
  std::memcpy(&label_len, bytes.data() + 4, 4);
  if (label_len > (1u << 20)) {
    throw std::runtime_error("BlockStore: corrupt tool container label");
  }
  const std::size_t off = 8 + static_cast<std::size_t>(label_len) + 4 * 2;
  if (off >= bytes.size()) {
    throw std::runtime_error("BlockStore: truncated tool container");
  }
  return off;
}

}  // namespace

BlockStore::BlockStore(const std::string& path, const CacheConfig& cache)
    : cache_(cache) {
  if (path.empty()) {
    throw std::invalid_argument("BlockStore: empty path");
  }
  if (path.size() > 9 && path.rfind(".manifest") == path.size() - 9) {
    open_manifest_(path);
  } else {
    open_container_(path);
  }
  if (block_size() == 0) {
    throw std::runtime_error("BlockStore: zero block size");
  }
}

void BlockStore::add_shard_(std::vector<std::uint8_t>&& bytes,
                            const std::string& what) {
  Shard shard;
  shard.bytes = std::move(bytes);
  switch (leading_magic(shard.bytes)) {
    case kToolMagic:
      shard.stream_offset = tool_stream_offset(shard.bytes);
      break;
    case kStreamMagic:
      shard.stream_offset = 0;
      break;
    default:
      throw std::runtime_error("BlockStore: " + what +
                               " is not a PaSTRI container");
  }
  const std::span<const std::uint8_t> stream(
      shard.bytes.data() + shard.stream_offset,
      shard.bytes.size() - shard.stream_offset);
  shard.reader = std::make_unique<BlockReader>(stream);
  shard.first_block = num_blocks_;
  if (shards_.empty()) {
    info_ = shard.reader->info();
  } else if (shard.reader->info().spec.num_sub_blocks !=
                 info_.spec.num_sub_blocks ||
             shard.reader->info().spec.sub_block_size !=
                 info_.spec.sub_block_size) {
    throw std::runtime_error("BlockStore: " + what +
                             " disagrees on the block spec");
  }
  num_blocks_ += shard.reader->num_blocks();
  compressed_bytes_ += shard.bytes.size();
  shards_.push_back(std::move(shard));
}

void BlockStore::open_container_(const std::string& path) {
  add_shard_(read_file(path), path);
}

void BlockStore::open_manifest_(const std::string& path) {
  const std::filesystem::path p(path);
  const std::string dir =
      p.parent_path().empty() ? "." : p.parent_path().string();
  const std::string basename = p.stem().string();  // strips ".manifest"
  const CompressedDatasetInfo ds = read_manifest(dir, basename);
  for (std::size_t s = 0; s < ds.layout.num_shards; ++s) {
    const std::string shard_path =
        dir + "/" + basename + "." + std::to_string(s);
    add_shard_(read_file(shard_path), shard_path);
  }
  if (num_blocks_ != ds.num_blocks) {
    throw std::runtime_error(
        "BlockStore: shard block counts disagree with the manifest");
  }
}

std::shared_ptr<const std::vector<double>> BlockStore::block(
    std::size_t index) const {
  if (index >= num_blocks_) {
    throw std::out_of_range("BlockStore: block index out of range");
  }
  if (auto hit = cache_.lookup(index)) return hit;
  // Shards are contiguous in block order; binary-search the owner.
  std::size_t lo = 0, hi = shards_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (shards_[mid].first_block <= index) lo = mid;
    else hi = mid - 1;
  }
  const Shard& shard = shards_[lo];
  std::vector<double> decoded =
      shard.reader->read_block(index - shard.first_block);
  return cache_.insert(index, std::move(decoded));
}

std::vector<double> BlockStore::range(std::size_t first,
                                      std::size_t count) const {
  if (first + count < first || first + count > num_blocks_) {
    throw std::out_of_range("BlockStore: block range out of range");
  }
  std::vector<double> out;
  out.reserve(count * block_size());
  for (const Shard& shard : shards_) {
    const std::size_t shard_end =
        shard.first_block + shard.reader->num_blocks();
    const std::size_t lo = std::max(first, shard.first_block);
    const std::size_t hi = std::min(first + count, shard_end);
    if (lo >= hi) continue;
    const std::vector<double> part =
        shard.reader->read_range(lo - shard.first_block, hi - lo);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace pastri::io
