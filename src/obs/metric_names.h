// metric_names.h - Canonical metric names of the PaSTRI telemetry layer.
//
// Naming scheme: pastri_<layer>_<what>[_<unit>], where <layer> is one of
// core / stream / io / qc / tool, monotonic counters end in `_total`,
// latency histograms end in `_ns`, and gauges carry their unit suffix
// (`_mbps`, `_ratio`).  Every instrumentation site and the registry's
// standard-set pre-registration reference these constants, so the name
// an exporter renders can never drift from the name a hot path updates.
#pragma once

#include <string_view>

namespace pastri::obs {

// ---- core: per-block codec stages --------------------------------------
inline constexpr std::string_view kCoreBlocksEncoded =
    "pastri_core_blocks_encoded_total";
inline constexpr std::string_view kCoreBlocksDecoded =
    "pastri_core_blocks_decoded_total";
inline constexpr std::string_view kCorePatternSelectNs =
    "pastri_core_pattern_select_ns";
inline constexpr std::string_view kCoreQuantizeNs =
    "pastri_core_quantize_ns";
inline constexpr std::string_view kCoreEcqEncodeNs =
    "pastri_core_ecq_encode_ns";
inline constexpr std::string_view kCoreEcqDecodeNs =
    "pastri_core_ecq_decode_ns";
inline constexpr std::string_view kCoreEcqDenseSymbols =
    "pastri_core_ecq_dense_symbols_total";
inline constexpr std::string_view kCoreEncodeBytes =
    "pastri_core_encode_bytes_total";
inline constexpr std::string_view kCoreSimdBackend =
    "pastri_core_simd_backend";
inline constexpr std::string_view kCoreSimdDecodeBackend =
    "pastri_core_simd_decode_backend";
inline constexpr std::string_view kCoreDictLiterals =
    "pastri_core_dict_literals_total";
inline constexpr std::string_view kCoreDictExactRefs =
    "pastri_core_dict_exact_refs_total";
inline constexpr std::string_view kCoreDictDeltaRefs =
    "pastri_core_dict_delta_refs_total";
inline constexpr std::string_view kCoreDictBytes =
    "pastri_core_dict_bytes";

// ---- stream: batch pipeline --------------------------------------------
inline constexpr std::string_view kStreamEncodeBatchNs =
    "pastri_stream_encode_batch_ns";
inline constexpr std::string_view kStreamDecodeBatchNs =
    "pastri_stream_decode_batch_ns";
inline constexpr std::string_view kStreamEncodeBatchBlocks =
    "pastri_stream_encode_batch_blocks";
inline constexpr std::string_view kStreamDecodeBatchBlocks =
    "pastri_stream_decode_batch_blocks";
inline constexpr std::string_view kStreamRawBytesIn =
    "pastri_stream_raw_bytes_in_total";
inline constexpr std::string_view kStreamCompressedBytesOut =
    "pastri_stream_compressed_bytes_out_total";
inline constexpr std::string_view kStreamCompressedBytesIn =
    "pastri_stream_compressed_bytes_in_total";
inline constexpr std::string_view kStreamRawBytesOut =
    "pastri_stream_raw_bytes_out_total";
inline constexpr std::string_view kStreamCompressionRatio =
    "pastri_stream_compression_ratio";

// ---- io: shard read/write ----------------------------------------------
inline constexpr std::string_view kIoRangedReads =
    "pastri_io_ranged_reads_total";
inline constexpr std::string_view kIoRangedReadBytes =
    "pastri_io_ranged_read_bytes_total";
inline constexpr std::string_view kIoRangedReadNs =
    "pastri_io_ranged_read_ns";
inline constexpr std::string_view kIoShardAppendNs =
    "pastri_io_shard_append_ns";
inline constexpr std::string_view kIoShardBytesWritten =
    "pastri_io_shard_bytes_written_total";
inline constexpr std::string_view kIoShardsFinished =
    "pastri_io_shards_finished_total";
inline constexpr std::string_view kIoBlocksRead =
    "pastri_io_blocks_read_total";

// ---- qc: compressed ERI store + integral generation --------------------
inline constexpr std::string_view kQcEriCacheHits =
    "pastri_qc_eri_cache_hits_total";
inline constexpr std::string_view kQcEriCacheMisses =
    "pastri_qc_eri_cache_misses_total";
inline constexpr std::string_view kQcEriQuartets =
    "pastri_qc_eri_quartets_total";
inline constexpr std::string_view kQcEriGenerateBatchNs =
    "pastri_qc_eri_generate_batch_ns";
inline constexpr std::string_view kQcEriGenerateRate =
    "pastri_qc_eri_generate_rate_qps";
inline constexpr std::string_view kQcShellPairCacheHits =
    "pastri_qc_shellpair_cache_hits_total";
inline constexpr std::string_view kQcShellPairCacheMisses =
    "pastri_qc_shellpair_cache_misses_total";
inline constexpr std::string_view kQcBoysEvals =
    "pastri_qc_boys_evals_total";

// ---- qc: fused compute->compress->io pipeline --------------------------
inline constexpr std::string_view kQcPipelineChunks =
    "pastri_qc_pipeline_chunks_total";
inline constexpr std::string_view kQcPipelineQueueDepth =
    "pastri_qc_pipeline_queue_depth";
inline constexpr std::string_view kQcPipelineComputeStallNs =
    "pastri_qc_pipeline_compute_stall_ns_total";
inline constexpr std::string_view kQcPipelineEncodeStallNs =
    "pastri_qc_pipeline_encode_stall_ns_total";
inline constexpr std::string_view kQcPipelineIoStallNs =
    "pastri_qc_pipeline_io_stall_ns_total";
inline constexpr std::string_view kQcPipelineOverlapPct =
    "pastri_qc_pipeline_overlap_pct";

// ---- serve: the pastri_serve daemon ------------------------------------
inline constexpr std::string_view kServeRequests =
    "pastri_serve_requests_total";
inline constexpr std::string_view kServeRequestNs =
    "pastri_serve_request_ns";
inline constexpr std::string_view kServeBytesIn =
    "pastri_serve_bytes_in_total";
inline constexpr std::string_view kServeBytesOut =
    "pastri_serve_bytes_out_total";
inline constexpr std::string_view kServeShed =
    "pastri_serve_shed_total";
inline constexpr std::string_view kServeErrors =
    "pastri_serve_errors_total";
inline constexpr std::string_view kServeActiveConnections =
    "pastri_serve_active_connections";
inline constexpr std::string_view kServeOpenStores =
    "pastri_serve_open_stores";
inline constexpr std::string_view kServePutQueueDepth =
    "pastri_serve_put_queue_depth";

}  // namespace pastri::obs
