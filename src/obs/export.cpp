// export.cpp - JSON and Prometheus renderers for metrics snapshots.
#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "core/pastri.h"

namespace pastri::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string export_json(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += c.name;
    out += "\":";
    append_u64(out, c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += g.name;
    out += "\":";
    append_double(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += ",\"mean\":";
    append_double(out, h.mean());
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '[';
      if (b + 1 >= kHistBuckets) {
        out += "-1";  // unbounded overflow bucket
      } else {
        append_u64(out, histogram_bucket_bound(b));
      }
      out += ',';
      append_u64(out, h.buckets[b]);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string export_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    out += "# TYPE ";
    out += c.name;
    out += " counter\n";
    out += c.name;
    out += ' ';
    append_u64(out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    out += "# TYPE ";
    out += g.name;
    out += " gauge\n";
    out += g.name;
    out += ' ';
    append_double(out, g.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    out += "# TYPE ";
    out += h.name;
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      cumulative += h.buckets[b];
      if (h.buckets[b] == 0 && b + 1 < kHistBuckets) continue;
      out += h.name;
      out += "_bucket{le=\"";
      if (b + 1 >= kHistBuckets) {
        out += "+Inf";
      } else {
        append_u64(out, histogram_bucket_bound(b));
      }
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += h.name;
    out += "_sum ";
    append_u64(out, h.sum);
    out += '\n';
    out += h.name;
    out += "_count ";
    append_u64(out, h.count);
    out += '\n';
  }
  return out;
}

std::string export_run_json(const Stats& stats,
                            const MetricsSnapshot& snap) {
  std::string out = "{\"stats\":";
  out += stats.to_json();
  out += ",\"metrics\":";
  out += export_json(snap);
  out += "}";
  return out;
}

}  // namespace pastri::obs
