// export.h - Render a MetricsSnapshot as JSON or Prometheus text.
//
// JSON shape (stable, scriptable):
//   {"counters": {name: value, ...},
//    "gauges": {name: value, ...},
//    "histograms": {name: {"count": n, "sum": s, "mean": m,
//                          "buckets": [[upper_bound, count], ...]}, ...}}
// Histogram buckets are emitted sparsely (nonzero only) with inclusive
// upper bounds; the unbounded last bucket renders as -1 in JSON and as
// le="+Inf" in Prometheus text.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace pastri {
struct Stats;  // core/pastri.h
}

namespace pastri::obs {

std::string export_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (counters, gauges, and cumulative
/// histogram buckets with _bucket/_sum/_count series).
std::string export_prometheus(const MetricsSnapshot& snapshot);

/// One compression run as a single JSON document: the codec's Stats
/// (serialized via Stats::to_json, the exact object pastri_tool prints)
/// under "stats", and the metrics snapshot under "metrics" -- so the
/// CLI report and the exporter can never drift.
std::string export_run_json(const Stats& stats,
                            const MetricsSnapshot& snapshot);

}  // namespace pastri::obs
