// metrics.h - Always-compiled, lightweight telemetry for PaSTRI.
//
// The paper's whole evaluation is throughput-shaped (compression and
// decompression rate, parallel dump/load time, recompute-vs-decompress),
// so the codec needs first-class instrumentation whose cost never
// distorts what it measures.  The design here keeps the hot path to one
// relaxed atomic add:
//
//   * `MetricsRegistry` hands out `Counter` / `Gauge` / `Histogram`
//     handles for stable names (see metric_names.h).  Handles are plain
//     {registry, slot} values, safe to copy and share across threads.
//   * Counters and histograms are sharded per thread: each thread that
//     touches a registry lazily gets its own `MetricShard` (registered
//     under a mutex once, cached in a thread_local after), and every
//     update is a relaxed fetch_add on the thread's own cache lines --
//     no cross-thread contention, no locks on the hot path.
//   * `snapshot()` aggregates all shards under the registry mutex into a
//     plain-value `MetricsSnapshot` that the exporters (obs/export.h)
//     render as JSON or Prometheus text.
//   * `set_enabled(false)` turns every update into a relaxed load + early
//     return and makes `ScopedTimer` skip its clock reads, so a
//     no-metrics baseline costs nothing measurable (bench_omp_scaling
//     proves the enabled-vs-disabled delta stays under 2%).
//
// Histograms use fixed power-of-two buckets over nanoseconds: bucket i
// holds values whose bit width is i (bucket 0 = exactly zero), which
// covers 1 ns .. ~9 min in 40 buckets with a branch-free index.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pastri::obs {

class MetricsRegistry;

/// Capacity of one registry.  Registration past a limit yields inert
/// handles (updates become no-ops) instead of failing -- telemetry must
/// never take the process down.
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxGauges = 32;
inline constexpr std::size_t kMaxHistograms = 64;
inline constexpr std::size_t kHistBuckets = 40;

/// Bucket of a nanosecond (or any uint64) value: its bit width, clamped.
inline std::size_t histogram_bucket(std::uint64_t v) {
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistBuckets ? w : kHistBuckets - 1;
}

/// Inclusive upper bound of bucket `i` (the last bucket is unbounded).
inline std::uint64_t histogram_bucket_bound(std::size_t i) {
  if (i + 1 >= kHistBuckets) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (std::uint64_t{1} << i) - 1;
}

namespace detail {

/// One thread's private slice of a registry's counters and histograms.
/// Owned by the registry (so values survive thread exit), updated only
/// by its thread, read by snapshot() -- all accesses relaxed atomics.
struct MetricShard {
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<Hist, kMaxHistograms> hists{};
};

}  // namespace detail

/// Monotonic counter handle.  Default-constructed (or past-capacity)
/// handles are inert.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t n) const;
  void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::size_t slot) : reg_(reg), slot_(slot) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t slot_ = 0;
};

/// Last-write-wins gauge (double), for derived rates and ratios.
class Gauge {
 public:
  Gauge() = default;
  inline void set(double value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* reg, std::size_t slot) : reg_(reg), slot_(slot) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t slot_ = 0;
};

/// Fixed-bucket latency/size histogram handle.
class Histogram {
 public:
  Histogram() = default;
  inline void record(std::uint64_t value) const;
  inline bool active() const;  ///< registered and registry enabled

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* reg, std::size_t slot)
      : reg_(reg), slot_(slot) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t slot_ = 0;
};

/// Aggregated point-in-time view of a registry (plain values; safe to
/// keep after the registry changes or dies).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistBuckets> buckets{};
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all PaSTRI instrumentation reports to,
  /// pre-registered with the standard metric set (metric_names.h) so a
  /// snapshot always exposes the full family, exercised or not.
  static MetricsRegistry& instance();

  /// Register-or-look-up a metric by name.  Idempotent; returns an inert
  /// handle when the capacity for that metric type is exhausted.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Aggregate every thread's shard into plain values.
  MetricsSnapshot snapshot() const;

  /// Zero all counters, gauges, and histograms (names stay registered).
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  detail::MetricShard& shard_for_this_thread();
  std::size_t register_slot_(std::vector<std::string>& names,
                             std::size_t capacity, std::string_view name);

  const std::uint64_t id_;  ///< process-unique; keys the TLS shard cache
  std::atomic<bool> enabled_{true};

  mutable std::mutex mu_;  ///< guards shards_ and the name tables
  std::vector<std::unique_ptr<detail::MetricShard>> shards_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> hist_names_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

/// Shorthand for MetricsRegistry::instance().
inline MetricsRegistry& registry() { return MetricsRegistry::instance(); }

inline void Counter::add(std::uint64_t n) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->shard_for_this_thread().counters[slot_].fetch_add(
      n, std::memory_order_relaxed);
}

inline void Gauge::set(double value) const {
  if (reg_ == nullptr || !reg_->enabled()) return;
  reg_->gauges_[slot_].store(value, std::memory_order_relaxed);
}

inline bool Histogram::active() const {
  return reg_ != nullptr && reg_->enabled();
}

inline void Histogram::record(std::uint64_t value) const {
  if (!active()) return;
  auto& h = reg_->shard_for_this_thread().hists[slot_];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[histogram_bucket(value)].fetch_add(1,
                                               std::memory_order_relaxed);
}

/// RAII wall-clock timer: records elapsed nanoseconds into a histogram
/// at scope exit.  When the registry is disabled the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram& hist)
      : hist_(hist), active_(hist.active()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_.record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram hist_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pastri::obs
