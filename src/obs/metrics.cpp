// metrics.cpp - MetricsRegistry: slot allocation, per-thread shard
// management, aggregation, and the standard-set pre-registration.
#include "obs/metrics.h"

#include "obs/metric_names.h"

namespace pastri::obs {
namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

enum class StdType { Counter, Gauge, Histogram };
struct StdMetric {
  std::string_view name;
  StdType type;
};

/// The metrics every layer reports.  Pre-registering them at instance()
/// construction makes snapshots complete and stably ordered even for
/// code paths a given run never exercises.
constexpr StdMetric kStandardMetrics[] = {
    {kCoreBlocksEncoded, StdType::Counter},
    {kCoreBlocksDecoded, StdType::Counter},
    {kCorePatternSelectNs, StdType::Histogram},
    {kCoreQuantizeNs, StdType::Histogram},
    {kCoreEcqEncodeNs, StdType::Histogram},
    {kCoreEcqDecodeNs, StdType::Histogram},
    {kCoreEcqDenseSymbols, StdType::Counter},
    {kCoreEncodeBytes, StdType::Counter},
    {kCoreSimdBackend, StdType::Gauge},
    {kCoreSimdDecodeBackend, StdType::Gauge},
    {kCoreDictLiterals, StdType::Counter},
    {kCoreDictExactRefs, StdType::Counter},
    {kCoreDictDeltaRefs, StdType::Counter},
    {kCoreDictBytes, StdType::Gauge},
    {kStreamEncodeBatchNs, StdType::Histogram},
    {kStreamDecodeBatchNs, StdType::Histogram},
    {kStreamEncodeBatchBlocks, StdType::Histogram},
    {kStreamDecodeBatchBlocks, StdType::Histogram},
    {kStreamRawBytesIn, StdType::Counter},
    {kStreamCompressedBytesOut, StdType::Counter},
    {kStreamCompressedBytesIn, StdType::Counter},
    {kStreamRawBytesOut, StdType::Counter},
    {kStreamCompressionRatio, StdType::Gauge},
    {kIoRangedReads, StdType::Counter},
    {kIoRangedReadBytes, StdType::Counter},
    {kIoRangedReadNs, StdType::Histogram},
    {kIoShardAppendNs, StdType::Histogram},
    {kIoShardBytesWritten, StdType::Counter},
    {kIoShardsFinished, StdType::Counter},
    {kIoBlocksRead, StdType::Counter},
    {kQcEriCacheHits, StdType::Counter},
    {kQcEriCacheMisses, StdType::Counter},
    {kQcEriQuartets, StdType::Counter},
    {kQcEriGenerateBatchNs, StdType::Histogram},
    {kQcEriGenerateRate, StdType::Gauge},
    {kQcShellPairCacheHits, StdType::Counter},
    {kQcShellPairCacheMisses, StdType::Counter},
    {kQcBoysEvals, StdType::Counter},
    {kQcPipelineChunks, StdType::Counter},
    {kQcPipelineQueueDepth, StdType::Gauge},
    {kQcPipelineComputeStallNs, StdType::Counter},
    {kQcPipelineEncodeStallNs, StdType::Counter},
    {kQcPipelineIoStallNs, StdType::Counter},
    {kQcPipelineOverlapPct, StdType::Gauge},
    {kServeRequests, StdType::Counter},
    {kServeRequestNs, StdType::Histogram},
    {kServeBytesIn, StdType::Counter},
    {kServeBytesOut, StdType::Counter},
    {kServeShed, StdType::Counter},
    {kServeErrors, StdType::Counter},
    {kServeActiveConnections, StdType::Gauge},
    {kServeOpenStores, StdType::Gauge},
    {kServePutQueueDepth, StdType::Gauge},
};

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: instrumentation sites hold handles in static
  // storage and worker threads may outlive main()'s statics, so the
  // global registry must never be destroyed.
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();
    for (const StdMetric& m : kStandardMetrics) {
      switch (m.type) {
        case StdType::Counter: r->counter(m.name); break;
        case StdType::Gauge: r->gauge(m.name); break;
        case StdType::Histogram: r->histogram(m.name); break;
      }
    }
    return r;
  }();
  return *reg;
}

std::size_t MetricsRegistry::register_slot_(std::vector<std::string>& names,
                                            std::size_t capacity,
                                            std::string_view name) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  if (names.size() >= capacity) return kMaxCounters + kMaxHistograms;
  names.emplace_back(name);
  return names.size() - 1;
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t slot = register_slot_(counter_names_, kMaxCounters, name);
  if (slot >= kMaxCounters) return Counter{};
  return Counter{this, slot};
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t slot = register_slot_(gauge_names_, kMaxGauges, name);
  if (slot >= kMaxGauges) return Gauge{};
  return Gauge{this, slot};
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t slot = register_slot_(hist_names_, kMaxHistograms, name);
  if (slot >= kMaxHistograms) return Histogram{};
  return Histogram{this, slot};
}

detail::MetricShard& MetricsRegistry::shard_for_this_thread() {
  struct TlsEntry {
    std::uint64_t registry_id;
    detail::MetricShard* shard;
  };
  // Registry ids are process-unique and never reused, so a stale entry
  // for a destroyed registry can never match a live one.
  thread_local std::vector<TlsEntry> tls;
  for (const TlsEntry& e : tls) {
    if (e.registry_id == id_) return *e.shard;
  }
  auto owned = std::make_unique<detail::MetricShard>();
  detail::MetricShard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  tls.push_back({id_, shard});
  return *shard;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters[i].name = counter_names_[i];
  }
  snap.gauges.resize(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges[i].name = gauge_names_[i];
    snap.gauges[i].value = gauges_[i].load(std::memory_order_relaxed);
  }
  snap.histograms.resize(hist_names_.size());
  for (std::size_t i = 0; i < hist_names_.size(); ++i) {
    snap.histograms[i].name = hist_names_[i];
  }
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const auto& h = shard->hists[i];
      auto& s = snap.histograms[i];
      s.count += h.count.load(std::memory_order_relaxed);
      s.sum += h.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        s.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace pastri::obs
