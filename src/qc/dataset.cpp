#include "qc/dataset.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "qc/cartesian.h"

namespace pastri::qc {
namespace {

constexpr char kMagic[8] = {'P', 'a', 'S', 'T', 'R', 'I', 'd', 's'};

int momentum_from_components(int ncomp) {
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    if (num_cartesians(l) == ncomp) return l;
  }
  return -1;
}

}  // namespace

std::string BlockShape::config_name() const {
  std::string s = "(";
  for (int i = 0; i < 4; ++i) {
    const int l = momentum_from_components(n[i]);
    s += (l >= 0) ? shell_letter(l) : '?';
    if (i == 1) s += '|';
  }
  s += ')';
  return s;
}

void write_dataset_header(std::ostream& os,
                          const EriDatasetHeader& header) {
  os.write(kMagic, sizeof(kMagic));
  const std::uint32_t label_len =
      static_cast<std::uint32_t>(header.label.size());
  os.write(reinterpret_cast<const char*>(&label_len), sizeof(label_len));
  os.write(header.label.data(), label_len);
  for (auto v : header.shape.n) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  const std::uint64_t nblocks = header.num_blocks;
  os.write(reinterpret_cast<const char*>(&nblocks), sizeof(nblocks));
  if (!os) throw std::runtime_error("dataset header write failed");
}

EriDatasetHeader read_dataset_header(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad dataset magic");
  }
  EriDatasetHeader header;
  std::uint32_t label_len = 0;
  is.read(reinterpret_cast<char*>(&label_len), sizeof(label_len));
  if (!is || label_len > (1u << 20)) {
    throw std::runtime_error("bad dataset label");
  }
  header.label.resize(label_len);
  is.read(header.label.data(), label_len);
  for (auto& v : header.shape.n) {
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
  }
  std::uint64_t nblocks = 0;
  is.read(reinterpret_cast<char*>(&nblocks), sizeof(nblocks));
  if (!is) throw std::runtime_error("truncated dataset header");
  header.num_blocks = nblocks;
  return header;
}

void save_dataset(const EriDataset& ds, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_dataset_header(f, {ds.label, ds.shape, ds.num_blocks});
  f.write(reinterpret_cast<const char*>(ds.values.data()),
          static_cast<std::streamsize>(ds.values.size() * sizeof(double)));
  if (!f) throw std::runtime_error("write failed: " + path);
}

EriDataset load_dataset(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  EriDatasetHeader header;
  try {
    header = read_dataset_header(f);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + ": " + path);
  }
  EriDataset ds;
  ds.label = std::move(header.label);
  ds.shape = header.shape;
  ds.num_blocks = header.num_blocks;
  ds.values.resize(ds.num_blocks * ds.shape.block_size());
  f.read(reinterpret_cast<char*>(ds.values.data()),
         static_cast<std::streamsize>(ds.values.size() * sizeof(double)));
  if (!f) throw std::runtime_error("truncated dataset values: " + path);
  return ds;
}

}  // namespace pastri::qc
