#include "qc/dataset.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "qc/cartesian.h"

namespace pastri::qc {
namespace {

constexpr char kMagic[8] = {'P', 'a', 'S', 'T', 'R', 'I', 'd', 's'};

int momentum_from_components(int ncomp) {
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    if (num_cartesians(l) == ncomp) return l;
  }
  return -1;
}

}  // namespace

std::string BlockShape::config_name() const {
  std::string s = "(";
  for (int i = 0; i < 4; ++i) {
    const int l = momentum_from_components(n[i]);
    s += (l >= 0) ? shell_letter(l) : '?';
    if (i == 1) s += '|';
  }
  s += ')';
  return s;
}

void save_dataset(const EriDataset& ds, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  f.write(kMagic, sizeof(kMagic));
  const std::uint32_t label_len = static_cast<std::uint32_t>(ds.label.size());
  f.write(reinterpret_cast<const char*>(&label_len), sizeof(label_len));
  f.write(ds.label.data(), label_len);
  for (auto v : ds.shape.n) {
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  const std::uint64_t nblocks = ds.num_blocks;
  f.write(reinterpret_cast<const char*>(&nblocks), sizeof(nblocks));
  f.write(reinterpret_cast<const char*>(ds.values.data()),
          static_cast<std::streamsize>(ds.values.size() * sizeof(double)));
  if (!f) throw std::runtime_error("write failed: " + path);
}

EriDataset load_dataset(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  char magic[8];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("bad dataset magic: " + path);
  }
  EriDataset ds;
  std::uint32_t label_len = 0;
  f.read(reinterpret_cast<char*>(&label_len), sizeof(label_len));
  if (!f || label_len > (1u << 20)) {
    throw std::runtime_error("bad dataset label: " + path);
  }
  ds.label.resize(label_len);
  f.read(ds.label.data(), label_len);
  for (auto& v : ds.shape.n) {
    f.read(reinterpret_cast<char*>(&v), sizeof(v));
  }
  std::uint64_t nblocks = 0;
  f.read(reinterpret_cast<char*>(&nblocks), sizeof(nblocks));
  if (!f) throw std::runtime_error("truncated dataset header: " + path);
  ds.num_blocks = nblocks;
  ds.values.resize(nblocks * ds.shape.block_size());
  f.read(reinterpret_cast<char*>(ds.values.data()),
         static_cast<std::streamsize>(ds.values.size() * sizeof(double)));
  if (!f) throw std::runtime_error("truncated dataset values: " + path);
  return ds;
}

}  // namespace pastri::qc
