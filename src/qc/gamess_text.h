// gamess_text.h - Text-format adapter for ERI block dumps.
//
// GAMESS deployments exchange integral data through dump files; this
// adapter defines a simple, self-describing text format so datasets can
// be moved in and out of this library without the binary container:
//
//   $ERIDATA label <free text>
//   $SHAPE n0 n1 n2 n3
//   $BLOCK <index>
//   <block_size values, whitespace-separated, %.17g>
//   ... one $BLOCK section per block ...
//   $END
//
// Values survive a round trip bit-exactly (printed with max_digits10).
#pragma once

#include <iosfwd>
#include <string>

#include "qc/dataset.h"

namespace pastri::qc {

/// Write a dataset in the text format (throws on I/O failure).
void write_gamess_text(const EriDataset& ds, std::ostream& out);
void save_gamess_text(const EriDataset& ds, const std::string& path);

/// Parse the text format (throws std::runtime_error on malformed input).
EriDataset read_gamess_text(std::istream& in);
EriDataset load_gamess_text(const std::string& path);

}  // namespace pastri::qc
