// dataset.h - ERI dataset container: a stream of equally-shaped 4-D shell
// blocks flattened to 1-D, exactly the layout GAMESS hands to PaSTRI.
//
// Block layout (Fig. 2 of the paper): element (ia, ib, ic, id) of block
// (AB|CD) lives at ((ia*nB + ib)*nC + ic)*nD + id.  A *sub-block* is one
// contiguous run of nC*nD values at fixed (ia, ib); there are nA*nB
// sub-blocks per block (Algorithm 1 lines 3-4).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace pastri::qc {

/// Shape of every block in a dataset, as component counts of the four
/// shells (e.g. (dd|dd) -> {6,6,6,6}, (fd|ff) -> {10,6,10,10}).
struct BlockShape {
  std::array<std::uint16_t, 4> n{1, 1, 1, 1};

  std::size_t block_size() const {
    return std::size_t{n[0]} * n[1] * n[2] * n[3];
  }
  std::size_t num_sub_blocks() const { return std::size_t{n[0]} * n[1]; }
  std::size_t sub_block_size() const { return std::size_t{n[2]} * n[3]; }

  bool operator==(const BlockShape&) const = default;

  /// Human-readable configuration name, e.g. "(dd|dd)".
  std::string config_name() const;
};

/// A dataset: metadata plus the concatenated block values.
struct EriDataset {
  std::string label;      ///< e.g. "benzene (dd|dd)"
  BlockShape shape;
  std::size_t num_blocks = 0;
  std::vector<double> values;  ///< num_blocks * shape.block_size() doubles

  std::size_t size_bytes() const { return values.size() * sizeof(double); }

  std::span<const double> block(std::size_t b) const {
    const std::size_t bs = shape.block_size();
    return {values.data() + b * bs, bs};
  }
  std::span<double> block(std::size_t b) {
    const std::size_t bs = shape.block_size();
    return {values.data() + b * bs, bs};
  }
};

/// Serialize to / from a simple binary container (magic + header + raw
/// doubles).  Throws std::runtime_error on I/O or format errors.
void save_dataset(const EriDataset& ds, const std::string& path);
EriDataset load_dataset(const std::string& path);

/// The .eri container header alone -- everything but the values.  The
/// header always carries the block count, which is what lets streaming
/// compressors on non-seekable sinks (pipes) declare it up-front.
struct EriDatasetHeader {
  std::string label;
  BlockShape shape;
  std::size_t num_blocks = 0;
};

/// Stream-level .eri (de)serialization for bounded-memory pipelines:
/// read/write the header through the current stream position, then
/// stream the raw doubles (num_blocks * shape.block_size() of them)
/// yourself.  Byte-compatible with save_dataset/load_dataset; works on
/// stdin/stdout.  Throws std::runtime_error on I/O or format errors.
void write_dataset_header(std::ostream& os, const EriDatasetHeader& header);
EriDatasetHeader read_dataset_header(std::istream& is);

}  // namespace pastri::qc
