// md_eri.h - Two-electron repulsion integrals over contracted Cartesian
// Gaussian shells via the McMurchie-Davidson scheme.
//
// For primitives with exponents a,b,c,d on centers A,B,C,D:
//
//   (ab|cd) = 2 pi^{5/2} / (p q sqrt(p+q))
//             * sum_{tuv} E^{ab}_{tuv} sum_{TUV} (-1)^{T+U+V} E^{cd}_{TUV}
//               R_{t+T, u+U, v+V}(alpha, P-Q)
//
// where p = a+b, q = c+d, alpha = pq/(p+q), E are 1-D Hermite expansion
// coefficients of Cartesian Gaussian products and R are Hermite Coulomb
// integrals bottoming out in the Boys function.  This is the textbook
// formulation (Helgaker-Jorgensen-Olsen ch. 9) and is exactly the class of
// engine GAMESS's rotated-axis/rys codes implement.
#pragma once

#include <span>
#include <vector>

#include "qc/gaussian.h"

namespace pastri::qc {

/// 1-D Hermite expansion coefficients E_t^{ij} for a primitive pair in one
/// Cartesian direction.  Table layout: E(i,j,t) for 0<=i<=imax,
/// 0<=j<=jmax, 0<=t<=i+j.
class HermiteE {
 public:
  /// Build the table for exponents (a, b) at 1-D centers (Ax, Bx).
  HermiteE(int imax, int jmax, double a, double b, double Ax, double Bx);

  double operator()(int i, int j, int t) const {
    if (t < 0 || t > i + j) return 0.0;
    return table_[index_(i, j, t)];
  }

 private:
  std::size_t index_(int i, int j, int t) const {
    return (static_cast<std::size_t>(i) * (jmax_ + 1) + j) * (tmax_ + 1) + t;
  }

  int jmax_, tmax_;
  std::vector<double> table_;
};

/// Hermite Coulomb integral tensor R^0_{tuv}(alpha, PQ) for all
/// t+u+v <= L.  Internally evaluates the auxiliary orders R^n via the
/// standard downward-in-n recurrences and the Boys function.
class HermiteR {
 public:
  /// Workspace is sized for `lmax_total`; reusable across quartets.
  explicit HermiteR(int lmax_total);

  /// Fill for the given alpha and PQ = P - Q vector.
  /// `l_total` must be <= lmax_total given at construction.
  void compute(double alpha, const Vec3& PQ, int l_total);

  double operator()(int t, int u, int v) const {
    return r0_[index_(t, u, v)];
  }

 private:
  std::size_t index_(int t, int u, int v) const {
    return (static_cast<std::size_t>(t) * stride_ + u) * stride_ + v;
  }

  int lmax_;
  std::size_t stride_;
  std::vector<double> r0_;    // n = 0 slice, exposed
  std::vector<double> work_;  // full (n,t,u,v) scratch
};

/// Full contracted ERI shell block (AB|CD) in GAMESS layout:
/// out[((ia*nB + ib)*nC + ic)*nD + id], where nX = (lX+1)(lX+2)/2 and the
/// component order is `cartesian_components(lX)`.
///
/// `out.size()` must equal nA*nB*nC*nD.  Values are in Hartree (atomic
/// units) for normalized basis functions.
void compute_eri_block(const Shell& A, const Shell& B, const Shell& C,
                       const Shell& D, std::span<double> out);

/// Cauchy-Schwarz screening bound: sqrt(max_component (ab|ab)).
/// The true bound |(ab|cd)| <= Q_ab * Q_cd lets callers skip whole blocks.
double schwarz_bound(const Shell& A, const Shell& B);

}  // namespace pastri::qc
