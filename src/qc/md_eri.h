// md_eri.h - Two-electron repulsion integrals over contracted Cartesian
// Gaussian shells via the McMurchie-Davidson scheme.
//
// For primitives with exponents a,b,c,d on centers A,B,C,D:
//
//   (ab|cd) = 2 pi^{5/2} / (p q sqrt(p+q))
//             * sum_{tuv} E^{ab}_{tuv} sum_{TUV} (-1)^{T+U+V} E^{cd}_{TUV}
//               R_{t+T, u+U, v+V}(alpha, P-Q)
//
// where p = a+b, q = c+d, alpha = pq/(p+q), E are 1-D Hermite expansion
// coefficients of Cartesian Gaussian products and R are Hermite Coulomb
// integrals bottoming out in the Boys function.  This is the textbook
// formulation (Helgaker-Jorgensen-Olsen ch. 9) and is exactly the class of
// engine GAMESS's rotated-axis/rys codes implement.
//
// The hot entry points take precomputed ShellPairData + a reusable
// EriWorkspace: everything that depends only on one shell pair (Gaussian
// product geometry, the HermiteE tables collapsed into flat term arenas)
// is built once and reused across the O(n_pairs) quartets that share it,
// and the per-quartet scratch (HermiteR) lives on the workspace so the
// steady-state quartet loop performs no heap allocation.  The Shell-level
// overloads remain as thin wrappers; both paths execute the identical FP
// operations in the identical order, so results are bit-identical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qc/boys.h"
#include "qc/gaussian.h"

namespace pastri::qc {

/// 1-D Hermite expansion coefficients E_t^{ij} for a primitive pair in one
/// Cartesian direction.  Table layout: E(i,j,t) for 0<=i<=imax,
/// 0<=j<=jmax, 0<=t<=i+j.
class HermiteE {
 public:
  /// Build the table for exponents (a, b) at 1-D centers (Ax, Bx).
  HermiteE(int imax, int jmax, double a, double b, double Ax, double Bx);

  double operator()(int i, int j, int t) const {
    if (t < 0 || t > i + j) return 0.0;
    return table_[index_(i, j, t)];
  }

 private:
  std::size_t index_(int i, int j, int t) const {
    return (static_cast<std::size_t>(i) * (jmax_ + 1) + j) * (tmax_ + 1) + t;
  }

  int jmax_, tmax_;
  std::vector<double> table_;
};

/// Hermite Coulomb integral tensor R^0_{tuv}(alpha, PQ) for all
/// t+u+v <= L.  Internally evaluates the auxiliary orders R^n via the
/// standard downward-in-n recurrences and the Boys function.
class HermiteR {
 public:
  /// Unsized; call ensure() before compute().
  HermiteR() = default;

  /// Workspace sized for `lmax_total`; reusable across quartets.
  explicit HermiteR(int lmax_total) { ensure(lmax_total); }

  /// Resize the workspace for `lmax_total` if it is not already exactly
  /// that size (no-op otherwise, so calling it per quartet is free).
  void ensure(int lmax_total);

  /// Fill for the given alpha and PQ = P - Q vector.
  /// `l_total` must be <= the lmax_total last given to ensure().
  void compute(double alpha, const Vec3& PQ, int l_total,
               BoysMode mode = BoysMode::Exact);

  double operator()(int t, int u, int v) const {
    return r0_[index_(t, u, v)];
  }

  int lmax() const { return lmax_; }
  std::size_t stride() const { return stride_; }
  /// The n = 0 slice, laid out (t * stride + u) * stride + v.
  const double* data() const { return r0_.data(); }

 private:
  std::size_t index_(int t, int u, int v) const {
    return (static_cast<std::size_t>(t) * stride_ + u) * stride_ + v;
  }

  int lmax_ = -1;
  std::size_t stride_ = 0;
  std::vector<double> r0_;    // n = 0 slice, exposed
  std::vector<double> work_;  // full (n,t,u,v) scratch
};

/// Everything about one contracted shell pair (A, B) that the quartet
/// kernel needs, precomputed: the Gaussian product geometry per primitive
/// pair, and the Hermite term expansion E^x_t E^y_u E^z_v of every
/// (component_a, component_b) product flattened into one contiguous SoA
/// arena (no per-term vectors).  Building one of these costs three
/// HermiteE tables per primitive pair; reusing it across the O(n_pairs)
/// quartets that share the pair is the dominant ERI-engine win.
///
/// Term (t,u,v) indices are additionally pre-linearized against a target
/// HermiteR stride via set_r_stride(), so the kernel inner loop is a pure
/// gather: R0[bra_off + ket_off] (offsets add because the R layout is
/// linear in each of t, u, v).  The ket-side sign (-1)^{t+u+v} is folded
/// into coef_signed at build time -- `-c * r` and `(-c) * r` are the same
/// FP operation, so folding preserves bit-identical results.
class ShellPairData {
 public:
  struct Prim {
    double p = 0;     ///< a + b
    Vec3 P{0, 0, 0};  ///< product center
    double cc = 0;    ///< product of contraction coefficients
  };

  ShellPairData() = default;
  ShellPairData(const Shell& A, const Shell& B);

  /// Re-linearize the stored (t,u,v) term indices for a HermiteR of
  /// total momentum `l_total` (stride l_total + 1).  Must be called (or
  /// re-called) whenever the pair is used against a different quartet
  /// total momentum; no-op when the stride already matches.
  void set_r_stride(int l_total);

  int l_sum() const { return la_ + lb_; }
  std::size_t ncomp() const { return ncomp_; }
  std::size_t num_prims() const { return prims_.size(); }
  const Prim& prim(std::size_t k) const { return prims_[k]; }

  /// Term range [begin, end) of (primitive pair k, component pair c).
  std::uint32_t term_begin(std::size_t k, std::size_t c) const {
    return off_[k * ncomp_ + c];
  }
  std::uint32_t term_end(std::size_t k, std::size_t c) const {
    return off_[k * ncomp_ + c + 1];
  }

  const std::uint32_t* r_offsets() const { return roff_.data(); }
  const double* coefs() const { return coef_.data(); }
  const double* coefs_signed() const { return coef_signed_.data(); }
  int r_stride() const { return stride_; }

 private:
  int la_ = 0, lb_ = 0;
  std::size_t ncomp_ = 0;  ///< component pairs, nA * nB
  std::vector<Prim> prims_;
  // One term arena for the whole pair.  off_ has
  // num_prims * ncomp + 1 entries; terms of (prim k, comp c) occupy
  // [off_[k*ncomp+c], off_[k*ncomp+c+1]).
  std::vector<std::uint32_t> off_;
  std::vector<std::uint8_t> t_, u_, v_;       ///< Hermite indices per term
  std::vector<double> coef_;                  ///< bra-side coefficient
  std::vector<double> coef_signed_;           ///< (-1)^{t+u+v} * coef (ket)
  std::vector<std::uint32_t> roff_;           ///< linearized (t,u,v)
  int stride_ = 0;                            ///< stride roff_ is built for
};

/// Reusable per-worker scratch for the quartet kernels: the HermiteR
/// tensor, the Schwarz diagonal buffer, and the Boys evaluation mode +
/// counter.  One workspace per thread; after warm-up the kernels do not
/// allocate.
struct EriWorkspace {
  HermiteR R;
  std::vector<double> diag;  ///< schwarz_bound scratch
  BoysMode boys_mode = BoysMode::Exact;
  std::uint64_t boys_evals = 0;  ///< Boys calls made through this workspace
};

/// Full contracted ERI shell block (AB|CD) in GAMESS layout:
/// out[((ia*nB + ib)*nC + ic)*nD + id], where nX = (lX+1)(lX+2)/2 and the
/// component order is `cartesian_components(lX)`.
///
/// `out.size()` must equal nA*nB*nC*nD.  Values are in Hartree (atomic
/// units) for normalized basis functions.
///
/// Both pairs must have had set_r_stride(bra.l_sum() + ket.l_sum())
/// applied.  Allocation-free once `ws` is warm.
void compute_eri_block(const ShellPairData& bra, const ShellPairData& ket,
                       EriWorkspace& ws, std::span<double> out);

/// Convenience Shell-level overload: builds both pairs and a workspace on
/// the spot.  Bit-identical to the cached-pair path.
void compute_eri_block(const Shell& A, const Shell& B, const Shell& C,
                       const Shell& D, std::span<double> out);

/// Cauchy-Schwarz screening bound: sqrt(max_component (ab|ab)).
/// The true bound |(ab|cd)| <= Q_ab * Q_cd lets callers skip whole blocks.
/// `pair` must have had set_r_stride(2 * pair.l_sum()) applied.
double schwarz_bound(const ShellPairData& pair, EriWorkspace& ws);

/// Convenience Shell-level overload (builds the pair per call).
double schwarz_bound(const Shell& A, const Shell& B);

}  // namespace pastri::qc
