// compressed_eri_store.h - ERIs held in PaSTRI-compressed form, the
// paper's Fig. 11 infrastructure: "generating the data once, then
// compressing it once by using PaSTRI, and then decompressing it
// whenever it is needed again."
//
// A general basis mixes shell types, so blocks come in several shapes;
// PaSTRI streams are per-BF-configuration (the paper's datasets are
// organized the same way).  The store groups shell quartets by their
// (lA lB | lC lD) class, keeps one compressed stream per class, and
// materializes the dense ERI tensor on demand -- e.g. once per SCF
// iteration in an out-of-core run.
#pragma once

#include <map>

#include "core/pastri.h"
#include "qc/scf.h"

namespace pastri::qc {

class CompressedEriStore {
 public:
  /// Compute all shell-quartet blocks of `basis` and compress them,
  /// one PaSTRI stream per quartet class.
  CompressedEriStore(const BasisSet& basis, const Params& params);

  /// Decompress everything into the dense (mu nu | la si) tensor.
  /// Every value is within the error bound of the exact integral.
  EriTensor materialize() const;

  std::size_t compressed_bytes() const;
  std::size_t uncompressed_bytes() const;
  double ratio() const {
    return compressed_bytes()
               ? static_cast<double>(uncompressed_bytes()) /
                     static_cast<double>(compressed_bytes())
               : 0.0;
  }
  std::size_t num_classes() const { return streams_.size(); }

 private:
  struct ClassData {
    BlockSpec spec;
    std::vector<std::array<std::size_t, 4>> quartets;  ///< shell indices
    std::vector<std::uint8_t> stream;
  };

  std::size_t n_ = 0;  ///< number of basis functions
  std::vector<std::size_t> shell_offset_;
  std::vector<int> shell_l_;
  std::map<std::array<int, 4>, ClassData> streams_;
  std::size_t uncompressed_bytes_ = 0;
};

}  // namespace pastri::qc
