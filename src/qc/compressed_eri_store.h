// compressed_eri_store.h - ERIs held in PaSTRI-compressed form, the
// paper's Fig. 11 infrastructure: "generating the data once, then
// compressing it once by using PaSTRI, and then decompressing it
// whenever it is needed again."
//
// A general basis mixes shell types, so blocks come in several shapes;
// PaSTRI streams are per-BF-configuration (the paper's datasets are
// organized the same way).  The store groups shell quartets by their
// (lA lB | lC lD) class and keeps one compressed stream per class.
// Consumers either materialize the dense tensor once, or -- because the
// indexed container makes every block seekable -- pull single quartet
// blocks on demand through `shell_block`, backed by a small LRU cache,
// so a direct-SCF Fock build can consume compressed integrals
// quartet-by-quartet without ever holding the full tensor.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>

#include "core/pastri.h"
#include "core/sharded_cache.h"
#include "qc/scf.h"

namespace pastri::qc {

class CompressedEriStore {
 public:
  /// Compute all shell-quartet blocks of `basis` and compress them,
  /// one PaSTRI stream per quartet class.  Blocks are piped from the
  /// integral engine straight into each class's StreamWriter, so the
  /// write side never allocates a dense per-class tensor.
  CompressedEriStore(const BasisSet& basis, const Params& params);

  /// Decompress everything into the dense (mu nu | la si) tensor.
  /// Every value is within the error bound of the exact integral.
  EriTensor materialize() const;

  /// Decompress only the (p q | u v) shell-quartet block (shell
  /// indices, in the basis's shell order).  The returned values are laid
  /// out exactly like compute_eri_block's output for those shells, each
  /// within the error bound of the exact integral.  A sharded LRU cache
  /// makes repeated quartet access cheap; the shared_ptr stays valid
  /// after eviction.  Thread-safe, and scalable across concurrent
  /// readers: the cache lock is held only for the O(1) lookup/insert,
  /// never across the decode, and the key space is mutex-striped
  /// (CacheConfig::num_shards), so warm hits on different quartets do
  /// not contend.  Two threads missing the same quartet may both
  /// decode, but the results are deduplicated by content into one
  /// shared vector, and both misses are counted (hit+miss accounting
  /// stays exact).  Throws std::out_of_range for shell indices outside
  /// the basis.
  std::shared_ptr<const std::vector<double>> shell_block(
      std::size_t p, std::size_t q, std::size_t u, std::size_t v) const;

  /// Replace the cache geometry (total capacity in blocks -- 0 disables
  /// caching -- and the number of mutex-striped shards).
  void set_cache(const CacheConfig& config) { cache_.configure(config); }
  CacheConfig cache_config() const { return cache_.config(); }

  /// Aggregated cache accounting: lifetime hit/miss counters, plus the
  /// bytes and count of *distinct* decoded vectors currently held.
  /// Decoded blocks are deduplicated by content: cache entries whose
  /// values are identical (common for symmetry-equivalent or
  /// pattern-repetitive quartets, precisely the redundancy the v4
  /// dictionary exploits on the compressed side) share one vector, so
  /// warm-cache memory grows with the number of *distinct* blocks, not
  /// the number of cached quartets.
  CacheStats cache_stats() const { return cache_.stats(); }

  // -- Deprecated cache accessors (pre-CacheConfig API) ---------------
  // Thin wrappers kept so existing callers compile; new code should use
  // set_cache / cache_config / cache_stats.

  /// Deprecated: set_cache({blocks, 1}).  Keeps the single-shard exact
  /// global LRU semantics the original API promised.
  void set_cache_capacity(std::size_t blocks) {
    cache_.configure(CacheConfig{blocks, 1});
  }
  std::size_t cache_hits() const { return cache_.stats().hits; }
  std::size_t cache_misses() const { return cache_.stats().misses; }
  std::size_t cache_bytes() const { return cache_.stats().bytes; }
  std::size_t cache_unique_blocks() const {
    return cache_.stats().unique_blocks;
  }

  std::size_t compressed_bytes() const;
  std::size_t uncompressed_bytes() const;
  double ratio() const {
    return compressed_bytes()
               ? static_cast<double>(uncompressed_bytes()) /
                     static_cast<double>(compressed_bytes())
               : 0.0;
  }
  std::size_t num_classes() const { return streams_.size(); }
  std::size_t num_shells() const { return shell_l_.size(); }

 private:
  struct ClassData {
    BlockSpec spec;
    std::vector<std::array<std::size_t, 4>> quartets;  ///< shell indices
    std::vector<std::uint8_t> stream;
    /// Seekable view of `stream` (the map node and the vector's buffer
    /// are both stable, so the span inside stays valid).
    std::unique_ptr<BlockReader> reader;
  };

  using QuartetKey = std::array<std::size_t, 4>;
  struct BlockRef {
    const ClassData* cls = nullptr;
    std::size_t ordinal = 0;  ///< block number within the class stream
  };

  struct QuartetHash {
    std::size_t operator()(const QuartetKey& k) const {
      std::size_t h = 1469598103934665603ull;
      for (const std::size_t v : k) {
        h ^= v;
        h *= 1099511628211ull;
      }
      return h;
    }
  };

  std::size_t n_ = 0;  ///< number of basis functions
  std::vector<std::size_t> shell_offset_;
  std::vector<int> shell_l_;
  std::map<std::array<int, 4>, ClassData> streams_;
  std::map<QuartetKey, BlockRef> block_of_;
  std::size_t uncompressed_bytes_ = 0;

  /// Sharded LRU of decoded quartet blocks with content dedup (see
  /// core/sharded_cache.h); block_of_/streams_ are immutable after
  /// construction, so shell_block takes no other lock.
  mutable ShardedBlockCache<QuartetKey, QuartetHash> cache_;
};

}  // namespace pastri::qc
