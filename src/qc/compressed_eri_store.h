// compressed_eri_store.h - ERIs held in PaSTRI-compressed form, the
// paper's Fig. 11 infrastructure: "generating the data once, then
// compressing it once by using PaSTRI, and then decompressing it
// whenever it is needed again."
//
// A general basis mixes shell types, so blocks come in several shapes;
// PaSTRI streams are per-BF-configuration (the paper's datasets are
// organized the same way).  The store groups shell quartets by their
// (lA lB | lC lD) class and keeps one compressed stream per class.
// Consumers either materialize the dense tensor once, or -- because the
// indexed container makes every block seekable -- pull single quartet
// blocks on demand through `shell_block`, backed by a small LRU cache,
// so a direct-SCF Fock build can consume compressed integrals
// quartet-by-quartet without ever holding the full tensor.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/pastri.h"
#include "qc/scf.h"

namespace pastri::qc {

class CompressedEriStore {
 public:
  /// Compute all shell-quartet blocks of `basis` and compress them,
  /// one PaSTRI stream per quartet class.  Blocks are piped from the
  /// integral engine straight into each class's StreamWriter, so the
  /// write side never allocates a dense per-class tensor.
  CompressedEriStore(const BasisSet& basis, const Params& params);

  /// Decompress everything into the dense (mu nu | la si) tensor.
  /// Every value is within the error bound of the exact integral.
  EriTensor materialize() const;

  /// Decompress only the (p q | u v) shell-quartet block (shell
  /// indices, in the basis's shell order).  The returned values are laid
  /// out exactly like compute_eri_block's output for those shells, each
  /// within the error bound of the exact integral.  A small LRU cache
  /// makes repeated quartet access cheap; the shared_ptr stays valid
  /// after eviction.  Thread-safe.  Throws std::out_of_range for shell
  /// indices outside the basis.
  std::shared_ptr<const std::vector<double>> shell_block(
      std::size_t p, std::size_t q, std::size_t u, std::size_t v) const;

  /// Resize the block cache (in blocks; 0 disables caching).
  void set_cache_capacity(std::size_t blocks);

  std::size_t cache_hits() const;
  std::size_t cache_misses() const;

  /// Bytes of decoded values the cache holds, counting each shared
  /// vector once.  Decoded blocks are deduplicated by content: cache
  /// entries whose values are identical (common for symmetry-equivalent
  /// or pattern-repetitive quartets, precisely the redundancy the v4
  /// dictionary exploits on the compressed side) share one vector, so
  /// warm-cache memory grows with the number of *distinct* blocks, not
  /// the number of cached quartets.
  std::size_t cache_bytes() const;

  /// Distinct decoded vectors currently shared by the cache entries
  /// (<= the number of cached quartets).
  std::size_t cache_unique_blocks() const;

  std::size_t compressed_bytes() const;
  std::size_t uncompressed_bytes() const;
  double ratio() const {
    return compressed_bytes()
               ? static_cast<double>(uncompressed_bytes()) /
                     static_cast<double>(compressed_bytes())
               : 0.0;
  }
  std::size_t num_classes() const { return streams_.size(); }
  std::size_t num_shells() const { return shell_l_.size(); }

 private:
  struct ClassData {
    BlockSpec spec;
    std::vector<std::array<std::size_t, 4>> quartets;  ///< shell indices
    std::vector<std::uint8_t> stream;
    /// Seekable view of `stream` (the map node and the vector's buffer
    /// are both stable, so the span inside stays valid).
    std::unique_ptr<BlockReader> reader;
  };

  using QuartetKey = std::array<std::size_t, 4>;
  struct BlockRef {
    const ClassData* cls = nullptr;
    std::size_t ordinal = 0;  ///< block number within the class stream
  };
  using CacheValue = std::shared_ptr<const std::vector<double>>;

  std::size_t n_ = 0;  ///< number of basis functions
  std::vector<std::size_t> shell_offset_;
  std::vector<int> shell_l_;
  std::map<std::array<int, 4>, ClassData> streams_;
  std::map<QuartetKey, BlockRef> block_of_;
  std::size_t uncompressed_bytes_ = 0;

  // LRU block cache: most-recent at lru_.front(); cache_ maps a quartet
  // to its recency position and decoded values.
  mutable std::mutex cache_mutex_;
  mutable std::list<QuartetKey> lru_;
  mutable std::map<QuartetKey,
                   std::pair<std::list<QuartetKey>::iterator, CacheValue>>
      cache_;
  std::size_t cache_capacity_ = 64;
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;

  // Value dedup: content hash of a decoded block -> the live vector that
  // holds it.  Consulted on every cache miss so identical decoded blocks
  // share one allocation (weak_ptr, so dedup never extends lifetimes).
  mutable std::unordered_map<std::uint64_t,
                             std::weak_ptr<const std::vector<double>>>
      by_value_;
};

}  // namespace pastri::qc
