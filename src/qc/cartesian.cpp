#include "qc/cartesian.h"

#include <cassert>

namespace pastri::qc {
namespace {

constexpr std::array<CartComponent, 1> kS{{{0, 0, 0}}};
constexpr std::array<CartComponent, 3> kP{{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};
constexpr std::array<CartComponent, 6> kD{{
    {2, 0, 0}, {0, 2, 0}, {0, 0, 2}, {1, 1, 0}, {1, 0, 1}, {0, 1, 1}}};
constexpr std::array<CartComponent, 10> kF{{
    {3, 0, 0}, {0, 3, 0}, {0, 0, 3}, {2, 1, 0}, {2, 0, 1},
    {1, 2, 0}, {0, 2, 1}, {1, 0, 2}, {0, 1, 2}, {1, 1, 1}}};
constexpr std::array<CartComponent, 15> kG{{
    {4, 0, 0}, {0, 4, 0}, {0, 0, 4}, {3, 1, 0}, {3, 0, 1},
    {1, 3, 0}, {0, 3, 1}, {1, 0, 3}, {0, 1, 3}, {2, 2, 0},
    {2, 0, 2}, {0, 2, 2}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2}}};

constexpr const char* kLabels[5][15] = {
    {"1"},
    {"x", "y", "z"},
    {"xx", "yy", "zz", "xy", "xz", "yz"},
    {"xxx", "yyy", "zzz", "xxy", "xxz", "xyy", "yyz", "xzz", "yzz", "xyz"},
    {"xxxx", "yyyy", "zzzz", "xxxy", "xxxz", "xyyy", "yyyz", "xzzz", "yzzz",
     "xxyy", "xxzz", "yyzz", "xxyz", "xyyz", "xyzz"}};

}  // namespace

std::span<const CartComponent> cartesian_components(int l) {
  assert(l >= 0 && l <= kMaxAngularMomentum);
  switch (l) {
    case 0: return kS;
    case 1: return kP;
    case 2: return kD;
    case 3: return kF;
    default: return kG;
  }
}

char shell_letter(int l) {
  assert(l >= 0 && l <= kMaxAngularMomentum);
  constexpr char names[] = {'s', 'p', 'd', 'f', 'g'};
  return names[l];
}

int shell_momentum(char letter) {
  switch (letter) {
    case 's': return 0;
    case 'p': return 1;
    case 'd': return 2;
    case 'f': return 3;
    case 'g': return 4;
    default: return -1;
  }
}

std::string_view component_label(int l, int index) {
  assert(l >= 0 && l <= kMaxAngularMomentum);
  assert(index >= 0 && index < num_cartesians(l));
  return kLabels[l][index];
}

}  // namespace pastri::qc
