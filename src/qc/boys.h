// boys.h - The Boys function F_m(T), the radial kernel of every Gaussian
// electron-repulsion integral:
//
//   F_m(T) = \int_0^1 t^{2m} exp(-T t^2) dt
//
// McMurchie-Davidson Hermite Coulomb integrals R^n_{tuv} bottom out in
// F_n(alpha * |P-Q|^2), so accuracy here bounds accuracy of every ERI the
// engine produces.  The implementation follows the standard scheme:
// convergent power series at the highest required order plus stable
// downward recursion for small/moderate T, and the asymptotic closed form
// plus correction for large T.
#pragma once

#include <cstddef>
#include <span>

namespace pastri::qc {

/// Maximum Boys order supported (enough for (ff|ff): L_total = 12, plus
/// margin for derivative-style use).
inline constexpr int kMaxBoysOrder = 28;

/// Fill out[0..m] with F_0(T)..F_m(T).
/// Requires 0 <= m <= kMaxBoysOrder, T >= 0, out.size() >= m+1.
void boys(double T, int m, std::span<double> out);

/// Convenience scalar version.
double boys(double T, int m);

}  // namespace pastri::qc
