// boys.h - The Boys function F_m(T), the radial kernel of every Gaussian
// electron-repulsion integral:
//
//   F_m(T) = \int_0^1 t^{2m} exp(-T t^2) dt
//
// McMurchie-Davidson Hermite Coulomb integrals R^n_{tuv} bottom out in
// F_n(alpha * |P-Q|^2), so accuracy here bounds accuracy of every ERI the
// engine produces.  Two implementations share the small-T closed form and
// the large-T asymptotic branch and differ only in the moderate-T regime:
//
//   exact   convergent power series at the highest required order (up to
//           ~130 iterations) plus stable downward recursion -- the
//           reference path, and the default everywhere.
//   table   8-term Taylor interpolation off a precomputed grid
//           (spacing 1/16 over [0, 42], per order), then the same
//           downward recursion.  Agrees with the exact path to ~1e-15
//           absolute (tests pin <= 1e-14 over a dense T x m grid) at a
//           small fraction of the series cost.
#pragma once

#include <cstddef>
#include <span>

namespace pastri::qc {

/// Maximum Boys order supported (enough for (ff|ff): L_total = 12, plus
/// margin for derivative-style use).
inline constexpr int kMaxBoysOrder = 28;

/// Which moderate-T evaluation the ERI engine should use.  The exact
/// series is the reference; the table path trades <= ~1e-15 absolute
/// agreement for speed, which changes generated datasets within that
/// bound (so it is opt-in via DatasetOptions::boys_mode).
enum class BoysMode {
  Exact,
  Table,
};

/// Fill out[0..m] with F_0(T)..F_m(T) via the exact series path.
/// Requires 0 <= m <= kMaxBoysOrder, T >= 0, out.size() >= m+1.
void boys(double T, int m, std::span<double> out);

/// Tabulated fast path: identical small-T / large-T branches, Taylor
/// interpolation in the moderate-T regime.  Same contract as boys().
void boys_table(double T, int m, std::span<double> out);

/// Dispatch on mode; BoysMode::Exact is bit-identical to boys().
inline void boys(BoysMode mode, double T, int m, std::span<double> out) {
  if (mode == BoysMode::Table) {
    boys_table(T, m, out);
  } else {
    boys(T, m, out);
  }
}

/// Convenience scalar versions.
double boys(double T, int m);
double boys_table(double T, int m);

}  // namespace pastri::qc
