// gaussian.h - Contracted Cartesian Gaussian shells.
//
// A shell is the GAMESS unit of ERI work: all (L+1)(L+2)/2 Cartesian
// components share one center and one radial contraction.  ERI shell
// blocks (pq|uv) -- the unit PaSTRI compresses -- are indexed by four
// shells.
#pragma once

#include <array>
#include <cmath>
#include <numbers>
#include <vector>

#include "qc/cartesian.h"

namespace pastri::qc {

using Vec3 = std::array<double, 3>;

inline double dist2(const Vec3& a, const Vec3& b) {
  const double dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

/// One primitive Gaussian in a contraction: coefficient * exp(-exponent r^2).
struct Primitive {
  double exponent = 1.0;
  double coefficient = 1.0;
};

/// Normalization constant of a primitive Cartesian Gaussian
/// x^lx y^ly z^lz exp(-a r^2) such that its self-overlap is 1.
inline double primitive_norm(double a, int lx, int ly, int lz) {
  const int L = lx + ly + lz;
  const double pref = std::pow(2.0 * a / std::numbers::pi, 0.75);
  const double num = std::pow(4.0 * a, 0.5 * L);
  const double den = std::sqrt(double_factorial_odd(lx) *
                               double_factorial_odd(ly) *
                               double_factorial_odd(lz));
  return pref * num / den;
}

/// A contracted shell of Cartesian Gaussians.
struct Shell {
  int l = 0;                        ///< total angular momentum (0=s ... 4=g)
  Vec3 center{0, 0, 0};             ///< position in Bohr
  std::vector<Primitive> primitives;
  int atom_index = -1;              ///< owning atom in the molecule, or -1

  int num_components() const { return num_cartesians(l); }

  /// Normalize the contraction so the (L,0,0) component has unit norm,
  /// folding per-primitive normalization into the coefficients.
  /// (Per-component corrections for e.g. d_xy vs d_xx are applied at
  /// integral time via `component_norm_ratio`.)
  void normalize() {
    for (auto& p : primitives) {
      p.coefficient *= primitive_norm(p.exponent, l, 0, 0);
    }
    // Self-overlap of the contracted (L,0,0) component, using the closed
    // form of the one-center overlap of two unnormalized x^L Gaussians:
    //   <x^L e^{-a r^2} | x^L e^{-b r^2}> =
    //       (2L-1)!! (pi/(a+b))^{3/2} / (2(a+b))^L
    double s = 0.0;
    for (const auto& pi : primitives) {
      for (const auto& pj : primitives) {
        const double gamma = pi.exponent + pj.exponent;
        const double ov = double_factorial_odd(l) *
                          std::pow(std::numbers::pi / gamma, 1.5) /
                          std::pow(2.0 * gamma, l);
        s += pi.coefficient * pj.coefficient * ov;
      }
    }
    const double scale = 1.0 / std::sqrt(s);
    for (auto& p : primitives) p.coefficient *= scale;
  }
};

/// Ratio of the norm of component (lx,ly,lz) to the (L,0,0) component of
/// the same shell, applied per Cartesian component at integral time.
inline double component_norm_ratio(int l, const CartComponent& c) {
  return std::sqrt(double_factorial_odd(l) /
                   (double_factorial_odd(c.lx) * double_factorial_odd(c.ly) *
                    double_factorial_odd(c.lz)));
}

}  // namespace pastri::qc
