// linalg.h - Small dense symmetric linear algebra for the SCF substrate:
// column-major square matrices, Jacobi eigendecomposition, and the
// symmetric orthogonalization S^{-1/2} Hartree-Fock needs.
//
// Sizes here are tiny (basis dimensions of a few dozen), so a clear
// O(n^3) Jacobi sweep beats pulling in an external LAPACK.
#pragma once

#include <cstddef>
#include <vector>

namespace pastri::qc {

/// Dense square matrix, row-major.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n, double fill = 0.0)
      : n_(n), data_(n * n, fill) {}

  std::size_t size() const { return n_; }
  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * n_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * n_ + j];
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  static Matrix identity(std::size_t n);

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;

  /// max_ij |a_ij - b_ij|
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Eigendecomposition A = V diag(w) V^T of a symmetric matrix by cyclic
/// Jacobi rotations.  Eigenvalues ascend; V's columns are eigenvectors.
struct EigenResult {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};
EigenResult jacobi_eigensolver(const Matrix& a, int max_sweeps = 64,
                               double tol = 1e-12);

/// Solve the dense linear system A x = b by Gaussian elimination with
/// partial pivoting (A is copied).  Throws std::runtime_error when A is
/// numerically singular.  Used by the DIIS extrapolation in the SCF
/// solver.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Loewdin symmetric orthogonalization: X = S^{-1/2}.
/// Throws std::runtime_error if S is (numerically) singular.
Matrix symmetric_orthogonalizer(const Matrix& s,
                                double lindep_tol = 1e-10);

}  // namespace pastri::qc
