#include "qc/direct_scf.h"

#include <cmath>
#include <stdexcept>

#include "qc/compressed_eri_store.h"
#include "qc/md_eri.h"
#include "qc/one_electron.h"
#include "qc/sto3g.h"

namespace pastri::qc {

DirectFockBuilder::DirectFockBuilder(const BasisSet& basis,
                                     double screen_threshold)
    : basis_(basis), threshold_(screen_threshold) {
  const std::size_t ns = basis.shells.size();
  offset_.assign(ns + 1, 0);
  for (std::size_t s = 0; s < ns; ++s) {
    offset_[s + 1] = offset_[s] + basis.shells[s].num_components();
  }
  schwarz_.resize(ns * ns);
  for (std::size_t a = 0; a < ns; ++a) {
    for (std::size_t b = 0; b < ns; ++b) {
      schwarz_[a * ns + b] =
          schwarz_bound(basis.shells[a], basis.shells[b]);
    }
  }
}

DirectFockBuilder::DirectFockBuilder(const BasisSet& basis,
                                     const CompressedEriStore& store,
                                     double screen_threshold)
    : DirectFockBuilder(basis, screen_threshold) {
  if (store.num_shells() != basis.shells.size()) {
    throw std::invalid_argument(
        "DirectFockBuilder: store does not match basis");
  }
  store_ = &store;
}

std::size_t DirectFockBuilder::total_quartets() const {
  const std::size_t ns = basis_.shells.size();
  return ns * ns * ns * ns;
}

Matrix DirectFockBuilder::build_g(const Matrix& density) const {
  const std::size_t n = offset_.back();
  const std::size_t ns = basis_.shells.size();
  Matrix g(n);
  last_screened_ = 0;

  // Density-weighted screening: |G contribution| <= Q_ab Q_cd max|D|.
  double dmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      dmax = std::max(dmax, std::abs(density(i, j)));
    }
  }

  std::vector<double> block;
  for (std::size_t sa = 0; sa < ns; ++sa) {
    for (std::size_t sb = 0; sb < ns; ++sb) {
      const double qab = schwarz_[sa * ns + sb];
      for (std::size_t sc = 0; sc < ns; ++sc) {
        for (std::size_t sd = 0; sd < ns; ++sd) {
          if (qab * schwarz_[sc * ns + sd] * dmax < threshold_) {
            ++last_screened_;
            continue;
          }
          const Shell& A = basis_.shells[sa];
          const Shell& B = basis_.shells[sb];
          const Shell& C = basis_.shells[sc];
          const Shell& D = basis_.shells[sd];
          const std::size_t na = A.num_components();
          const std::size_t nb = B.num_components();
          const std::size_t nc = C.num_components();
          const std::size_t nd = D.num_components();
          std::shared_ptr<const std::vector<double>> cached;
          const double* blk;
          if (store_ != nullptr) {
            cached = store_->shell_block(sa, sb, sc, sd);
            blk = cached->data();
          } else {
            block.resize(na * nb * nc * nd);
            compute_eri_block(A, B, C, D, block);
            blk = block.data();
          }
          std::size_t idx = 0;
          for (std::size_t i = 0; i < na; ++i) {
            const std::size_t mu = offset_[sa] + i;
            for (std::size_t j = 0; j < nb; ++j) {
              const std::size_t nu = offset_[sb] + j;
              for (std::size_t k = 0; k < nc; ++k) {
                const std::size_t la = offset_[sc] + k;
                for (std::size_t l = 0; l < nd; ++l, ++idx) {
                  const std::size_t si = offset_[sd] + l;
                  const double v = blk[idx];
                  // Coulomb: (mu nu | la si) D_{si la};
                  // exchange: -1/2 (mu nu | la si) D_{nu la} into
                  // G_{mu si}.
                  g(mu, nu) += v * density(si, la);
                  g(mu, si) -= 0.5 * v * density(nu, la);
                }
              }
            }
          }
        }
      }
    }
  }
  return g;
}

namespace {

/// The SCF fixed-point loop shared by the recompute and decompress
/// arms: identical logic, only the G(D) source differs.
ScfResult run_rhf_with_builder(const Molecule& mol, const BasisSet& basis,
                               const ScfOptions& opt,
                               const DirectFockBuilder& builder) {
  const std::size_t n = basis.num_basis_functions();
  const int nelec = electron_count(mol);
  if (nelec % 2 != 0) {
    throw std::invalid_argument("RHF requires a closed shell");
  }
  const std::size_t nocc = static_cast<std::size_t>(nelec / 2);

  const Matrix S = overlap_matrix(basis);
  const Matrix H = core_hamiltonian(basis, mol);
  const Matrix X = symmetric_orthogonalizer(S);

  ScfResult res;
  res.nuclear_repulsion = nuclear_repulsion(mol);

  auto build_density = [&](const Matrix& F) {
    const Matrix Fp = X.transpose() * F * X;
    const EigenResult eig = jacobi_eigensolver(Fp);
    const Matrix C = X * eig.eigenvectors;
    res.mo_coefficients = C;
    res.orbital_energies = eig.eigenvalues;
    Matrix Dn(n);
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        double sum = 0.0;
        for (std::size_t i = 0; i < nocc; ++i) {
          sum += C(mu, i) * C(nu, i);
        }
        Dn(mu, nu) = 2.0 * sum;
      }
    }
    return Dn;
  };

  Matrix D = build_density(H);
  double e_prev = 0.0;
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    const Matrix F = H + builder.build_g(D);
    double e_elec = 0.0;
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        e_elec += 0.5 * D(nu, mu) * (H(mu, nu) + F(mu, nu));
      }
    }
    Matrix D_new = build_density(F);
    const double dD = D_new.max_abs_diff(D);
    const double dE = std::abs(e_elec - e_prev);
    e_prev = e_elec;
    if (iter > 1 && opt.density_mixing > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          D_new(i, j) = opt.density_mixing * D(i, j) +
                        (1.0 - opt.density_mixing) * D_new(i, j);
        }
      }
    }
    D = D_new;
    res.iterations = iter;
    res.electronic_energy = e_elec;
    res.total_energy = e_elec + res.nuclear_repulsion;
    if (iter > 1 && dE < opt.energy_tolerance &&
        dD < opt.density_tolerance) {
      res.converged = true;
      break;
    }
  }
  res.density = D;
  return res;
}

}  // namespace

ScfResult run_rhf_direct(const Molecule& mol, const BasisSet& basis,
                         const ScfOptions& opt, double screen_threshold) {
  const DirectFockBuilder builder(basis, screen_threshold);
  return run_rhf_with_builder(mol, basis, opt, builder);
}

ScfResult run_rhf_from_store(const Molecule& mol, const BasisSet& basis,
                             const CompressedEriStore& store,
                             const ScfOptions& opt,
                             double screen_threshold) {
  const DirectFockBuilder builder(basis, store, screen_threshold);
  return run_rhf_with_builder(mol, basis, opt, builder);
}

}  // namespace pastri::qc
