#include "qc/basis.h"

#include <stdexcept>

namespace pastri::qc {
namespace {

/// Element-dependent tight exponent for polarization-like shells,
/// modelled on triple-zeta polarization sets (cc-pVTZ d on C: 1.097 and
/// 0.318; d on H: 1.057; f on C: 0.761).  Successive shells on the same
/// atom step towards diffuse by ~3.4x, the cc-pVTZ spread.
double base_exponent(int Z, int l) {
  double base;
  switch (Z) {
    case 1: base = 1.057; break;  // H
    case 6: base = 1.097; break;  // C
    case 7: base = 1.654; break;  // N
    case 8: base = 2.314; break;  // O
    default: throw std::invalid_argument("unsupported element Z");
  }
  // Higher angular momentum shells are slightly tighter in real sets.
  return base * (1.0 + 0.15 * (l - 2));
}

constexpr double kExponentSpread = 3.4;  // tight/diffuse ratio per step

}  // namespace

BasisSet make_basis(const Molecule& mol, const BasisOptions& opt) {
  if (opt.l < 0 || opt.l > kMaxAngularMomentum) {
    throw std::invalid_argument("basis angular momentum out of range");
  }
  if (opt.contraction < 1) {
    throw std::invalid_argument("contraction depth must be >= 1");
  }
  if (opt.shells_per_atom < 1) {
    throw std::invalid_argument("shells_per_atom must be >= 1");
  }
  BasisSet basis;
  for (std::size_t ai = 0; ai < mol.atoms.size(); ++ai) {
    const Atom& atom = mol.atoms[ai];
    if (opt.heavy_atoms_only && atom.Z == 1) continue;
    const double a_tight = base_exponent(atom.Z, opt.l) * opt.exponent_scale;
    // Hydrogens typically carry one polarization shell of each type.
    const int nsh = (atom.Z == 1) ? 1 : opt.shells_per_atom;
    for (int si = 0; si < nsh; ++si) {
      Shell sh;
      sh.l = opt.l;
      sh.center = atom.position;
      sh.atom_index = static_cast<int>(ai);
      const double a0 = a_tight / std::pow(kExponentSpread, si);
      // Even-tempered contraction: exponents a0 * 2.5^k with decreasing
      // weights, the usual shape of polarization contractions.
      for (int k = 0; k < opt.contraction; ++k) {
        Primitive p;
        p.exponent = a0 * std::pow(2.5, k);
        p.coefficient = std::pow(0.6, k);
        sh.primitives.push_back(p);
      }
      sh.normalize();
      basis.shells.push_back(std::move(sh));
    }
  }
  return basis;
}

}  // namespace pastri::qc
