#include "qc/gamess_text.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace pastri::qc {

void write_gamess_text(const EriDataset& ds, std::ostream& out) {
  out << "$ERIDATA " << ds.label << "\n";
  out << "$SHAPE " << ds.shape.n[0] << " " << ds.shape.n[1] << " "
      << ds.shape.n[2] << " " << ds.shape.n[3] << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const std::size_t bs = ds.shape.block_size();
  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    out << "$BLOCK " << b << "\n";
    const auto block = ds.block(b);
    for (std::size_t i = 0; i < bs; ++i) {
      out << block[i] << ((i + 1) % 4 == 0 || i + 1 == bs ? "\n" : " ");
    }
  }
  out << "$END\n";
  if (!out) throw std::runtime_error("gamess_text: write failed");
}

void save_gamess_text(const EriDataset& ds, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  write_gamess_text(ds, f);
}

EriDataset read_gamess_text(std::istream& in) {
  EriDataset ds;
  std::string token;
  if (!(in >> token) || token != "$ERIDATA") {
    throw std::runtime_error("gamess_text: missing $ERIDATA header");
  }
  std::getline(in, ds.label);
  // Trim the leading space from " label".
  if (!ds.label.empty() && ds.label.front() == ' ') {
    ds.label.erase(0, 1);
  }
  if (!(in >> token) || token != "$SHAPE") {
    throw std::runtime_error("gamess_text: missing $SHAPE");
  }
  for (auto& n : ds.shape.n) {
    unsigned v;
    if (!(in >> v) || v == 0 || v > 0xFFFF) {
      throw std::runtime_error("gamess_text: bad shape");
    }
    n = static_cast<std::uint16_t>(v);
  }
  const std::size_t bs = ds.shape.block_size();

  while (in >> token) {
    if (token == "$END") {
      ds.num_blocks = ds.values.size() / bs;
      return ds;
    }
    if (token != "$BLOCK") {
      throw std::runtime_error("gamess_text: expected $BLOCK, got " +
                               token);
    }
    std::size_t index;
    if (!(in >> index) || index != ds.values.size() / bs) {
      throw std::runtime_error("gamess_text: blocks out of order");
    }
    for (std::size_t i = 0; i < bs; ++i) {
      double v;
      if (!(in >> v)) {
        throw std::runtime_error("gamess_text: truncated block values");
      }
      ds.values.push_back(v);
    }
  }
  throw std::runtime_error("gamess_text: missing $END");
}

EriDataset load_gamess_text(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return read_gamess_text(f);
}

}  // namespace pastri::qc
