// molecule.h - Molecular geometries for the paper's benchmark systems.
//
// The paper evaluates on tri-alanine, benzene, and glutamine (Fig. 8).
// We embed idealized 3-D geometries for all three.  Chemical accuracy of
// the coordinates is irrelevant for compression behaviour -- what matters
// is a realistic *distribution of inter-shell distances*, which drives the
// distance-factor structure (Eq. 2-3) PaSTRI exploits -- so idealized
// bond lengths/angles are a faithful substitute for crystal structures.
#pragma once

#include <string>
#include <vector>

#include "qc/gaussian.h"

namespace pastri::qc {

/// Conversion factor: Angstrom -> Bohr (atomic units).
inline constexpr double kAngstromToBohr = 1.8897259886;

struct Atom {
  std::string symbol;  ///< element symbol, e.g. "C"
  int Z = 0;           ///< atomic number
  Vec3 position{0, 0, 0};  ///< Bohr
};

struct Molecule {
  std::string name;
  std::vector<Atom> atoms;

  std::size_t num_atoms() const { return atoms.size(); }
  std::size_t num_heavy_atoms() const;

  /// Largest inter-atomic distance (Bohr); a cheap sanity metric.
  double diameter() const;
};

/// C6H6, planar hexagon (r_CC = 1.397 A, r_CH = 1.084 A).
Molecule make_benzene();

/// C5H10N2O3 amino acid, idealized 3-D geometry.
Molecule make_glutamine();

/// Ala-Ala-Ala tripeptide (C9H17N3O4), idealized extended chain.
Molecule make_trialanine();

/// Lookup by the names used in the paper: "benzene", "glutamine",
/// "alanine" (tri-alanine).  Throws std::invalid_argument otherwise.
Molecule make_molecule(const std::string& name);

}  // namespace pastri::qc
