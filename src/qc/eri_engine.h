// eri_engine.h - Shell-quartet enumeration, Schwarz screening, and
// dataset generation: the GAMESS-side substrate that feeds PaSTRI.
//
// The paper's datasets are streams of shell blocks for one BF
// configuration at a time -- (dd|dd), (ff|ff), hybrids -- sampled down to
// a practical size.  `generate_eri_dataset` reproduces that: it builds
// shells of the requested momenta on the molecule's heavy atoms,
// enumerates all ordered shell quartets, draws a deterministic uniform
// sample, and evaluates each block with the McMurchie-Davidson engine.
// Quartets failing the Schwarz bound are emitted as all-zero blocks,
// matching the paper's "screened elements are represented as zeros".
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>

#include "qc/basis.h"
#include "qc/dataset.h"
#include "qc/md_eri.h"
#include "qc/molecule.h"

namespace pastri::qc {

struct DatasetOptions {
  /// BF configuration: angular momentum of each of the four shell slots.
  std::array<int, 4> config{2, 2, 2, 2};  // default (dd|dd)

  int contraction = 1;        ///< primitives per shell
  std::uint64_t seed = 12345; ///< sampling seed (deterministic)

  /// Cap on the number of blocks; if `target_bytes` is nonzero it wins.
  std::size_t max_blocks = std::numeric_limits<std::size_t>::max();
  std::size_t target_bytes = 0;

  /// Schwarz product threshold below which a quartet is screened out
  /// (emitted as zeros).  GAMESS uses ~1e-10..1e-12 integral cutoffs.
  double screen_threshold = 1e-12;

  /// If false, screened quartets are dropped from the sample instead of
  /// being stored as zero blocks.
  bool keep_screened = true;

  /// Boys-function path for integral evaluation.  Exact (the default) is
  /// the bit-pinned reference; Table swaps in the tabulated Taylor fast
  /// path (<= ~1e-15 absolute agreement, so generated values -- and thus
  /// compressed bytes -- may differ within that bound).
  BoysMode boys_mode = BoysMode::Exact;
};

/// Parse "(dd|dd)"-style names ("dddd", "(fd|ff)", ...) into a config.
/// Throws std::invalid_argument on malformed names.
std::array<int, 4> parse_config(const std::string& name);

/// Generate a sampled ERI dataset for `mol` under `opt`.
EriDataset generate_eri_dataset(const Molecule& mol,
                                const DatasetOptions& opt);

/// Metadata of a planned generation, known before any block is computed
/// (it is exactly the label/shape/num_blocks the dense dataset would
/// have).  Streaming consumers use `num_blocks` to declare the block
/// count up-front, e.g. to a StreamWriter on a non-seekable sink.
struct EriStreamMeta {
  std::string label;
  BlockShape shape;
  std::size_t num_blocks = 0;
};

/// The planned generation behind `generate_eri_dataset`, reified: plans
/// once (shells, Schwarz screen, deterministic sample), then computes
/// any range of dataset blocks on demand.  The plan is a pure function
/// of (mol, opt), so two generators -- or the same generator across
/// process restarts -- produce identical blocks for identical indices.
/// That random access is what the pipeline's shard-resume path and the
/// fork-based per-rank benchmarks are built on: rank r computes exactly
/// the block range its shard covers, nothing else.
///
/// compute_range() is OpenMP-parallel internally and safe to call
/// concurrently from multiple host threads on the same generator: the
/// plan (shells, sample, cached shell-pair data) is immutable after
/// construction and all per-quartet scratch lives in thread-local
/// workspaces.  The multi-producer pipeline partitions one generator's
/// chunk stream across N producer threads on exactly this guarantee.
class EriBlockGenerator {
 public:
  EriBlockGenerator(const Molecule& mol, const DatasetOptions& opt);
  ~EriBlockGenerator();
  EriBlockGenerator(EriBlockGenerator&&) noexcept;
  EriBlockGenerator& operator=(EriBlockGenerator&&) noexcept;
  EriBlockGenerator(const EriBlockGenerator&) = delete;
  EriBlockGenerator& operator=(const EriBlockGenerator&) = delete;

  const EriStreamMeta& meta() const;

  /// Compute dataset blocks [first, first+count) into `out`, which must
  /// hold exactly count * shape.block_size() doubles.  Screened quartets
  /// come out all-zero.  Throws std::out_of_range past num_blocks.
  void compute_range(std::size_t first, std::size_t count,
                     std::span<double> out) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Batched block-callback twin of `generate_eri_dataset`: plans the
/// identical sampled dataset, computes quartet blocks in OpenMP batches
/// of `batch_blocks` (0 = auto) and delivers each finished batch to
/// `emit` as one contiguous span of whole blocks starting at dataset
/// block `first_block`, in dataset order.  Piping the emitted values
/// into a StreamWriter yields byte-for-byte the stream
/// `compress(generate_eri_dataset(...))` would, while peak memory stays
/// O(batch): the dense ERI tensor is never built.  Returns the metadata.
EriStreamMeta generate_eri_block_batches(
    const Molecule& mol, const DatasetOptions& opt,
    const std::function<void(const EriStreamMeta& meta,
                             std::size_t first_block,
                             std::span<const double> values)>& emit,
    std::size_t batch_blocks = 0);

/// Per-block wrapper over `generate_eri_block_batches` (one callback per
/// block, same order and bytes).  Kept for callers that want block
/// granularity; small-block configs are cheaper through the batched
/// entry point.
EriStreamMeta generate_eri_blocks(
    const Molecule& mol, const DatasetOptions& opt,
    const std::function<void(const EriStreamMeta& meta, std::size_t block,
                             std::span<const double> values)>& emit,
    std::size_t batch_blocks = 0);

/// Compute a single shell-quartet block for externally built shells
/// (thin wrapper over compute_eri_block that allocates the output).
std::vector<double> compute_block(const Shell& A, const Shell& B,
                                  const Shell& C, const Shell& D);

/// Throughput measurement helper for Fig. 11: evaluates `blocks` sampled
/// blocks and returns generated MB per second of wall time.
double measure_generation_rate(const Molecule& mol, const DatasetOptions& opt,
                               std::size_t blocks);

}  // namespace pastri::qc
