// eri_engine.h - Shell-quartet enumeration, Schwarz screening, and
// dataset generation: the GAMESS-side substrate that feeds PaSTRI.
//
// The paper's datasets are streams of shell blocks for one BF
// configuration at a time -- (dd|dd), (ff|ff), hybrids -- sampled down to
// a practical size.  `generate_eri_dataset` reproduces that: it builds
// shells of the requested momenta on the molecule's heavy atoms,
// enumerates all ordered shell quartets, draws a deterministic uniform
// sample, and evaluates each block with the McMurchie-Davidson engine.
// Quartets failing the Schwarz bound are emitted as all-zero blocks,
// matching the paper's "screened elements are represented as zeros".
#pragma once

#include <cstdint>
#include <limits>

#include "qc/basis.h"
#include "qc/dataset.h"
#include "qc/md_eri.h"
#include "qc/molecule.h"

namespace pastri::qc {

struct DatasetOptions {
  /// BF configuration: angular momentum of each of the four shell slots.
  std::array<int, 4> config{2, 2, 2, 2};  // default (dd|dd)

  int contraction = 1;        ///< primitives per shell
  std::uint64_t seed = 12345; ///< sampling seed (deterministic)

  /// Cap on the number of blocks; if `target_bytes` is nonzero it wins.
  std::size_t max_blocks = std::numeric_limits<std::size_t>::max();
  std::size_t target_bytes = 0;

  /// Schwarz product threshold below which a quartet is screened out
  /// (emitted as zeros).  GAMESS uses ~1e-10..1e-12 integral cutoffs.
  double screen_threshold = 1e-12;

  /// If false, screened quartets are dropped from the sample instead of
  /// being stored as zero blocks.
  bool keep_screened = true;
};

/// Parse "(dd|dd)"-style names ("dddd", "(fd|ff)", ...) into a config.
/// Throws std::invalid_argument on malformed names.
std::array<int, 4> parse_config(const std::string& name);

/// Generate a sampled ERI dataset for `mol` under `opt`.
EriDataset generate_eri_dataset(const Molecule& mol,
                                const DatasetOptions& opt);

/// Compute a single shell-quartet block for externally built shells
/// (thin wrapper over compute_eri_block that allocates the output).
std::vector<double> compute_block(const Shell& A, const Shell& B,
                                  const Shell& C, const Shell& D);

/// Throughput measurement helper for Fig. 11: evaluates `blocks` sampled
/// blocks and returns generated MB per second of wall time.
double measure_generation_rate(const Molecule& mol, const DatasetOptions& opt,
                               std::size_t blocks);

}  // namespace pastri::qc
