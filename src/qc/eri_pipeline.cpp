// eri_pipeline.cpp - The fused compute->compress->io driver.  Lives in
// the io build target (not pastri_qc) because it feeds the shard
// writers; the header sits with the other qc entry points it extends.
#include "qc/eri_pipeline.h"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "io/file_per_process.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri::qc {
namespace {

/// Pipeline telemetry (obs/metric_names.h): one counter bump per chunk,
/// stall totals added once per run.
struct PipelineMetrics {
  obs::Counter chunks = obs::registry().counter(obs::kQcPipelineChunks);
  obs::Gauge queue_depth =
      obs::registry().gauge(obs::kQcPipelineQueueDepth);
  obs::Counter compute_stall =
      obs::registry().counter(obs::kQcPipelineComputeStallNs);
  obs::Counter encode_stall =
      obs::registry().counter(obs::kQcPipelineEncodeStallNs);
  obs::Counter io_stall =
      obs::registry().counter(obs::kQcPipelineIoStallNs);
  obs::Gauge overlap_pct =
      obs::registry().gauge(obs::kQcPipelineOverlapPct);
};

const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics m;
  return m;
}

std::uint64_t since_ns(std::chrono::steady_clock::time_point t0) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

/// Chunk batch when the caller left it auto: the same sizing rule
/// StreamWriter uses for its encode batches (keep every OpenMP worker
/// busy, cap the staging buffer at a few MB), so one computed chunk
/// fills exactly one encode batch.
std::size_t auto_chunk_blocks(std::size_t block_size) {
  const std::size_t bs = std::max<std::size_t>(1, block_size);
  const std::size_t want = std::max<std::size_t>(
      64, 16 * static_cast<std::size_t>(omp_get_max_threads()));
  const std::size_t mem_cap =
      std::max<std::size_t>(1, (std::size_t{8} << 20) / (bs * sizeof(double)));
  return std::min(want, mem_cap);
}

/// One unit of compute->encode traffic: whole blocks
/// [first, first+count), contiguous.  Buffers are recycled through a
/// free queue, so steady-state allocation is zero.
struct Chunk {
  std::size_t first = 0;
  std::size_t count = 0;
  std::vector<double> values;
};

struct PumpStats {
  std::size_t chunks = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t encode_ns = 0;
  std::uint64_t compute_stall_ns = 0;
  std::uint64_t encode_stall_ns = 0;
  std::vector<EriProducerStats> producers;
};

using PutFn =
    std::function<void(std::size_t first_block, std::span<const double>)>;

/// Drive dataset blocks [first, first+count) from `gen` into `put`, in
/// order.  Pipelined mode runs compute on a producer thread feeding a
/// bounded filled-chunk queue (capacity = queue_depth) while `put` runs
/// on the caller's thread; sequential mode runs both inline on one
/// buffer.  `put` sees the identical (first_block, values) sequence
/// either way.
PumpStats pump_blocks(const EriBlockGenerator& gen, std::size_t first,
                      std::size_t count, std::size_t batch,
                      const EriPipelineOptions& popt, const PutFn& put) {
  const std::size_t bs = gen.meta().shape.block_size();
  PumpStats st;
  if (count == 0) return st;

  if (!popt.pipelined) {
    std::vector<double> buf(batch * bs);
    for (std::size_t b0 = 0; b0 < count; b0 += batch) {
      const std::size_t n = std::min(batch, count - b0);
      const auto chunk = std::span<double>(buf).first(n * bs);
      auto t0 = std::chrono::steady_clock::now();
      gen.compute_range(first + b0, n, chunk);
      st.compute_ns += since_ns(t0);
      t0 = std::chrono::steady_clock::now();
      put(first + b0, chunk);
      st.encode_ns += since_ns(t0);
      ++st.chunks;
      pipeline_metrics().chunks.inc();
    }
    return st;
  }

  // Staged overlap, N compute producers feeding one encoder.  Producers
  // claim chunk indices dynamically: each first acquires a free buffer,
  // THEN claims the next index -- so the indices outstanding at any
  // moment span fewer than nbuf positions, and the consumer can
  // re-establish dataset order with a fixed ring of nbuf slots (slot =
  // chunk_index % nbuf) without ever allocating or deadlocking.  The
  // encoder therefore sees the identical in-order (first, values)
  // sequence for every producer count, which keeps the bytes identical.
  //
  // Peak memory is nbuf = depth + producers + 1 chunks: `depth` queued
  // between the stages, one in flight per producer, one in the encoder
  // (the single-producer case reduces to the classic depth + 2 double
  // buffering).
  const std::size_t nprod = std::max<std::size_t>(1, popt.producers);
  const std::size_t depth = std::max<std::size_t>(1, popt.queue_depth);
  const std::size_t nbuf = depth + nprod + 1;
  const std::size_t nchunks = (count + batch - 1) / batch;
  BoundedQueue<Chunk> free_q(nbuf);
  BoundedQueue<Chunk> filled_q(depth);
  for (std::size_t i = 0; i < nbuf; ++i) {
    Chunk c;
    c.values.reserve(batch * bs);
    free_q.push(std::move(c));
  }

  std::mutex err_mu;
  std::exception_ptr producer_error;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> live{nprod};
  st.producers.resize(nprod);
  std::vector<std::thread> workers;
  workers.reserve(nprod);
  for (std::size_t pi = 0; pi < nprod; ++pi) {
    workers.emplace_back([&, pi] {
      // Each producer thread gets its own OpenMP team inside
      // compute_range (the generator is safe for concurrent ranges), so
      // the quartet math stays parallel while the encode stage runs.
      EriProducerStats& ps = st.producers[pi];
      try {
        for (;;) {
          Chunk c;
          if (!free_q.pop(c, &ps.stall_ns)) break;
          const std::size_t ci =
              next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (ci >= nchunks) {
            free_q.push(std::move(c));
            break;
          }
          const std::size_t b0 = ci * batch;
          const std::size_t n = std::min(batch, count - b0);
          c.first = first + b0;
          c.count = n;
          c.values.resize(n * bs);
          const auto t0 = std::chrono::steady_clock::now();
          gen.compute_range(c.first, n, c.values);
          ps.compute_ns += since_ns(t0);
          ++ps.chunks;
          if (!filled_q.push(std::move(c), &ps.stall_ns)) break;
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!producer_error) producer_error = std::current_exception();
      }
      if (live.fetch_sub(1) == 1) {
        filled_q.close();  // last producer out: let the consumer drain
      }
    });
  }

  std::vector<Chunk> ring(nbuf);
  std::vector<char> ring_full(nbuf, 0);
  std::size_t expected = 0;
  try {
    Chunk c;
    while (filled_q.pop(c)) {
      pipeline_metrics().queue_depth.set(
          static_cast<double>(filled_q.size()));
      const std::size_t ci = (c.first - first) / batch;
      if (ci != expected) {
        // Arrived ahead of a slower neighbour; park it in its ring slot.
        ring[ci % nbuf] = std::move(c);
        ring_full[ci % nbuf] = 1;
        continue;
      }
      for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        put(c.first, std::span<const double>(c.values).first(c.count * bs));
        st.encode_ns += since_ns(t0);
        ++st.chunks;
        pipeline_metrics().chunks.inc();
        c.values.clear();
        free_q.push(std::move(c));
        ++expected;
        const std::size_t slot = expected % nbuf;
        if (!ring_full[slot]) break;
        c = std::move(ring[slot]);
        ring_full[slot] = 0;
      }
    }
  } catch (...) {
    // Unblock the producers wherever they are waiting, then re-raise.
    free_q.close();
    filled_q.close();
    for (std::thread& w : workers) w.join();
    throw;
  }
  for (std::thread& w : workers) w.join();
  if (producer_error) std::rethrow_exception(producer_error);
  if (expected != nchunks) {
    throw std::runtime_error("eri pipeline: chunk stream ended early");
  }

  for (const EriProducerStats& ps : st.producers) {
    st.compute_ns += ps.compute_ns;
    st.compute_stall_ns += ps.stall_ns;
  }
  st.encode_stall_ns =
      filled_q.consumer_wait_ns() + free_q.producer_wait_ns();
  pipeline_metrics().compute_stall.add(st.compute_stall_ns);
  pipeline_metrics().encode_stall.add(st.encode_stall_ns);
  return st;
}

/// (sum busy - wall) / (sum busy - max busy): the fraction of the
/// theoretically hideable stage time that overlap actually hid.
double overlap_efficiency(std::uint64_t wall, std::uint64_t compute,
                          std::uint64_t encode, std::uint64_t io) {
  const double sum = static_cast<double>(compute) +
                     static_cast<double>(encode) + static_cast<double>(io);
  const double mx = static_cast<double>(
      std::max(compute, std::max(encode, io)));
  const double denom = sum - mx;
  if (denom <= 0.0) return 0.0;
  const double eff = (sum - static_cast<double>(wall)) / denom;
  return std::clamp(eff, 0.0, 1.0);
}

void finalize_result(EriPipelineResult& res, const PumpStats& ps,
                     std::uint64_t wall_ns) {
  res.chunks = ps.chunks;
  res.compute_ns = ps.compute_ns;
  res.encode_ns += ps.encode_ns;
  res.compute_stall_ns = ps.compute_stall_ns;
  res.encode_stall_ns = ps.encode_stall_ns;
  res.producers = ps.producers;
  res.wall_ns = wall_ns;
  res.overlap_efficiency = overlap_efficiency(wall_ns, res.compute_ns,
                                              res.encode_ns, res.io_ns);
  pipeline_metrics().io_stall.add(res.io_stall_ns);
  pipeline_metrics().overlap_pct.set(100.0 * res.overlap_efficiency);
}

/// Accumulate one shard's codec stats into the dump total.
void add_stats(Stats& into, const Stats& from) {
  into.input_bytes += from.input_bytes;
  into.output_bytes += from.output_bytes;
  into.header_bits += from.header_bits;
  into.pattern_bits += from.pattern_bits;
  into.scale_bits += from.scale_bits;
  into.ecq_bits += from.ecq_bits;
  into.num_blocks += from.num_blocks;
  for (int t = 0; t < 4; ++t) {
    into.blocks_by_type[t] += from.blocks_by_type[t];
  }
  into.sparse_blocks += from.sparse_blocks;
  into.num_outliers += from.num_outliers;
  into.dict_bits += from.dict_bits;
  into.dict_entries += from.dict_entries;
  into.dict_exact_refs += from.dict_exact_refs;
  into.dict_delta_refs += from.dict_delta_refs;
}

/// Routes a stream of whole blocks into consecutive shard containers,
/// starting mid-layout -- ShardedDatasetWriter's roll logic, minus the
/// from-zero assumption, which is what a resumed dump needs.
class ShardRoller {
 public:
  ShardRoller(const std::string& dir, const std::string& basename,
              const io::ShardLayout& layout, const BlockSpec& spec,
              const Params& params, const io::ShardIo& io,
              std::size_t block_size, std::size_t start_shard)
      : dir_(dir),
        basename_(basename),
        layout_(layout),
        spec_(spec),
        params_(params),
        io_(io),
        bs_(block_size),
        shard_(start_shard) {}

  void put(std::span<const double> values) {
    while (!values.empty()) {
      roll_();
      if (!cur_) {
        throw std::runtime_error("ShardRoller: more blocks than layout");
      }
      const std::size_t room =
          layout_.blocks_per_shard[shard_] - blocks_in_shard_;
      const std::size_t take = std::min(room, values.size() / bs_);
      cur_->put_values(values.first(take * bs_));
      blocks_in_shard_ += take;
      values = values.subspan(take * bs_);
    }
  }

  void finish() { roll_(); }

  std::size_t bytes() const { return bytes_; }
  const Stats& stats() const { return stats_; }
  const io::ShardIoStats& io_stats() const { return io_stats_; }

 private:
  void roll_() {
    while (shard_ < layout_.num_shards) {
      if (!cur_) {
        cur_ = std::make_unique<io::ShardWriter>(
            dir_, basename_, static_cast<int>(shard_), spec_, params_,
            layout_.blocks_per_shard[shard_], io_);
        blocks_in_shard_ = 0;
      }
      if (blocks_in_shard_ < layout_.blocks_per_shard[shard_]) return;
      bytes_ += cur_->finish();
      add_stats(stats_, cur_->stats());
      io_stats_.backpressure_wait_ns +=
          cur_->io_stats().backpressure_wait_ns;
      io_stats_.idle_wait_ns += cur_->io_stats().idle_wait_ns;
      io_stats_.apply_ns += cur_->io_stats().apply_ns;
      cur_.reset();
      ++shard_;
    }
  }

  const std::string& dir_;
  const std::string& basename_;
  const io::ShardLayout& layout_;
  BlockSpec spec_;
  const Params& params_;
  io::ShardIo io_;
  std::size_t bs_;
  std::size_t shard_;
  std::size_t blocks_in_shard_ = 0;
  std::unique_ptr<io::ShardWriter> cur_;
  std::size_t bytes_ = 0;
  Stats stats_;
  io::ShardIoStats io_stats_;
};

}  // namespace

EriPipelineResult compress_eri_stream(const Molecule& mol,
                                      const DatasetOptions& opt,
                                      const Params& params, ByteSink& sink,
                                      const EriPipelineOptions& popt) {
  const auto t_start = std::chrono::steady_clock::now();
  const EriBlockGenerator gen(mol, opt);
  const EriStreamMeta& meta = gen.meta();
  const std::size_t bs = meta.shape.block_size();
  const std::size_t batch =
      popt.batch_blocks != 0 ? popt.batch_blocks : auto_chunk_blocks(bs);

  std::unique_ptr<AsyncSink> async;
  if (popt.async_io) async = std::make_unique<AsyncSink>(sink);
  const BlockSpec spec{meta.shape.num_sub_blocks(),
                       meta.shape.sub_block_size()};
  StreamWriter writer(
      async ? static_cast<ByteSink&>(*async) : sink, spec, params,
      StreamWriterOptions{.batch_blocks = batch,
                          .expected_blocks = meta.num_blocks});

  EriPipelineResult res;
  res.meta = meta;
  const PumpStats ps = pump_blocks(
      gen, 0, meta.num_blocks, batch, popt,
      [&](std::size_t, std::span<const double> values) {
        writer.put_values(values);
      });

  const auto t_fin = std::chrono::steady_clock::now();
  res.bytes_written = writer.finish();
  res.stats = writer.stats();
  if (async) {
    async->flush();
    res.io_stall_ns = async->backpressure_wait_ns();
    res.io_ns = async->apply_ns();
    async.reset();
  }
  res.encode_ns = since_ns(t_fin);  // finish() runs on the encode stage
  finalize_result(res, ps, since_ns(t_start));
  return res;
}

EriDumpResult dump_eri_sharded(const Molecule& mol, const DatasetOptions& opt,
                               const Params& params, const std::string& dir,
                               const std::string& basename,
                               const EriDumpOptions& dopt,
                               const EriPipelineOptions& popt) {
  const auto t_start = std::chrono::steady_clock::now();
  const EriBlockGenerator gen(mol, opt);
  const EriStreamMeta& meta = gen.meta();
  const std::size_t bs = meta.shape.block_size();
  const io::ShardLayout layout =
      io::make_shard_layout(meta.num_blocks, dopt.num_shards);

  EriDumpResult res;
  res.pipeline.meta = meta;
  res.shards_total = layout.num_shards;

  // Resume: keep the leading run of shards that already parse as
  // complete containers.  The first incomplete one (a mid-dump
  // truncation, a partial write) is regenerated from scratch -- the
  // plan is deterministic, so the redone bytes equal what the
  // interrupted run would have produced.
  std::size_t start_shard = 0;
  if (dopt.resume) {
    while (start_shard < layout.num_shards &&
           io::shard_is_complete(dir, basename,
                                 static_cast<int>(start_shard),
                                 layout.blocks_per_shard[start_shard])) {
      res.bytes_total +=
          io::rank_file_size(dir, basename, static_cast<int>(start_shard));
      res.blocks_reused += layout.blocks_per_shard[start_shard];
      ++start_shard;
    }
  }
  res.shards_reused = start_shard;

  const BlockSpec spec{meta.shape.num_sub_blocks(),
                       meta.shape.sub_block_size()};
  io::ShardIo shard_io;
  shard_io.async = popt.async_io;
  ShardRoller roller(dir, basename, layout, spec, params, shard_io, bs,
                     start_shard);
  const std::size_t first = io::shard_first_block(layout, start_shard);
  const PumpStats ps = pump_blocks(
      gen, first, meta.num_blocks - first,
      popt.batch_blocks != 0 ? popt.batch_blocks : auto_chunk_blocks(bs),
      popt,
      [&](std::size_t, std::span<const double> values) {
        roller.put(values);
      });

  const auto t_fin = std::chrono::steady_clock::now();
  roller.finish();
  io::write_dataset_manifest(dir, basename, meta.label, meta.shape,
                             meta.num_blocks, layout);
  res.pipeline.bytes_written = roller.bytes();
  res.bytes_total += roller.bytes();
  res.pipeline.stats = roller.stats();
  res.pipeline.io_stall_ns = roller.io_stats().backpressure_wait_ns;
  res.pipeline.io_ns = roller.io_stats().apply_ns;
  res.pipeline.encode_ns = since_ns(t_fin);
  finalize_result(res.pipeline, ps, since_ns(t_start));
  return res;
}

}  // namespace pastri::qc
