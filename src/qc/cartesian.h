// cartesian.h - Cartesian Gaussian angular-momentum bookkeeping.
//
// A shell of total angular momentum L contains (L+1)(L+2)/2 Cartesian
// basis functions x^i y^j z^k (i+j+k = L).  GAMESS enumerates them in a
// fixed order per shell type; PaSTRI's sub-block pattern structure is a
// function of this ordering, so we pin it down here once and use it for
// both integral generation and block layout.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace pastri::qc {

/// One Cartesian component: exponents of x, y, z.
struct CartComponent {
  std::uint8_t lx = 0, ly = 0, lz = 0;
  constexpr int total() const { return lx + ly + lz; }
};

/// Highest shell angular momentum supported (s=0 ... g=4).
inline constexpr int kMaxAngularMomentum = 4;

/// Number of Cartesian components of a shell with angular momentum l.
constexpr int num_cartesians(int l) { return (l + 1) * (l + 2) / 2; }

/// GAMESS-style component ordering for each shell type:
///   s : 1
///   p : x y z
///   d : xx yy zz xy xz yz
///   f : xxx yyy zzz xxy xxz xyy yyz xzz yzz xyz
///   g : xxxx yyyy zzzz xxxy xxxz xyyy yyyz xzzz yzzz xxyy xxzz yyzz
///       xxyz xyyz xyzz
std::span<const CartComponent> cartesian_components(int l);

/// One-letter shell name for angular momentum l ("s","p","d","f","g").
char shell_letter(int l);

/// Inverse of shell_letter; returns -1 for unknown letters.
int shell_momentum(char letter);

/// Human-readable component label, e.g. "xxy" ("1" for s).
std::string_view component_label(int l, int index);

/// Double factorial (2n-1)!! with (-1)!! = 1, used in normalization.
constexpr double double_factorial_odd(int n) {
  double r = 1.0;
  for (int k = 2 * n - 1; k > 1; k -= 2) r *= k;
  return r;
}

}  // namespace pastri::qc
