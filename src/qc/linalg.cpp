#include "qc/linalg.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pastri::qc {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(n_ == rhs.n_);
  Matrix out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = 0; k < n_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < n_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  assert(n_ == rhs.n_);
  Matrix out(n_);
  for (std::size_t i = 0; i < n_ * n_; ++i) {
    out.data_[i] = data_[i] + rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  assert(n_ == rhs.n_);
  Matrix out(n_);
  for (std::size_t i = 0; i < n_ * n_; ++i) {
    out.data_[i] = data_[i] - rhs.data_[i];
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  assert(n_ == other.n_);
  double m = 0.0;
  for (std::size_t i = 0; i < n_ * n_; ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

EigenResult jacobi_eigensolver(const Matrix& a_in, int max_sweeps,
                               double tol) {
  const std::size_t n = a_in.size();
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = 0.5 * (a(q, q) - a(p, p)) / apq;
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a(x, x) < a(y, y);
  });
  EigenResult r;
  r.eigenvalues.resize(n);
  r.eigenvectors = Matrix(n);
  for (std::size_t c = 0; c < n; ++c) {
    r.eigenvalues[c] = a(order[c], order[c]);
    for (std::size_t k = 0; k < n; ++k) {
      r.eigenvectors(k, c) = v(k, order[c]);
    }
  }
  return r;
}

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("solve_linear: size");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(piv, col))) piv = r;
    }
    if (std::abs(a(piv, col)) < 1e-14) {
      throw std::runtime_error("solve_linear: singular matrix");
    }
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(piv, c), a(col, c));
      std::swap(b[piv], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= f * a(col, c);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a(ri, c) * x[c];
    x[ri] = sum / a(ri, ri);
  }
  return x;
}

Matrix symmetric_orthogonalizer(const Matrix& s, double lindep_tol) {
  const EigenResult eig = jacobi_eigensolver(s);
  const std::size_t n = s.size();
  for (double w : eig.eigenvalues) {
    if (w < lindep_tol) {
      throw std::runtime_error(
          "overlap matrix is (near-)singular; basis linearly dependent");
    }
  }
  Matrix x(n);
  // X = V diag(1/sqrt(w)) V^T
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eig.eigenvectors(i, k) * eig.eigenvectors(j, k) /
               std::sqrt(eig.eigenvalues[k]);
      }
      x(i, j) = sum;
    }
  }
  return x;
}

}  // namespace pastri::qc
