#include "qc/molecule.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace pastri::qc {
namespace {

int element_Z(const std::string& sym) {
  if (sym == "H") return 1;
  if (sym == "C") return 6;
  if (sym == "N") return 7;
  if (sym == "O") return 8;
  throw std::invalid_argument("unknown element: " + sym);
}

void add_atom(Molecule& m, const std::string& sym, double x_ang,
              double y_ang, double z_ang) {
  m.atoms.push_back(Atom{sym, element_Z(sym),
                         Vec3{x_ang * kAngstromToBohr,
                              y_ang * kAngstromToBohr,
                              z_ang * kAngstromToBohr}});
}

}  // namespace

std::size_t Molecule::num_heavy_atoms() const {
  std::size_t n = 0;
  for (const auto& a : atoms) n += (a.Z > 1);
  return n;
}

double Molecule::diameter() const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms.size(); ++j) {
      d2 = std::max(d2, dist2(atoms[i].position, atoms[j].position));
    }
  }
  return std::sqrt(d2);
}

Molecule make_benzene() {
  Molecule m;
  m.name = "benzene";
  const double rC = 1.397, rH = 1.397 + 1.084;
  for (int k = 0; k < 6; ++k) {
    const double th = k * std::numbers::pi / 3.0;
    add_atom(m, "C", rC * std::cos(th), rC * std::sin(th), 0.0);
  }
  for (int k = 0; k < 6; ++k) {
    const double th = k * std::numbers::pi / 3.0;
    add_atom(m, "H", rH * std::cos(th), rH * std::sin(th), 0.0);
  }
  return m;
}

Molecule make_glutamine() {
  Molecule m;
  m.name = "glutamine";
  // Idealized geometry: backbone H2N-CH(COOH)- with the -CH2-CH2-C(=O)NH2
  // side chain.  Bond lengths ~1.0 (X-H), ~1.5 (C-C), ~1.35 (C-N/C-O).
  add_atom(m, "N", -1.95, 0.49, -0.80);   // alpha amine
  add_atom(m, "C", -1.00, 0.00, 0.20);    // CA
  add_atom(m, "C", -1.50, -1.30, 0.80);   // carboxyl C
  add_atom(m, "O", -2.60, -1.75, 0.55);   // C=O
  add_atom(m, "O", -0.65, -1.95, 1.62);   // C-OH
  add_atom(m, "C", 0.40, -0.15, -0.35);   // CB
  add_atom(m, "C", 1.50, 0.35, 0.55);     // CG
  add_atom(m, "C", 2.85, 0.25, -0.10);    // CD (amide carbon)
  add_atom(m, "O", 3.05, -0.35, -1.15);   // OE1
  add_atom(m, "N", 3.85, 0.85, 0.50);     // NE2
  add_atom(m, "H", -1.55, 1.33, -1.20);
  add_atom(m, "H", -2.85, 0.73, -0.40);
  add_atom(m, "H", -0.90, 0.70, 1.04);
  add_atom(m, "H", 0.30, 0.45, -1.26);
  add_atom(m, "H", 0.65, -1.18, -0.60);
  add_atom(m, "H", 1.30, 1.39, 0.82);
  add_atom(m, "H", 1.55, -0.22, 1.48);
  add_atom(m, "H", 4.75, 0.80, 0.08);
  add_atom(m, "H", 3.65, 1.35, 1.35);
  add_atom(m, "H", -1.00, -2.78, 2.00);
  return m;
}

Molecule make_trialanine() {
  Molecule m;
  m.name = "alanine";  // paper labels this dataset "alanine" (tri-Alanine)
  // Extended Ala-Ala-Ala chain along +x, alternating pleat in y.
  for (int i = 0; i < 3; ++i) {
    const double x0 = 3.6 * i;
    const double s = (i % 2 == 0) ? 1.0 : -1.0;
    add_atom(m, "N", x0 + 0.00, 0.30 * s, 0.00);
    add_atom(m, "C", x0 + 1.00, -0.45 * s, 0.10);   // CA
    add_atom(m, "C", x0 + 1.20, -1.20 * s, 1.35);   // CB (methyl)
    add_atom(m, "C", x0 + 2.20, 0.35 * s, -0.30);   // carbonyl C
    add_atom(m, "O", x0 + 2.30, 1.50 * s, -0.70);   // carbonyl O
    // CA hydrogen
    add_atom(m, "H", x0 + 0.95, -1.15 * s, -0.72);
    // CB (methyl) hydrogens
    add_atom(m, "H", x0 + 0.40, -1.90 * s, 1.52);
    add_atom(m, "H", x0 + 2.15, -1.73 * s, 1.33);
    add_atom(m, "H", x0 + 1.20, -0.50 * s, 2.19);
    if (i == 0) {
      // N-terminal amine hydrogens
      add_atom(m, "H", x0 - 0.65, 1.05 * s, 0.25);
      add_atom(m, "H", x0 - 0.40, -0.35 * s, -0.65);
    } else {
      // backbone amide hydrogen
      add_atom(m, "H", x0 - 0.15, 1.05 * s, 0.55);
    }
  }
  // C-terminal carboxyl OH
  add_atom(m, "O", 2.0 * 3.6 + 3.00, -0.60, -1.05);
  add_atom(m, "H", 2.0 * 3.6 + 3.75, -0.10, -1.40);
  return m;
}

Molecule make_molecule(const std::string& name) {
  if (name == "benzene") return make_benzene();
  if (name == "glutamine") return make_glutamine();
  if (name == "alanine" || name == "trialanine" || name == "tri-alanine") {
    return make_trialanine();
  }
  throw std::invalid_argument("unknown molecule: " + name);
}

}  // namespace pastri::qc
