#include "qc/sto3g.h"

#include <stdexcept>

namespace pastri::qc {
namespace {

// Universal STO-3G contraction coefficients (for normalized primitives).
constexpr double k1sCoef[3] = {0.1543289673, 0.5353281423, 0.4446345422};
constexpr double k2sCoef[3] = {-0.09996722919, 0.3995128261, 0.7001154689};
constexpr double k2pCoef[3] = {0.1559162750, 0.6076837186, 0.3919573931};

struct ElementData {
  double exp1s[3];
  bool has_2sp;
  double exp2sp[3];
};

/// Standard STO-3G exponents.
ElementData element_data(int Z) {
  switch (Z) {
    case 1:  // H
      return {{3.425250914, 0.6239137298, 0.1688554040}, false, {}};
    case 2:  // He
      return {{6.362421394, 1.158922999, 0.3136497915}, false, {}};
    case 6:  // C
      return {{71.61683735, 13.04509632, 3.530512160},
              true,
              {2.941249355, 0.6834830964, 0.2222899159}};
    case 7:  // N
      return {{99.10616896, 18.05231239, 4.885660238},
              true,
              {3.780455879, 0.8784966449, 0.2857143744}};
    case 8:  // O
      return {{130.7093200, 23.80886100, 6.443608313},
              true,
              {5.033151319, 1.169596125, 0.3803889600}};
    default:
      throw std::invalid_argument("STO-3G: unsupported element");
  }
}

Shell make_contracted(int l, const Vec3& center, int atom,
                      const double (&exps)[3], const double (&coefs)[3]) {
  Shell sh;
  sh.l = l;
  sh.center = center;
  sh.atom_index = atom;
  for (int k = 0; k < 3; ++k) {
    sh.primitives.push_back({exps[k], coefs[k]});
  }
  sh.normalize();
  return sh;
}

}  // namespace

BasisSet make_sto3g_basis(const Molecule& mol) {
  BasisSet basis;
  for (std::size_t ai = 0; ai < mol.atoms.size(); ++ai) {
    const Atom& atom = mol.atoms[ai];
    const ElementData ed = element_data(atom.Z);
    basis.shells.push_back(make_contracted(
        0, atom.position, static_cast<int>(ai), ed.exp1s, k1sCoef));
    if (ed.has_2sp) {
      basis.shells.push_back(make_contracted(
          0, atom.position, static_cast<int>(ai), ed.exp2sp, k2sCoef));
      basis.shells.push_back(make_contracted(
          1, atom.position, static_cast<int>(ai), ed.exp2sp, k2pCoef));
    }
  }
  return basis;
}

int electron_count(const Molecule& mol) {
  int n = 0;
  for (const auto& a : mol.atoms) n += a.Z;
  return n;
}

}  // namespace pastri::qc
