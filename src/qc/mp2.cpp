#include "qc/mp2.h"

#include <stdexcept>

#include "qc/sto3g.h"

namespace pastri::qc {

EriTensor transform_eri_to_mo(const EriTensor& eri_ao, const Matrix& c) {
  const std::size_t n = c.size();
  if (eri_ao.size() != n * n * n * n) {
    throw std::invalid_argument("MP2: ERI tensor size mismatch");
  }
  // Four sequential quarter transformations, O(n^5) total.
  auto idx = [n](std::size_t a, std::size_t b, std::size_t d,
                 std::size_t e) {
    return ((a * n + b) * n + d) * n + e;
  };
  EriTensor t1(eri_ao.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t mu = 0; mu < n; ++mu) {
      const double cmu = c(mu, p);
      if (cmu == 0.0) continue;
      for (std::size_t nu = 0; nu < n; ++nu) {
        for (std::size_t la = 0; la < n; ++la) {
          for (std::size_t si = 0; si < n; ++si) {
            t1[idx(p, nu, la, si)] += cmu * eri_ao[idx(mu, nu, la, si)];
          }
        }
      }
    }
  }
  EriTensor t2(eri_ao.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        const double cnu = c(nu, q);
        if (cnu == 0.0) continue;
        for (std::size_t la = 0; la < n; ++la) {
          for (std::size_t si = 0; si < n; ++si) {
            t2[idx(p, q, la, si)] += cnu * t1[idx(p, nu, la, si)];
          }
        }
      }
    }
  }
  t1.assign(eri_ao.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t la = 0; la < n; ++la) {
          const double cla = c(la, r);
          if (cla == 0.0) continue;
          for (std::size_t si = 0; si < n; ++si) {
            t1[idx(p, q, r, si)] += cla * t2[idx(p, q, la, si)];
          }
        }
      }
    }
  }
  t2.assign(eri_ao.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t si = 0; si < n; ++si) {
            t2[idx(p, q, r, s)] += c(si, s) * t1[idx(p, q, r, si)];
          }
        }
      }
    }
  }
  return t2;
}

Mp2Result run_mp2(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, const ScfResult& scf) {
  if (!scf.converged) {
    throw std::invalid_argument("MP2 requires a converged SCF reference");
  }
  const std::size_t n = basis.num_basis_functions();
  const std::size_t nocc =
      static_cast<std::size_t>(electron_count(mol) / 2);
  if (scf.mo_coefficients.size() != n ||
      scf.orbital_energies.size() != n) {
    throw std::invalid_argument("MP2: SCF result does not match basis");
  }

  const EriTensor mo = transform_eri_to_mo(eri, scf.mo_coefficients);
  auto at = [n, &mo](std::size_t p, std::size_t q, std::size_t r,
                     std::size_t s) {
    return mo[((p * n + q) * n + r) * n + s];
  };
  const auto& e = scf.orbital_energies;

  double corr = 0.0;
  for (std::size_t i = 0; i < nocc; ++i) {
    for (std::size_t j = 0; j < nocc; ++j) {
      for (std::size_t a = nocc; a < n; ++a) {
        for (std::size_t b = nocc; b < n; ++b) {
          const double iajb = at(i, a, j, b);
          const double ibja = at(i, b, j, a);
          corr += iajb * (2.0 * iajb - ibja) /
                  (e[i] + e[j] - e[a] - e[b]);
        }
      }
    }
  }
  Mp2Result res;
  res.correlation_energy = corr;
  res.total_energy = scf.total_energy + corr;
  return res;
}

}  // namespace pastri::qc
