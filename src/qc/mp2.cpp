#include "qc/mp2.h"

#include <stdexcept>

#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

/// Quarter transformations two to four, shared by the dense and the
/// streaming-from-store paths.  `t1` is the first-quarter-transformed
/// tensor t1[(p nu | la si)]; returns the full MO tensor.
EriTensor transform_last_three(EriTensor t1, const Matrix& c) {
  const std::size_t n = c.size();
  auto idx = [n](std::size_t a, std::size_t b, std::size_t d,
                 std::size_t e) {
    return ((a * n + b) * n + d) * n + e;
  };
  EriTensor t2(t1.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        const double cnu = c(nu, q);
        if (cnu == 0.0) continue;
        for (std::size_t la = 0; la < n; ++la) {
          for (std::size_t si = 0; si < n; ++si) {
            t2[idx(p, q, la, si)] += cnu * t1[idx(p, nu, la, si)];
          }
        }
      }
    }
  }
  t1.assign(t2.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t la = 0; la < n; ++la) {
          const double cla = c(la, r);
          if (cla == 0.0) continue;
          for (std::size_t si = 0; si < n; ++si) {
            t1[idx(p, q, r, si)] += cla * t2[idx(p, q, la, si)];
          }
        }
      }
    }
  }
  t2.assign(t1.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t s = 0; s < n; ++s) {
          for (std::size_t si = 0; si < n; ++si) {
            t2[idx(p, q, r, s)] += c(si, s) * t1[idx(p, q, r, si)];
          }
        }
      }
    }
  }
  return t2;
}

/// The closed-shell pair-energy sum over the MO tensor.
double mp2_energy_sum(const EriTensor& mo,
                      const std::vector<double>& e, std::size_t nocc,
                      std::size_t n) {
  auto at = [n, &mo](std::size_t p, std::size_t q, std::size_t r,
                     std::size_t s) {
    return mo[((p * n + q) * n + r) * n + s];
  };
  double corr = 0.0;
  for (std::size_t i = 0; i < nocc; ++i) {
    for (std::size_t j = 0; j < nocc; ++j) {
      for (std::size_t a = nocc; a < n; ++a) {
        for (std::size_t b = nocc; b < n; ++b) {
          const double iajb = at(i, a, j, b);
          const double ibja = at(i, b, j, a);
          corr += iajb * (2.0 * iajb - ibja) /
                  (e[i] + e[j] - e[a] - e[b]);
        }
      }
    }
  }
  return corr;
}

void check_scf_reference(const BasisSet& basis, const ScfResult& scf) {
  if (!scf.converged) {
    throw std::invalid_argument("MP2 requires a converged SCF reference");
  }
  const std::size_t n = basis.num_basis_functions();
  if (scf.mo_coefficients.size() != n ||
      scf.orbital_energies.size() != n) {
    throw std::invalid_argument("MP2: SCF result does not match basis");
  }
}

}  // namespace

EriTensor transform_eri_to_mo(const EriTensor& eri_ao, const Matrix& c) {
  const std::size_t n = c.size();
  if (eri_ao.size() != n * n * n * n) {
    throw std::invalid_argument("MP2: ERI tensor size mismatch");
  }
  auto idx = [n](std::size_t a, std::size_t b, std::size_t d,
                 std::size_t e) {
    return ((a * n + b) * n + d) * n + e;
  };
  // First quarter transformation; the remaining three are shared with
  // the streaming path.
  EriTensor t1(eri_ao.size(), 0.0);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t mu = 0; mu < n; ++mu) {
      const double cmu = c(mu, p);
      if (cmu == 0.0) continue;
      for (std::size_t nu = 0; nu < n; ++nu) {
        for (std::size_t la = 0; la < n; ++la) {
          for (std::size_t si = 0; si < n; ++si) {
            t1[idx(p, nu, la, si)] += cmu * eri_ao[idx(mu, nu, la, si)];
          }
        }
      }
    }
  }
  return transform_last_three(std::move(t1), c);
}

Mp2Result run_mp2(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, const ScfResult& scf) {
  check_scf_reference(basis, scf);
  const std::size_t n = basis.num_basis_functions();
  const std::size_t nocc =
      static_cast<std::size_t>(electron_count(mol) / 2);

  const EriTensor mo = transform_eri_to_mo(eri, scf.mo_coefficients);
  Mp2Result res;
  res.correlation_energy =
      mp2_energy_sum(mo, scf.orbital_energies, nocc, n);
  res.total_energy = scf.total_energy + res.correlation_energy;
  return res;
}

Mp2Result run_mp2_from_store(const Molecule& mol, const BasisSet& basis,
                             const CompressedEriStore& store,
                             const ScfResult& scf) {
  check_scf_reference(basis, scf);
  const std::size_t n = basis.num_basis_functions();
  const std::size_t nocc =
      static_cast<std::size_t>(electron_count(mol) / 2);
  if (store.num_shells() != basis.shells.size()) {
    throw std::invalid_argument("MP2: store does not match basis");
  }
  const Matrix& c = scf.mo_coefficients;

  // Shell -> first basis function, for scattering block values into the
  // dense half-transformed tensor.
  const std::size_t num_shells = basis.shells.size();
  std::vector<std::size_t> off(num_shells + 1, 0);
  std::vector<std::size_t> nf(num_shells, 0);
  for (std::size_t s = 0; s < num_shells; ++s) {
    nf[s] = static_cast<std::size_t>(num_cartesians(basis.shells[s].l));
    off[s + 1] = off[s] + nf[s];
  }
  if (off[num_shells] != n) {
    throw std::invalid_argument("MP2: basis function count mismatch");
  }

  auto idx = [n](std::size_t a, std::size_t b, std::size_t d,
                 std::size_t e) {
    return ((a * n + b) * n + d) * n + e;
  };

  // First quarter transformation, streamed: each AO shell-quartet block
  // is decoded from the store once and scatter-accumulated over all MOs
  // p -- the dense AO tensor never exists.  Same O(n^5) work as the
  // dense first quarter, O(n^4 + block) memory.
  EriTensor t1(n * n * n * n, 0.0);
  for (std::size_t sp = 0; sp < num_shells; ++sp) {
    for (std::size_t sq = 0; sq < num_shells; ++sq) {
      for (std::size_t su = 0; su < num_shells; ++su) {
        for (std::size_t sv = 0; sv < num_shells; ++sv) {
          const auto block = store.shell_block(sp, sq, su, sv);
          const auto& v = *block;
          std::size_t e = 0;  // dense index within the block
          for (std::size_t a = 0; a < nf[sp]; ++a) {
            const std::size_t mu = off[sp] + a;
            for (std::size_t b = 0; b < nf[sq]; ++b) {
              const std::size_t nu = off[sq] + b;
              for (std::size_t d = 0; d < nf[su]; ++d) {
                const std::size_t la = off[su] + d;
                for (std::size_t f = 0; f < nf[sv]; ++f, ++e) {
                  const std::size_t si = off[sv] + f;
                  const double val = v[e];
                  if (val == 0.0) continue;
                  for (std::size_t p = 0; p < n; ++p) {
                    t1[idx(p, nu, la, si)] += c(mu, p) * val;
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  const EriTensor mo = transform_last_three(std::move(t1), c);
  Mp2Result res;
  res.correlation_energy =
      mp2_energy_sum(mo, scf.orbital_energies, nocc, n);
  res.total_energy = scf.total_energy + res.correlation_energy;
  return res;
}

}  // namespace pastri::qc
