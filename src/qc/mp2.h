// mp2.h - Second-order Moller-Plesset perturbation theory on top of a
// converged RHF reference.
//
// The paper's introduction motivates ERI compression precisely for this
// workflow: "post-Hartree-Fock methods need to assemble molecular
// integrals from ERIs.  Compressing and storing the latter can lead to
// considerable speedup".  MP2 re-reads the full ERI tensor once to build
// MO-basis integrals, so a compressed ERI store is consumed verbatim.
#pragma once

#include "qc/compressed_eri_store.h"
#include "qc/scf.h"

namespace pastri::qc {

struct Mp2Result {
  double correlation_energy = 0.0;  ///< E_MP2 (negative)
  double total_energy = 0.0;        ///< E_RHF + E_MP2
};

/// Closed-shell MP2:
///   E = sum_{ij in occ} sum_{ab in virt}
///       (ia|jb) [ 2 (ia|jb) - (ib|ja) ] / (e_i + e_j - e_a - e_b)
/// using the (n^5) quarter-transformation of the AO ERI tensor.
/// `scf` must be a converged result for the same basis/ERIs.
Mp2Result run_mp2(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, const ScfResult& scf);

/// AO -> MO transformation of the full ERI tensor (exposed for tests):
/// out[(p q| r s)] over MO indices, same n^4 layout as the input.
EriTensor transform_eri_to_mo(const EriTensor& eri_ao, const Matrix& c);

/// MP2 entirely off the compressed stream: the first quarter
/// transformation consumes AO shell-quartet blocks straight from the
/// store (each within the error bound), scatter-accumulating into the
/// half-transformed tensor, so the dense AO ERI tensor is never
/// materialized.  Quarters two to four and the energy sum are the same
/// code `run_mp2` runs; with an exact store the two agree to within the
/// compression error bound's propagation through the transform.
/// Together with run_rhf_from_store this closes the paper's workflow:
/// generate -> compress -> (SCF + MP2) with every ERI read decoded on
/// demand.
Mp2Result run_mp2_from_store(const Molecule& mol, const BasisSet& basis,
                             const CompressedEriStore& store,
                             const ScfResult& scf);

}  // namespace pastri::qc
