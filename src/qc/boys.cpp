#include "qc/boys.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pastri::qc {
namespace {

/// F_m(T) by the convergent series
///   F_m(T) = exp(-T) * sum_{k>=0} (2T)^k / [(2m+1)(2m+3)...(2m+2k+1)]
/// valid for all T but efficient only for moderate T.
double boys_series(double T, int m) {
  const double expT = std::exp(-T);
  double denom = 2.0 * m + 1.0;
  double term = 1.0 / denom;
  double sum = term;
  const double twoT = 2.0 * T;
  // Terms shrink once 2T < denom; with T <= 42 this converges in < 130
  // iterations to below double epsilon relative accuracy.
  for (int k = 1; k < 400; ++k) {
    denom += 2.0;
    term *= twoT / denom;
    sum += term;
    if (term < sum * 1e-17) break;
  }
  return expT * sum;
}

}  // namespace

void boys(double T, int m, std::span<double> out) {
  assert(m >= 0 && m <= kMaxBoysOrder);
  assert(out.size() >= static_cast<std::size_t>(m) + 1);
  assert(T >= 0.0);

  if (T < 1e-14) {
    // F_m(0) = 1 / (2m + 1)
    for (int i = 0; i <= m; ++i) out[i] = 1.0 / (2.0 * i + 1.0);
    return;
  }

  if (T > 42.0) {
    // Large-T regime: F_0(T) = (1/2) sqrt(pi/T) erf(sqrt(T)); for T > 42
    // erf(sqrt(T)) == 1 to double precision.  Upward recursion
    //   F_{m+1} = ((2m+1) F_m - exp(-T)) / (2T)
    // is numerically stable when T is large relative to m.
    const double expT = std::exp(-T);
    out[0] = 0.5 * std::sqrt(std::numbers::pi / T);
    const double inv2T = 0.5 / T;
    for (int i = 0; i < m; ++i) {
      out[i + 1] = ((2.0 * i + 1.0) * out[i] - expT) * inv2T;
    }
    return;
  }

  // Moderate T: series at the top order, then stable downward recursion
  //   F_{m-1}(T) = (2T F_m(T) + exp(-T)) / (2m - 1).
  const double expT = std::exp(-T);
  out[m] = boys_series(T, m);
  for (int i = m; i > 0; --i) {
    out[i - 1] = (2.0 * T * out[i] + expT) / (2.0 * i - 1.0);
  }
}

double boys(double T, int m) {
  double buf[kMaxBoysOrder + 1];
  boys(T, m, std::span<double>(buf, m + 1));
  return buf[m];
}

}  // namespace pastri::qc
