#include "qc/boys.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <vector>

namespace pastri::qc {
namespace {

/// F_m(T) by the convergent series
///   F_m(T) = exp(-T) * sum_{k>=0} (2T)^k / [(2m+1)(2m+3)...(2m+2k+1)]
/// valid for all T but efficient only for moderate T.
double boys_series(double T, int m) {
  const double expT = std::exp(-T);
  double denom = 2.0 * m + 1.0;
  double term = 1.0 / denom;
  double sum = term;
  const double twoT = 2.0 * T;
  // Terms shrink once 2T < denom; with T <= 42 this converges in < 130
  // iterations to below double epsilon relative accuracy.
  for (int k = 1; k < 400; ++k) {
    denom += 2.0;
    term *= twoT / denom;
    sum += term;
    if (term < sum * 1e-17) break;
  }
  return expT * sum;
}

/// T < 1e-14: F_m(0) = 1 / (2m + 1).
void boys_tiny(int m, std::span<double> out) {
  for (int i = 0; i <= m; ++i) out[i] = 1.0 / (2.0 * i + 1.0);
}

/// Large-T regime: F_0(T) = (1/2) sqrt(pi/T) erf(sqrt(T)); for T > 42
/// erf(sqrt(T)) == 1 to double precision.  Upward recursion
///   F_{m+1} = ((2m+1) F_m - exp(-T)) / (2T)
/// is numerically stable when T is large relative to m.
void boys_large(double T, int m, std::span<double> out) {
  const double expT = std::exp(-T);
  out[0] = 0.5 * std::sqrt(std::numbers::pi / T);
  const double inv2T = 0.5 / T;
  for (int i = 0; i < m; ++i) {
    out[i + 1] = ((2.0 * i + 1.0) * out[i] - expT) * inv2T;
  }
}

// ---- tabulated moderate-T path ------------------------------------------
//
// Grid of exact Boys values every 1/16 over [0, 42], per order up to
// kMaxBoysOrder + 8.  F_m(T) at the top requested order comes from the
// 8-term Taylor expansion around the nearest grid point T*:
//
//   F_m(T) = sum_{k=0..7} F_{m+k}(T*) (T* - T)^k / k!
//
// (dF_m/dT = -F_{m+1}, so all derivatives are table entries.)  With
// |T* - T| <= 1/32 the truncation error is bounded by
// (1/32)^8 / 8! ~= 2e-17, below double epsilon; lower orders follow by
// the same downward recursion the exact path uses, which is a
// contraction and cannot amplify that error.

constexpr double kTableStep = 1.0 / 16.0;
constexpr double kTableInvStep = 16.0;
constexpr int kTablePoints = 16 * 42 + 1;  // T = 0, 1/16, ..., 42
constexpr int kTaylorTerms = 8;
constexpr int kTableOrders = kMaxBoysOrder + kTaylorTerms;  // top order stored

struct BoysTable {
  std::vector<double> values;  // values[idx * (kTableOrders+1) + n] = F_n

  BoysTable()
      : values(static_cast<std::size_t>(kTablePoints) * (kTableOrders + 1)) {
    for (int idx = 0; idx < kTablePoints; ++idx) {
      const double T = idx * kTableStep;
      double* F = &values[static_cast<std::size_t>(idx) * (kTableOrders + 1)];
      if (T < 1e-14) {
        for (int n = 0; n <= kTableOrders; ++n) F[n] = 1.0 / (2.0 * n + 1.0);
        continue;
      }
      // Same scheme as the exact path: series at the very top order, then
      // downward recursion -- the grid holds reference-quality values.
      const double expT = std::exp(-T);
      F[kTableOrders] = boys_series(T, kTableOrders);
      for (int n = kTableOrders; n > 0; --n) {
        F[n - 1] = (2.0 * T * F[n] + expT) / (2.0 * n - 1.0);
      }
    }
  }
};

const BoysTable& boys_table_instance() {
  static const BoysTable table;  // built once, thread-safe magic static
  return table;
}

}  // namespace

void boys(double T, int m, std::span<double> out) {
  assert(m >= 0 && m <= kMaxBoysOrder);
  assert(out.size() >= static_cast<std::size_t>(m) + 1);
  assert(T >= 0.0);

  if (T < 1e-14) {
    boys_tiny(m, out);
    return;
  }
  if (T > 42.0) {
    boys_large(T, m, out);
    return;
  }

  // Moderate T: series at the top order, then stable downward recursion
  //   F_{m-1}(T) = (2T F_m(T) + exp(-T)) / (2m - 1).
  const double expT = std::exp(-T);
  out[m] = boys_series(T, m);
  for (int i = m; i > 0; --i) {
    out[i - 1] = (2.0 * T * out[i] + expT) / (2.0 * i - 1.0);
  }
}

void boys_table(double T, int m, std::span<double> out) {
  assert(m >= 0 && m <= kMaxBoysOrder);
  assert(out.size() >= static_cast<std::size_t>(m) + 1);
  assert(T >= 0.0);

  if (T < 1e-14) {
    boys_tiny(m, out);
    return;
  }
  if (T > 42.0) {
    boys_large(T, m, out);
    return;
  }

  const BoysTable& tab = boys_table_instance();
  const int idx = static_cast<int>(T * kTableInvStep + 0.5);
  const double d = idx * kTableStep - T;  // |d| <= 1/32
  const double* F =
      &tab.values[static_cast<std::size_t>(idx) * (kTableOrders + 1) + m];
  // Horner over sum_k F_{m+k} d^k / k!.
  double top = F[kTaylorTerms - 1];
  for (int k = kTaylorTerms - 1; k > 0; --k) {
    top = F[k - 1] + top * (d / k);
  }
  out[m] = top;

  const double expT = std::exp(-T);
  for (int i = m; i > 0; --i) {
    out[i - 1] = (2.0 * T * out[i] + expT) / (2.0 * i - 1.0);
  }
}

double boys(double T, int m) {
  double buf[kMaxBoysOrder + 1];
  boys(T, m, std::span<double>(buf, m + 1));
  return buf[m];
}

double boys_table(double T, int m) {
  double buf[kMaxBoysOrder + 1];
  boys_table(T, m, std::span<double>(buf, m + 1));
  return buf[m];
}

}  // namespace pastri::qc
