// scf.h - Restricted Hartree-Fock, the quantum chemistry method whose
// ERI traffic PaSTRI compresses (Section I: "restricted Hartree-Fock,
// unrestricted Hartree-Fock, and density functional theory").
//
// The solver takes the ERI tensor through a provider interface, so a
// calculation can run from exact integrals, from a PaSTRI-decompressed
// copy (the paper's "compress once, decompress every iteration"
// infrastructure of Fig. 11), or from any other source.
#pragma once

#include <functional>
#include <vector>

#include "qc/basis.h"
#include "qc/linalg.h"
#include "qc/molecule.h"

namespace pastri::qc {

/// Dense ERI tensor (mu nu | la si), row-major over four indices of
/// dimension n = number of basis functions.  Fine for the small systems
/// the SCF substrate targets.
using EriTensor = std::vector<double>;

/// Compute the full ERI tensor for a basis (8-fold symmetry not
/// exploited; n is tiny here).
EriTensor compute_eri_tensor(const BasisSet& basis);

struct ScfOptions {
  int max_iterations = 200;
  double energy_tolerance = 1e-10;   ///< Hartree
  double density_tolerance = 1e-8;   ///< max |dD|
  double density_mixing = 0.4;       ///< fraction of old D retained
                                     ///< (only when DIIS is off)
  bool use_diis = true;              ///< Pulay DIIS Fock extrapolation
  std::size_t diis_max_vectors = 6;  ///< DIIS history depth
};

struct ScfResult {
  bool converged = false;
  int iterations = 0;
  double electronic_energy = 0.0;   ///< Hartree
  double nuclear_repulsion = 0.0;   ///< Hartree
  double total_energy = 0.0;        ///< electronic + nuclear
  std::vector<double> orbital_energies;
  Matrix density;                   ///< converged density matrix
  Matrix mo_coefficients;           ///< AO->MO coefficients (columns)
};

/// Run restricted Hartree-Fock for a closed-shell molecule.
/// Throws std::invalid_argument for an odd electron count.
ScfResult run_rhf(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, const ScfOptions& opt = {});

struct UhfResult {
  bool converged = false;
  int iterations = 0;
  double electronic_energy = 0.0;
  double nuclear_repulsion = 0.0;
  double total_energy = 0.0;
  std::vector<double> alpha_orbital_energies;
  std::vector<double> beta_orbital_energies;
  Matrix alpha_density;
  Matrix beta_density;
  /// <S^2> expectation diagnostic, 0 for a pure singlet.
  double s_squared = 0.0;
};

/// Unrestricted Hartree-Fock with explicit alpha/beta occupations
/// (open shells, the paper's "unrestricted Hartree-Fock" use case).
/// For n_alpha == n_beta on a closed-shell system the energy coincides
/// with RHF.
UhfResult run_uhf(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, std::size_t n_alpha,
                  std::size_t n_beta, const ScfOptions& opt = {});

}  // namespace pastri::qc
