#include "qc/scf.h"

#include <cmath>
#include <stdexcept>

#include <deque>

#include "qc/md_eri.h"
#include "qc/one_electron.h"
#include "qc/sto3g.h"

namespace pastri::qc {
namespace {

/// Pulay DIIS state: history of Fock matrices and their orbital-gradient
/// error vectors e = X^T (F D S - S D F) X.  `extrapolate` solves the
/// constrained least-squares system and returns the mixed Fock matrix.
class Diis {
 public:
  explicit Diis(std::size_t max_vectors) : max_(max_vectors) {}

  void push(const Matrix& fock, const Matrix& error) {
    focks_.push_back(fock);
    errors_.push_back(error);
    if (focks_.size() > max_) {
      focks_.pop_front();
      errors_.pop_front();
    }
  }

  bool ready() const { return focks_.size() >= 2; }

  Matrix extrapolate() const {
    const std::size_t m = focks_.size();
    const std::size_t dim = errors_.front().size();
    // B_ij = <e_i, e_j>; bordered with the -1 Lagrange row/column.
    Matrix b(m + 1);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        double dot = 0.0;
        for (std::size_t r = 0; r < dim; ++r) {
          for (std::size_t c = 0; c < dim; ++c) {
            dot += errors_[i](r, c) * errors_[j](r, c);
          }
        }
        b(i, j) = dot;
      }
      b(i, m) = b(m, i) = -1.0;
    }
    b(m, m) = 0.0;
    std::vector<double> rhs(m + 1, 0.0);
    rhs[m] = -1.0;
    const std::vector<double> coef = solve_linear(b, rhs);
    Matrix f(dim);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t r = 0; r < dim; ++r) {
        for (std::size_t c = 0; c < dim; ++c) {
          f(r, c) += coef[i] * focks_[i](r, c);
        }
      }
    }
    return f;
  }

 private:
  std::size_t max_;
  std::deque<Matrix> focks_;
  std::deque<Matrix> errors_;
};

}  // namespace

EriTensor compute_eri_tensor(const BasisSet& basis) {
  const auto index = basis_index(basis);
  const std::size_t n = index.size();
  EriTensor eri(n * n * n * n, 0.0);

  std::vector<std::size_t> offset(basis.shells.size() + 1, 0);
  for (std::size_t s = 0; s < basis.shells.size(); ++s) {
    offset[s + 1] = offset[s] + basis.shells[s].num_components();
  }

  std::vector<double> block;
  for (std::size_t sa = 0; sa < basis.shells.size(); ++sa) {
    for (std::size_t sb = 0; sb < basis.shells.size(); ++sb) {
      for (std::size_t sc = 0; sc < basis.shells.size(); ++sc) {
        for (std::size_t sd = 0; sd < basis.shells.size(); ++sd) {
          const Shell& A = basis.shells[sa];
          const Shell& B = basis.shells[sb];
          const Shell& C = basis.shells[sc];
          const Shell& D = basis.shells[sd];
          const std::size_t na = A.num_components();
          const std::size_t nb = B.num_components();
          const std::size_t nc = C.num_components();
          const std::size_t nd = D.num_components();
          block.resize(na * nb * nc * nd);
          compute_eri_block(A, B, C, D, block);
          std::size_t idx = 0;
          for (std::size_t i = 0; i < na; ++i) {
            for (std::size_t j = 0; j < nb; ++j) {
              for (std::size_t k = 0; k < nc; ++k) {
                for (std::size_t l = 0; l < nd; ++l, ++idx) {
                  const std::size_t mu = offset[sa] + i;
                  const std::size_t nu = offset[sb] + j;
                  const std::size_t la = offset[sc] + k;
                  const std::size_t si = offset[sd] + l;
                  eri[((mu * n + nu) * n + la) * n + si] = block[idx];
                }
              }
            }
          }
        }
      }
    }
  }
  return eri;
}

ScfResult run_rhf(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, const ScfOptions& opt) {
  const std::size_t n = basis.num_basis_functions();
  if (eri.size() != n * n * n * n) {
    throw std::invalid_argument("RHF: ERI tensor size mismatch");
  }
  const int nelec = electron_count(mol);
  if (nelec % 2 != 0) {
    throw std::invalid_argument("RHF requires a closed shell (even "
                                "electron count)");
  }
  const std::size_t nocc = static_cast<std::size_t>(nelec / 2);
  if (nocc > n) {
    throw std::invalid_argument("RHF: more occupied orbitals than basis "
                                "functions");
  }

  const Matrix S = overlap_matrix(basis);
  const Matrix H = core_hamiltonian(basis, mol);
  const Matrix X = symmetric_orthogonalizer(S);

  ScfResult res;
  res.nuclear_repulsion = nuclear_repulsion(mol);

  auto eri_at = [&](std::size_t mu, std::size_t nu, std::size_t la,
                    std::size_t si) {
    return eri[((mu * n + nu) * n + la) * n + si];
  };

  // Density from the core-Hamiltonian guess.
  Matrix D(n);
  const auto build_density = [&](const Matrix& F) {
    const Matrix Fp = X.transpose() * F * X;
    const EigenResult eig = jacobi_eigensolver(Fp);
    const Matrix C = X * eig.eigenvectors;
    res.mo_coefficients = C;
    Matrix Dn(n);
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        double sum = 0.0;
        for (std::size_t i = 0; i < nocc; ++i) {
          sum += C(mu, i) * C(nu, i);
        }
        Dn(mu, nu) = 2.0 * sum;
      }
    }
    res.orbital_energies = eig.eigenvalues;
    return Dn;
  };
  D = build_density(H);

  Diis diis(opt.diis_max_vectors);
  double e_prev = 0.0;
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    // Fock build: F = H + G(D).
    Matrix F = H;
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        double g = 0.0;
        for (std::size_t la = 0; la < n; ++la) {
          for (std::size_t si = 0; si < n; ++si) {
            g += D(la, si) * (eri_at(mu, nu, si, la) -
                              0.5 * eri_at(mu, la, si, nu));
          }
        }
        F(mu, nu) += g;
      }
    }

    if (opt.use_diis) {
      // DIIS error vector in the orthonormal basis.
      const Matrix fds = F * D * S;
      const Matrix err = X.transpose() * (fds - fds.transpose()) * X;
      diis.push(F, err);
      if (diis.ready()) {
        try {
          F = diis.extrapolate();
        } catch (const std::runtime_error&) {
          // Singular DIIS system (converged history): keep plain F.
        }
      }
    }

    // Electronic energy: E = 1/2 sum D (H + F).
    double e_elec = 0.0;
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        e_elec += 0.5 * D(nu, mu) * (H(mu, nu) + F(mu, nu));
      }
    }

    Matrix D_new = build_density(F);
    const double dD = D_new.max_abs_diff(D);
    const double dE = std::abs(e_elec - e_prev);
    e_prev = e_elec;

    // Damped density update for robustness on stretched geometries
    // (redundant under DIIS, which handles the mixing itself).
    if (!opt.use_diis && iter > 1 && opt.density_mixing > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          D_new(i, j) = opt.density_mixing * D(i, j) +
                        (1.0 - opt.density_mixing) * D_new(i, j);
        }
      }
    }
    D = D_new;

    res.iterations = iter;
    res.electronic_energy = e_elec;
    res.total_energy = e_elec + res.nuclear_repulsion;
    if (iter > 1 && dE < opt.energy_tolerance &&
        dD < opt.density_tolerance) {
      res.converged = true;
      break;
    }
  }
  res.density = D;
  return res;
}

UhfResult run_uhf(const Molecule& mol, const BasisSet& basis,
                  const EriTensor& eri, std::size_t n_alpha,
                  std::size_t n_beta, const ScfOptions& opt) {
  const std::size_t n = basis.num_basis_functions();
  if (eri.size() != n * n * n * n) {
    throw std::invalid_argument("UHF: ERI tensor size mismatch");
  }
  if (n_alpha > n || n_beta > n) {
    throw std::invalid_argument("UHF: occupation exceeds basis size");
  }
  if (n_alpha + n_beta !=
      static_cast<std::size_t>(electron_count(mol))) {
    throw std::invalid_argument("UHF: occupations do not sum to the "
                                "electron count");
  }

  const Matrix S = overlap_matrix(basis);
  const Matrix H = core_hamiltonian(basis, mol);
  const Matrix X = symmetric_orthogonalizer(S);

  UhfResult res;
  res.nuclear_repulsion = nuclear_repulsion(mol);

  auto eri_at = [&](std::size_t mu, std::size_t nu, std::size_t la,
                    std::size_t si) {
    return eri[((mu * n + nu) * n + la) * n + si];
  };

  Matrix Ca, Cb;  // MO coefficients per spin
  auto build_spin_density = [&](const Matrix& F, std::size_t nocc,
                                std::vector<double>& eps, Matrix& C) {
    const Matrix Fp = X.transpose() * F * X;
    const EigenResult eig = jacobi_eigensolver(Fp);
    C = X * eig.eigenvectors;
    eps = eig.eigenvalues;
    Matrix Dn(n);
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        double sum = 0.0;
        for (std::size_t i = 0; i < nocc; ++i) {
          sum += C(mu, i) * C(nu, i);
        }
        Dn(mu, nu) = sum;
      }
    }
    return Dn;
  };

  // Core guess for both spins; break alpha/beta symmetry slightly when
  // the occupations already differ (they do for open shells).
  Matrix Da = build_spin_density(H, n_alpha, res.alpha_orbital_energies,
                                 Ca);
  Matrix Db = build_spin_density(H, n_beta, res.beta_orbital_energies,
                                 Cb);

  Diis diis_a(opt.diis_max_vectors), diis_b(opt.diis_max_vectors);
  double e_prev = 0.0;
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    const Matrix Dt = Da + Db;
    Matrix Fa = H, Fb = H;
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        double j = 0.0, ka = 0.0, kb = 0.0;
        for (std::size_t la = 0; la < n; ++la) {
          for (std::size_t si = 0; si < n; ++si) {
            j += Dt(la, si) * eri_at(mu, nu, si, la);
            ka += Da(la, si) * eri_at(mu, la, si, nu);
            kb += Db(la, si) * eri_at(mu, la, si, nu);
          }
        }
        Fa(mu, nu) += j - ka;
        Fb(mu, nu) += j - kb;
      }
    }

    if (opt.use_diis) {
      const Matrix fas = Fa * Da * S;
      diis_a.push(Fa, X.transpose() * (fas - fas.transpose()) * X);
      const Matrix fbs = Fb * Db * S;
      diis_b.push(Fb, X.transpose() * (fbs - fbs.transpose()) * X);
      if (diis_a.ready() && diis_b.ready()) {
        try {
          Fa = diis_a.extrapolate();
          Fb = diis_b.extrapolate();
        } catch (const std::runtime_error&) {
          // converged history -> keep plain Fock matrices
        }
      }
    }

    // E = 1/2 sum [ Dt H + Da Fa + Db Fb ]
    double e_elec = 0.0;
    for (std::size_t mu = 0; mu < n; ++mu) {
      for (std::size_t nu = 0; nu < n; ++nu) {
        e_elec += 0.5 * (Dt(nu, mu) * H(mu, nu) +
                         Da(nu, mu) * Fa(mu, nu) +
                         Db(nu, mu) * Fb(mu, nu));
      }
    }

    Matrix Da_new = build_spin_density(Fa, n_alpha,
                                       res.alpha_orbital_energies, Ca);
    Matrix Db_new = build_spin_density(Fb, n_beta,
                                       res.beta_orbital_energies, Cb);
    const double dD = std::max(Da_new.max_abs_diff(Da),
                               Db_new.max_abs_diff(Db));
    const double dE = std::abs(e_elec - e_prev);
    e_prev = e_elec;
    Da = Da_new;
    Db = Db_new;

    res.iterations = iter;
    res.electronic_energy = e_elec;
    res.total_energy = e_elec + res.nuclear_repulsion;
    if (iter > 1 && dE < opt.energy_tolerance &&
        dD < opt.density_tolerance) {
      res.converged = true;
      break;
    }
  }

  // <S^2> = Sz(Sz+1) + Nb - sum_ij |<a_i|S|b_j>|^2 over occupied pairs.
  const double sz = 0.5 * (static_cast<double>(n_alpha) -
                           static_cast<double>(n_beta));
  double overlap_sq = 0.0;
  for (std::size_t i = 0; i < n_alpha; ++i) {
    for (std::size_t j = 0; j < n_beta; ++j) {
      double sij = 0.0;
      for (std::size_t mu = 0; mu < n; ++mu) {
        for (std::size_t nu = 0; nu < n; ++nu) {
          sij += Ca(mu, i) * S(mu, nu) * Cb(nu, j);
        }
      }
      overlap_sq += sij * sij;
    }
  }
  res.s_squared = sz * (sz + 1.0) +
                  static_cast<double>(n_beta) - overlap_sq;
  res.alpha_density = Da;
  res.beta_density = Db;
  return res;
}

}  // namespace pastri::qc
