#include "qc/one_electron.h"

#include <cmath>
#include <numbers>

#include "qc/md_eri.h"

namespace pastri::qc {
namespace {

/// Generic assembler: for each shell pair and primitive pair, hand the
/// Hermite tables to a kernel that fills the (component x component)
/// sub-matrix contribution.
template <typename Kernel>
Matrix assemble_one_electron(const BasisSet& basis, int extra_j,
                             Kernel&& kernel) {
  const auto index = basis_index(basis);
  const std::size_t n = index.size();
  Matrix out(n);

  // Offsets of each shell's first basis function.
  std::vector<std::size_t> offset(basis.shells.size() + 1, 0);
  for (std::size_t s = 0; s < basis.shells.size(); ++s) {
    offset[s + 1] = offset[s] + basis.shells[s].num_components();
  }

  for (std::size_t sa = 0; sa < basis.shells.size(); ++sa) {
    for (std::size_t sb = 0; sb < basis.shells.size(); ++sb) {
      const Shell& A = basis.shells[sa];
      const Shell& B = basis.shells[sb];
      for (const auto& pa : A.primitives) {
        for (const auto& pb : B.primitives) {
          const double a = pa.exponent, b = pb.exponent;
          const double p = a + b;
          Vec3 P;
          for (int d = 0; d < 3; ++d) {
            P[d] = (a * A.center[d] + b * B.center[d]) / p;
          }
          const HermiteE Ex(A.l, B.l + extra_j, a, b, A.center[0],
                            B.center[0]);
          const HermiteE Ey(A.l, B.l + extra_j, a, b, A.center[1],
                            B.center[1]);
          const HermiteE Ez(A.l, B.l + extra_j, a, b, A.center[2],
                            B.center[2]);
          const double cc = pa.coefficient * pb.coefficient;
          kernel(A, B, offset[sa], offset[sb], a, b, p, P, Ex, Ey, Ez, cc,
                 out);
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<BasisIndexEntry> basis_index(const BasisSet& basis) {
  std::vector<BasisIndexEntry> idx;
  for (std::size_t s = 0; s < basis.shells.size(); ++s) {
    for (int c = 0; c < basis.shells[s].num_components(); ++c) {
      idx.push_back({s, c});
    }
  }
  return idx;
}

Matrix overlap_matrix(const BasisSet& basis) {
  return assemble_one_electron(
      basis, 0,
      [](const Shell& A, const Shell& B, std::size_t oa, std::size_t ob,
         double, double, double p, const Vec3&, const HermiteE& Ex,
         const HermiteE& Ey, const HermiteE& Ez, double cc, Matrix& out) {
        const auto ca = cartesian_components(A.l);
        const auto cb = cartesian_components(B.l);
        const double pref = cc * std::pow(std::numbers::pi / p, 1.5);
        for (std::size_t i = 0; i < ca.size(); ++i) {
          for (std::size_t j = 0; j < cb.size(); ++j) {
            const double norm = component_norm_ratio(A.l, ca[i]) *
                                component_norm_ratio(B.l, cb[j]);
            out(oa + i, ob + j) += pref * norm *
                                   Ex(ca[i].lx, cb[j].lx, 0) *
                                   Ey(ca[i].ly, cb[j].ly, 0) *
                                   Ez(ca[i].lz, cb[j].lz, 0);
          }
        }
      });
}

Matrix kinetic_matrix(const BasisSet& basis) {
  return assemble_one_electron(
      basis, 2,
      [](const Shell& A, const Shell& B, std::size_t oa, std::size_t ob,
         double, double b, double p, const Vec3&, const HermiteE& Ex,
         const HermiteE& Ey, const HermiteE& Ez, double cc, Matrix& out) {
        const auto ca = cartesian_components(A.l);
        const auto cb = cartesian_components(B.l);
        const double pref = cc * std::pow(std::numbers::pi / p, 1.5);
        // 1-D kinetic in terms of 1-D overlaps:
        //   T_ij = -2 b^2 s_{i,j+2} + b (2j+1) s_{ij} - j(j-1)/2 s_{i,j-2}
        const auto t1d = [&](const HermiteE& E, int i, int j) {
          double t = -2.0 * b * b * E(i, j + 2, 0) +
                     b * (2.0 * j + 1.0) * E(i, j, 0);
          if (j >= 2) t -= 0.5 * j * (j - 1) * E(i, j - 2, 0);
          return t;
        };
        for (std::size_t i = 0; i < ca.size(); ++i) {
          for (std::size_t j = 0; j < cb.size(); ++j) {
            const double norm = component_norm_ratio(A.l, ca[i]) *
                                component_norm_ratio(B.l, cb[j]);
            const double sx = Ex(ca[i].lx, cb[j].lx, 0);
            const double sy = Ey(ca[i].ly, cb[j].ly, 0);
            const double sz = Ez(ca[i].lz, cb[j].lz, 0);
            const double tx = t1d(Ex, ca[i].lx, cb[j].lx);
            const double ty = t1d(Ey, ca[i].ly, cb[j].ly);
            const double tz = t1d(Ez, ca[i].lz, cb[j].lz);
            out(oa + i, ob + j) +=
                pref * norm * (tx * sy * sz + sx * ty * sz + sx * sy * tz);
          }
        }
      });
}

Matrix nuclear_attraction_matrix(const BasisSet& basis,
                                 const Molecule& mol) {
  return assemble_one_electron(
      basis, 0,
      [&mol](const Shell& A, const Shell& B, std::size_t oa,
             std::size_t ob, double, double, double p, const Vec3& P,
             const HermiteE& Ex, const HermiteE& Ey, const HermiteE& Ez,
             double cc, Matrix& out) {
        const auto ca = cartesian_components(A.l);
        const auto cb = cartesian_components(B.l);
        const int L = A.l + B.l;
        HermiteR R(L);
        const double pref = cc * 2.0 * std::numbers::pi / p;
        for (const Atom& atom : mol.atoms) {
          const Vec3 PC{P[0] - atom.position[0], P[1] - atom.position[1],
                        P[2] - atom.position[2]};
          R.compute(p, PC, L);
          for (std::size_t i = 0; i < ca.size(); ++i) {
            for (std::size_t j = 0; j < cb.size(); ++j) {
              const double norm = component_norm_ratio(A.l, ca[i]) *
                                  component_norm_ratio(B.l, cb[j]);
              double sum = 0.0;
              for (int t = 0; t <= ca[i].lx + cb[j].lx; ++t) {
                const double ext = Ex(ca[i].lx, cb[j].lx, t);
                if (ext == 0.0) continue;
                for (int u = 0; u <= ca[i].ly + cb[j].ly; ++u) {
                  const double eyu = Ey(ca[i].ly, cb[j].ly, u);
                  if (eyu == 0.0) continue;
                  for (int v = 0; v <= ca[i].lz + cb[j].lz; ++v) {
                    const double ezv = Ez(ca[i].lz, cb[j].lz, v);
                    if (ezv == 0.0) continue;
                    sum += ext * eyu * ezv * R(t, u, v);
                  }
                }
              }
              out(oa + i, ob + j) -= atom.Z * pref * norm * sum;
            }
          }
        }
      });
}

Matrix core_hamiltonian(const BasisSet& basis, const Molecule& mol) {
  return kinetic_matrix(basis) + nuclear_attraction_matrix(basis, mol);
}

double nuclear_repulsion(const Molecule& mol) {
  double e = 0.0;
  for (std::size_t i = 0; i < mol.atoms.size(); ++i) {
    for (std::size_t j = i + 1; j < mol.atoms.size(); ++j) {
      const double r = std::sqrt(
          dist2(mol.atoms[i].position, mol.atoms[j].position));
      e += mol.atoms[i].Z * mol.atoms[j].Z / r;
    }
  }
  return e;
}

}  // namespace pastri::qc
