// direct_scf.h - Integral-direct Fock construction.
//
// The "Original" arm of the paper's Fig. 11: instead of storing ERIs
// (raw or compressed), recompute every shell-quartet block on the fly
// each time the Fock matrix is built, skipping quartets that fail the
// Cauchy-Schwarz screen -- the standard direct-SCF mode of GAMESS.
// Comparing this against `CompressedEriStore` + `run_rhf` is the
// recompute-vs-decompress trade the paper quantifies.
//
// The builder also runs in decompress-direct mode: backed by a
// CompressedEriStore it fetches surviving quartets from the seekable
// compressed streams (LRU-cached single-block decodes) instead of
// recomputing them -- the paper's "decompress whenever it is needed
// again" arm, without ever materializing the dense tensor.
#pragma once

#include "qc/scf.h"

namespace pastri::qc {

class CompressedEriStore;

/// Precomputed screening data for a basis (Schwarz bounds per shell
/// pair), reused across Fock builds.
class DirectFockBuilder {
 public:
  explicit DirectFockBuilder(const BasisSet& basis,
                             double screen_threshold = 1e-12);

  /// Decompress-direct mode: surviving quartets are read from `store`
  /// (which must outlive the builder and match `basis`) instead of
  /// being recomputed.
  DirectFockBuilder(const BasisSet& basis, const CompressedEriStore& store,
                    double screen_threshold = 1e-12);

  /// G(D): the two-electron part of the Fock matrix for density D,
  /// built by recomputing (or decompressing) every surviving quartet.
  Matrix build_g(const Matrix& density) const;

  /// Number of shell quartets skipped by screening in the last build.
  std::size_t last_screened() const { return last_screened_; }
  std::size_t total_quartets() const;

 private:
  const BasisSet& basis_;
  const CompressedEriStore* store_ = nullptr;
  double threshold_;
  std::vector<std::size_t> offset_;
  std::vector<double> schwarz_;  ///< per shell pair
  mutable std::size_t last_screened_ = 0;
};

/// Restricted Hartree-Fock with direct (recomputed) integrals.
/// Produces the same fixed point as run_rhf on the dense tensor.
ScfResult run_rhf_direct(const Molecule& mol, const BasisSet& basis,
                         const ScfOptions& opt = {},
                         double screen_threshold = 1e-12);

/// Restricted Hartree-Fock consuming compressed integrals
/// quartet-by-quartet from `store` (same SCF logic as run_rhf_direct;
/// the energy agrees to within what the store's error bound allows).
ScfResult run_rhf_from_store(const Molecule& mol, const BasisSet& basis,
                             const CompressedEriStore& store,
                             const ScfOptions& opt = {},
                             double screen_threshold = 1e-12);

}  // namespace pastri::qc
