// direct_scf.h - Integral-direct Fock construction.
//
// The "Original" arm of the paper's Fig. 11: instead of storing ERIs
// (raw or compressed), recompute every shell-quartet block on the fly
// each time the Fock matrix is built, skipping quartets that fail the
// Cauchy-Schwarz screen -- the standard direct-SCF mode of GAMESS.
// Comparing this against `CompressedEriStore` + `run_rhf` is the
// recompute-vs-decompress trade the paper quantifies.
#pragma once

#include "qc/scf.h"

namespace pastri::qc {

/// Precomputed screening data for a basis (Schwarz bounds per shell
/// pair), reused across Fock builds.
class DirectFockBuilder {
 public:
  explicit DirectFockBuilder(const BasisSet& basis,
                             double screen_threshold = 1e-12);

  /// G(D): the two-electron part of the Fock matrix for density D,
  /// built by recomputing every surviving shell quartet.
  Matrix build_g(const Matrix& density) const;

  /// Number of shell quartets skipped by screening in the last build.
  std::size_t last_screened() const { return last_screened_; }
  std::size_t total_quartets() const;

 private:
  const BasisSet& basis_;
  double threshold_;
  std::vector<std::size_t> offset_;
  std::vector<double> schwarz_;  ///< per shell pair
  mutable std::size_t last_screened_ = 0;
};

/// Restricted Hartree-Fock with direct (recomputed) integrals.
/// Produces the same fixed point as run_rhf on the dense tensor.
ScfResult run_rhf_direct(const Molecule& mol, const BasisSet& basis,
                         const ScfOptions& opt = {},
                         double screen_threshold = 1e-12);

}  // namespace pastri::qc
