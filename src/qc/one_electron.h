// one_electron.h - One-electron integrals over contracted Cartesian
// Gaussian shells: overlap, kinetic energy, and nuclear attraction.
//
// Together with the ERI engine these are everything a Hartree-Fock
// calculation needs -- the workflow (GAMESS RHF) whose ERI traffic the
// paper compresses.  All three use the same McMurchie-Davidson Hermite
// machinery as md_eri.cpp:
//
//   S_ab = E^x_0 E^y_0 E^z_0 (pi/p)^{3/2}
//   T_ab = via the 1-D relation T_ij = -2b^2 S_{i,j+2} + b(2j+1) S_{ij}
//            - j(j-1)/2 S_{i,j-2}
//   V_ab = -sum_C Z_C (2 pi / p) sum_tuv E_tuv R_tuv(p, P - C)
#pragma once

#include "qc/basis.h"
#include "qc/linalg.h"
#include "qc/molecule.h"

namespace pastri::qc {

/// Map from flat basis-function index to (shell, component).
struct BasisIndexEntry {
  std::size_t shell;
  int component;
};
std::vector<BasisIndexEntry> basis_index(const BasisSet& basis);

/// Overlap matrix S (n x n, n = number of basis functions).
Matrix overlap_matrix(const BasisSet& basis);

/// Kinetic-energy matrix T.
Matrix kinetic_matrix(const BasisSet& basis);

/// Nuclear-attraction matrix V (sum over all nuclei of the molecule).
Matrix nuclear_attraction_matrix(const BasisSet& basis,
                                 const Molecule& mol);

/// Core Hamiltonian H = T + V.
Matrix core_hamiltonian(const BasisSet& basis, const Molecule& mol);

/// Classical nuclear-nuclear repulsion energy.
double nuclear_repulsion(const Molecule& mol);

}  // namespace pastri::qc
