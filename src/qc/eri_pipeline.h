// eri_pipeline.h - Fused compute->compress->io pipeline over the ERI
// generator: the software analogue of the FPGA PaSTRI successor's
// single-pass compute-and-compress datapath (arXiv:2303.13632).
//
// Three stages, connected by bounded queues (core/pipeline.h) so they
// overlap while peak memory stays O(batch x depth):
//
//   compute   a producer thread fills double-buffered chunks of whole
//             quartet blocks via EriBlockGenerator::compute_range
//             (OpenMP-parallel inside the chunk)
//   encode    the caller's thread drains chunks in dataset order into a
//             StreamWriter / ShardedDatasetWriter (OpenMP batch encode,
//             in-order serialization)
//   io        an AsyncSink drain thread applies the container bytes to
//             the file (ShardIo::async)
//
// Because StreamWriter's bytes are independent of how put_values slices
// the stream, and chunks arrive in dataset order, the pipelined
// container is byte-identical to the sequential
// generate_eri_blocks -> StreamWriter path -- the golden-digest tests
// pin this.  Every knob here changes only wall time, never bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pastri.h"
#include "core/stream.h"
#include "io/compressed_file.h"
#include "qc/eri_engine.h"

namespace pastri::qc {

struct EriPipelineOptions {
  /// Blocks per chunk (0 = auto: the StreamWriter encode batch size, so
  /// one chunk fills one encode batch exactly).
  std::size_t batch_blocks = 0;

  /// Filled-chunk queue capacity; 2 = classic double buffering (compute
  /// fills one chunk while encode drains the other).  Peak buffered
  /// memory is (queue_depth + 2) chunks.
  std::size_t queue_depth = 2;

  /// Run compute on a separate producer thread (true) or inline on the
  /// caller's thread (false).  false is the sequential baseline the
  /// benchmarks compare against; the bytes are identical either way.
  bool pipelined = true;

  /// Number of compute producer threads when pipelined.  The chunk
  /// stream is claimed dynamically (each producer grabs the next unowned
  /// chunk index); a consumer-side reorder ring re-establishes dataset
  /// order, so the encoded bytes are identical for every producer count.
  /// Each producer runs its own OpenMP team inside compute_range, so on
  /// many-core hosts 1 is usually right; >1 pays off when per-chunk
  /// OpenMP scaling has flattened, and for `dump_eri_sharded` it
  /// approximates one producer per shard's block range in flight.
  std::size_t producers = 1;

  /// Drain container bytes through an AsyncSink worker thread.
  bool async_io = true;
};

/// Per-producer stage accounting (one entry per producer thread when
/// pipelined; empty for the sequential path).
struct EriProducerStats {
  std::uint64_t compute_ns = 0;  ///< busy in compute_range
  std::uint64_t stall_ns = 0;    ///< blocked on free buffers / filled queue
  std::size_t chunks = 0;        ///< chunks this producer computed
};

/// Stage telemetry for one pipeline run.  Busy times are per stage;
/// stalls are time a stage spent blocked on its neighbour's queue.  The
/// same numbers feed the pastri_qc_pipeline_* obs metrics.
struct EriPipelineResult {
  EriStreamMeta meta;
  Stats stats;                    ///< codec stats of the written stream
  std::size_t bytes_written = 0;  ///< compressed container bytes
  std::size_t chunks = 0;

  std::uint64_t wall_ns = 0;
  std::uint64_t compute_ns = 0;  ///< producer busy in compute_range
  std::uint64_t encode_ns = 0;   ///< consumer busy in put_values/finish
  std::uint64_t io_ns = 0;       ///< AsyncSink busy applying bytes

  std::uint64_t compute_stall_ns = 0;  ///< compute blocked (encode behind)
  std::uint64_t encode_stall_ns = 0;   ///< encode blocked (compute behind)
  std::uint64_t io_stall_ns = 0;       ///< encode blocked on io backpressure

  /// (sum of stage busy - wall) / (sum - max): 0 = fully sequential,
  /// 1 = wall time equals the slowest stage (perfect overlap).  Zero
  /// when a single stage dominates outright (nothing to overlap).
  double overlap_efficiency = 0.0;

  /// Per-producer breakdown of compute_ns / compute_stall_ns (their
  /// sums).  Empty when the run was sequential (pipelined = false).
  std::vector<EriProducerStats> producers;
};

/// Generate `mol`'s sampled ERI dataset under `opt` and compress it into
/// `sink` as one PaSTRI container, stages overlapped per `popt`.
EriPipelineResult compress_eri_stream(const Molecule& mol,
                                      const DatasetOptions& opt,
                                      const Params& params, ByteSink& sink,
                                      const EriPipelineOptions& popt = {});

struct EriDumpOptions {
  int num_shards = 1;

  /// Reuse shards a previous interrupted dump finished: a shard file
  /// that parses as a complete container with its layout's block count
  /// is kept verbatim; the first incomplete shard and everything after
  /// it is regenerated (the plan is deterministic, so regenerated bytes
  /// equal what the interrupted run would have written).
  bool resume = false;
};

/// dump_eri_sharded telemetry: the pipeline result of the generated part
/// plus what resume skipped.
struct EriDumpResult {
  EriPipelineResult pipeline;
  std::size_t shards_total = 0;
  std::size_t shards_reused = 0;   ///< complete shards kept by resume
  std::size_t blocks_reused = 0;   ///< blocks inside those shards
  std::size_t bytes_total = 0;     ///< all shard bytes, reused included
};

/// Generate and compress the dataset into `num_shards` shard containers
/// plus manifest under `<dir>/<basename>.*` -- the same files, layout,
/// and bytes `write_compressed_dataset(generate_eri_dataset(...))`
/// produces, without ever materializing the dense tensor.  The result
/// loads with read_compressed_dataset / CompressedEriStore and drives
/// direct SCF and MP2 straight off the stream.
EriDumpResult dump_eri_sharded(const Molecule& mol, const DatasetOptions& opt,
                               const Params& params, const std::string& dir,
                               const std::string& basename,
                               const EriDumpOptions& dopt = {},
                               const EriPipelineOptions& popt = {});

}  // namespace pastri::qc
