#include "qc/md_eri.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "qc/boys.h"

namespace pastri::qc {

// ---------------------------------------------------------------------------
// HermiteE
// ---------------------------------------------------------------------------

HermiteE::HermiteE(int imax, int jmax, double a, double b, double Ax,
                   double Bx)
    : jmax_(jmax), tmax_(imax + jmax),
      table_(static_cast<std::size_t>(imax + 1) * (jmax + 1) * (tmax_ + 1),
             0.0) {
  const double p = a + b;
  const double mu = a * b / p;
  const double X = Ax - Bx;
  const double XPA = -b / p * X;  // P - A where P = (aA + bB)/p
  const double XPB = a / p * X;   // P - B
  const double inv2p = 0.5 / p;

  auto E = [&](int i, int j, int t) -> double& {
    return table_[index_(i, j, t)];
  };

  E(0, 0, 0) = std::exp(-mu * X * X);

  // Build up in i with j = 0:
  //   E_t^{i+1,0} = (1/2p) E_{t-1}^{i,0} + XPA E_t^{i,0} + (t+1) E_{t+1}^{i,0}
  for (int i = 0; i < imax; ++i) {
    for (int t = 0; t <= i + 1; ++t) {
      double v = XPA * E(i, 0, t);
      if (t > 0) v += inv2p * E(i, 0, t - 1);
      if (t + 1 <= i) v += (t + 1) * E(i, 0, t + 1);
      E(i + 1, 0, t) = v;
    }
  }
  // Build up in j for every i:
  //   E_t^{i,j+1} = (1/2p) E_{t-1}^{i,j} + XPB E_t^{i,j} + (t+1) E_{t+1}^{i,j}
  for (int i = 0; i <= imax; ++i) {
    for (int j = 0; j < jmax; ++j) {
      for (int t = 0; t <= i + j + 1; ++t) {
        double v = XPB * E(i, j, t);
        if (t > 0) v += inv2p * E(i, j, t - 1);
        if (t + 1 <= i + j) v += (t + 1) * E(i, j, t + 1);
        E(i, j + 1, t) = v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HermiteR
// ---------------------------------------------------------------------------

HermiteR::HermiteR(int lmax_total)
    : lmax_(lmax_total), stride_(static_cast<std::size_t>(lmax_total) + 1) {
  assert(lmax_total >= 0 && lmax_total <= kMaxBoysOrder);
  r0_.assign(stride_ * stride_ * stride_, 0.0);
  work_.assign((lmax_ + 1) * stride_ * stride_ * stride_, 0.0);
}

void HermiteR::compute(double alpha, const Vec3& PQ, int L) {
  assert(L <= lmax_);
  const double T =
      alpha * (PQ[0] * PQ[0] + PQ[1] * PQ[1] + PQ[2] * PQ[2]);

  double F[kMaxBoysOrder + 1];
  boys(T, L, std::span<double>(F, L + 1));

  const std::size_t nstride = stride_ * stride_ * stride_;
  auto R = [&](int n, int t, int u, int v) -> double& {
    return work_[n * nstride + index_(t, u, v)];
  };

  // Base case: R^n_{000} = (-2 alpha)^n F_n(T).
  double m2a = 1.0;
  for (int n = 0; n <= L; ++n) {
    R(n, 0, 0, 0) = m2a * F[n];
    m2a *= -2.0 * alpha;
  }

  // Raise (t,u,v) one index at a time; each raise consumes one auxiliary
  // order n, so fill n from high to low per (t+u+v) layer:
  //   R^n_{t+1,u,v} = t R^{n+1}_{t-1,u,v} + X R^{n+1}_{t,u,v}
  for (int sum = 1; sum <= L; ++sum) {
    for (int t = 0; t <= sum; ++t) {
      for (int u = 0; t + u <= sum; ++u) {
        const int v = sum - t - u;
        for (int n = 0; n <= L - sum; ++n) {
          double val;
          if (t > 0) {
            val = PQ[0] * R(n + 1, t - 1, u, v);
            if (t > 1) val += (t - 1) * R(n + 1, t - 2, u, v);
          } else if (u > 0) {
            val = PQ[1] * R(n + 1, t, u - 1, v);
            if (u > 1) val += (u - 1) * R(n + 1, t, u - 2, v);
          } else {
            val = PQ[2] * R(n + 1, t, u, v - 1);
            if (v > 1) val += (v - 1) * R(n + 1, t, u, v - 2);
          }
          R(n, t, u, v) = val;
        }
      }
    }
  }

  // Export the n = 0 slice.
  for (int t = 0; t <= L; ++t) {
    for (int u = 0; t + u <= L; ++u) {
      for (int v = 0; t + u + v <= L; ++v) {
        r0_[index_(t, u, v)] = R(0, t, u, v);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Block assembly
// ---------------------------------------------------------------------------

namespace {

/// Per component-pair Hermite term list: flattened (t,u,v,coef) entries of
/// the product E^x_t E^y_u E^z_v over one primitive pair.
struct TermList {
  struct Term {
    int t, u, v;
    double coef;
  };
  std::vector<Term> terms;
};

/// All term lists for one primitive pair of two shells, indexed by
/// (component_a * nB + component_b).
struct PrimPair {
  double p = 0;             // a + b
  Vec3 P{0, 0, 0};          // product center
  double cc = 0;            // product of contraction coefficients
  std::vector<TermList> lists;
};

std::vector<PrimPair> build_prim_pairs(const Shell& A, const Shell& B) {
  const auto compsA = cartesian_components(A.l);
  const auto compsB = cartesian_components(B.l);
  std::vector<PrimPair> pairs;
  pairs.reserve(A.primitives.size() * B.primitives.size());

  for (const auto& pa : A.primitives) {
    for (const auto& pb : B.primitives) {
      PrimPair pp;
      const double a = pa.exponent, b = pb.exponent;
      pp.p = a + b;
      for (int d = 0; d < 3; ++d) {
        pp.P[d] = (a * A.center[d] + b * B.center[d]) / pp.p;
      }
      pp.cc = pa.coefficient * pb.coefficient;

      const HermiteE Ex(A.l, B.l, a, b, A.center[0], B.center[0]);
      const HermiteE Ey(A.l, B.l, a, b, A.center[1], B.center[1]);
      const HermiteE Ez(A.l, B.l, a, b, A.center[2], B.center[2]);

      pp.lists.resize(compsA.size() * compsB.size());
      for (std::size_t ia = 0; ia < compsA.size(); ++ia) {
        for (std::size_t ib = 0; ib < compsB.size(); ++ib) {
          TermList& tl = pp.lists[ia * compsB.size() + ib];
          const auto& ca = compsA[ia];
          const auto& cb = compsB[ib];
          const double norm = component_norm_ratio(A.l, ca) *
                              component_norm_ratio(B.l, cb);
          for (int t = 0; t <= ca.lx + cb.lx; ++t) {
            const double ext = Ex(ca.lx, cb.lx, t);
            if (ext == 0.0) continue;
            for (int u = 0; u <= ca.ly + cb.ly; ++u) {
              const double eyu = Ey(ca.ly, cb.ly, u);
              if (eyu == 0.0) continue;
              for (int v = 0; v <= ca.lz + cb.lz; ++v) {
                const double ezv = Ez(ca.lz, cb.lz, v);
                if (ezv == 0.0) continue;
                tl.terms.push_back({t, u, v, norm * ext * eyu * ezv});
              }
            }
          }
        }
      }
      pairs.push_back(std::move(pp));
    }
  }
  return pairs;
}

}  // namespace

void compute_eri_block(const Shell& A, const Shell& B, const Shell& C,
                       const Shell& D, std::span<double> out) {
  const std::size_t nA = cartesian_components(A.l).size();
  const std::size_t nB = cartesian_components(B.l).size();
  const std::size_t nC = cartesian_components(C.l).size();
  const std::size_t nD = cartesian_components(D.l).size();
  assert(out.size() == nA * nB * nC * nD);

  std::fill(out.begin(), out.end(), 0.0);

  const auto bra = build_prim_pairs(A, B);
  const auto ket = build_prim_pairs(C, D);
  const int L = A.l + B.l + C.l + D.l;
  HermiteR R(L);

  const double pi52 = std::pow(std::numbers::pi, 2.5);

  for (const auto& pab : bra) {
    for (const auto& pcd : ket) {
      const double p = pab.p, q = pcd.p;
      const double alpha = p * q / (p + q);
      const Vec3 PQ{pab.P[0] - pcd.P[0], pab.P[1] - pcd.P[1],
                    pab.P[2] - pcd.P[2]};
      R.compute(alpha, PQ, L);
      const double pref =
          2.0 * pi52 / (p * q * std::sqrt(p + q)) * pab.cc * pcd.cc;

      std::size_t idx = 0;
      for (std::size_t iab = 0; iab < nA * nB; ++iab) {
        const auto& tb = pab.lists[iab].terms;
        for (std::size_t icd = 0; icd < nC * nD; ++icd, ++idx) {
          const auto& tk = pcd.lists[icd].terms;
          double sum = 0.0;
          for (const auto& b : tb) {
            double inner = 0.0;
            for (const auto& k : tk) {
              const double r = R(b.t + k.t, b.u + k.u, b.v + k.v);
              // (-1)^{T+U+V} sign of the ket Hermite index
              inner += ((k.t + k.u + k.v) & 1) ? -k.coef * r : k.coef * r;
            }
            sum += b.coef * inner;
          }
          out[idx] += pref * sum;
        }
      }
    }
  }
}

double schwarz_bound(const Shell& A, const Shell& B) {
  // Only the diagonal (ab|ab) of the pair super-matrix is needed; assemble
  // just those nA*nB elements instead of the full (nA*nB)^2 block --
  // screening cost would otherwise dominate high-L dataset generation.
  const std::size_t nA = cartesian_components(A.l).size();
  const std::size_t nB = cartesian_components(B.l).size();
  const auto pairs = build_prim_pairs(A, B);
  const int L = 2 * (A.l + B.l);
  HermiteR R(L);
  const double pi52 = std::pow(std::numbers::pi, 2.5);

  std::vector<double> diag(nA * nB, 0.0);
  for (const auto& pab : pairs) {
    for (const auto& pcd : pairs) {
      const double p = pab.p, q = pcd.p;
      const double alpha = p * q / (p + q);
      const Vec3 PQ{pab.P[0] - pcd.P[0], pab.P[1] - pcd.P[1],
                    pab.P[2] - pcd.P[2]};
      R.compute(alpha, PQ, L);
      const double pref =
          2.0 * pi52 / (p * q * std::sqrt(p + q)) * pab.cc * pcd.cc;
      for (std::size_t i = 0; i < diag.size(); ++i) {
        const auto& tb = pab.lists[i].terms;
        const auto& tk = pcd.lists[i].terms;
        double sum = 0.0;
        for (const auto& b : tb) {
          double inner = 0.0;
          for (const auto& k : tk) {
            const double r = R(b.t + k.t, b.u + k.u, b.v + k.v);
            inner += ((k.t + k.u + k.v) & 1) ? -k.coef * r : k.coef * r;
          }
          sum += b.coef * inner;
        }
        diag[i] += pref * sum;
      }
    }
  }
  double mx = 0.0;
  for (double v : diag) mx = std::max(mx, std::abs(v));
  return std::sqrt(mx);
}

}  // namespace pastri::qc
