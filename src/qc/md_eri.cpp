#include "qc/md_eri.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace pastri::qc {

// ---------------------------------------------------------------------------
// HermiteE
// ---------------------------------------------------------------------------

HermiteE::HermiteE(int imax, int jmax, double a, double b, double Ax,
                   double Bx)
    : jmax_(jmax), tmax_(imax + jmax),
      table_(static_cast<std::size_t>(imax + 1) * (jmax + 1) * (tmax_ + 1),
             0.0) {
  const double p = a + b;
  const double mu = a * b / p;
  const double X = Ax - Bx;
  const double XPA = -b / p * X;  // P - A where P = (aA + bB)/p
  const double XPB = a / p * X;   // P - B
  const double inv2p = 0.5 / p;

  auto E = [&](int i, int j, int t) -> double& {
    return table_[index_(i, j, t)];
  };

  E(0, 0, 0) = std::exp(-mu * X * X);

  // Build up in i with j = 0:
  //   E_t^{i+1,0} = (1/2p) E_{t-1}^{i,0} + XPA E_t^{i,0} + (t+1) E_{t+1}^{i,0}
  for (int i = 0; i < imax; ++i) {
    for (int t = 0; t <= i + 1; ++t) {
      double v = XPA * E(i, 0, t);
      if (t > 0) v += inv2p * E(i, 0, t - 1);
      if (t + 1 <= i) v += (t + 1) * E(i, 0, t + 1);
      E(i + 1, 0, t) = v;
    }
  }
  // Build up in j for every i:
  //   E_t^{i,j+1} = (1/2p) E_{t-1}^{i,j} + XPB E_t^{i,j} + (t+1) E_{t+1}^{i,j}
  for (int i = 0; i <= imax; ++i) {
    for (int j = 0; j < jmax; ++j) {
      for (int t = 0; t <= i + j + 1; ++t) {
        double v = XPB * E(i, j, t);
        if (t > 0) v += inv2p * E(i, j, t - 1);
        if (t + 1 <= i + j) v += (t + 1) * E(i, j, t + 1);
        E(i, j + 1, t) = v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HermiteR
// ---------------------------------------------------------------------------

void HermiteR::ensure(int lmax_total) {
  assert(lmax_total >= 0 && lmax_total <= kMaxBoysOrder);
  if (lmax_ == lmax_total) return;
  lmax_ = lmax_total;
  stride_ = static_cast<std::size_t>(lmax_total) + 1;
  // compute() overwrites every cell it later reads or exports (the base
  // case and raising recurrence write each (n,t,u,v) before use), so
  // resizing never needs to re-zero on reuse -- results are identical to
  // a freshly zeroed workspace.
  r0_.assign(stride_ * stride_ * stride_, 0.0);
  work_.assign((static_cast<std::size_t>(lmax_) + 1) * stride_ * stride_ *
                   stride_,
               0.0);
}

void HermiteR::compute(double alpha, const Vec3& PQ, int L, BoysMode mode) {
  assert(L <= lmax_);
  const double T =
      alpha * (PQ[0] * PQ[0] + PQ[1] * PQ[1] + PQ[2] * PQ[2]);

  double F[kMaxBoysOrder + 1];
  boys(mode, T, L, std::span<double>(F, L + 1));

  const std::size_t nstride = stride_ * stride_ * stride_;
  auto R = [&](int n, int t, int u, int v) -> double& {
    return work_[n * nstride + index_(t, u, v)];
  };

  // Base case: R^n_{000} = (-2 alpha)^n F_n(T).
  double m2a = 1.0;
  for (int n = 0; n <= L; ++n) {
    R(n, 0, 0, 0) = m2a * F[n];
    m2a *= -2.0 * alpha;
  }

  // Raise (t,u,v) one index at a time; each raise consumes one auxiliary
  // order n, so fill n from high to low per (t+u+v) layer:
  //   R^n_{t+1,u,v} = t R^{n+1}_{t-1,u,v} + X R^{n+1}_{t,u,v}
  for (int sum = 1; sum <= L; ++sum) {
    for (int t = 0; t <= sum; ++t) {
      for (int u = 0; t + u <= sum; ++u) {
        const int v = sum - t - u;
        for (int n = 0; n <= L - sum; ++n) {
          double val;
          if (t > 0) {
            val = PQ[0] * R(n + 1, t - 1, u, v);
            if (t > 1) val += (t - 1) * R(n + 1, t - 2, u, v);
          } else if (u > 0) {
            val = PQ[1] * R(n + 1, t, u - 1, v);
            if (u > 1) val += (u - 1) * R(n + 1, t, u - 2, v);
          } else {
            val = PQ[2] * R(n + 1, t, u, v - 1);
            if (v > 1) val += (v - 1) * R(n + 1, t, u, v - 2);
          }
          R(n, t, u, v) = val;
        }
      }
    }
  }

  // Export the n = 0 slice.
  for (int t = 0; t <= L; ++t) {
    for (int u = 0; t + u <= L; ++u) {
      for (int v = 0; t + u + v <= L; ++v) {
        r0_[index_(t, u, v)] = R(0, t, u, v);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ShellPairData
// ---------------------------------------------------------------------------

ShellPairData::ShellPairData(const Shell& A, const Shell& B)
    : la_(A.l), lb_(B.l) {
  const auto compsA = cartesian_components(A.l);
  const auto compsB = cartesian_components(B.l);
  ncomp_ = compsA.size() * compsB.size();
  prims_.reserve(A.primitives.size() * B.primitives.size());
  off_.reserve(A.primitives.size() * B.primitives.size() * ncomp_ + 1);
  off_.push_back(0);

  // Identical construction order and arithmetic to the historical
  // per-quartet build: (pa, pb) in shell order, components ia-major,
  // terms in (t, u, v) order with zero-coefficient skip.
  for (const auto& pa : A.primitives) {
    for (const auto& pb : B.primitives) {
      Prim pp;
      const double a = pa.exponent, b = pb.exponent;
      pp.p = a + b;
      for (int d = 0; d < 3; ++d) {
        pp.P[d] = (a * A.center[d] + b * B.center[d]) / pp.p;
      }
      pp.cc = pa.coefficient * pb.coefficient;
      prims_.push_back(pp);

      const HermiteE Ex(A.l, B.l, a, b, A.center[0], B.center[0]);
      const HermiteE Ey(A.l, B.l, a, b, A.center[1], B.center[1]);
      const HermiteE Ez(A.l, B.l, a, b, A.center[2], B.center[2]);

      for (std::size_t ia = 0; ia < compsA.size(); ++ia) {
        for (std::size_t ib = 0; ib < compsB.size(); ++ib) {
          const auto& ca = compsA[ia];
          const auto& cb = compsB[ib];
          const double norm = component_norm_ratio(A.l, ca) *
                              component_norm_ratio(B.l, cb);
          for (int t = 0; t <= ca.lx + cb.lx; ++t) {
            const double ext = Ex(ca.lx, cb.lx, t);
            if (ext == 0.0) continue;
            for (int u = 0; u <= ca.ly + cb.ly; ++u) {
              const double eyu = Ey(ca.ly, cb.ly, u);
              if (eyu == 0.0) continue;
              for (int v = 0; v <= ca.lz + cb.lz; ++v) {
                const double ezv = Ez(ca.lz, cb.lz, v);
                if (ezv == 0.0) continue;
                const double c = norm * ext * eyu * ezv;
                t_.push_back(static_cast<std::uint8_t>(t));
                u_.push_back(static_cast<std::uint8_t>(u));
                v_.push_back(static_cast<std::uint8_t>(v));
                coef_.push_back(c);
                // Negating c is an exact sign flip, so pre-folding the
                // ket-side (-1)^{t+u+v} preserves bit-identical sums.
                coef_signed_.push_back(((t + u + v) & 1) ? -c : c);
              }
            }
          }
          off_.push_back(static_cast<std::uint32_t>(coef_.size()));
        }
      }
    }
  }
  roff_.resize(coef_.size());
}

void ShellPairData::set_r_stride(int l_total) {
  assert(l_total >= la_ + lb_);
  const int stride = l_total + 1;
  if (stride_ == stride) return;
  stride_ = stride;
  const std::size_t s = static_cast<std::size_t>(stride);
  for (std::size_t i = 0; i < roff_.size(); ++i) {
    roff_[i] =
        static_cast<std::uint32_t>((t_[i] * s + u_[i]) * s + v_[i]);
  }
}

// ---------------------------------------------------------------------------
// Block assembly
// ---------------------------------------------------------------------------

namespace {

// Hoisted (ab|cd) prefactor constant 2 pi^{5/2} appears as
// 2.0 * kPi52 below; std::pow(pi, 2.5) is what the engine has always
// used, kept verbatim so the constant's bits are unchanged.
const double kPi52 = std::pow(std::numbers::pi, 2.5);

}  // namespace

void compute_eri_block(const ShellPairData& bra, const ShellPairData& ket,
                       EriWorkspace& ws, std::span<double> out) {
  const std::size_t nab = bra.ncomp();
  const std::size_t ncd = ket.ncomp();
  assert(out.size() == nab * ncd);
  const int L = bra.l_sum() + ket.l_sum();
  assert(bra.r_stride() == L + 1);
  assert(ket.r_stride() == L + 1);

  std::fill(out.begin(), out.end(), 0.0);
  ws.R.ensure(L);

  const std::uint32_t* broff = bra.r_offsets();
  const double* bcoef = bra.coefs();
  const std::uint32_t* kroff = ket.r_offsets();
  const double* kcoef = ket.coefs_signed();
  const double* R0 = ws.R.data();

  for (std::size_t kb = 0; kb < bra.num_prims(); ++kb) {
    const ShellPairData::Prim& pab = bra.prim(kb);
    for (std::size_t kk = 0; kk < ket.num_prims(); ++kk) {
      const ShellPairData::Prim& pcd = ket.prim(kk);
      const double p = pab.p, q = pcd.p;
      const double alpha = p * q / (p + q);
      const Vec3 PQ{pab.P[0] - pcd.P[0], pab.P[1] - pcd.P[1],
                    pab.P[2] - pcd.P[2]};
      ws.R.compute(alpha, PQ, L, ws.boys_mode);
      ++ws.boys_evals;
      const double pref =
          2.0 * kPi52 / (p * q * std::sqrt(p + q)) * pab.cc * pcd.cc;

      std::size_t idx = 0;
      for (std::size_t iab = 0; iab < nab; ++iab) {
        const std::uint32_t b0 = bra.term_begin(kb, iab);
        const std::uint32_t b1 = bra.term_end(kb, iab);
        for (std::size_t icd = 0; icd < ncd; ++icd, ++idx) {
          const std::uint32_t k0 = ket.term_begin(kk, icd);
          const std::uint32_t k1 = ket.term_end(kk, icd);
          double sum = 0.0;
          for (std::uint32_t b = b0; b < b1; ++b) {
            // R indices add component-wise, so the linearized offsets
            // add too: R(bt+kt, bu+ku, bv+kv) = R0[broff + kroff].
            const double* Rb = R0 + broff[b];
            double inner = 0.0;
            for (std::uint32_t k = k0; k < k1; ++k) {
              inner += kcoef[k] * Rb[kroff[k]];
            }
            sum += bcoef[b] * inner;
          }
          out[idx] += pref * sum;
        }
      }
    }
  }
}

void compute_eri_block(const Shell& A, const Shell& B, const Shell& C,
                       const Shell& D, std::span<double> out) {
  ShellPairData bra(A, B);
  ShellPairData ket(C, D);
  const int L = A.l + B.l + C.l + D.l;
  bra.set_r_stride(L);
  ket.set_r_stride(L);
  EriWorkspace ws;
  compute_eri_block(bra, ket, ws, out);
}

double schwarz_bound(const ShellPairData& pair, EriWorkspace& ws) {
  // Only the diagonal (ab|ab) of the pair super-matrix is needed; assemble
  // just those nA*nB elements instead of the full (nA*nB)^2 block --
  // screening cost would otherwise dominate high-L dataset generation.
  const std::size_t n = pair.ncomp();
  const int L = 2 * pair.l_sum();
  assert(pair.r_stride() == L + 1);
  ws.R.ensure(L);
  ws.diag.assign(n, 0.0);

  const std::uint32_t* roff = pair.r_offsets();
  const double* coef = pair.coefs();
  const double* coef_signed = pair.coefs_signed();
  const double* R0 = ws.R.data();

  for (std::size_t kb = 0; kb < pair.num_prims(); ++kb) {
    const ShellPairData::Prim& pab = pair.prim(kb);
    for (std::size_t kk = 0; kk < pair.num_prims(); ++kk) {
      const ShellPairData::Prim& pcd = pair.prim(kk);
      const double p = pab.p, q = pcd.p;
      const double alpha = p * q / (p + q);
      const Vec3 PQ{pab.P[0] - pcd.P[0], pab.P[1] - pcd.P[1],
                    pab.P[2] - pcd.P[2]};
      ws.R.compute(alpha, PQ, L, ws.boys_mode);
      ++ws.boys_evals;
      const double pref =
          2.0 * kPi52 / (p * q * std::sqrt(p + q)) * pab.cc * pcd.cc;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t b0 = pair.term_begin(kb, i);
        const std::uint32_t b1 = pair.term_end(kb, i);
        const std::uint32_t k0 = pair.term_begin(kk, i);
        const std::uint32_t k1 = pair.term_end(kk, i);
        double sum = 0.0;
        for (std::uint32_t b = b0; b < b1; ++b) {
          const double* Rb = R0 + roff[b];
          double inner = 0.0;
          for (std::uint32_t k = k0; k < k1; ++k) {
            inner += coef_signed[k] * Rb[roff[k]];
          }
          sum += coef[b] * inner;
        }
        ws.diag[i] += pref * sum;
      }
    }
  }
  double mx = 0.0;
  for (double v : ws.diag) mx = std::max(mx, std::abs(v));
  return std::sqrt(mx);
}

double schwarz_bound(const Shell& A, const Shell& B) {
  ShellPairData pair(A, B);
  pair.set_r_stride(2 * pair.l_sum());
  EriWorkspace ws;
  return schwarz_bound(pair, ws);
}

}  // namespace pastri::qc
