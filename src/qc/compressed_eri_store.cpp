#include "qc/compressed_eri_store.h"

#include "core/stream.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "qc/md_eri.h"
#include "qc/one_electron.h"

namespace pastri::qc {
namespace {

/// LRU cache telemetry (obs/metric_names.h), alongside the store's own
/// cache_hits()/cache_misses() accessors so a snapshot sees them too.
struct StoreMetrics {
  obs::Counter cache_hits = obs::registry().counter(obs::kQcEriCacheHits);
  obs::Counter cache_misses =
      obs::registry().counter(obs::kQcEriCacheMisses);
};

const StoreMetrics& store_metrics() {
  static const StoreMetrics m;
  return m;
}

}  // namespace

CompressedEriStore::CompressedEriStore(const BasisSet& basis,
                                       const Params& params) {
  n_ = basis.num_basis_functions();
  shell_offset_.assign(basis.shells.size() + 1, 0);
  shell_l_.resize(basis.shells.size());
  for (std::size_t s = 0; s < basis.shells.size(); ++s) {
    shell_offset_[s + 1] =
        shell_offset_[s] + basis.shells[s].num_components();
    shell_l_[s] = basis.shells[s].l;
  }

  // Pass 1: group quartets by configuration class.  No integrals yet --
  // this only fixes each class's block spec and quartet order.
  const std::size_t ns = basis.shells.size();
  for (std::size_t a = 0; a < ns; ++a) {
    for (std::size_t b = 0; b < ns; ++b) {
      for (std::size_t c = 0; c < ns; ++c) {
        for (std::size_t d = 0; d < ns; ++d) {
          const std::array<int, 4> cls{shell_l_[a], shell_l_[b],
                                       shell_l_[c], shell_l_[d]};
          ClassData& cd = streams_[cls];
          if (cd.quartets.empty()) {
            cd.spec.num_sub_blocks =
                static_cast<std::size_t>(num_cartesians(cls[0])) *
                num_cartesians(cls[1]);
            cd.spec.sub_block_size =
                static_cast<std::size_t>(num_cartesians(cls[2])) *
                num_cartesians(cls[3]);
          }
          cd.quartets.push_back({a, b, c, d});
        }
      }
    }
  }

  // Pass 2: compute -> compress each class on the fly.  Every quartet
  // block goes from the integral engine straight into the class's
  // StreamWriter through one reusable buffer, so the write side never
  // holds a dense per-class tensor (peak memory O(encode batch)).
  std::vector<double> block;
  for (auto& [cls, cd] : streams_) {
    VectorSink sink;
    StreamWriter writer(
        sink, cd.spec, params,
        StreamWriterOptions{.expected_blocks = cd.quartets.size()});
    block.resize(cd.spec.block_size());
    for (const auto& [a, b, c, d] : cd.quartets) {
      compute_eri_block(basis.shells[a], basis.shells[b], basis.shells[c],
                        basis.shells[d], block);
      writer.put_block(block);
    }
    writer.finish();
    uncompressed_bytes_ += writer.stats().input_bytes;
    cd.stream = sink.take();
    cd.reader = std::make_unique<BlockReader>(cd.stream);
    for (std::size_t q = 0; q < cd.quartets.size(); ++q) {
      block_of_[cd.quartets[q]] = {&cd, q};
    }
  }
}

std::shared_ptr<const std::vector<double>> CompressedEriStore::shell_block(
    std::size_t p, std::size_t q, std::size_t u, std::size_t v) const {
  const QuartetKey key{p, q, u, v};
  const auto ref = block_of_.find(key);
  if (ref == block_of_.end()) {
    throw std::out_of_range("shell_block: shell quartet out of range");
  }
  if (auto hit = cache_.lookup(key)) {
    store_metrics().cache_hits.inc();
    return hit;
  }
  store_metrics().cache_misses.inc();
  // Decode outside any lock: concurrent misses on distinct quartets
  // decode in parallel (BlockReader reads are const and thread-safe);
  // concurrent misses on the *same* quartet both decode but converge on
  // one shared vector through the cache's content dedup.
  const auto& [cls, ordinal] = ref->second;
  std::vector<double> decoded = cls->reader->read_block(ordinal);
  return cache_.insert(key, std::move(decoded));
}

EriTensor CompressedEriStore::materialize() const {
  EriTensor eri(n_ * n_ * n_ * n_, 0.0);
  for (const auto& [cls, cd] : streams_) {
    const std::vector<double> values = decompress(cd.stream);
    const std::size_t bs = cd.spec.block_size();
    const std::size_t na = static_cast<std::size_t>(num_cartesians(cls[0]));
    const std::size_t nb = static_cast<std::size_t>(num_cartesians(cls[1]));
    const std::size_t nc = static_cast<std::size_t>(num_cartesians(cls[2]));
    const std::size_t nd = static_cast<std::size_t>(num_cartesians(cls[3]));
    for (std::size_t q = 0; q < cd.quartets.size(); ++q) {
      const auto [sa, sb, sc, sd] = cd.quartets[q];
      const double* blk = values.data() + q * bs;
      std::size_t idx = 0;
      for (std::size_t i = 0; i < na; ++i) {
        for (std::size_t j = 0; j < nb; ++j) {
          for (std::size_t k = 0; k < nc; ++k) {
            for (std::size_t l = 0; l < nd; ++l, ++idx) {
              const std::size_t mu = shell_offset_[sa] + i;
              const std::size_t nu = shell_offset_[sb] + j;
              const std::size_t la = shell_offset_[sc] + k;
              const std::size_t si = shell_offset_[sd] + l;
              eri[((mu * n_ + nu) * n_ + la) * n_ + si] = blk[idx];
            }
          }
        }
      }
    }
  }
  return eri;
}

std::size_t CompressedEriStore::compressed_bytes() const {
  std::size_t total = 0;
  for (const auto& [cls, cd] : streams_) total += cd.stream.size();
  return total;
}

std::size_t CompressedEriStore::uncompressed_bytes() const {
  return uncompressed_bytes_;
}

}  // namespace pastri::qc
