#include "qc/eri_engine.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <stdexcept>
#include <unordered_set>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri::qc {
namespace {

/// Integral-generation telemetry (obs/metric_names.h).  Quartets are
/// counted per batch; the rate gauge holds the latest batch's quartets
/// per second.
struct EngineMetrics {
  obs::Counter quartets = obs::registry().counter(obs::kQcEriQuartets);
  obs::Histogram generate_batch_ns =
      obs::registry().histogram(obs::kQcEriGenerateBatchNs);
  obs::Gauge generate_rate = obs::registry().gauge(obs::kQcEriGenerateRate);
  obs::Counter pair_hits =
      obs::registry().counter(obs::kQcShellPairCacheHits);
  obs::Counter pair_misses =
      obs::registry().counter(obs::kQcShellPairCacheMisses);
  obs::Counter boys_evals = obs::registry().counter(obs::kQcBoysEvals);
};

const EngineMetrics& engine_metrics() {
  static const EngineMetrics m;
  return m;
}

/// One reusable quartet workspace per OS thread.  OpenMP teams spawned
/// by different host threads run on disjoint OS threads, so concurrent
/// compute_range calls (the multi-producer pipeline) never share one.
EriWorkspace& tls_workspace() {
  thread_local EriWorkspace ws;
  return ws;
}

/// Sample `k` distinct values from [0, n) deterministically; returned
/// sorted so the dataset block order is stable across runs.
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k,
                                        std::uint64_t seed) {
  std::vector<std::size_t> out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  // Floyd's algorithm: k iterations, no O(n) storage.
  std::mt19937_64 rng(seed);
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    std::uniform_int_distribution<std::size_t> dist(0, j);
    const std::size_t t = dist(rng);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// One sampled quartet, post-screening.
struct Item {
  std::size_t i, j, k, l;
  bool screened;
};

/// Everything `generate_eri_dataset` decides before computing a single
/// integral: the shells, the surviving sample, and the dataset metadata.
/// Shared by the dense and the streaming generators so both produce the
/// identical dataset.  Slots are stored as momenta (indices into by_l),
/// not pointers, so the plan is safely movable.
struct EriPlan {
  std::array<BasisSet, kMaxAngularMomentum + 1> by_l;
  std::array<int, 4> slot_l{};
  std::vector<Item> items;
  EriStreamMeta meta;
  BoysMode boys_mode = BoysMode::Exact;

  // Shell-pair cache: every (bra i,j) and (ket k,l) pair's Hermite term
  // data, built once at plan time and reused by every quartet and every
  // Schwarz bound.  Pure configurations share one table (the ket simply
  // indexes bra_pairs), mirroring the q_bra/q_ket sharing below.
  std::vector<ShellPairData> bra_pairs;  // i * |s1| + j
  std::vector<ShellPairData> ket_pairs;  // k * |s3| + l; empty when shared
  bool ket_shares_bra = false;

  const std::vector<Shell>& shells(int s) const {
    return by_l[static_cast<std::size_t>(slot_l[s])].shells;
  }

  const ShellPairData& bra_pair(std::size_t i, std::size_t j) const {
    return bra_pairs[i * shells(1).size() + j];
  }
  const ShellPairData& ket_pair(std::size_t k, std::size_t l) const {
    const std::size_t idx = k * shells(3).size() + l;
    return ket_shares_bra ? bra_pairs[idx] : ket_pairs[idx];
  }
};

EriPlan plan_eri(const Molecule& mol, const DatasetOptions& opt) {
  EriPlan plan;
  {
    std::array<bool, kMaxAngularMomentum + 1> built{};
    for (int i = 0; i < 4; ++i) {
      const int l = opt.config[i];
      if (l < 0 || l > kMaxAngularMomentum) {
        throw std::invalid_argument("configuration momentum out of range");
      }
      if (!built[l]) {
        BasisOptions bo;
        bo.l = l;
        bo.contraction = opt.contraction;
        plan.by_l[static_cast<std::size_t>(l)] = make_basis(mol, bo);
        built[l] = true;
      }
      plan.slot_l[i] = l;
    }
  }
  const auto& s0 = plan.shells(0);
  const auto& s1 = plan.shells(1);
  const auto& s2 = plan.shells(2);
  const auto& s3 = plan.shells(3);
  if (s0.empty() || s1.empty() || s2.empty() || s3.empty()) {
    throw std::invalid_argument("molecule yields no shells for this config");
  }

  plan.meta.shape.n = {
      static_cast<std::uint16_t>(num_cartesians(opt.config[0])),
      static_cast<std::uint16_t>(num_cartesians(opt.config[1])),
      static_cast<std::uint16_t>(num_cartesians(opt.config[2])),
      static_cast<std::uint16_t>(num_cartesians(opt.config[3]))};
  plan.meta.label = mol.name + " " + plan.meta.shape.config_name();

  const std::size_t block_size = plan.meta.shape.block_size();
  std::size_t max_blocks = opt.max_blocks;
  if (opt.target_bytes != 0) {
    max_blocks = std::max<std::size_t>(
        1, opt.target_bytes / (block_size * sizeof(double)));
  }

  const std::size_t total =
      s0.size() * s1.size() * s2.size() * s3.size();
  const auto indices = sample_indices(total, std::min(total, max_blocks),
                                      opt.seed);

  // Build the shell-pair cache and the Schwarz bounds off it in one
  // pass: each pair is constructed exactly once (a cache miss), its
  // bound computed from the cached data, and the pair kept for every
  // quartet that will reference it.  Pure configurations share one
  // table between bra and ket.
  plan.boys_mode = opt.boys_mode;
  const EngineMetrics& metrics = engine_metrics();
  plan.bra_pairs.resize(s0.size() * s1.size());
  std::vector<double> q_bra(s0.size() * s1.size());
#pragma omp parallel
  {
    EriWorkspace ws;
    ws.boys_mode = opt.boys_mode;
#pragma omp for schedule(dynamic)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(s0.size());
         ++i) {
      for (std::size_t j = 0; j < s1.size(); ++j) {
        const std::size_t idx = static_cast<std::size_t>(i) * s1.size() + j;
        ShellPairData sp(s0[static_cast<std::size_t>(i)], s1[j]);
        sp.set_r_stride(2 * sp.l_sum());
        q_bra[idx] = schwarz_bound(sp, ws);
        plan.bra_pairs[idx] = std::move(sp);
      }
    }
  }
  metrics.pair_misses.add(plan.bra_pairs.size());
  std::vector<double> q_ket;
  if (&s2 == &s0 && &s3 == &s1) {
    plan.ket_shares_bra = true;
    q_ket = q_bra;
    metrics.pair_hits.add(plan.bra_pairs.size());
  } else {
    plan.ket_pairs.resize(s2.size() * s3.size());
    q_ket.resize(s2.size() * s3.size());
#pragma omp parallel
    {
      EriWorkspace ws;
      ws.boys_mode = opt.boys_mode;
#pragma omp for schedule(dynamic)
      for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(s2.size());
           ++k) {
        for (std::size_t l = 0; l < s3.size(); ++l) {
          const std::size_t idx = static_cast<std::size_t>(k) * s3.size() + l;
          ShellPairData sp(s2[static_cast<std::size_t>(k)], s3[l]);
          sp.set_r_stride(2 * sp.l_sum());
          q_ket[idx] = schwarz_bound(sp, ws);
          plan.ket_pairs[idx] = std::move(sp);
        }
      }
    }
    metrics.pair_misses.add(plan.ket_pairs.size());
  }

  // Decide which sampled quartets survive screening.
  plan.items.reserve(indices.size());
  for (std::size_t flat : indices) {
    Item it;
    it.l = flat % s3.size();
    flat /= s3.size();
    it.k = flat % s2.size();
    flat /= s2.size();
    it.j = flat % s1.size();
    it.i = flat / s1.size();
    it.screened = q_bra[it.i * s1.size() + it.j] *
                      q_ket[it.k * s3.size() + it.l] <
                  opt.screen_threshold;
    if (it.screened && !opt.keep_screened) continue;
    plan.items.push_back(it);
  }
  plan.meta.num_blocks = plan.items.size();

  // Re-linearize the cached term offsets for the quartet total momentum
  // (Schwarz used 2 * pair momentum, which differs for mixed configs).
  // After this the plan is immutable and safe for concurrent readers.
  const int l_total =
      plan.slot_l[0] + plan.slot_l[1] + plan.slot_l[2] + plan.slot_l[3];
  for (ShellPairData& sp : plan.bra_pairs) sp.set_r_stride(l_total);
  for (ShellPairData& sp : plan.ket_pairs) sp.set_r_stride(l_total);
  return plan;
}

}  // namespace

std::array<int, 4> parse_config(const std::string& name) {
  std::string letters;
  for (char c : name) {
    if (c == '(' || c == ')' || c == '|' || c == ' ') continue;
    letters += c;
  }
  if (letters.size() != 4) {
    throw std::invalid_argument("config must name four shells: " + name);
  }
  std::array<int, 4> cfg{};
  for (int i = 0; i < 4; ++i) {
    const int l = shell_momentum(letters[i]);
    if (l < 0) throw std::invalid_argument("bad shell letter in: " + name);
    cfg[i] = l;
  }
  return cfg;
}

EriDataset generate_eri_dataset(const Molecule& mol,
                                const DatasetOptions& opt) {
  // The dense dataset is just compute_range over the whole plan -- one
  // planning pass, then the cached-pair generation path.
  const EriBlockGenerator gen(mol, opt);
  const EriStreamMeta& meta = gen.meta();

  EriDataset ds;
  ds.label = meta.label;
  ds.shape = meta.shape;
  ds.num_blocks = meta.num_blocks;
  ds.values.assign(ds.num_blocks * ds.shape.block_size(), 0.0);
  gen.compute_range(0, ds.num_blocks, ds.values);
  return ds;
}

// ---- EriBlockGenerator --------------------------------------------------

struct EriBlockGenerator::Impl {
  EriPlan plan;
};

EriBlockGenerator::EriBlockGenerator(const Molecule& mol,
                                     const DatasetOptions& opt)
    : impl_(std::make_unique<Impl>(Impl{plan_eri(mol, opt)})) {}

EriBlockGenerator::~EriBlockGenerator() = default;
EriBlockGenerator::EriBlockGenerator(EriBlockGenerator&&) noexcept = default;
EriBlockGenerator& EriBlockGenerator::operator=(
    EriBlockGenerator&&) noexcept = default;

const EriStreamMeta& EriBlockGenerator::meta() const {
  return impl_->plan.meta;
}

void EriBlockGenerator::compute_range(std::size_t first, std::size_t count,
                                      std::span<double> out) const {
  const EriPlan& plan = impl_->plan;
  if (first + count < first || first + count > plan.items.size()) {
    throw std::out_of_range("EriBlockGenerator: block range out of range");
  }
  const std::size_t bs = plan.meta.shape.block_size();
  if (out.size() != count * bs) {
    throw std::invalid_argument(
        "EriBlockGenerator: output span does not match range size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  const EngineMetrics& metrics = engine_metrics();
  const bool timed = metrics.generate_batch_ns.active();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  std::uint64_t boys_total = 0;
  std::uint64_t computed = 0;
#pragma omp parallel reduction(+ : boys_total, computed)
  {
    EriWorkspace& ws = tls_workspace();
    ws.boys_mode = plan.boys_mode;
    const std::uint64_t boys0 = ws.boys_evals;
#pragma omp for schedule(dynamic)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(count); ++b) {
      const Item& it = plan.items[first + static_cast<std::size_t>(b)];
      if (it.screened) continue;  // stays all-zero
      compute_eri_block(plan.bra_pair(it.i, it.j), plan.ket_pair(it.k, it.l),
                        ws,
                        out.subspan(static_cast<std::size_t>(b) * bs, bs));
      ++computed;
    }
    boys_total += ws.boys_evals - boys0;
  }
  metrics.quartets.add(count);
  metrics.boys_evals.add(boys_total);
  metrics.pair_hits.add(2 * computed);  // bra + ket cache use per quartet
  if (timed) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    metrics.generate_batch_ns.record(static_cast<std::uint64_t>(ns));
    if (ns > 0) {
      metrics.generate_rate.set(static_cast<double>(count) * 1e9 /
                                static_cast<double>(ns));
    }
  }
}

EriStreamMeta generate_eri_block_batches(
    const Molecule& mol, const DatasetOptions& opt,
    const std::function<void(const EriStreamMeta& meta,
                             std::size_t first_block,
                             std::span<const double> values)>& emit,
    std::size_t batch_blocks) {
  // Compute a batch of blocks in parallel into one reusable buffer, then
  // hand the batch to the callback in dataset order -- the emitted
  // sequence is exactly generate_eri_dataset's block order, with
  // O(batch) memory.
  const EriBlockGenerator gen(mol, opt);
  const EriStreamMeta& meta = gen.meta();
  const std::size_t bs = meta.shape.block_size();
  const std::size_t batch = batch_blocks != 0 ? batch_blocks : 64;
  std::vector<double> buf(batch * bs);
  for (std::size_t b0 = 0; b0 < meta.num_blocks; b0 += batch) {
    const std::size_t n = std::min(batch, meta.num_blocks - b0);
    const auto chunk = std::span<double>(buf).first(n * bs);
    gen.compute_range(b0, n, chunk);
    emit(meta, b0, chunk);
  }
  return meta;
}

EriStreamMeta generate_eri_blocks(
    const Molecule& mol, const DatasetOptions& opt,
    const std::function<void(const EriStreamMeta& meta, std::size_t block,
                             std::span<const double> values)>& emit,
    std::size_t batch_blocks) {
  return generate_eri_block_batches(
      mol, opt,
      [&](const EriStreamMeta& meta, std::size_t first_block,
          std::span<const double> values) {
        const std::size_t bs = meta.shape.block_size();
        for (std::size_t b = 0; b * bs < values.size(); ++b) {
          emit(meta, first_block + b, values.subspan(b * bs, bs));
        }
      },
      batch_blocks);
}

std::vector<double> compute_block(const Shell& A, const Shell& B,
                                  const Shell& C, const Shell& D) {
  std::vector<double> out(
      static_cast<std::size_t>(num_cartesians(A.l)) * num_cartesians(B.l) *
      num_cartesians(C.l) * num_cartesians(D.l));
  compute_eri_block(A, B, C, D, out);
  return out;
}

double measure_generation_rate(const Molecule& mol, const DatasetOptions& opt,
                               std::size_t blocks) {
  DatasetOptions o = opt;
  o.max_blocks = blocks;
  o.target_bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  const EriDataset ds = generate_eri_dataset(mol, o);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return (static_cast<double>(ds.size_bytes()) / 1e6) / std::max(secs, 1e-9);
}

}  // namespace pastri::qc
