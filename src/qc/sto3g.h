// sto3g.h - The STO-3G minimal basis set (Hehre, Stewart, Pople 1969)
// for H, He, C, N, O.
//
// Used by the SCF substrate and its tests: STO-3G Hartree-Fock energies
// are tabulated to high precision in the literature (e.g. Szabo &
// Ostlund), which anchors the entire integral stack -- Boys function,
// Hermite recurrences, one-electron matrices, ERIs -- to known numbers.
#pragma once

#include "qc/basis.h"
#include "qc/molecule.h"

namespace pastri::qc {

/// Build the STO-3G basis for a molecule (elements H, He, C, N, O).
/// Throws std::invalid_argument for unsupported elements.
BasisSet make_sto3g_basis(const Molecule& mol);

/// Number of electrons of a neutral molecule.
int electron_count(const Molecule& mol);

}  // namespace pastri::qc
