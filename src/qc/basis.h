// basis.h - Synthetic basis-set builder for BF configurations.
//
// The paper's datasets are named by BF configuration -- (dd|dd), (ff|ff),
// and d/f hybrids -- i.e. by which shell types form the ERI blocks.  We
// build a basis by placing one shell of the requested angular momentum on
// every heavy atom, with element-dependent exponents so the shapes vary
// across shells as they do in real basis sets.
#pragma once

#include <vector>

#include "qc/molecule.h"

namespace pastri::qc {

struct BasisOptions {
  int l = 2;                ///< shell angular momentum (2=d, 3=f)
  int contraction = 1;      ///< primitives per shell
  int shells_per_atom = 2;  ///< tight->diffuse exponent spread, as in
                            ///< triple-zeta polarization sets
  bool heavy_atoms_only = false;  ///< real sets put d (and f) on H too
  double exponent_scale = 1.0;    ///< global scale knob for exponents
};

/// A basis: a flat list of shells over a molecule.
struct BasisSet {
  std::vector<Shell> shells;

  std::size_t num_shells() const { return shells.size(); }
  std::size_t num_basis_functions() const {
    std::size_t n = 0;
    for (const auto& s : shells) n += s.num_components();
    return n;
  }
};

/// Place one shell of momentum `opt.l` on each (heavy) atom.
/// Exponents depend on the element (C/N/O differ) and, for contracted
/// shells, form a small even-tempered series; shells are normalized.
BasisSet make_basis(const Molecule& mol, const BasisOptions& opt);

}  // namespace pastri::qc
