// sharded_cache.h - Mutex-striped LRU cache for decoded blocks, shared
// by every layer that serves repeated reads off a compressed container:
// CompressedEriStore (qc), BlockStore (io), and through them the
// pastri_store_* C API and the pastri_serve daemon.
//
// The original CompressedEriStore cache held one global mutex across
// the whole lookup-decode-insert sequence, serializing all readers.
// This cache splits the key space over N independently locked shards
// and takes no lock at all while a block is being decoded: callers
// `lookup()` (shard-locked, O(1)), decode outside any lock on a miss,
// then `insert()` the result.  Two threads that miss the same key
// concurrently both decode, but `insert()` routes every decoded vector
// through a content-hash dedup map, so they end up sharing one
// canonical std::shared_ptr -- never divergent copies -- and hit/miss
// accounting stays exact (each thread that failed the lookup counts
// one miss).
//
// Eviction is per-shard LRU: capacity is distributed over the shards,
// so global recency order is only approximate across shards (the
// standard sharded-cache tradeoff).  With num_shards = 1 the behavior
// is exactly the old single-list LRU.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace pastri {

/// Cache geometry.  `capacity_blocks` is the total number of cached
/// decoded blocks across all shards (0 disables caching; lookups then
/// always miss but insert() still dedups and returns a canonical
/// value).  `num_shards` is the number of independently locked stripes;
/// it is clamped to [1, capacity_blocks] (when capacity is nonzero) so
/// every live shard can hold at least one block.
struct CacheConfig {
  std::size_t capacity_blocks = 64;
  std::size_t num_shards = 8;
};

/// Aggregated cache accounting.  `hits`/`misses` are lifetime lookup
/// counters (they survive reconfiguration); `bytes`/`unique_blocks`
/// count each distinct decoded vector once however many keys share it.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t bytes = 0;
  std::size_t unique_blocks = 0;
};

namespace detail {

/// FNV-1a over the decoded doubles, keyed on exact bit patterns (the
/// decoder is deterministic, so equal blocks decode bit-identically).
inline std::uint64_t value_hash(const std::vector<double>& values) {
  std::uint64_t h = 1469598103934665603ull;
  for (const double v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace detail

template <typename Key, typename Hash = std::hash<Key>>
class ShardedBlockCache {
 public:
  using Value = std::shared_ptr<const std::vector<double>>;

  explicit ShardedBlockCache(const CacheConfig& config = {}) {
    configure(config);
  }

  /// Replace the cache geometry.  Changing the shard count re-stripes
  /// the key space, so cached entries are dropped; shrinking only the
  /// capacity trims per-shard LRU tails.  Hit/miss counters persist.
  /// Safe to call while other threads are reading (they hold the
  /// structure lock shared; this takes it exclusive).
  void configure(const CacheConfig& config) {
    std::size_t shards = config.num_shards == 0 ? 1 : config.num_shards;
    if (config.capacity_blocks > 0) {
      shards = std::min(shards, config.capacity_blocks);
    }
    std::unique_lock<std::shared_mutex> lock(structure_mutex_);
    config_ = CacheConfig{config.capacity_blocks, shards};
    if (shards != shards_.size()) {
      // Re-striping: collect the old counters, then rebuild.
      std::size_t hits = 0, misses = 0;
      for (const auto& s : shards_) {
        std::lock_guard<std::mutex> sl(s->mutex);
        hits += s->hits;
        misses += s->misses;
      }
      std::vector<std::unique_ptr<Shard>> fresh(shards);
      for (auto& s : fresh) s = std::make_unique<Shard>();
      if (!fresh.empty()) {
        fresh[0]->hits = hits;
        fresh[0]->misses = misses;
      }
      shards_.swap(fresh);
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      std::lock_guard<std::mutex> sl(s.mutex);
      s.capacity = shard_capacity_(i);
      trim_(s);
    }
  }

  CacheConfig config() const {
    std::shared_lock<std::shared_mutex> lock(structure_mutex_);
    return config_;
  }

  /// Shard-locked O(1) probe.  A hit refreshes the entry's recency and
  /// returns the shared decoded vector; a miss returns nullptr.  Each
  /// call counts exactly one hit or one miss.
  Value lookup(const Key& key) {
    std::shared_lock<std::shared_mutex> structure(structure_mutex_);
    Shard& s = shard_of_(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (const auto hit = s.entries.find(key); hit != s.entries.end()) {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, hit->second.first);
      return hit->second.second;
    }
    ++s.misses;
    return nullptr;
  }

  /// Publish a block decoded outside the lock.  The vector is deduped
  /// against every live cached value by content hash, so concurrent
  /// inserts of the same decoded bytes (same key or not) converge on
  /// one canonical vector; that canonical value is cached under `key`
  /// (unless capacity is 0) and returned.  Counts neither hit nor miss.
  Value insert(const Key& key, std::vector<double>&& decoded) {
    Value value = dedup_(std::move(decoded));
    std::shared_lock<std::shared_mutex> structure(structure_mutex_);
    Shard& s = shard_of_(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.capacity == 0) return value;
    if (const auto hit = s.entries.find(key); hit != s.entries.end()) {
      // A racing thread beat us to the insert; keep its entry (the
      // values are canonical-equal anyway) and refresh recency.
      s.lru.splice(s.lru.begin(), s.lru, hit->second.first);
      return hit->second.second;
    }
    s.lru.push_front(key);
    s.entries[key] = {s.lru.begin(), value};
    trim_(s);
    return value;
  }

  /// Aggregate counters plus distinct-vector byte accounting (each
  /// shared vector counted once across all shards).
  CacheStats stats() const {
    CacheStats st;
    std::set<const void*> seen;
    std::shared_lock<std::shared_mutex> lock(structure_mutex_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> sl(shard->mutex);
      st.hits += shard->hits;
      st.misses += shard->misses;
      for (const auto& [key, entry] : shard->entries) {
        if (seen.insert(entry.second.get()).second) {
          st.bytes += entry.second->size() * sizeof(double);
        }
      }
    }
    st.unique_blocks = seen.size();
    return st;
  }

  /// Drop every cached entry (counters persist).
  void clear() {
    std::shared_lock<std::shared_mutex> lock(structure_mutex_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> sl(shard->mutex);
      shard->lru.clear();
      shard->entries.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<Key> lru;  ///< most recent at front
    std::map<Key, std::pair<typename std::list<Key>::iterator, Value>>
        entries;
    std::size_t capacity = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
  };

  /// Shard i's slice of the total capacity (remainder to the first
  /// shards, so every unit of capacity is assigned).
  std::size_t shard_capacity_(std::size_t i) const {
    const std::size_t n = shards_.size();
    return config_.capacity_blocks / n +
           (i < config_.capacity_blocks % n ? 1 : 0);
  }

  /// Requires structure_mutex_ held (shared or exclusive): shards_ is
  /// only reallocated under the exclusive lock in configure().
  Shard& shard_of_(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  void trim_(Shard& s) {
    while (s.entries.size() > s.capacity) {
      s.entries.erase(s.lru.back());
      s.lru.pop_back();
    }
  }

  /// Content-hash dedup of decoded vectors (weak_ptr so dedup never
  /// extends a lifetime).  Guarded by its own mutex -- touched once per
  /// decode, never on the hit path.
  Value dedup_(std::vector<double>&& decoded) {
    const std::uint64_t h = detail::value_hash(decoded);
    std::lock_guard<std::mutex> lock(dedup_mutex_);
    if (const auto shared = by_value_.find(h); shared != by_value_.end()) {
      if (auto alive = shared->second.lock();
          alive && *alive == decoded) {  // guard against hash collisions
        return alive;
      }
    }
    auto value =
        std::make_shared<const std::vector<double>>(std::move(decoded));
    by_value_[h] = value;
    return value;
  }

  /// Guards the shard *array* (and config_), not the entries: readers
  /// hold it shared while touching their shard, configure() holds it
  /// exclusive while re-striping.  Per-shard mutexes guard the entries.
  mutable std::shared_mutex structure_mutex_;
  CacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex dedup_mutex_;
  std::unordered_map<std::uint64_t,
                     std::weak_ptr<const std::vector<double>>>
      by_value_;
};

}  // namespace pastri
