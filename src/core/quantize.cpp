#include "core/quantize.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "core/simd/simd.h"

namespace pastri {
namespace {

/// Two's-complement width for a magnitude: smallest b with |v| <= 2^(b-1)-1
/// ... except we allow the asymmetric minimum -2^(b-1).
unsigned signed_bits_for(std::uint64_t magnitude) {
  unsigned b = 1;
  while (magnitude > (std::uint64_t{1} << (b - 1)) - 1 && b < 63) ++b;
  return b;
}

}  // namespace

QuantSpec make_quant_spec(double pattern_extremum, double error_bound) {
  QuantSpec q;
  q.pattern_binsize = 2.0 * error_bound;
  q.ec_binsize = 2.0 * error_bound;
  // Eq. (8): P_b = ceil(log2(PQ_range)) with PQ_range = 2*|P_ext| / binsize;
  // equivalently the two's-complement width of round(|P_ext| / (2 EB)).
  const double pq_ext_d = std::abs(pattern_extremum) / q.pattern_binsize;
  const std::uint64_t pq_ext =
      pq_ext_d >= 9.2e18 ? (std::uint64_t{1} << 62)
                         : static_cast<std::uint64_t>(std::llround(pq_ext_d));
  q.pattern_bits = std::clamp(signed_bits_for(pq_ext), 2u, 54u);
  // The practical approach (end of Section IV-B): S_b = P_b.
  q.scale_bits = q.pattern_bits;
  q.scale_binsize = std::ldexp(1.0, 1 - static_cast<int>(q.scale_bits));
  return q;
}

unsigned ecq_bin(std::int64_t v) {
  if (v == 0) return 1;
  const std::uint64_t mag =
      v > 0 ? static_cast<std::uint64_t>(v)
            : static_cast<std::uint64_t>(-(v + 1)) + 1;  // |INT64_MIN| safe
  // bin i covers |v| in [2^(i-2), 2^(i-1)-1]  =>  i = bit_width(|v|) + 1.
  return static_cast<unsigned>(std::bit_width(mag)) + 1;
}

int block_type(unsigned ecb_max) {
  if (ecb_max <= 1) return 0;
  if (ecb_max == 2) return 1;
  if (ecb_max <= 6) return 2;
  return 3;
}

QuantizedBlock quantize_block(std::span<const double> block,
                              const BlockSpec& spec,
                              const PatternSelection& sel,
                              double error_bound) {
  QuantizedBlock qb;
  std::vector<double> p_hat, s_hat;
  quantize_block(block, spec, sel, error_bound, qb, p_hat, s_hat);
  return qb;
}

void quantize_block(std::span<const double> block, const BlockSpec& spec,
                    const PatternSelection& sel, double error_bound,
                    QuantizedBlock& qb, std::vector<double>& p_hat,
                    std::vector<double>& s_hat) {
  const std::size_t sbs = spec.sub_block_size;
  const auto pattern = block.subspan(sel.pattern_sub_block * sbs, sbs);
  const double p_ext =
      simd::encode_kernels().abs_max(pattern.data(), sbs);
  quantize_block_with_extremum(block, spec, sel, error_bound, p_ext, qb,
                               p_hat, s_hat);
}

void quantize_block_with_extremum(std::span<const double> block,
                                  const BlockSpec& spec,
                                  const PatternSelection& sel,
                                  double error_bound,
                                  double pattern_extremum,
                                  QuantizedBlock& qb,
                                  std::vector<double>& p_hat,
                                  std::vector<double>& s_hat) {
  assert(block.size() == spec.block_size());
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  const auto pattern = block.subspan(sel.pattern_sub_block * sbs, sbs);
  const simd::EncodeKernels& kern = simd::encode_kernels();

  qb.spec = make_quant_spec(pattern_extremum, error_bound);

  // Pattern: PQ = round(P / (2 EB)); clamping cannot fire because
  // pattern_bits was sized from the extremum, but keep it for safety.
  qb.pq.resize(sbs);
  p_hat.resize(sbs);
  kern.quantize_signed(pattern.data(), sbs, qb.spec.pattern_binsize,
                       qb.spec.pattern_bits, qb.spec.pattern_binsize,
                       qb.pq.data(), p_hat.data());

  // Scales: SQ = round(S / S_binsize), clamped into S_b bits (S = +1 maps
  // to the largest code, costing at most one extra ECQ bin -- Eq. (23)).
  qb.sq.resize(nsb);
  s_hat.resize(nsb);
  kern.quantize_signed(sel.scales.data(), nsb, qb.spec.scale_binsize,
                       qb.spec.scale_bits, qb.spec.scale_binsize,
                       qb.sq.data(), s_hat.data());

  // Error-correction codes against the *reconstructed* scaled pattern,
  // with the outlier count, max bin, and the +-1 class counts (the
  // dense-size histogram) accumulated in the same fused pass.
  qb.ecq.resize(block.size());
  simd::EcqStats st;
  kern.ecq_residual(block.data(), nsb, sbs, p_hat.data(), s_hat.data(),
                    qb.spec.ec_binsize, qb.ecq.data(), &st);
  qb.num_outliers = st.num_outliers;
  qb.num_plus1 = st.num_plus1;
  qb.num_minus1 = st.num_minus1;
  qb.ecb_max =
      st.num_outliers == 0
          ? 1
          : static_cast<unsigned>(std::bit_width(st.max_magnitude)) + 1;
}

void dequantize_block(const QuantizedBlock& qb, const BlockSpec& spec,
                      std::span<double> out) {
  assert(out.size() == spec.block_size());
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  assert(qb.pq.size() == sbs && qb.sq.size() == nsb);
  // One canonical reconstruction, shared with decompress_block: the
  // active decode kernel (bit-exact on every backend).  Thread-local
  // scratch keeps repeated calls allocation-free.
  static thread_local std::vector<double> p_hat;
  p_hat.resize(sbs);
  simd::decode_kernels().reconstruct(
      qb.pq.data(), qb.sq.data(), qb.ecq.data(), nsb, sbs,
      qb.spec.pattern_binsize, qb.spec.scale_binsize, qb.spec.ec_binsize,
      qb.spec.pattern_bits, qb.ecb_max, p_hat.data(), out.data());
}

}  // namespace pastri
