// compressor.cpp - PaSTRI stream format, block codec, and the
// OpenMP block-parallel drivers.
//
// Stream layout (bit-exact):
//   global header: magic u32, version u8, error_bound f64, mode u8,
//                  metric u8, tree u8, num_sub_blocks u32,
//                  sub_block_size u32, num_blocks u64
//   per block (byte-aligned): varint payload_bytes, then the payload:
//     1 bit  zero-block flag (all |x| <= EB -> nothing else follows)
//     12 bits biased exponent of the per-block bound (BlockRelative only)
//     6 bits P_b
//     SB_size * P_b bits   PQ (two's complement)
//     num_SB  * P_b bits   SQ (S_b = P_b, Section IV-B)
//     6 bits EC_b,max
//     if EC_b,max >= 2:
//       1 bit sparse flag
//       dense:  tree-coded ECQ for every point
//       sparse: varint NOL, then NOL * (index + signed EC_b,max bits)
//
// Blocks are independent byte-aligned units -- the property that makes
// PaSTRI "highly parallelizable ... each block compressed and
// decompressed completely independent from each other" (Section IV-C).
#include <omp.h>

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "bitio/varint.h"
#include "core/format_detail.h"
#include "core/pastri.h"

namespace pastri {
namespace {

constexpr int kEbExpBias = 1100;  // per-block bound exponent field bias

/// Per-block bound in BlockRelative mode: rel * max|block| snapped DOWN
/// to a power of two, so the 12-bit exponent field reproduces it exactly.
double relative_block_bound(double rel, double extremum) {
  const double raw = rel * extremum;
  if (!(raw > 0.0)) return 0.0;
  return std::ldexp(1.0, static_cast<int>(std::floor(std::log2(raw))));
}

struct BlockEncoding {
  bool zero_block = false;
  bool sparse = false;
  std::size_t payload_bits = 0;  // excluding flags/bit-width fields
};

/// Decide the block representation and return exact payload bit cost.
BlockEncoding plan_block(const QuantizedBlock& qb, const BlockSpec& spec,
                         const Params& params, bool zero_block) {
  BlockEncoding enc;
  enc.zero_block = zero_block;
  if (zero_block) {
    enc.payload_bits = 1;
    return enc;
  }
  std::size_t bits = 1 + 6;  // zero flag + P_b
  bits += spec.sub_block_size * qb.spec.pattern_bits;
  bits += spec.num_sub_blocks * qb.spec.scale_bits;
  bits += 6;  // EC_b,max
  if (qb.ecb_max >= 2) {
    bits += 1;  // sparse flag
    const std::size_t dense_bits =
        ecq_encoded_bits(params.tree, qb.ecq, qb.ecb_max);
    const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
    // NOL is a varint (8 bits per 7 payload bits), then one
    // (index, value) record per outlier -- Eq. (20)'s NOL term.
    std::size_t nol_varint_bits = 8;
    for (std::size_t n = qb.num_outliers; n >= 0x80; n >>= 7) {
      nol_varint_bits += 8;
    }
    const std::size_t sparse_bits =
        nol_varint_bits + qb.num_outliers * (idx_bits + qb.ecb_max);
    enc.sparse = params.allow_sparse && sparse_bits < dense_bits;
    bits += enc.sparse ? sparse_bits : dense_bits;
  }
  enc.payload_bits = bits;
  return enc;
}

}  // namespace

void compress_block(std::span<const double> block, const BlockSpec& spec,
                    const Params& params, bitio::BitWriter& w, Stats* stats) {
  assert(block.size() == spec.block_size());
  double eb = params.error_bound;
  if (params.bound_mode == BoundMode::BlockRelative) {
    double extremum = 0.0;
    for (double v : block) extremum = std::max(extremum, std::abs(v));
    eb = relative_block_bound(params.error_bound, extremum);
  }

  // Zero blocks (screened quartets, far-field blocks below the bound):
  // reconstructing zeros already satisfies the error bound.  In
  // BlockRelative mode eb scales with the extremum, so only exact-zero
  // blocks qualify.
  bool zero_block = true;
  for (double v : block) {
    if (std::abs(v) > eb) {
      zero_block = false;
      break;
    }
  }
  if (zero_block) {
    w.write_bit(true);
    if (stats) {
      ++stats->blocks_by_type[0];
      stats->header_bits += 1;
    }
    return;
  }
  w.write_bit(false);
  if (params.bound_mode == BoundMode::BlockRelative) {
    int e;
    std::frexp(eb, &e);  // eb = 2^(e-1) exactly (power of two)
    w.write_bits(static_cast<std::uint64_t>(e - 1 + kEbExpBias), 12);
  }

  const PatternSelection sel = select_pattern(block, spec, params.metric);
  const QuantizedBlock qb = quantize_block(block, spec, sel, eb);
  const BlockEncoding enc = plan_block(qb, spec, params, false);

  w.write_bits(qb.spec.pattern_bits, 6);
  for (std::int64_t v : qb.pq) w.write_signed(v, qb.spec.pattern_bits);
  for (std::int64_t v : qb.sq) w.write_signed(v, qb.spec.scale_bits);
  w.write_bits(qb.ecb_max, 6);

  std::size_t ecq_bits = 0;
  if (qb.ecb_max >= 2) {
    w.write_bit(enc.sparse);
    const std::size_t before = w.bit_count();
    if (enc.sparse) {
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      bitio::write_varint(w, qb.num_outliers);
      for (std::size_t i = 0; i < qb.ecq.size(); ++i) {
        if (qb.ecq[i] != 0) {
          w.write_bits(i, idx_bits);
          w.write_signed(qb.ecq[i], qb.ecb_max);
        }
      }
    } else {
      for (std::int64_t v : qb.ecq) {
        ecq_encode(w, params.tree, v, qb.ecb_max);
      }
    }
    ecq_bits = w.bit_count() - before;
  }

  if (stats) {
    ++stats->blocks_by_type[block_type(qb.ecb_max)];
    stats->pattern_bits += spec.sub_block_size * qb.spec.pattern_bits;
    stats->scale_bits += spec.num_sub_blocks * qb.spec.scale_bits;
    stats->ecq_bits += ecq_bits;
    stats->header_bits +=
        1 + 6 + 6 + (qb.ecb_max >= 2 ? 1 : 0) +
        (params.bound_mode == BoundMode::BlockRelative ? 12 : 0);
    stats->sparse_blocks += enc.sparse ? 1 : 0;
    stats->num_outliers += qb.num_outliers;
  }
}

void decompress_block(bitio::BitReader& r, const BlockSpec& spec,
                      const Params& params, std::span<double> out) {
  assert(out.size() == spec.block_size());
  if (r.read_bit()) {  // zero block
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  double eb = params.error_bound;
  if (params.bound_mode == BoundMode::BlockRelative) {
    const int e = static_cast<int>(r.read_bits(12)) - kEbExpBias;
    eb = std::ldexp(1.0, e);
  }
  QuantizedBlock qb;
  qb.spec = make_quant_spec(0.0, eb);
  qb.spec.pattern_bits = static_cast<unsigned>(r.read_bits(6));
  if (qb.spec.pattern_bits == 0 || qb.spec.pattern_bits > 54) {
    throw std::runtime_error("PaSTRI: corrupt P_b field");
  }
  qb.spec.scale_bits = qb.spec.pattern_bits;
  qb.spec.scale_binsize =
      std::ldexp(1.0, 1 - static_cast<int>(qb.spec.scale_bits));

  qb.pq.resize(spec.sub_block_size);
  for (auto& v : qb.pq) v = r.read_signed(qb.spec.pattern_bits);
  qb.sq.resize(spec.num_sub_blocks);
  for (auto& v : qb.sq) v = r.read_signed(qb.spec.scale_bits);

  qb.ecb_max = static_cast<unsigned>(r.read_bits(6));
  qb.ecq.assign(spec.block_size(), 0);
  if (qb.ecb_max >= 2) {
    const bool sparse = r.read_bit();
    if (sparse) {
      const std::uint64_t nol = bitio::read_varint(r);
      if (nol > spec.block_size()) {
        throw std::runtime_error("PaSTRI: corrupt outlier count");
      }
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      for (std::uint64_t k = 0; k < nol; ++k) {
        const std::uint64_t idx = r.read_bits(idx_bits);
        if (idx >= spec.block_size()) {
          throw std::runtime_error("PaSTRI: corrupt outlier index");
        }
        qb.ecq[idx] = r.read_signed(qb.ecb_max);
      }
    } else {
      for (auto& v : qb.ecq) v = ecq_decode(r, params.tree, qb.ecb_max);
    }
  }
  dequantize_block(qb, spec, out);
}

BlockAnalysis analyze_block(std::span<const double> block,
                            const BlockSpec& spec, const Params& params) {
  BlockAnalysis a;
  double eb = params.error_bound;
  if (params.bound_mode == BoundMode::BlockRelative) {
    double extremum = 0.0;
    for (double v : block) extremum = std::max(extremum, std::abs(v));
    eb = relative_block_bound(params.error_bound, extremum);
  }
  a.zero_block = true;
  for (double v : block) {
    if (std::abs(v) > eb) {
      a.zero_block = false;
      break;
    }
  }
  if (a.zero_block && eb == 0.0) {
    // exact-zero block under a relative bound
    a.selection.scales.assign(spec.num_sub_blocks, 0.0);
    a.quantized.pq.assign(spec.sub_block_size, 0);
    a.quantized.sq.assign(spec.num_sub_blocks, 0);
    a.quantized.ecq.assign(spec.block_size(), 0);
    a.payload_bits = 1;
    return a;
  }
  a.selection = select_pattern(block, spec, params.metric);
  a.quantized = quantize_block(block, spec, a.selection, eb);
  const BlockEncoding enc =
      plan_block(a.quantized, spec, params, a.zero_block);
  a.sparse_chosen = enc.sparse;
  a.payload_bits = enc.payload_bits;
  return a;
}

std::vector<std::uint8_t> compress(std::span<const double> data,
                                   const BlockSpec& spec,
                                   const Params& params, Stats* stats) {
  spec.validate();
  params.validate();
  const std::size_t bs = spec.block_size();
  if (data.size() % bs != 0) {
    throw std::invalid_argument(
        "PaSTRI: data size is not a whole number of blocks");
  }
  const std::size_t num_blocks = data.size() / bs;

  Stats local;
  local.input_bytes = data.size() * sizeof(double);
  local.num_blocks = num_blocks;

  // Compress blocks independently (block-level parallelism, Section IV-C).
  std::vector<std::vector<std::uint8_t>> payloads(num_blocks);
  std::vector<Stats> thread_stats;
  const int nthreads =
      params.num_threads > 0 ? params.num_threads : omp_get_max_threads();
  thread_stats.resize(static_cast<std::size_t>(nthreads));

#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
#pragma omp for schedule(dynamic, 16)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(num_blocks);
         ++b) {
      bitio::BitWriter w;
      compress_block(data.subspan(static_cast<std::size_t>(b) * bs, bs),
                     spec, params, w, &thread_stats[tid]);
      payloads[static_cast<std::size_t>(b)] = w.take();
    }
  }
  for (const Stats& ts : thread_stats) {
    local.pattern_bits += ts.pattern_bits;
    local.scale_bits += ts.scale_bits;
    local.ecq_bits += ts.ecq_bits;
    local.header_bits += ts.header_bits;
    local.sparse_blocks += ts.sparse_blocks;
    local.num_outliers += ts.num_outliers;
    for (int t = 0; t < 4; ++t) {
      local.blocks_by_type[t] += ts.blocks_by_type[t];
    }
  }

  bitio::BitWriter w;
  detail::write_global_header(w, spec, params, num_blocks);
  local.header_bits += w.bit_count();
  for (const auto& p : payloads) {
    bitio::write_varint(w, p.size());
    local.header_bits += 8 * ((p.size() >= 0x80) ? 2 : 1);
    w.write_bytes(p);
  }
  std::vector<std::uint8_t> out = w.take();
  local.output_bytes = out.size();
  if (stats) *stats = local;
  return out;
}

std::vector<double> decompress(std::span<const std::uint8_t> stream) {
  bitio::BitReader header_reader(stream);
  const StreamInfo info = detail::read_global_header(header_reader);
  const std::size_t bs = info.spec.block_size();

  Params params;
  params.error_bound = info.error_bound;
  params.bound_mode = info.bound_mode;
  params.metric = info.metric;
  params.tree = info.tree;

  // Index pass: locate each block's byte-aligned payload.
  std::vector<std::pair<std::size_t, std::size_t>> extents(info.num_blocks);
  {
    bitio::BitReader r = header_reader;
    for (std::size_t b = 0; b < info.num_blocks; ++b) {
      const std::uint64_t len = bitio::read_varint(r);
      assert(r.bit_position() % 8 == 0);
      const std::size_t off = r.bit_position() / 8;
      if (off + len > stream.size()) {
        throw std::runtime_error("PaSTRI: truncated stream");
      }
      extents[b] = {off, static_cast<std::size_t>(len)};
      r.skip_bits(8 * len);
    }
  }

  std::vector<double> out(info.num_blocks * bs);
  // Exceptions cannot propagate out of an OpenMP region; capture the
  // first one (corrupt block payloads must surface as throws, not
  // std::terminate) and rethrow after the join.
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic, 16) shared(error)
  for (std::ptrdiff_t b = 0;
       b < static_cast<std::ptrdiff_t>(info.num_blocks); ++b) {
    try {
      const auto [off, len] = extents[static_cast<std::size_t>(b)];
      bitio::BitReader r(stream.subspan(off, len));
      decompress_block(r, info.spec, params,
                       std::span<double>(out).subspan(
                           static_cast<std::size_t>(b) * bs, bs));
    } catch (...) {
#pragma omp critical(pastri_decompress_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

StreamInfo peek_info(std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  return detail::read_global_header(r);
}

}  // namespace pastri
