// compressor.cpp - PaSTRI stream format, block codec stages, the
// container-scoped CodecContext, the OpenMP block-parallel drivers, and
// random access via BlockReader.
//
// Container layout (bit-exact), version 3:
//   global header: magic u32, version u8, error_bound f64, mode u8,
//                  metric u8, tree u8, num_sub_blocks u32,
//                  sub_block_size u32, num_blocks u64
//   per block (byte-aligned): varint payload_bytes, then the payload
//   offset table: varint payload_bytes per block (the deltas of the
//                 payload offsets -- see block_index.h)
//   footer: u64 table offset, u64 num_blocks, u32 "PIDX"
// Version 2 (still readable) ends after the payloads.
// Version 4 (pattern dictionary) inserts a dictionary section between
// the payloads and the offset table and widens the footer:
//   dict section: varint entry_count, then one varint defining-block
//                 ordinal per entry (pattern bytes live only in the
//                 defining payloads)
//   footer: u64 dict offset, u64 table offset, u64 num_blocks, u32 "PID4"
//
//   per-block payload:
//     1 bit  zero-block flag (all |x| <= EB -> nothing else follows)
//     12 bits biased exponent of the per-block bound (BlockRelative only)
//     6 bits P_b
//     [v4 only] 2 bits pattern tag:
//       0 literal: SB_size * P_b bits PQ (defines the next dict entry)
//       1 exact ref: varint entry id
//       2 delta ref: varint entry id, 6 bits dev width D, SB_size * D
//         bits signed deviations (PQ[i] = base[i] + dev[i])
//     [v2/v3] SB_size * P_b bits   PQ (two's complement)
//     num_SB  * P_b bits   SQ (S_b = P_b, Section IV-B)
//     6 bits EC_b,max
//     if EC_b,max >= 2:
//       1 bit sparse flag
//       dense:  tree-coded ECQ for every point
//       sparse: varint NOL, then NOL * (index + signed EC_b,max bits)
//
// Blocks are independent byte-aligned units -- the property that makes
// PaSTRI "highly parallelizable ... each block compressed and
// decompressed completely independent from each other" (Section IV-C).
// The v4 dictionary preserves this for decode: the dictionary is
// populated up-front (BlockReader, from the trailer) or by a serial
// prefix scan ahead of each batch (StreamConsumer), after which block
// decodes only read it.
#include <omp.h>

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "bitio/varint.h"
#include "core/format_detail.h"
#include "core/pastri.h"
#include "core/simd/simd.h"
#include "core/stream.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri {
namespace {

/// Per-stage codec telemetry (obs/metric_names.h).  Handles are fetched
/// once; each hot-path update is one relaxed atomic add on the calling
/// thread's shard.
struct CoreMetrics {
  obs::Counter blocks_encoded =
      obs::registry().counter(obs::kCoreBlocksEncoded);
  obs::Counter blocks_decoded =
      obs::registry().counter(obs::kCoreBlocksDecoded);
  obs::Histogram pattern_select_ns =
      obs::registry().histogram(obs::kCorePatternSelectNs);
  obs::Histogram quantize_ns =
      obs::registry().histogram(obs::kCoreQuantizeNs);
  obs::Histogram ecq_encode_ns =
      obs::registry().histogram(obs::kCoreEcqEncodeNs);
  obs::Histogram ecq_decode_ns =
      obs::registry().histogram(obs::kCoreEcqDecodeNs);
  obs::Counter ecq_dense_symbols =
      obs::registry().counter(obs::kCoreEcqDenseSymbols);
  obs::Counter encode_bytes =
      obs::registry().counter(obs::kCoreEncodeBytes);
  obs::Counter dict_literals =
      obs::registry().counter(obs::kCoreDictLiterals);
  obs::Counter dict_exact_refs =
      obs::registry().counter(obs::kCoreDictExactRefs);
  obs::Counter dict_delta_refs =
      obs::registry().counter(obs::kCoreDictDeltaRefs);
};

const CoreMetrics& core_metrics() {
  static const CoreMetrics m;
  return m;
}

constexpr int kEbExpBias = 1100;  // per-block bound exponent field bias

/// Per-block bound in BlockRelative mode: rel * max|block| snapped DOWN
/// to a power of two, so the 12-bit exponent field reproduces it exactly.
double relative_block_bound(double rel, double extremum) {
  const double raw = rel * extremum;
  if (!(raw > 0.0)) return 0.0;
  return std::ldexp(1.0, static_cast<int>(std::floor(std::log2(raw))));
}

struct BlockEncoding {
  bool zero_block = false;
  bool sparse = false;
  std::size_t payload_bits = 0;  // excluding flags/bit-width fields
};

/// Per-block bound and zero-block decision in one pass.  BlockRelative
/// needs the extremum anyway, and a block is zero exactly when the
/// extremum is within the bound, so the former two loops (extremum scan
/// + zero scan) fuse into one.  Absolute mode keeps the early-exit zero
/// probe instead: it needs no extremum and usually stops at the first
/// element.
///
/// This is the non-ER path only: with the paper's ER metric the fused
/// plan in quantize_stage reuses the per-sub-block maxima from
/// compute_metric_values, whose maximum IS the extremum, so no separate
/// bound scan runs at all.
struct BoundPlan {
  double eb = 0.0;
  bool zero_block = false;
};

BoundPlan plan_bound(std::span<const double> block, const Params& params) {
  const simd::EncodeKernels& kern = simd::encode_kernels();
  if (params.bound_mode == BoundMode::BlockRelative) {
    const double extremum = kern.abs_max(block.data(), block.size());
    const double eb = relative_block_bound(params.error_bound, extremum);
    // eb scales with the extremum, so only exact-zero blocks qualify.
    return {eb, extremum <= eb};
  }
  const double eb = params.error_bound;
  // Screened quartets, far-field blocks below the bound: reconstructing
  // zeros already satisfies the error bound.
  return {eb, !kern.any_abs_above(block.data(), block.size(), eb)};
}

CodecWorkspace& tls_workspace() {
  thread_local CodecWorkspace ws;
  return ws;
}

/// Decide the block representation and return exact payload bit cost.
BlockEncoding plan_block(const QuantizedBlock& qb, const BlockSpec& spec,
                         const Params& params, bool zero_block) {
  BlockEncoding enc;
  enc.zero_block = zero_block;
  if (zero_block) {
    enc.payload_bits = 1;
    return enc;
  }
  std::size_t bits = 1 + 6;  // zero flag + P_b
  bits += spec.sub_block_size * qb.spec.pattern_bits;
  bits += spec.num_sub_blocks * qb.spec.scale_bits;
  bits += 6;  // EC_b,max
  if (qb.ecb_max >= 2) {
    bits += 1;  // sparse flag
    // Trees 1/2/3/5 price symbols by class only, so the dense size is
    // O(1) from the counts the fused residual kernel accumulated; Tree 4
    // prices by magnitude bin and keeps the walk.
    const std::size_t dense_bits =
        ecq_dense_bits_countable(params.tree)
            ? ecq_encoded_bits_counted(params.tree, qb.ecq.size(),
                                       qb.num_outliers, qb.num_plus1,
                                       qb.num_minus1, qb.ecb_max)
            : ecq_encoded_bits(params.tree, qb.ecq, qb.ecb_max);
    const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
    // NOL is a varint (8 bits per 7 payload bits), then one
    // (index, value) record per outlier -- Eq. (20)'s NOL term.
    std::size_t nol_varint_bits = 8;
    for (std::size_t n = qb.num_outliers; n >= 0x80; n >>= 7) {
      nol_varint_bits += 8;
    }
    const std::size_t sparse_bits =
        nol_varint_bits + qb.num_outliers * (idx_bits + qb.ecb_max);
    enc.sparse = params.allow_sparse && sparse_bits < dense_bits;
    bits += enc.sparse ? sparse_bits : dense_bits;
  }
  enc.payload_bits = bits;
  return enc;
}

/// Valid deviation widths for DeltaRef pattern sections: the encoder
/// never emits a width at or above P_b (a literal would be cheaper), and
/// P_b itself is capped at 54 (quantize.h), so anything wider is
/// corruption.
bool valid_dev_bits(unsigned dev_bits) {
  return dev_bits >= 1 && dev_bits <= 54;
}

}  // namespace

// ---- Codec stages (shared by the stateless codec and the drivers) ------

namespace detail {

BlockPlan quantize_stage(std::span<const double> block,
                         const BlockSpec& spec, const Params& params,
                         CodecWorkspace& ws, QuantizedBlock& qb) {
  assert(block.size() == spec.block_size());
  const CoreMetrics& metrics = core_metrics();
  metrics.blocks_encoded.inc();

  // Fused single-pass plan (the ER fast path): stage 1 of pattern
  // selection computes the per-sub-block absolute maxima, whose maximum
  // is exactly the block extremum the bound plan needs -- one scan
  // serves the bound, the zero decision, and the pattern choice, and
  // stage 2 never rescans the block.  The selected metric value doubles
  // as the pattern extremum for quantization, killing that rescan too.
  // Non-ER metrics keep the two-pass plan (their metric values are not
  // extrema).
  const bool er_fused = params.metric == ScalingMetric::ER;
  PatternSelection& sel = ws.selection;
  BlockPlan plan;
  plan.eb = params.error_bound;
  double pattern_extremum = 0.0;
  if (er_fused) {
    obs::ScopedTimer timer(metrics.pattern_select_ns);
    compute_metric_values(block, spec, params.metric, ws.metric_scratch);
    double extremum = 0.0;
    for (double m : ws.metric_scratch) {
      if (m > extremum) extremum = m;
    }
    if (params.bound_mode == BoundMode::BlockRelative) {
      plan.eb = relative_block_bound(params.error_bound, extremum);
    }
    plan.zero = extremum <= plan.eb;
    pattern_extremum = extremum;
    if (!plan.zero) {
      finish_selection(block, spec, params.metric, ws.metric_scratch, sel);
    }
  } else {
    const BoundPlan bound = plan_bound(block, params);
    plan.eb = bound.eb;
    plan.zero = bound.zero_block;
    if (!plan.zero) {
      obs::ScopedTimer timer(metrics.pattern_select_ns);
      select_pattern(block, spec, params.metric, sel, ws.metric_scratch);
    }
  }
  if (plan.zero) return plan;

  {
    obs::ScopedTimer timer(metrics.quantize_ns);
    if (er_fused) {
      quantize_block_with_extremum(block, spec, sel, plan.eb,
                                   pattern_extremum, qb, ws.p_hat,
                                   ws.s_hat);
    } else {
      quantize_block(block, spec, sel, plan.eb, qb, ws.p_hat, ws.s_hat);
    }
  }
  return plan;
}

void serialize_stage(const BlockSpec& spec, const Params& params,
                     bool dict_stream, const PatternDict* dict,
                     const PatternDecision* dec, const BlockPlan& plan,
                     const QuantizedBlock& qb, bitio::BitWriter& w,
                     Stats* stats) {
  const CoreMetrics& metrics = core_metrics();
  const std::size_t start_bits = w.bit_count();

  if (plan.zero) {
    w.write_bit(true);
    metrics.encode_bytes.add((w.bit_count() - start_bits + 7) / 8);
    if (stats) {
      ++stats->blocks_by_type[0];
      stats->header_bits += 1;
    }
    return;
  }
  w.write_bit(false);
  if (params.bound_mode == BoundMode::BlockRelative) {
    int e;
    std::frexp(plan.eb, &e);  // eb = 2^(e-1) exactly (power of two)
    w.write_bits(static_cast<std::uint64_t>(e - 1 + kEbExpBias), 12);
  }

  const BlockEncoding enc = plan_block(qb, spec, params, false);

  w.write_bits(qb.spec.pattern_bits, 6);
  std::size_t dict_bits = 0;
  bool literal_pattern = true;
  if (dict_stream) {
    const PatternDecision d = dec ? *dec : PatternDecision{};
    const std::size_t before = w.bit_count();
    w.write_bits(static_cast<std::uint64_t>(d.code),
                 PatternDict::kTagBits);
    switch (d.code) {
      case PatternCode::Literal:
        w.write_signed_run(qb.pq, qb.spec.pattern_bits);
        dict_bits = PatternDict::kTagBits;
        metrics.dict_literals.inc();
        break;
      case PatternCode::ExactRef:
        bitio::write_varint(w, d.ref);
        dict_bits = w.bit_count() - before;
        literal_pattern = false;
        metrics.dict_exact_refs.inc();
        break;
      case PatternCode::DeltaRef: {
        bitio::write_varint(w, d.ref);
        w.write_bits(d.dev_bits, 6);
        const std::vector<std::int64_t>& base = dict->entry(d.ref).pq;
        for (std::size_t i = 0; i < qb.pq.size(); ++i) {
          w.write_signed(qb.pq[i] - base[i], d.dev_bits);
        }
        dict_bits = w.bit_count() - before;
        literal_pattern = false;
        metrics.dict_delta_refs.inc();
        break;
      }
    }
  } else {
    w.write_signed_run(qb.pq, qb.spec.pattern_bits);
  }
  w.write_signed_run(qb.sq, qb.spec.scale_bits);
  w.write_bits(qb.ecb_max, 6);

  std::size_t ecq_bits = 0;
  if (qb.ecb_max >= 2) {
    obs::ScopedTimer timer(metrics.ecq_encode_ns);
    w.write_bit(enc.sparse);
    const std::size_t before = w.bit_count();
    if (enc.sparse) {
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      bitio::write_varint(w, qb.num_outliers);
      for (std::size_t i = 0; i < qb.ecq.size(); ++i) {
        if (qb.ecq[i] != 0) {
          w.write_bits(i, idx_bits);
          w.write_signed(qb.ecq[i], qb.ecb_max);
        }
      }
    } else {
      ecq_encode_run(w, params.tree, qb.ecq, qb.ecb_max);
    }
    ecq_bits = w.bit_count() - before;
  }
  // Payload size at block granularity (bits are byte-padded by the
  // container's per-block alignment, so round up).
  metrics.encode_bytes.add((w.bit_count() - start_bits + 7) / 8);

  if (stats) {
    ++stats->blocks_by_type[block_type(qb.ecb_max)];
    if (literal_pattern) {
      stats->pattern_bits += spec.sub_block_size * qb.spec.pattern_bits;
    }
    stats->scale_bits += spec.num_sub_blocks * qb.spec.scale_bits;
    stats->ecq_bits += ecq_bits;
    stats->dict_bits += dict_bits;
    stats->header_bits +=
        1 + 6 + 6 + (qb.ecb_max >= 2 ? 1 : 0) +
        (params.bound_mode == BoundMode::BlockRelative ? 12 : 0);
    stats->sparse_blocks += enc.sparse ? 1 : 0;
    stats->num_outliers += qb.num_outliers;
    if (dict_stream && dec) {
      stats->dict_entries += dec->defined ? 1 : 0;
      stats->dict_exact_refs += dec->code == PatternCode::ExactRef ? 1 : 0;
      stats->dict_delta_refs += dec->code == PatternCode::DeltaRef ? 1 : 0;
    }
  }
}

}  // namespace detail

// ---- CodecContext -------------------------------------------------------

CodecContext::CodecContext(const BlockSpec& spec, const Params& params)
    : spec_(spec), params_(params) {
  spec_.validate();
  params_.validate();
  dict_on_ =
      params_.dict == DictMode::On ||
      (params_.dict == DictMode::Auto && spec_.sub_block_size >= 8);
}

CodecContext::CodecContext(const StreamInfo& info, int num_threads)
    : spec_(info.spec), params_(info.to_params()) {
  params_.num_threads = num_threads;
  dict_on_ = info.version >= kStreamVersionDict;
}

CodecWorkspace* CodecContext::workspaces(std::size_t n) {
  if (workspaces_.size() < n) workspaces_.resize(n);
  return workspaces_.data();
}

bool CodecContext::absorb_payload_prefix(
    std::span<const std::uint8_t> payload, std::uint64_t block_ordinal) {
  if (!dict_on_) return false;
  bitio::BitReader r(payload);
  if (r.read_bit()) return false;  // zero block: no pattern section
  if (params_.bound_mode == BoundMode::BlockRelative) r.skip_bits(12);
  const unsigned pattern_bits = static_cast<unsigned>(r.read_bits(6));
  if (pattern_bits == 0 || pattern_bits > 54) {
    throw std::runtime_error("PaSTRI: corrupt P_b field");
  }
  const auto tag =
      static_cast<PatternCode>(r.read_bits(PatternDict::kTagBits));
  switch (tag) {
    case PatternCode::Literal:
      absorb_pq_.resize(spec_.sub_block_size);
      r.read_signed_run(pattern_bits, absorb_pq_);
      return dict_.add_decoded(absorb_pq_, pattern_bits, block_ordinal);
    case PatternCode::ExactRef:
      bitio::read_varint(r);
      return false;
    case PatternCode::DeltaRef: {
      bitio::read_varint(r);
      const unsigned dev_bits = static_cast<unsigned>(r.read_bits(6));
      if (!valid_dev_bits(dev_bits)) {
        throw std::runtime_error("PaSTRI: corrupt deviation width");
      }
      r.skip_bits(spec_.sub_block_size * dev_bits);
      return false;
    }
    default:
      throw std::runtime_error("PaSTRI: corrupt pattern tag");
  }
}

// ---- Block-level encode -------------------------------------------------

void compress_block(std::span<const double> block, const BlockSpec& spec,
                    const Params& params, bitio::BitWriter& w, Stats* stats) {
  compress_block(block, spec, params, w, stats, tls_workspace());
}

void compress_block(std::span<const double> block, const BlockSpec& spec,
                    const Params& params, bitio::BitWriter& w, Stats* stats,
                    CodecWorkspace& ws) {
  // Stateless path: always the dictionary-free (v2/v3) payload layout,
  // whatever params.dict says -- per-block state cannot span a container.
  const detail::BlockPlan plan =
      detail::quantize_stage(block, spec, params, ws, ws.quantized);
  detail::serialize_stage(spec, params, /*dict_stream=*/false, nullptr,
                          nullptr, plan, ws.quantized, w, stats);
}

void compress_block(CodecContext& ctx, std::span<const double> block,
                    bitio::BitWriter& w, Stats* stats) {
  compress_block(ctx, block, w, stats, tls_workspace());
}

void compress_block(CodecContext& ctx, std::span<const double> block,
                    bitio::BitWriter& w, Stats* stats, CodecWorkspace& ws) {
  const detail::BlockPlan plan = detail::quantize_stage(
      block, ctx.spec(), ctx.params(), ws, ws.quantized);
  if (!ctx.dict_enabled()) {
    detail::serialize_stage(ctx.spec(), ctx.params(), false, nullptr,
                            nullptr, plan, ws.quantized, w, stats);
    return;
  }
  const std::uint64_t ordinal = ctx.advance_ordinal();
  PatternDecision dec;
  if (!plan.zero) {
    dec = ctx.dict().decide_and_commit(
        ws.quantized.pq, ws.quantized.spec.pattern_bits, ordinal);
  }
  detail::serialize_stage(ctx.spec(), ctx.params(), true, &ctx.dict(),
                          &dec, plan, ws.quantized, w, stats);
}

// ---- Block-level decode -------------------------------------------------

namespace {

// Two-stage decode (see DESIGN.md §9): the serial entropy stage walks
// the payload header and the variable-length ECQ symbols, while every
// fixed-width array -- PQ, SQ, DeltaRef deviations, sparse-ECQ records
// -- is bounds-checked once (`require_bits`) and then unpacked in bulk
// by the active simd::DecodeKernels, which also run the dictionary
// base apply, the sparse scatter, and the final reconstruction
// multiply-add.  All backends are bit-exact, and every corrupt-stream
// exception of the serial decoder is preserved: truncation throws
// std::out_of_range from the hoisted bounds check, domain corruption
// ("corrupt P_b", "corrupt outlier index", ...) throws from the same
// validations as before, just after the bulk read instead of inside a
// per-value loop.
void decompress_block_impl(const BlockSpec& spec, const Params& params,
                           bool dict_stream, const PatternDict* dict,
                           bitio::BitReader& r, std::span<double> out,
                           CodecWorkspace& ws) {
  assert(out.size() == spec.block_size());
  const CoreMetrics& metrics = core_metrics();
  metrics.blocks_decoded.inc();
  if (r.read_bit()) {  // zero block
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const simd::DecodeKernels& dk = simd::decode_kernels();
  // Bulk fixed-width run: one hoisted bounds check, then the kernel
  // windows/gathers straight off the payload bytes.
  const auto bulk_signed_run = [&r, &dk](unsigned nbits,
                                         std::span<std::int64_t> dst) {
    const std::size_t run_bits =
        static_cast<std::size_t>(nbits) * dst.size();
    r.require_bits(run_bits);
    dk.unpack_signed(r.data().data(), r.data().size(), r.bit_position(),
                     nbits, dst.data(), dst.size());
    r.seek_unchecked(r.bit_position() + run_bits);
  };
  double eb = params.error_bound;
  if (params.bound_mode == BoundMode::BlockRelative) {
    const int e = static_cast<int>(r.read_bits(12)) - kEbExpBias;
    eb = std::ldexp(1.0, e);
  }
  QuantizedBlock& qb = ws.quantized;
  qb.spec = make_quant_spec(0.0, eb);
  qb.spec.pattern_bits = static_cast<unsigned>(r.read_bits(6));
  if (qb.spec.pattern_bits == 0 || qb.spec.pattern_bits > 54) {
    throw std::runtime_error("PaSTRI: corrupt P_b field");
  }
  qb.spec.scale_bits = qb.spec.pattern_bits;
  qb.spec.scale_binsize =
      std::ldexp(1.0, 1 - static_cast<int>(qb.spec.scale_bits));

  qb.pq.resize(spec.sub_block_size);
  if (dict_stream) {
    const auto tag =
        static_cast<PatternCode>(r.read_bits(PatternDict::kTagBits));
    switch (tag) {
      case PatternCode::Literal:
        bulk_signed_run(qb.spec.pattern_bits, qb.pq);
        break;
      case PatternCode::ExactRef: {
        const std::uint64_t id = bitio::read_varint(r);
        const PatternDict::Entry& e = dict->entry(id);
        if (e.pattern_bits != qb.spec.pattern_bits ||
            e.pq.size() != spec.sub_block_size) {
          throw std::runtime_error(
              "PaSTRI: dictionary reference mismatch");
        }
        std::memcpy(qb.pq.data(), e.pq.data(),
                    e.pq.size() * sizeof(std::int64_t));
        break;
      }
      case PatternCode::DeltaRef: {
        const std::uint64_t id = bitio::read_varint(r);
        const unsigned dev_bits = static_cast<unsigned>(r.read_bits(6));
        if (!valid_dev_bits(dev_bits)) {
          throw std::runtime_error("PaSTRI: corrupt deviation width");
        }
        const PatternDict::Entry& e = dict->entry(id);
        if (e.pattern_bits != qb.spec.pattern_bits ||
            e.pq.size() != spec.sub_block_size) {
          throw std::runtime_error(
              "PaSTRI: dictionary reference mismatch");
        }
        // The deviations land in pq, then the base is added in place.
        bulk_signed_run(dev_bits, qb.pq);
        dk.apply_base_i64(qb.pq.data(), e.pq.data(), qb.pq.size());
        break;
      }
      default:
        throw std::runtime_error("PaSTRI: corrupt pattern tag");
    }
  } else {
    // Fixed-width PQ run: one hoisted bounds check, then the bulk
    // unpack kernel.
    bulk_signed_run(qb.spec.pattern_bits, qb.pq);
  }
  qb.sq.resize(spec.num_sub_blocks);
  bulk_signed_run(qb.spec.scale_bits, qb.sq);

  qb.ecb_max = static_cast<unsigned>(r.read_bits(6));
  if (qb.ecb_max >= 2) {
    obs::ScopedTimer timer(metrics.ecq_decode_ns);
    const bool sparse = r.read_bit();
    if (sparse) {
      const std::uint64_t nol = bitio::read_varint(r);
      if (nol > spec.block_size()) {
        throw std::runtime_error("PaSTRI: corrupt outlier count");
      }
      // Bulk (index, value) record unpack into workspace arrays, then
      // a validating zero-fill + scatter; an out-of-range index makes
      // the scatter kernel bail before storing anything.
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      ws.sparse_idx.resize(nol);
      ws.sparse_val.resize(nol);
      const std::size_t rec_bits =
          static_cast<std::size_t>(idx_bits + qb.ecb_max) * nol;
      r.require_bits(rec_bits);
      dk.unpack_pairs(r.data().data(), r.data().size(), r.bit_position(),
                      idx_bits, qb.ecb_max, ws.sparse_idx.data(),
                      ws.sparse_val.data(), nol);
      r.seek_unchecked(r.bit_position() + rec_bits);
      qb.ecq.resize(spec.block_size());
      if (!dk.scatter_ecq(qb.ecq.data(), spec.block_size(),
                          ws.sparse_idx.data(), ws.sparse_val.data(),
                          nol)) {
        throw std::runtime_error("PaSTRI: corrupt outlier index");
      }
    } else {
      // Dense ECQ: table-driven decode with speculative reads; the
      // single check_overrun below replaces a bounds check per symbol.
      // A truncated payload decodes zero bits into tentative garbage
      // and then throws here, before any value escapes.
      const EcqDecodeLut& lut = ecq_decode_lut(params.tree, qb.ecb_max);
      qb.ecq.resize(spec.block_size());
      ecq_decode_run(r, lut, params.tree, qb.ecb_max, qb.ecq);
      r.check_overrun();
      // One counter bump for the whole block -- per-symbol updates (or
      // worse, per-symbol clock reads) would dominate the LUT decode.
      metrics.ecq_dense_symbols.add(spec.block_size());
    }
  } else {
    qb.ecq.assign(spec.block_size(), 0);
  }
  // Bulk reconstruct: pattern x scale multiply-add with the ECQ
  // correction, through the active backend (bit-exact on every tier).
  ws.p_hat.resize(spec.sub_block_size);
  dk.reconstruct(qb.pq.data(), qb.sq.data(), qb.ecq.data(),
                 spec.num_sub_blocks, spec.sub_block_size,
                 qb.spec.pattern_binsize, qb.spec.scale_binsize,
                 qb.spec.ec_binsize, qb.spec.pattern_bits, qb.ecb_max,
                 ws.p_hat.data(), out.data());
}

}  // namespace

void decompress_block(bitio::BitReader& r, const BlockSpec& spec,
                      const Params& params, std::span<double> out) {
  decompress_block(r, spec, params, out, tls_workspace());
}

void decompress_block(bitio::BitReader& r, const BlockSpec& spec,
                      const Params& params, std::span<double> out,
                      CodecWorkspace& ws) {
  decompress_block_impl(spec, params, /*dict_stream=*/false, nullptr, r,
                        out, ws);
}

void decompress_block(const CodecContext& ctx, bitio::BitReader& r,
                      std::span<double> out) {
  decompress_block(ctx, r, out, tls_workspace());
}

void decompress_block(const CodecContext& ctx, bitio::BitReader& r,
                      std::span<double> out, CodecWorkspace& ws) {
  decompress_block_impl(ctx.spec(), ctx.params(), ctx.dict_enabled(),
                        &ctx.dict(), r, out, ws);
}

BlockAnalysis analyze_block(std::span<const double> block,
                            const BlockSpec& spec, const Params& params) {
  BlockAnalysis a;
  const BoundPlan bound = plan_bound(block, params);
  const double eb = bound.eb;
  a.zero_block = bound.zero_block;
  if (a.zero_block && eb == 0.0) {
    // exact-zero block under a relative bound
    a.selection.scales.assign(spec.num_sub_blocks, 0.0);
    a.quantized.pq.assign(spec.sub_block_size, 0);
    a.quantized.sq.assign(spec.num_sub_blocks, 0);
    a.quantized.ecq.assign(spec.block_size(), 0);
    a.payload_bits = 1;
    return a;
  }
  a.selection = select_pattern(block, spec, params.metric);
  a.quantized = quantize_block(block, spec, a.selection, eb);
  const BlockEncoding enc =
      plan_block(a.quantized, spec, params, a.zero_block);
  a.sparse_chosen = enc.sparse;
  a.payload_bits = enc.payload_bits;
  return a;
}

std::vector<std::uint8_t> compress(std::span<const double> data,
                                   const BlockSpec& spec,
                                   const Params& params, Stats* stats) {
  spec.validate();
  params.validate();
  const std::size_t bs = spec.block_size();
  if (data.size() % bs != 0) {
    throw std::invalid_argument(
        "PaSTRI: data size is not a whole number of blocks");
  }
  // Thin wrapper over the streaming writer (block-level parallelism,
  // Section IV-C, lives in its batch pipeline): declaring the block
  // count up-front writes the header final immediately, and feeding the
  // blocks in order yields exactly the bytes this function always
  // produced -- the two paths cannot drift.
  VectorSink sink;
  StreamWriter writer(sink, spec, params,
                      {.expected_blocks = data.size() / bs});
  writer.put_values(data);
  writer.finish();
  if (stats) *stats = writer.stats();
  return sink.take();
}

StreamInfo peek_info(std::span<const std::uint8_t> stream) {
  bitio::BitReader r(stream);
  return detail::read_global_header(r);
}

std::vector<double> decompress(std::span<const std::uint8_t> stream,
                               const StreamInfo& info, int num_threads) {
  const BlockReader reader(stream, info, num_threads);
  return reader.read_range(0, reader.num_blocks());
}

std::vector<double> decompress(std::span<const std::uint8_t> stream,
                               int num_threads) {
  return decompress(stream, peek_info(stream), num_threads);
}

// ---- BlockReader -------------------------------------------------------

BlockReader::BlockReader(std::span<const std::uint8_t> stream,
                         int num_threads)
    : BlockReader(stream, peek_info(stream), num_threads) {}

BlockReader::BlockReader(std::span<const std::uint8_t> stream,
                         const StreamInfo& info, int num_threads)
    : stream_(stream), info_(info) {
  params_ = info_.to_params();
  params_.num_threads = num_threads;
  // Every header field is a whole number of bytes, so the payloads start
  // at the fixed header size regardless of which ctor parsed it.
  const std::size_t payload_base = detail::kGlobalHeaderBytes;
  if (info_.version >= kStreamVersionDict) {
    const detail::DictFooter footer = detail::read_dict_footer(stream_);
    if (footer.num_blocks != info_.num_blocks) {
      throw std::runtime_error(
          "PaSTRI: dictionary footer block count disagrees with header");
    }
    const std::size_t table_end =
        stream_.size() - detail::kDictFooterBytes;
    index_ = BlockIndex::parse(
        stream_.subspan(footer.index_offset,
                        table_end - footer.index_offset),
        payload_base, footer.dict_offset, info_.num_blocks);
    // Pre-decode all dictionary bases: the trailer lists which blocks
    // defined entries (in id order), the index locates their payloads.
    auto ctx = std::make_shared<CodecContext>(info_, num_threads);
    const std::vector<std::uint64_t> ordinals = PatternDict::parse_section(
        stream_.subspan(footer.dict_offset,
                        footer.index_offset - footer.dict_offset),
        info_.num_blocks);
    for (const std::uint64_t ordinal : ordinals) {
      const BlockExtent& e = index_.extent(ordinal);
      if (!ctx->absorb_payload_prefix(
              stream_.subspan(e.offset, e.length), ordinal)) {
        throw std::runtime_error(
            "PaSTRI: dictionary defining block is not a literal");
      }
    }
    dict_ctx_ = std::move(ctx);
  } else if (info_.version >= kStreamVersionIndexed) {
    const detail::IndexFooter footer = detail::read_index_footer(stream_);
    if (footer.num_blocks != info_.num_blocks) {
      throw std::runtime_error(
          "PaSTRI: index footer block count disagrees with header");
    }
    const std::size_t table_end =
        stream_.size() - detail::kIndexFooterBytes;
    index_ = BlockIndex::parse(
        stream_.subspan(footer.index_offset,
                        table_end - footer.index_offset),
        payload_base, footer.index_offset, info_.num_blocks);
  } else {
    // Unindexed v2 stream: rebuild the index with the sequential scan
    // the old decompressor used (one varint walk, no payload decode).
    index_ = BlockIndex::scan(stream_, payload_base, info_.num_blocks);
  }
}

void BlockReader::read_block(std::size_t block,
                             std::span<double> out) const {
  if (out.size() != info_.spec.block_size()) {
    throw std::invalid_argument("BlockReader: output size mismatch");
  }
  const BlockExtent& e = index_.extent(block);
  bitio::BitReader r(stream_.subspan(e.offset, e.length));
  if (dict_ctx_) {
    decompress_block(*dict_ctx_, r, out);
  } else {
    decompress_block(r, info_.spec, params_, out);
  }
}

std::vector<double> BlockReader::read_block(std::size_t block) const {
  std::vector<double> out(info_.spec.block_size());
  read_block(block, out);
  return out;
}

std::vector<double> BlockReader::read_range(std::size_t first,
                                            std::size_t count) const {
  if (first + count < first || first + count > index_.num_blocks()) {
    throw std::out_of_range("BlockReader: block range out of bounds");
  }
  const std::size_t bs = info_.spec.block_size();
  if (bs != 0 && count > std::numeric_limits<std::size_t>::max() / bs) {
    throw std::runtime_error("PaSTRI: block range too large");
  }
  std::vector<double> out(count * bs);
  const int nthreads = detail::resolve_threads(params_.num_threads);
  // Exceptions cannot propagate out of an OpenMP region; capture the
  // first one (corrupt block payloads must surface as throws, not
  // std::terminate) and rethrow after the join.
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic, 16) num_threads(nthreads) \
    shared(error) if (count > 1)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(count); ++b) {
    try {
      read_block(first + static_cast<std::size_t>(b),
                 std::span<double>(out).subspan(
                     static_cast<std::size_t>(b) * bs, bs));
    } catch (...) {
#pragma omp critical(pastri_decompress_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

std::vector<double> decompress_block_at(
    std::span<const std::uint8_t> stream, const StreamInfo& info,
    std::size_t block) {
  return BlockReader(stream, info).read_block(block);
}

std::vector<double> decompress_range(std::span<const std::uint8_t> stream,
                                     const StreamInfo& info,
                                     std::size_t first, std::size_t count) {
  return BlockReader(stream, info).read_range(first, count);
}

std::vector<double> decompress_block_at(
    std::span<const std::uint8_t> stream, std::size_t block) {
  return decompress_block_at(stream, peek_info(stream), block);
}

std::vector<double> decompress_range(std::span<const std::uint8_t> stream,
                                     std::size_t first,
                                     std::size_t count) {
  return decompress_range(stream, peek_info(stream), first, count);
}

BlockIndex read_block_index(std::span<const std::uint8_t> stream) {
  return BlockReader(stream).index();
}

}  // namespace pastri
