// block_spec.h - Block geometry the user supplies to PaSTRI.
//
// PaSTRI is a generic pattern-scaling compressor: it needs to know only
// how many sub-blocks a block has and how long each sub-block is (the BF
// configuration determines both, and "such information would typically be
// available to the user even before the run-time" -- Section III-B).
#pragma once

#include <cstddef>
#include <stdexcept>

namespace pastri {

struct BlockSpec {
  std::size_t num_sub_blocks = 1;  ///< num_SB = N^i_BF * N^j_BF
  std::size_t sub_block_size = 1;  ///< SB_size = N^k_BF * N^l_BF

  std::size_t block_size() const { return num_sub_blocks * sub_block_size; }

  void validate() const {
    if (num_sub_blocks == 0 || sub_block_size == 0) {
      throw std::invalid_argument("BlockSpec dimensions must be nonzero");
    }
  }

  bool operator==(const BlockSpec&) const = default;
};

}  // namespace pastri
