// quantize.h - Quantization calculus of Section IV-B.
//
// PaSTRI's "practical approach": fix the pattern bin size at 2*EB (so the
// pattern quantization error is at most EB), derive P_b from the pattern
// extremum via Eq. (8), reuse S_b = P_b for the scales, and let the
// per-point error-correction codes ECQ = round(residual / 2*EB) absorb
// everything else.  Because ECQ quantizes the residual against the
// *reconstructed* (quantized) scaled pattern, the point-wise error bound
//   |x - (SQ*S_bin * PQ*P_bin + ECQ*2*EB)| <= EB
// holds unconditionally -- the paper's Eq. (23) shows the cost is at most
// two extra ECQ bins versus the unconstrained optimum.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/block_spec.h"
#include "core/scaling.h"

namespace pastri {

/// Bit-width/bin-size plan for one block.
struct QuantSpec {
  unsigned pattern_bits = 1;   ///< P_b (two's-complement width of PQ)
  unsigned scale_bits = 1;     ///< S_b = P_b
  double pattern_binsize = 0;  ///< 2 * EB
  double scale_binsize = 0;    ///< 2^(1 - S_b)
  double ec_binsize = 0;       ///< 2 * EB
};

/// Derive the plan from the pattern extremum and the error bound.
QuantSpec make_quant_spec(double pattern_extremum, double error_bound);

/// Quantized representation of one block.
struct QuantizedBlock {
  QuantSpec spec;
  std::vector<std::int64_t> pq;   ///< quantized pattern, SB_size entries
  std::vector<std::int64_t> sq;   ///< quantized scales, num_SB entries
  std::vector<std::int64_t> ecq;  ///< per-point codes, block_size entries
  unsigned ecb_max = 1;           ///< max ECQ bin (Fig. 6 x-axis)
  std::size_t num_outliers = 0;   ///< count of nonzero ECQ
  // ECQ width histogram, accumulated by the fused residual kernel in
  // the same pass that writes `ecq`: together with num_outliers these
  // classes determine the dense-ECQ payload size for trees 1/2/3/5
  // without re-walking the block (plan_block's former second pass).
  std::size_t num_plus1 = 0;      ///< count of ECQ == +1
  std::size_t num_minus1 = 0;     ///< count of ECQ == -1
};

/// Minimum number of bits ("bin") to represent an ECQ value per Fig. 6:
/// 0 -> 1 bit, +-1 -> 2 bits, +-[2,3] -> 3 bits, +-[2^(i-2), 2^(i-1)-1]
/// -> i bits.
unsigned ecq_bin(std::int64_t v);

/// Block type from EC_b,max (Section IV-C): 0, 1, 2 (<=6), or 3 (>6).
int block_type(unsigned ecb_max);

/// Quantize a block given its pattern selection.  The reconstruction
/// error of every point is bounded by `error_bound` by construction.
QuantizedBlock quantize_block(std::span<const double> block,
                              const BlockSpec& spec,
                              const PatternSelection& sel,
                              double error_bound);

/// In-place variant for the allocation-free hot path: fully re-derives
/// `qb` (spec, pq/sq/ecq, ecb_max, outlier count), reusing vector
/// capacity; `p_hat`/`s_hat` are scratch for the reconstructed pattern
/// and scales (see CodecWorkspace in pastri.h).
void quantize_block(std::span<const double> block, const BlockSpec& spec,
                    const PatternSelection& sel, double error_bound,
                    QuantizedBlock& qb, std::vector<double>& p_hat,
                    std::vector<double>& s_hat);

/// Fused-path variant: identical to the in-place quantize_block except
/// the caller supplies the pattern extremum it already has (for ER it
/// is the selected metric value, the same double the rescan would
/// produce), saving one sub-block scan per block.
void quantize_block_with_extremum(std::span<const double> block,
                                  const BlockSpec& spec,
                                  const PatternSelection& sel,
                                  double error_bound,
                                  double pattern_extremum,
                                  QuantizedBlock& qb,
                                  std::vector<double>& p_hat,
                                  std::vector<double>& s_hat);

/// Inverse of quantize_block: reconstruct the block values.
void dequantize_block(const QuantizedBlock& qb, const BlockSpec& spec,
                      std::span<double> out);

}  // namespace pastri
