// pastri.h - Public API of the PaSTRI compressor.
//
// PaSTRI (Pattern Scaling for Two-electron Repulsion Integrals) is an
// error-bounded lossy compressor for datasets made of fixed-shape blocks
// whose sub-blocks are approximate scalar multiples of one another --
// the latent structure of GAMESS ERI shell blocks (Section III-B of the
// paper), but the codec is generic over any data with that feature.
//
// Typical use:
//
//   pastri::BlockSpec spec{.num_sub_blocks = 36, .sub_block_size = 36};
//   pastri::Params params{.error_bound = 1e-10};
//   auto compressed = pastri::compress(values, spec, params);
//   auto roundtrip  = pastri::decompress(compressed);
//   // |values[i] - roundtrip[i]| <= 1e-10 for every i, guaranteed.
//
// Thread safety: `compress`/`decompress` parallelize over blocks with
// OpenMP internally and are safe to call concurrently on distinct data.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/block_index.h"
#include "core/block_spec.h"
#include "core/ecq_tree.h"
#include "core/pattern_dict.h"
#include "core/quantize.h"
#include "core/scaling.h"

namespace pastri {

class CodecContext;  // container-scoped codec state, declared below

/// Container version bytes (the 5th stream byte).  v2 is the original
/// layout: global header + varint-length prefixed payloads.  v3 appends
/// a per-block offset table and a footer locating it, making every block
/// seekable in O(1).  v4 adds the cross-block pattern dictionary: a
/// 2-bit pattern tag per non-zero block, a dictionary section in the
/// trailer, and an extended footer.  The compressor writes v3 (dict off,
/// the default -- bytes bit-identical to previous releases) or v4 (dict
/// on); all versions decode.
inline constexpr unsigned kStreamVersionUnindexed = 2;
inline constexpr unsigned kStreamVersionIndexed = 3;
inline constexpr unsigned kStreamVersionDict = 4;

/// How the error bound is interpreted.
///
/// `Absolute` is the paper's mode: one absolute bound for the whole
/// stream (GAMESS workloads use 1e-10).  `BlockRelative` is the
/// "extend it to suit more chemistry applications" direction: the bound
/// for each block is `error_bound * max|block|` (snapped down to a power
/// of two so both sides derive it identically), preserving *relative*
/// precision in far-field blocks instead of zeroing them.
enum class BoundMode : std::uint8_t {
  Absolute = 0,
  BlockRelative = 1,
};

/// Compression parameters.  Defaults are the paper's final design:
/// ER scaling, Tree 5 encoding, sparse/dense adaptivity, EB = 1e-10.
struct Params {
  /// Point-wise absolute bound, or the relative factor in BlockRelative
  /// mode.
  double error_bound = 1e-10;
  BoundMode bound_mode = BoundMode::Absolute;
  ScalingMetric metric = ScalingMetric::ER;
  EcqTree tree = EcqTree::Tree5;
  bool allow_sparse = true;  ///< per-block sparse-ECQ representation
  int num_threads = 0;       ///< 0 = OpenMP default

  /// Cross-block pattern dictionary (container format v4).  Off keeps
  /// the v3 format and bit-identical output; On/Auto apply only to the
  /// container drivers (compress / StreamWriter) -- the stateless
  /// block-level API always encodes dictionary-free payloads.
  DictMode dict = DictMode::Off;

  void validate() const {
    if (!(error_bound > 0.0)) {
      throw std::invalid_argument("error_bound must be positive");
    }
    if (bound_mode == BoundMode::BlockRelative && !(error_bound < 1.0)) {
      throw std::invalid_argument(
          "relative error bound must be in (0, 1)");
    }
  }
};

/// Storage accounting for one compression run (drives the paper's
/// "PQ+SQ ~= 20-30 %, ECQ ~= 70-80 %, bookkeeping < 0.5 %" breakdown and
/// the Fig. 6 block-type census).
struct Stats {
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::size_t header_bits = 0;   ///< global + per-block metadata
  std::size_t pattern_bits = 0;  ///< PQ payload
  std::size_t scale_bits = 0;    ///< SQ payload
  std::size_t ecq_bits = 0;      ///< ECQ payload
  std::size_t num_blocks = 0;
  std::array<std::size_t, 4> blocks_by_type{};
  std::size_t sparse_blocks = 0;
  std::size_t num_outliers = 0;
  // Pattern-dictionary accounting (all zero for v2/v3 containers).
  // `dict_bits` counts every bit the dictionary adds to the stream: the
  // per-block tags, reference varints, deviation width fields and runs,
  // and the trailer dictionary section.  `pattern_bits` keeps counting
  // only inline (literal) PQ runs, so the two never overlap and the
  // header/pattern/scale/ecq accounting stays exact with the dictionary
  // on.
  std::size_t dict_bits = 0;
  std::size_t dict_entries = 0;     ///< entries defined (literal blocks)
  std::size_t dict_exact_refs = 0;  ///< blocks stored as an exact ref
  std::size_t dict_delta_refs = 0;  ///< blocks stored as base + deviation

  double ratio() const {
    return output_bytes ? static_cast<double>(input_bytes) / output_bytes
                        : 0.0;
  }

  /// Flat JSON object.  Both pastri_tool's --metrics=json report and the
  /// obs exporter (obs/export.h) serialize Stats through this one
  /// function, so the two representations can never drift.
  std::string to_json() const {
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\"input_bytes\":%zu,\"output_bytes\":%zu,\"ratio\":%.6g,"
        "\"header_bits\":%zu,\"pattern_bits\":%zu,\"scale_bits\":%zu,"
        "\"ecq_bits\":%zu,\"dict_bits\":%zu,\"num_blocks\":%zu,"
        "\"blocks_by_type\":[%zu,%zu,%zu,%zu],"
        "\"sparse_blocks\":%zu,\"num_outliers\":%zu,"
        "\"dict_entries\":%zu,\"dict_exact_refs\":%zu,"
        "\"dict_delta_refs\":%zu}",
        input_bytes, output_bytes, ratio(), header_bits, pattern_bits,
        scale_bits, ecq_bits, dict_bits, num_blocks, blocks_by_type[0],
        blocks_by_type[1], blocks_by_type[2], blocks_by_type[3],
        sparse_blocks, num_outliers, dict_entries, dict_exact_refs,
        dict_delta_refs);
    return buf;
  }
};

/// Stream metadata readable without decompressing.
struct StreamInfo {
  double error_bound = 0.0;
  BoundMode bound_mode = BoundMode::Absolute;
  ScalingMetric metric = ScalingMetric::ER;
  EcqTree tree = EcqTree::Tree5;
  BlockSpec spec;
  std::size_t num_blocks = 0;
  unsigned version = 0;  ///< container version byte (see kStreamVersion*)

  /// Decode-side parameters implied by the header.
  Params to_params() const {
    Params p;
    p.error_bound = error_bound;
    p.bound_mode = bound_mode;
    p.metric = metric;
    p.tree = tree;
    p.dict = version >= kStreamVersionDict ? DictMode::On : DictMode::Off;
    return p;
  }
};

/// Compress `data` (a whole number of blocks).  Throws
/// std::invalid_argument on size mismatch or bad parameters.
std::vector<std::uint8_t> compress(std::span<const double> data,
                                   const BlockSpec& spec,
                                   const Params& params,
                                   Stats* stats = nullptr);

/// Parse the stream header only.
StreamInfo peek_info(std::span<const std::uint8_t> stream);

// ---- Decode entry points ----------------------------------------------
//
// The canonical decode family is StreamInfo-first: probe the header once
// with `peek_info` (or take it from a BlockReader / StreamConsumer you
// already have) and pass it back in, so repeated decodes of the same
// stream never re-parse the header.  The info-less overloads below each
// delegate to their info-first twin after one `peek_info` call -- they
// are thin aliases for one-shot use, not separate code paths.

/// Decompress a full stream produced by `compress` (block-parallel;
/// `num_threads` as in Params::num_threads, 0 = OpenMP default).
/// `info` must be this stream's header as parsed by `peek_info`.
/// Throws std::runtime_error on malformed input.
std::vector<double> decompress(std::span<const std::uint8_t> stream,
                               const StreamInfo& info, int num_threads = 0);

/// Thin alias: probes the header, then calls the StreamInfo-first
/// overload.
std::vector<double> decompress(std::span<const std::uint8_t> stream,
                               int num_threads = 0);

// ---- Random access ----------------------------------------------------

/// Seekable view of one compressed stream: parses the header and the
/// block index once (from the v3 footer, or by a single sequential scan
/// for unindexed v2 streams), then decodes arbitrary blocks in O(block)
/// time.  The span must outlive the reader.  All read methods are const
/// and safe to call concurrently.
class BlockReader {
 public:
  /// Throws std::runtime_error on malformed input (bad header, missing
  /// or inconsistent index footer, corrupt offset table).  `num_threads`
  /// bounds read_range's block parallelism (0 = OpenMP default).
  explicit BlockReader(std::span<const std::uint8_t> stream,
                       int num_threads = 0);

  /// StreamInfo-first constructor: `info` must be this stream's header
  /// as parsed by `peek_info`; only the block index is parsed here.
  BlockReader(std::span<const std::uint8_t> stream, const StreamInfo& info,
              int num_threads = 0);

  const StreamInfo& info() const { return info_; }
  const BlockIndex& index() const { return index_; }
  std::size_t num_blocks() const { return index_.num_blocks(); }

  /// v4 streams: the read-only decode context holding the pre-decoded
  /// pattern dictionary; nullptr for v2/v3 containers.
  const CodecContext* dict_context() const { return dict_ctx_.get(); }

  /// Decode block `block` into `out` (size spec.block_size()).
  void read_block(std::size_t block, std::span<double> out) const;
  std::vector<double> read_block(std::size_t block) const;

  /// Decode blocks [first, first+count) (block-parallel internally).
  std::vector<double> read_range(std::size_t first,
                                 std::size_t count) const;

 private:
  std::span<const std::uint8_t> stream_;
  StreamInfo info_;
  Params params_;
  BlockIndex index_;
  /// v4 streams only: decode context whose dictionary was pre-populated
  /// from the trailer's defining-block list at construction (shared so
  /// the reader stays copyable; read-only after construction, which
  /// keeps the read methods const and concurrency-safe).
  std::shared_ptr<const CodecContext> dict_ctx_;
};

/// One-shot conveniences over BlockReader, in the same StreamInfo-first
/// family as `decompress`.  For repeated random access into the same
/// stream, construct a BlockReader once instead: these re-parse the
/// index per call.
std::vector<double> decompress_block_at(
    std::span<const std::uint8_t> stream, const StreamInfo& info,
    std::size_t block);
std::vector<double> decompress_range(std::span<const std::uint8_t> stream,
                                     const StreamInfo& info,
                                     std::size_t first, std::size_t count);

/// Thin aliases: probe the header, then call the StreamInfo-first twin.
std::vector<double> decompress_block_at(
    std::span<const std::uint8_t> stream, std::size_t block);
std::vector<double> decompress_range(std::span<const std::uint8_t> stream,
                                     std::size_t first, std::size_t count);

/// The stream's block index (parsed from the v3 footer, or rebuilt by a
/// sequential scan for v2 streams).
BlockIndex read_block_index(std::span<const std::uint8_t> stream);

// ---- Block-level API (building blocks, also used by tests/benches) ----

/// Reusable per-thread scratch for the block codec hot path.  Sized on
/// first use for a given BlockSpec and reused for every block after, so
/// steady-state compress/decompress loops perform zero heap allocations
/// per block.  Each OpenMP worker in the batch drivers owns one; the
/// workspace-less compress_block/decompress_block overloads fall back to
/// a thread-local instance.  Not thread-safe: one workspace per thread.
struct CodecWorkspace {
  PatternSelection selection;             ///< encode: pattern + scales
  QuantizedBlock quantized;               ///< both sides: PQ/SQ/ECQ
  std::vector<double> p_hat;              ///< both: reconstructed pattern
  std::vector<double> s_hat;              ///< encode: reconstructed scales
  std::vector<double> metric_scratch;     ///< encode: select_pattern values
  std::vector<std::uint64_t> sparse_idx;  ///< decode: sparse-ECQ indices
  std::vector<std::int64_t> sparse_val;   ///< decode: sparse-ECQ values
  bitio::BitWriter writer;                ///< drivers: per-block bit staging
  std::vector<std::uint8_t> arena;        ///< drivers: batch payload staging
  Stats stats;                            ///< drivers: per-thread accounting
};

// ---- Container-scoped codec context ------------------------------------

/// Per-container codec state, threaded through the block codec and both
/// streaming drivers: the pattern dictionary (format v4), the resolved
/// parameters, and the reusable per-thread workspace pool.  One context
/// spans one container; `begin_container()` resets the dictionary so a
/// context (and its warmed workspaces) can be reused across containers.
///
/// Thread safety: mutation (encode-side decide_and_commit, decode-side
/// absorb_payload_prefix, workspace growth) is serial-only; read access
/// (`dict()` lookups during parallel decode, distinct `workspace(tid)`
/// slots) is safe concurrently.
class CodecContext {
 public:
  /// Encode-side context.  Resolves DictMode::Auto against the spec.
  /// Throws std::invalid_argument on bad spec/params.
  CodecContext(const BlockSpec& spec, const Params& params);

  /// Decode-side context for a stream with header `info` (the dictionary
  /// is enabled iff the stream is v4).
  explicit CodecContext(const StreamInfo& info, int num_threads = 0);

  const BlockSpec& spec() const { return spec_; }
  const Params& params() const { return params_; }

  /// Whether this container carries the pattern dictionary (resolved
  /// DictMode on the encode side, stream version on the decode side).
  bool dict_enabled() const { return dict_on_; }

  PatternDict& dict() { return dict_; }
  const PatternDict& dict() const { return dict_; }

  /// Reset per-container state (the dictionary and the block ordinal
  /// counter) for a new container; workspaces keep their warmed capacity.
  void begin_container() {
    dict_.clear();
    next_ordinal_ = 0;
  }

  /// Encode side: claim the ordinal of the next appended block (ordinals
  /// identify dictionary-defining blocks in the v4 trailer).  Serial.
  std::uint64_t advance_ordinal() { return next_ordinal_++; }

  /// Grow the workspace pool to at least `n` slots (serial only) and
  /// return its base; slot `tid` is then private to worker `tid`.
  CodecWorkspace* workspaces(std::size_t n);
  CodecWorkspace& workspace(std::size_t tid) { return workspaces_[tid]; }

  /// Decode-side adaptive dictionary build: parse one v4 payload's
  /// pattern prefix (zero flag, bound exponent, P_b, tag) and -- for a
  /// literal block with room in the dictionary -- register its pattern
  /// as the next entry, mirroring the encoder's id assignment exactly.
  /// Returns true iff an entry was defined.  Serial, in block order.
  bool absorb_payload_prefix(std::span<const std::uint8_t> payload,
                             std::uint64_t block_ordinal);

 private:
  BlockSpec spec_;
  Params params_;
  bool dict_on_ = false;
  std::uint64_t next_ordinal_ = 0;
  PatternDict dict_;
  std::vector<CodecWorkspace> workspaces_;
  std::vector<std::int64_t> absorb_pq_;  ///< prefix-scan scratch
};

/// Compress one block into `w` and account into `stats` (may be null).
void compress_block(std::span<const double> block, const BlockSpec& spec,
                    const Params& params, bitio::BitWriter& w, Stats* stats);

/// Workspace-explicit variant (allocation-free once `ws` is warm).
void compress_block(std::span<const double> block, const BlockSpec& spec,
                    const Params& params, bitio::BitWriter& w, Stats* stats,
                    CodecWorkspace& ws);

/// Context-first variant: encodes under `ctx` (dictionary lookups and
/// commits when the context has the dictionary enabled -- serial-only in
/// that case, the dictionary state advances per block).  With the
/// dictionary off the emitted bits equal the stateless overloads'.
void compress_block(CodecContext& ctx, std::span<const double> block,
                    bitio::BitWriter& w, Stats* stats);
void compress_block(CodecContext& ctx, std::span<const double> block,
                    bitio::BitWriter& w, Stats* stats, CodecWorkspace& ws);

/// Decompress one block from `r`.
void decompress_block(bitio::BitReader& r, const BlockSpec& spec,
                      const Params& params, std::span<double> out);

/// Workspace-explicit variant (allocation-free once `ws` is warm).
void decompress_block(bitio::BitReader& r, const BlockSpec& spec,
                      const Params& params, std::span<double> out,
                      CodecWorkspace& ws);

/// Context-first variants: required for v4 payloads (the pattern tag and
/// dictionary references only decode against a populated context); for
/// v2/v3 payloads they match the stateless overloads bit-for-bit.  The
/// context is read-only here, so concurrent decodes may share it (one
/// workspace per thread).
void decompress_block(const CodecContext& ctx, bitio::BitReader& r,
                      std::span<double> out);
void decompress_block(const CodecContext& ctx, bitio::BitReader& r,
                      std::span<double> out, CodecWorkspace& ws);

/// Introspection for analysis benches/tests: the full quantized
/// representation of one block under `params` (pattern selection included).
struct BlockAnalysis {
  PatternSelection selection;
  QuantizedBlock quantized;
  bool zero_block = false;   ///< whole block within EB of zero
  bool sparse_chosen = false;
  std::size_t payload_bits = 0;
};
BlockAnalysis analyze_block(std::span<const double> block,
                            const BlockSpec& spec, const Params& params);

}  // namespace pastri
