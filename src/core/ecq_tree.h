// ecq_tree.h - Symbol-by-symbol variable-length ECQ encoders (Fig. 7).
//
// The paper evaluates five fixed prefix trees and selects Tree 5, whose
// behaviour adapts to EC_b,max: the optimal {0,+1,-1} tree for type-1
// blocks and Tree 3 otherwise.  The trees are fixed -- unlike Huffman
// coding no dictionary is stored and no frequency pass is needed, which
// is what keeps PaSTRI block-parallel (Section IV-C).
#pragma once

#include <cstdint>
#include <span>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri {

enum class EcqTree : std::uint8_t {
  Tree1 = 1,  ///< 0 -> '0'; v -> '1' + v in EC_b bits
  Tree2 = 2,  ///< 0 -> '0'; 1 -> '10'; -1 -> '110'; v -> '111' + EC_b bits
  Tree3 = 3,  ///< 0 -> '0'; v -> '10' + EC_b bits; 1 -> '110'; -1 -> '111'
  Tree4 = 4,  ///< unary bin index + in-bin payload (exp-Golomb-like)
  Tree5 = 5,  ///< adaptive: optimal {0,1,-1} tree when EC_b,max = 2,
              ///< Tree 3 otherwise (the paper's choice)
};

const char* ecq_tree_name(EcqTree t);

/// Number of bits tree `t` spends on value `v` when the block's
/// EC_b,max is `ecb_max`.  Exact (used for dense-vs-sparse decisions and
/// the Fig. 7 sweep without materializing streams).
unsigned ecq_code_length(EcqTree t, std::int64_t v, unsigned ecb_max);

/// Encode/decode one value.  `ecb_max >= 2` (type-0 blocks emit nothing).
void ecq_encode(bitio::BitWriter& w, EcqTree t, std::int64_t v,
                unsigned ecb_max);
std::int64_t ecq_decode(bitio::BitReader& r, EcqTree t, unsigned ecb_max);

/// Convenience: total encoded size of a sequence, in bits.
std::size_t ecq_encoded_bits(EcqTree t, std::span<const std::int64_t> ecq,
                             unsigned ecb_max);

}  // namespace pastri
