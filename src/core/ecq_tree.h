// ecq_tree.h - Symbol-by-symbol variable-length ECQ encoders (Fig. 7).
//
// The paper evaluates five fixed prefix trees and selects Tree 5, whose
// behaviour adapts to EC_b,max: the optimal {0,+1,-1} tree for type-1
// blocks and Tree 3 otherwise.  The trees are fixed -- unlike Huffman
// coding no dictionary is stored and no frequency pass is needed, which
// is what keeps PaSTRI block-parallel (Section IV-C).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri {

enum class EcqTree : std::uint8_t {
  Tree1 = 1,  ///< 0 -> '0'; v -> '1' + v in EC_b bits
  Tree2 = 2,  ///< 0 -> '0'; 1 -> '10'; -1 -> '110'; v -> '111' + EC_b bits
  Tree3 = 3,  ///< 0 -> '0'; v -> '10' + EC_b bits; 1 -> '110'; -1 -> '111'
  Tree4 = 4,  ///< unary bin index + in-bin payload (exp-Golomb-like)
  Tree5 = 5,  ///< adaptive: optimal {0,1,-1} tree when EC_b,max = 2,
              ///< Tree 3 otherwise (the paper's choice)
};

const char* ecq_tree_name(EcqTree t);

/// Number of bits tree `t` spends on value `v` when the block's
/// EC_b,max is `ecb_max`.  Exact (used for dense-vs-sparse decisions and
/// the Fig. 7 sweep without materializing streams).
unsigned ecq_code_length(EcqTree t, std::int64_t v, unsigned ecb_max);

/// Encode/decode one value.  `ecb_max >= 2` (type-0 blocks emit nothing).
///
/// These are the *reference* implementations: bit-by-bit tree walks kept
/// for escapes, deep Tree-4 bins, and differential testing.  The hot
/// path uses the table-driven pair below, which is verified bit- and
/// value-identical against these by the EcqDiffFuzz suite.
void ecq_encode(bitio::BitWriter& w, EcqTree t, std::int64_t v,
                unsigned ecb_max);
std::int64_t ecq_decode(bitio::BitReader& r, EcqTree t, unsigned ecb_max);

/// Convenience: total encoded size of a sequence, in bits.
std::size_t ecq_encoded_bits(EcqTree t, std::span<const std::int64_t> ecq,
                             unsigned ecb_max);

/// True when the dense size under tree `t` depends only on the symbol
/// *classes* {0, +1, -1, escape} -- every tree but Tree 4, whose unary
/// bin index needs the full magnitude histogram.
constexpr bool ecq_dense_bits_countable(EcqTree t) {
  return t != EcqTree::Tree4;
}

/// O(1) dense size from the class counts the fused residual kernel
/// accumulates (QuantizedBlock::{num_outliers,num_plus1,num_minus1}).
/// Equals ecq_encoded_bits() for any sequence with those counts; `t`
/// must satisfy ecq_dense_bits_countable().
std::size_t ecq_encoded_bits_counted(EcqTree t, std::size_t n,
                                     std::size_t num_outliers,
                                     std::size_t num_plus1,
                                     std::size_t num_minus1,
                                     unsigned ecb_max);

/// Encode a dense run of symbols: the whole-block form of
/// `ecq_encode_fast` with the tree switch (and Tree 5's EC_b,max
/// adaptivity) hoisted out of the symbol loop.  Bit-identical to
/// calling ecq_encode_fast per symbol.
void ecq_encode_run(bitio::BitWriter& w, EcqTree t,
                    std::span<const std::int64_t> ecq, unsigned ecb_max);

// ---- Table-driven fast path --------------------------------------------
//
// Decode: an 11-bit peek indexes a per-tree LUT whose entry gives the
// decoded value and the prefix length in one hit, so dense type-1/2
// blocks decode at ~1 table lookup per symbol instead of 2-4 checked
// read_bit calls.  Escape entries consume the prefix and then pull the
// EC_b,max-bit payload with one (speculative) word read.  The lookup
// uses BitReader's speculative peek/consume family: the caller runs one
// hoisted `check_overrun()` per block payload instead of a bounds check
// per symbol.
//
// The table shape depends only on the tree (and, for Tree 5, on whether
// EC_b,max <= 2 switches it to the optimal {0,+1,-1} tree), never on the
// exact EC_b,max -- escape payload width is applied at decode time -- so
// five static tables cover every block.

inline constexpr unsigned kEcqLutBits = 11;

struct EcqDecodeEntry {
  std::int32_t value = 0;   ///< decoded value when `escape` is 0
  std::uint8_t bits = 0;    ///< prefix bits consumed; 0 = slow-path miss
  std::uint8_t escape = 0;  ///< 1 = value follows as EC_b,max signed bits
};

struct EcqDecodeLut {
  EcqDecodeEntry entry[std::size_t{1} << kEcqLutBits];
};

/// The decode table for `(t, ecb_max)` (a reference to one of five
/// lazily built static tables; cheap to call per block).
const EcqDecodeLut& ecq_decode_lut(EcqTree t, unsigned ecb_max);

/// Fast one-symbol decode via `lut` (= ecq_decode_lut(t, ecb_max)).
/// Speculative: never bounds-checks; the caller must `check_overrun()`
/// once after the symbol run.  Falls back to the reference decoder for
/// patterns deeper than the table (Tree-4 bins beyond |v| ~ 31).
inline std::int64_t ecq_decode_fast(bitio::BitReader& r,
                                    const EcqDecodeLut& lut, EcqTree t,
                                    unsigned ecb_max) {
  const EcqDecodeEntry e = lut.entry[r.peek_bits(kEcqLutBits)];
  if (e.bits != 0) {
    r.consume(e.bits);
    if (e.escape == 0) return e.value;
    return r.take_signed(ecb_max);
  }
  return ecq_decode(r, t, ecb_max);
}

/// Fast one-symbol encode: the whole code (prefix + escape payload) is
/// packed into a single write_bits call whenever it fits 64 bits, which
/// covers every case but pathological Tree-4 bins.  Bit-identical to
/// `ecq_encode` for all inputs.
void ecq_encode_fast(bitio::BitWriter& w, EcqTree t, std::int64_t v,
                     unsigned ecb_max);

/// Decode a dense run of `out.size()` symbols -- the whole-block form of
/// `ecq_decode_fast`, and what decompress_block actually calls.  Keeps a
/// 64-bit window in a register and refills it with one unaligned load
/// per ~57 consumed bits (tens of symbols on real residuals) instead of
/// reloading per symbol.  Escapes, LUT misses, and the last <8 stream
/// bytes drop back to `ecq_decode_fast` / the reference decoder through
/// the reader, so the two paths stay value- and cursor-identical (the
/// EcqDiffFuzz suite pins this).  Speculative like the rest of the
/// family: run `check_overrun()` after the call.
inline void ecq_decode_run(bitio::BitReader& r, const EcqDecodeLut& lut,
                           EcqTree t, unsigned ecb_max,
                           std::span<std::int64_t> out) {
  const std::uint8_t* base = r.data().data();
  const std::size_t nbytes = r.data().size();
  std::size_t pos = r.bit_position();
  std::uint64_t window = 0;
  unsigned valid = 0;
  std::size_t i = 0;
  while (i < out.size()) {
    if (valid < kEcqLutBits) {
      const std::size_t byte = pos >> 3;
      if (byte + 8 > nbytes) break;  // stream tail: finish via the reader
      std::uint64_t word;
      std::memcpy(&word, base + byte, 8);  // little-endian hosts
      const unsigned bit = static_cast<unsigned>(pos & 7);
      window = word >> bit;
      valid = 64 - bit;  // >= 57 > kEcqLutBits
    }
    const EcqDecodeEntry e =
        lut.entry[window & ((std::size_t{1} << kEcqLutBits) - 1)];
    if (e.bits == 0) {  // deeper than the table (deep Tree-4 bins)
      r.seek_unchecked(pos);
      out[i++] = ecq_decode(r, t, ecb_max);
      pos = r.bit_position();
      valid = 0;
      continue;
    }
    pos += e.bits;
    window >>= e.bits;
    valid -= e.bits;
    if (e.escape != 0) {
      // The payload (up to 64 bits) is wider than the window guarantees;
      // pull it through the reader's own speculative load.
      r.seek_unchecked(pos);
      out[i++] = r.take_signed(ecb_max);
      pos = r.bit_position();
      valid = 0;
      continue;
    }
    out[i++] = e.value;
  }
  r.seek_unchecked(pos);
  for (; i < out.size(); ++i) {
    out[i] = ecq_decode_fast(r, lut, t, ecb_max);
  }
}

}  // namespace pastri
