// pastri_capi.h - C-linkage API for the PaSTRI compressor.
//
// The paper's implementation shipped inside SZ, a C library; this header
// gives C callers (and FFI bindings) the same surface: plain structs,
// status-code returns, malloc-owned output buffers released with
// pastri_free().  The streams are byte-identical to the C++ API's.
//
// Error handling contract: every entry point returns pastri_status and
// never lets a C++ exception cross the boundary.  On failure, a
// human-readable message for the calling thread is available from
// pastri_last_error_message().
#pragma once

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Status codes returned by every pastri_* entry point (0 = success). */
typedef enum pastri_status {
  PASTRI_OK = 0,
  PASTRI_ERR_INVALID_ARGUMENT = -1, /* bad pointer, size, or parameter */
  PASTRI_ERR_CORRUPT_STREAM = -2,   /* malformed or truncated container */
  PASTRI_ERR_INTERNAL = -3,         /* allocation failure or library bug */
  PASTRI_ERR_IO = -4,               /* file open/write/close failed */
  PASTRI_ERR_BUSY = -5,             /* admission control shed the request
                                     * (pastri_serve: connection/session
                                     * caps reached; retry later) */
} pastri_status;

/* Mirrors pastri::Params; initialize with pastri_params_init. */
typedef struct pastri_params {
  double error_bound;  /* absolute bound, or relative factor */
  int bound_mode;      /* 0 = absolute, 1 = block-relative */
  int metric;          /* 0=FR 1=ER 2=AR 3=AAR 4=IS */
  int tree;            /* 1..5 (Fig. 7 trees) */
  int allow_sparse;    /* nonzero = adaptive sparse ECQ */
  int num_threads;     /* 0 = OpenMP default */
  int dict_mode;       /* 0 = off (v3, default), 1 = on (v4), 2 = auto */
} pastri_params;

/* Fill with the paper's defaults (EB=1e-10, ER, Tree 5, sparse on,
 * dictionary off). */
void pastri_params_init(pastri_params* params);

/* Static name of a status code ("PASTRI_OK", "PASTRI_ERR_CORRUPT_STREAM",
 * ...); "PASTRI_ERR_UNKNOWN" for values outside the enum.  Never NULL. */
const char* pastri_status_name(pastri_status status);

/* Compress `count` doubles structured as blocks of
 * num_sub_blocks * sub_block_size values.  On success *out receives a
 * malloc'd buffer of *out_size bytes (caller frees with pastri_free).
 */
pastri_status pastri_compress_buffer(const double* data, size_t count,
                                     size_t num_sub_blocks,
                                     size_t sub_block_size,
                                     const pastri_params* params,
                                     unsigned char** out, size_t* out_size);

/* Decompress a stream produced by pastri_compress_buffer (or the C++
 * API).  On success *out receives a malloc'd array of *out_count
 * doubles. */
pastri_status pastri_decompress_buffer(const unsigned char* stream,
                                       size_t stream_size, double** out,
                                       size_t* out_count);

/* Decode only block `block_index` of a stream into `out`, which must
 * hold at least out_capacity doubles (>= the stream's block size, i.e.
 * num_sub_blocks * sub_block_size from pastri_peek).  O(1) seek on
 * indexed (v3) streams; falls back to a scan on legacy streams. */
pastri_status pastri_decompress_block(const unsigned char* stream,
                                      size_t stream_size,
                                      size_t block_index, double* out,
                                      size_t out_capacity);

/* Decompress blocks [first, first+count) into a malloc'd array of
 * *out_count doubles (caller frees with pastri_free). */
pastri_status pastri_decompress_range(const unsigned char* stream,
                                      size_t stream_size, size_t first,
                                      size_t count, double** out,
                                      size_t* out_count);

/* ---- Streaming compression ------------------------------------------
 *
 * Bounded-memory counterpart of pastri_compress_buffer: blocks are
 * appended one at a time and encoded in batches straight to a file, so
 * the dense dataset never has to exist in memory.  The bytes written
 * are identical to pastri_compress_buffer fed the same blocks.
 *
 *   pastri_stream* s;
 *   pastri_stream_open("out.pastri", 36, 36, &params, &s);
 *   for (...) pastri_stream_put_block(s, block);       // 36*36 doubles
 *   pastri_stream_finish(s, &total_bytes);
 *   pastri_stream_close(s);
 *
 * Handles are not thread-safe; closing without finish() abandons an
 * unfinished (unreadable) file. */

typedef struct pastri_stream pastri_stream;

/* Open a streaming compressor writing a fresh container to `path`. */
pastri_status pastri_stream_open(const char* path, size_t num_sub_blocks,
                                 size_t sub_block_size,
                                 const pastri_params* params,
                                 pastri_stream** out);

/* Append one block of num_sub_blocks * sub_block_size doubles. */
pastri_status pastri_stream_put_block(pastri_stream* stream,
                                      const double* block);

/* Flush pending blocks, emit the offset table and footer, back-fill the
 * header block count.  *out_size (may be NULL) receives the container
 * size in bytes.  The handle must still be released with
 * pastri_stream_close. */
pastri_status pastri_stream_finish(pastri_stream* stream, size_t* out_size);

/* Release the handle (after finish, or to abandon an open stream). */
void pastri_stream_close(pastri_stream* stream);

/* Read stream metadata without decompressing; any pointer may be NULL. */
pastri_status pastri_peek(const unsigned char* stream, size_t stream_size,
                          double* error_bound, size_t* num_sub_blocks,
                          size_t* sub_block_size, size_t* num_blocks);

/* ---- Container contexts ---------------------------------------------
 *
 * A context owns the per-container codec state of the C++ CodecContext:
 * the resolved parameters, the cross-block pattern dictionary (when
 * params->dict_mode enables it, producing format v4), and the warmed
 * per-thread workspaces.  Reusing one context across many compressions
 * of like-shaped data skips the per-call setup; each compression still
 * starts a fresh container (the dictionary resets per call).  Handles
 * are not thread-safe. */

typedef struct pastri_ctx pastri_ctx;

/* Create a context for blocks of num_sub_blocks * sub_block_size
 * values.  dict_mode 2 (auto) resolves against the block shape here. */
pastri_status pastri_ctx_create(size_t num_sub_blocks,
                                size_t sub_block_size,
                                const pastri_params* params,
                                pastri_ctx** out);

/* Whether containers written through this context carry the pattern
 * dictionary (1) or the bit-identical v3 format (0). */
int pastri_ctx_dict_enabled(const pastri_ctx* ctx);

/* Compress `count` doubles (whole blocks) into a fresh container under
 * this context; same ownership contract as pastri_compress_buffer. */
pastri_status pastri_ctx_compress_buffer(pastri_ctx* ctx,
                                         const double* data, size_t count,
                                         unsigned char** out,
                                         size_t* out_size);

/* Release the context. */
void pastri_ctx_destroy(pastri_ctx* ctx);

/* ---- Compressed block stores ----------------------------------------
 *
 * A store is a long-lived, read-mostly handle over compressed data with
 * a sharded LRU cache of decoded blocks in front of it -- the server
 * surface of the library: pastri_serve's OPEN_STORE/GET_BLOCK RPCs map
 * 1:1 onto these calls.  Three backings:
 *
 *   - pastri_store_open(path):  a single PaSTRI container (raw stream
 *     as written by pastri_stream_* / the C++ StreamWriter, or a
 *     pastri_tool "TSCP" file -- sniffed from the magic), or a sharded
 *     dataset when `path` is its manifest file
 *     ("<dir>/<basename>.manifest"); shards are concatenated in dataset
 *     block order.  Blocks are addressed by index via
 *     pastri_store_get_block / pastri_store_get_range.
 *
 *   - pastri_store_open_eri(molecule): computes and compresses the ERI
 *     tensor of a named built-in molecule (STO-3G) and serves
 *     shell-quartet blocks via pastri_store_shell_block.
 *
 * Thread safety: all get/stats calls on one store are safe to call
 * concurrently (the decoded-block cache is mutex-striped and the decode
 * itself runs outside any lock); open/set-cache/close must not race
 * with gets on the same handle. */

typedef struct pastri_store pastri_store;

/* Decoded-block cache geometry.  capacity_blocks is the total cache
 * size across shards (0 disables caching); num_shards is the number of
 * independently locked stripes (0 = library default). */
typedef struct pastri_store_cache_config {
  size_t capacity_blocks;
  size_t num_shards;
} pastri_store_cache_config;

/* Aggregated cache accounting.  hits/misses are lifetime counters;
 * bytes/unique_blocks count each distinct decoded vector once (entries
 * with identical decoded values share one vector). */
typedef struct pastri_store_cache_stats {
  size_t hits;
  size_t misses;
  size_t bytes;
  size_t unique_blocks;
} pastri_store_cache_stats;

/* Fill with the library defaults (capacity 1024 blocks, 8 shards). */
void pastri_store_cache_config_init(pastri_store_cache_config* config);

/* Open a block store over a container file, a pastri_tool file, or a
 * sharded dataset manifest (see above).  `cache` may be NULL for the
 * defaults.  On success *out receives the handle (release with
 * pastri_store_close). */
pastri_status pastri_store_open(const char* path,
                                const pastri_store_cache_config* cache,
                                pastri_store** out);

/* Open an ERI store for a named built-in molecule ("benzene",
 * "glutamine", "alanine"): computes all shell-quartet blocks, compresses them
 * one stream per quartet class, and serves them via
 * pastri_store_shell_block.  `params` may be NULL for the paper
 * defaults. */
pastri_status pastri_store_open_eri(const char* molecule,
                                    const pastri_params* params,
                                    const pastri_store_cache_config* cache,
                                    pastri_store** out);

/* Total blocks (file-backed: container blocks; ERI-backed: shell
 * quartets). */
pastri_status pastri_store_num_blocks(const pastri_store* store,
                                      size_t* out);

/* Values per block (file-backed stores; ERI-backed stores have
 * per-quartet sizes -- see pastri_store_shell_block). */
pastri_status pastri_store_block_size(const pastri_store* store,
                                      size_t* out);

/* Decode block `block` into `out` (>= out_capacity values, which must
 * be >= the store's block size).  Served from the decoded-block cache
 * when warm.  File-backed stores only. */
pastri_status pastri_store_get_block(pastri_store* store, size_t block,
                                     double* out, size_t out_capacity);

/* Decode blocks [first, first+count) into `out` (capacity
 * count * block_size values).  Bypasses the cache and batches into the
 * block-parallel range decoder.  File-backed stores only. */
pastri_status pastri_store_get_range(pastri_store* store, size_t first,
                                     size_t count, double* out,
                                     size_t out_capacity);

/* Decode the (p q | u v) shell-quartet block of an ERI store into
 * `out`; *out_count (may be NULL) receives the number of values
 * written.  Returns PASTRI_ERR_INVALID_ARGUMENT for shell indices
 * outside the basis or a too-small buffer.  ERI-backed stores only. */
pastri_status pastri_store_shell_block(pastri_store* store, size_t p,
                                       size_t q, size_t u, size_t v,
                                       double* out, size_t out_capacity,
                                       size_t* out_count);

/* Replace the cache geometry (changing the shard count drops cached
 * entries; counters persist). */
pastri_status pastri_store_set_cache(
    pastri_store* store, const pastri_store_cache_config* cache);

pastri_status pastri_store_get_cache_stats(const pastri_store* store,
                                           pastri_store_cache_stats* out);

/* Release the handle (NULL is a no-op). */
void pastri_store_close(pastri_store* store);

/* ---- Fused generate->compress->io pipeline ---------------------------
 *
 * One call drives the whole front half of the paper's workflow: ERI
 * quartet generation, PaSTRI compression, and sharded container io,
 * with the three stages overlapped on separate threads (double-buffered
 * bounded queues in between).  The shard bytes are identical to the
 * sequential path whatever the pipeline settings. */

typedef struct pastri_eri_dump_options {
  int num_shards;      /* shard files to write (>= 1) */
  int resume;          /* nonzero: keep complete shards of a prior
                          interrupted dump, regenerate the rest */
  int pipelined;       /* nonzero: overlap compute/encode/io stages */
  size_t batch_blocks; /* blocks per pipeline chunk (0 = auto) */
} pastri_eri_dump_options;

/* Fill with the defaults (1 shard, no resume, pipelined, auto batch). */
void pastri_eri_dump_options_init(pastri_eri_dump_options* options);

typedef struct pastri_eri_dump_result {
  size_t num_blocks;         /* dataset blocks (reused + generated) */
  size_t bytes_written;      /* compressed bytes actually generated */
  size_t shards_total;
  size_t shards_reused;      /* complete shards kept by resume */
  unsigned long long wall_ns;
  double overlap_efficiency; /* 0 = sequential .. 1 = perfect overlap */
} pastri_eri_dump_result;

/* Generate the sampled ERI dataset of a named built-in molecule
 * ("benzene", "glutamine", "alanine") for BF configuration `config`
 * (e.g. "(dd|dd)") and compress it into the sharded dataset
 * `<dir>/<basename>.manifest` + `<dir>/<basename>.<shard>`.  The output
 * loads with pastri_store_open on the manifest path.  `params`,
 * `options`, and `result` may each be NULL (defaults / ignored). */
pastri_status pastri_eri_dump(const char* molecule, const char* config,
                              const pastri_params* params,
                              const char* dir, const char* basename,
                              const pastri_eri_dump_options* options,
                              pastri_eri_dump_result* result);

/* ---- Telemetry -------------------------------------------------------
 *
 * The library keeps process-wide counters, gauges, and latency
 * histograms for every codec / stream / io / qc stage (see
 * obs/metric_names.h for the naming scheme).  Collection is on by
 * default and costs one relaxed atomic update per event. */

/* Snapshot all metrics as a malloc'd JSON string (caller frees with
 * pastri_free).  The shape matches pastri_tool --metrics=json. */
pastri_status pastri_metrics_snapshot_json(char** out);

/* Globally enable (nonzero) or disable (0) metric collection. */
void pastri_metrics_enable(int enabled);

/* Zero every counter, gauge, and histogram. */
void pastri_metrics_reset(void);

/* Release a buffer returned by this API. */
void pastri_free(void* ptr);

/* Human-readable message for the most recent failure on this thread.
 * Never NULL; empty until the first failure. */
const char* pastri_last_error_message(void);

/* Alias of pastri_last_error_message (original name). */
const char* pastri_last_error(void);

#ifdef __cplusplus
}  /* extern "C" */
#endif
