// period_detect.h - Automatic sub-block period detection.
//
// The paper requires the user to supply the BF configuration ("such
// information would typically be available to the user even before the
// run-time", Section III-B) but also bills PaSTRI as "a generic
// compression algorithm that can work for any dataset as long as it
// exhibits similar features".  This module closes the gap: given raw
// 1-D data it searches candidate periods and scores each by how well a
// scaled pattern explains the data, recovering the (SB_size, num_SB)
// geometry without metadata.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/block_spec.h"

namespace pastri {

struct PeriodCandidate {
  std::size_t period = 0;   ///< candidate sub-block size
  double score = 0.0;       ///< mean |correlation| between period slices
};

/// Score one candidate period: the average absolute Pearson correlation
/// between consecutive period-length slices of `data` (1.0 = perfect
/// pattern repetition).  Returns 0 for degenerate slices.
double score_period(std::span<const double> data, std::size_t period);

/// Evaluate all divisors of `data.size()` in [min_period, max_period]
/// and return them sorted by descending score.
std::vector<PeriodCandidate> rank_periods(std::span<const double> data,
                                          std::size_t min_period,
                                          std::size_t max_period);

/// Suggest a BlockSpec for block-structured data: picks the best-scoring
/// divisor period p and returns {data.size()/p, p}.  Returns the trivial
/// spec {1, data.size()} when nothing scores above `min_score`.
BlockSpec suggest_block_spec(std::span<const double> data,
                             std::size_t max_period = 4096,
                             double min_score = 0.8);

}  // namespace pastri
