// pattern_dict.cpp - Cross-block pattern dictionary: lookup, commit, and
// the v4 trailer section (see pattern_dict.h for the design).
#include "core/pattern_dict.h"

#include <cstring>

#include "bitio/varint.h"

namespace pastri {

void PatternDict::clear() {
  entries_.clear();
  by_hash_.clear();
  for (Ring& r : recent_) r = Ring{};
}

std::uint64_t PatternDict::hash_(std::span<const std::int64_t> pq,
                                 unsigned pattern_bits) {
  // FNV-1a folding whole 64-bit words; the width is mixed in so patterns
  // with equal values but different P_b never alias.
  std::uint64_t h = 1469598103934665603ull ^
                    (static_cast<std::uint64_t>(pattern_bits) *
                     0x9E3779B97F4A7C15ull);
  for (std::int64_t v : pq) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return h;
}

bool PatternDict::equals_(const Entry& e, std::span<const std::int64_t> pq,
                          unsigned pattern_bits) const {
  return e.pattern_bits == pattern_bits && e.pq.size() == pq.size() &&
         std::memcmp(e.pq.data(), pq.data(),
                     pq.size() * sizeof(std::int64_t)) == 0;
}

void PatternDict::commit_(std::span<const std::int64_t> pq,
                          unsigned pattern_bits, std::uint64_t block_ordinal,
                          std::uint64_t hash) {
  const auto id = static_cast<std::uint32_t>(entries_.size());
  Entry e;
  e.pq.assign(pq.begin(), pq.end());
  e.pattern_bits = pattern_bits;
  e.defining_block = block_ordinal;
  entries_.push_back(std::move(e));
  by_hash_.emplace(hash, id);  // collisions keep the first entry
  Ring& ring = recent_[pattern_bits & 63];
  ring.ids[ring.next] = id;
  ring.next = (ring.next + 1) % kNearCandidates;
  if (ring.count < kNearCandidates) ++ring.count;
}

PatternDecision PatternDict::decide_and_commit(
    std::span<const std::int64_t> pq, unsigned pattern_bits,
    std::uint64_t block_ordinal) {
  const std::uint64_t h = hash_(pq, pattern_bits);
  const auto it = by_hash_.find(h);
  if (it != by_hash_.end() && equals_(entries_[it->second], pq,
                                      pattern_bits)) {
    return {PatternCode::ExactRef, it->second, 0};
  }

  // Near match: best-of-K over the most recent entries of this width.
  // The literal cost baseline excludes the shared tag bits.
  const std::size_t len = pq.size();
  const std::size_t literal_bits = len * pattern_bits;
  std::size_t best_bits = literal_bits;
  std::uint32_t best_id = 0;
  unsigned best_dev = 0;
  const Ring& ring = recent_[pattern_bits & 63];
  for (std::size_t k = 0; k < ring.count; ++k) {
    const std::uint32_t id = ring.ids[k];
    const Entry& e = entries_[id];
    if (e.pattern_bits != pattern_bits || e.pq.size() != len) continue;
    // Widest deviation decides the run width; bail out as soon as this
    // candidate cannot beat the best so far.
    const std::size_t fixed_bits =
        8 * bitio::varint_width(id) + 6;  // ref varint + dev-width field
    if (fixed_bits >= best_bits) continue;
    const unsigned dev_cap = static_cast<unsigned>(
        (best_bits - fixed_bits) / (len ? len : 1));
    unsigned dev_bits = 1;
    bool viable = true;
    for (std::size_t i = 0; i < len; ++i) {
      const unsigned wbits = signed_width(pq[i] - e.pq[i]);
      if (wbits > dev_bits) {
        dev_bits = wbits;
        if (dev_bits > dev_cap) {
          viable = false;
          break;
        }
      }
    }
    if (!viable) continue;
    const std::size_t bits = fixed_bits + len * dev_bits;
    if (bits < best_bits) {
      best_bits = bits;
      best_id = id;
      best_dev = dev_bits;
    }
  }
  if (best_bits < literal_bits) {
    return {PatternCode::DeltaRef, best_id, best_dev, false};
  }

  const bool define = !full();
  if (define) commit_(pq, pattern_bits, block_ordinal, h);
  return {PatternCode::Literal, 0, 0, define};
}

bool PatternDict::add_decoded(std::span<const std::int64_t> pq,
                              unsigned pattern_bits,
                              std::uint64_t block_ordinal) {
  if (full()) return false;
  commit_(pq, pattern_bits, block_ordinal, hash_(pq, pattern_bits));
  return true;
}

void PatternDict::serialize_section(bitio::BitWriter& w) const {
  bitio::write_varint(w, entries_.size());
  for (const Entry& e : entries_) {
    bitio::write_varint(w, e.defining_block);
  }
}

std::size_t PatternDict::section_bytes() const {
  std::size_t bytes = bitio::varint_width(entries_.size());
  for (const Entry& e : entries_) {
    bytes += bitio::varint_width(e.defining_block);
  }
  return bytes;
}

std::vector<std::uint64_t> PatternDict::parse_section(
    std::span<const std::uint8_t> section, std::uint64_t num_blocks) {
  bitio::BitReader r(section);
  std::uint64_t count = 0;
  try {
    count = bitio::read_varint(r);
    if (count > kMaxEntries) {
      throw std::runtime_error("PaSTRI: dictionary entry count too large");
    }
    std::vector<std::uint64_t> ordinals;
    ordinals.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t ordinal = bitio::read_varint(r);
      if (ordinal >= num_blocks) {
        throw std::runtime_error(
            "PaSTRI: dictionary defining block out of range");
      }
      ordinals.push_back(ordinal);
    }
    return ordinals;
  } catch (const std::out_of_range&) {
    // BitReader/varint overruns surface as out_of_range; a truncated
    // dictionary section is stream corruption, not a caller bug.
    throw std::runtime_error("PaSTRI: truncated dictionary section");
  }
}

}  // namespace pastri
