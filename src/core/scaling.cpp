#include "core/scaling.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pastri {
namespace {

/// Clamp a scaling coefficient into the representable range [-1, 1].
/// For ER/FR/AR the clamp never fires (the pattern maximizes the metric);
/// it protects the sign-corrected metrics and floating-point edge cases.
double clamp_scale(double s) {
  if (!std::isfinite(s)) return 0.0;
  return std::clamp(s, -1.0, 1.0);
}

/// Sign of the inner product of a sub-block with the pattern; used by the
/// sign-corrected metrics (AAR, IS) whose raw coefficient is nonnegative.
double correlation_sign(std::span<const double> sb,
                        std::span<const double> pattern) {
  double dot = 0.0;
  for (std::size_t i = 0; i < sb.size(); ++i) dot += sb[i] * pattern[i];
  return dot < 0.0 ? -1.0 : 1.0;
}

}  // namespace

const char* scaling_metric_name(ScalingMetric m) {
  switch (m) {
    case ScalingMetric::FR: return "FR";
    case ScalingMetric::ER: return "ER";
    case ScalingMetric::AR: return "AR";
    case ScalingMetric::AAR: return "AAR";
    case ScalingMetric::IS: return "IS";
  }
  return "?";
}

PatternSelection select_pattern(std::span<const double> block,
                                const BlockSpec& spec, ScalingMetric metric) {
  PatternSelection sel;
  std::vector<double> scratch;
  select_pattern(block, spec, metric, sel, scratch);
  return sel;
}

void select_pattern(std::span<const double> block, const BlockSpec& spec,
                    ScalingMetric metric, PatternSelection& sel,
                    std::vector<double>& metric_val) {
  assert(block.size() == spec.block_size());
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;

  sel.pattern_sub_block = 0;
  sel.scales.assign(nsb, 0.0);

  auto sub = [&](std::size_t j) {
    return block.subspan(j * sbs, sbs);
  };

  // Per-sub-block metric value; the pattern is the argmax.
  metric_val.assign(nsb, 0.0);
  // ER needs the local index of the block-wide extremum.
  std::size_t er_index = 0;

  switch (metric) {
    case ScalingMetric::FR:
      for (std::size_t j = 0; j < nsb; ++j) {
        metric_val[j] = std::abs(sub(j)[0]);
      }
      break;
    case ScalingMetric::ER: {
      double best = -1.0;
      for (std::size_t j = 0; j < nsb; ++j) {
        auto s = sub(j);
        for (std::size_t i = 0; i < sbs; ++i) {
          const double a = std::abs(s[i]);
          if (a > metric_val[j]) metric_val[j] = a;
          if (a > best) {
            best = a;
            er_index = i;
          }
        }
      }
      break;
    }
    case ScalingMetric::AR:
      for (std::size_t j = 0; j < nsb; ++j) {
        double m = 0.0;
        for (double v : sub(j)) m += v;
        metric_val[j] = std::abs(m) / static_cast<double>(sbs);
      }
      break;
    case ScalingMetric::AAR:
      for (std::size_t j = 0; j < nsb; ++j) {
        double m = 0.0;
        for (double v : sub(j)) m += std::abs(v);
        metric_val[j] = m / static_cast<double>(sbs);
      }
      break;
    case ScalingMetric::IS:
      for (std::size_t j = 0; j < nsb; ++j) {
        auto s = sub(j);
        const auto [lo, hi] = std::minmax_element(s.begin(), s.end());
        metric_val[j] = *hi - *lo;
      }
      break;
  }

  sel.pattern_sub_block = static_cast<std::size_t>(
      std::max_element(metric_val.begin(), metric_val.end()) -
      metric_val.begin());
  const auto pattern = sub(sel.pattern_sub_block);
  const double denom = metric_val[sel.pattern_sub_block];
  if (denom == 0.0) return;  // all-zero (or metric-degenerate) block

  for (std::size_t j = 0; j < nsb; ++j) {
    double s = 0.0;
    switch (metric) {
      case ScalingMetric::FR:
        s = (pattern[0] != 0.0) ? sub(j)[0] / pattern[0] : 0.0;
        break;
      case ScalingMetric::ER:
        s = sub(j)[er_index] / pattern[er_index];
        break;
      case ScalingMetric::AR: {
        double num = 0.0, den = 0.0;
        for (double v : sub(j)) num += v;
        for (double v : pattern) den += v;
        s = (den != 0.0) ? num / den : 0.0;
        break;
      }
      case ScalingMetric::AAR: {
        double num = 0.0;
        for (double v : sub(j)) num += std::abs(v);
        s = (num / static_cast<double>(sbs)) / denom;
        s *= correlation_sign(sub(j), pattern);
        break;
      }
      case ScalingMetric::IS: {
        s = metric_val[j] / denom;
        s *= correlation_sign(sub(j), pattern);
        break;
      }
    }
    sel.scales[j] = clamp_scale(s);
  }
}

}  // namespace pastri
