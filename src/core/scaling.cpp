#include "core/scaling.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/simd/simd.h"

namespace pastri {
namespace {

/// Clamp a scaling coefficient into the representable range [-1, 1].
/// For ER/FR/AR the clamp never fires (the pattern maximizes the metric);
/// it protects the sign-corrected metrics and floating-point edge cases.
double clamp_scale(double s) {
  if (!std::isfinite(s)) return 0.0;
  return std::clamp(s, -1.0, 1.0);
}

/// Sign of the inner product of a sub-block with the pattern; used by the
/// sign-corrected metrics (AAR, IS) whose raw coefficient is nonnegative.
double correlation_sign(std::span<const double> sb,
                        std::span<const double> pattern) {
  double dot = 0.0;
  for (std::size_t i = 0; i < sb.size(); ++i) dot += sb[i] * pattern[i];
  return dot < 0.0 ? -1.0 : 1.0;
}

}  // namespace

const char* scaling_metric_name(ScalingMetric m) {
  switch (m) {
    case ScalingMetric::FR: return "FR";
    case ScalingMetric::ER: return "ER";
    case ScalingMetric::AR: return "AR";
    case ScalingMetric::AAR: return "AAR";
    case ScalingMetric::IS: return "IS";
  }
  return "?";
}

void compute_metric_values(std::span<const double> block,
                           const BlockSpec& spec, ScalingMetric metric,
                           std::vector<double>& metric_val) {
  assert(block.size() == spec.block_size());
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  // Resize, never assign: every branch writes all nsb entries, so the
  // O(num_SB) clear the old code paid per call is gone (the vector's
  // capacity lives in the CodecWorkspace across blocks).
  metric_val.resize(nsb);

  auto sub = [&](std::size_t j) { return block.subspan(j * sbs, sbs); };

  switch (metric) {
    case ScalingMetric::FR:
      for (std::size_t j = 0; j < nsb; ++j) {
        metric_val[j] = std::abs(sub(j)[0]);
      }
      break;
    case ScalingMetric::ER: {
      // Per-sub-block |.| maxima through the dispatched kernel; the
      // AVX2 backend's compare+blend scan is bit-identical to the
      // scalar `if (a > m) m = a` loop (SimdDiff pins this).
      const simd::EncodeKernels& kern = simd::encode_kernels();
      for (std::size_t j = 0; j < nsb; ++j) {
        metric_val[j] = kern.abs_max(block.data() + j * sbs, sbs);
      }
      break;
    }
    case ScalingMetric::AR:
      // Order-sensitive sums stay sequential: vectorizing them would
      // reassociate and change the metric in the last ulp.
      for (std::size_t j = 0; j < nsb; ++j) {
        double m = 0.0;
        for (double v : sub(j)) m += v;
        metric_val[j] = std::abs(m) / static_cast<double>(sbs);
      }
      break;
    case ScalingMetric::AAR:
      for (std::size_t j = 0; j < nsb; ++j) {
        double m = 0.0;
        for (double v : sub(j)) m += std::abs(v);
        metric_val[j] = m / static_cast<double>(sbs);
      }
      break;
    case ScalingMetric::IS:
      for (std::size_t j = 0; j < nsb; ++j) {
        auto s = sub(j);
        const auto [lo, hi] = std::minmax_element(s.begin(), s.end());
        metric_val[j] = *hi - *lo;
      }
      break;
  }
}

void finish_selection(std::span<const double> block, const BlockSpec& spec,
                      ScalingMetric metric,
                      std::span<const double> metric_val,
                      PatternSelection& out) {
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  assert(metric_val.size() == nsb);

  auto sub = [&](std::size_t j) { return block.subspan(j * sbs, sbs); };

  out.pattern_sub_block = static_cast<std::size_t>(
      std::max_element(metric_val.begin(), metric_val.end()) -
      metric_val.begin());
  out.scales.resize(nsb);
  const auto pattern = sub(out.pattern_sub_block);
  const double denom = metric_val[out.pattern_sub_block];
  if (denom == 0.0) {  // all-zero (or metric-degenerate) block
    std::fill(out.scales.begin(), out.scales.end(), 0.0);
    return;
  }

  // ER's scale is the ratio at the block-wide extremum's local index:
  // the first occurrence of the maximum inside the first sub-block that
  // attains it -- exactly the index the old single-loop scan tracked
  // via first-strict-improvement.
  std::size_t er_index = 0;
  if (metric == ScalingMetric::ER) {
    er_index = simd::encode_kernels().find_first_abs_eq(
        pattern.data(), sbs, denom);
    assert(er_index < sbs);
  }

  for (std::size_t j = 0; j < nsb; ++j) {
    double s = 0.0;
    switch (metric) {
      case ScalingMetric::FR:
        s = (pattern[0] != 0.0) ? sub(j)[0] / pattern[0] : 0.0;
        break;
      case ScalingMetric::ER:
        s = sub(j)[er_index] / pattern[er_index];
        break;
      case ScalingMetric::AR: {
        double num = 0.0, den = 0.0;
        for (double v : sub(j)) num += v;
        for (double v : pattern) den += v;
        s = (den != 0.0) ? num / den : 0.0;
        break;
      }
      case ScalingMetric::AAR: {
        double num = 0.0;
        for (double v : sub(j)) num += std::abs(v);
        s = (num / static_cast<double>(sbs)) / denom;
        s *= correlation_sign(sub(j), pattern);
        break;
      }
      case ScalingMetric::IS: {
        s = metric_val[j] / denom;
        s *= correlation_sign(sub(j), pattern);
        break;
      }
    }
    out.scales[j] = clamp_scale(s);
  }
}

PatternSelection select_pattern(std::span<const double> block,
                                const BlockSpec& spec, ScalingMetric metric) {
  PatternSelection sel;
  std::vector<double> scratch;
  select_pattern(block, spec, metric, sel, scratch);
  return sel;
}

void select_pattern(std::span<const double> block, const BlockSpec& spec,
                    ScalingMetric metric, PatternSelection& sel,
                    std::vector<double>& metric_val) {
  compute_metric_values(block, spec, metric, metric_val);
  finish_selection(block, spec, metric, metric_val, sel);
}

}  // namespace pastri
