#include "core/period_detect.h"

#include <algorithm>
#include <cmath>

namespace pastri {

double score_period(std::span<const double> data, std::size_t period) {
  if (period == 0 || period * 2 > data.size()) return 0.0;
  const std::size_t slices = data.size() / period;

  // The score is the energy fraction explained by the ER scaling model
  // itself: pick the highest-amplitude slice as the pattern, scale every
  // other slice by its value at the pattern's extremum index, and
  // measure the residual.  1.0 = perfect pattern repetition.  Unlike a
  // per-slice correlation this cannot be gamed by degenerate short
  // slices, and period *multiples* score low (a double-length slice is
  // not a scalar multiple of another double-length slice).
  std::size_t ref = 0, ext_index = 0;
  double ref_amp = -1.0;
  std::vector<double> amps(slices, 0.0);
  for (std::size_t s = 0; s < slices; ++s) {
    for (std::size_t i = 0; i < period; ++i) {
      const double a = std::abs(data[s * period + i]);
      amps[s] = std::max(amps[s], a);
      if (a > ref_amp) {
        ref_amp = a;
        ref = s;
        ext_index = i;
      }
    }
  }
  if (ref_amp <= 0.0) return 0.0;
  const auto pattern = data.subspan(ref * period, period);

  double residual = 0.0, energy = 0.0;
  std::size_t counted = 0;
  for (std::size_t s = 0; s < slices; ++s) {
    if (s == ref || amps[s] < 1e-3 * ref_amp) continue;
    ++counted;
    const auto slice = data.subspan(s * period, period);
    const double scale = slice[ext_index] / pattern[ext_index];
    for (std::size_t i = 0; i < period; ++i) {
      const double r = slice[i] - scale * pattern[i];
      residual += r * r;
      energy += slice[i] * slice[i];
    }
  }
  // A period with no comparable slices is unsupported, not perfect.
  if (counted == 0 || energy <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - std::sqrt(residual / energy));
}

std::vector<PeriodCandidate> rank_periods(std::span<const double> data,
                                          std::size_t min_period,
                                          std::size_t max_period) {
  std::vector<PeriodCandidate> out;
  for (std::size_t p = std::max<std::size_t>(2, min_period);
       p <= max_period && p * 2 <= data.size(); ++p) {
    if (data.size() % p != 0) continue;
    out.push_back({p, score_period(data, p)});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PeriodCandidate& a, const PeriodCandidate& b) {
                     return a.score > b.score;
                   });
  return out;
}

BlockSpec suggest_block_spec(std::span<const double> data,
                             std::size_t max_period, double min_score) {
  const auto ranked = rank_periods(data, 2, max_period);
  for (const auto& cand : ranked) {
    if (cand.score < min_score) break;
    // Prefer the *smallest* period among near-equal scores: a multiple
    // k*p of a true period p scores just as well but wastes pattern
    // storage.  `ranked` is sorted by score, so scan the near-tie group.
    std::size_t best = cand.period;
    for (const auto& other : ranked) {
      if (other.score >= cand.score - 0.01 && other.period < best &&
          cand.period % other.period == 0) {
        best = other.period;
      }
    }
    return BlockSpec{data.size() / best, best};
  }
  return BlockSpec{1, data.size()};
}

}  // namespace pastri
