// capi_detail.h - Internal helpers shared by the TUs that implement the
// C API (core/pastri_capi.cpp, io/store_capi.cpp).  Not installed, not
// part of the public surface: C callers see only pastri_capi.h.
//
// Every C entry point funnels failures through fail() so the
// thread-local message behind pastri_last_error_message() and the
// status-code contract ("no exception ever crosses the boundary") are
// implemented in exactly one place.
#pragma once

#include "core/pastri.h"
#include "core/pastri_capi.h"

namespace pastri::capi {

/// Record `what` as the calling thread's last error message and return
/// `code`.  noexcept: an allocation failure while storing the message
/// loses the text but never the status.
pastri_status fail(pastri_status code, const char* what) noexcept;

/// Translate the C parameter struct; throws std::invalid_argument on
/// out-of-range enum fields (dict_mode).
pastri::Params to_cpp_params(const pastri_params& p);

/// The calling thread's last error message (backs
/// pastri_last_error_message).
const char* last_error_cstr();

}  // namespace pastri::capi
