// stream.cpp - Streaming drivers: StreamWriter (batch-parallel encode,
// in-order serialization, O(batch) memory) and StreamConsumer (chunked
// pull decode), plus the byte transports and the original buffer-at-once
// wrappers.  The one-shot compress/decompress in compressor.cpp are thin
// wrappers over these, which keeps the two paths bit-identical.
#include "core/stream.h"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "core/pipeline.h"

#include "bitio/varint.h"
#include "core/format_detail.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri {

// ---- Byte transport -----------------------------------------------------

void ByteSink::patch(std::size_t, std::span<const std::uint8_t>) {
  throw std::logic_error("ByteSink: this sink does not support patch()");
}

void VectorSink::write(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void VectorSink::patch(std::size_t offset,
                       std::span<const std::uint8_t> bytes) {
  if (offset + bytes.size() < offset || offset + bytes.size() > buf_.size()) {
    throw std::logic_error("VectorSink: patch outside written bytes");
  }
  std::memcpy(buf_.data() + offset, bytes.data(), bytes.size());
}

OstreamSink::OstreamSink(std::ostream& os) : os_(os) {
  const auto pos = os_.tellp();
  seekable_ = pos != std::ostream::pos_type(-1);
  base_ = seekable_ ? static_cast<std::size_t>(pos) : 0;
}

OstreamSink::OstreamSink(std::ostream& os, std::size_t container_base)
    : os_(os), base_(container_base) {
  seekable_ = os_.tellp() != std::ostream::pos_type(-1);
}

void OstreamSink::write(std::span<const std::uint8_t> bytes) {
  os_.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!os_) throw std::runtime_error("OstreamSink: write failed");
}

void OstreamSink::patch(std::size_t offset,
                        std::span<const std::uint8_t> bytes) {
  if (!seekable_) {
    throw std::logic_error("OstreamSink: stream is not seekable");
  }
  const auto end = os_.tellp();
  os_.seekp(static_cast<std::streamoff>(base_ + offset));
  os_.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  os_.seekp(end);
  if (!os_) throw std::runtime_error("OstreamSink: patch failed");
}

// ---- AsyncSink ----------------------------------------------------------

struct AsyncSink::Impl {
  /// One unit of drain-thread work.  Write ops carry coalesced bytes;
  /// patch ops carry the offset.  Order on the queue == order applied,
  /// which is what makes a queued patch meaningful: by the time it runs,
  /// every byte it overwrites has already reached the inner sink.
  struct Op {
    enum class Kind { kWrite, kPatch } kind = Kind::kWrite;
    std::size_t offset = 0;  // patch only
    std::vector<std::uint8_t> bytes;
  };

  explicit Impl(ByteSink& inner, const Options& opt)
      : inner(inner),
        chunk_bytes(std::max<std::size_t>(1, opt.chunk_bytes)),
        queue(opt.queue_depth) {
    pending.reserve(chunk_bytes);
    worker = std::thread([this] { drain_(); });
  }

  ~Impl() {
    try {
      flush_pending_();  // best effort; a drain error is already lost
    } catch (...) {
    }
    queue.close();
    if (worker.joinable()) worker.join();
  }

  void enqueue_(Op op) {
    rethrow_();
    ++enqueued;
    if (!queue.push(std::move(op))) {
      // Closed mid-run: only happens after a drain error set `error`.
      --enqueued;
      rethrow_();
      throw std::logic_error("AsyncSink: sink already shut down");
    }
  }

  void flush_pending_() {
    if (pending.empty()) return;
    Op op;
    op.kind = Op::Kind::kWrite;
    op.bytes = std::move(pending);
    pending = {};
    pending.reserve(chunk_bytes);
    enqueue_(std::move(op));
  }

  /// Wait until applied == enqueued, then surface any drain error.
  void barrier_() {
    std::unique_lock<std::mutex> lk(done_mu);
    done_cv.wait(lk, [&] {
      return applied.load(std::memory_order_acquire) ==
             enqueued;
    });
    lk.unlock();
    rethrow_();
  }

  void rethrow_() {
    if (!error_set.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lk(error_mu);
    if (error) std::rethrow_exception(error);
  }

  void drain_() {
    Op op;
    while (queue.pop(op)) {
      if (!error_set.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
          if (op.kind == Op::Kind::kWrite) {
            inner.write(op.bytes);
          } else {
            inner.patch(op.offset, op.bytes);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lk(error_mu);
            error = std::current_exception();
          }
          error_set.store(true, std::memory_order_release);
          // Keep draining (dropping ops) so a blocked writer wakes up
          // and sees the error instead of deadlocking on a full queue.
        }
        apply_ns_total += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
      {
        std::lock_guard<std::mutex> lk(done_mu);
        applied.fetch_add(1, std::memory_order_release);
      }
      done_cv.notify_all();
    }
  }

  ByteSink& inner;
  const std::size_t chunk_bytes;
  BoundedQueue<Op> queue;
  std::vector<std::uint8_t> pending;  // writer-side coalescing buffer
  std::size_t enqueued = 0;           // writer thread only
  std::atomic<std::size_t> applied{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex error_mu;
  std::exception_ptr error;
  std::atomic<bool> error_set{false};
  std::uint64_t apply_ns_total = 0;  // drain thread; read after flush()
  std::thread worker;
};

AsyncSink::AsyncSink(ByteSink& inner) : AsyncSink(inner, Options{}) {}

AsyncSink::AsyncSink(ByteSink& inner, const Options& opt)
    : impl_(std::make_unique<Impl>(inner, opt)) {}

AsyncSink::~AsyncSink() = default;

void AsyncSink::write(std::span<const std::uint8_t> bytes) {
  impl_->rethrow_();
  impl_->pending.insert(impl_->pending.end(), bytes.begin(), bytes.end());
  if (impl_->pending.size() >= impl_->chunk_bytes) impl_->flush_pending_();
}

bool AsyncSink::can_patch() const { return impl_->inner.can_patch(); }

void AsyncSink::patch(std::size_t offset,
                      std::span<const std::uint8_t> bytes) {
  // Flush the coalescing buffer first so the patch lands after the
  // bytes it targets, exactly as it would on the inner sink directly.
  impl_->flush_pending_();
  Impl::Op op;
  op.kind = Impl::Op::Kind::kPatch;
  op.offset = offset;
  op.bytes.assign(bytes.begin(), bytes.end());
  impl_->enqueue_(std::move(op));
}

void AsyncSink::flush() {
  impl_->flush_pending_();
  impl_->barrier_();
}

std::uint64_t AsyncSink::backpressure_wait_ns() const {
  return impl_->queue.producer_wait_ns();
}

std::uint64_t AsyncSink::idle_wait_ns() const {
  return impl_->queue.consumer_wait_ns();
}

std::uint64_t AsyncSink::apply_ns() const { return impl_->apply_ns_total; }

std::size_t SpanSource::read(std::span<std::uint8_t> out) {
  const std::size_t n = std::min(out.size(), data_.size() - pos_);
  if (n > 0) std::memcpy(out.data(), data_.data() + pos_, n);
  pos_ += n;
  return n;
}

std::size_t IstreamSource::read(std::span<std::uint8_t> out) {
  is_.read(reinterpret_cast<char*>(out.data()),
           static_cast<std::streamsize>(out.size()));
  return static_cast<std::size_t>(is_.gcount());
}

// ---- StreamWriter -------------------------------------------------------

namespace {

/// Blocks per batch: enough to occupy every worker, capped so the raw
/// staging buffer stays a few MB however large the blocks are.
std::size_t auto_batch_blocks(const BlockSpec& spec, int num_threads) {
  const std::size_t bs = std::max<std::size_t>(1, spec.block_size());
  const std::size_t want = std::max<std::size_t>(
      64, 16 * static_cast<std::size_t>(num_threads));
  const std::size_t mem_cap =
      std::max<std::size_t>(1, (std::size_t{8} << 20) / (bs * sizeof(double)));
  return std::min(want, mem_cap);
}

/// Batch-pipeline telemetry (obs/metric_names.h).  One update per batch,
/// not per block, so the cost is invisible next to the encode itself.
struct StreamMetrics {
  obs::Histogram encode_batch_ns =
      obs::registry().histogram(obs::kStreamEncodeBatchNs);
  obs::Histogram decode_batch_ns =
      obs::registry().histogram(obs::kStreamDecodeBatchNs);
  obs::Histogram encode_batch_blocks =
      obs::registry().histogram(obs::kStreamEncodeBatchBlocks);
  obs::Histogram decode_batch_blocks =
      obs::registry().histogram(obs::kStreamDecodeBatchBlocks);
  obs::Counter raw_bytes_in = obs::registry().counter(obs::kStreamRawBytesIn);
  obs::Counter compressed_bytes_out =
      obs::registry().counter(obs::kStreamCompressedBytesOut);
  obs::Counter compressed_bytes_in =
      obs::registry().counter(obs::kStreamCompressedBytesIn);
  obs::Counter raw_bytes_out =
      obs::registry().counter(obs::kStreamRawBytesOut);
  obs::Gauge compression_ratio =
      obs::registry().gauge(obs::kStreamCompressionRatio);
  obs::Gauge dict_bytes = obs::registry().gauge(obs::kCoreDictBytes);
};

const StreamMetrics& stream_metrics() {
  static const StreamMetrics m;
  return m;
}

/// Add the per-block counters produced by compress_block (the size
/// totals are maintained by the writer itself).
void merge_block_stats(Stats& into, const Stats& from) {
  into.pattern_bits += from.pattern_bits;
  into.scale_bits += from.scale_bits;
  into.ecq_bits += from.ecq_bits;
  into.header_bits += from.header_bits;
  into.sparse_blocks += from.sparse_blocks;
  into.num_outliers += from.num_outliers;
  into.dict_bits += from.dict_bits;
  into.dict_entries += from.dict_entries;
  into.dict_exact_refs += from.dict_exact_refs;
  into.dict_delta_refs += from.dict_delta_refs;
  for (int t = 0; t < 4; ++t) into.blocks_by_type[t] += from.blocks_by_type[t];
}

}  // namespace

/// Per-block slots of the dictionary pipeline, reused batch to batch.
struct StreamWriter::DictBatch {
  std::vector<QuantizedBlock> qbs;
  std::vector<detail::BlockPlan> plans;
  std::vector<PatternDecision> decs;
};

StreamWriter::StreamWriter(ByteSink& sink, const BlockSpec& spec,
                           const Params& params,
                           const StreamWriterOptions& opt)
    : sink_(sink),
      spec_(spec),
      params_(params),
      expected_blocks_(opt.expected_blocks) {
  owned_ctx_ = std::make_unique<CodecContext>(spec_, params_);  // validates
  ctx_ = owned_ctx_.get();
  batch_capacity_ = opt.batch_blocks;
  init_container_();
}

StreamWriter::StreamWriter(ByteSink& sink, CodecContext& ctx,
                           const StreamWriterOptions& opt)
    : sink_(sink),
      spec_(ctx.spec()),
      params_(ctx.params()),
      expected_blocks_(opt.expected_blocks),
      ctx_(&ctx) {
  ctx_->begin_container();
  batch_capacity_ = opt.batch_blocks;
  init_container_();
}

void StreamWriter::init_container_() {
  patch_header_ = expected_blocks_ == kUnknownBlockCount;
  if (patch_header_ && !sink_.can_patch()) {
    throw std::logic_error(
        "StreamWriter: sink cannot patch the header; declare "
        "expected_blocks up-front for non-seekable sinks");
  }
  const int nthreads = detail::resolve_threads(params_.num_threads);
  if (batch_capacity_ == 0) {
    batch_capacity_ = auto_batch_blocks(spec_, nthreads);
  }
  batch_.resize(batch_capacity_ * spec_.block_size());
  if (ctx_->dict_enabled()) {
    dict_batch_ = std::make_unique<DictBatch>();
    dict_batch_->qbs.resize(batch_capacity_);
    dict_batch_->plans.resize(batch_capacity_);
    dict_batch_->decs.resize(batch_capacity_);
  }

  bitio::BitWriter w;
  detail::write_global_header(
      w, spec_, params_, patch_header_ ? 0 : expected_blocks_,
      ctx_->dict_enabled() ? detail::kVersionDict : detail::kVersion);
  const auto header = w.take();
  sink_.write(header);
  bytes_emitted_ = header.size();
  stats_.header_bits = 8 * header.size();
}

StreamWriter::StreamWriter(ByteSink& sink, const StreamInfo& info,
                           const Params& params, const BlockIndex& index,
                           const StreamWriterOptions& opt)
    : sink_(sink), spec_(info.spec), params_(params) {
  spec_.validate();
  params_.validate();
  if (info.version < kStreamVersionIndexed) {
    throw std::runtime_error(
        "StreamWriter: cannot append to an unindexed (v2) container");
  }
  if (info.version >= kStreamVersionDict) {
    throw std::runtime_error(
        "StreamWriter: cannot append to a dictionary (v4) container; its "
        "dictionary was sealed at finish()");
  }
  if (params_.dict == DictMode::On) {
    throw std::invalid_argument(
        "StreamWriter: cannot enable the dictionary when appending to a "
        "v3 container");
  }
  params_.dict = DictMode::Off;  // Auto resolves off on append
  if (params_.error_bound != info.error_bound ||
      params_.bound_mode != info.bound_mode ||
      params_.metric != info.metric || params_.tree != info.tree) {
    throw std::invalid_argument(
        "StreamWriter: append params disagree with the container header");
  }
  if (index.num_blocks() != info.num_blocks) {
    throw std::runtime_error(
        "StreamWriter: index block count disagrees with the header");
  }
  if (!sink_.can_patch()) {
    throw std::logic_error(
        "StreamWriter: appending requires a patchable sink (the header "
        "block count changes at finish)");
  }
  expected_blocks_ = kUnknownBlockCount;
  patch_header_ = true;
  resumed_blocks_ = index.num_blocks();
  sizes_.reserve(resumed_blocks_);
  for (std::size_t b = 0; b < resumed_blocks_; ++b) {
    sizes_.push_back(index.extent(b).length);
  }
  bytes_emitted_ = index.num_blocks() == 0 ? detail::kGlobalHeaderBytes
                                           : index.payload_end();
  owned_ctx_ = std::make_unique<CodecContext>(spec_, params_);
  ctx_ = owned_ctx_.get();
  const int nthreads = detail::resolve_threads(params_.num_threads);
  batch_capacity_ =
      opt.batch_blocks ? opt.batch_blocks : auto_batch_blocks(spec_, nthreads);
  batch_.resize(batch_capacity_ * spec_.block_size());
  stats_.num_blocks = resumed_blocks_;
}

StreamWriter::~StreamWriter() = default;

std::size_t StreamWriter::blocks_appended() const {
  return sizes_.size() + batch_count_;
}

void StreamWriter::put_block(std::span<const double> block) {
  if (finished_) {
    throw std::logic_error("StreamWriter: put after finish()");
  }
  const std::size_t bs = spec_.block_size();
  if (block.size() != bs) {
    throw std::invalid_argument("StreamWriter: block size mismatch");
  }
  std::memcpy(batch_.data() + batch_count_ * bs, block.data(),
              bs * sizeof(double));
  ++batch_count_;
  stats_.input_bytes += bs * sizeof(double);
  stats_.num_blocks = sizes_.size() + batch_count_;
  if (batch_count_ == batch_capacity_) flush_batch_();
}

void StreamWriter::put_values(std::span<const double> values) {
  const std::size_t bs = spec_.block_size();
  if (!tail_.empty()) {
    const std::size_t take = std::min(bs - tail_.size(), values.size());
    tail_.insert(tail_.end(), values.begin(), values.begin() + take);
    values = values.subspan(take);
    if (tail_.size() == bs) {
      put_block(tail_);
      tail_.clear();
    }
  }
  while (values.size() >= bs) {
    put_block(values.first(bs));
    values = values.subspan(bs);
  }
  if (!values.empty()) {
    if (finished_) throw std::logic_error("StreamWriter: put after finish()");
    tail_.assign(values.begin(), values.end());
  }
}

void StreamWriter::flush_batch_() {
  const std::size_t n = batch_count_;
  if (n == 0) return;
  const StreamMetrics& metrics = stream_metrics();
  obs::ScopedTimer batch_timer(metrics.encode_batch_ns);
  metrics.encode_batch_blocks.record(n);
  const std::size_t bs = spec_.block_size();
  const int nthreads = detail::resolve_threads(params_.num_threads);

  // Workers encode the staged blocks independently into their own
  // workspace (bit staging + payload arena, reused batch to batch); the
  // serializer below then writes them in append order, so the container
  // bytes cannot depend on scheduling.
  CodecWorkspace* wss = ctx_->workspaces(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    wss[t].arena.clear();   // capacity retained
    wss[t].stats = Stats{};  // merged into stats_ after the join
  }
  refs_.resize(n);
  if (dict_batch_) {
    flush_batch_dict_();
  } else {
    std::exception_ptr error;
#pragma omp parallel num_threads(nthreads)
    {
      CodecWorkspace& ws = wss[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 16)
      for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(n); ++b) {
        try {
          ws.writer.restart();
          compress_block(
              std::span<const double>(batch_).subspan(
                  static_cast<std::size_t>(b) * bs, bs),
              spec_, params_, ws.writer, &ws.stats, ws);
          const auto payload = ws.writer.finish_view();
          refs_[static_cast<std::size_t>(b)] = {
              static_cast<std::size_t>(omp_get_thread_num()),
              ws.arena.size(), payload.size()};
          ws.arena.insert(ws.arena.end(), payload.begin(), payload.end());
        } catch (...) {
#pragma omp critical(pastri_stream_writer_error)
          if (!error) error = std::current_exception();
        }
      }
    }
    if (error) std::rethrow_exception(error);
  }
  for (int t = 0; t < nthreads; ++t) {
    merge_block_stats(stats_, wss[t].stats);
  }

  std::size_t emitted = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const PayloadRef& ref = refs_[b];
    const auto payload = std::span<const std::uint8_t>(
        ctx_->workspace(ref.tid).arena).subspan(ref.off, ref.len);
    std::uint8_t varint[10];
    std::size_t width = 0;
    std::uint64_t v = payload.size();
    while (v >= 0x80) {
      varint[width++] = static_cast<std::uint8_t>((v & 0x7F) | 0x80);
      v >>= 7;
    }
    varint[width++] = static_cast<std::uint8_t>(v);
    sink_.write({varint, width});
    sink_.write(payload);
    sizes_.push_back(payload.size());
    bytes_emitted_ += width + payload.size();
    emitted += width + payload.size();
    stats_.header_bits += 8 * width;
  }
  batch_count_ = 0;
  metrics.raw_bytes_in.add(n * bs * sizeof(double));
  metrics.compressed_bytes_out.add(emitted);
  if (bytes_emitted_ > 0) {
    metrics.compression_ratio.set(
        static_cast<double>(stats_.input_bytes) /
        static_cast<double>(bytes_emitted_));
  }
}

/// Dictionary (v4) batch encode in three phases: quantize every staged
/// block in parallel, run the dictionary lookups/commits serially in
/// append order (the only stage whose state spans blocks), then
/// serialize the payloads in parallel against the now read-only
/// dictionary.  The container bytes depend only on the block sequence --
/// not on thread count or batch size -- because the decisions are made
/// in append order regardless of how the parallel phases are scheduled.
void StreamWriter::flush_batch_dict_() {
  const std::size_t n = batch_count_;
  const std::size_t bs = spec_.block_size();
  const int nthreads = detail::resolve_threads(params_.num_threads);
  DictBatch& db = *dict_batch_;

  std::exception_ptr error;
#pragma omp parallel num_threads(nthreads)
  {
    CodecWorkspace& ws =
        ctx_->workspace(static_cast<std::size_t>(omp_get_thread_num()));
#pragma omp for schedule(dynamic, 16)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(n); ++b) {
      try {
        db.plans[static_cast<std::size_t>(b)] = detail::quantize_stage(
            std::span<const double>(batch_).subspan(
                static_cast<std::size_t>(b) * bs, bs),
            spec_, params_, ws, db.qbs[static_cast<std::size_t>(b)]);
      } catch (...) {
#pragma omp critical(pastri_stream_writer_error)
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);

  for (std::size_t b = 0; b < n; ++b) {
    const std::uint64_t ordinal = ctx_->advance_ordinal();
    db.decs[b] = db.plans[b].zero
                     ? PatternDecision{}
                     : ctx_->dict().decide_and_commit(
                           db.qbs[b].pq, db.qbs[b].spec.pattern_bits,
                           ordinal);
  }

#pragma omp parallel num_threads(nthreads)
  {
    CodecWorkspace& ws =
        ctx_->workspace(static_cast<std::size_t>(omp_get_thread_num()));
#pragma omp for schedule(dynamic, 16)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(n); ++b) {
      try {
        const auto i = static_cast<std::size_t>(b);
        ws.writer.restart();
        detail::serialize_stage(spec_, params_, /*dict_stream=*/true,
                                &ctx_->dict(), &db.decs[i], db.plans[i],
                                db.qbs[i], ws.writer, &ws.stats);
        const auto payload = ws.writer.finish_view();
        refs_[i] = {static_cast<std::size_t>(omp_get_thread_num()),
                    ws.arena.size(), payload.size()};
        ws.arena.insert(ws.arena.end(), payload.begin(), payload.end());
      } catch (...) {
#pragma omp critical(pastri_stream_writer_error)
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

std::size_t StreamWriter::finish() {
  if (finished_) throw std::logic_error("StreamWriter: already finished");
  if (!tail_.empty()) {
    throw std::invalid_argument(
        "PaSTRI: data size is not a whole number of blocks");
  }
  flush_batch_();
  const std::uint64_t num_blocks = sizes_.size();
  if (expected_blocks_ != kUnknownBlockCount &&
      num_blocks != expected_blocks_) {
    throw std::runtime_error(
        "StreamWriter: appended block count differs from expected_blocks");
  }

  const BlockIndex index =
      BlockIndex::from_payload_sizes(detail::kGlobalHeaderBytes, sizes_);
  if (ctx_->dict_enabled()) {
    // v4 trailer: dictionary section, offset table, extended footer.
    // The section's bytes belong to the dictionary accounting (they only
    // exist because of it); the table and footer stay bookkeeping.
    const std::size_t dict_offset = bytes_emitted_;
    bitio::BitWriter dw;
    ctx_->dict().serialize_section(dw);
    const auto section = dw.take();
    sink_.write(section);
    bytes_emitted_ += section.size();
    stats_.dict_bits += 8 * section.size();
    stream_metrics().dict_bytes.set(static_cast<double>(section.size()));

    const std::size_t index_offset = bytes_emitted_;
    bitio::BitWriter w;
    index.serialize(w);
    detail::write_dict_footer(w, {dict_offset, index_offset, num_blocks});
    const auto tail = w.take();
    sink_.write(tail);
    bytes_emitted_ += tail.size();
    stats_.header_bits += 8 * tail.size();
  } else {
    const std::size_t index_offset = bytes_emitted_;
    bitio::BitWriter w;
    index.serialize(w);
    detail::write_index_footer(w, {index_offset, num_blocks});
    const auto tail = w.take();
    sink_.write(tail);
    bytes_emitted_ += tail.size();
    stats_.header_bits += 8 * tail.size();
  }

  // Back-fill the header block count if it was not known up-front (a
  // fresh count of zero, or an unchanged resumed count, needs no patch).
  const std::uint64_t header_field =
      patch_header_ ? resumed_blocks_ : expected_blocks_;
  if (num_blocks != header_field) {
    std::uint8_t le[8];
    std::memcpy(le, &num_blocks, 8);  // little-endian hosts only
    sink_.patch(detail::kHeaderNumBlocksOffset, le);
  }
  finished_ = true;
  stats_.num_blocks = num_blocks;
  stats_.output_bytes = bytes_emitted_;
  return bytes_emitted_;
}

// ---- StreamConsumer -----------------------------------------------------

StreamConsumer::StreamConsumer(ByteSource& source,
                               const StreamConsumerOptions& opt)
    : source_(source) {
  const std::size_t chunk =
      opt.chunk_bytes ? opt.chunk_bytes : (std::size_t{1} << 20);
  buf_.resize(std::max<std::size_t>(chunk, detail::kGlobalHeaderBytes));
  ensure_(detail::kGlobalHeaderBytes);
  bitio::BitReader r(
      std::span<const std::uint8_t>(buf_).subspan(
          pos_, detail::kGlobalHeaderBytes));
  info_ = detail::read_global_header(r);
  pos_ += detail::kGlobalHeaderBytes;
  params_ = info_.to_params();
  params_.num_threads = opt.num_threads;
  remaining_ = info_.num_blocks;
  // One context for the whole stream: for v4 it accumulates the
  // dictionary (serial prefix scan per batch); for v2/v3 it only hosts
  // the workspace pool and decodes bit-identically to the stateless path.
  ctx_ = std::make_unique<CodecContext>(info_, opt.num_threads);

  const int nthreads = detail::resolve_threads(params_.num_threads);
  batch_blocks_ = opt.batch_blocks
                      ? opt.batch_blocks
                      : auto_batch_blocks(info_.spec, nthreads);
  // Sanity cap on a single payload's declared length: a valid block
  // never exceeds ~16 bytes per value plus per-sub-block metadata, so a
  // larger length varint is corruption, not data -- reject before
  // allocating buffer space for it.
  const std::size_t bs = info_.spec.block_size();
  if (bs > (std::numeric_limits<std::size_t>::max() >> 5)) {
    max_payload_ = std::numeric_limits<std::size_t>::max();
  } else {
    max_payload_ = 16 * bs +
                   7 * (info_.spec.num_sub_blocks +
                        info_.spec.sub_block_size) +
                   64;
  }
}

void StreamConsumer::refill_() {
  if (pos_ > 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (end_ == buf_.size()) return;
  const std::size_t got =
      source_.read(std::span<std::uint8_t>(buf_).subspan(end_));
  if (got == 0) {
    eof_ = true;
    return;
  }
  end_ += got;
}

void StreamConsumer::ensure_(std::size_t n) {
  if (n > buf_.size()) {
    // One payload larger than the read chunk: compact, then grow.
    if (pos_ > 0) {
      std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
      end_ -= pos_;
      pos_ = 0;
    }
    buf_.resize(n);
  }
  while (end_ - pos_ < n && !eof_) refill_();
  if (end_ - pos_ < n) {
    throw std::runtime_error("PaSTRI: truncated stream");
  }
}

std::size_t StreamConsumer::decode_batch_(std::span<double> out,
                                          std::size_t max_blocks) {
  const StreamMetrics& metrics = stream_metrics();
  obs::ScopedTimer batch_timer(metrics.decode_batch_ns);
  // Gather whole payloads into the buffer without consuming them, so the
  // batch can be decoded in parallel straight out of the buffer.  All
  // offsets are relative to pos_, which refill_/ensure_ preserve.
  extents_.clear();  // capacity retained batch to batch
  std::size_t cur = 0;
  while (extents_.size() < max_blocks) {
    std::uint64_t len = 0;
    unsigned shift = 0;
    std::size_t i = 0;
    for (;;) {
      ensure_(cur + i + 1);
      const std::uint8_t byte = buf_[pos_ + cur + i];
      ++i;
      len |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) {
        throw std::runtime_error("PaSTRI: corrupt block length");
      }
    }
    if (len > max_payload_) {
      throw std::runtime_error("PaSTRI: corrupt block length");
    }
    ensure_(cur + i + static_cast<std::size_t>(len));
    extents_.push_back({cur + i, static_cast<std::size_t>(len)});
    cur += i + static_cast<std::size_t>(len);
  }

  const std::size_t bs = info_.spec.block_size();
  const std::size_t n = extents_.size();
  const int nthreads = detail::resolve_threads(params_.num_threads);
  ctx_->workspaces(static_cast<std::size_t>(nthreads));

  // v4: absorb the pattern prefixes serially in block order BEFORE the
  // parallel decode, so every dictionary entry a block may reference
  // (defined by any earlier block, this batch included) exists by the
  // time the workers run and the context is read-only below.
  if (ctx_->dict_enabled()) {
    const std::uint64_t base = info_.num_blocks - remaining_;
    for (std::size_t b = 0; b < n; ++b) {
      const Extent& e = extents_[b];
      ctx_->absorb_payload_prefix(
          std::span<const std::uint8_t>(buf_).subspan(pos_ + e.off, e.len),
          base + b);
    }
  }

  const CodecContext& ctx = *ctx_;
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic, 16) num_threads(nthreads) \
    shared(error) if (n > 1)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(n); ++b) {
    try {
      const Extent& e = extents_[static_cast<std::size_t>(b)];
      bitio::BitReader r(std::span<const std::uint8_t>(buf_).subspan(
          pos_ + e.off, e.len));
      decompress_block(
          ctx, r, out.subspan(static_cast<std::size_t>(b) * bs, bs),
          ctx_->workspace(static_cast<std::size_t>(omp_get_thread_num())));
    } catch (...) {
#pragma omp critical(pastri_stream_consumer_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
  pos_ += cur;
  remaining_ -= n;
  metrics.decode_batch_blocks.record(n);
  metrics.compressed_bytes_in.add(cur);
  metrics.raw_bytes_out.add(n * bs * sizeof(double));
  return n;
}

std::size_t StreamConsumer::read_blocks(std::span<double> out) {
  const std::size_t bs = info_.spec.block_size();
  const std::size_t want = std::min(out.size() / bs, remaining_);
  std::size_t done = 0;
  while (done < want) {
    done += decode_batch_(out.subspan(done * bs),
                          std::min(batch_blocks_, want - done));
  }
  return done;
}

std::size_t StreamConsumer::read_values(std::span<double> out) {
  const std::size_t bs = info_.spec.block_size();
  std::size_t written = 0;
  if (carry_pos_ < carry_.size()) {
    const std::size_t take =
        std::min(out.size(), carry_.size() - carry_pos_);
    std::memcpy(out.data(), carry_.data() + carry_pos_,
                take * sizeof(double));
    carry_pos_ += take;
    written += take;
  }
  const std::size_t aligned = ((out.size() - written) / bs) * bs;
  if (aligned > 0 && remaining_ > 0) {
    written += bs * read_blocks(out.subspan(written, aligned));
  }
  if (written < out.size() && remaining_ > 0) {
    carry_.resize(bs);
    carry_pos_ = 0;
    read_blocks(carry_);
    const std::size_t take = out.size() - written;
    std::memcpy(out.data() + written, carry_.data(),
                take * sizeof(double));
    carry_pos_ = take;
    written += take;
  }
  return written;
}

// ---- Buffer-at-once wrappers -------------------------------------------

StreamCompressor::StreamCompressor(const BlockSpec& spec,
                                   const Params& params)
    : spec_(spec), params_(params) {
  spec_.validate();
  params_.validate();
}

StreamCompressor::~StreamCompressor() = default;

void StreamCompressor::ensure_writer_() {
  if (writer_) return;
  sink_ = std::make_unique<VectorSink>();
  writer_ = std::make_unique<StreamWriter>(*sink_, spec_, params_);
  stats_ = Stats{};
}

void StreamCompressor::append_block(std::span<const double> block) {
  ensure_writer_();
  writer_->put_block(block);
}

std::size_t StreamCompressor::blocks_appended() const {
  return writer_ ? writer_->blocks_appended() : 0;
}

const Stats& StreamCompressor::stats() const {
  return writer_ ? writer_->stats() : stats_;
}

std::vector<std::uint8_t> StreamCompressor::finish() {
  ensure_writer_();
  writer_->finish();
  stats_ = writer_->stats();
  writer_.reset();
  auto out = sink_->take();
  sink_.reset();
  return out;
}

StreamDecompressor::StreamDecompressor(std::span<const std::uint8_t> stream)
    : source_(std::make_unique<SpanSource>(stream)), consumer_(*source_) {}

bool StreamDecompressor::next_block(std::span<double> out) {
  if (out.size() != consumer_.info().spec.block_size()) {
    throw std::invalid_argument("StreamDecompressor: block size mismatch");
  }
  if (consumer_.blocks_remaining() == 0) return false;
  return consumer_.read_blocks(out) == 1;
}

}  // namespace pastri
