#include "core/stream.h"

#include "bitio/varint.h"
#include "core/format_detail.h"

namespace pastri {

StreamCompressor::StreamCompressor(const BlockSpec& spec,
                                   const Params& params)
    : spec_(spec), params_(params) {
  spec_.validate();
  params_.validate();
}

void StreamCompressor::append_block(std::span<const double> block) {
  if (block.size() != spec_.block_size()) {
    throw std::invalid_argument("StreamCompressor: block size mismatch");
  }
  bitio::BitWriter w;
  compress_block(block, spec_, params_, w, &stats_);
  payloads_.push_back(w.take());
  stats_.num_blocks = payloads_.size();
  stats_.input_bytes += block.size() * sizeof(double);
}

std::vector<std::uint8_t> StreamCompressor::finish() {
  std::vector<std::uint8_t> out =
      detail::assemble_container(spec_, params_, payloads_, &stats_);
  payloads_.clear();
  stats_.output_bytes += out.size();
  return out;
}

StreamDecompressor::StreamDecompressor(
    std::span<const std::uint8_t> stream)
    : stream_(stream) {
  bitio::BitReader r(stream_);
  info_ = detail::read_global_header(r);
  params_ = info_.to_params();
  remaining_ = info_.num_blocks;
  byte_pos_ = r.bit_position() / 8;
}

bool StreamDecompressor::next_block(std::span<double> out) {
  if (remaining_ == 0) return false;
  if (out.size() != info_.spec.block_size()) {
    throw std::invalid_argument("StreamDecompressor: block size mismatch");
  }
  bitio::BitReader r(stream_.subspan(byte_pos_));
  const std::uint64_t len = bitio::read_varint(r);
  const std::size_t payload_start = byte_pos_ + r.bit_position() / 8;
  if (payload_start + len > stream_.size()) {
    throw std::runtime_error("PaSTRI: truncated stream");
  }
  bitio::BitReader payload(stream_.subspan(payload_start, len));
  decompress_block(payload, info_.spec, params_, out);
  byte_pos_ = payload_start + len;
  --remaining_;
  return true;
}

}  // namespace pastri
