// simd.h - Vectorized encode kernels with runtime CPU dispatch.
//
// The encode hot path (extremum/metric scans, fused
// quantize+residual+ECQ, and the ECQ class counts that feed
// plan_block's dense-size computation) is expressed as a small table of
// kernel functions.  Two backends implement the table:
//
//   * scalar -- portable loops, bit-for-bit the pre-SIMD behaviour.
//   * avx2   -- 4-lane double kernels, compiled with -mavx2 in its own
//               TU and only ever selected when CPUID reports AVX2.
//
// Every AVX2 kernel is restricted to lanewise IEEE operations in the
// same order the scalar code performs them (no FMA contraction, no
// reassociated sums, round-half-away-from-zero reproduced exactly), so
// the two backends produce identical bytes; the SimdDiff suite pins
// this and the golden format digest is backend-independent.
//
// Dispatch happens once, at first use: CPUID picks the widest supported
// backend, overridable with PASTRI_SIMD=scalar|avx2 for testing and
// triage (an unsupported request falls back to scalar).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pastri::simd {

enum class Backend : std::uint8_t {
  Scalar = 0,
  Avx2 = 1,
};

const char* backend_name(Backend b);

/// Per-block ECQ statistics accumulated by the fused residual kernel.
/// `max_magnitude` is over nonzero codes only (0 when the block has no
/// outliers); the class counts are exactly the dense-ECQ width
/// histogram plan_block needs for trees 1/2/3/5, whose code lengths
/// depend only on the symbol class {0, +1, -1, escape}.
struct EcqStats {
  std::uint64_t max_magnitude = 0;
  std::size_t num_outliers = 0;  ///< nonzero codes
  std::size_t num_plus1 = 0;
  std::size_t num_minus1 = 0;
};

/// The kernel table.  All pointers are non-null in a selected table.
struct EncodeKernels {
  /// max over |x[i]| starting from 0.0, NaNs ignored (the scalar
  /// `if (a > m) m = a` semantics).
  double (*abs_max)(const double* x, std::size_t n);

  /// First index i with |x[i]| == m; n if no element matches.
  std::size_t (*find_first_abs_eq)(const double* x, std::size_t n,
                                   double m);

  /// True iff some |x[i]| > bound (the absolute-mode zero-block probe;
  /// early-exits like the scalar loop).
  bool (*any_abs_above)(const double* x, std::size_t n, double bound);

  /// q[i] = clamp(round_half_away(x[i] / binsize), nbits two's
  /// complement); recon[i] = double(q[i]) * recon_binsize.  Division --
  /// not multiplication by a reciprocal -- and llround's
  /// round-half-away-from-zero are preserved exactly.
  void (*quantize_signed)(const double* x, std::size_t n, double binsize,
                          unsigned nbits, double recon_binsize,
                          std::int64_t* q, double* recon);

  /// Fused residual + ECQ pass: for every sub-block j and local index i,
  ///   ecq[j*sbs+i] = round_half_away((block[j*sbs+i]
  ///                                   - s_hat[j] * p_hat[i]) / binsize)
  /// (saturating like the scalar round_to_i64), while accumulating the
  /// EcqStats class counts in the same pass.
  void (*ecq_residual)(const double* block, std::size_t nsb,
                       std::size_t sbs, const double* p_hat,
                       const double* s_hat, double binsize,
                       std::int64_t* ecq, EcqStats* stats);
};

/// The active kernel table (selected on first call; see file comment).
const EncodeKernels& encode_kernels();

/// Backend that `encode_kernels()` currently dispatches to.
Backend active_backend();

/// True iff this CPU can run backend `b`.
bool backend_supported(Backend b);

/// Testing/triage hook: force a backend for the whole process.  An
/// unsupported backend silently falls back to scalar (same policy as
/// the PASTRI_SIMD environment override).  Not for use while other
/// threads are encoding.
void force_backend(Backend b);

/// Re-run the PASTRI_SIMD + CPUID selection (used by tests that change
/// the environment variable after startup).
void refresh_backend_from_env();

/// Saturating llround: round-half-away-from-zero with the same
/// saturation the scalar quantizer always applied.  The shared
/// definition both backends (and the AVX2 out-of-range lane fallback)
/// call, so pathological lanes cannot diverge between backends.
std::int64_t round_half_away_i64(double x);

// Backend tables (defined in kernels_scalar.cpp / kernels_avx2.cpp).
// kAvx2Kernels exists on every build; dispatch just never selects it
// when the CPU (or the compiler) lacks AVX2 support.
extern const EncodeKernels kScalarKernels;
extern const EncodeKernels kAvx2Kernels;

/// Whether this binary was built with the AVX2 backend compiled in.
bool avx2_compiled_in();

}  // namespace pastri::simd
