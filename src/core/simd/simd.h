// simd.h - Vectorized codec kernels with runtime CPU dispatch.
//
// Both hot paths of the block codec are expressed as small tables of
// kernel functions:
//
//   * EncodeKernels -- extremum/metric scans, fused
//     quantize+residual+ECQ, and the ECQ class counts that feed
//     plan_block's dense-size computation (PR 5).
//   * DecodeKernels -- the bulk reconstruction stage that runs after
//     the serial entropy decode: fixed-width signed-run unpack (PQ/SQ,
//     DeltaRef deviations), sparse-ECQ (index,value) record unpack and
//     scatter, dictionary base application, and the pattern x scale
//     multiply-add reconstruction.
//
// Four backends implement the tables:
//
//   * scalar -- portable loops, bit-for-bit the pre-SIMD behaviour.
//   * avx2   -- 4-lane double kernels, compiled with -mavx2 in its own
//               TU and only ever selected when CPUID reports AVX2.
//   * avx512 -- 8-lane double kernels (-mavx512f -mavx512dq), selected
//               only when CPUID reports AVX-512 F+DQ *and* XGETBV
//               confirms the OS saves ZMM state.
//   * neon   -- 2-lane double kernels for aarch64 (baseline there, so
//               no runtime probe beyond the architecture itself).
//
// Every vector kernel is restricted to lanewise IEEE operations in the
// same order the scalar code performs them (no FMA contraction, no
// reassociated sums, round-half-away-from-zero reproduced exactly), so
// all backends produce identical bytes on encode and identical doubles
// on decode; the SimdDiff suite pins this and the golden format digest
// is backend-independent.
//
// Dispatch happens once, at first use: the widest supported backend
// wins, overridable with PASTRI_SIMD=scalar|avx2|avx512|neon for
// testing and triage (an unsupported request falls back to scalar).
#pragma once

#include <cstddef>
#include <cstdint>

namespace pastri::simd {

enum class Backend : std::uint8_t {
  Scalar = 0,
  Avx2 = 1,
  Avx512 = 2,
  Neon = 3,
};

inline constexpr Backend kAllBackends[] = {Backend::Scalar, Backend::Avx2,
                                           Backend::Avx512, Backend::Neon};

const char* backend_name(Backend b);

/// Per-block ECQ statistics accumulated by the fused residual kernel.
/// `max_magnitude` is over nonzero codes only (0 when the block has no
/// outliers); the class counts are exactly the dense-ECQ width
/// histogram plan_block needs for trees 1/2/3/5, whose code lengths
/// depend only on the symbol class {0, +1, -1, escape}.
struct EcqStats {
  std::uint64_t max_magnitude = 0;
  std::size_t num_outliers = 0;  ///< nonzero codes
  std::size_t num_plus1 = 0;
  std::size_t num_minus1 = 0;
};

/// The encode kernel table.  All pointers are non-null in a selected
/// table.
struct EncodeKernels {
  /// max over |x[i]| starting from 0.0, NaNs ignored (the scalar
  /// `if (a > m) m = a` semantics).
  double (*abs_max)(const double* x, std::size_t n);

  /// First index i with |x[i]| == m; n if no element matches.
  std::size_t (*find_first_abs_eq)(const double* x, std::size_t n,
                                   double m);

  /// True iff some |x[i]| > bound (the absolute-mode zero-block probe;
  /// early-exits like the scalar loop).
  bool (*any_abs_above)(const double* x, std::size_t n, double bound);

  /// q[i] = clamp(round_half_away(x[i] / binsize), nbits two's
  /// complement); recon[i] = double(q[i]) * recon_binsize.  Division --
  /// not multiplication by a reciprocal -- and llround's
  /// round-half-away-from-zero are preserved exactly.
  void (*quantize_signed)(const double* x, std::size_t n, double binsize,
                          unsigned nbits, double recon_binsize,
                          std::int64_t* q, double* recon);

  /// Fused residual + ECQ pass: for every sub-block j and local index i,
  ///   ecq[j*sbs+i] = round_half_away((block[j*sbs+i]
  ///                                   - s_hat[j] * p_hat[i]) / binsize)
  /// (saturating like the scalar round_to_i64), while accumulating the
  /// EcqStats class counts in the same pass.
  void (*ecq_residual)(const double* block, std::size_t nsb,
                       std::size_t sbs, const double* p_hat,
                       const double* s_hat, double binsize,
                       std::int64_t* ecq, EcqStats* stats);
};

/// The decode kernel table -- the bulk stage of the two-stage decode
/// (decompress_block's serial entropy decode fills arrays, these
/// kernels turn them back into doubles).  Contract shared by every
/// kernel that touches the compressed byte stream: the caller has
/// already bounds-checked the whole run (`BitReader::require_bits`),
/// so [bitpos, bitpos + total bits) lies inside [0, 8*nbytes) -- the
/// kernels never read at or past `base + nbytes`, using tail-safe
/// partial loads for the last < 8 bytes exactly like BitReader.
struct DecodeKernels {
  /// Unpack `n` two's-complement values of `nbits` (1..57) bits each,
  /// packed LSB-first starting at absolute bit `bitpos` -- the bulk
  /// form of BitReader::read_signed_run, value-identical to it.
  void (*unpack_signed)(const std::uint8_t* base, std::size_t nbytes,
                        std::size_t bitpos, unsigned nbits,
                        std::int64_t* out, std::size_t n);

  /// Unpack `n` sparse-ECQ records of (idx_bits unsigned index,
  /// val_bits two's-complement value) packed back to back from
  /// `bitpos`.  Indices land in `idx`, values in `val`.
  void (*unpack_pairs)(const std::uint8_t* base, std::size_t nbytes,
                       std::size_t bitpos, unsigned idx_bits,
                       unsigned val_bits, std::uint64_t* idx,
                       std::int64_t* val, std::size_t n);

  /// DeltaRef apply: dst[i] += base[i] (the decoded deviations become
  /// the pattern once the dictionary base is added).
  void (*apply_base_i64)(std::int64_t* dst, const std::int64_t* base,
                         std::size_t n);

  /// Sparse-ECQ scatter: zero-fill ecq[0..n) then ecq[idx[k]] = val[k].
  /// Returns false (without storing out of range) when any index is
  /// >= n -- the caller turns that into the corrupt-stream exception.
  bool (*scatter_ecq)(std::int64_t* ecq, std::size_t n,
                      const std::uint64_t* idx, const std::int64_t* val,
                      std::size_t nol);

  /// The reconstruction multiply-add, bit-exact to the scalar
  /// dequantize loop:
  ///   p_hat[i]       = double(pq[i]) * pattern_binsize   (i < sbs)
  ///   out[j*sbs + i] = (double(sq[j]) * scale_binsize) * p_hat[i]
  ///                    + double(ecq[j*sbs+i]) * ec_binsize
  /// Every multiply and the final add are separate IEEE roundings (no
  /// FMA); int64 -> double conversions are exact-range gated (`bits` is
  /// the PQ/SQ two's-complement width, `ecb_max` bounds the ECQ width)
  /// with out-of-range lanes converted scalar.  `p_hat` is caller
  /// scratch of size sbs.
  void (*reconstruct)(const std::int64_t* pq, const std::int64_t* sq,
                      const std::int64_t* ecq, std::size_t nsb,
                      std::size_t sbs, double pattern_binsize,
                      double scale_binsize, double ec_binsize,
                      unsigned bits, unsigned ecb_max, double* p_hat,
                      double* out);
};

/// The active kernel tables (selected together on first call; see file
/// comment).
const EncodeKernels& encode_kernels();
const DecodeKernels& decode_kernels();

/// Backend that the kernel tables currently dispatch to.
Backend active_backend();

/// True iff this CPU (and OS) can run backend `b`.
bool backend_supported(Backend b);

/// Testing/triage hook: force a backend for the whole process.  An
/// unsupported backend silently falls back to scalar (same policy as
/// the PASTRI_SIMD environment override).  Not for use while other
/// threads are encoding or decoding.
void force_backend(Backend b);

/// Re-run the PASTRI_SIMD + CPUID selection (used by tests that change
/// the environment variable after startup).
void refresh_backend_from_env();

/// Saturating llround: round-half-away-from-zero with the same
/// saturation the scalar quantizer always applied.  The shared
/// definition all backends (and the vector out-of-range lane fallbacks)
/// call, so pathological lanes cannot diverge between backends.
std::int64_t round_half_away_i64(double x);

// Backend tables (defined in kernels_<backend>.cpp).  Every table
// exists on every build; dispatch just never selects a backend the CPU
// (or the compiler) lacks -- the unbuilt TUs alias the scalar tables.
extern const EncodeKernels kScalarKernels;
extern const EncodeKernels kAvx2Kernels;
extern const EncodeKernels kAvx512Kernels;
extern const EncodeKernels kNeonKernels;
extern const DecodeKernels kScalarDecode;
extern const DecodeKernels kAvx2Decode;
extern const DecodeKernels kAvx512Decode;
extern const DecodeKernels kNeonDecode;

/// Whether this binary was built with the given backend compiled in.
bool avx2_compiled_in();
bool avx512_compiled_in();
bool neon_compiled_in();

}  // namespace pastri::simd
