// kernels_avx512.cpp - AVX-512 backend of the codec kernel tables.
//
// Compiled with -mavx512f -mavx512dq -ffp-contract=off in this TU only
// (see core/CMakeLists.txt); dispatch never selects it unless CPUID
// reports AVX-512 F+DQ *and* XGETBV confirms the OS saves ZMM state
// (simd.cpp).  Same bit-identity discipline as the AVX2 backend --
// lanewise unfused IEEE ops in scalar order, division stays division,
// compare+blend max with scalar NaN semantics, round-half-away = rne
// plus an exact +-.5 correction -- but the DQ int64<->double conversion
// instructions replace the AVX2 magic-bias trick:
//
//   * vcvtqq2pd is the IEEE int64 -> double conversion for the full
//     64-bit range (round-to-nearest beyond 2^53), exactly
//     static_cast<double>, so reconstruction needs no width gate at
//     all;
//   * vcvttpd2qq truncates exactly for any integral |v| < 2^63, so the
//     double -> int64 fast path extends to the scalar saturation
//     threshold (9.2e18) instead of 2^51 -- only saturating or
//     non-finite lanes fall back to the shared scalar
//     round_half_away_i64.
//
// PASTRI_HAVE_AVX512 is defined (by the build) only when the compiler
// accepted the flags; otherwise this TU degrades to a scalar alias so
// the symbols exist and dispatch simply reports the tier unavailable.
#include "core/simd/simd.h"

#include "core/simd/kernels_common.h"

#if defined(PASTRI_HAVE_AVX512) && defined(__x86_64__)

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace pastri::simd {
namespace {

// |r| below this always round-converts exactly; at or above it the
// scalar path saturates to +-2^62 (kernels_scalar.cpp).
constexpr double kSaturateLimit = 9.2e18;

inline __m512d abs_pd(__m512d x) {
  return _mm512_abs_pd(x);
}

/// Lanewise round-half-away-from-zero (same derivation as the AVX2
/// backend: rne, then +-1 where the fraction was exactly +-.5).
inline __m512d round_half_away_pd(__m512d x) {
  const __m512d r = _mm512_roundscale_pd(
      x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m512d diff = _mm512_sub_pd(x, r);
  const __m512d sign_mask = _mm512_set1_pd(-0.0);
  const __m512d sign = _mm512_and_pd(x, sign_mask);
  const __m512d half = _mm512_or_pd(_mm512_set1_pd(0.5), sign);
  const __m512d one = _mm512_or_pd(_mm512_set1_pd(1.0), sign);
  const __mmask8 is_half = _mm512_cmp_pd_mask(diff, half, _CMP_EQ_OQ);
  return _mm512_mask_add_pd(r, is_half, r, one);
}

/// Convert a rounded vector to int64.  `quot` is the unrounded quotient
/// for the fallback; lanes with |rounded| < 9.2e18 (which excludes
/// NaN/Inf and everything the scalar path would saturate) truncate
/// exactly via vcvttpd2qq, the rest go through the shared scalar path.
inline __m512i to_i64(__m512d rounded, __m512d quot) {
  const __mmask8 fast = _mm512_cmp_pd_mask(
      abs_pd(rounded), _mm512_set1_pd(kSaturateLimit), _CMP_LT_OQ);
  __m512i iv = _mm512_cvttpd_epi64(rounded);
  if (fast != 0xFF) [[unlikely]] {
    alignas(64) double q[8];
    alignas(64) std::int64_t v[8];
    _mm512_store_pd(q, quot);
    _mm512_store_si512(v, iv);
    for (int lane = 0; lane < 8; ++lane) {
      if (!(fast & (1 << lane))) v[lane] = round_half_away_i64(q[lane]);
    }
    iv = _mm512_load_si512(v);
  }
  return iv;
}

double abs_max_avx512(const double* x, std::size_t n) {
  __m512d m = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d a = abs_pd(_mm512_loadu_pd(x + i));
    // compare+blend, not vmaxpd: NaN never overwrites the accumulator,
    // matching the scalar `if (a > m) m = a`.
    const __mmask8 gt = _mm512_cmp_pd_mask(a, m, _CMP_GT_OQ);
    m = _mm512_mask_blend_pd(gt, m, a);
  }
  alignas(64) double lanes[8];
  _mm512_store_pd(lanes, m);
  double best = 0.0;
  for (double lane : lanes) {
    if (lane > best) best = lane;
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a > best) best = a;
  }
  return best;
}

std::size_t find_first_abs_eq_avx512(const double* x, std::size_t n,
                                     double m) {
  const __m512d target = _mm512_set1_pd(m);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d a = abs_pd(_mm512_loadu_pd(x + i));
    const __mmask8 hit = _mm512_cmp_pd_mask(a, target, _CMP_EQ_OQ);
    if (hit != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(
                     static_cast<unsigned>(hit)));
    }
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a == m) return i;
  }
  return n;
}

bool any_abs_above_avx512(const double* x, std::size_t n, double bound) {
  const __m512d b = _mm512_set1_pd(bound);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d a = abs_pd(_mm512_loadu_pd(x + i));
    if (_mm512_cmp_pd_mask(a, b, _CMP_GT_OQ) != 0) return true;
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a > bound) return true;
  }
  return false;
}

void quantize_signed_avx512(const double* x, std::size_t n, double binsize,
                            unsigned nbits, double recon_binsize,
                            std::int64_t* q, double* recon) {
  const __m512d bin = _mm512_set1_pd(binsize);
  const __m512d rb = _mm512_set1_pd(recon_binsize);
  const std::int64_t hi_s = (std::int64_t{1} << (nbits - 1)) - 1;
  const std::int64_t lo_s = -(std::int64_t{1} << (nbits - 1));
  const __m512i hi = _mm512_set1_epi64(hi_s);
  const __m512i lo = _mm512_set1_epi64(lo_s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d quot = _mm512_div_pd(_mm512_loadu_pd(x + i), bin);
    __m512i iv = to_i64(round_half_away_pd(quot), quot);
    iv = _mm512_min_epi64(iv, hi);
    iv = _mm512_max_epi64(iv, lo);
    _mm512_storeu_si512(q + i, iv);
    // vcvtqq2pd == static_cast<double> for every clamped value; no
    // width gate needed (unlike the AVX2 magic-bias recon).
    _mm512_storeu_pd(recon + i,
                     _mm512_mul_pd(_mm512_cvtepi64_pd(iv), rb));
  }
  for (; i < n; ++i) {
    std::int64_t v = round_half_away_i64(x[i] / binsize);
    v = v < lo_s ? lo_s : (v > hi_s ? hi_s : v);
    q[i] = v;
    recon[i] = static_cast<double>(v) * recon_binsize;
  }
}

void ecq_residual_avx512(const double* block, std::size_t nsb,
                         std::size_t sbs, const double* p_hat,
                         const double* s_hat, double binsize,
                         std::int64_t* ecq, EcqStats* stats) {
  const __m512d bin = _mm512_set1_pd(binsize);
  const __m512i zero = _mm512_setzero_si512();
  const __m512i plus1 = _mm512_set1_epi64(1);
  const __m512i minus1 = _mm512_set1_epi64(-1);
  __m512i max_mag = _mm512_setzero_si512();
  std::size_t zeros = 0;
  EcqStats st;

  for (std::size_t j = 0; j < nsb; ++j) {
    const double s = s_hat[j];
    const __m512d sv = _mm512_set1_pd(s);
    const double* row = block + j * sbs;
    std::int64_t* out = ecq + j * sbs;
    std::size_t i = 0;
    for (; i + 8 <= sbs; i += 8) {
      // mul then sub then div: the scalar op sequence, never an FMA.
      const __m512d approx = _mm512_mul_pd(sv, _mm512_loadu_pd(p_hat + i));
      const __m512d diff = _mm512_sub_pd(_mm512_loadu_pd(row + i), approx);
      const __m512d quot = _mm512_div_pd(diff, bin);
      const __m512i e = to_i64(round_half_away_pd(quot), quot);
      _mm512_storeu_si512(out + i, e);
      // Mask popcounts replace the AVX2 per-lane counter vectors.
      zeros += static_cast<unsigned>(std::popcount(
          static_cast<unsigned>(_mm512_cmpeq_epi64_mask(e, zero))));
      st.num_plus1 += static_cast<unsigned>(std::popcount(
          static_cast<unsigned>(_mm512_cmpeq_epi64_mask(e, plus1))));
      st.num_minus1 += static_cast<unsigned>(std::popcount(
          static_cast<unsigned>(_mm512_cmpeq_epi64_mask(e, minus1))));
      // |INT64_MIN| reads as 2^63 unsigned, exactly the scalar mag.
      max_mag = _mm512_max_epu64(max_mag, _mm512_abs_epi64(e));
    }
    for (; i < sbs; ++i) {
      const double approx = s * p_hat[i];
      const std::int64_t e =
          round_half_away_i64((row[i] - approx) / binsize);
      out[i] = e;
      if (e == 0) {
        ++zeros;
      } else {
        const std::uint64_t mag =
            e > 0 ? static_cast<std::uint64_t>(e)
                  : static_cast<std::uint64_t>(-(e + 1)) + 1;
        if (mag > st.max_magnitude) st.max_magnitude = mag;
        st.num_plus1 += e == 1;
        st.num_minus1 += e == -1;
      }
    }
  }

  st.num_outliers = nsb * sbs - zeros;
  const std::uint64_t vec_mag = _mm512_reduce_max_epu64(max_mag);
  if (vec_mag > st.max_magnitude) st.max_magnitude = vec_mag;
  *stats = st;
}

// ---- Decode kernels ----------------------------------------------------

/// See the AVX2 twin: fields whose word load stays inside the payload
/// (position <= 8*nbytes - 57) can be gathered; the rest take the
/// scalar tail.
inline std::size_t gather_safe_count(std::size_t nbytes, std::size_t bitpos,
                                     unsigned stride, std::size_t n) {
  const std::size_t total = 8 * nbytes;
  if (total < bitpos + 57) return 0;
  const std::size_t k = (total - 57 - bitpos) / stride + 1;
  return k < n ? k : n;
}

inline __m512i lane_offsets(std::size_t bitpos, unsigned stride) {
  const __m512i mult = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  return _mm512_add_epi64(
      _mm512_set1_epi64(static_cast<long long>(bitpos)),
      _mm512_mullo_epi64(mult, _mm512_set1_epi64(stride)));
}

void unpack_signed_avx512(const std::uint8_t* base, std::size_t nbytes,
                          std::size_t bitpos, unsigned nbits,
                          std::int64_t* out, std::size_t n) {
  const std::size_t fast = gather_safe_count(nbytes, bitpos, nbits, n);
  const __m512i vmask =
      _mm512_set1_epi64(static_cast<long long>(detail::mask_u64(nbits)));
  const __m512i vsign = _mm512_set1_epi64(
      static_cast<long long>(std::uint64_t{1} << (nbits - 1)));
  const __m512i vseven = _mm512_set1_epi64(7);
  __m512i vpos = lane_offsets(bitpos, nbits);
  const __m512i vstep = _mm512_set1_epi64(8ll * nbits);
  std::size_t i = 0;
  for (; i + 8 <= fast; i += 8) {
    const __m512i vbyte = _mm512_srli_epi64(vpos, 3);
    const __m512i words = _mm512_i64gather_epi64(vbyte, base, 1);
    const __m512i vbit = _mm512_and_si512(vpos, vseven);
    __m512i v = _mm512_and_si512(_mm512_srlv_epi64(words, vbit), vmask);
    v = _mm512_sub_epi64(_mm512_xor_si512(v, vsign), vsign);
    _mm512_storeu_si512(out + i, v);
    vpos = _mm512_add_epi64(vpos, vstep);
  }
  if (i < n) {
    detail::unpack_signed_scalar(base, nbytes, bitpos + i * nbits, nbits,
                                 out + i, n - i);
  }
}

void unpack_pairs_avx512(const std::uint8_t* base, std::size_t nbytes,
                         std::size_t bitpos, unsigned idx_bits,
                         unsigned val_bits, std::uint64_t* idx,
                         std::int64_t* val, std::size_t n) {
  const unsigned rec = idx_bits + val_bits;
  if (rec > 57) {
    detail::unpack_pairs_scalar(base, nbytes, bitpos, idx_bits, val_bits,
                                idx, val, n);
    return;
  }
  const std::size_t fast = gather_safe_count(nbytes, bitpos, rec, n);
  const __m512i vimask =
      _mm512_set1_epi64(static_cast<long long>(detail::mask_u64(idx_bits)));
  const __m512i vvmask =
      _mm512_set1_epi64(static_cast<long long>(detail::mask_u64(val_bits)));
  const __m512i vvsign = _mm512_set1_epi64(
      static_cast<long long>(std::uint64_t{1} << (val_bits - 1)));
  const __m512i vseven = _mm512_set1_epi64(7);
  const __m512i vidxsh = _mm512_set1_epi64(idx_bits);
  __m512i vpos = lane_offsets(bitpos, rec);
  const __m512i vstep = _mm512_set1_epi64(8ll * rec);
  std::size_t k = 0;
  for (; k + 8 <= fast; k += 8) {
    const __m512i vbyte = _mm512_srli_epi64(vpos, 3);
    const __m512i words = _mm512_i64gather_epi64(vbyte, base, 1);
    const __m512i vbit = _mm512_and_si512(vpos, vseven);
    const __m512i recbits = _mm512_srlv_epi64(words, vbit);
    const __m512i vi = _mm512_and_si512(recbits, vimask);
    __m512i vv =
        _mm512_and_si512(_mm512_srlv_epi64(recbits, vidxsh), vvmask);
    vv = _mm512_sub_epi64(_mm512_xor_si512(vv, vvsign), vvsign);
    _mm512_storeu_si512(idx + k, vi);
    _mm512_storeu_si512(val + k, vv);
    vpos = _mm512_add_epi64(vpos, vstep);
  }
  if (k < n) {
    detail::unpack_pairs_scalar(base, nbytes, bitpos + k * rec, idx_bits,
                                val_bits, idx + k, val + k, n - k);
  }
}

void apply_base_i64_avx512(std::int64_t* dst, const std::int64_t* base,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(base + i);
    _mm512_storeu_si512(dst + i, _mm512_add_epi64(d, b));
  }
  for (; i < n; ++i) dst[i] += base[i];
}

bool scatter_ecq_avx512(std::int64_t* ecq, std::size_t n,
                        const std::uint64_t* idx, const std::int64_t* val,
                        std::size_t nol) {
  // Validate everything up front, then zero-fill and scatter with the
  // real scatter instruction.  Lane order within a vector matches
  // record order (higher lanes store later), so duplicate indices
  // resolve like the scalar loop: the last record wins.
  const __m512i vn = _mm512_set1_epi64(static_cast<long long>(n));
  std::size_t k = 0;
  for (; k + 8 <= nol; k += 8) {
    const __m512i vi = _mm512_loadu_si512(idx + k);
    if (_mm512_cmpge_epu64_mask(vi, vn) != 0) return false;
  }
  for (; k < nol; ++k) {
    if (idx[k] >= n) return false;
  }
  std::memset(ecq, 0, n * sizeof(std::int64_t));
  std::size_t t = 0;
  for (; t + 8 <= nol; t += 8) {
    const __m512i vi = _mm512_loadu_si512(idx + t);
    const __m512i vv = _mm512_loadu_si512(val + t);
    _mm512_i64scatter_epi64(ecq, vi, vv, 8);
  }
  for (; t < nol; ++t) {
    ecq[idx[t]] = val[t];
  }
  return true;
}

void reconstruct_avx512(const std::int64_t* pq, const std::int64_t* sq,
                        const std::int64_t* ecq, std::size_t nsb,
                        std::size_t sbs, double pattern_binsize,
                        double scale_binsize, double ec_binsize,
                        unsigned bits, unsigned ecb_max, double* p_hat,
                        double* out) {
  // vcvtqq2pd is static_cast<double> for the whole int64 range, so no
  // width gate: every P_b/EC_b decodes on the vector path.
  (void)bits;
  (void)ecb_max;
  const __m512d pbin = _mm512_set1_pd(pattern_binsize);
  const __m512d ebin = _mm512_set1_pd(ec_binsize);
  std::size_t i = 0;
  for (; i + 8 <= sbs; i += 8) {
    const __m512i iv = _mm512_loadu_si512(pq + i);
    _mm512_storeu_pd(p_hat + i,
                     _mm512_mul_pd(_mm512_cvtepi64_pd(iv), pbin));
  }
  for (; i < sbs; ++i) {
    p_hat[i] = static_cast<double>(pq[i]) * pattern_binsize;
  }
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s_hat = static_cast<double>(sq[j]) * scale_binsize;
    const __m512d sv = _mm512_set1_pd(s_hat);
    const std::int64_t* erow = ecq + j * sbs;
    double* orow = out + j * sbs;
    std::size_t t = 0;
    for (; t + 8 <= sbs; t += 8) {
      const __m512i ev = _mm512_loadu_si512(erow + t);
      const __m512d ed = _mm512_cvtepi64_pd(ev);
      // mul, mul, add: three separate roundings, never an FMA (this TU
      // is -ffp-contract=off), matching the scalar loop exactly --
      // including the ecq == 0 term, because -0.0 + 0.0 = +0.0.
      const __m512d r =
          _mm512_add_pd(_mm512_mul_pd(sv, _mm512_loadu_pd(p_hat + t)),
                        _mm512_mul_pd(ed, ebin));
      _mm512_storeu_pd(orow + t, r);
    }
    for (; t < sbs; ++t) {
      orow[t] = s_hat * p_hat[t] +
                static_cast<double>(erow[t]) * ec_binsize;
    }
  }
}

}  // namespace

const EncodeKernels kAvx512Kernels = {
    abs_max_avx512,      find_first_abs_eq_avx512, any_abs_above_avx512,
    quantize_signed_avx512, ecq_residual_avx512,
};

const DecodeKernels kAvx512Decode = {
    unpack_signed_avx512, unpack_pairs_avx512, apply_base_i64_avx512,
    scatter_ecq_avx512, reconstruct_avx512,
};

bool avx512_compiled_in() { return true; }

}  // namespace pastri::simd

#else  // !PASTRI_HAVE_AVX512

namespace pastri::simd {

// No AVX-512 at compile time: alias the scalar tables so the symbols
// link; dispatch reports the backend as unsupported and never selects
// it on merit, but a forced selection still behaves correctly.
const EncodeKernels kAvx512Kernels = kScalarKernels;
const DecodeKernels kAvx512Decode = kScalarDecode;

bool avx512_compiled_in() { return false; }

}  // namespace pastri::simd

#endif
