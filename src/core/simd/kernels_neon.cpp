// kernels_neon.cpp - NEON (AArch64 Advanced SIMD) backend of the codec
// kernel tables.
//
// Advanced SIMD with 2-lane double vectors is baseline on AArch64, so
// no runtime CPU probe is needed beyond the architecture itself; the
// TU still compiles to a scalar alias on every other architecture so
// the symbols exist and dispatch reports the tier unavailable.
// Bit-identity discipline, same as the x86 backends:
//
//   * every float op is lanewise and unfused -- this TU is compiled
//     with -ffp-contract=off (critical on AArch64, where GCC's default
//     -ffp-contract=fast would otherwise fuse mul+add into FMLA and
//     change results in the last ulp);
//   * vrnda rounds half away from zero natively (no rne+correction
//     dance needed), exactly llround's rounding;
//   * scvtf (vcvtq_f64_s64) is the IEEE int64 -> double conversion for
//     the full range, exactly static_cast<double>, so reconstruction
//     needs no width gate;
//   * fcvtzs (vcvtq_s64_f64) truncates exactly for integral |v| < 2^63;
//     saturating or non-finite lanes fall back to the shared scalar
//     round_half_away_i64, keeping the +-2^62 saturation identical.
//
// The bit-unpack decode kernels stay on the shared scalar windowed
// loops: NEON has no gather, and the window already amortizes to ~one
// load per several values -- the decode win on this tier is the
// reconstruct/apply arithmetic.
#include "core/simd/simd.h"

#include "core/simd/kernels_common.h"

#if defined(PASTRI_HAVE_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace pastri::simd {
namespace {

// |r| below this always round-converts exactly; at or above it the
// scalar path saturates to +-2^62 (kernels_scalar.cpp).
constexpr double kSaturateLimit = 9.2e18;

/// Convert a vrnda-rounded vector to int64; lanes the fast path cannot
/// prove safe (saturating, NaN/Inf) re-run the shared scalar fallback
/// on the unrounded quotient.
inline int64x2_t to_i64(float64x2_t rounded, float64x2_t quot) {
  const uint64x2_t fast =
      vcltq_f64(vabsq_f64(rounded), vdupq_n_f64(kSaturateLimit));
  int64x2_t iv = vcvtq_s64_f64(rounded);
  if ((vgetq_lane_u64(fast, 0) & vgetq_lane_u64(fast, 1)) == 0)
      [[unlikely]] {
    if (vgetq_lane_u64(fast, 0) == 0) {
      iv = vsetq_lane_s64(round_half_away_i64(vgetq_lane_f64(quot, 0)),
                          iv, 0);
    }
    if (vgetq_lane_u64(fast, 1) == 0) {
      iv = vsetq_lane_s64(round_half_away_i64(vgetq_lane_f64(quot, 1)),
                          iv, 1);
    }
  }
  return iv;
}

double abs_max_neon(const double* x, std::size_t n) {
  float64x2_t m = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t a = vabsq_f64(vld1q_f64(x + i));
    // compare+select, not vmaxq: NaN never overwrites the accumulator,
    // matching the scalar `if (a > m) m = a`.
    m = vbslq_f64(vcgtq_f64(a, m), a, m);
  }
  double best = 0.0;
  const double l0 = vgetq_lane_f64(m, 0);
  const double l1 = vgetq_lane_f64(m, 1);
  if (l0 > best) best = l0;
  if (l1 > best) best = l1;
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a > best) best = a;
  }
  return best;
}

std::size_t find_first_abs_eq_neon(const double* x, std::size_t n,
                                   double m) {
  const float64x2_t target = vdupq_n_f64(m);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t a = vabsq_f64(vld1q_f64(x + i));
    const uint64x2_t eq = vceqq_f64(a, target);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a == m) return i;
  }
  return n;
}

bool any_abs_above_neon(const double* x, std::size_t n, double bound) {
  const float64x2_t b = vdupq_n_f64(bound);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t gt = vcgtq_f64(vabsq_f64(vld1q_f64(x + i)), b);
    if ((vgetq_lane_u64(gt, 0) | vgetq_lane_u64(gt, 1)) != 0) return true;
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a > bound) return true;
  }
  return false;
}

void quantize_signed_neon(const double* x, std::size_t n, double binsize,
                          unsigned nbits, double recon_binsize,
                          std::int64_t* q, double* recon) {
  const float64x2_t bin = vdupq_n_f64(binsize);
  const float64x2_t rb = vdupq_n_f64(recon_binsize);
  const std::int64_t hi_s = (std::int64_t{1} << (nbits - 1)) - 1;
  const std::int64_t lo_s = -(std::int64_t{1} << (nbits - 1));
  const int64x2_t hi = vdupq_n_s64(hi_s);
  const int64x2_t lo = vdupq_n_s64(lo_s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // div stays div; vrnda is round-half-away natively.
    const float64x2_t quot = vdivq_f64(vld1q_f64(x + i), bin);
    int64x2_t iv = to_i64(vrndaq_f64(quot), quot);
    iv = vbslq_s64(vcgtq_s64(iv, hi), hi, iv);
    iv = vbslq_s64(vcgtq_s64(lo, iv), lo, iv);
    vst1q_s64(q + i, iv);
    // scvtf == static_cast<double> for every value; no width gate.
    vst1q_f64(recon + i, vmulq_f64(vcvtq_f64_s64(iv), rb));
  }
  for (; i < n; ++i) {
    std::int64_t v = round_half_away_i64(x[i] / binsize);
    v = v < lo_s ? lo_s : (v > hi_s ? hi_s : v);
    q[i] = v;
    recon[i] = static_cast<double>(v) * recon_binsize;
  }
}

void ecq_residual_neon(const double* block, std::size_t nsb,
                       std::size_t sbs, const double* p_hat,
                       const double* s_hat, double binsize,
                       std::int64_t* ecq, EcqStats* stats) {
  const float64x2_t bin = vdupq_n_f64(binsize);
  EcqStats st;
  std::size_t zeros = 0;
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s = s_hat[j];
    const float64x2_t sv = vdupq_n_f64(s);
    const double* row = block + j * sbs;
    std::int64_t* out = ecq + j * sbs;
    std::size_t i = 0;
    for (; i + 2 <= sbs; i += 2) {
      // mul then sub then div: the scalar op sequence, never an FMA
      // (explicit vmulq/vsubq intrinsics + -ffp-contract=off).
      const float64x2_t approx = vmulq_f64(sv, vld1q_f64(p_hat + i));
      const float64x2_t diff = vsubq_f64(vld1q_f64(row + i), approx);
      const float64x2_t quot = vdivq_f64(diff, bin);
      const int64x2_t e = to_i64(vrndaq_f64(quot), quot);
      vst1q_s64(out + i, e);
      // 2-lane stats: scalar class counting on the stored codes (the
      // arithmetic above is the expensive part on this tier).
      for (int lane = 0; lane < 2; ++lane) {
        const std::int64_t ev = out[i + lane];
        if (ev == 0) {
          ++zeros;
        } else {
          const std::uint64_t mag =
              ev > 0 ? static_cast<std::uint64_t>(ev)
                     : static_cast<std::uint64_t>(-(ev + 1)) + 1;
          if (mag > st.max_magnitude) st.max_magnitude = mag;
          st.num_plus1 += ev == 1;
          st.num_minus1 += ev == -1;
        }
      }
    }
    for (; i < sbs; ++i) {
      const double approx = s * p_hat[i];
      const std::int64_t e =
          round_half_away_i64((row[i] - approx) / binsize);
      out[i] = e;
      if (e == 0) {
        ++zeros;
      } else {
        const std::uint64_t mag =
            e > 0 ? static_cast<std::uint64_t>(e)
                  : static_cast<std::uint64_t>(-(e + 1)) + 1;
        if (mag > st.max_magnitude) st.max_magnitude = mag;
        st.num_plus1 += e == 1;
        st.num_minus1 += e == -1;
      }
    }
  }
  st.num_outliers = nsb * sbs - zeros;
  *stats = st;
}

// ---- Decode kernels ----------------------------------------------------

void apply_base_i64_neon(std::int64_t* dst, const std::int64_t* base,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_s64(dst + i, vaddq_s64(vld1q_s64(dst + i), vld1q_s64(base + i)));
  }
  for (; i < n; ++i) dst[i] += base[i];
}

void reconstruct_neon(const std::int64_t* pq, const std::int64_t* sq,
                      const std::int64_t* ecq, std::size_t nsb,
                      std::size_t sbs, double pattern_binsize,
                      double scale_binsize, double ec_binsize,
                      unsigned bits, unsigned ecb_max, double* p_hat,
                      double* out) {
  // scvtf == static_cast<double> for the whole int64 range: no gate.
  (void)bits;
  (void)ecb_max;
  const float64x2_t pbin = vdupq_n_f64(pattern_binsize);
  const float64x2_t ebin = vdupq_n_f64(ec_binsize);
  std::size_t i = 0;
  for (; i + 2 <= sbs; i += 2) {
    vst1q_f64(p_hat + i,
              vmulq_f64(vcvtq_f64_s64(vld1q_s64(pq + i)), pbin));
  }
  for (; i < sbs; ++i) {
    p_hat[i] = static_cast<double>(pq[i]) * pattern_binsize;
  }
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s_hat = static_cast<double>(sq[j]) * scale_binsize;
    const float64x2_t sv = vdupq_n_f64(s_hat);
    const std::int64_t* erow = ecq + j * sbs;
    double* orow = out + j * sbs;
    std::size_t t = 0;
    for (; t + 2 <= sbs; t += 2) {
      const float64x2_t ed = vcvtq_f64_s64(vld1q_s64(erow + t));
      // mul, mul, add (vaddq, never vfmaq): three separate roundings,
      // matching the scalar loop exactly -- including the ecq == 0
      // term, because -0.0 + 0.0 = +0.0.
      const float64x2_t r = vaddq_f64(
          vmulq_f64(sv, vld1q_f64(p_hat + t)), vmulq_f64(ed, ebin));
      vst1q_f64(orow + t, r);
    }
    for (; t < sbs; ++t) {
      orow[t] = s_hat * p_hat[t] +
                static_cast<double>(erow[t]) * ec_binsize;
    }
  }
}

}  // namespace

const EncodeKernels kNeonKernels = {
    abs_max_neon,      find_first_abs_eq_neon, any_abs_above_neon,
    quantize_signed_neon, ecq_residual_neon,
};

const DecodeKernels kNeonDecode = {
    detail::unpack_signed_scalar, detail::unpack_pairs_scalar,
    apply_base_i64_neon, detail::scatter_ecq_scalar, reconstruct_neon,
};

bool neon_compiled_in() { return true; }

}  // namespace pastri::simd

#else  // !PASTRI_HAVE_NEON

namespace pastri::simd {

// Not an AArch64 build: alias the scalar tables so the symbols link;
// dispatch reports the backend as unsupported and never selects it on
// merit, but a forced selection still behaves correctly.
const EncodeKernels kNeonKernels = kScalarKernels;
const DecodeKernels kNeonDecode = kScalarDecode;

bool neon_compiled_in() { return false; }

}  // namespace pastri::simd

#endif
