// kernels_scalar.cpp - Portable backend of the kernel tables.
//
// These loops are the pre-SIMD hot-path code, verbatim in semantics:
// every vector backend is verified bit-identical against them (SimdDiff
// suite), and they are what PASTRI_SIMD=scalar selects on any CPU.
// The decode bodies live in kernels_common.h so the vector TUs can
// reuse them (internal-linkage copies) for tails and width fallbacks.
#include <cmath>

#include "core/simd/kernels_common.h"
#include "core/simd/simd.h"

namespace pastri::simd {

std::int64_t round_half_away_i64(double x) {
  // nearbyint for the saturation probe, llround (round-half-away) for
  // the value -- exactly the quantizer's original round_to_i64, so
  // saturated/pathological lanes are identical on every backend.
  const double r = std::nearbyint(x);
  if (r >= 9.2e18) return std::int64_t{1} << 62;
  if (r <= -9.2e18) return -(std::int64_t{1} << 62);
  return static_cast<std::int64_t>(std::llround(x));
}

namespace {

std::int64_t clamp_signed(std::int64_t v, unsigned bits) {
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  return v < lo ? lo : (v > hi ? hi : v);
}

double abs_max_scalar(const double* x, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::abs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

std::size_t find_first_abs_eq_scalar(const double* x, std::size_t n,
                                     double m) {
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(x[i]) == m) return i;
  }
  return n;
}

bool any_abs_above_scalar(const double* x, std::size_t n, double bound) {
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(x[i]) > bound) return true;
  }
  return false;
}

void quantize_signed_scalar(const double* x, std::size_t n, double binsize,
                            unsigned nbits, double recon_binsize,
                            std::int64_t* q, double* recon) {
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t v = round_half_away_i64(x[i] / binsize);
    v = clamp_signed(v, nbits);
    q[i] = v;
    recon[i] = static_cast<double>(v) * recon_binsize;
  }
}

void ecq_residual_scalar(const double* block, std::size_t nsb,
                         std::size_t sbs, const double* p_hat,
                         const double* s_hat, double binsize,
                         std::int64_t* ecq, EcqStats* stats) {
  EcqStats st;
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s = s_hat[j];
    const double* row = block + j * sbs;
    std::int64_t* out = ecq + j * sbs;
    for (std::size_t i = 0; i < sbs; ++i) {
      const double approx = s * p_hat[i];
      const std::int64_t e = round_half_away_i64((row[i] - approx) / binsize);
      out[i] = e;
      if (e != 0) {
        ++st.num_outliers;
        const std::uint64_t mag =
            e > 0 ? static_cast<std::uint64_t>(e)
                  : static_cast<std::uint64_t>(-(e + 1)) + 1;
        if (mag > st.max_magnitude) st.max_magnitude = mag;
        st.num_plus1 += e == 1;
        st.num_minus1 += e == -1;
      }
    }
  }
  *stats = st;
}

}  // namespace

const EncodeKernels kScalarKernels = {
    abs_max_scalar,      find_first_abs_eq_scalar, any_abs_above_scalar,
    quantize_signed_scalar, ecq_residual_scalar,
};

const DecodeKernels kScalarDecode = {
    detail::unpack_signed_scalar, detail::unpack_pairs_scalar,
    detail::apply_base_i64_scalar, detail::scatter_ecq_scalar,
    detail::reconstruct_scalar,
};

}  // namespace pastri::simd
