// simd.cpp - Runtime backend dispatch for the codec kernel tables.
//
// Selection runs once, at the first encode_kernels()/decode_kernels()
// call: the widest backend both the build and the CPU support wins
// (avx512 > avx2 > scalar on x86-64, neon on aarch64), unless
// PASTRI_SIMD names one explicitly (unsupported or unknown names fall
// back to scalar -- a forced-off path must never crash on an old CPU).
// Encode and decode tables always switch together, so a stream is
// encoded and decoded by the same tier unless the user re-forces in
// between -- which is safe, because every tier is bit-identical.
//
// AVX-512 needs more than a CPUID feature bit: the OS must have enabled
// ZMM state saving (XCR0 bits 1|2|5|6|7 via XGETBV), otherwise the
// first EVEX instruction faults.  cpu_has_avx512() checks both.  The
// choice is published through atomic pointers so steady-state access is
// one relaxed load; force_backend()/refresh_backend_from_env() are
// testing hooks that republish it.
#include "core/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#include <cpuid.h>
#endif

namespace pastri::simd {
namespace {

std::atomic<const EncodeKernels*> g_active{nullptr};
std::atomic<const DecodeKernels*> g_active_decode{nullptr};
std::atomic<Backend> g_backend{Backend::Scalar};

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
// XGETBV via inline asm: the _xgetbv intrinsic needs -mxsave, which
// this (deliberately flag-free) dispatch TU does not use.  Only called
// after CPUID confirmed OSXSAVE, so the instruction itself is legal.
std::uint64_t xgetbv0() {
  unsigned lo = 0, hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0u));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}
#endif

bool cpu_has_avx512() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // Feature bits alone are not enough: a kernel that does not save ZMM
  // state leaves the bits set in CPUID leaf 7 while the first EVEX
  // instruction faults.  Check OSXSAVE, then ask XGETBV whether the OS
  // saves SSE|AVX|opmask|ZMM_hi256|hi16_ZMM state, then the F+DQ
  // feature bits the kernels actually use (cvtepi64_pd is DQ).
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  constexpr unsigned kOsxsave = 1u << 27;
  if ((ecx & kOsxsave) == 0) return false;
  constexpr std::uint64_t kAvx512State = 0xE6;  // XCR0 bits 1,2,5,6,7
  if ((xgetbv0() & kAvx512State) != kAvx512State) return false;
  if (__get_cpuid_max(0, nullptr) < 7) return false;
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  constexpr unsigned kAvx512F = 1u << 16;
  constexpr unsigned kAvx512Dq = 1u << 17;
  return (ebx & kAvx512F) != 0 && (ebx & kAvx512Dq) != 0;
#else
  return false;
#endif
}

bool cpu_has_neon() {
#if defined(__aarch64__)
  return true;  // Advanced SIMD is baseline on AArch64.
#else
  return false;
#endif
}

const EncodeKernels& encode_table_for(Backend b) {
  switch (b) {
    case Backend::Scalar: return kScalarKernels;
    case Backend::Avx2: return kAvx2Kernels;
    case Backend::Avx512: return kAvx512Kernels;
    case Backend::Neon: return kNeonKernels;
  }
  return kScalarKernels;
}

const DecodeKernels& decode_table_for(Backend b) {
  switch (b) {
    case Backend::Scalar: return kScalarDecode;
    case Backend::Avx2: return kAvx2Decode;
    case Backend::Avx512: return kAvx512Decode;
    case Backend::Neon: return kNeonDecode;
  }
  return kScalarDecode;
}

Backend best_backend() {
  if (backend_supported(Backend::Avx512)) return Backend::Avx512;
  if (backend_supported(Backend::Avx2)) return Backend::Avx2;
  if (backend_supported(Backend::Neon)) return Backend::Neon;
  return Backend::Scalar;
}

Backend select_backend() {
  Backend b = best_backend();
  if (const char* env = std::getenv("PASTRI_SIMD")) {
    if (env[0] == '\0') return b;
    b = Backend::Scalar;  // any explicit name starts from the safe tier
    for (Backend cand : kAllBackends) {
      if (std::strcmp(env, backend_name(cand)) == 0 &&
          backend_supported(cand)) {
        b = cand;
      }
    }
  }
  return b;
}

void publish(Backend b) {
  g_backend.store(b, std::memory_order_relaxed);
  g_active.store(&encode_table_for(b), std::memory_order_release);
  g_active_decode.store(&decode_table_for(b), std::memory_order_release);
  // Observability: which backend the codec dispatches to (0 = scalar,
  // 1 = avx2, 2 = avx512, 3 = neon).  Encode and decode switch
  // together, but both gauges exist so a mis-dispatch (e.g. a triage
  // force to scalar that only one consumer noticed) is visible per
  // path; settable-once gauges are fine to re-set.
  const double tier = static_cast<double>(b);
  obs::registry().gauge(obs::kCoreSimdBackend).set(tier);
  obs::registry().gauge(obs::kCoreSimdDecodeBackend).set(tier);
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Avx2: return "avx2";
    case Backend::Avx512: return "avx512";
    case Backend::Neon: return "neon";
  }
  return "?";
}

bool backend_supported(Backend b) {
  switch (b) {
    case Backend::Scalar: return true;
    case Backend::Avx2: return avx2_compiled_in() && cpu_has_avx2();
    case Backend::Avx512: return avx512_compiled_in() && cpu_has_avx512();
    case Backend::Neon: return neon_compiled_in() && cpu_has_neon();
  }
  return false;
}

const EncodeKernels& encode_kernels() {
  const EncodeKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) [[unlikely]] {
    // Selection is idempotent; a racing first call publishes the same
    // tables twice.
    publish(select_backend());
    k = g_active.load(std::memory_order_acquire);
  }
  return *k;
}

const DecodeKernels& decode_kernels() {
  const DecodeKernels* k = g_active_decode.load(std::memory_order_acquire);
  if (k == nullptr) [[unlikely]] {
    publish(select_backend());
    k = g_active_decode.load(std::memory_order_acquire);
  }
  return *k;
}

Backend active_backend() {
  (void)encode_kernels();
  return g_backend.load(std::memory_order_relaxed);
}

void force_backend(Backend b) {
  if (!backend_supported(b)) b = Backend::Scalar;
  publish(b);
}

void refresh_backend_from_env() { publish(select_backend()); }

}  // namespace pastri::simd
