// simd.cpp - Runtime backend dispatch for the encode kernel table.
//
// Selection runs once, at the first encode_kernels() call: the widest
// backend both the build and the CPU support wins, unless PASTRI_SIMD
// names one explicitly (unsupported or unknown names fall back to
// scalar -- a forced-off path must never crash on an old CPU).  The
// choice is published through an atomic pointer so steady-state access
// is one relaxed load; force_backend()/refresh_backend_from_env() are
// testing hooks that republish it.
#include "core/simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pastri::simd {
namespace {

std::atomic<const EncodeKernels*> g_active{nullptr};
std::atomic<Backend> g_backend{Backend::Scalar};

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const EncodeKernels& table_for(Backend b) {
  switch (b) {
    case Backend::Scalar: return kScalarKernels;
    case Backend::Avx2: return kAvx2Kernels;
  }
  return kScalarKernels;
}

Backend select_backend() {
  Backend b = backend_supported(Backend::Avx2) ? Backend::Avx2
                                               : Backend::Scalar;
  if (const char* env = std::getenv("PASTRI_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      b = Backend::Scalar;
    } else if (std::strcmp(env, "avx2") == 0 &&
               backend_supported(Backend::Avx2)) {
      b = Backend::Avx2;
    } else if (std::strcmp(env, "avx2") != 0 && env[0] != '\0') {
      b = Backend::Scalar;  // unknown name: the safe backend
    }
  }
  return b;
}

void publish(Backend b) {
  g_backend.store(b, std::memory_order_relaxed);
  g_active.store(&table_for(b), std::memory_order_release);
  // Observability: which backend the encode path dispatches to
  // (0 = scalar, 1 = avx2), settable-once gauges are fine to re-set.
  obs::registry().gauge(obs::kCoreSimdBackend).set(static_cast<double>(b));
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Avx2: return "avx2";
  }
  return "?";
}

bool backend_supported(Backend b) {
  switch (b) {
    case Backend::Scalar: return true;
    case Backend::Avx2: return avx2_compiled_in() && cpu_has_avx2();
  }
  return false;
}

const EncodeKernels& encode_kernels() {
  const EncodeKernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) [[unlikely]] {
    // Selection is idempotent; a racing first call publishes the same
    // table twice.
    publish(select_backend());
    k = g_active.load(std::memory_order_acquire);
  }
  return *k;
}

Backend active_backend() {
  (void)encode_kernels();
  return g_backend.load(std::memory_order_relaxed);
}

void force_backend(Backend b) {
  if (!backend_supported(b)) b = Backend::Scalar;
  publish(b);
}

void refresh_backend_from_env() { publish(select_backend()); }

}  // namespace pastri::simd
