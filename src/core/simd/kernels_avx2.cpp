// kernels_avx2.cpp - AVX2 backend of the encode kernel table.
//
// Compiled with -mavx2 -ffp-contract=off in this TU only (see
// core/CMakeLists.txt); dispatch never selects it unless CPUID reports
// AVX2 at runtime.  Bit-identity discipline:
//
//   * every float op is lanewise and unfused (mul then sub, never FMA;
//     -ffp-contract=off pins this even if the compiler would contract),
//     and division stays division -- no reciprocal multiplication;
//   * max scans use compare+blend, reproducing the scalar
//     `if (a > m) m = a` (NaN never overwrites the accumulator);
//   * round-half-away-from-zero is round-to-nearest-even plus an exact
//     +-1 correction on exact .5 fractions (the difference x - rne(x)
//     is exact for |x| < 2^52, so the correction mask is exact);
//   * double -> int64 uses the 1.5*2^52 magic-bias trick, valid for
//     |v| < 2^51; wider, non-finite, or saturating lanes fall back to
//     the shared scalar round_half_away_i64, so both backends run the
//     same code on every lane the fast path cannot prove safe.
//
// PASTRI_HAVE_AVX2 is defined (by the build) only when the compiler
// accepted -mavx2; otherwise this TU degrades to a scalar alias so the
// symbol exists and dispatch simply reports AVX2 as unavailable.
#include "core/simd/simd.h"

#include "core/simd/kernels_common.h"

#if defined(PASTRI_HAVE_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <bit>
#include <cstring>

namespace pastri::simd {
namespace {

constexpr double kMagic = 6755399441055744.0;  // 1.5 * 2^52
constexpr double kConvertLimit = 2251799813685248.0;  // 2^51

inline __m256d abs_pd(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

/// Lanewise round-half-away-from-zero of `x` (already-representable
/// integers pass through; exact .5 fractions move away from zero).
inline __m256d round_half_away_pd(__m256d x) {
  const __m256d r =
      _mm256_round_pd(x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d diff = _mm256_sub_pd(x, r);
  const __m256d sign = _mm256_and_pd(x, _mm256_set1_pd(-0.0));
  const __m256d half = _mm256_or_pd(_mm256_set1_pd(0.5), sign);
  const __m256d one = _mm256_or_pd(_mm256_set1_pd(1.0), sign);
  const __m256d fix =
      _mm256_and_pd(one, _mm256_cmp_pd(diff, half, _CMP_EQ_OQ));
  return _mm256_add_pd(r, fix);
}

/// Convert a rounded vector to int64.  `quot` is the unrounded quotient
/// for the out-of-range lane fallback; lanes where |rounded| < 2^51
/// (which excludes NaN/Inf) convert via the magic bias, the rest via
/// the shared scalar path.
inline __m256i to_i64(__m256d rounded, __m256d quot) {
  const __m256d magic = _mm256_set1_pd(kMagic);
  const __m256d fast_mask = _mm256_cmp_pd(
      abs_pd(rounded), _mm256_set1_pd(kConvertLimit), _CMP_LT_OQ);
  __m256i iv = _mm256_sub_epi64(
      _mm256_castpd_si256(_mm256_add_pd(rounded, magic)),
      _mm256_castpd_si256(magic));
  const int fast = _mm256_movemask_pd(fast_mask);
  if (fast != 0xF) [[unlikely]] {
    alignas(32) double q[4];
    alignas(32) std::int64_t v[4];
    _mm256_store_pd(q, quot);
    _mm256_store_si256(reinterpret_cast<__m256i*>(v), iv);
    for (int lane = 0; lane < 4; ++lane) {
      if (!(fast & (1 << lane))) v[lane] = round_half_away_i64(q[lane]);
    }
    iv = _mm256_load_si256(reinterpret_cast<const __m256i*>(v));
  }
  return iv;
}

/// Unsigned 64-bit max (AVX2 has only signed compares; flipping the top
/// bit order-converts).  Magnitudes reach 2^63 -- |INT64_MIN| from
/// saturated/non-finite lanes -- which a signed max would always drop.
inline __m256i max_epu64(__m256i a, __m256i b) {
  const __m256i msb = _mm256_set1_epi64x(
      static_cast<std::int64_t>(0x8000000000000000ull));
  const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(b, msb),
                                        _mm256_xor_si256(a, msb));
  return _mm256_blendv_epi8(a, b, gt);
}

inline std::uint64_t hmax_epu64(__m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  std::uint64_t m = lanes[0];
  for (int i = 1; i < 4; ++i) m = lanes[i] > m ? lanes[i] : m;
  return m;
}

inline std::uint64_t hsum_epi64(__m256i v) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

double abs_max_avx2(const double* x, std::size_t n) {
  __m256d m = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = abs_pd(_mm256_loadu_pd(x + i));
    m = _mm256_blendv_pd(m, a, _mm256_cmp_pd(a, m, _CMP_GT_OQ));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, m);
  double best = 0.0;
  for (double lane : lanes) {
    if (lane > best) best = lane;
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a > best) best = a;
  }
  return best;
}

std::size_t find_first_abs_eq_avx2(const double* x, std::size_t n,
                                   double m) {
  const __m256d target = _mm256_set1_pd(m);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = abs_pd(_mm256_loadu_pd(x + i));
    const int hit =
        _mm256_movemask_pd(_mm256_cmp_pd(a, target, _CMP_EQ_OQ));
    if (hit != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(
                     static_cast<unsigned>(hit)));
    }
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a == m) return i;
  }
  return n;
}

bool any_abs_above_avx2(const double* x, std::size_t n, double bound) {
  const __m256d b = _mm256_set1_pd(bound);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = abs_pd(_mm256_loadu_pd(x + i));
    if (_mm256_movemask_pd(_mm256_cmp_pd(a, b, _CMP_GT_OQ)) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    const double a = x[i] < 0.0 ? -x[i] : x[i];
    if (a > bound) return true;
  }
  return false;
}

void quantize_signed_avx2(const double* x, std::size_t n, double binsize,
                          unsigned nbits, double recon_binsize,
                          std::int64_t* q, double* recon) {
  const __m256d bin = _mm256_set1_pd(binsize);
  const __m256d rb = _mm256_set1_pd(recon_binsize);
  const __m256d magic = _mm256_set1_pd(kMagic);
  const std::int64_t hi_s = (std::int64_t{1} << (nbits - 1)) - 1;
  const std::int64_t lo_s = -(std::int64_t{1} << (nbits - 1));
  const __m256i hi = _mm256_set1_epi64x(hi_s);
  const __m256i lo = _mm256_set1_epi64x(lo_s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d quot = _mm256_div_pd(_mm256_loadu_pd(x + i), bin);
    __m256i iv = to_i64(round_half_away_pd(quot), quot);
    iv = _mm256_blendv_epi8(iv, hi, _mm256_cmpgt_epi64(iv, hi));
    iv = _mm256_blendv_epi8(iv, lo, _mm256_cmpgt_epi64(lo, iv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i), iv);
    // |clamped| <= 2^53, but the reverse magic bias needs < 2^51; wide
    // widths (P_b > 52) convert scalar.
    if (nbits <= 52) {
      const __m256d qv = _mm256_sub_pd(
          _mm256_castsi256_pd(
              _mm256_add_epi64(iv, _mm256_castpd_si256(magic))),
          magic);
      _mm256_storeu_pd(recon + i, _mm256_mul_pd(qv, rb));
    } else {
      for (int lane = 0; lane < 4; ++lane) {
        recon[i + lane] =
            static_cast<double>(q[i + lane]) * recon_binsize;
      }
    }
  }
  for (; i < n; ++i) {
    std::int64_t v = round_half_away_i64(x[i] / binsize);
    v = v < lo_s ? lo_s : (v > hi_s ? hi_s : v);
    q[i] = v;
    recon[i] = static_cast<double>(v) * recon_binsize;
  }
}

void ecq_residual_avx2(const double* block, std::size_t nsb,
                       std::size_t sbs, const double* p_hat,
                       const double* s_hat, double binsize,
                       std::int64_t* ecq, EcqStats* stats) {
  const __m256d bin = _mm256_set1_pd(binsize);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i plus1 = _mm256_set1_epi64x(1);
  const __m256i minus1 = _mm256_set1_epi64x(-1);
  __m256i zero_cnt = _mm256_setzero_si256();
  __m256i plus_cnt = _mm256_setzero_si256();
  __m256i minus_cnt = _mm256_setzero_si256();
  __m256i max_mag = _mm256_setzero_si256();
  std::size_t tail_zeros = 0;
  EcqStats st;

  for (std::size_t j = 0; j < nsb; ++j) {
    const double s = s_hat[j];
    const __m256d sv = _mm256_set1_pd(s);
    const double* row = block + j * sbs;
    std::int64_t* out = ecq + j * sbs;
    std::size_t i = 0;
    for (; i + 4 <= sbs; i += 4) {
      // mul then sub then div: the scalar op sequence, never an FMA.
      const __m256d approx = _mm256_mul_pd(sv, _mm256_loadu_pd(p_hat + i));
      const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(row + i), approx);
      const __m256d quot = _mm256_div_pd(diff, bin);
      const __m256i e = to_i64(round_half_away_pd(quot), quot);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), e);
      // Class counters: a true compare lane is -1, so subtracting the
      // mask adds one to that lane's counter.
      zero_cnt = _mm256_sub_epi64(zero_cnt, _mm256_cmpeq_epi64(e, zero));
      plus_cnt = _mm256_sub_epi64(plus_cnt, _mm256_cmpeq_epi64(e, plus1));
      minus_cnt =
          _mm256_sub_epi64(minus_cnt, _mm256_cmpeq_epi64(e, minus1));
      const __m256i sign = _mm256_cmpgt_epi64(zero, e);
      const __m256i mag =
          _mm256_sub_epi64(_mm256_xor_si256(e, sign), sign);
      max_mag = max_epu64(max_mag, mag);
    }
    for (; i < sbs; ++i) {
      const double approx = s * p_hat[i];
      const std::int64_t e = round_half_away_i64((row[i] - approx) / binsize);
      out[i] = e;
      if (e == 0) {
        ++tail_zeros;
      } else {
        const std::uint64_t mag =
            e > 0 ? static_cast<std::uint64_t>(e)
                  : static_cast<std::uint64_t>(-(e + 1)) + 1;
        if (mag > st.max_magnitude) st.max_magnitude = mag;
        st.num_plus1 += e == 1;
        st.num_minus1 += e == -1;
      }
    }
  }

  const std::size_t zeros = hsum_epi64(zero_cnt) + tail_zeros;
  st.num_outliers = nsb * sbs - zeros;
  st.num_plus1 += hsum_epi64(plus_cnt);
  st.num_minus1 += hsum_epi64(minus_cnt);
  const std::uint64_t vec_mag = hmax_epu64(max_mag);
  if (vec_mag > st.max_magnitude) st.max_magnitude = vec_mag;
  *stats = st;
}

// ---- Decode kernels ----------------------------------------------------

/// How many of the `n` fields starting at `bitpos` (stride `stride`
/// bits) can be served by a full 8-byte load per lane: position p needs
/// (p >> 3) + 8 <= nbytes, i.e. p <= 8*nbytes - 57.  The rest go
/// through the scalar tail, same as BitReader near the stream end.
inline std::size_t gather_safe_count(std::size_t nbytes, std::size_t bitpos,
                                     unsigned stride, std::size_t n) {
  const std::size_t total = 8 * nbytes;
  if (total < bitpos + 57) return 0;
  const std::size_t k = (total - 57 - bitpos) / stride + 1;
  return k < n ? k : n;
}

void unpack_signed_avx2(const std::uint8_t* base, std::size_t nbytes,
                        std::size_t bitpos, unsigned nbits,
                        std::int64_t* out, std::size_t n) {
  const std::size_t fast = gather_safe_count(nbytes, bitpos, nbits, n);
  const __m256i vmask =
      _mm256_set1_epi64x(static_cast<long long>(detail::mask_u64(nbits)));
  const __m256i vsign = _mm256_set1_epi64x(
      static_cast<long long>(std::uint64_t{1} << (nbits - 1)));
  const __m256i vseven = _mm256_set1_epi64x(7);
  __m256i vpos = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(bitpos)),
      _mm256_set_epi64x(3ll * nbits, 2ll * nbits, 1ll * nbits, 0));
  const __m256i vstep = _mm256_set1_epi64x(4ll * nbits);
  std::size_t i = 0;
  for (; i + 4 <= fast; i += 4) {
    // One unaligned 64-bit load per lane (gather), then shift out the
    // sub-byte offset -- the vector form of BitReader's word fast path.
    const __m256i vbyte = _mm256_srli_epi64(vpos, 3);
    const __m256i words = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base), vbyte, 1);
    const __m256i vbit = _mm256_and_si256(vpos, vseven);
    __m256i v = _mm256_and_si256(_mm256_srlv_epi64(words, vbit), vmask);
    // Two's-complement sign extension: (v ^ signbit) - signbit.
    v = _mm256_sub_epi64(_mm256_xor_si256(v, vsign), vsign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    vpos = _mm256_add_epi64(vpos, vstep);
  }
  if (i < n) {
    detail::unpack_signed_scalar(base, nbytes, bitpos + i * nbits, nbits,
                                 out + i, n - i);
  }
}

void unpack_pairs_avx2(const std::uint8_t* base, std::size_t nbytes,
                       std::size_t bitpos, unsigned idx_bits,
                       unsigned val_bits, std::uint64_t* idx,
                       std::int64_t* val, std::size_t n) {
  const unsigned rec = idx_bits + val_bits;
  if (rec > 57) {
    // A record no longer fits one shifted word load (possible only for
    // ecb_max near 64); take the scalar two-load path throughout.
    detail::unpack_pairs_scalar(base, nbytes, bitpos, idx_bits, val_bits,
                                idx, val, n);
    return;
  }
  const std::size_t fast = gather_safe_count(nbytes, bitpos, rec, n);
  const __m256i vimask =
      _mm256_set1_epi64x(static_cast<long long>(detail::mask_u64(idx_bits)));
  const __m256i vvmask =
      _mm256_set1_epi64x(static_cast<long long>(detail::mask_u64(val_bits)));
  const __m256i vvsign = _mm256_set1_epi64x(
      static_cast<long long>(std::uint64_t{1} << (val_bits - 1)));
  const __m256i vseven = _mm256_set1_epi64x(7);
  const __m256i vidxsh = _mm256_set1_epi64x(idx_bits);
  __m256i vpos = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(bitpos)),
      _mm256_set_epi64x(3ll * rec, 2ll * rec, 1ll * rec, 0));
  const __m256i vstep = _mm256_set1_epi64x(4ll * rec);
  std::size_t k = 0;
  for (; k + 4 <= fast; k += 4) {
    const __m256i vbyte = _mm256_srli_epi64(vpos, 3);
    const __m256i words = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base), vbyte, 1);
    const __m256i vbit = _mm256_and_si256(vpos, vseven);
    const __m256i recbits = _mm256_srlv_epi64(words, vbit);
    const __m256i vi = _mm256_and_si256(recbits, vimask);
    __m256i vv =
        _mm256_and_si256(_mm256_srlv_epi64(recbits, vidxsh), vvmask);
    vv = _mm256_sub_epi64(_mm256_xor_si256(vv, vvsign), vvsign);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + k), vi);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(val + k), vv);
    vpos = _mm256_add_epi64(vpos, vstep);
  }
  if (k < n) {
    detail::unpack_pairs_scalar(base, nbytes, bitpos + k * rec, idx_bits,
                                val_bits, idx + k, val + k, n - k);
  }
}

void apply_base_i64_avx2(std::int64_t* dst, const std::int64_t* base,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(d, b));
  }
  for (; i < n; ++i) dst[i] += base[i];
}

bool scatter_ecq_avx2(std::int64_t* ecq, std::size_t n,
                      const std::uint64_t* idx, const std::int64_t* val,
                      std::size_t nol) {
  // Validate all indices up front (vector compare; indices come from
  // <= 57-bit fields, so a signed compare against n is exact), then
  // zero-fill and scatter.  AVX2 has no scatter instruction, so the
  // stores stay scalar -- the win is the validation and the fill.
  const __m256i vlimit = _mm256_set1_epi64x(static_cast<long long>(n) - 1);
  __m256i bad = _mm256_setzero_si256();
  std::size_t k = 0;
  for (; k + 4 <= nol; k += 4) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    bad = _mm256_or_si256(bad, _mm256_cmpgt_epi64(vi, vlimit));
  }
  if (!_mm256_testz_si256(bad, bad)) return false;
  for (; k < nol; ++k) {
    if (idx[k] >= n) return false;
  }
  std::memset(ecq, 0, n * sizeof(std::int64_t));
  for (std::size_t t = 0; t < nol; ++t) {
    ecq[idx[t]] = val[t];
  }
  return true;
}

void reconstruct_avx2(const std::int64_t* pq, const std::int64_t* sq,
                      const std::int64_t* ecq, std::size_t nsb,
                      std::size_t sbs, double pattern_binsize,
                      double scale_binsize, double ec_binsize,
                      unsigned bits, unsigned ecb_max, double* p_hat,
                      double* out) {
  if (bits > 52 || ecb_max > 52) {
    // The reverse magic bias is exact only for 52-bit two's-complement
    // inputs; wider codes reconstruct through the scalar kernel, which
    // is identical by definition.
    detail::reconstruct_scalar(pq, sq, ecq, nsb, sbs, pattern_binsize,
                               scale_binsize, ec_binsize, bits, ecb_max,
                               p_hat, out);
    return;
  }
  const __m256d magic = _mm256_set1_pd(kMagic);
  const __m256i magici = _mm256_castpd_si256(magic);
  const __m256d pbin = _mm256_set1_pd(pattern_binsize);
  const __m256d ebin = _mm256_set1_pd(ec_binsize);
  std::size_t i = 0;
  for (; i + 4 <= sbs; i += 4) {
    const __m256i iv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pq + i));
    const __m256d pv = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_add_epi64(iv, magici)), magic);
    _mm256_storeu_pd(p_hat + i, _mm256_mul_pd(pv, pbin));
  }
  for (; i < sbs; ++i) {
    p_hat[i] = static_cast<double>(pq[i]) * pattern_binsize;
  }
  for (std::size_t j = 0; j < nsb; ++j) {
    // One scale per row: scalar convert (exact for any width), then
    // broadcast.
    const double s_hat = static_cast<double>(sq[j]) * scale_binsize;
    const __m256d sv = _mm256_set1_pd(s_hat);
    const std::int64_t* erow = ecq + j * sbs;
    double* orow = out + j * sbs;
    std::size_t t = 0;
    for (; t + 4 <= sbs; t += 4) {
      const __m256i ev =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(erow + t));
      const __m256d ed = _mm256_sub_pd(
          _mm256_castsi256_pd(_mm256_add_epi64(ev, magici)), magic);
      // mul, mul, add: three separate roundings, never an FMA (this TU
      // is -ffp-contract=off), matching the scalar loop exactly --
      // including the ecq == 0 term, because -0.0 + 0.0 = +0.0.
      const __m256d r =
          _mm256_add_pd(_mm256_mul_pd(sv, _mm256_loadu_pd(p_hat + t)),
                        _mm256_mul_pd(ed, ebin));
      _mm256_storeu_pd(orow + t, r);
    }
    for (; t < sbs; ++t) {
      orow[t] = s_hat * p_hat[t] +
                static_cast<double>(erow[t]) * ec_binsize;
    }
  }
}

}  // namespace

const EncodeKernels kAvx2Kernels = {
    abs_max_avx2,      find_first_abs_eq_avx2, any_abs_above_avx2,
    quantize_signed_avx2, ecq_residual_avx2,
};

const DecodeKernels kAvx2Decode = {
    unpack_signed_avx2, unpack_pairs_avx2, apply_base_i64_avx2,
    scatter_ecq_avx2, reconstruct_avx2,
};

bool avx2_compiled_in() { return true; }

}  // namespace pastri::simd

#else  // !PASTRI_HAVE_AVX2

namespace pastri::simd {

// No AVX2 at compile time: alias the scalar tables so the symbols
// link; dispatch reports the backend as unsupported and never selects
// it on merit, but a forced selection still behaves correctly.
const EncodeKernels kAvx2Kernels = kScalarKernels;
const DecodeKernels kAvx2Decode = kScalarDecode;

bool avx2_compiled_in() { return false; }

}  // namespace pastri::simd

#endif
