// kernels_common.h - Shared scalar bodies for the decode kernel table.
//
// Every backend TU includes this header for its scalar reference loops:
// the scalar backend publishes them directly, the vector backends call
// them for stream tails (where a full-width word load would run past
// the payload) and for bit widths outside their exact-conversion range.
//
// Everything here is `static` on purpose: each backend TU is compiled
// with its own architecture flags (-mavx2, -mavx512f, ...), so these
// helpers must have internal linkage -- a linker merging an AVX-512
// compiled copy into the scalar path would crash older CPUs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/simd/simd.h"

namespace pastri::simd::detail {

[[maybe_unused]] static constexpr std::uint64_t mask_u64(unsigned nbits) {
  return nbits >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << nbits) - 1;
}

[[maybe_unused]] static std::int64_t sign_extend_u64(std::uint64_t raw,
                                                     unsigned nbits) {
  if (nbits < 64 && nbits > 0 &&
      (raw & (std::uint64_t{1} << (nbits - 1)))) {
    raw |= ~((std::uint64_t{1} << nbits) - 1);
  }
  return static_cast<std::int64_t>(raw);
}

/// Load `nbits` (<= 57) at absolute bit `pos`, tail-safe exactly like
/// BitReader::peek_bits: bytes past the end of the span read as zero
/// (the caller's require_bits proved the *value* bits are in range;
/// only over-read padding may fall off the end).
[[maybe_unused]] static std::uint64_t peek_at(const std::uint8_t* base,
                                              std::size_t nbytes,
                                              std::size_t pos,
                                              unsigned nbits) {
  const std::size_t byte = pos >> 3;
  const unsigned bit = static_cast<unsigned>(pos & 7);
  std::uint64_t word = 0;
  if (byte + 8 <= nbytes) {
    std::memcpy(&word, base + byte, 8);  // little-endian hosts
  } else if (byte < nbytes) {
    std::memcpy(&word, base + byte, nbytes - byte);
  }
  word >>= bit;
  return word & mask_u64(nbits);
}

/// peek_at for widths up to 64 (sparse-ECQ values can be 63 bits wide):
/// two part-loads stitched like BitReader::take_bits.
[[maybe_unused]] static std::uint64_t peek_wide_at(const std::uint8_t* base,
                                                   std::size_t nbytes,
                                                   std::size_t pos,
                                                   unsigned nbits) {
  if (nbits <= 57) return peek_at(base, nbytes, pos, nbits);
  const std::uint64_t lo = peek_at(base, nbytes, pos, 32);
  const std::uint64_t hi = peek_at(base, nbytes, pos + 32, nbits - 32);
  return lo | (hi << 32);
}

/// Scalar unpack_signed: the windowed loop of BitReader::read_signed_run
/// re-rooted at (base, nbytes, bitpos) -- value-identical to it.
[[maybe_unused]] static void unpack_signed_scalar(
    const std::uint8_t* base, std::size_t nbytes, std::size_t bitpos,
    unsigned nbits, std::int64_t* out, std::size_t n) {
  std::uint64_t window = 0;
  unsigned valid = 0;
  std::size_t pos = bitpos;
  std::size_t i = 0;
  for (; i < n; ++i) {
    if (valid < nbits) {
      const std::size_t byte = pos >> 3;
      if (byte + 8 > nbytes) break;  // tail: peek path below
      std::uint64_t word;
      std::memcpy(&word, base + byte, 8);  // little-endian hosts
      const unsigned bit = static_cast<unsigned>(pos & 7);
      window = word >> bit;
      valid = 64 - bit;  // >= 57 >= nbits
    }
    out[i] = sign_extend_u64(window & mask_u64(nbits), nbits);
    window >>= nbits;
    valid -= nbits;
    pos += nbits;
  }
  for (; i < n; ++i) {
    out[i] = sign_extend_u64(peek_at(base, nbytes, pos, nbits), nbits);
    pos += nbits;
  }
}

/// Scalar unpack_pairs: (unsigned index, signed value) records back to
/// back.  One peek per record when both fields fit a single window.
[[maybe_unused]] static void unpack_pairs_scalar(
    const std::uint8_t* base, std::size_t nbytes, std::size_t bitpos,
    unsigned idx_bits, unsigned val_bits, std::uint64_t* idx,
    std::int64_t* val, std::size_t n) {
  const unsigned rec = idx_bits + val_bits;
  std::size_t pos = bitpos;
  if (rec <= 57) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t word = peek_at(base, nbytes, pos, rec);
      idx[k] = word & mask_u64(idx_bits);
      val[k] = sign_extend_u64(word >> idx_bits, val_bits);
      pos += rec;
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      idx[k] = peek_at(base, nbytes, pos, idx_bits);
      pos += idx_bits;
      val[k] = sign_extend_u64(peek_wide_at(base, nbytes, pos, val_bits),
                               val_bits);
      pos += val_bits;
    }
  }
}

[[maybe_unused]] static void apply_base_i64_scalar(std::int64_t* dst,
                                                   const std::int64_t* base,
                                                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += base[i];
}

[[maybe_unused]] static bool scatter_ecq_scalar(std::int64_t* ecq,
                                                std::size_t n,
                                                const std::uint64_t* idx,
                                                const std::int64_t* val,
                                                std::size_t nol) {
  for (std::size_t k = 0; k < nol; ++k) {
    if (idx[k] >= n) return false;
  }
  std::memset(ecq, 0, n * sizeof(std::int64_t));
  for (std::size_t k = 0; k < nol; ++k) {
    ecq[idx[k]] = val[k];
  }
  return true;
}

/// Scalar reconstruct: the canonical dequantize loop.  p_hat is hoisted
/// out of the row loop (the per-(j,i) multiply of the original loop is
/// deterministic, so computing double(pq[i]) * pattern_binsize once per
/// i yields the identical double every row).
[[maybe_unused]] static void reconstruct_scalar(
    const std::int64_t* pq, const std::int64_t* sq, const std::int64_t* ecq,
    std::size_t nsb, std::size_t sbs, double pattern_binsize,
    double scale_binsize, double ec_binsize, unsigned bits,
    unsigned ecb_max, double* p_hat, double* out) {
  (void)bits;
  (void)ecb_max;
  for (std::size_t i = 0; i < sbs; ++i) {
    p_hat[i] = static_cast<double>(pq[i]) * pattern_binsize;
  }
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s_hat = static_cast<double>(sq[j]) * scale_binsize;
    const std::int64_t* erow = ecq + j * sbs;
    double* orow = out + j * sbs;
    for (std::size_t i = 0; i < sbs; ++i) {
      // mul, mul, add -- three separate roundings, no FMA (this TU is
      // built with -ffp-contract=off; see core/CMakeLists.txt).
      orow[i] = s_hat * p_hat[i] +
                static_cast<double>(erow[i]) * ec_binsize;
    }
  }
}

}  // namespace pastri::simd::detail
