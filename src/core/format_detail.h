// format_detail.h - Internal stream-format constants and global-header
// (de)serialization shared by the one-shot (compressor.cpp) and
// streaming (stream.cpp) drivers.  Not part of the public API.
#pragma once

#include <stdexcept>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "core/pastri.h"

namespace pastri::detail {

inline constexpr std::uint32_t kMagic = 0x52545350;  // "PSTR"
inline constexpr std::uint8_t kVersion = 2;

inline void write_global_header(bitio::BitWriter& w, const BlockSpec& spec,
                                const Params& params,
                                std::uint64_t num_blocks) {
  w.write_bits(kMagic, 32);
  w.write_bits(kVersion, 8);
  w.write_raw(params.error_bound);
  w.write_bits(static_cast<std::uint64_t>(params.bound_mode), 8);
  w.write_bits(static_cast<std::uint64_t>(params.metric), 8);
  w.write_bits(static_cast<std::uint64_t>(params.tree), 8);
  w.write_bits(spec.num_sub_blocks, 32);
  w.write_bits(spec.sub_block_size, 32);
  w.write_bits(num_blocks, 64);
}

inline StreamInfo read_global_header(bitio::BitReader& r) {
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("PaSTRI: bad stream magic");
  }
  if (r.read_bits(8) != kVersion) {
    throw std::runtime_error("PaSTRI: unsupported stream version");
  }
  StreamInfo info;
  info.error_bound = r.read_raw<double>();
  info.bound_mode = static_cast<BoundMode>(r.read_bits(8));
  info.metric = static_cast<ScalingMetric>(r.read_bits(8));
  info.tree = static_cast<EcqTree>(r.read_bits(8));
  info.spec.num_sub_blocks = r.read_bits(32);
  info.spec.sub_block_size = r.read_bits(32);
  info.num_blocks = r.read_bits(64);
  info.spec.validate();
  if (!(info.error_bound > 0.0)) {
    throw std::runtime_error("PaSTRI: bad error bound in header");
  }
  return info;
}

/// Size in bits of the global header (all fields are byte multiples, so
/// block payloads start byte-aligned).
inline constexpr std::size_t kGlobalHeaderBits =
    32 + 8 + 64 + 8 + 8 + 8 + 32 + 32 + 64;

}  // namespace pastri::detail
