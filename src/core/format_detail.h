// format_detail.h - Internal stream-format constants, global-header and
// index-footer (de)serialization, and container assembly shared by the
// one-shot (compressor.cpp) and streaming (stream.cpp) drivers.  Not
// part of the public API.
#pragma once

#include <omp.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/varint.h"
#include "core/block_index.h"
#include "core/pastri.h"

namespace pastri::detail {

inline constexpr std::uint32_t kMagic = 0x52545350;  // "PSTR"

/// Container versions.  v2 is the original layout (header + varint-length
/// prefixed payloads, nothing else); v3 appends the per-block offset
/// table plus a footer locating it; v4 adds the pattern dictionary
/// (tagged pattern sections, a trailer dictionary section, an extended
/// footer).  All decode; writers emit v3 (dict off) or v4 (dict on).
inline constexpr std::uint8_t kVersionUnindexed = kStreamVersionUnindexed;
inline constexpr std::uint8_t kVersion = kStreamVersionIndexed;
inline constexpr std::uint8_t kVersionDict = kStreamVersionDict;

inline void write_global_header(bitio::BitWriter& w, const BlockSpec& spec,
                                const Params& params,
                                std::uint64_t num_blocks,
                                std::uint8_t version = kVersion) {
  w.write_bits(kMagic, 32);
  w.write_bits(version, 8);
  w.write_raw(params.error_bound);
  w.write_bits(static_cast<std::uint64_t>(params.bound_mode), 8);
  w.write_bits(static_cast<std::uint64_t>(params.metric), 8);
  w.write_bits(static_cast<std::uint64_t>(params.tree), 8);
  w.write_bits(spec.num_sub_blocks, 32);
  w.write_bits(spec.sub_block_size, 32);
  w.write_bits(num_blocks, 64);
}

inline StreamInfo read_global_header(bitio::BitReader& r) {
  if (r.read_bits(32) != kMagic) {
    throw std::runtime_error("PaSTRI: bad stream magic");
  }
  const std::uint64_t version = r.read_bits(8);
  if (version != kVersion && version != kVersionUnindexed &&
      version != kVersionDict) {
    throw std::runtime_error("PaSTRI: unsupported stream version");
  }
  StreamInfo info;
  info.version = static_cast<unsigned>(version);
  info.error_bound = r.read_raw<double>();
  info.bound_mode = static_cast<BoundMode>(r.read_bits(8));
  info.metric = static_cast<ScalingMetric>(r.read_bits(8));
  info.tree = static_cast<EcqTree>(r.read_bits(8));
  info.spec.num_sub_blocks = r.read_bits(32);
  info.spec.sub_block_size = r.read_bits(32);
  info.num_blocks = r.read_bits(64);
  info.spec.validate();
  if (!(info.error_bound > 0.0)) {
    throw std::runtime_error("PaSTRI: bad error bound in header");
  }
  return info;
}

/// Size in bits of the global header (all fields are byte multiples, so
/// block payloads start byte-aligned).
inline constexpr std::size_t kGlobalHeaderBits =
    32 + 8 + 64 + 8 + 8 + 8 + 32 + 32 + 64;
inline constexpr std::size_t kGlobalHeaderBytes = kGlobalHeaderBits / 8;

/// Byte offset of the num_blocks u64 inside the global header -- the one
/// field a streaming writer may not know until finish(), back-filled via
/// ByteSink::patch when the count was not declared up-front.
inline constexpr std::size_t kHeaderNumBlocksOffset =
    (32 + 8 + 64 + 8 + 8 + 8 + 32 + 32) / 8;

/// Map Params::num_threads (0 = library default) to a concrete OpenMP
/// thread count, shared by every block-parallel driver.
inline int resolve_threads(int num_threads) {
  return num_threads > 0 ? num_threads : omp_get_max_threads();
}

// ---- v3 index footer ----------------------------------------------------
//
// Fixed-size trailer at the very end of an indexed container:
//   u64 index_offset   absolute byte offset of the offset table
//   u64 num_blocks     must match the global header
//   u32 kIndexFooterMagic ("PIDX")
// Reading it needs only the stream length, so a consumer can seek
// straight to the table without touching any payload bytes.

inline constexpr std::uint32_t kIndexFooterMagic = 0x58444950;  // "PIDX"
inline constexpr std::size_t kIndexFooterBytes = 8 + 8 + 4;

struct IndexFooter {
  std::uint64_t index_offset = 0;
  std::uint64_t num_blocks = 0;
};

inline void write_index_footer(bitio::BitWriter& w, const IndexFooter& f) {
  w.write_bits(f.index_offset, 64);
  w.write_bits(f.num_blocks, 64);
  w.write_bits(kIndexFooterMagic, 32);
}

/// Parse a footer from its raw bytes.  `tail` must be exactly the last
/// kIndexFooterBytes of a stream of `stream_size` bytes (callers with a
/// whole stream in memory use read_index_footer below; the IO layer
/// reads just the tail from disk).
inline IndexFooter parse_index_footer(std::span<const std::uint8_t> tail,
                                      std::size_t stream_size) {
  if (tail.size() != kIndexFooterBytes ||
      stream_size < kGlobalHeaderBytes + kIndexFooterBytes) {
    throw std::runtime_error("PaSTRI: stream too short for index footer");
  }
  bitio::BitReader r(tail);
  IndexFooter f;
  f.index_offset = r.read_bits(64);
  f.num_blocks = r.read_bits(64);
  if (r.read_bits(32) != kIndexFooterMagic) {
    throw std::runtime_error("PaSTRI: bad index footer magic");
  }
  if (f.index_offset < kGlobalHeaderBytes ||
      f.index_offset > stream_size - kIndexFooterBytes) {
    throw std::runtime_error("PaSTRI: index offset out of range");
  }
  return f;
}

inline IndexFooter read_index_footer(std::span<const std::uint8_t> stream) {
  if (stream.size() < kGlobalHeaderBytes + kIndexFooterBytes) {
    throw std::runtime_error("PaSTRI: stream too short for index footer");
  }
  return parse_index_footer(
      stream.subspan(stream.size() - kIndexFooterBytes), stream.size());
}

// ---- v4 dictionary footer -----------------------------------------------
//
// The v4 trailer is: payloads, dictionary section, offset table, then
// this fixed footer:
//   u64 dict_offset    absolute byte offset of the dictionary section
//   u64 index_offset   absolute byte offset of the offset table
//   u64 num_blocks     must match the global header
//   u32 kDictFooterMagic ("PID4")
// Payloads tile [kGlobalHeaderBytes, dict_offset), the dictionary
// section is [dict_offset, index_offset), the table runs up to the
// footer.  A distinct magic keeps v3 readers from misparsing the wider
// footer as their own.

inline constexpr std::uint32_t kDictFooterMagic = 0x34444950;  // "PID4"
inline constexpr std::size_t kDictFooterBytes = 8 + 8 + 8 + 4;

struct DictFooter {
  std::uint64_t dict_offset = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t num_blocks = 0;
};

inline void write_dict_footer(bitio::BitWriter& w, const DictFooter& f) {
  w.write_bits(f.dict_offset, 64);
  w.write_bits(f.index_offset, 64);
  w.write_bits(f.num_blocks, 64);
  w.write_bits(kDictFooterMagic, 32);
}

inline DictFooter parse_dict_footer(std::span<const std::uint8_t> tail,
                                    std::size_t stream_size) {
  if (tail.size() != kDictFooterBytes ||
      stream_size < kGlobalHeaderBytes + kDictFooterBytes) {
    throw std::runtime_error(
        "PaSTRI: stream too short for dictionary footer");
  }
  bitio::BitReader r(tail);
  DictFooter f;
  f.dict_offset = r.read_bits(64);
  f.index_offset = r.read_bits(64);
  f.num_blocks = r.read_bits(64);
  if (r.read_bits(32) != kDictFooterMagic) {
    throw std::runtime_error("PaSTRI: bad dictionary footer magic");
  }
  if (f.dict_offset < kGlobalHeaderBytes ||
      f.dict_offset > f.index_offset ||
      f.index_offset > stream_size - kDictFooterBytes) {
    throw std::runtime_error(
        "PaSTRI: dictionary footer offsets out of range");
  }
  return f;
}

inline DictFooter read_dict_footer(std::span<const std::uint8_t> stream) {
  if (stream.size() < kGlobalHeaderBytes + kDictFooterBytes) {
    throw std::runtime_error(
        "PaSTRI: stream too short for dictionary footer");
  }
  return parse_dict_footer(
      stream.subspan(stream.size() - kDictFooterBytes), stream.size());
}

// ---- Shared codec stages (compressor.cpp) -------------------------------
//
// The block encode splits into a parallel-safe quantize stage and a
// serialize stage so StreamWriter's dictionary pipeline can interleave
// the serial dictionary decisions between them (quantize in parallel,
// decide in append order, serialize in parallel).  The stateless
// compress_block runs the two back to back; with a null decision the
// serializer emits the dictionary-free (v2/v3) pattern section.

struct BlockPlan {
  bool zero = false;
  double eb = 0.0;
};

/// Stage 1: bound plan + pattern selection + quantization into `qb`
/// (untouched for zero blocks).  Uses only `ws` scratch -- safe to run
/// concurrently on distinct workspaces.
BlockPlan quantize_stage(std::span<const double> block,
                         const BlockSpec& spec, const Params& params,
                         CodecWorkspace& ws, QuantizedBlock& qb);

/// Stage 2 (serialize): emit the payload bits for one planned block.
/// `dict_stream` selects the v4 payload layout (2-bit pattern tag);
/// `dict` resolves DeltaRef bases and `dec` carries the stage-between
/// decision (both null on v2/v3 streams, where the PQ run is inline).
void serialize_stage(const BlockSpec& spec, const Params& params,
                     bool dict_stream, const PatternDict* dict,
                     const PatternDecision* dec, const BlockPlan& plan,
                     const QuantizedBlock& qb, bitio::BitWriter& w,
                     Stats* stats);

}  // namespace pastri::detail
