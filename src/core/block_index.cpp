#include "core/block_index.h"

#include <stdexcept>

#include "bitio/bit_reader.h"
#include "bitio/varint.h"

namespace pastri {

BlockIndex BlockIndex::from_payload_sizes(
    std::size_t payload_base, std::span<const std::size_t> sizes) {
  BlockIndex idx;
  idx.extents_.reserve(sizes.size());
  std::size_t off = payload_base;
  for (std::size_t len : sizes) {
    off += bitio::varint_width(len);
    idx.extents_.push_back({off, len});
    off += len;
  }
  idx.payload_end_ = off;
  return idx;
}

BlockIndex BlockIndex::parse(std::span<const std::uint8_t> table,
                             std::size_t payload_base,
                             std::size_t payload_end,
                             std::size_t num_blocks) {
  if (payload_base > payload_end) {
    throw std::runtime_error("PaSTRI: corrupt block index bounds");
  }
  // Each entry is at least one table byte, so a count beyond the table
  // size is corrupt -- reject before reserving storage for it.
  if (num_blocks > table.size()) {
    throw std::runtime_error("PaSTRI: truncated block index");
  }
  BlockIndex idx;
  idx.extents_.reserve(num_blocks);
  bitio::BitReader r(table);
  std::size_t off = payload_base;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    std::uint64_t len;
    try {
      len = bitio::read_varint(r);
    } catch (const std::exception&) {
      throw std::runtime_error("PaSTRI: truncated block index");
    }
    const std::size_t width = bitio::varint_width(len);
    // Overflow-safe: the entry (varint + payload) must fit in what is
    // left of [off, payload_end).
    if (len > payload_end || off + width > payload_end ||
        len > payload_end - off - width) {
      throw std::runtime_error("PaSTRI: corrupt block index entry");
    }
    off += width;
    idx.extents_.push_back({off, static_cast<std::size_t>(len)});
    off += static_cast<std::size_t>(len);
  }
  if (off != payload_end) {
    throw std::runtime_error(
        "PaSTRI: block index does not tile the payload section");
  }
  if (r.bits_remaining() != 0) {
    throw std::runtime_error("PaSTRI: trailing bytes in block index");
  }
  idx.payload_end_ = off;
  return idx;
}

BlockIndex BlockIndex::scan(std::span<const std::uint8_t> stream,
                            std::size_t payload_base,
                            std::size_t num_blocks) {
  if (payload_base > stream.size() ||
      num_blocks > stream.size() - payload_base) {
    // Every block costs at least its one-byte length varint.
    throw std::runtime_error("PaSTRI: truncated stream");
  }
  BlockIndex idx;
  idx.extents_.reserve(num_blocks);
  bitio::BitReader r(stream.subspan(payload_base));
  std::size_t end = payload_base;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::uint64_t len = bitio::read_varint(r);
    const std::size_t off = payload_base + r.bit_position() / 8;
    if (len > stream.size() || off + len > stream.size()) {
      throw std::runtime_error("PaSTRI: truncated stream");
    }
    idx.extents_.push_back({off, static_cast<std::size_t>(len)});
    r.skip_bits(8 * static_cast<std::size_t>(len));
    end = off + static_cast<std::size_t>(len);
  }
  idx.payload_end_ = end;
  return idx;
}

void BlockIndex::serialize(bitio::BitWriter& w) const {
  for (const BlockExtent& e : extents_) bitio::write_varint(w, e.length);
}

const BlockExtent& BlockIndex::extent(std::size_t b) const {
  if (b >= extents_.size()) {
    throw std::out_of_range("BlockIndex: block out of range");
  }
  return extents_[b];
}

std::size_t BlockIndex::serialized_bytes() const {
  std::size_t n = 0;
  for (const BlockExtent& e : extents_) n += bitio::varint_width(e.length);
  return n;
}

}  // namespace pastri
