// pattern_dict.h - Cross-block pattern dictionary (container format v4).
//
// PaSTRI exploits self-similarity *inside* a shell block: sub-blocks are
// near scalar multiples of one pattern.  The physics goes further --
// blocks of the same shell class share near-identical scaled patterns
// across the whole tensor (the global low-rank structure THC builds on).
// This module is the container-level dedup layer for that redundancy:
// each quantized pattern (PQ array) is fingerprinted by its bit width
// and content hash; an exact match is replaced by a reference to the
// matching dictionary entry, and a near match by a base reference plus a
// narrow signed deviation run (the same fixed-width signed-run machinery
// the ECQ sparse path uses).
//
// The dictionary is *adaptive*: entries are defined by the literal
// blocks themselves, in block append order, so a sequential decoder
// (StreamConsumer, works on a pipe) reconstructs it with a cheap
// pattern-prefix scan and never needs to read ahead.  For O(1) random
// access the v4 container trailer additionally records which block
// defined each entry (ordinals only -- the pattern bytes are never
// stored twice), letting BlockReader pre-decode all bases via the block
// index before serving reads.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"

namespace pastri {

/// Dictionary policy for a container (Params::dict).  `Auto` enables the
/// dictionary when sub-blocks are large enough that pattern references
/// robustly beat the 2-bit per-block tag overhead.
enum class DictMode : std::uint8_t {
  Off = 0,   ///< v3 container, bytes bit-identical to previous releases
  On = 1,    ///< v4 container with the pattern dictionary
  Auto = 2,  ///< On iff spec.sub_block_size >= 8
};

/// How one block's pattern section is represented in a v4 payload (the
/// 2-bit tag following P_b; value 3 is reserved).
enum class PatternCode : std::uint8_t {
  Literal = 0,   ///< PQ stored inline (and defines the next entry)
  ExactRef = 1,  ///< varint entry id, PQ equals the entry verbatim
  DeltaRef = 2,  ///< varint entry id + 6-bit dev width + signed dev run
};

/// Encoder-side outcome of the dictionary lookup for one block.
struct PatternDecision {
  PatternCode code = PatternCode::Literal;
  std::uint32_t ref = 0;  ///< entry id for ExactRef/DeltaRef
  unsigned dev_bits = 0;  ///< DeltaRef: two's-complement deviation width
  bool defined = false;   ///< Literal: this block defined a new entry
};

/// Smallest two's-complement width that represents `v` (1..64).
inline unsigned signed_width(std::int64_t v) {
  // v ^ (v >> 63) folds negatives onto their ones-complement magnitude;
  // countl_zero(0) == 64 gives width 1 for v in {0, -1}.
  return 65 - static_cast<unsigned>(std::countl_zero(
                  static_cast<std::uint64_t>(v ^ (v >> 63))));
}

/// The dictionary proper: committed pattern entries plus the lookup
/// structures (content-hash map for exact matches, per-width recency
/// ring for near matches).  One instance per container, owned by
/// CodecContext.  Not thread-safe for mutation; read-only access
/// (entry(), size()) is safe concurrently once population is done.
class PatternDict {
 public:
  struct Entry {
    std::vector<std::int64_t> pq;
    unsigned pattern_bits = 0;
    std::uint64_t defining_block = 0;  ///< ordinal of the literal block
  };

  /// Entry-count cap, mirrored exactly by encoder and decoder: a literal
  /// block defines an entry iff the dictionary is not full when the
  /// block is appended.
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 20;

  /// Pattern-section tag width in v4 payloads.
  static constexpr unsigned kTagBits = 2;

  /// Near-match candidates probed per block (most recent entries of the
  /// same pattern width).
  static constexpr unsigned kNearCandidates = 8;

  std::size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= kMaxEntries; }

  const Entry& entry(std::size_t id) const {
    if (id >= entries_.size()) {
      throw std::runtime_error("PaSTRI: dictionary reference out of range");
    }
    return entries_[id];
  }

  /// Drop all entries (a context reused for a new container).
  void clear();

  /// Encoder: pick the cheapest representation of `pq` against entries
  /// committed by *earlier* blocks, then -- when the choice is Literal
  /// and the dictionary has room -- commit this pattern as the next
  /// entry.  Serial with respect to block append order.
  PatternDecision decide_and_commit(std::span<const std::int64_t> pq,
                                    unsigned pattern_bits,
                                    std::uint64_t block_ordinal);

  /// Decoder: append the entry a literal block defines.  Returns false
  /// when the dictionary is full (the encoder stopped defining entries
  /// at exactly the same point, so the id assignment stays in lockstep).
  bool add_decoded(std::span<const std::int64_t> pq, unsigned pattern_bits,
                   std::uint64_t block_ordinal);

  /// Serialize the v4 trailer dictionary section: varint entry count,
  /// then one varint defining-block ordinal per entry (id order).  The
  /// pattern bytes live only in the defining payloads.
  void serialize_section(bitio::BitWriter& w) const;

  /// Parse the trailer section written by serialize_section.  Throws
  /// std::runtime_error on a count over kMaxEntries or an ordinal at or
  /// past `num_blocks` (dangling defining reference).
  static std::vector<std::uint64_t> parse_section(
      std::span<const std::uint8_t> section, std::uint64_t num_blocks);

  /// Exact serialized size of the trailer section in bytes.
  std::size_t section_bytes() const;

 private:
  struct Ring {
    std::array<std::uint32_t, kNearCandidates> ids{};
    std::size_t count = 0;
    std::size_t next = 0;
  };

  static std::uint64_t hash_(std::span<const std::int64_t> pq,
                             unsigned pattern_bits);
  bool equals_(const Entry& e, std::span<const std::int64_t> pq,
               unsigned pattern_bits) const;
  void commit_(std::span<const std::int64_t> pq, unsigned pattern_bits,
               std::uint64_t block_ordinal, std::uint64_t hash);

  std::vector<Entry> entries_;
  /// First entry id per content hash (collisions keep the first; a
  /// false-negative dedup costs ratio, never correctness).
  std::unordered_map<std::uint64_t, std::uint32_t> by_hash_;
  /// Recency ring per pattern width (P_b <= 54, see quantize.h).
  std::array<Ring, 64> recent_{};
};

}  // namespace pastri
