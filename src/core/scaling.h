// scaling.h - Pattern-scaling metrics (Section IV-A, Fig. 4).
//
// Each metric selects one sub-block as the scaled pattern (SP) and
// assigns every sub-block a single scaling coefficient S with |S| <= 1.
// The paper evaluates five candidates and adopts ER (ratio of extremums):
// the pattern is the sub-block containing the block-wide absolute
// extremum, and because that extremum dominates every other sub-block's
// value at the same local index, ER is the metric for which |S| <= 1
// holds *by construction* -- the property the S-quantization of
// Section IV-B relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/block_spec.h"

namespace pastri {

enum class ScalingMetric : std::uint8_t {
  FR = 0,   ///< ratio of first points
  ER = 1,   ///< ratio of extremums (the paper's choice)
  AR = 2,   ///< ratio of averages
  AAR = 3,  ///< ratio of absolute averages (sign-corrected)
  IS = 4,   ///< interval scaling / ratio of ranges (sign-corrected)
};

const char* scaling_metric_name(ScalingMetric m);

/// Result of pattern selection over one block.
struct PatternSelection {
  std::size_t pattern_sub_block = 0;  ///< index of the SP sub-block
  std::vector<double> scales;         ///< one coefficient per sub-block,
                                      ///< clamped to [-1, 1]
};

/// Select the pattern sub-block and per-sub-block scaling coefficients.
/// `block.size()` must equal `spec.block_size()`.  For an all-zero block
/// the pattern is sub-block 0 with all-zero scales.
PatternSelection select_pattern(std::span<const double> block,
                                const BlockSpec& spec, ScalingMetric metric);

/// In-place variant for the allocation-free hot path: `out.scales` and
/// `scratch` (per-sub-block metric values) are resized, reusing their
/// capacity across blocks with no per-call clears (see CodecWorkspace
/// in pastri.h).
void select_pattern(std::span<const double> block, const BlockSpec& spec,
                    ScalingMetric metric, PatternSelection& out,
                    std::vector<double>& scratch);

// ---- Fused-scan stages (compress_block's single-pass plan) -------------
//
// select_pattern == stage 1 + stage 2.  The encode hot path calls them
// separately so one block scan serves both the bound plan and pattern
// selection: for ER (the paper's metric) the stage-1 values are the
// per-sub-block absolute maxima, whose maximum IS the block extremum
// plan_bound otherwise rescans for -- so the zero-block decision and
// the BlockRelative bound come free, and stage 2 never rescans the
// block (the ER scale lookup is O(num_SB) strided reads).

/// Stage 1: per-sub-block metric values into `metric_val` (resized to
/// num_sub_blocks; every entry is written, nothing needs clearing).
/// Vectorized through the simd kernel table for ER.
void compute_metric_values(std::span<const double> block,
                           const BlockSpec& spec, ScalingMetric metric,
                           std::vector<double>& metric_val);

/// Stage 2: pick the pattern sub-block (first argmax of `metric_val`,
/// which must be stage 1's output for the same block/metric) and fill
/// `out.scales`.
void finish_selection(std::span<const double> block, const BlockSpec& spec,
                      ScalingMetric metric,
                      std::span<const double> metric_val,
                      PatternSelection& out);

}  // namespace pastri
