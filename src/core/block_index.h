// block_index.h - Per-block offset table of a PaSTRI container.
//
// The paper's key structural property -- every block is a byte-aligned,
// independently decodable unit (Section IV-C) -- only pays off for random
// access if block b can be *located* without walking all prior payloads.
// Indexed (v3) containers therefore append a delta-varint coded table of
// payload lengths after the payloads, plus a fixed footer locating the
// table.  Unindexed (v2) streams get an equivalent index rebuilt once by
// the old sequential varint scan.  Either way the result is a BlockIndex:
// the absolute byte extent of every block payload, i.e. O(1) seek.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bitio/bit_writer.h"

namespace pastri {

/// Byte extent of one block payload inside a stream.
struct BlockExtent {
  std::size_t offset = 0;  ///< absolute byte offset of the payload
  std::size_t length = 0;  ///< payload bytes (excludes the length varint)

  bool operator==(const BlockExtent&) const = default;
};

class BlockIndex {
 public:
  BlockIndex() = default;

  /// Build from in-memory payload sizes at write time.  `payload_base`
  /// is the byte offset where the first length varint starts (i.e. the
  /// global header size).
  static BlockIndex from_payload_sizes(std::size_t payload_base,
                                       std::span<const std::size_t> sizes);

  /// Parse a serialized table.  `table` must span exactly the index
  /// section; the payload region it describes is [payload_base,
  /// payload_end).  Throws std::runtime_error if the table is truncated,
  /// has trailing bytes, or does not tile the payload region exactly.
  static BlockIndex parse(std::span<const std::uint8_t> table,
                          std::size_t payload_base, std::size_t payload_end,
                          std::size_t num_blocks);

  /// Rebuild the index of an unindexed (v2) stream by the sequential
  /// varint walk over [payload_base, stream.size()).  Throws
  /// std::runtime_error / std::out_of_range on truncated input.
  static BlockIndex scan(std::span<const std::uint8_t> stream,
                         std::size_t payload_base, std::size_t num_blocks);

  /// Append the table (one length varint per block) to `w`.
  void serialize(bitio::BitWriter& w) const;

  std::size_t num_blocks() const { return extents_.size(); }
  bool empty() const { return extents_.empty(); }

  /// Extent of block b; throws std::out_of_range when b >= num_blocks().
  const BlockExtent& extent(std::size_t b) const;

  /// One past the last payload byte (payload_base for an empty index).
  std::size_t payload_end() const { return payload_end_; }

  /// Serialized table size in bytes (the container's index overhead).
  std::size_t serialized_bytes() const;

 private:
  std::vector<BlockExtent> extents_;
  std::size_t payload_end_ = 0;
};

}  // namespace pastri
