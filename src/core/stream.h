// stream.h - Bounded-memory streaming compression and decompression.
//
// GAMESS-style producers emit ERI shell blocks one quartet at a time and
// consumers read them back each SCF iteration; holding the whole dataset
// in memory on both sides defeats the purpose of compression for the
// largest systems.  The classes here provide the out-of-core pipeline
// with O(chunk) peak memory on both ends:
//
//   * `StreamWriter` accepts blocks (or arbitrarily sliced value chunks)
//     incrementally, encodes them in OpenMP-parallel batches, writes the
//     container bytes to a `ByteSink` as each batch completes, and keeps
//     only the per-block payload sizes (the delta-varint offset table)
//     buffered until `finish()` emits the table and the PIDX footer.
//
//   * `StreamConsumer` pulls compressed bytes from a `ByteSource` in
//     fixed-size chunks and decodes blocks in OpenMP-parallel batches,
//     so the whole compressed stream never needs to be materialized --
//     it works on a pipe.
//
// The produced bytes are exactly the `pastri::compress` format (the
// one-shot drivers are thin wrappers over these classes), so streaming
// and one-shot APIs interoperate both ways, bit-identically.
//
// `StreamCompressor` / `StreamDecompressor` remain as the original
// buffer-at-once conveniences, now implemented on top of the writer.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>

#include "core/pastri.h"

namespace pastri {

// ---- Byte transport -----------------------------------------------------

/// Output abstraction of `StreamWriter`.  Offsets passed to `patch` are
/// container-absolute: 0 is the first byte of the stream's global header.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Append bytes at the current end of the sink.
  virtual void write(std::span<const std::uint8_t> bytes) = 0;

  /// Whether `patch` is available.  Writers that do not know the block
  /// count up-front need it to back-fill the header at finish().
  virtual bool can_patch() const { return false; }

  /// Overwrite previously written bytes at container offset `offset`.
  /// Default: throws std::logic_error.
  virtual void patch(std::size_t offset,
                     std::span<const std::uint8_t> bytes);
};

/// In-memory sink; the container starts at byte 0 of the buffer.
class VectorSink final : public ByteSink {
 public:
  void write(std::span<const std::uint8_t> bytes) override;
  bool can_patch() const override { return true; }
  void patch(std::size_t offset,
             std::span<const std::uint8_t> bytes) override;

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sink over a std::ostream.  Seekability is probed once (tellp); on a
/// non-seekable stream (pipe, stdout) `can_patch` is false and writers
/// must declare the block count up-front.  `container_base` is the
/// stream position of the container's first byte -- defaulted to the
/// position at construction, passed explicitly when resuming a container
/// that started earlier in the file.
class OstreamSink final : public ByteSink {
 public:
  explicit OstreamSink(std::ostream& os);
  OstreamSink(std::ostream& os, std::size_t container_base);

  void write(std::span<const std::uint8_t> bytes) override;
  bool can_patch() const override { return seekable_; }
  void patch(std::size_t offset,
             std::span<const std::uint8_t> bytes) override;

 private:
  std::ostream& os_;
  std::size_t base_ = 0;
  bool seekable_ = false;
};

/// Asynchronous io stage: decouples the encode stage from the sink it
/// feeds.  write()/patch() enqueue coalesced chunks onto a bounded queue
/// that a background drain thread applies to the wrapped sink in order,
/// so the caller (typically a StreamWriter flushing a batch) returns to
/// encoding while the bytes hit the disk -- the "io" stage of the fused
/// compute->compress->io pipeline.  Because the queue preserves op order
/// (patches included), the bytes reaching the inner sink are exactly the
/// bytes a direct caller would have written: the container is
/// byte-identical with the async stage on or off.
///
/// Backpressure: the queue holds at most `queue_depth` chunks of
/// ~`chunk_bytes` each, so a slow sink stalls the encoder instead of
/// buffering the stream; the stall is visible in backpressure_wait_ns().
///
/// Error contract: a sink failure on the drain thread is captured and
/// rethrown from the next write()/patch()/flush() call; subsequent
/// queued ops are discarded.  Call flush() before reading the file back
/// -- the destructor drains but swallows errors (it must not throw).
/// One writer thread at a time; the drain thread is internal.
class AsyncSink final : public ByteSink {
 public:
  struct Options {
    std::size_t queue_depth = 4;           ///< chunks in flight (>= 1)
    std::size_t chunk_bytes = 256 * 1024;  ///< coalescing granularity
  };

  explicit AsyncSink(ByteSink& inner);
  AsyncSink(ByteSink& inner, const Options& opt);
  ~AsyncSink() override;
  AsyncSink(const AsyncSink&) = delete;
  AsyncSink& operator=(const AsyncSink&) = delete;

  void write(std::span<const std::uint8_t> bytes) override;
  bool can_patch() const override;
  void patch(std::size_t offset,
             std::span<const std::uint8_t> bytes) override;

  /// Barrier: every op enqueued so far has been applied to the inner
  /// sink.  Rethrows the first drain-thread error, if any.
  void flush();

  /// Stall/busy accounting for pipeline telemetry (stable after flush):
  /// time the writer spent blocked on a full queue, time the drain
  /// thread spent waiting for work, and time it spent inside the inner
  /// sink's write/patch.
  std::uint64_t backpressure_wait_ns() const;
  std::uint64_t idle_wait_ns() const;
  std::uint64_t apply_ns() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Input abstraction of `StreamConsumer`.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Read up to out.size() bytes; returns the count read (0 = EOF).
  virtual std::size_t read(std::span<std::uint8_t> out) = 0;
};

/// Source over an in-memory span (must outlive the source).
class SpanSource final : public ByteSource {
 public:
  explicit SpanSource(std::span<const std::uint8_t> data) : data_(data) {}
  std::size_t read(std::span<std::uint8_t> out) override;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Source over a std::istream (works on pipes/stdin).
class IstreamSource final : public ByteSource {
 public:
  explicit IstreamSource(std::istream& is) : is_(is) {}
  std::size_t read(std::span<std::uint8_t> out) override;

 private:
  std::istream& is_;
};

// ---- Streaming compression ---------------------------------------------

/// Sentinel for "block count not known until finish()".
inline constexpr std::uint64_t kUnknownBlockCount = ~std::uint64_t{0};

struct StreamWriterOptions {
  /// Blocks per encode batch -- the depth of the bounded producer/worker
  /// queue and the writer's peak block memory.  0 = auto: enough blocks
  /// to keep every OpenMP worker busy, capped at a few MB of staging.
  std::size_t batch_blocks = 0;

  /// Total block count declared up-front.  When known, the header is
  /// written final immediately and any sink works; when left at
  /// kUnknownBlockCount the sink must support patch() so the count can
  /// be back-filled at finish().
  std::uint64_t expected_blocks = kUnknownBlockCount;
};

/// Incremental compressor with O(batch) memory.
///
/// State machine: open --put_block/put_values*--> open --finish--> done.
/// Blocks are encoded in parallel inside each batch but serialized to
/// the sink strictly in append order, so the container bytes are
/// identical to the one-shot `compress` of the concatenated blocks --
/// independent of thread count, batch size, or chunk slicing.  After
/// `finish()` the writer is finished: further appends throw
/// std::logic_error.
class StreamWriter {
 public:
  /// Start a fresh container.  Throws std::invalid_argument on bad
  /// spec/params, std::logic_error when the block count is unknown and
  /// the sink cannot patch.  With Params::dict resolved to on, the
  /// container is written in format v4 (pattern dictionary); otherwise
  /// the bytes are bit-identical to previous releases (v3).
  StreamWriter(ByteSink& sink, const BlockSpec& spec, const Params& params,
               const StreamWriterOptions& opt = {});

  /// Start a fresh container on an existing context (its dictionary is
  /// reset via begin_container(); its workspace pool is reused warm).
  /// The context must outlive the writer.
  StreamWriter(ByteSink& sink, CodecContext& ctx,
               const StreamWriterOptions& opt = {});

  /// Resume an existing indexed container whose header yielded `info`
  /// and whose offset table parsed to `index`: the sink must be
  /// positioned at index.payload_end() (the old table and footer are
  /// overwritten) and must support patch().  `params` controls the
  /// encoding of appended blocks; its bound/metric/tree must equal the
  /// header's or decoding would diverge (throws std::invalid_argument).
  /// Dictionary (v4) containers cannot be resumed -- their dictionary
  /// state is sealed at finish() -- and appended blocks of a v3
  /// container are always dictionary-free (DictMode::On throws).
  StreamWriter(ByteSink& sink, const StreamInfo& info, const Params& params,
               const BlockIndex& index,
               const StreamWriterOptions& opt = {});

  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Append one block (size must equal spec.block_size()).
  void put_block(std::span<const double> block);

  /// Append an arbitrary slice of values; chunk boundaries need not
  /// align to blocks (a partial tail is carried over).  finish() throws
  /// if the total appended is not a whole number of blocks.
  void put_values(std::span<const double> values);

  /// Blocks appended so far (including any not yet flushed to the sink,
  /// and pre-existing blocks of a resumed container).
  std::size_t blocks_appended() const;

  /// Values buffered from a put_values tail that has not completed a
  /// block yet (0 when aligned).
  std::size_t pending_values() const { return tail_.size(); }

  /// Flush the last batch, emit the offset table and footer, back-fill
  /// the header block count if it was unknown.  Returns the total
  /// container size in bytes.
  std::size_t finish();

  /// Accounting (num_blocks/input_bytes update per append; payload and
  /// bookkeeping bit counters as batches flush; output_bytes at
  /// finish()).  For a fresh writer the post-finish stats are identical
  /// to what `compress` reports for the same data.
  const Stats& stats() const { return stats_; }

 private:
  void init_container_();
  void flush_batch_();
  void flush_batch_dict_();

  /// Where one block's encoded payload lives: byte range `[off, off+len)`
  /// of the encoding worker's arena (the context workspace pool).  The
  /// serializer walks these in append order, so the container bytes are
  /// scheduling-independent even though payloads are scattered across
  /// per-thread arenas.
  struct PayloadRef {
    std::size_t tid = 0;
    std::size_t off = 0;
    std::size_t len = 0;
  };

  /// Per-block staging of the dictionary pipeline (quantize in parallel,
  /// decide in append order, serialize in parallel); defined in
  /// stream.cpp, allocated only for v4 containers.
  struct DictBatch;

  ByteSink& sink_;
  BlockSpec spec_;
  Params params_;
  std::uint64_t expected_blocks_ = kUnknownBlockCount;
  bool patch_header_ = false;
  bool finished_ = false;
  std::size_t resumed_blocks_ = 0;

  std::size_t batch_capacity_ = 0;   // blocks per batch
  std::vector<double> batch_;        // staged raw blocks
  std::size_t batch_count_ = 0;      // blocks currently staged
  std::vector<double> tail_;         // partial block from put_values

  /// Container codec state: the dictionary (v4) and the per-worker codec
  /// scratch + payload arenas, sized on the first batch and reused for
  /// every batch after (steady-state flushes perform no heap allocation;
  /// tests/test_alloc_free.cpp pins this).  Owned unless the caller
  /// passed a context in.
  CodecContext* ctx_ = nullptr;
  std::unique_ptr<CodecContext> owned_ctx_;
  std::unique_ptr<DictBatch> dict_batch_;

  std::vector<PayloadRef> refs_;     // per staged block, append order

  std::vector<std::size_t> sizes_;   // payload bytes per block (the table)
  std::size_t bytes_emitted_ = 0;    // container bytes written so far
  Stats stats_;
};

// ---- Streaming decompression -------------------------------------------

struct StreamConsumerOptions {
  /// Read granularity from the source in bytes.  0 = auto (1 MiB).  The
  /// internal buffer grows beyond this only if a single block payload is
  /// larger than the chunk.
  std::size_t chunk_bytes = 0;

  /// Blocks per decode batch (OpenMP-parallel).  0 = auto.
  std::size_t batch_blocks = 0;

  /// OpenMP threads for batch decode; 0 = library default.
  int num_threads = 0;
};

/// Chunked decoder: pulls compressed bytes on demand and decodes blocks
/// in order with O(chunk + batch) memory.  Reads legacy (v2), indexed
/// (v3), and dictionary (v4) streams -- the sequential payload walk
/// needs no index, the v4 dictionary rebuilds adaptively from the
/// payloads themselves, and trailing index/dictionary-section bytes are
/// simply never requested from the source (it works on a pipe).
class StreamConsumer {
 public:
  /// Reads and parses the global header immediately; throws
  /// std::runtime_error on malformed input.
  explicit StreamConsumer(ByteSource& source,
                          const StreamConsumerOptions& opt = {});

  const StreamInfo& info() const { return info_; }
  std::size_t blocks_remaining() const { return remaining_; }

  /// Decode up to out.size()/block_size whole blocks into the front of
  /// `out`; returns the number of blocks decoded (0 = stream exhausted).
  /// Throws std::runtime_error on truncated/corrupt payload bytes.
  std::size_t read_blocks(std::span<double> out);

  /// Fill `out` (any size, need not align to blocks) with the next
  /// decoded values; returns the count written (0 = exhausted).
  std::size_t read_values(std::span<double> out);

 private:
  void refill_();
  void ensure_(std::size_t n);
  std::size_t decode_batch_(std::span<double> out, std::size_t max_blocks);

  /// One whole payload gathered in buf_: `[pos_ + off, pos_ + off + len)`.
  struct Extent {
    std::size_t off = 0;
    std::size_t len = 0;
  };

  ByteSource& source_;
  StreamInfo info_;
  Params params_;
  std::size_t remaining_ = 0;
  std::size_t batch_blocks_ = 0;
  std::size_t max_payload_ = 0;  // sanity cap on one block's payload

  /// Container codec state: the dictionary for v4 streams (rebuilt by a
  /// serial pattern-prefix scan ahead of each batch, so the parallel
  /// block decodes only read it) and the per-worker workspace pool.
  std::unique_ptr<CodecContext> ctx_;

  // Reused across batches so steady-state decode allocates nothing.
  std::vector<Extent> extents_;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // next unconsumed byte in buf_
  std::size_t end_ = 0;  // valid bytes in buf_
  bool eof_ = false;

  std::vector<double> carry_;     // partially consumed decoded block
  std::size_t carry_pos_ = 0;
};

// ---- Buffer-at-once conveniences (original streaming API) --------------

/// Compress blocks one at a time; `finish()` yields a stream readable by
/// `decompress` / `StreamConsumer`.  Thin wrapper over StreamWriter with
/// an in-memory sink (the whole output is buffered -- use StreamWriter
/// directly for bounded memory).
class StreamCompressor {
 public:
  StreamCompressor(const BlockSpec& spec, const Params& params);
  ~StreamCompressor();

  /// Compress and buffer one block (size must equal spec.block_size()).
  void append_block(std::span<const double> block);

  /// Number of blocks appended so far.
  std::size_t blocks_appended() const;

  /// Finalize and return the complete stream.  The compressor can be
  /// reused afterwards (it resets to empty).
  std::vector<std::uint8_t> finish();

  /// Accounting so far (input/output byte totals are updated at finish).
  const Stats& stats() const;

 private:
  void ensure_writer_();

  BlockSpec spec_;
  Params params_;
  std::unique_ptr<VectorSink> sink_;
  std::unique_ptr<StreamWriter> writer_;
  Stats stats_;
};

/// Iterate blocks of an in-memory compressed stream without
/// decompressing it all (wrapper over StreamConsumer + SpanSource).
class StreamDecompressor {
 public:
  /// Parses the header immediately; throws on malformed input.
  /// The span must outlive the decompressor.
  explicit StreamDecompressor(std::span<const std::uint8_t> stream);

  const StreamInfo& info() const { return consumer_.info(); }

  /// Blocks remaining to read.
  std::size_t blocks_remaining() const {
    return consumer_.blocks_remaining();
  }

  /// Decompress the next block into `out` (size spec.block_size()).
  /// Returns false when the stream is exhausted.
  bool next_block(std::span<double> out);

 private:
  std::unique_ptr<SpanSource> source_;
  StreamConsumer consumer_;
};

}  // namespace pastri
