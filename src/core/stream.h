// stream.h - Incremental (block-at-a-time) compression and
// decompression.
//
// GAMESS-style producers emit ERI shell blocks one quartet at a time and
// consumers read them back each SCF iteration; holding the whole dataset
// in memory on both sides defeats the purpose of compression for the
// largest systems.  These classes provide the out-of-core pipeline the
// paper's infrastructure implies: append blocks as they are computed,
// then stream them back without materializing the full array.
//
// The produced bytes are exactly the `pastri::compress` format, so the
// streaming and one-shot APIs interoperate both ways.
#pragma once

#include "core/pastri.h"

namespace pastri {

/// Compress blocks one at a time; `finish()` yields a stream readable by
/// `decompress` / `StreamDecompressor`.
class StreamCompressor {
 public:
  StreamCompressor(const BlockSpec& spec, const Params& params);

  /// Compress and buffer one block (size must equal spec.block_size()).
  void append_block(std::span<const double> block);

  /// Number of blocks appended so far.
  std::size_t blocks_appended() const { return payloads_.size(); }

  /// Finalize and return the complete stream.  The compressor can be
  /// reused afterwards (it resets to empty).
  std::vector<std::uint8_t> finish();

  /// Accounting so far (input/output byte totals are updated at finish).
  const Stats& stats() const { return stats_; }

 private:
  BlockSpec spec_;
  Params params_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  Stats stats_;
};

/// Iterate blocks of a compressed stream without decompressing it all.
class StreamDecompressor {
 public:
  /// Parses the header immediately; throws on malformed input.
  /// The span must outlive the decompressor.
  explicit StreamDecompressor(std::span<const std::uint8_t> stream);

  const StreamInfo& info() const { return info_; }

  /// Blocks remaining to read.
  std::size_t blocks_remaining() const { return remaining_; }

  /// Decompress the next block into `out` (size spec.block_size()).
  /// Returns false when the stream is exhausted.
  bool next_block(std::span<double> out);

 private:
  std::span<const std::uint8_t> stream_;
  StreamInfo info_;
  Params params_;
  std::size_t remaining_ = 0;
  std::size_t byte_pos_ = 0;
};

}  // namespace pastri
