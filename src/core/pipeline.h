// pipeline.h - Bounded-queue stage primitive for the fused
// compute->compress->io pipeline.
//
// The FPGA PaSTRI successor (arXiv:2303.13632) computes and compresses
// ERIs in one hardware pipeline with no intermediate tensor; the
// software analogue connects asynchronous stages (quartet generation,
// batch encode, shard io) with bounded queues so the stages overlap
// while peak memory stays O(batch x depth).  `BoundedQueue` is that
// connective tissue: a small MPMC blocking queue with close semantics
// (producers signal end-of-stream; consumers drain and stop) and
// per-side stall accounting, which is what the pipeline's overlap
// telemetry (pastri_qc_pipeline_*_stall_ns) is computed from.
//
// The queue is deliberately mutex-based, not lock-free: items are whole
// chunks (a batch of blocks or ~256 KiB of container bytes), so queue
// operations happen a few thousand times per run and correctness under
// ThreadSanitizer matters far more than nanoseconds of lock overhead.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace pastri {

template <typename T>
class BoundedQueue {
 public:
  /// A queue that holds at most `capacity` items (>= 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room, then enqueue.  Returns false (item
  /// dropped) if the queue was closed before room appeared.  When
  /// `wait_ns` is non-null the time this call spent blocked is added to
  /// it as well -- per-caller stall attribution for stages that share
  /// one queue (e.g. the pipeline's N producers).
  bool push(T item, std::uint64_t* wait_ns = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
      const std::uint64_t w = elapsed_ns_(t0);
      producer_wait_ns_ += w;
      if (wait_ns != nullptr) *wait_ns += w;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available, then dequeue into `out`.
  /// Returns false once the queue is closed AND drained.  `wait_ns` as
  /// for push().
  bool pop(T& out, std::uint64_t* wait_ns = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (items_.empty() && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
      const std::uint64_t w = elapsed_ns_(t0);
      consumer_wait_ns_ += w;
      if (wait_ns != nullptr) *wait_ns += w;
    }
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  /// End-of-stream: blocked producers drop their item and return false,
  /// consumers keep draining what is queued, then pop() returns false.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Cumulative time producers spent blocked on a full queue (the
  /// downstream stage is the bottleneck) and consumers on an empty one
  /// (the upstream stage is).  Read these after the stage threads have
  /// joined, or accept a slightly stale view.
  std::uint64_t producer_wait_ns() const {
    std::lock_guard<std::mutex> lk(mu_);
    return producer_wait_ns_;
  }
  std::uint64_t consumer_wait_ns() const {
    std::lock_guard<std::mutex> lk(mu_);
    return consumer_wait_ns_;
  }

 private:
  static std::uint64_t elapsed_ns_(
      std::chrono::steady_clock::time_point t0) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t producer_wait_ns_ = 0;
  std::uint64_t consumer_wait_ns_ = 0;
};

}  // namespace pastri
