#include "core/ecq_tree.h"

#include <cassert>
#include <stdexcept>

#include "core/quantize.h"

namespace pastri {
namespace {

// Tree 4 helpers: bin i >= 2 holds the 2^(i-1) values +-[2^(i-2), 2^(i-1)-1],
// addressed by a sign bit plus (i-2) offset bits.
void tree4_encode(bitio::BitWriter& w, std::int64_t v) {
  if (v == 0) {
    w.write_bit(false);
    return;
  }
  const unsigned bin = ecq_bin(v);
  for (unsigned k = 0; k < bin - 1; ++k) w.write_bit(true);
  w.write_bit(false);
  const bool neg = v < 0;
  const std::uint64_t mag = neg ? static_cast<std::uint64_t>(-v)
                                : static_cast<std::uint64_t>(v);
  const std::uint64_t offset = mag - (std::uint64_t{1} << (bin - 2));
  w.write_bit(neg);
  if (bin > 2) w.write_bits(offset, bin - 2);
}

std::int64_t tree4_decode(bitio::BitReader& r) {
  unsigned ones = 0;
  while (r.read_bit()) ++ones;
  if (ones == 0) return 0;
  const unsigned bin = ones + 1;
  const bool neg = r.read_bit();
  std::uint64_t offset = (bin > 2) ? r.read_bits(bin - 2) : 0;
  const std::int64_t mag = static_cast<std::int64_t>(
      (std::uint64_t{1} << (bin - 2)) + offset);
  return neg ? -mag : mag;
}

}  // namespace

const char* ecq_tree_name(EcqTree t) {
  switch (t) {
    case EcqTree::Tree1: return "Tree1";
    case EcqTree::Tree2: return "Tree2";
    case EcqTree::Tree3: return "Tree3";
    case EcqTree::Tree4: return "Tree4";
    case EcqTree::Tree5: return "Tree5";
  }
  return "?";
}

unsigned ecq_code_length(EcqTree t, std::int64_t v, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      return v == 0 ? 1 : 1 + ecb_max;
    case EcqTree::Tree2:
      if (v == 0) return 1;
      if (v == 1) return 2;
      if (v == -1) return 3;
      return 3 + ecb_max;
    case EcqTree::Tree3:
      if (v == 0) return 1;
      if (v == 1 || v == -1) return 3;
      return 2 + ecb_max;
    case EcqTree::Tree4:
      // (bin-1) unary ones + terminating zero + sign + (bin-2) offset.
      return v == 0 ? 1 : 2 * ecq_bin(v) - 1;
    case EcqTree::Tree5:
      if (ecb_max <= 2) return v == 0 ? 1 : 2;
      return ecq_code_length(EcqTree::Tree3, v, ecb_max);
  }
  return 0;
}

void ecq_encode(bitio::BitWriter& w, EcqTree t, std::int64_t v,
                unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      if (v == 0) {
        w.write_bit(false);
      } else {
        w.write_bit(true);
        w.write_signed(v, ecb_max);
      }
      return;
    case EcqTree::Tree2:
      if (v == 0) {
        w.write_bit(false);
      } else if (v == 1) {
        w.write_bits(0b01, 2);  // '10' written LSB-first as 1 then 0
      } else if (v == -1) {
        w.write_bits(0b011, 3);
      } else {
        w.write_bits(0b111, 3);
        w.write_signed(v, ecb_max);
      }
      return;
    case EcqTree::Tree3:
      if (v == 0) {
        w.write_bit(false);
      } else if (v == 1) {
        w.write_bits(0b011, 3);  // '110'
      } else if (v == -1) {
        w.write_bits(0b111, 3);  // '111'
      } else {
        w.write_bits(0b01, 2);   // '10'
        w.write_signed(v, ecb_max);
      }
      return;
    case EcqTree::Tree4:
      tree4_encode(w, v);
      return;
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (v == 0) {
          w.write_bit(false);
        } else {
          w.write_bit(true);
          w.write_bit(v < 0);  // '10' = +1, '11' = -1
        }
      } else {
        ecq_encode(w, EcqTree::Tree3, v, ecb_max);
      }
      return;
  }
  throw std::invalid_argument("unknown ECQ tree");
}

std::int64_t ecq_decode(bitio::BitReader& r, EcqTree t, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      if (!r.read_bit()) return 0;
      return r.read_signed(ecb_max);
    case EcqTree::Tree2:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return 1;
      if (!r.read_bit()) return -1;
      return r.read_signed(ecb_max);
    case EcqTree::Tree3:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return r.read_signed(ecb_max);
      return r.read_bit() ? -1 : 1;
    case EcqTree::Tree4:
      return tree4_decode(r);
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (!r.read_bit()) return 0;
        return r.read_bit() ? -1 : 1;
      }
      return ecq_decode(r, EcqTree::Tree3, ecb_max);
  }
  throw std::invalid_argument("unknown ECQ tree");
}

std::size_t ecq_encoded_bits(EcqTree t, std::span<const std::int64_t> ecq,
                             unsigned ecb_max) {
  std::size_t bits = 0;
  for (std::int64_t v : ecq) bits += ecq_code_length(t, v, ecb_max);
  return bits;
}

}  // namespace pastri
