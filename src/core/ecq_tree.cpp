#include "core/ecq_tree.h"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "core/quantize.h"

namespace pastri {
namespace {

// Tree 4 helpers: bin i >= 2 holds the 2^(i-1) values +-[2^(i-2), 2^(i-1)-1],
// addressed by a sign bit plus (i-2) offset bits.
void tree4_encode(bitio::BitWriter& w, std::int64_t v) {
  if (v == 0) {
    w.write_bit(false);
    return;
  }
  const unsigned bin = ecq_bin(v);
  for (unsigned k = 0; k < bin - 1; ++k) w.write_bit(true);
  w.write_bit(false);
  const bool neg = v < 0;
  const std::uint64_t mag = neg ? static_cast<std::uint64_t>(-v)
                                : static_cast<std::uint64_t>(v);
  const std::uint64_t offset = mag - (std::uint64_t{1} << (bin - 2));
  w.write_bit(neg);
  if (bin > 2) w.write_bits(offset, bin - 2);
}

std::int64_t tree4_decode(bitio::BitReader& r) {
  const unsigned ones = r.read_unary();
  if (ones == 0) return 0;
  const unsigned bin = ones + 1;
  const bool neg = r.read_bit();
  std::uint64_t offset = (bin > 2) ? r.read_bits(bin - 2) : 0;
  const std::int64_t mag = static_cast<std::int64_t>(
      (std::uint64_t{1} << (bin - 2)) + offset);
  return neg ? -mag : mag;
}

}  // namespace

const char* ecq_tree_name(EcqTree t) {
  switch (t) {
    case EcqTree::Tree1: return "Tree1";
    case EcqTree::Tree2: return "Tree2";
    case EcqTree::Tree3: return "Tree3";
    case EcqTree::Tree4: return "Tree4";
    case EcqTree::Tree5: return "Tree5";
  }
  return "?";
}

unsigned ecq_code_length(EcqTree t, std::int64_t v, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      return v == 0 ? 1 : 1 + ecb_max;
    case EcqTree::Tree2:
      if (v == 0) return 1;
      if (v == 1) return 2;
      if (v == -1) return 3;
      return 3 + ecb_max;
    case EcqTree::Tree3:
      if (v == 0) return 1;
      if (v == 1 || v == -1) return 3;
      return 2 + ecb_max;
    case EcqTree::Tree4:
      // (bin-1) unary ones + terminating zero + sign + (bin-2) offset.
      return v == 0 ? 1 : 2 * ecq_bin(v) - 1;
    case EcqTree::Tree5:
      if (ecb_max <= 2) return v == 0 ? 1 : 2;
      return ecq_code_length(EcqTree::Tree3, v, ecb_max);
  }
  return 0;
}

void ecq_encode(bitio::BitWriter& w, EcqTree t, std::int64_t v,
                unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      if (v == 0) {
        w.write_bit(false);
      } else {
        w.write_bit(true);
        w.write_signed(v, ecb_max);
      }
      return;
    case EcqTree::Tree2:
      if (v == 0) {
        w.write_bit(false);
      } else if (v == 1) {
        w.write_bits(0b01, 2);  // '10' written LSB-first as 1 then 0
      } else if (v == -1) {
        w.write_bits(0b011, 3);
      } else {
        w.write_bits(0b111, 3);
        w.write_signed(v, ecb_max);
      }
      return;
    case EcqTree::Tree3:
      if (v == 0) {
        w.write_bit(false);
      } else if (v == 1) {
        w.write_bits(0b011, 3);  // '110'
      } else if (v == -1) {
        w.write_bits(0b111, 3);  // '111'
      } else {
        w.write_bits(0b01, 2);   // '10'
        w.write_signed(v, ecb_max);
      }
      return;
    case EcqTree::Tree4:
      tree4_encode(w, v);
      return;
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (v == 0) {
          w.write_bit(false);
        } else {
          w.write_bit(true);
          w.write_bit(v < 0);  // '10' = +1, '11' = -1
        }
      } else {
        ecq_encode(w, EcqTree::Tree3, v, ecb_max);
      }
      return;
  }
  throw std::invalid_argument("unknown ECQ tree");
}

std::int64_t ecq_decode(bitio::BitReader& r, EcqTree t, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      if (!r.read_bit()) return 0;
      return r.read_signed(ecb_max);
    case EcqTree::Tree2:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return 1;
      if (!r.read_bit()) return -1;
      return r.read_signed(ecb_max);
    case EcqTree::Tree3:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return r.read_signed(ecb_max);
      return r.read_bit() ? -1 : 1;
    case EcqTree::Tree4:
      return tree4_decode(r);
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (!r.read_bit()) return 0;
        return r.read_bit() ? -1 : 1;
      }
      return ecq_decode(r, EcqTree::Tree3, ecb_max);
  }
  throw std::invalid_argument("unknown ECQ tree");
}

std::size_t ecq_encoded_bits(EcqTree t, std::span<const std::int64_t> ecq,
                             unsigned ecb_max) {
  std::size_t bits = 0;
  for (std::int64_t v : ecq) bits += ecq_code_length(t, v, ecb_max);
  return bits;
}

std::size_t ecq_encoded_bits_counted(EcqTree t, std::size_t n,
                                     std::size_t num_outliers,
                                     std::size_t num_plus1,
                                     std::size_t num_minus1,
                                     unsigned ecb_max) {
  assert(ecq_dense_bits_countable(t));
  assert(num_plus1 + num_minus1 <= num_outliers && num_outliers <= n);
  const std::size_t zeros = n - num_outliers;
  const std::size_t escapes = num_outliers - num_plus1 - num_minus1;
  switch (t) {
    case EcqTree::Tree1:
      return zeros + num_outliers * (1 + ecb_max);
    case EcqTree::Tree2:
      return zeros + num_plus1 * 2 + num_minus1 * 3 +
             escapes * (3 + ecb_max);
    case EcqTree::Tree3:
      return zeros + (num_plus1 + num_minus1) * 3 +
             escapes * (2 + ecb_max);
    case EcqTree::Tree5:
      if (ecb_max <= 2) return zeros + num_outliers * 2;
      return ecq_encoded_bits_counted(EcqTree::Tree3, n, num_outliers,
                                      num_plus1, num_minus1, ecb_max);
    case EcqTree::Tree4:
      break;  // magnitude-dependent: caller must walk
  }
  throw std::invalid_argument("dense bits not countable for this tree");
}

// ---- Table-driven fast path --------------------------------------------

namespace {

constexpr std::uint64_t lut_mask(unsigned nbits) {
  return (std::uint64_t{1} << nbits) - 1;
}

/// The five distinct table shapes (Tree 5 is Tree 3 above EC_b,max = 2).
enum class LutShape { T1, T2, T3, T4, T5Small };

/// Build one table by pattern-matching every kEcqLutBits-bit suffix the
/// way the reference decoder walks it (LSB-first: bit 0 of the index is
/// the first bit on the wire).
EcqDecodeLut build_lut(LutShape shape) {
  EcqDecodeLut lut;
  for (std::uint64_t p = 0; p < (std::uint64_t{1} << kEcqLutBits); ++p) {
    EcqDecodeEntry e;
    switch (shape) {
      case LutShape::T1:
        if ((p & 1) == 0) {
          e = {0, 1, 0};
        } else {
          e = {0, 1, 1};
        }
        break;
      case LutShape::T2:
        if ((p & 1) == 0) {
          e = {0, 1, 0};
        } else if ((p & 2) == 0) {
          e = {1, 2, 0};
        } else if ((p & 4) == 0) {
          e = {-1, 3, 0};
        } else {
          e = {0, 3, 1};
        }
        break;
      case LutShape::T3:
        if ((p & 1) == 0) {
          e = {0, 1, 0};
        } else if ((p & 2) == 0) {
          e = {0, 2, 1};
        } else {
          e = {(p & 4) == 0 ? 1 : -1, 3, 0};
        }
        break;
      case LutShape::T5Small:
        if ((p & 1) == 0) {
          e = {0, 1, 0};
        } else {
          e = {(p & 2) == 0 ? 1 : -1, 2, 0};
        }
        break;
      case LutShape::T4: {
        // p < 2^kEcqLutBits, so countr_one is capped at kEcqLutBits.
        const unsigned ones = static_cast<unsigned>(std::countr_one(p));
        if (ones == 0) {
          e = {0, 1, 0};
          break;
        }
        const unsigned bin = ones + 1;
        const unsigned needed = 2 * bin - 1;
        if (ones >= kEcqLutBits || needed > kEcqLutBits) {
          e = {0, 0, 0};  // deeper than the table: reference slow path
          break;
        }
        const bool neg = ((p >> (ones + 1)) & 1) != 0;
        const std::uint64_t offset =
            bin > 2 ? (p >> (ones + 2)) & lut_mask(bin - 2) : 0;
        const auto mag = static_cast<std::int32_t>(
            (std::uint64_t{1} << (bin - 2)) + offset);
        e = {neg ? -mag : mag, static_cast<std::uint8_t>(needed), 0};
        break;
      }
    }
    lut.entry[p] = e;
  }
  return lut;
}

const EcqDecodeLut& shape_lut(LutShape shape) {
  static const EcqDecodeLut t1 = build_lut(LutShape::T1);
  static const EcqDecodeLut t2 = build_lut(LutShape::T2);
  static const EcqDecodeLut t3 = build_lut(LutShape::T3);
  static const EcqDecodeLut t4 = build_lut(LutShape::T4);
  static const EcqDecodeLut t5s = build_lut(LutShape::T5Small);
  switch (shape) {
    case LutShape::T1: return t1;
    case LutShape::T2: return t2;
    case LutShape::T3: return t3;
    case LutShape::T4: return t4;
    case LutShape::T5Small: return t5s;
  }
  return t3;
}

}  // namespace

const EcqDecodeLut& ecq_decode_lut(EcqTree t, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1: return shape_lut(LutShape::T1);
    case EcqTree::Tree2: return shape_lut(LutShape::T2);
    case EcqTree::Tree3: return shape_lut(LutShape::T3);
    case EcqTree::Tree4: return shape_lut(LutShape::T4);
    case EcqTree::Tree5:
      return shape_lut(ecb_max <= 2 ? LutShape::T5Small : LutShape::T3);
  }
  throw std::invalid_argument("unknown ECQ tree");
}

void ecq_encode_fast(bitio::BitWriter& w, EcqTree t, std::int64_t v,
                     unsigned ecb_max) {
  const auto payload = [&](std::uint64_t prefix, unsigned prefix_len) {
    // prefix then v in ecb_max two's-complement bits, one call when the
    // pack fits 64 bits (always, for the format's ecb_max <= 63).
    if (prefix_len + ecb_max <= 64) {
      const std::uint64_t pack =
          prefix | ((static_cast<std::uint64_t>(v) &
                     (ecb_max >= 64 ? ~std::uint64_t{0} : lut_mask(ecb_max)))
                    << prefix_len);
      w.write_bits(pack, prefix_len + ecb_max);
    } else {
      w.write_bits(prefix, prefix_len);
      w.write_signed(v, ecb_max);
    }
  };
  switch (t) {
    case EcqTree::Tree1:
      if (v == 0) {
        w.write_bit(false);
      } else {
        payload(0b1, 1);
      }
      return;
    case EcqTree::Tree2:
      if (v == 0) {
        w.write_bit(false);
      } else if (v == 1) {
        w.write_bits(0b01, 2);
      } else if (v == -1) {
        w.write_bits(0b011, 3);
      } else {
        payload(0b111, 3);
      }
      return;
    case EcqTree::Tree3:
      if (v == 0) {
        w.write_bit(false);
      } else if (v == 1) {
        w.write_bits(0b011, 3);
      } else if (v == -1) {
        w.write_bits(0b111, 3);
      } else {
        payload(0b01, 2);
      }
      return;
    case EcqTree::Tree4: {
      if (v == 0) {
        w.write_bit(false);
        return;
      }
      const unsigned bin = ecq_bin(v);
      if (2 * bin - 1 > 64) {  // pathological deep bin: reference path
        tree4_encode(w, v);
        return;
      }
      const bool neg = v < 0;
      const std::uint64_t mag = neg ? static_cast<std::uint64_t>(-v)
                                    : static_cast<std::uint64_t>(v);
      const std::uint64_t offset = mag - (std::uint64_t{1} << (bin - 2));
      // (bin-1) ones, the terminating zero, the sign, then the offset.
      std::uint64_t pack = lut_mask(bin - 1);
      if (neg) pack |= std::uint64_t{1} << bin;
      pack |= offset << (bin + 1);
      w.write_bits(pack, 2 * bin - 1);
      return;
    }
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (v == 0) {
          w.write_bit(false);
        } else {
          w.write_bits(v < 0 ? 0b11 : 0b01, 2);
        }
      } else {
        ecq_encode_fast(w, EcqTree::Tree3, v, ecb_max);
      }
      return;
  }
  throw std::invalid_argument("unknown ECQ tree");
}

void ecq_encode_run(bitio::BitWriter& w, EcqTree t,
                    std::span<const std::int64_t> ecq, unsigned ecb_max) {
  // Resolve Tree 5's EC_b,max adaptivity once for the whole run, then
  // keep each per-tree loop free of the per-symbol tree switch.  Every
  // branch issues exactly the write_bits calls ecq_encode_fast would.
  if (t == EcqTree::Tree5 && ecb_max > 2) t = EcqTree::Tree3;
  const auto escape = [&](std::uint64_t prefix, unsigned prefix_len,
                          std::int64_t v) {
    if (prefix_len + ecb_max <= 64) {
      const std::uint64_t pack =
          prefix | ((static_cast<std::uint64_t>(v) &
                     (ecb_max >= 64 ? ~std::uint64_t{0} : lut_mask(ecb_max)))
                    << prefix_len);
      w.write_bits(pack, prefix_len + ecb_max);
    } else {
      w.write_bits(prefix, prefix_len);
      w.write_signed(v, ecb_max);
    }
  };
  switch (t) {
    case EcqTree::Tree1:
      for (std::int64_t v : ecq) {
        if (v == 0) {
          w.write_bit(false);
        } else {
          escape(0b1, 1, v);
        }
      }
      return;
    case EcqTree::Tree2:
      for (std::int64_t v : ecq) {
        if (v == 0) {
          w.write_bit(false);
        } else if (v == 1) {
          w.write_bits(0b01, 2);
        } else if (v == -1) {
          w.write_bits(0b011, 3);
        } else {
          escape(0b111, 3, v);
        }
      }
      return;
    case EcqTree::Tree3:
      for (std::int64_t v : ecq) {
        if (v == 0) {
          w.write_bit(false);
        } else if (v == 1) {
          w.write_bits(0b011, 3);
        } else if (v == -1) {
          w.write_bits(0b111, 3);
        } else {
          escape(0b01, 2, v);
        }
      }
      return;
    case EcqTree::Tree4:
      for (std::int64_t v : ecq) ecq_encode_fast(w, EcqTree::Tree4, v, ecb_max);
      return;
    case EcqTree::Tree5:  // ecb_max <= 2: the optimal {0,+1,-1} tree
      for (std::int64_t v : ecq) {
        if (v == 0) {
          w.write_bit(false);
        } else {
          w.write_bits(v < 0 ? 0b11 : 0b01, 2);
        }
      }
      return;
  }
  throw std::invalid_argument("unknown ECQ tree");
}

}  // namespace pastri
