#include "core/pastri_capi.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/capi_detail.h"
#include "core/pastri.h"
#include "core/stream.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace pastri::capi {
namespace {

thread_local std::string g_last_error;

}  // namespace

pastri_status fail(pastri_status code, const char* what) noexcept {
  try {
    g_last_error = what;
  } catch (...) {
    // Out of memory assigning the message; the code still reports it.
  }
  return code;
}

pastri::Params to_cpp_params(const pastri_params& p) {
  pastri::Params out;
  out.error_bound = p.error_bound;
  out.bound_mode = static_cast<pastri::BoundMode>(p.bound_mode);
  out.metric = static_cast<pastri::ScalingMetric>(p.metric);
  out.tree = static_cast<pastri::EcqTree>(p.tree);
  out.allow_sparse = p.allow_sparse != 0;
  out.num_threads = p.num_threads;
  if (p.dict_mode < 0 || p.dict_mode > 2) {
    throw std::invalid_argument("dict_mode must be 0 (off), 1 (on), or "
                                "2 (auto)");
  }
  out.dict = static_cast<pastri::DictMode>(p.dict_mode);
  return out;
}

const char* last_error_cstr() { return g_last_error.c_str(); }

}  // namespace pastri::capi

namespace {

using pastri::capi::fail;

pastri::Params to_cpp(const pastri_params& p) {
  return pastri::capi::to_cpp_params(p);
}

/// Copy a vector into a malloc-owned buffer the C caller frees with
/// pastri_free.  Returns PASTRI_OK or PASTRI_ERR_INTERNAL.
template <typename T>
pastri_status malloc_copy(const std::vector<T>& src, T** out,
                          size_t* out_count) {
  auto* buf = static_cast<T*>(std::malloc(src.size() * sizeof(T)));
  if (buf == nullptr && !src.empty()) {
    return fail(PASTRI_ERR_INTERNAL, "out of memory");
  }
  if (!src.empty()) {
    std::memcpy(buf, src.data(), src.size() * sizeof(T));
  }
  *out = buf;
  *out_count = src.size();
  return PASTRI_OK;
}

}  // namespace

/* Opaque container-context handle: one C++ CodecContext (dictionary,
 * resolved params, workspace pool). */
struct pastri_ctx {
  pastri::CodecContext cpp;
  pastri_ctx(const pastri::BlockSpec& spec, const pastri::Params& params)
      : cpp(spec, params) {}
};

/* Opaque streaming-compressor handle (member order matters: writer holds
 * a reference into sink, which writes to file). */
struct pastri_stream {
  std::ofstream file;
  std::unique_ptr<pastri::OstreamSink> sink;
  std::unique_ptr<pastri::StreamWriter> writer;
  size_t block_size = 0;
  bool finished = false;
};

extern "C" {

void pastri_params_init(pastri_params* params) {
  if (params == nullptr) return;
  const pastri::Params d;
  params->error_bound = d.error_bound;
  params->bound_mode = static_cast<int>(d.bound_mode);
  params->metric = static_cast<int>(d.metric);
  params->tree = static_cast<int>(d.tree);
  params->allow_sparse = d.allow_sparse ? 1 : 0;
  params->num_threads = d.num_threads;
  params->dict_mode = static_cast<int>(d.dict);
}

const char* pastri_status_name(pastri_status status) {
  switch (status) {
    case PASTRI_OK: return "PASTRI_OK";
    case PASTRI_ERR_INVALID_ARGUMENT: return "PASTRI_ERR_INVALID_ARGUMENT";
    case PASTRI_ERR_CORRUPT_STREAM: return "PASTRI_ERR_CORRUPT_STREAM";
    case PASTRI_ERR_INTERNAL: return "PASTRI_ERR_INTERNAL";
    case PASTRI_ERR_IO: return "PASTRI_ERR_IO";
    case PASTRI_ERR_BUSY: return "PASTRI_ERR_BUSY";
  }
  return "PASTRI_ERR_UNKNOWN";
}

pastri_status pastri_compress_buffer(const double* data, size_t count,
                                     size_t num_sub_blocks,
                                     size_t sub_block_size,
                                     const pastri_params* params,
                                     unsigned char** out, size_t* out_size) {
  if ((data == nullptr && count != 0) || params == nullptr ||
      out == nullptr || out_size == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::BlockSpec spec{num_sub_blocks, sub_block_size};
    const auto stream = pastri::compress(
        std::span<const double>(data, count), spec, to_cpp(*params));
    return malloc_copy(stream, out, out_size);
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_decompress_buffer(const unsigned char* stream,
                                       size_t stream_size, double** out,
                                       size_t* out_count) {
  if (stream == nullptr || out == nullptr || out_count == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const auto values = pastri::decompress(
        std::span<const std::uint8_t>(stream, stream_size));
    return malloc_copy(values, out, out_count);
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_decompress_block(const unsigned char* stream,
                                      size_t stream_size,
                                      size_t block_index, double* out,
                                      size_t out_capacity) {
  if (stream == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::BlockReader reader(
        std::span<const std::uint8_t>(stream, stream_size));
    if (block_index >= reader.num_blocks()) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "block index out of range");
    }
    const size_t block_size = reader.info().spec.block_size();
    if (out_capacity < block_size) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "output buffer too small");
    }
    reader.read_block(block_index, std::span<double>(out, block_size));
    return PASTRI_OK;
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_decompress_range(const unsigned char* stream,
                                      size_t stream_size, size_t first,
                                      size_t count, double** out,
                                      size_t* out_count) {
  if (stream == nullptr || out == nullptr || out_count == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::BlockReader reader(
        std::span<const std::uint8_t>(stream, stream_size));
    if (first + count < first || first + count > reader.num_blocks()) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT, "block range out of range");
    }
    const auto values = reader.read_range(first, count);
    return malloc_copy(values, out, out_count);
  } catch (const std::runtime_error& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_peek(const unsigned char* stream, size_t stream_size,
                          double* error_bound, size_t* num_sub_blocks,
                          size_t* sub_block_size, size_t* num_blocks) {
  if (stream == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::StreamInfo info = pastri::peek_info(
        std::span<const std::uint8_t>(stream, stream_size));
    if (error_bound != nullptr) *error_bound = info.error_bound;
    if (num_sub_blocks != nullptr) {
      *num_sub_blocks = info.spec.num_sub_blocks;
    }
    if (sub_block_size != nullptr) {
      *sub_block_size = info.spec.sub_block_size;
    }
    if (num_blocks != nullptr) *num_blocks = info.num_blocks;
    return PASTRI_OK;
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_CORRUPT_STREAM, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_ctx_create(size_t num_sub_blocks,
                                size_t sub_block_size,
                                const pastri_params* params,
                                pastri_ctx** out) {
  if (params == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const pastri::BlockSpec spec{num_sub_blocks, sub_block_size};
    auto ctx = std::make_unique<pastri_ctx>(spec, to_cpp(*params));
    *out = ctx.release();
    return PASTRI_OK;
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

int pastri_ctx_dict_enabled(const pastri_ctx* ctx) {
  return ctx != nullptr && ctx->cpp.dict_enabled() ? 1 : 0;
}

pastri_status pastri_ctx_compress_buffer(pastri_ctx* ctx,
                                         const double* data, size_t count,
                                         unsigned char** out,
                                         size_t* out_size) {
  if (ctx == nullptr || (data == nullptr && count != 0) ||
      out == nullptr || out_size == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const size_t bs = ctx->cpp.spec().block_size();
    if (bs == 0 || count % bs != 0) {
      return fail(PASTRI_ERR_INVALID_ARGUMENT,
                  "data size is not a whole number of blocks");
    }
    pastri::VectorSink sink;
    pastri::StreamWriter writer(sink, ctx->cpp,
                                {.expected_blocks = count / bs});
    writer.put_values(std::span<const double>(data, count));
    writer.finish();
    return malloc_copy(sink.take(), out, out_size);
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

void pastri_ctx_destroy(pastri_ctx* ctx) { delete ctx; }

pastri_status pastri_stream_open(const char* path, size_t num_sub_blocks,
                                 size_t sub_block_size,
                                 const pastri_params* params,
                                 pastri_stream** out) {
  if (path == nullptr || params == nullptr || out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    auto s = std::make_unique<pastri_stream>();
    s->file.open(path, std::ios::binary | std::ios::trunc);
    if (!s->file) {
      return fail(PASTRI_ERR_IO, "cannot open output file");
    }
    const pastri::BlockSpec spec{num_sub_blocks, sub_block_size};
    s->sink = std::make_unique<pastri::OstreamSink>(s->file);
    s->writer = std::make_unique<pastri::StreamWriter>(*s->sink, spec,
                                                       to_cpp(*params));
    s->block_size = spec.block_size();
    *out = s.release();
    return PASTRI_OK;
  } catch (const std::invalid_argument& e) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, e.what());
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_stream_put_block(pastri_stream* stream,
                                      const double* block) {
  if (stream == nullptr || block == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  if (stream->finished) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "stream already finished");
  }
  try {
    stream->writer->put_block(
        std::span<const double>(block, stream->block_size));
    return PASTRI_OK;
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

pastri_status pastri_stream_finish(pastri_stream* stream,
                                   size_t* out_size) {
  if (stream == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  if (stream->finished) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "stream already finished");
  }
  try {
    const size_t total = stream->writer->finish();
    stream->file.close();
    if (!stream->file) {
      return fail(PASTRI_ERR_IO, "close failed");
    }
    stream->finished = true;
    if (out_size != nullptr) *out_size = total;
    return PASTRI_OK;
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

void pastri_stream_close(pastri_stream* stream) {
  try {
    delete stream;
  } catch (...) {
    // An abandoned sink may fail flushing on destruction; swallow it.
  }
}

pastri_status pastri_metrics_snapshot_json(char** out) {
  if (out == nullptr) {
    return fail(PASTRI_ERR_INVALID_ARGUMENT, "null argument");
  }
  try {
    const std::string json =
        pastri::obs::export_json(pastri::obs::registry().snapshot());
    auto* buf = static_cast<char*>(std::malloc(json.size() + 1));
    if (buf == nullptr) {
      return fail(PASTRI_ERR_INTERNAL, "out of memory");
    }
    std::memcpy(buf, json.c_str(), json.size() + 1);
    *out = buf;
    return PASTRI_OK;
  } catch (const std::exception& e) {
    return fail(PASTRI_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(PASTRI_ERR_INTERNAL, "unknown exception");
  }
}

void pastri_metrics_enable(int enabled) {
  pastri::obs::registry().set_enabled(enabled != 0);
}

void pastri_metrics_reset(void) { pastri::obs::registry().reset(); }

void pastri_free(void* ptr) { std::free(ptr); }

const char* pastri_last_error_message(void) {
  return pastri::capi::last_error_cstr();
}

const char* pastri_last_error(void) { return pastri_last_error_message(); }

}  // extern "C"
