// bench_fig10_parallel_io - Reproduces Fig. 10: dumping (D) and loading
// (L) the alanine (dd|dd) dataset to a parallel filesystem with 256, 512,
// 1024, and 2048 cores.
//
// We have no 2048-core GPFS system; per DESIGN.md the filesystem is a
// calibrated bandwidth model while every codec number feeding it (ratio,
// compress rate, decompress rate) is *measured* from the real codecs on
// the real dataset in this process.  The paper's own analysis says the
// experiment is dominated by disk access time, i.e. by compressed size --
// exactly what the model captures.
#include "bench_common.h"
#include "compressors/compressor_iface.h"
#include "io/pfs_model.h"

using namespace pastri;

int main() {
  bench::print_header(
      "Fig. 10 -- parallel dump/load of alanine (dd|dd) on a PFS",
      "Fig. 10, Section V-B (modelled PFS + measured codec profiles)");

  const auto ds = bench::load_bench_dataset({"alanine", "(dd|dd)", 1500,
                                             250, 6000});
  const BlockSpec bs = bench::block_spec_of(ds);
  const double mb = static_cast<double>(ds.size_bytes()) / 1e6;
  const int reps = bench::quick_mode() ? 1 : 3;

  // Measure each codec's profile on this dataset at the paper's EB.
  const double eb = 1e-10;
  std::vector<io::CodecProfile> profiles;
  const std::unique_ptr<baselines::LossyCompressor> codecs[3] = {
      baselines::make_sz_compressor(), baselines::make_zfp_compressor(),
      baselines::make_pastri_compressor(bs)};
  for (const auto& codec : codecs) {
    std::vector<std::uint8_t> stream;
    const double ct = bench::best_time_seconds(
        [&] { stream = codec->compress(ds.values, eb); }, reps);
    std::vector<double> back;
    const double dt = bench::best_time_seconds(
        [&] { back = codec->decompress(stream); }, reps);
    profiles.push_back(io::CodecProfile{
        codec->name(), static_cast<double>(ds.size_bytes()) / stream.size(),
        mb / ct, mb / dt});
  }

  std::printf("measured codec profiles (this machine, EB = 1e-10):\n");
  for (const auto& p : profiles) {
    std::printf("  %-8s ratio %6.2f  comp %7.1f MB/s  decomp %7.1f MB/s\n",
                p.name.c_str(), p.compression_ratio, p.compress_rate_mbps,
                p.decompress_rate_mbps);
  }

  // The paper's Fig. 10 workload is the full parallel job's ERI traffic;
  // its reported times (minutes compressed, "thousands of seconds"
  // uncompressed) pin the modelled data volume at TB scale.
  const double total_mb = 1.5e6;  // 1.5 TB
  const io::PfsModel pfs;
  std::printf("\nmodelled PFS: peak %.0f MB/s aggregate, %.0f MB/s per "
              "core, half-saturation at %.0f cores\n",
              pfs.peak_bandwidth_mbps, pfs.per_core_bandwidth_mbps,
              pfs.half_saturation_cores);
  std::printf("dataset size modelled at %.0f MB (paper-scale)\n\n",
              total_mb);

  std::printf("%-7s %-8s %12s %12s %12s %12s\n", "cores", "codec",
              "D comp (s)", "D io (s)", "L io (s)", "L decomp (s)");
  for (int cores : {256, 512, 1024, 2048}) {
    for (const auto& p : profiles) {
      const io::IoTimes d = io::dump_time(pfs, p, total_mb, cores);
      const io::IoTimes l = io::load_time(pfs, p, total_mb, cores);
      std::printf("%-7d %-8s %12.2f %12.2f %12.2f %12.2f   total D %.1f "
                  "L %.1f\n",
                  cores, p.name.c_str(), d.compute_seconds, d.io_seconds,
                  l.io_seconds, l.compute_seconds, d.total_seconds(),
                  l.total_seconds());
    }
    std::printf("%-7d %-8s %25s %.1f s (uncompressed I/O only)\n\n", cores,
                "raw", "", io::raw_io_time(pfs, total_mb, cores));
  }
  bench::print_rule();
  std::printf("paper shape: PaSTRI's D and L are ~2x (or more) faster "
              "than SZ's and ZFP's at every core count, because its "
              "compressed size is ~2.5x smaller; raw I/O is far slower "
              "than any compressed path.\n");
  return 0;
}
