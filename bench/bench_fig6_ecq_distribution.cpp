// bench_fig6_ecq_distribution - Reproduces Fig. 6: the distribution of
// ECQ values over bit-bins, broken out by block type, plus the block-type
// census ("the vast majority of the blocks (70-80%) can be categorized as
// Type 0 or Type 1").
#include <array>

#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header("Fig. 6 -- ECQ value distribution by block type",
                      "Fig. 6 + Section IV-C block-type census");

  // Histogram of ECQ bins (1..24) per block type and total.
  std::array<std::array<std::size_t, 25>, 4> by_type{};
  std::array<std::size_t, 25> total{};
  std::array<std::size_t, 4> blocks_of_type{};
  std::size_t zero_blocks = 0, nblocks = 0;

  Params p;
  p.error_bound = 1e-10;

  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    const BlockSpec bs = bench::block_spec_of(ds);
    for (std::size_t b = 0; b < ds.num_blocks; ++b) {
      ++nblocks;
      const BlockAnalysis a = analyze_block(ds.block(b), bs, p);
      if (a.zero_block) {
        ++zero_blocks;
        ++blocks_of_type[0];
        by_type[0][1] += bs.block_size();
        total[1] += bs.block_size();
        continue;
      }
      const int t = block_type(a.quantized.ecb_max);
      ++blocks_of_type[static_cast<std::size_t>(t)];
      for (std::int64_t v : a.quantized.ecq) {
        const unsigned bin = std::min(ecq_bin(v), 24u);
        ++by_type[static_cast<std::size_t>(t)][bin];
        ++total[bin];
      }
    }
  }

  std::printf("%-5s %12s %12s %12s %12s %14s\n", "bits", "type0", "type1",
              "type2", "type3", "total");
  for (unsigned bin = 1; bin <= 24; ++bin) {
    bool any = total[bin] > 0;
    if (!any) continue;
    std::printf("%-5u %12zu %12zu %12zu %12zu %14zu\n", bin,
                by_type[0][bin], by_type[1][bin], by_type[2][bin],
                by_type[3][bin], total[bin]);
  }
  bench::print_rule();
  std::printf("block census: ");
  for (int t = 0; t < 4; ++t) {
    std::printf("type%d %zu (%.1f%%)  ", t, blocks_of_type[t],
                100.0 * blocks_of_type[t] / nblocks);
  }
  std::printf("\npaper shape: types 0+1 = 70-80%% of blocks; measured "
              "%.1f%%.\n",
              100.0 * (blocks_of_type[0] + blocks_of_type[1]) / nblocks);
  std::printf("EC_b,max never exceeded ~22 for EB=1e-10 in the paper; "
              "bins above 22 here: %zu values.\n",
              total[23] + total[24]);
  return 0;
}
