// bench_codec_kernels - Before/after rows for the word-at-a-time bit
// I/O, the table-driven ECQ decode, and the allocation-free block codec
// hot path.  Each row pits the current kernel against a faithful local
// reimplementation of the code it replaced (byte-loop bit reads,
// symbol-by-symbol tree walks, allocate-per-block decode), on the same
// bytes, so the speedup column isolates the optimization itself.
//
// Results go to BENCH_codec_kernels.json (GB/s for byte-oriented rows,
// symbols/s for the ECQ rows).  PASTRI_BENCH_QUICK=1 shrinks the inputs
// for the ctest `Perf` smoke run.
#include <fstream>
#include <random>

#include "bench_common.h"
#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/varint.h"
#include "core/pastri.h"

using namespace pastri;

namespace {

/// The pre-optimization BitReader::read_bits: one byte-granular loop
/// iteration per partial byte, no word loads.
struct ByteLoopReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  std::uint64_t read_bits(unsigned nbits) {
    if (pos + nbits > 8 * data.size()) {
      throw std::out_of_range("read past end");
    }
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < nbits) {
      const std::size_t byte = pos >> 3;
      const unsigned bit = static_cast<unsigned>(pos & 7);
      const unsigned take = std::min<unsigned>(nbits - got, 8 - bit);
      const std::uint64_t mask = (std::uint64_t{1} << take) - 1;
      const std::uint64_t chunk =
          (static_cast<std::uint64_t>(data[byte]) >> bit) & mask;
      out |= chunk << got;
      got += take;
      pos += take;
    }
    return out;
  }

  bool read_bit() { return read_bits(1) != 0; }

  std::int64_t read_signed(unsigned nbits) {
    std::uint64_t raw = read_bits(nbits);
    if (nbits < 64 && (raw & (std::uint64_t{1} << (nbits - 1)))) {
      raw |= ~((std::uint64_t{1} << nbits) - 1);
    }
    return static_cast<std::int64_t>(raw);
  }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
      const std::uint64_t byte = read_bits(8);
      v |= (byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }
};

/// The pre-optimization decoder: out-of-line (it lived in ecq_tree.cpp,
/// so every symbol paid a call), per-symbol switch dispatch, and Tree 5
/// recursing into the Tree 3 case -- faithfully reproduced, down to the
/// noinline, so the "before" column is the code that actually ran.
__attribute__((noinline)) std::int64_t reference_ecq_decode(
    ByteLoopReader& r, EcqTree t, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      if (!r.read_bit()) return 0;
      return r.read_signed(ecb_max);
    case EcqTree::Tree2:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return 1;
      if (!r.read_bit()) return -1;
      return r.read_signed(ecb_max);
    case EcqTree::Tree3:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return r.read_signed(ecb_max);
      return r.read_bit() ? -1 : 1;
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (!r.read_bit()) return 0;
        return r.read_bit() ? -1 : 1;
      }
      return reference_ecq_decode(r, EcqTree::Tree3, ecb_max);
    default:
      throw std::invalid_argument("tree not benchmarked");
  }
}

/// The pre-optimization decompress_block: fresh QuantizedBlock per call,
/// per-element byte-loop checked reads, symbol-by-symbol reference
/// ecq_decode.  Absolute bound mode (the paper's) only, which is all
/// this bench runs.
void reference_decompress_block(ByteLoopReader& r, const BlockSpec& spec,
                                const Params& params,
                                std::span<double> out) {
  if (r.read_bit()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  QuantizedBlock qb;
  qb.spec = make_quant_spec(0.0, params.error_bound);
  qb.spec.pattern_bits = static_cast<unsigned>(r.read_bits(6));
  qb.spec.scale_bits = qb.spec.pattern_bits;
  qb.spec.scale_binsize =
      std::ldexp(1.0, 1 - static_cast<int>(qb.spec.scale_bits));
  qb.pq.resize(spec.sub_block_size);
  for (auto& v : qb.pq) v = r.read_signed(qb.spec.pattern_bits);
  qb.sq.resize(spec.num_sub_blocks);
  for (auto& v : qb.sq) v = r.read_signed(qb.spec.scale_bits);
  qb.ecb_max = static_cast<unsigned>(r.read_bits(6));
  qb.ecq.assign(spec.block_size(), 0);
  if (qb.ecb_max >= 2) {
    const bool sparse = r.read_bit();
    if (sparse) {
      const std::uint64_t nol = r.read_varint();
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      for (std::uint64_t k = 0; k < nol; ++k) {
        const std::uint64_t idx = r.read_bits(idx_bits);
        qb.ecq[idx] = r.read_signed(qb.ecb_max);
      }
    } else {
      for (auto& v : qb.ecq) {
        v = reference_ecq_decode(r, params.tree, qb.ecb_max);
      }
    }
  }
  dequantize_block(qb, spec, out);
}

struct Row {
  const char* name;
  double before_s = 0.0;
  double after_s = 0.0;
  double gbps_before = 0.0;
  double gbps_after = 0.0;
  double symbols_per_s_before = 0.0;
  double symbols_per_s_after = 0.0;
};

double speedup(const Row& r) { return r.before_s / r.after_s; }

}  // namespace

int main() {
  bench::print_header(
      "Codec kernels -- word-at-a-time bit I/O, LUT ECQ decode, "
      "allocation-free block decode",
      "Section IV-C rates (decode-side kernel cost)");
  const int reps = bench::quick_mode() ? 3 : 7;
  std::vector<Row> rows;

  // ---- Row 1: read_bits, byte loop vs word loads ----------------------
  {
    const std::size_t n = bench::quick_mode() ? 200'000 : 2'000'000;
    bitio::BitWriter w;
    std::mt19937_64 gen(7);
    std::vector<unsigned> widths(n);
    for (auto& width : widths) {
      width = 1 + static_cast<unsigned>(gen() % 57);
      w.write_bits(gen(), width);
    }
    const auto bytes = w.take();
    Row row{"read_bits mixed widths 1..57"};
    std::uint64_t sink = 0;
    row.before_s = bench::best_time_seconds(
        [&] {
          ByteLoopReader r{bytes};
          for (unsigned width : widths) sink ^= r.read_bits(width);
        },
        reps);
    row.after_s = bench::best_time_seconds(
        [&] {
          bitio::BitReader r(bytes);
          for (unsigned width : widths) sink ^= r.read_bits(width);
        },
        reps);
    if (sink == 42) std::printf(" ");  // keep the reads observable
    row.gbps_before = static_cast<double>(bytes.size()) / row.before_s / 1e9;
    row.gbps_after = static_cast<double>(bytes.size()) / row.after_s / 1e9;
    rows.push_back(row);
  }

  // ---- Row 2: dense ECQ decode, tree walk vs LUT ----------------------
  {
    const std::size_t n = bench::quick_mode() ? 400'000 : 4'000'000;
    const unsigned ecb_max = 5;  // typical type-2 (dd|dd) block
    std::mt19937_64 gen(11);
    std::vector<std::int64_t> symbols(n);
    for (auto& v : symbols) {
      const std::uint64_t roll = gen() % 100;
      v = roll < 70 ? 0 : (roll < 90 ? ((gen() & 1) ? 1 : -1)
                                     : static_cast<std::int64_t>(gen() % 15) - 7);
    }
    bitio::BitWriter w;
    for (std::int64_t v : symbols) {
      ecq_encode(w, EcqTree::Tree5, v, ecb_max);
    }
    const auto bytes = w.take();
    Row row{"dense ECQ decode (Tree5, ecb_max=5)"};
    std::int64_t sink = 0;
    row.before_s = bench::best_time_seconds(
        [&] {
          ByteLoopReader r{bytes};
          for (std::size_t i = 0; i < n; ++i) {
            sink ^= reference_ecq_decode(r, EcqTree::Tree5, ecb_max);
          }
        },
        reps);
    const EcqDecodeLut& lut = ecq_decode_lut(EcqTree::Tree5, ecb_max);
    std::vector<std::int64_t> decoded(n);
    row.after_s = bench::best_time_seconds(
        [&] {
          bitio::BitReader r(bytes);
          ecq_decode_run(r, lut, EcqTree::Tree5, ecb_max, decoded);
          r.check_overrun();
        },
        reps);
    if (sink == 42) std::printf(" ");
    if (decoded != symbols) {
      std::fprintf(stderr, "FATAL: run decoder diverged from input\n");
      return 1;
    }
    row.symbols_per_s_before = static_cast<double>(n) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(n) / row.after_s;
    row.gbps_before = static_cast<double>(bytes.size()) / row.before_s / 1e9;
    row.gbps_after = static_cast<double>(bytes.size()) / row.after_s / 1e9;
    rows.push_back(row);
  }

  // ---- Row 3: full (dd|dd) block decode, old path vs workspace --------
  {
    const auto ds = bench::load_bench_dataset(
        {"benzene", "(dd|dd)", 1296, 250, 1296});
    const BlockSpec spec = bench::block_spec_of(ds);
    Params params;
    const auto stream = compress(ds.values, spec, params);
    const BlockReader reader(stream);
    const std::size_t nb = reader.num_blocks();
    const std::size_t bs = spec.block_size();
    std::vector<double> out(bs);

    Row row{"full block decompress (dd|dd)"};
    row.before_s = bench::best_time_seconds(
        [&] {
          for (std::size_t b = 0; b < nb; ++b) {
            const BlockExtent& e = reader.index().extent(b);
            ByteLoopReader r{
                std::span<const std::uint8_t>(stream).subspan(e.offset,
                                                              e.length)};
            reference_decompress_block(r, spec, params, out);
          }
        },
        reps);
    CodecWorkspace ws;
    row.after_s = bench::best_time_seconds(
        [&] {
          for (std::size_t b = 0; b < nb; ++b) {
            const BlockExtent& e = reader.index().extent(b);
            bitio::BitReader r(
                std::span<const std::uint8_t>(stream).subspan(e.offset,
                                                              e.length));
            decompress_block(r, spec, params, out, ws);
          }
        },
        reps);
    const double raw_bytes = static_cast<double>(nb * bs * sizeof(double));
    row.gbps_before = raw_bytes / row.before_s / 1e9;
    row.gbps_after = raw_bytes / row.after_s / 1e9;
    row.symbols_per_s_before = static_cast<double>(nb * bs) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(nb * bs) / row.after_s;
    rows.push_back(row);
  }

  std::printf("%-38s %10s %10s %9s\n", "kernel", "before", "after",
              "speedup");
  std::ofstream json("BENCH_codec_kernels.json");
  json << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-38s %8.3f s %8.3f s %8.2fx\n", r.name, r.before_s,
                r.after_s, speedup(r));
    std::printf("%-38s %7.2f GB/s %5.2f GB/s\n", "", r.gbps_before,
                r.gbps_after);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"kernel\":\"%s\",\"before_seconds\":%.6g,"
        "\"after_seconds\":%.6g,\"speedup\":%.4g,"
        "\"gbps_before\":%.4g,\"gbps_after\":%.4g,"
        "\"symbols_per_s_before\":%.6g,\"symbols_per_s_after\":%.6g}%s\n",
        r.name, r.before_s, r.after_s, speedup(r), r.gbps_before,
        r.gbps_after, r.symbols_per_s_before, r.symbols_per_s_after,
        i + 1 < rows.size() ? "," : "");
    json << buf;
  }
  json << "]\n";
  bench::print_rule();
  std::printf("wrote BENCH_codec_kernels.json\n");
  return 0;
}
