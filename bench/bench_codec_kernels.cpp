// bench_codec_kernels - Before/after rows for the word-at-a-time bit
// I/O, the table-driven ECQ decode, the allocation-free block codec
// hot path, and the pass-fused SIMD encode pipeline.  Each row pits the
// current kernel against a faithful local reimplementation of the code
// it replaced (byte-loop bit reads, symbol-by-symbol tree walks,
// allocate-per-block decode, multi-pass scalar encode), on the same
// bytes, so the speedup column isolates the optimization itself.
//
// Results go to BENCH_codec_kernels.json at the repo root (GB/s for
// byte-oriented rows, symbols/s for the ECQ rows).  PASTRI_BENCH_QUICK=1
// shrinks the inputs for the ctest `Perf` smoke run.
#include <cstring>
#include <fstream>
#include <random>

#include "bench_common.h"
#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "bitio/varint.h"
#include "core/pastri.h"
#include "core/simd/simd.h"

using namespace pastri;

namespace {

/// The pre-optimization BitReader::read_bits: one byte-granular loop
/// iteration per partial byte, no word loads.
struct ByteLoopReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  std::uint64_t read_bits(unsigned nbits) {
    if (pos + nbits > 8 * data.size()) {
      throw std::out_of_range("read past end");
    }
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < nbits) {
      const std::size_t byte = pos >> 3;
      const unsigned bit = static_cast<unsigned>(pos & 7);
      const unsigned take = std::min<unsigned>(nbits - got, 8 - bit);
      const std::uint64_t mask = (std::uint64_t{1} << take) - 1;
      const std::uint64_t chunk =
          (static_cast<std::uint64_t>(data[byte]) >> bit) & mask;
      out |= chunk << got;
      got += take;
      pos += take;
    }
    return out;
  }

  bool read_bit() { return read_bits(1) != 0; }

  std::int64_t read_signed(unsigned nbits) {
    std::uint64_t raw = read_bits(nbits);
    if (nbits < 64 && (raw & (std::uint64_t{1} << (nbits - 1)))) {
      raw |= ~((std::uint64_t{1} << nbits) - 1);
    }
    return static_cast<std::int64_t>(raw);
  }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
      const std::uint64_t byte = read_bits(8);
      v |= (byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }
};

/// The pre-optimization decoder: out-of-line (it lived in ecq_tree.cpp,
/// so every symbol paid a call), per-symbol switch dispatch, and Tree 5
/// recursing into the Tree 3 case -- faithfully reproduced, down to the
/// noinline, so the "before" column is the code that actually ran.
__attribute__((noinline)) std::int64_t reference_ecq_decode(
    ByteLoopReader& r, EcqTree t, unsigned ecb_max) {
  switch (t) {
    case EcqTree::Tree1:
      if (!r.read_bit()) return 0;
      return r.read_signed(ecb_max);
    case EcqTree::Tree2:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return 1;
      if (!r.read_bit()) return -1;
      return r.read_signed(ecb_max);
    case EcqTree::Tree3:
      if (!r.read_bit()) return 0;
      if (!r.read_bit()) return r.read_signed(ecb_max);
      return r.read_bit() ? -1 : 1;
    case EcqTree::Tree5:
      if (ecb_max <= 2) {
        if (!r.read_bit()) return 0;
        return r.read_bit() ? -1 : 1;
      }
      return reference_ecq_decode(r, EcqTree::Tree3, ecb_max);
    default:
      throw std::invalid_argument("tree not benchmarked");
  }
}

/// The pre-optimization dequantize: plain scalar reconstruction loops
/// (dequantize_block itself now dispatches to the SIMD decode kernels,
/// so the "before" row must keep its own copy of the old code).
void reference_dequantize_block(const QuantizedBlock& qb,
                                const BlockSpec& spec,
                                std::span<double> out) {
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  std::vector<double> p_hat(sbs);
  for (std::size_t i = 0; i < sbs; ++i) {
    p_hat[i] = static_cast<double>(qb.pq[i]) * qb.spec.pattern_binsize;
  }
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s_hat =
        static_cast<double>(qb.sq[j]) * qb.spec.scale_binsize;
    for (std::size_t i = 0; i < sbs; ++i) {
      const std::size_t idx = j * sbs + i;
      out[idx] = s_hat * p_hat[i] +
                 static_cast<double>(qb.ecq[idx]) * qb.spec.ec_binsize;
    }
  }
}

/// The pre-optimization decompress_block: fresh QuantizedBlock per call,
/// per-element byte-loop checked reads, symbol-by-symbol reference
/// ecq_decode, scalar dequantize loops.  Absolute bound mode (the
/// paper's) only, which is all this bench runs.  When `dict` is
/// non-null the payload is a v4 pattern section: the reference decoder
/// performs the same serial dictionary pre-pass the shipped sequential
/// decoder does (literal blocks define entries in block order), so the
/// before/after rows measure identical work on v4 streams.
void reference_decompress_block(ByteLoopReader& r, const BlockSpec& spec,
                                const Params& params,
                                std::span<double> out,
                                PatternDict* dict = nullptr,
                                std::uint64_t ordinal = 0) {
  if (r.read_bit()) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  QuantizedBlock qb;
  qb.spec = make_quant_spec(0.0, params.error_bound);
  qb.spec.pattern_bits = static_cast<unsigned>(r.read_bits(6));
  qb.spec.scale_bits = qb.spec.pattern_bits;
  qb.spec.scale_binsize =
      std::ldexp(1.0, 1 - static_cast<int>(qb.spec.scale_bits));
  qb.pq.resize(spec.sub_block_size);
  if (dict != nullptr) {
    const auto tag =
        static_cast<PatternCode>(r.read_bits(PatternDict::kTagBits));
    switch (tag) {
      case PatternCode::Literal:
        for (auto& v : qb.pq) v = r.read_signed(qb.spec.pattern_bits);
        dict->add_decoded(qb.pq, qb.spec.pattern_bits, ordinal);
        break;
      case PatternCode::ExactRef: {
        const PatternDict::Entry& e = dict->entry(r.read_varint());
        std::copy(e.pq.begin(), e.pq.end(), qb.pq.begin());
        break;
      }
      case PatternCode::DeltaRef: {
        const std::uint64_t id = r.read_varint();
        const unsigned dev_bits = static_cast<unsigned>(r.read_bits(6));
        const PatternDict::Entry& e = dict->entry(id);
        for (std::size_t i = 0; i < qb.pq.size(); ++i) {
          qb.pq[i] = e.pq[i] + r.read_signed(dev_bits);
        }
        break;
      }
      default:
        throw std::runtime_error("corrupt pattern tag");
    }
  } else {
    for (auto& v : qb.pq) v = r.read_signed(qb.spec.pattern_bits);
  }
  qb.sq.resize(spec.num_sub_blocks);
  for (auto& v : qb.sq) v = r.read_signed(qb.spec.scale_bits);
  qb.ecb_max = static_cast<unsigned>(r.read_bits(6));
  qb.ecq.assign(spec.block_size(), 0);
  if (qb.ecb_max >= 2) {
    const bool sparse = r.read_bit();
    if (sparse) {
      const std::uint64_t nol = r.read_varint();
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      for (std::uint64_t k = 0; k < nol; ++k) {
        const std::uint64_t idx = r.read_bits(idx_bits);
        qb.ecq[idx] = r.read_signed(qb.ecb_max);
      }
    } else {
      for (auto& v : qb.ecq) {
        v = reference_ecq_decode(r, params.tree, qb.ecb_max);
      }
    }
  }
  reference_dequantize_block(qb, spec, out);
}

// ---- Pre-SIMD encode path (the code the fused kernels replaced) -------
//
// Faithful reimplementation of the multi-pass scalar compress_block:
// early-exit zero probe, single-function select_pattern with its
// per-call metric_val.assign clear, a separate pattern-extremum rescan
// inside quantize, scalar quantize/residual loops, a full
// ecq_code_length walk for the dense-vs-sparse decision, and per-symbol
// ecq_encode_fast dispatch.  Absolute bound mode (the paper's) only,
// which is all this bench runs.

std::int64_t reference_round_to_i64(double x) {
  const double r = std::nearbyint(x);
  if (r >= 9.2e18) return std::int64_t{1} << 62;
  if (r <= -9.2e18) return -(std::int64_t{1} << 62);
  return static_cast<std::int64_t>(std::llround(x));
}

std::int64_t reference_clamp_signed(std::int64_t v, unsigned bits) {
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  return std::clamp(v, lo, hi);
}

void reference_select_pattern_er(std::span<const double> block,
                                 const BlockSpec& spec,
                                 PatternSelection& sel,
                                 std::vector<double>& metric_val) {
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  sel.pattern_sub_block = 0;
  sel.scales.assign(nsb, 0.0);
  auto sub = [&](std::size_t j) { return block.subspan(j * sbs, sbs); };
  metric_val.assign(nsb, 0.0);
  std::size_t er_index = 0;
  double best = -1.0;
  for (std::size_t j = 0; j < nsb; ++j) {
    auto s = sub(j);
    for (std::size_t i = 0; i < sbs; ++i) {
      const double a = std::abs(s[i]);
      if (a > metric_val[j]) metric_val[j] = a;
      if (a > best) {
        best = a;
        er_index = i;
      }
    }
  }
  sel.pattern_sub_block = static_cast<std::size_t>(
      std::max_element(metric_val.begin(), metric_val.end()) -
      metric_val.begin());
  const auto pattern = sub(sel.pattern_sub_block);
  if (metric_val[sel.pattern_sub_block] == 0.0) return;
  for (std::size_t j = 0; j < nsb; ++j) {
    const double s = sub(j)[er_index] / pattern[er_index];
    sel.scales[j] =
        std::isfinite(s) ? std::clamp(s, -1.0, 1.0) : 0.0;
  }
}

void reference_quantize_block(std::span<const double> block,
                              const BlockSpec& spec,
                              const PatternSelection& sel,
                              double error_bound, QuantizedBlock& qb,
                              std::vector<double>& p_hat,
                              std::vector<double>& s_hat) {
  const std::size_t nsb = spec.num_sub_blocks;
  const std::size_t sbs = spec.sub_block_size;
  const auto pattern = block.subspan(sel.pattern_sub_block * sbs, sbs);
  double p_ext = 0.0;
  for (double v : pattern) p_ext = std::max(p_ext, std::abs(v));
  qb.spec = make_quant_spec(p_ext, error_bound);
  qb.ecb_max = 1;
  qb.num_outliers = 0;
  qb.pq.resize(sbs);
  p_hat.resize(sbs);
  for (std::size_t i = 0; i < sbs; ++i) {
    std::int64_t v =
        reference_round_to_i64(pattern[i] / qb.spec.pattern_binsize);
    v = reference_clamp_signed(v, qb.spec.pattern_bits);
    qb.pq[i] = v;
    p_hat[i] = static_cast<double>(v) * qb.spec.pattern_binsize;
  }
  qb.sq.resize(nsb);
  s_hat.resize(nsb);
  for (std::size_t j = 0; j < nsb; ++j) {
    std::int64_t v =
        reference_round_to_i64(sel.scales[j] / qb.spec.scale_binsize);
    v = reference_clamp_signed(v, qb.spec.scale_bits);
    qb.sq[j] = v;
    s_hat[j] = static_cast<double>(v) * qb.spec.scale_binsize;
  }
  qb.ecq.resize(block.size());
  for (std::size_t j = 0; j < nsb; ++j) {
    for (std::size_t i = 0; i < sbs; ++i) {
      const std::size_t idx = j * sbs + i;
      const double approx = s_hat[j] * p_hat[i];
      const std::int64_t e =
          reference_round_to_i64((block[idx] - approx) / qb.spec.ec_binsize);
      qb.ecq[idx] = e;
      if (e != 0) {
        ++qb.num_outliers;
        qb.ecb_max = std::max(qb.ecb_max, ecq_bin(e));
      }
    }
  }
}

void reference_compress_block(std::span<const double> block,
                              const BlockSpec& spec, const Params& params,
                              bitio::BitWriter& w, CodecWorkspace& ws) {
  bool zero_block = true;
  for (double v : block) {
    if (std::abs(v) > params.error_bound) {
      zero_block = false;
      break;
    }
  }
  if (zero_block) {
    w.write_bit(true);
    return;
  }
  w.write_bit(false);
  reference_select_pattern_er(block, spec, ws.selection, ws.metric_scratch);
  QuantizedBlock& qb = ws.quantized;
  reference_quantize_block(block, spec, ws.selection, params.error_bound,
                           qb, ws.p_hat, ws.s_hat);
  bool sparse = false;
  if (qb.ecb_max >= 2) {
    const std::size_t dense_bits =
        ecq_encoded_bits(params.tree, qb.ecq, qb.ecb_max);
    const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
    std::size_t nol_varint_bits = 8;
    for (std::size_t n = qb.num_outliers; n >= 0x80; n >>= 7) {
      nol_varint_bits += 8;
    }
    const std::size_t sparse_bits =
        nol_varint_bits + qb.num_outliers * (idx_bits + qb.ecb_max);
    sparse = params.allow_sparse && sparse_bits < dense_bits;
  }
  w.write_bits(qb.spec.pattern_bits, 6);
  w.write_signed_run(qb.pq, qb.spec.pattern_bits);
  w.write_signed_run(qb.sq, qb.spec.scale_bits);
  w.write_bits(qb.ecb_max, 6);
  if (qb.ecb_max >= 2) {
    w.write_bit(sparse);
    if (sparse) {
      const unsigned idx_bits = bitio::bits_for_count(spec.block_size());
      bitio::write_varint(w, qb.num_outliers);
      for (std::size_t i = 0; i < qb.ecq.size(); ++i) {
        if (qb.ecq[i] != 0) {
          w.write_bits(i, idx_bits);
          w.write_signed(qb.ecq[i], qb.ecb_max);
        }
      }
    } else {
      for (std::int64_t v : qb.ecq) {
        ecq_encode_fast(w, params.tree, v, qb.ecb_max);
      }
    }
  }
}

struct Row {
  const char* name;
  double before_s = 0.0;
  double after_s = 0.0;
  double gbps_before = 0.0;
  double gbps_after = 0.0;
  double symbols_per_s_before = 0.0;
  double symbols_per_s_after = 0.0;
};

double speedup(const Row& r) { return r.before_s / r.after_s; }

}  // namespace

int main() {
  bench::print_header(
      "Codec kernels -- word-at-a-time bit I/O, LUT ECQ decode, "
      "allocation-free block decode, fused SIMD encode",
      "Section IV-C rates (per-block kernel cost)");
  const int reps = bench::quick_mode() ? 3 : 7;
  std::vector<Row> rows;

  // ---- Row 1: read_bits, byte loop vs word loads ----------------------
  {
    const std::size_t n = bench::quick_mode() ? 200'000 : 2'000'000;
    bitio::BitWriter w;
    std::mt19937_64 gen(7);
    std::vector<unsigned> widths(n);
    for (auto& width : widths) {
      width = 1 + static_cast<unsigned>(gen() % 57);
      w.write_bits(gen(), width);
    }
    const auto bytes = w.take();
    Row row{"read_bits mixed widths 1..57"};
    std::uint64_t sink = 0;
    row.before_s = bench::best_time_seconds(
        [&] {
          ByteLoopReader r{bytes};
          for (unsigned width : widths) sink ^= r.read_bits(width);
        },
        reps);
    row.after_s = bench::best_time_seconds(
        [&] {
          bitio::BitReader r(bytes);
          for (unsigned width : widths) sink ^= r.read_bits(width);
        },
        reps);
    if (sink == 42) std::printf(" ");  // keep the reads observable
    row.gbps_before = static_cast<double>(bytes.size()) / row.before_s / 1e9;
    row.gbps_after = static_cast<double>(bytes.size()) / row.after_s / 1e9;
    rows.push_back(row);
  }

  // ---- Row 2: dense ECQ decode, tree walk vs LUT ----------------------
  {
    const std::size_t n = bench::quick_mode() ? 400'000 : 4'000'000;
    const unsigned ecb_max = 5;  // typical type-2 (dd|dd) block
    std::mt19937_64 gen(11);
    std::vector<std::int64_t> symbols(n);
    for (auto& v : symbols) {
      const std::uint64_t roll = gen() % 100;
      v = roll < 70 ? 0 : (roll < 90 ? ((gen() & 1) ? 1 : -1)
                                     : static_cast<std::int64_t>(gen() % 15) - 7);
    }
    bitio::BitWriter w;
    for (std::int64_t v : symbols) {
      ecq_encode(w, EcqTree::Tree5, v, ecb_max);
    }
    const auto bytes = w.take();
    Row row{"dense ECQ decode (Tree5, ecb_max=5)"};
    std::int64_t sink = 0;
    row.before_s = bench::best_time_seconds(
        [&] {
          ByteLoopReader r{bytes};
          for (std::size_t i = 0; i < n; ++i) {
            sink ^= reference_ecq_decode(r, EcqTree::Tree5, ecb_max);
          }
        },
        reps);
    const EcqDecodeLut& lut = ecq_decode_lut(EcqTree::Tree5, ecb_max);
    std::vector<std::int64_t> decoded(n);
    row.after_s = bench::best_time_seconds(
        [&] {
          bitio::BitReader r(bytes);
          ecq_decode_run(r, lut, EcqTree::Tree5, ecb_max, decoded);
          r.check_overrun();
        },
        reps);
    if (sink == 42) std::printf(" ");
    if (decoded != symbols) {
      std::fprintf(stderr, "FATAL: run decoder diverged from input\n");
      return 1;
    }
    row.symbols_per_s_before = static_cast<double>(n) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(n) / row.after_s;
    row.gbps_before = static_cast<double>(bytes.size()) / row.before_s / 1e9;
    row.gbps_after = static_cast<double>(bytes.size()) / row.after_s / 1e9;
    rows.push_back(row);
  }

  // ---- Row 3a: bulk decode stage, scalar-word kernels vs SIMD ---------
  //
  // Isolates the vectorized stage of the two-stage decode: fixed-width
  // PQ/SQ unpack plus the pattern x scale multiply-add reconstruction,
  // at (dd|dd) geometry.  "Before" is the scalar decode-kernel table
  // (word-windowed unpack, scalar reconstruct -- exactly the shipped
  // pre-SIMD per-block loops); "after" is the active backend.
  {
    const BlockSpec spec{.num_sub_blocks = 36, .sub_block_size = 36};
    // A small distinct-block set cycled many times: in the real decode
    // pipeline the ECQ array was just written by the serial entropy
    // stage, so the bulk stage always runs on cache-hot inputs -- the
    // bench reproduces that rather than streaming from DRAM.
    const std::size_t nb = 64;
    const std::size_t iters = bench::quick_mode() ? 2'000 : 40'000;
    const unsigned bits = 21;
    const unsigned ecb_max = 5;
    const std::size_t bs = spec.block_size();
    std::mt19937_64 gen(17);
    bitio::BitWriter w;
    std::vector<std::int64_t> ecq(nb * bs);
    const std::int64_t lim = (std::int64_t{1} << (bits - 1)) - 1;
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        w.write_signed(static_cast<std::int64_t>(gen()) % lim, bits);
      }
      for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
        w.write_signed(static_cast<std::int64_t>(gen()) % lim, bits);
      }
    }
    for (auto& e : ecq) {
      const auto roll = gen() % 10;
      e = roll < 7 ? 0 : static_cast<std::int64_t>(gen() % 15) - 7;
    }
    const auto bytes = w.take();
    const std::size_t block_bits = (spec.sub_block_size +
                                    spec.num_sub_blocks) * bits;
    std::vector<std::int64_t> pq(spec.sub_block_size),
        sq(spec.num_sub_blocks);
    std::vector<double> p_hat(spec.sub_block_size), out(bs);
    const double pbin = 2e-10, sbin = std::ldexp(1.0, 1 - (int)bits);

    const auto run_with = [&](const simd::DecodeKernels& dk) {
      for (std::size_t it = 0; it < iters; ++it) {
        const std::size_t b = it % nb;
        std::size_t pos = b * block_bits;
        dk.unpack_signed(bytes.data(), bytes.size(), pos, bits, pq.data(),
                         spec.sub_block_size);
        pos += spec.sub_block_size * bits;
        dk.unpack_signed(bytes.data(), bytes.size(), pos, bits, sq.data(),
                         spec.num_sub_blocks);
        dk.reconstruct(pq.data(), sq.data(), ecq.data() + b * bs,
                       spec.num_sub_blocks, spec.sub_block_size, pbin,
                       sbin, pbin, bits, ecb_max, p_hat.data(),
                       out.data());
      }
    };
    Row row{"decode bulk stage (unpack+reconstruct)"};
    row.before_s = bench::best_time_seconds(
        [&] { run_with(simd::kScalarDecode); }, reps);
    const std::vector<double> scalar_out = out;
    row.after_s = bench::best_time_seconds(
        [&] { run_with(simd::decode_kernels()); }, reps);
    if (std::memcmp(scalar_out.data(), out.data(),
                    bs * sizeof(double)) != 0) {
      std::fprintf(stderr, "FATAL: bulk decode stage diverged\n");
      return 1;
    }
    const double raw_bytes =
        static_cast<double>(iters * bs * sizeof(double));
    row.gbps_before = raw_bytes / row.before_s / 1e9;
    row.gbps_after = raw_bytes / row.after_s / 1e9;
    row.symbols_per_s_before =
        static_cast<double>(iters * bs) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(iters * bs) / row.after_s;
    rows.push_back(row);
  }

  // ---- Row 3: full (dd|dd) block decode, old path vs workspace --------
  {
    const auto ds = bench::load_bench_dataset(
        {"benzene", "(dd|dd)", 1296, 250, 1296});
    const BlockSpec spec = bench::block_spec_of(ds);
    Params params;
    const auto stream = compress(ds.values, spec, params);
    const BlockReader reader(stream);
    const std::size_t nb = reader.num_blocks();
    const std::size_t bs = spec.block_size();
    std::vector<double> out(bs);

    Row row{"full block decompress (dd|dd)"};
    row.before_s = bench::best_time_seconds(
        [&] {
          for (std::size_t b = 0; b < nb; ++b) {
            const BlockExtent& e = reader.index().extent(b);
            ByteLoopReader r{
                std::span<const std::uint8_t>(stream).subspan(e.offset,
                                                              e.length)};
            reference_decompress_block(r, spec, params, out);
          }
        },
        reps);
    CodecWorkspace ws;
    row.after_s = bench::best_time_seconds(
        [&] {
          for (std::size_t b = 0; b < nb; ++b) {
            const BlockExtent& e = reader.index().extent(b);
            bitio::BitReader r(
                std::span<const std::uint8_t>(stream).subspan(e.offset,
                                                              e.length));
            decompress_block(r, spec, params, out, ws);
          }
        },
        reps);
    const double raw_bytes = static_cast<double>(nb * bs * sizeof(double));
    row.gbps_before = raw_bytes / row.before_s / 1e9;
    row.gbps_after = raw_bytes / row.after_s / 1e9;
    row.symbols_per_s_before = static_cast<double>(nb * bs) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(nb * bs) / row.after_s;
    rows.push_back(row);
    std::printf("decode backend: %s\n",
                simd::backend_name(simd::active_backend()));
  }

  // ---- Row 3b: v4 dict block decode, both sides with the dict pre-pass
  {
    const auto ds = bench::load_bench_dataset(
        {"benzene", "(dd|dd)", 1296, 250, 1296});
    const BlockSpec spec = bench::block_spec_of(ds);
    Params params;
    params.dict = DictMode::On;
    const auto stream = compress(ds.values, spec, params);
    const BlockReader reader(stream);
    const std::size_t nb = reader.num_blocks();
    const std::size_t bs = spec.block_size();
    std::vector<double> out_before(bs), out_after(bs);

    Row row{"full block decompress (dd|dd, v4 dict)"};
    const auto payload = [&](std::size_t b) {
      const BlockExtent& e = reader.index().extent(b);
      return std::span<const std::uint8_t>(stream).subspan(e.offset,
                                                           e.length);
    };
    // Before: the serial consumer of the pre-SIMD era -- per-block
    // byte-loop reads with the dictionary built incrementally from the
    // literal blocks as they decode.
    row.before_s = bench::best_time_seconds(
        [&] {
          PatternDict dict;
          for (std::size_t b = 0; b < nb; ++b) {
            ByteLoopReader r{payload(b)};
            reference_decompress_block(r, spec, params, out_before, &dict,
                                       b);
          }
        },
        reps);
    // After: the shipped sequential path -- serial dictionary pre-pass
    // over the pattern prefixes, then bulk-kernel block decode against
    // the read-only context (same total work as the reference above).
    row.after_s = bench::best_time_seconds(
        [&] {
          CodecContext ctx(reader.info(), /*num_threads=*/1);
          for (std::size_t b = 0; b < nb; ++b) {
            ctx.absorb_payload_prefix(payload(b), b);
          }
          CodecWorkspace& ws = *ctx.workspaces(1);
          for (std::size_t b = 0; b < nb; ++b) {
            bitio::BitReader r(payload(b));
            decompress_block(ctx, r, out_after, ws);
          }
        },
        reps);
    // Both decoders must agree on the final block's values.
    if (std::memcmp(out_before.data(), out_after.data(),
                    bs * sizeof(double)) != 0) {
      std::fprintf(stderr, "FATAL: v4 reference decode diverged\n");
      return 1;
    }
    const double raw_bytes = static_cast<double>(nb * bs * sizeof(double));
    row.gbps_before = raw_bytes / row.before_s / 1e9;
    row.gbps_after = raw_bytes / row.after_s / 1e9;
    row.symbols_per_s_before = static_cast<double>(nb * bs) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(nb * bs) / row.after_s;
    rows.push_back(row);
  }

  // ---- Row 4: full block compress, multi-pass scalar vs fused SIMD ----
  {
    const auto ds = bench::load_bench_dataset(
        {"benzene", "(dd|dd)", 1296, 250, 1296});
    const BlockSpec spec = bench::block_spec_of(ds);
    Params params;
    const std::size_t bs = spec.block_size();
    const std::size_t nb = ds.values.size() / bs;
    const auto block_at = [&](std::size_t b) {
      return std::span<const double>(ds.values).subspan(b * bs, bs);
    };

    Row row{"full block compress (dd|dd)"};
    CodecWorkspace ws;
    bitio::BitWriter w_before;
    row.before_s = bench::best_time_seconds(
        [&] {
          w_before.restart();
          for (std::size_t b = 0; b < nb; ++b) {
            reference_compress_block(block_at(b), spec, params, w_before,
                                     ws);
          }
        },
        reps);
    bitio::BitWriter w_after;
    row.after_s = bench::best_time_seconds(
        [&] {
          w_after.restart();
          for (std::size_t b = 0; b < nb; ++b) {
            compress_block(block_at(b), spec, params, w_after, nullptr,
                           ws);
          }
        },
        reps);
    // The fused SIMD path must emit the very bytes the old path did.
    const auto before_bytes = w_before.finish_view();
    const auto after_bytes = w_after.finish_view();
    if (before_bytes.size() != after_bytes.size() ||
        std::memcmp(before_bytes.data(), after_bytes.data(),
                    before_bytes.size()) != 0) {
      std::fprintf(stderr, "FATAL: fused encoder diverged from scalar\n");
      return 1;
    }
    const double raw_bytes = static_cast<double>(nb * bs * sizeof(double));
    row.gbps_before = raw_bytes / row.before_s / 1e9;
    row.gbps_after = raw_bytes / row.after_s / 1e9;
    row.symbols_per_s_before = static_cast<double>(nb * bs) / row.before_s;
    row.symbols_per_s_after = static_cast<double>(nb * bs) / row.after_s;
    rows.push_back(row);
    std::printf("encode backend: %s\n",
                simd::backend_name(simd::active_backend()));
  }

  std::printf("%-38s %10s %10s %9s\n", "kernel", "before", "after",
              "speedup");
  std::ofstream json(bench::artifact_path("BENCH_codec_kernels.json"));
  json << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-38s %8.3f s %8.3f s %8.2fx\n", r.name, r.before_s,
                r.after_s, speedup(r));
    std::printf("%-38s %7.2f GB/s %5.2f GB/s\n", "", r.gbps_before,
                r.gbps_after);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"kernel\":\"%s\",\"before_seconds\":%.6g,"
        "\"after_seconds\":%.6g,\"speedup\":%.4g,"
        "\"gbps_before\":%.4g,\"gbps_after\":%.4g,"
        "\"symbols_per_s_before\":%.6g,\"symbols_per_s_after\":%.6g}%s\n",
        r.name, r.before_s, r.after_s, speedup(r), r.gbps_before,
        r.gbps_after, r.symbols_per_s_before, r.symbols_per_s_after, ",");
    json << buf;
  }
  // Summary row: decode throughput and the decompress/compress ratio on
  // the same dataset (the PR target is ratio >= 1.0 single-thread).
  {
    const auto find = [&](const char* name) -> const Row& {
      for (const Row& r : rows) {
        if (std::strcmp(r.name, name) == 0) return r;
      }
      std::fprintf(stderr, "FATAL: missing row %s\n", name);
      std::exit(1);
    };
    const Row& dec = find("full block decompress (dd|dd)");
    const Row& enc = find("full block compress (dd|dd)");
    const double ratio = dec.gbps_after / enc.gbps_after;
    std::printf("%-38s %7.2f GB/s decode, %5.2f GB/s encode, %5.2fx\n",
                "decompress/compress (dd|dd)", dec.gbps_after,
                enc.gbps_after, ratio);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"kernel\":\"decompress/compress ratio (dd|dd)\","
                  "\"decode_gbps\":%.4g,\"compress_gbps\":%.4g,"
                  "\"decompress_over_compress\":%.4g,"
                  "\"backend\":\"%s\"}\n",
                  dec.gbps_after, enc.gbps_after, ratio,
                  simd::backend_name(simd::active_backend()));
    json << buf;
  }
  json << "]\n";
  bench::print_rule();
  std::printf("wrote %s\n",
              bench::artifact_path("BENCH_codec_kernels.json").c_str());
  return 0;
}
