// bench_fig9a_ratios - Reproduces Fig. 9(a): compression ratios of SZ,
// ZFP, and PaSTRI over the six datasets at EB in {1e-11, 1e-10, 1e-9}.
//
// Paper headline: at 1e-10 SZ reaches 7.24x, ZFP 5.92x, PaSTRI up to
// 16.8x -- PaSTRI ~2.5x better on average.
#include "bench_common.h"
#include "compressors/compressor_iface.h"

using namespace pastri;

int main() {
  bench::print_header(
      "Fig. 9(a) -- compression ratios (SZ / ZFP / PaSTRI)",
      "Fig. 9(a), Section V-B");

  const double ebs[] = {1e-11, 1e-10, 1e-9};

  for (double eb : ebs) {
    std::printf("\nEB = %.0e\n", eb);
    std::printf("%-22s %10s %10s %10s\n", "dataset", "SZ", "ZFP",
                "PaSTRI");
    double sum[3] = {0, 0, 0};
    std::size_t in_total = 0;
    std::size_t out_total[3] = {0, 0, 0};
    int n = 0;
    for (const auto& spec : bench::paper_datasets()) {
      const auto ds = bench::load_bench_dataset(spec);
      const BlockSpec bs = bench::block_spec_of(ds);
      const std::unique_ptr<baselines::LossyCompressor> codecs[3] = {
          baselines::make_sz_compressor(),
          baselines::make_zfp_compressor(),
          baselines::make_pastri_compressor(bs)};
      double r[3];
      for (int c = 0; c < 3; ++c) {
        const auto stream = codecs[c]->compress(ds.values, eb);
        r[c] = static_cast<double>(ds.size_bytes()) / stream.size();
        sum[c] += r[c];
        out_total[c] += stream.size();
      }
      in_total += ds.size_bytes();
      ++n;
      std::printf("%-22s %10.2f %10.2f %10.2f\n", ds.label.c_str(), r[0],
                  r[1], r[2]);
    }
    std::printf("%-22s %10.2f %10.2f %10.2f   (mean of per-dataset)\n",
                "Average", sum[0] / n, sum[1] / n, sum[2] / n);
    std::printf("%-22s %10.2f %10.2f %10.2f   (pooled bytes)\n", "Pooled",
                static_cast<double>(in_total) / out_total[0],
                static_cast<double>(in_total) / out_total[1],
                static_cast<double>(in_total) / out_total[2]);
  }
  bench::print_rule();
  std::printf("paper shape: PaSTRI >> SZ > ZFP at every EB; ratios "
              "improve as EB loosens (1e-11 -> 1e-9).\n");
  return 0;
}
