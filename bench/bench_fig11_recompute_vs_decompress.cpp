// bench_fig11_recompute_vs_decompress - Reproduces Fig. 11: total
// computation time to obtain ERI data 20 times, comparing the original
// infrastructure (recompute every time) against the PaSTRI infrastructure
// (compute once + compress once + decompress 19 more times).
//
// The paper reports GAMESS integral generation at 322.82 MB/s for
// (dd|dd) and 622.81 MB/s for (ff|ff) vs ~1 GB/s PaSTRI decompression;
// here both rates are *measured* from this repository's own ERI engine
// and codec.
#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header(
      "Fig. 11 -- recompute-vs-decompress total time (reuse = 20)",
      "Fig. 11, Section V-B");

  const int kReuse = 20;
  const int reps = bench::quick_mode() ? 1 : 3;

  for (const char* config : {"(dd|dd)", "(ff|ff)"}) {
    const bench::DatasetSpec spec{
        "alanine", config,
        config == std::string("(dd|dd)") ? std::size_t{800}
                                         : std::size_t{120},
        60, 2000};
    const auto ds = bench::load_bench_dataset(spec);
    const BlockSpec bs = bench::block_spec_of(ds);
    const double mb = static_cast<double>(ds.size_bytes()) / 1e6;

    // Measured generation rate of the integral engine (MB/s).
    qc::DatasetOptions gopt;
    gopt.config = qc::parse_config(config);
    gopt.seed = 20180901;
    const double gen_rate = qc::measure_generation_rate(
        qc::make_trialanine(), gopt,
        std::max<std::size_t>(20, ds.num_blocks / 8));

    std::printf("\n%s  (%zu blocks, %.1f MB; engine %.1f MB/s)\n", config,
                ds.num_blocks, mb, gen_rate);
    std::printf("%-10s %14s %14s %14s %10s\n", "EB", "original (s)",
                "pastri (s)", "breakdown", "speedup");
    for (double eb : {1e-11, 1e-10, 1e-9}) {
      Params p;
      p.error_bound = eb;
      std::vector<std::uint8_t> stream;
      const double comp_secs = bench::best_time_seconds(
          [&] { stream = compress(ds.values, bs, p); }, reps);
      std::vector<double> back;
      const double decomp_secs = bench::best_time_seconds(
          [&] { back = decompress(stream); }, reps);

      const double gen_secs = mb / gen_rate;
      const double original = kReuse * gen_secs;
      const double pastri_infra =
          gen_secs + comp_secs + kReuse * decomp_secs;
      std::printf("%-10.0e %14.2f %14.2f  gen %.2f+c %.2f+%dxd %.3f %9.1fx\n",
                  eb, original, pastri_infra, gen_secs, comp_secs, kReuse,
                  decomp_secs, original / pastri_infra);
    }
  }
  bench::print_rule();
  std::printf("paper shape: decompression is several times faster than "
              "integral recomputation, so the PaSTRI infrastructure wins "
              "decisively at reuse=20 for both configurations.\n");
  return 0;
}
