// bench_ablation_huffman_ecq - Reproduces the Section IV-C argument for
// fixed trees over Huffman coding of ECQ streams: Huffman needs a stored
// dictionary, suffers from huge sparse alphabets with single-occurrence
// values, and serializes the workload (a frequency pass before any
// encoding).  We measure the actual encoded sizes both ways.
#include <map>

#include "bench_common.h"
#include "compressors/huffman.h"

using namespace pastri;

int main() {
  bench::print_header("Ablation -- Tree 5 vs Huffman on ECQ streams",
                      "Section IV-C (Huffman discussion)");

  Params p;
  p.error_bound = 1e-10;

  std::size_t tree5_bits_total = 0, huff_bits_total = 0,
              huff_dict_bits_total = 0;
  std::size_t blocks = 0, distinct_total = 0, singletons_total = 0;

  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    const BlockSpec bs = bench::block_spec_of(ds);
    for (std::size_t b = 0; b < ds.num_blocks; ++b) {
      const BlockAnalysis a = analyze_block(ds.block(b), bs, p);
      if (a.zero_block || a.quantized.ecb_max < 2) continue;
      ++blocks;
      // Tree 5 (per block, no dictionary).
      tree5_bits_total += ecq_encoded_bits(EcqTree::Tree5, a.quantized.ecq,
                                           a.quantized.ecb_max);
      // Per-block Huffman: frequency pass + dictionary + payload.
      std::map<std::int64_t, std::uint64_t> freq_map;
      for (auto v : a.quantized.ecq) ++freq_map[v];
      // Map values to a dense alphabet for the codec.
      std::vector<std::uint64_t> freq;
      std::map<std::int64_t, std::uint32_t> sym_of;
      for (const auto& [v, f] : freq_map) {
        sym_of[v] = static_cast<std::uint32_t>(freq.size());
        freq.push_back(f);
        singletons_total += (f == 1);
      }
      distinct_total += freq.size();
      const auto huff = baselines::HuffmanCodec::from_frequencies(freq);
      std::size_t payload = 0;
      for (auto v : a.quantized.ecq) payload += huff.code_length(sym_of[v]);
      // The dictionary must also map symbols back to signed values:
      // charge ~(2 + EC_b) bits per distinct value on top of the code
      // lengths themselves.
      const std::size_t dict =
          huff.dictionary_bits() +
          freq.size() * (2 + a.quantized.ecb_max);
      huff_bits_total += payload + dict;
      huff_dict_bits_total += dict;
    }
  }

  std::printf("blocks with ECQ payload: %zu\n", blocks);
  std::printf("distinct ECQ values/block (avg): %.1f; single-occurrence "
              "values/block (avg): %.1f\n",
              static_cast<double>(distinct_total) / blocks,
              static_cast<double>(singletons_total) / blocks);
  std::printf("\n%-28s %16s\n", "encoder", "total ECQ bits");
  std::printf("%-28s %16zu\n", "Tree 5 (fixed, no dict)", tree5_bits_total);
  std::printf("%-28s %16zu  (dict %zu = %.1f%%)\n",
              "per-block Huffman + dict", huff_bits_total,
              huff_dict_bits_total,
              100.0 * huff_dict_bits_total / huff_bits_total);
  bench::print_rule();
  std::printf("paper shape: the dictionary overhead erases Huffman's "
              "payload advantage at block granularity -- Tree 5 total "
              "is %s (%.2fx Huffman's size) -- while amortizing the "
              "dictionary across blocks would serialize the pipeline.\n",
              tree5_bits_total <= huff_bits_total ? "smaller" : "larger",
              static_cast<double>(tree5_bits_total) / huff_bits_total);
  return 0;
}
