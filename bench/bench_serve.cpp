// bench_serve.cpp - Concurrency benchmark of the pastri_serve daemon
// and the sharded block cache behind it.
//
// Two measurements:
//
//   1. Warm-read scaling of ShardedBlockCache-backed BlockStore reads
//      at 1/2/4/8 threads, once with the default 8-way striping and
//      once with num_shards=1 (the old single-global-mutex behavior),
//      so the striping win -- and the host's actual core budget -- are
//      both on the record.
//
//   2. K concurrent clients (own TCP connection each) driving a mixed
//      workload against a live Server: 70% GET_BLOCK, 15% GET_RANGE,
//      15% PUT_CHUNK into a per-client streaming session.  Reports
//      p50/p99 request latency, aggregate throughput, and the error
//      count (which must be zero).
//
// Emits BENCH_serve.json at the repo root.  `--smoke` shrinks the run
// for CI; `--port N` targets an externally started daemon instead of
// an in-process Server (the CI smoke step uses this against a real
// pastri_serve process).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/pastri.h"
#include "core/stream.h"
#include "io/block_store.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string write_container(const pastri::BlockSpec& spec,
                            std::size_t num_blocks) {
  const std::string path = "/tmp/pastri_bench_serve.pastri";
  std::mt19937_64 gen(20180901);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::ofstream f(path, std::ios::binary);
  pastri::OstreamSink sink(f);
  pastri::StreamWriter writer(sink, spec, pastri::Params{});
  std::vector<double> block(spec.block_size());
  std::vector<double> base(spec.sub_block_size);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (auto& x : base) x = 1e-4 * dist(gen);
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      const double s = dist(gen);
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        block[j * spec.sub_block_size + i] = s * base[i] + 1e-8 * dist(gen);
      }
    }
    writer.put_block(block);
  }
  writer.finish();
  return path;
}

struct ScalingRow {
  std::size_t threads;
  std::size_t shards;
  double mops_per_s;
};

/// Warm-cache lookup rate: every block pre-decoded, T threads hammer
/// random lookups for a fixed op count each.
ScalingRow warm_read_rate(const std::string& path, std::size_t threads,
                          std::size_t shards, std::size_t num_blocks,
                          std::size_t ops_per_thread) {
  pastri::io::BlockStore store(path,
                               pastri::CacheConfig{num_blocks, shards});
  for (std::size_t b = 0; b < num_blocks; ++b) (void)store.block(b);
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t rng = 0x853C49E6748FEA9Bull + t;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        (void)store.block((rng >> 33) % num_blocks);
      }
    });
  }
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double dt = seconds_since(t0);
  return {threads, shards,
          static_cast<double>(threads * ops_per_thread) / dt / 1e6};
}

struct ClientResult {
  std::vector<double> latencies_us;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t errors = 0;
};

ClientResult run_client(std::uint16_t port, std::size_t index,
                        const std::string& container,
                        std::size_t num_blocks, std::size_t block_size,
                        std::size_t ops) {
  ClientResult res;
  res.latencies_us.reserve(ops);
  try {
    pastri::serve::Client client("127.0.0.1", port);
    const pastri::serve::StoreInfo info = client.open_store(container);
    const std::string put_path =
        "/tmp/pastri_bench_serve_put_" + std::to_string(index) + ".pastri";
    const std::uint32_t put = client.put_open(put_path, 36, 36);
    std::vector<double> chunk(block_size, 0.25 + 1e-3 * index);
    std::uint64_t rng = 0x2545F4914F6CDD1Dull * (index + 1);
    for (std::size_t i = 0; i < ops; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t pick = (rng >> 57) % 20;  // 0..19
      const auto t0 = Clock::now();
      try {
        if (pick < 14) {
          const auto blk =
              client.get_block(info.id, (rng >> 20) % num_blocks);
          res.bytes_read += blk.size() * sizeof(double);
        } else if (pick < 17) {
          const std::size_t first = (rng >> 20) % (num_blocks - 8);
          const auto r = client.get_range(info.id, first, 8);
          res.bytes_read += r.size() * sizeof(double);
        } else {
          client.put_chunk(put, chunk);
          res.bytes_written += chunk.size() * sizeof(double);
        }
      } catch (const std::exception&) {
        ++res.errors;
      }
      res.latencies_us.push_back(seconds_since(t0) * 1e6);
    }
    (void)client.put_close(put);
    std::remove(put_path.c_str());
  } catch (const std::exception&) {
    ++res.errors;
  }
  return res;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pastri;
  bool smoke = bench::quick_mode();
  std::uint16_t external_port = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      external_port =
          static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--port N]\n", argv[0]);
      return 2;
    }
  }

  const BlockSpec spec{36, 36};  // the paper's (dd|dd) shape
  const std::size_t num_blocks = smoke ? 64 : 512;
  const std::size_t clients = smoke ? 4 : 8;
  const std::size_t ops_per_client = smoke ? 200 : 2000;
  const std::size_t warm_ops = smoke ? 20000 : 200000;
  const std::string container = write_container(spec, num_blocks);

  // ---- 1. warm-read cache scaling, striped vs single mutex ------------
  std::vector<ScalingRow> scaling;
  for (const std::size_t shards : {std::size_t{8}, std::size_t{1}}) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      scaling.push_back(
          warm_read_rate(container, threads, shards, num_blocks, warm_ops));
      std::printf("warm read: %zu thread(s), %zu shard(s): %8.2f Mops/s\n",
                  scaling.back().threads, scaling.back().shards,
                  scaling.back().mops_per_s);
    }
  }

  // ---- 2. mixed concurrent clients against a live daemon ---------------
  serve::Server server;  // used unless --port points elsewhere
  std::uint16_t port = external_port;
  if (port == 0) {
    server.start();
    port = server.port();
  }

  const auto t0 = Clock::now();
  std::vector<ClientResult> results(clients);
  {
    std::vector<std::thread> pool;
    for (std::size_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        results[c] = run_client(port, c, container, num_blocks,
                                spec.block_size(), ops_per_client);
      });
    }
    for (auto& th : pool) th.join();
  }
  const double elapsed = seconds_since(t0);

  std::vector<double> latencies;
  std::uint64_t bytes_read = 0, bytes_written = 0, errors = 0;
  for (const ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    bytes_read += r.bytes_read;
    bytes_written += r.bytes_written;
    errors += r.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double gbps =
      static_cast<double>(bytes_read + bytes_written) / elapsed / 1e9;
  const double rps = static_cast<double>(latencies.size()) / elapsed;

  std::printf(
      "serve: %zu clients x %zu ops  p50 %.1f us  p99 %.1f us  "
      "%.0f req/s  %.3f GB/s  errors %llu\n",
      clients, ops_per_client, p50, p99, rps, gbps,
      static_cast<unsigned long long>(errors));

  // ---- artifact ---------------------------------------------------------
  std::ofstream json(bench::artifact_path("BENCH_serve.json"));
  json << "{\n  \"mode\": \"" << (smoke ? "smoke" : "default") << "\",\n";
  json << "  \"host\": {\"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << "},\n";
  if (std::thread::hardware_concurrency() < 8) {
    json << "  \"note\": \"host has fewer cores than bench threads; "
            "warm-read scaling reflects lock overhead only, not "
            "parallel speedup\",\n";
  }
  json << "  \"warm_read_scaling\": [\n";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    json << "    {\"threads\": " << scaling[i].threads
         << ", \"shards\": " << scaling[i].shards << ", \"mops_per_s\": "
         << scaling[i].mops_per_s << "}"
         << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"serve\": {\"clients\": " << clients
       << ", \"ops_per_client\": " << ops_per_client
       << ", \"p50_us\": " << p50 << ", \"p99_us\": " << p99
       << ", \"requests_per_s\": " << rps << ", \"throughput_gb_s\": "
       << gbps << ", \"bytes_read\": " << bytes_read
       << ", \"bytes_written\": " << bytes_written << ", \"errors\": "
       << errors << "}\n}\n";
  json.close();
  std::printf("wrote %s\n",
              bench::artifact_path("BENCH_serve.json").c_str());

  std::remove(container.c_str());
  return errors == 0 ? 0 : 1;
}
