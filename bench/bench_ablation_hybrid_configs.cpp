// bench_ablation_hybrid_configs - Reproduces the Section V-A remark:
// "we have also used d and f hybrid BF configurations ((df|fd), etc.)
// ... metrics for hybrid configurations follow very similar trends of
// the metrics of pure configurations."
#include "bench_common.h"
#include "compressors/compressor_iface.h"

using namespace pastri;

int main() {
  bench::print_header("Ablation -- hybrid BF configurations",
                      "Section V-A (hybrid (df|fd)-style datasets)");

  const char* configs[] = {"(dd|dd)", "(df|fd)", "(fd|df)",
                           "(fd|ff)", "(ff|ff)"};
  const std::size_t blocks = bench::quick_mode() ? 60 : 250;

  std::printf("%-10s %14s %10s %10s %10s\n", "config", "block shape",
              "SZ", "ZFP", "PaSTRI");
  for (const char* cfg : configs) {
    qc::DatasetOptions opt;
    opt.config = qc::parse_config(cfg);
    opt.max_blocks = blocks;
    opt.seed = 20180901;
    const auto ds =
        qc::generate_eri_dataset(qc::make_glutamine(), opt);
    const BlockSpec bs = bench::block_spec_of(ds);
    const std::unique_ptr<baselines::LossyCompressor> codecs[3] = {
        baselines::make_sz_compressor(), baselines::make_zfp_compressor(),
        baselines::make_pastri_compressor(bs)};
    double r[3];
    for (int c = 0; c < 3; ++c) {
      r[c] = static_cast<double>(ds.size_bytes()) /
             codecs[c]->compress(ds.values, 1e-10).size();
    }
    char shape[32];
    std::snprintf(shape, sizeof shape, "%zux%zu", bs.num_sub_blocks,
                  bs.sub_block_size);
    std::printf("%-10s %14s %10.2f %10.2f %10.2f\n", cfg, shape, r[0],
                r[1], r[2]);
  }
  bench::print_rule();
  std::printf("paper shape: hybrids track the pure configurations; "
              "PaSTRI leads on every shape.\n");
  return 0;
}
