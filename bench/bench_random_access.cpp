// bench_random_access.cpp - Seek cost of the indexed (v3) container.
//
// The point of the block index: pulling one block out of an N-block
// stream should cost O(block), not O(stream).  This bench measures, at
// several block counts,
//   - full decompress (the pre-index baseline for any single-block need),
//   - single-block decode, cold (BlockReader construction included) and
//     warm (reader reused),
//   - a 64-block range decode,
// and reports the single-block speedup over full decompression.  Emits
// JSON (one object per block count) so the numbers are scriptable.
//
// Usage: bench_random_access [block_counts...]   (default: 100 1000 10000)
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pastri.h"

namespace {

/// Synthetic noisy-pattern blocks in the paper's (dd|dd) shape.
std::vector<double> make_blocks(const pastri::BlockSpec& spec,
                                std::size_t num_blocks) {
  std::mt19937_64 gen(20180901);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> data;
  data.reserve(num_blocks * spec.block_size());
  std::vector<double> base(spec.sub_block_size);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (auto& x : base) x = 1e-4 * dist(gen);
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      const double s = dist(gen);
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        data.push_back(s * base[i] + 1e-8 * dist(gen));
      }
    }
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pastri;
  std::vector<std::size_t> counts;
  for (int i = 1; i < argc; ++i) {
    counts.push_back(std::strtoull(argv[i], nullptr, 10));
  }
  if (counts.empty()) counts = {100, 1000, 10000};
  if (bench::quick_mode()) counts = {100, 1000};

  const BlockSpec spec{36, 36};  // (dd|dd)
  Params params;

  std::printf("[\n");
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    const std::size_t nb = counts[ci];
    const auto data = make_blocks(spec, nb);
    const auto stream = compress(data, spec, params);

    std::mt19937_64 pick(7);
    const double t_full = bench::best_time_seconds([&] {
      volatile double sink = decompress(stream)[0];
      (void)sink;
    });
    // Cold: index parse + one block, i.e. "open the stream, read one".
    const double t_cold = bench::best_time_seconds([&] {
      volatile double sink = decompress_block_at(stream, pick() % nb)[0];
      (void)sink;
    });
    // Warm: reader (and its parsed index) reused across seeks.
    const BlockReader reader(stream);
    std::vector<double> block(spec.block_size());
    const int warm_reps = 64;
    const double t_warm =
        bench::best_time_seconds([&] {
          for (int r = 0; r < warm_reps; ++r) {
            reader.read_block(pick() % nb, block);
          }
        }) /
        warm_reps;
    const std::size_t range_count = std::min<std::size_t>(64, nb);
    const double t_range = bench::best_time_seconds([&] {
      volatile double sink =
          reader.read_range(pick() % (nb - range_count + 1), range_count)[0];
      (void)sink;
    });

    std::printf("  {\"blocks\": %zu, \"stream_bytes\": %zu,\n", nb,
                stream.size());
    std::printf("   \"full_decompress_s\": %.3e,\n", t_full);
    std::printf("   \"single_block_cold_s\": %.3e,\n", t_cold);
    std::printf("   \"single_block_warm_s\": %.3e,\n", t_warm);
    std::printf("   \"range64_s\": %.3e,\n", t_range);
    std::printf("   \"speedup_cold\": %.1f, \"speedup_warm\": %.1f}%s\n",
                t_full / t_cold, t_full / t_warm,
                ci + 1 < counts.size() ? "," : "");
  }
  std::printf("]\n");
  return 0;
}
