// bench_fig9b_rate_distortion - Reproduces Fig. 9(b): PSNR vs bitrate
// for alanine (dd|dd) under SZ, ZFP, and PaSTRI.
//
// Paper shape: PaSTRI's curve sits far up-and-left -- at equal PSNR its
// compressed size is less than half of SZ's or ZFP's.
#include "bench_common.h"
#include "compressors/compressor_iface.h"
#include "zchecker/metrics.h"

using namespace pastri;

int main() {
  bench::print_header("Fig. 9(b) -- PSNR vs bitrate, alanine (dd|dd)",
                      "Fig. 9(b), Section V-B");

  const auto ds = bench::load_bench_dataset({"alanine", "(dd|dd)", 1500,
                                             250, 6000});
  const BlockSpec bs = bench::block_spec_of(ds);
  const std::unique_ptr<baselines::LossyCompressor> codecs[3] = {
      baselines::make_sz_compressor(), baselines::make_zfp_compressor(),
      baselines::make_pastri_compressor(bs)};

  std::printf("%-8s %10s %12s %10s\n", "codec", "EB", "bitrate", "PSNR");
  for (const auto& codec : codecs) {
    for (double eb : {1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12}) {
      const auto stream = codec->compress(ds.values, eb);
      const auto back = codec->decompress(stream);
      const auto err = zchecker::compare(ds.values, back);
      const double rate =
          zchecker::bitrate_bits_per_value(ds.size_bytes(), stream.size());
      std::printf("%-8s %10.0e %12.3f %10.2f\n", codec->name().c_str(),
                  eb, rate, err.psnr_db);
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("paper shape: at matched PSNR, PaSTRI's bitrate is less "
              "than half of SZ's/ZFP's (curve closest to upper-left).\n");
  return 0;
}
