// bench_pipeline.cpp - The fused compute->compress->io pipeline,
// measured end to end.  Grows bench_fig10's modelled parallel-filesystem
// numbers into a real multi-process dump/load experiment:
//
//   1. Single-process dump: the sequential baseline (compute, then
//      encode, then write, one stage at a time on one thread) against
//      the staged pipeline (producer thread + async io drain), with the
//      shard files compared byte for byte -- the pipeline knobs must
//      never change the bytes.  Stage busy/stall times and the overlap
//      efficiency go on the record, so a single-core host that cannot
//      show real overlap is visible as such rather than flattering.
//
//   2. Multi-process file-per-process dump/load (the paper's Bebop
//      experiment, for real): fork() one rank per shard, each rank
//      plans the same deterministic dataset, computes exactly its
//      shard's block range with EriBlockGenerator, and streams it
//      through its own ShardWriter -- no coordination beyond the layout
//      formula.  The parent writes the manifest, byte-checks the shards
//      against the single-process dump, and times the full load back.
//
//   3. The workflow the pipeline exists for: generate -> compress ->
//      solve, running direct SCF and MP2 entirely off the compressed
//      store (run_rhf_from_store + run_mp2_from_store) and comparing
//      against the dense-tensor reference energies.
//
// Emits BENCH_pipeline.json at the repo root; --smoke shrinks the run
// for CI.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "io/compressed_file.h"
#include "qc/direct_scf.h"
#include "qc/eri_pipeline.h"
#include "qc/mp2.h"
#include "qc/sto3g.h"

namespace {

using namespace pastri;

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(f),
                                    std::istreambuf_iterator<char>());
}

bool same_shard_files(const std::string& dir, const std::string& a,
                      const std::string& b, int shards) {
  for (int s = 0; s < shards; ++s) {
    const std::string suffix = "." + std::to_string(s);
    if (slurp(dir + "/" + a + suffix) != slurp(dir + "/" + b + suffix))
      return false;
  }
  return true;
}

struct DumpTimings {
  double seq_s = 0.0;
  double pipe_s = 0.0;
  qc::EriPipelineResult pipe;
};

/// One dataset dumped both ways, byte-checked, best-of-N timed.
DumpTimings time_dump(const qc::Molecule& mol, const qc::DatasetOptions& opt,
                      const Params& p, const std::string& dir, int shards,
                      int reps) {
  DumpTimings t;
  qc::EriDumpOptions dopt;
  dopt.num_shards = shards;

  qc::EriPipelineOptions seq;
  seq.pipelined = false;
  seq.async_io = false;
  t.seq_s = bench::best_time_seconds(
      [&] { qc::dump_eri_sharded(mol, opt, p, dir, "seq", dopt, seq); },
      reps);

  qc::EriPipelineOptions pipe;  // defaults: producer thread + async io
  t.pipe_s = bench::best_time_seconds(
      [&] {
        t.pipe = qc::dump_eri_sharded(mol, opt, p, dir, "pipe", dopt, pipe)
                     .pipeline;
      },
      reps);
  return t;
}

/// Rank body for the fork()-based file-per-process dump: compute and
/// stream exactly shard `rank`'s block range, then exit.  Everything is
/// re-planned from (mol, opt) inside the child -- no shared state with
/// the parent, exactly like an MPI rank on its own node.
int run_rank(const qc::Molecule& mol, const qc::DatasetOptions& opt,
             const Params& p, const std::string& dir,
             const std::string& basename, int rank, int shards) {
  try {
    const qc::EriBlockGenerator gen(mol, opt);
    const qc::EriStreamMeta& meta = gen.meta();
    const io::ShardLayout layout =
        io::make_shard_layout(meta.num_blocks, shards);
    const std::size_t first = io::shard_first_block(layout, rank);
    const std::size_t count = layout.blocks_per_shard[rank];
    const std::size_t bs = meta.shape.block_size();
    const BlockSpec spec{meta.shape.num_sub_blocks(),
                         meta.shape.sub_block_size()};
    io::ShardWriter writer(dir, basename, rank, spec, p, count);
    std::vector<double> chunk;
    const std::size_t batch = 16;
    for (std::size_t b = 0; b < count; b += batch) {
      const std::size_t n = std::min(batch, count - b);
      chunk.resize(n * bs);
      gen.compute_range(first + b, n, chunk);
      writer.put_values(chunk);
    }
    writer.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %d failed: %s\n", rank, e.what());
    return 1;
  }
}

/// Fork `ranks` processes (one shard each), wait for all, write the
/// manifest.  Returns wall seconds, or a negative value on failure.
double multiprocess_dump(const qc::Molecule& mol,
                         const qc::DatasetOptions& opt, const Params& p,
                         const std::string& dir, const std::string& basename,
                         const qc::EriStreamMeta& meta, int ranks) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (int r = 0; r < ranks; ++r) {
    const pid_t pid = fork();
    if (pid < 0) return -1.0;
    if (pid == 0) _exit(run_rank(mol, opt, p, dir, basename, r, ranks));
    pids.push_back(pid);
  }
  bool ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  if (!ok) return -1.0;
  io::write_dataset_manifest(dir, basename, meta.label, meta.shape,
                             meta.num_blocks,
                             io::make_shard_layout(meta.num_blocks, ranks));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  bench::print_header(
      "Fused compute->compress->io pipeline (dump/load, multi-process)",
      "CLUSTER'18 Bebop file-per-process experiment; arXiv:2303.13632 "
      "fused datapath");
  std::printf("host hardware_concurrency: %u%s\n\n", hw,
              hw <= 1 ? "  (single core: no parallel speedup possible; "
                        "stage overlap reported honestly)"
                      : "");

  const qc::Molecule mol = qc::make_molecule("benzene");
  qc::DatasetOptions opt;
  opt.config = qc::parse_config("(dd|dd)");
  opt.max_blocks = smoke ? 64 : 512;
  opt.seed = 20180901;
  Params p;

  const std::string dir = "/tmp/pastri_bench_pipeline";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const int reps = smoke ? 1 : 3;
  const int shards = 4;

  // -- 1. sequential vs pipelined single-process dump ------------------
  const DumpTimings t = time_dump(mol, opt, p, dir, shards, reps);
  const bool identical = same_shard_files(dir, "seq", "pipe", shards);
  const double speedup = t.pipe_s > 0 ? t.seq_s / t.pipe_s : 0.0;
  std::printf("single-process dump, %zu blocks, %d shards\n",
              t.pipe.meta.num_blocks, shards);
  std::printf("  sequential  %8.3f s\n", t.seq_s);
  std::printf("  pipelined   %8.3f s   (%.2fx, bytes %s)\n", t.pipe_s,
              speedup, identical ? "identical" : "DIFFER");
  std::printf("  stage busy  compute %.3f / encode %.3f / io %.3f s\n",
              t.pipe.compute_ns / 1e9, t.pipe.encode_ns / 1e9,
              t.pipe.io_ns / 1e9);
  std::printf("  stalls      compute %.3f / encode %.3f / io %.3f s\n",
              t.pipe.compute_stall_ns / 1e9, t.pipe.encode_stall_ns / 1e9,
              t.pipe.io_stall_ns / 1e9);
  std::printf("  overlap efficiency %.0f%%\n\n",
              100.0 * t.pipe.overlap_efficiency);

  // -- 2. fork-based file-per-process dump + load ----------------------
  const qc::EriBlockGenerator gen(mol, opt);
  const qc::EriStreamMeta meta = gen.meta();
  struct MpRow {
    int ranks;
    double dump_s, load_s;
    bool identical;
  };
  std::vector<MpRow> mp;
  std::printf("file-per-process dump/load (fork, one shard per rank)\n");
  for (const int ranks : {1, 2, 4}) {
    if (smoke && ranks > 2) break;
    const std::string base = "mp" + std::to_string(ranks);
    const double dump_s =
        multiprocess_dump(mol, opt, p, dir, base, meta, ranks);
    if (dump_s < 0) {
      std::fprintf(stderr, "multi-process dump failed at %d ranks\n", ranks);
      return 1;
    }
    qc::EriDataset back;
    const double load_s = bench::best_time_seconds(
        [&] { back = io::read_compressed_dataset(dir, base); }, reps);
    // Ranks must reproduce the exact bytes of the in-process dump with
    // the same shard count (deterministic plan + layout formula).
    bool same = true;
    if (ranks == shards) same = same_shard_files(dir, base, "pipe", shards);
    mp.push_back({ranks, dump_s, load_s, same});
    const double mb =
        static_cast<double>(meta.num_blocks * meta.shape.block_size() *
                            sizeof(double)) /
        1e6;
    std::printf("  %d ranks: dump %7.3f s, load %7.3f s (%.1f MB raw%s)\n",
                ranks, dump_s, load_s, mb,
                same ? "" : ", bytes DIFFER from in-process dump");
  }
  std::printf("\n");

  // -- 3. generate -> compress -> solve off the stream -----------------
  qc::Molecule h2o;
  h2o.name = "H2O";
  h2o.atoms = {{"O", 8, {0, 0, 0}},
               {"H", 1, {0, 1.4305, 1.1093}},
               {"H", 1, {0, -1.4305, 1.1093}}};
  const qc::BasisSet basis = qc::make_sto3g_basis(h2o);
  const qc::EriTensor exact = qc::compute_eri_tensor(basis);
  const qc::ScfResult ref_scf = qc::run_rhf(h2o, basis, exact);
  const qc::Mp2Result ref_mp2 = qc::run_mp2(h2o, basis, exact, ref_scf);

  Params sp;
  sp.error_bound = 1e-10;
  const qc::CompressedEriStore store(basis, sp);
  qc::ScfResult scf;
  const double scf_s = bench::time_seconds(
      [&] { scf = qc::run_rhf_from_store(h2o, basis, store); });
  qc::Mp2Result mp2;
  const double mp2_s = bench::time_seconds(
      [&] { mp2 = qc::run_mp2_from_store(h2o, basis, store, scf); });
  std::printf("solve off the compressed store (H2O/STO-3G, EB=1e-10)\n");
  std::printf("  SCF  %7.3f s  E = %+.10f  (dense %+.10f)\n", scf_s,
              scf.total_energy, ref_scf.total_energy);
  std::printf("  MP2  %7.3f s  E = %+.10f  (dense %+.10f)\n", mp2_s,
              mp2.total_energy, ref_mp2.total_energy);

  // -- artifact --------------------------------------------------------
  // Smoke runs (CI, `ctest -L Perf`) keep the checked-in default-mode
  // numbers intact.
  const std::string out = bench::artifact_path("BENCH_pipeline.json");
  std::FILE* f = smoke ? nullptr : std::fopen(out.c_str(), "w");
  if (f) {
    std::fprintf(f, "{\n  \"mode\": \"%s\",\n",
                 smoke ? "smoke" : "default");
    std::fprintf(f, "  \"host\": {\"hardware_concurrency\": %u},\n", hw);
    if (hw <= 1) {
      std::fprintf(
          f,
          "  \"note\": \"single-core host: the producer/encoder/io "
          "threads time-slice one core, so pipelined wall time cannot "
          "beat sequential here; byte identity and stage accounting are "
          "the meaningful results\",\n");
    }
    std::fprintf(f,
                 "  \"dump\": {\"blocks\": %zu, \"shards\": %d, "
                 "\"sequential_s\": %.4f, \"pipelined_s\": %.4f, "
                 "\"speedup\": %.3f, \"bytes_identical\": %s,\n",
                 t.pipe.meta.num_blocks, shards, t.seq_s, t.pipe_s, speedup,
                 identical ? "true" : "false");
    std::fprintf(f,
                 "           \"compute_s\": %.4f, \"encode_s\": %.4f, "
                 "\"io_s\": %.4f, \"compute_stall_s\": %.4f, "
                 "\"encode_stall_s\": %.4f, \"io_stall_s\": %.4f, "
                 "\"overlap_efficiency\": %.3f},\n",
                 t.pipe.compute_ns / 1e9, t.pipe.encode_ns / 1e9,
                 t.pipe.io_ns / 1e9, t.pipe.compute_stall_ns / 1e9,
                 t.pipe.encode_stall_ns / 1e9, t.pipe.io_stall_ns / 1e9,
                 t.pipe.overlap_efficiency);
    std::fprintf(f, "  \"file_per_process\": [\n");
    for (std::size_t i = 0; i < mp.size(); ++i) {
      std::fprintf(f,
                   "    {\"ranks\": %d, \"dump_s\": %.4f, \"load_s\": "
                   "%.4f, \"bytes_identical\": %s}%s\n",
                   mp[i].ranks, mp[i].dump_s, mp[i].load_s,
                   mp[i].identical ? "true" : "false",
                   i + 1 < mp.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"solve_from_store\": {\"scf_s\": %.4f, \"mp2_s\": "
                 "%.4f, \"scf_energy\": %.10f, \"mp2_total_energy\": "
                 "%.10f, \"dense_scf_energy\": %.10f, "
                 "\"dense_mp2_total_energy\": %.10f}\n}\n",
                 scf_s, mp2_s, scf.total_energy, mp2.total_energy,
                 ref_scf.total_energy, ref_mp2.total_energy);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }

  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
