// bench_dataset_census - Population statistics of the six evaluation
// datasets (companion to Fig. 6 and the Fig. 8 molecule roster):
// screened fraction, block-extremum dynamic range, and ER scaled-pattern
// quality, computed by the zchecker dataset analyzer.
#include "bench_common.h"
#include "zchecker/dataset_stats.h"

using namespace pastri;

int main() {
  bench::print_header("Dataset census -- block population statistics",
                      "Section V-A datasets (Fig. 8 molecules)");

  std::printf("%-22s %8s %10s %22s %12s %12s\n", "dataset", "blocks",
              "screened", "extrema (min..max)", "mean ER dev",
              "worst ER dev");
  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    const auto st = zchecker::analyze_dataset(ds);
    std::printf("%-22s %8zu %9.1f%% %10.1e..%8.1e %12.2e %12.2e\n",
                ds.label.c_str(), st.num_blocks,
                100.0 * st.zero_blocks / std::max<std::size_t>(1,
                                                               st.num_blocks),
                st.min_nonzero_extremum, st.max_extremum,
                st.mean_relative_deviation, st.worst_relative_deviation);
  }
  bench::print_rule();
  std::printf("shape: block extrema span many decades (the source of the "
              "type-0/1 census in Fig. 6); the ER scaled pattern explains "
              "blocks to a few percent on average (Fig. 3).\n");
  return 0;
}
