// bench_pattern_dict - Cost/benefit of the cross-block pattern
// dictionary (container v4) against the dict-off v3 baseline: ratio
// gain, encode throughput, decode throughput.  Runs the paper's (ff|ff)
// datasets plus a synthetic high-l stream with explicit shell-class
// redundancy (a few base patterns recurring rescaled with bounded
// noise, the structure the dictionary targets).  Emits
// BENCH_pattern_dict.json at the repo root.
#include <cmath>
#include <fstream>

#include "bench_common.h"

using namespace pastri;

namespace {

/// Synthetic high-l dataset, (ff|ff)-shaped (100x100 blocks): every
/// block is a near-perfect pattern (each sub-block an exact scalar
/// multiple of the block's pattern, the paper's high-l limit where PQ
/// dominates the payload), and the *same* few patterns recur across
/// blocks -- same-class quartets repeating across a tensor.  One block
/// in eight carries a just-above-bound perturbation so the near-match
/// (delta) path is exercised alongside exact references.
std::vector<double> synthetic_high_l(const BlockSpec& spec,
                                     std::size_t num_blocks) {
  constexpr std::size_t kNumBases = 8;
  std::uint64_t state = 20180901;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  auto unit = [&next] {  // uniform in [-1, 1)
    return static_cast<double>(next() % 2000000) / 1e6 - 1.0;
  };
  std::vector<std::vector<double>> bases(kNumBases);
  for (auto& base : bases) {
    base.resize(spec.sub_block_size);
    for (auto& x : base) x = 1e-4 * unit();
  }
  std::vector<double> data;
  data.reserve(num_blocks * spec.block_size());
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const auto& base = bases[b % kNumBases];
    const bool perturb = b % 8 == 7;
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      // Sub-block 0 carries the pattern itself (scale 1), so blocks of
      // the same base quantize to the same PQ and the dictionary sees
      // true recurrence.
      const double s = (j == 0) ? 1.0 : 0.9 * unit();
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        double v = s * base[i];
        if (perturb) v += 1.5e-10 * unit();
        data.push_back(v);
      }
    }
  }
  return data;
}

struct Row {
  std::string name;
  double ratio_off = 0.0, ratio_on = 0.0;
  double enc_off_mbs = 0.0, enc_on_mbs = 0.0;
  double dec_on_mbs = 0.0;
  std::size_t dict_entries = 0, exact_refs = 0, delta_refs = 0;

  double ratio_gain() const { return ratio_on / ratio_off - 1.0; }
  double enc_cost() const { return 1.0 - enc_on_mbs / enc_off_mbs; }
};

Row run_one(const std::string& name, const std::vector<double>& data,
            const BlockSpec& spec) {
  Row r;
  r.name = name;
  Params off;
  off.error_bound = 1e-10;
  Params on = off;
  on.dict = DictMode::On;

  Stats off_st, on_st;
  const auto v3 = compress(data, spec, off, &off_st);
  const auto v4 = compress(data, spec, on, &on_st);
  r.ratio_off = off_st.ratio();
  r.ratio_on = on_st.ratio();
  r.dict_entries = on_st.dict_entries;
  r.exact_refs = on_st.dict_exact_refs;
  r.delta_refs = on_st.dict_delta_refs;

  const double mb = static_cast<double>(data.size() * sizeof(double)) / 1e6;
  r.enc_off_mbs =
      mb / bench::best_time_seconds([&] { (void)compress(data, spec, off); });
  r.enc_on_mbs =
      mb / bench::best_time_seconds([&] { (void)compress(data, spec, on); });
  r.dec_on_mbs = mb / bench::best_time_seconds([&] { (void)decompress(v4); });
  return r;
}

}  // namespace

int main() {
  bench::print_header("Cross-block pattern dictionary (v4) vs v3 baseline",
                      "container-level pattern dedup (DESIGN.md S11)");

  std::vector<Row> rows;
  for (const auto& spec : bench::paper_datasets()) {
    if (std::string(spec.config) != "(ff|ff)") continue;
    const auto ds = bench::load_bench_dataset(spec);
    rows.push_back(run_one(ds.label, ds.values, bench::block_spec_of(ds)));
  }
  {
    const BlockSpec spec{100, 100};  // the (ff|ff) block geometry
    const std::size_t blocks = bench::quick_mode() ? 96 : 512;
    rows.push_back(
        run_one("synthetic-high-l", synthetic_high_l(spec, blocks), spec));
  }

  std::printf("%-22s %9s %9s %7s %10s %10s %7s\n", "dataset", "ratio v3",
              "ratio v4", "gain", "enc v3", "enc v4", "cost");
  std::ofstream json(bench::artifact_path("BENCH_pattern_dict.json"));
  json << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-22s %9.2f %9.2f %6.1f%% %7.1f MB/s %5.1f MB/s %6.1f%%\n",
                r.name.c_str(), r.ratio_off, r.ratio_on,
                100.0 * r.ratio_gain(), r.enc_off_mbs, r.enc_on_mbs,
                100.0 * r.enc_cost());
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"dataset\":\"%s\",\"ratio_off\":%.4g,\"ratio_on\":%.4g,"
        "\"ratio_gain\":%.4g,\"enc_off_mb_s\":%.4g,\"enc_on_mb_s\":%.4g,"
        "\"enc_cost\":%.4g,\"dec_on_mb_s\":%.4g,\"dict_entries\":%zu,"
        "\"exact_refs\":%zu,\"delta_refs\":%zu}%s\n",
        r.name.c_str(), r.ratio_off, r.ratio_on, r.ratio_gain(),
        r.enc_off_mbs, r.enc_on_mbs, r.enc_cost(), r.dec_on_mbs,
        r.dict_entries, r.exact_refs, r.delta_refs,
        i + 1 < rows.size() ? "," : "");
    json << buf;
  }
  json << "]\n";
  bench::print_rule();

  // The acceptance targets: on the synthetic high-l stream the
  // dictionary buys >= 15% ratio at <= 10% encode-throughput cost.
  const Row& synth = rows.back();
  const bool ratio_ok = synth.ratio_gain() >= 0.15;
  const bool cost_ok = synth.enc_cost() <= 0.10;
  std::printf("synthetic-high-l: ratio %+.1f%% (target >= +15%%) -> %s, "
              "encode cost %.1f%% (target <= 10%%) -> %s\n",
              100.0 * synth.ratio_gain(), ratio_ok ? "PASS" : "FAIL",
              100.0 * synth.enc_cost(), cost_ok ? "PASS" : "FAIL");
  std::printf("wrote %s\n",
              bench::artifact_path("BENCH_pattern_dict.json").c_str());
  return ratio_ok && cost_ok ? 0 : 1;
}
