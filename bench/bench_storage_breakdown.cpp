// bench_storage_breakdown - Reproduces the Section V-B storage analysis:
// "PQ and SQ constitute around 20-30% of PaSTRI's output data size,
// whereas ECQ constitutes around 70-80%. A tiny portion, typically less
// than 0.5%, consists of other bookkeeping bits."
#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header("Storage breakdown of PaSTRI output",
                      "Section V-B (PQ/SQ vs ECQ vs bookkeeping)");

  // Dictionary-on (v4) runs add the "dict %" column: tags, reference
  // ids, deviation runs, and the trailer section -- the bits the
  // cross-block pattern dedup spends to shrink PQ.
  std::printf("%-22s %8s %8s %8s %8s %8s %10s\n", "dataset", "PQ %",
              "SQ %", "ECQ %", "dict %", "book %", "ratio");
  Stats pooled;
  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    Params p;
    p.error_bound = 1e-10;
    p.dict = DictMode::On;
    Stats st;
    compress(ds.values, bench::block_spec_of(ds), p, &st);
    const double total = 8.0 * st.output_bytes;
    std::printf("%-22s %8.1f %8.1f %8.1f %8.2f %8.2f %10.2f\n",
                ds.label.c_str(), 100.0 * st.pattern_bits / total,
                100.0 * st.scale_bits / total, 100.0 * st.ecq_bits / total,
                100.0 * st.dict_bits / total,
                100.0 * st.header_bits / total, st.ratio());
    pooled.input_bytes += st.input_bytes;
    pooled.output_bytes += st.output_bytes;
    pooled.pattern_bits += st.pattern_bits;
    pooled.scale_bits += st.scale_bits;
    pooled.ecq_bits += st.ecq_bits;
    pooled.dict_bits += st.dict_bits;
    pooled.header_bits += st.header_bits;
  }
  const double total = 8.0 * pooled.output_bytes;
  bench::print_rule();
  std::printf("%-22s %8.1f %8.1f %8.1f %8.2f %8.2f %10.2f\n", "Pooled",
              100.0 * pooled.pattern_bits / total,
              100.0 * pooled.scale_bits / total,
              100.0 * pooled.ecq_bits / total,
              100.0 * pooled.dict_bits / total,
              100.0 * pooled.header_bits / total, pooled.ratio());
  std::printf("\npaper shape: ECQ dominates (70-80%%), PQ+SQ 20-30%%, "
              "bookkeeping well under 1%%.\n");
  std::printf("note: per-block varint length fields count as "
              "bookkeeping here.\n");
  return 0;
}
