// bench_micro_kernels - google-benchmark microbenchmarks of the hot
// kernels: Boys evaluation, ERI block assembly, pattern selection,
// quantization, tree encoding, and bit I/O.  These underpin the rates in
// Fig. 9(c,d) and document where the time goes.
#include <benchmark/benchmark.h>

#include <random>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "core/pastri.h"
#include "qc/boys.h"
#include "qc/eri_engine.h"

using namespace pastri;

namespace {

qc::Shell make_shell(int l, qc::Vec3 c, double e) {
  qc::Shell s;
  s.l = l;
  s.center = c;
  s.primitives = {{e, 1.0}};
  s.normalize();
  return s;
}

const std::vector<double>& demo_block() {
  static const std::vector<double> block = [] {
    const auto A = make_shell(2, {0, 0, 0}, 1.0);
    const auto B = make_shell(2, {1.5, 0.4, -0.3}, 0.8);
    const auto C = make_shell(2, {3.0, -0.5, 0.7}, 1.2);
    const auto D = make_shell(2, {4.2, 0.8, 0.1}, 0.9);
    return qc::compute_block(A, B, C, D);
  }();
  return block;
}

void BM_BoysFunction(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  double buf[qc::kMaxBoysOrder + 1];
  double T = 0.1;
  for (auto _ : state) {
    qc::boys(T, m, std::span<double>(buf, m + 1));
    benchmark::DoNotOptimize(buf[0]);
    T += 0.37;
    if (T > 80) T = 0.1;
  }
}
BENCHMARK(BM_BoysFunction)->Arg(4)->Arg(8)->Arg(12);

void BM_EriBlockDddd(benchmark::State& state) {
  const auto A = make_shell(2, {0, 0, 0}, 1.0);
  const auto B = make_shell(2, {1.5, 0.4, -0.3}, 0.8);
  const auto C = make_shell(2, {3.0, -0.5, 0.7}, 1.2);
  const auto D = make_shell(2, {4.2, 0.8, 0.1}, 0.9);
  std::vector<double> out(6 * 6 * 6 * 6);
  for (auto _ : state) {
    qc::compute_eri_block(A, B, C, D, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * out.size() * 8);
}
BENCHMARK(BM_EriBlockDddd);

void BM_SelectPatternER(benchmark::State& state) {
  const auto& block = demo_block();
  const BlockSpec spec{36, 36};
  for (auto _ : state) {
    auto sel = select_pattern(block, spec, ScalingMetric::ER);
    benchmark::DoNotOptimize(sel.scales.data());
  }
  state.SetBytesProcessed(state.iterations() * block.size() * 8);
}
BENCHMARK(BM_SelectPatternER);

void BM_QuantizeBlock(benchmark::State& state) {
  const auto& block = demo_block();
  const BlockSpec spec{36, 36};
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  for (auto _ : state) {
    auto qb = quantize_block(block, spec, sel, 1e-10);
    benchmark::DoNotOptimize(qb.ecq.data());
  }
  state.SetBytesProcessed(state.iterations() * block.size() * 8);
}
BENCHMARK(BM_QuantizeBlock);

void BM_CompressBlockEndToEnd(benchmark::State& state) {
  const auto& block = demo_block();
  const BlockSpec spec{36, 36};
  Params p;
  for (auto _ : state) {
    bitio::BitWriter w;
    compress_block(block, spec, p, w, nullptr);
    auto bytes = w.take();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * block.size() * 8);
}
BENCHMARK(BM_CompressBlockEndToEnd);

void BM_Tree5Encode(benchmark::State& state) {
  std::mt19937_64 gen(3);
  std::vector<std::int64_t> vals(4096);
  std::bernoulli_distribution zero(0.8);
  std::uniform_int_distribution<int> small(-63, 63);
  for (auto& v : vals) v = zero(gen) ? 0 : small(gen);
  for (auto _ : state) {
    bitio::BitWriter w;
    for (auto v : vals) ecq_encode(w, EcqTree::Tree5, v, 7);
    auto bytes = w.take();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_Tree5Encode);

void BM_Tree5EncodeFast(benchmark::State& state) {
  // Same symbol stream as BM_Tree5Encode, through the single-write_bits
  // pack -- the pair documents what the pack is worth.
  std::mt19937_64 gen(3);
  std::vector<std::int64_t> vals(4096);
  std::bernoulli_distribution zero(0.8);
  std::uniform_int_distribution<int> small(-63, 63);
  for (auto& v : vals) v = zero(gen) ? 0 : small(gen);
  for (auto _ : state) {
    bitio::BitWriter w;
    for (auto v : vals) ecq_encode_fast(w, EcqTree::Tree5, v, 7);
    auto bytes = w.take();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * vals.size());
}
BENCHMARK(BM_Tree5EncodeFast);

const std::vector<std::uint8_t>& tree5_stream() {
  static const std::vector<std::uint8_t> bytes = [] {
    std::mt19937_64 gen(3);
    std::bernoulli_distribution zero(0.8);
    std::uniform_int_distribution<int> small(-63, 63);
    bitio::BitWriter w;
    for (int i = 0; i < 4096; ++i) {
      ecq_encode(w, EcqTree::Tree5, zero(gen) ? 0 : small(gen), 7);
    }
    return w.take();
  }();
  return bytes;
}

void BM_Tree5DecodeReference(benchmark::State& state) {
  const auto& bytes = tree5_stream();
  for (auto _ : state) {
    bitio::BitReader r(bytes);
    std::int64_t sink = 0;
    for (int i = 0; i < 4096; ++i) {
      sink ^= ecq_decode(r, EcqTree::Tree5, 7);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Tree5DecodeReference);

void BM_Tree5DecodeLut(benchmark::State& state) {
  const auto& bytes = tree5_stream();
  const EcqDecodeLut& lut = ecq_decode_lut(EcqTree::Tree5, 7);
  for (auto _ : state) {
    bitio::BitReader r(bytes);
    std::int64_t sink = 0;
    for (int i = 0; i < 4096; ++i) {
      sink ^= ecq_decode_fast(r, lut, EcqTree::Tree5, 7);
    }
    r.check_overrun();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Tree5DecodeLut);

void BM_Tree5DecodeRun(benchmark::State& state) {
  // The windowed whole-block decoder decompress_block actually calls.
  const auto& bytes = tree5_stream();
  const EcqDecodeLut& lut = ecq_decode_lut(EcqTree::Tree5, 7);
  std::vector<std::int64_t> out(4096);
  for (auto _ : state) {
    bitio::BitReader r(bytes);
    ecq_decode_run(r, lut, EcqTree::Tree5, 7, out);
    r.check_overrun();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Tree5DecodeRun);

void BM_BitReaderThroughput(benchmark::State& state) {
  static const std::vector<std::uint8_t> bytes = [] {
    bitio::BitWriter w;
    for (int i = 0; i < 8192; ++i) {
      w.write_bits(static_cast<std::uint64_t>(i) * 2654435761u, 37);
    }
    return w.take();
  }();
  for (auto _ : state) {
    bitio::BitReader r(bytes);
    std::uint64_t sink = 0;
    for (int i = 0; i < 8192; ++i) sink ^= r.read_bits(37);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BitReaderThroughput);

void BM_DecompressBlockWorkspace(benchmark::State& state) {
  const auto& block = demo_block();
  const BlockSpec spec{36, 36};
  Params p;
  bitio::BitWriter w;
  compress_block(block, spec, p, w, nullptr);
  const auto bytes = w.take();
  CodecWorkspace ws;
  std::vector<double> out(spec.block_size());
  for (auto _ : state) {
    bitio::BitReader r(bytes);
    decompress_block(r, spec, p, out, ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * block.size() * 8);
}
BENCHMARK(BM_DecompressBlockWorkspace);

void BM_BitWriterThroughput(benchmark::State& state) {
  for (auto _ : state) {
    bitio::BitWriter w;
    for (int i = 0; i < 8192; ++i) {
      w.write_bits(static_cast<std::uint64_t>(i) * 2654435761u, 37);
    }
    auto bytes = w.take();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BitWriterThroughput);

}  // namespace

BENCHMARK_MAIN();
