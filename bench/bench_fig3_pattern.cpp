// bench_fig3_pattern - Reproduces Fig. 3: the latent sub-block pattern of
// an ERI shell block.
//
// Prints (a) the sub-block structure of a (dd|dd) block, (b) the first
// two sub-blocks overlapped, (c) the second sub-block rescaled onto the
// first, and (d) deviation / compression-error statistics at EB = 1e-10.
#include <cmath>

#include "bench_common.h"
#include "core/scaling.h"
#include "zchecker/metrics.h"

using namespace pastri;

namespace {

/// Pick a block whose sub-blocks have nontrivial amplitude, as the paper
/// does (a visible (dd|dd) block from the generated stream).
std::size_t pick_demo_block(const qc::EriDataset& ds) {
  std::size_t best = 0;
  double best_metric = -1.0;
  for (std::size_t b = 0; b < ds.num_blocks; ++b) {
    const auto block = ds.block(b);
    double mx = 0;
    for (double v : block) mx = std::max(mx, std::abs(v));
    // Prefer mid-amplitude blocks (the paper's demo block peaks ~4e-7).
    if (mx < 1e-8 || mx > 1e-4) continue;
    if (mx > best_metric) {
      best_metric = mx;
      best = b;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header("Fig. 3 -- sub-block pattern in a (dd|dd) ERI block",
                      "Fig. 3(a)-(d), Section III-B");

  const auto ds = bench::load_bench_dataset({"benzene", "(dd|dd)", 400,
                                             200, 1296});
  const BlockSpec spec = bench::block_spec_of(ds);
  const std::size_t b = pick_demo_block(ds);
  const auto block = ds.block(b);
  const std::size_t sbs = spec.sub_block_size;

  std::printf("block %zu of %s: %zu sub-blocks x %zu points\n\n", b,
              ds.label.c_str(), spec.num_sub_blocks, sbs);

  // (a) per-sub-block amplitude summary over the first 6 sub-blocks.
  std::printf("(a) sub-block extrema (first 6 of %zu):\n",
              spec.num_sub_blocks);
  for (std::size_t j = 0; j < std::min<std::size_t>(6, spec.num_sub_blocks);
       ++j) {
    double mx = 0;
    for (std::size_t i = 0; i < sbs; ++i) {
      mx = std::max(mx, std::abs(block[j * sbs + i]));
    }
    std::printf("  sub-block [%3zu:%3zu]  max|v| = %9.3e\n", j * sbs,
                (j + 1) * sbs - 1, mx);
  }

  // (b,c) first two sub-blocks, raw and rescaled.
  const auto sel = select_pattern(block, spec, ScalingMetric::ER);
  const auto pattern =
      block.subspan(sel.pattern_sub_block * sbs, sbs);
  std::printf("\npattern sub-block: %zu (ER metric)\n",
              sel.pattern_sub_block);
  std::printf("\n(b,c) first two sub-blocks, raw and rescaled "
              "(first 12 points):\n");
  std::printf("  %3s  %12s  %12s  %12s  %12s\n", "i", "sb0", "sb1",
              "s0*pattern", "s1*pattern");
  for (std::size_t i = 0; i < std::min<std::size_t>(12, sbs); ++i) {
    std::printf("  %3zu  %12.4e  %12.4e  %12.4e  %12.4e\n", i, block[i],
                block[sbs + i], sel.scales[0] * pattern[i],
                sel.scales[1] * pattern[i]);
  }

  // (d) deviation from the scaled pattern and compression error at 1e-10.
  Params p;
  p.error_bound = 1e-10;
  const auto stream = compress(block, spec, p);
  const auto recon = decompress(stream);
  double max_dev = 0.0;
  for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
    for (std::size_t i = 0; i < sbs; ++i) {
      max_dev = std::max(max_dev, std::abs(block[j * sbs + i] -
                                           sel.scales[j] * pattern[i]));
    }
  }
  const auto err = zchecker::compare(block, recon);
  std::printf("\n(d) |deviation| from scaled pattern: max = %.3e\n",
              max_dev);
  std::printf("    |compression error| at EB=1e-10:  max = %.3e "
              "(bound holds: %s)\n",
              err.max_abs_error,
              err.max_abs_error <= 1e-10 * (1 + 1e-12) ? "yes" : "NO");
  std::printf("    block compression ratio: %.1fx\n",
              static_cast<double>(block.size() * sizeof(double)) /
                  stream.size());
  std::printf("\npaper shape: sub-blocks repeat one pattern up to a "
              "scale; deviation >> EB is absorbed by ECQ codes.\n");
  return 0;
}
