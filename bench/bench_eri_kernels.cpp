// bench_eri_kernels.cpp - The ERI compute stage before/after the
// shell-pair cache, plus the Boys fast path and the multi-producer dump.
//
//   1. Quartets/s with the original per-quartet engine (rebuild the
//      Hermite term lists and the HermiteR tensor for every block --
//      reimplemented here verbatim from the pre-cache code) against the
//      cached ShellPairData + reusable-workspace path, with every block
//      compared bitwise: the cache is a pure reuse transformation, so
//      the numbers must not move by even one ulp.
//
//   2. Boys function evaluations/s, exact series vs the tabulated
//      Taylor fast path, with the max absolute deviation over a dense
//      off-grid T sweep at every order on the record.
//
//   3. dump_eri_sharded with 1, 2, and 4 compute producers, shard files
//      byte-compared against the single-producer dump.  On a single
//      core the producer count cannot buy wall time (reported
//      honestly); byte identity is the load-bearing result.
//
// Emits BENCH_eri_kernels.json at the repo root; --smoke shrinks the
// run for CI and skips the artifact.  Exits nonzero if any bitwise or
// byte-identity check fails.
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.h"
#include "qc/basis.h"
#include "qc/eri_pipeline.h"
#include "qc/md_eri.h"

namespace {

using namespace pastri;
using namespace pastri::qc;

// ---------------------------------------------------------------------------
// The pre-cache engine, verbatim: per-quartet term-list construction
// (nested vectors, one HermiteE triple per primitive pair per call) and
// a freshly allocated HermiteR, exactly as compute_eri_block shipped
// before ShellPairData existed.  This is the "before" of the ISSUE's
// >= 2x acceptance number, kept runnable so the speedup stays measured
// rather than remembered.
// ---------------------------------------------------------------------------

struct SeedTermList {
  struct Term {
    int t, u, v;
    double coef;
  };
  std::vector<Term> terms;
};

struct SeedPrimPair {
  double p = 0;
  Vec3 P{0, 0, 0};
  double cc = 0;
  std::vector<SeedTermList> lists;
};

std::vector<SeedPrimPair> seed_build_prim_pairs(const Shell& A,
                                                const Shell& B) {
  const auto compsA = cartesian_components(A.l);
  const auto compsB = cartesian_components(B.l);
  std::vector<SeedPrimPair> pairs;
  pairs.reserve(A.primitives.size() * B.primitives.size());

  for (const auto& pa : A.primitives) {
    for (const auto& pb : B.primitives) {
      SeedPrimPair pp;
      const double a = pa.exponent, b = pb.exponent;
      pp.p = a + b;
      for (int d = 0; d < 3; ++d) {
        pp.P[d] = (a * A.center[d] + b * B.center[d]) / pp.p;
      }
      pp.cc = pa.coefficient * pb.coefficient;

      const HermiteE Ex(A.l, B.l, a, b, A.center[0], B.center[0]);
      const HermiteE Ey(A.l, B.l, a, b, A.center[1], B.center[1]);
      const HermiteE Ez(A.l, B.l, a, b, A.center[2], B.center[2]);

      pp.lists.resize(compsA.size() * compsB.size());
      for (std::size_t ia = 0; ia < compsA.size(); ++ia) {
        for (std::size_t ib = 0; ib < compsB.size(); ++ib) {
          SeedTermList& tl = pp.lists[ia * compsB.size() + ib];
          const auto& ca = compsA[ia];
          const auto& cb = compsB[ib];
          const double norm = component_norm_ratio(A.l, ca) *
                              component_norm_ratio(B.l, cb);
          for (int t = 0; t <= ca.lx + cb.lx; ++t) {
            const double ext = Ex(ca.lx, cb.lx, t);
            if (ext == 0.0) continue;
            for (int u = 0; u <= ca.ly + cb.ly; ++u) {
              const double eyu = Ey(ca.ly, cb.ly, u);
              if (eyu == 0.0) continue;
              for (int v = 0; v <= ca.lz + cb.lz; ++v) {
                const double ezv = Ez(ca.lz, cb.lz, v);
                if (ezv == 0.0) continue;
                tl.terms.push_back({t, u, v, norm * ext * eyu * ezv});
              }
            }
          }
        }
      }
      pairs.push_back(std::move(pp));
    }
  }
  return pairs;
}

void seed_compute_eri_block(const Shell& A, const Shell& B, const Shell& C,
                            const Shell& D, std::span<double> out) {
  const std::size_t nA = cartesian_components(A.l).size();
  const std::size_t nB = cartesian_components(B.l).size();
  const std::size_t nC = cartesian_components(C.l).size();
  const std::size_t nD = cartesian_components(D.l).size();
  assert(out.size() == nA * nB * nC * nD);

  std::fill(out.begin(), out.end(), 0.0);

  const auto bra = seed_build_prim_pairs(A, B);
  const auto ket = seed_build_prim_pairs(C, D);
  const int L = A.l + B.l + C.l + D.l;
  HermiteR R(L);

  const double pi52 = std::pow(std::numbers::pi, 2.5);

  for (const auto& pab : bra) {
    for (const auto& pcd : ket) {
      const double p = pab.p, q = pcd.p;
      const double alpha = p * q / (p + q);
      const Vec3 PQ{pab.P[0] - pcd.P[0], pab.P[1] - pcd.P[1],
                    pab.P[2] - pcd.P[2]};
      R.compute(alpha, PQ, L);
      const double pref =
          2.0 * pi52 / (p * q * std::sqrt(p + q)) * pab.cc * pcd.cc;

      std::size_t idx = 0;
      for (std::size_t iab = 0; iab < nA * nB; ++iab) {
        const auto& tb = pab.lists[iab].terms;
        for (std::size_t icd = 0; icd < nC * nD; ++icd, ++idx) {
          const auto& tk = pcd.lists[icd].terms;
          double sum = 0.0;
          for (const auto& b : tb) {
            double inner = 0.0;
            for (const auto& k : tk) {
              const double r = R(b.t + k.t, b.u + k.u, b.v + k.v);
              inner += ((k.t + k.u + k.v) & 1) ? -k.coef * r : k.coef * r;
            }
            sum += b.coef * inner;
          }
          out[idx] += pref * sum;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct PairCacheRow {
  const char* config;
  std::size_t quartets = 0;
  double before_qps = 0.0;
  double after_qps = 0.0;
  bool bitwise_identical = true;
  double speedup() const {
    return before_qps > 0 ? after_qps / before_qps : 0.0;
  }
};

/// Time the per-quartet engine against the cached-pair engine over every
/// ordered quartet of `nsh` shells, single-threaded, same FP work.
PairCacheRow bench_pair_cache(const char* config_name, int l,
                              int contraction, std::size_t nsh, int reps) {
  const Molecule mol = make_molecule("benzene");
  BasisOptions bo;
  bo.l = l;
  bo.contraction = contraction;
  const BasisSet bs = make_basis(mol, bo);
  assert(bs.shells.size() >= nsh);
  const std::size_t ncomp =
      cartesian_components(l).size() * cartesian_components(l).size();
  const std::size_t block = ncomp * ncomp;
  const std::size_t nq = nsh * nsh * nsh * nsh;

  PairCacheRow row;
  row.config = config_name;
  row.quartets = nq;

  std::vector<double> out_before(block), out_after(block);

  // Before: everything rebuilt per quartet.
  row.before_qps =
      nq / bench::best_time_seconds(
               [&] {
                 for (std::size_t i = 0; i < nsh; ++i)
                   for (std::size_t j = 0; j < nsh; ++j)
                     for (std::size_t k = 0; k < nsh; ++k)
                       for (std::size_t m = 0; m < nsh; ++m)
                         seed_compute_eri_block(bs.shells[i], bs.shells[j],
                                                bs.shells[k], bs.shells[m],
                                                out_before);
               },
               reps);

  // After: pair data built once for all nsh^2 pairs, workspace reused.
  std::vector<ShellPairData> pairs;
  pairs.reserve(nsh * nsh);
  const int l_total = 4 * l;
  for (std::size_t i = 0; i < nsh; ++i) {
    for (std::size_t j = 0; j < nsh; ++j) {
      pairs.emplace_back(bs.shells[i], bs.shells[j]);
      pairs.back().set_r_stride(l_total);
    }
  }
  EriWorkspace ws;
  row.after_qps =
      nq / bench::best_time_seconds(
               [&] {
                 for (std::size_t ij = 0; ij < nsh * nsh; ++ij)
                   for (std::size_t kl = 0; kl < nsh * nsh; ++kl)
                     compute_eri_block(pairs[ij], pairs[kl], ws, out_after);
               },
               reps);

  // Bitwise identity of every quartet between the two engines.
  for (std::size_t i = 0; i < nsh && row.bitwise_identical; ++i) {
    for (std::size_t j = 0; j < nsh && row.bitwise_identical; ++j) {
      for (std::size_t k = 0; k < nsh && row.bitwise_identical; ++k) {
        for (std::size_t m = 0; m < nsh && row.bitwise_identical; ++m) {
          seed_compute_eri_block(bs.shells[i], bs.shells[j], bs.shells[k],
                                 bs.shells[m], out_before);
          compute_eri_block(pairs[i * nsh + j], pairs[k * nsh + m], ws,
                            out_after);
          row.bitwise_identical = bits_equal(out_before, out_after);
        }
      }
    }
  }
  return row;
}

struct BoysRow {
  double series_evals_per_s = 0.0;
  double table_evals_per_s = 0.0;
  double max_abs_diff = 0.0;
};

/// Full-span Boys evaluations/s at the engine's top order over a dense
/// off-grid T sweep, plus the worst absolute deviation at any order.
BoysRow bench_boys(int reps) {
  const int m = kMaxBoysOrder;
  std::vector<double> Ts;
  for (int i = 0; i <= 8000; ++i) {
    Ts.push_back(45.0 * i / 8000.0 + (i % 11) * 7.3e-4);
  }
  double sink = 0.0;
  double buf[kMaxBoysOrder + 1];

  BoysRow row;
  row.series_evals_per_s =
      Ts.size() / bench::best_time_seconds(
                      [&] {
                        for (const double T : Ts) {
                          boys(T, m, std::span<double>(buf, m + 1));
                          sink += buf[m];
                        }
                      },
                      reps);
  row.table_evals_per_s =
      Ts.size() / bench::best_time_seconds(
                      [&] {
                        for (const double T : Ts) {
                          boys_table(T, m, std::span<double>(buf, m + 1));
                          sink += buf[m];
                        }
                      },
                      reps);
  double exact[kMaxBoysOrder + 1];
  for (const double T : Ts) {
    boys(T, m, std::span<double>(exact, m + 1));
    boys_table(T, m, std::span<double>(buf, m + 1));
    for (int n = 0; n <= m; ++n) {
      row.max_abs_diff =
          std::max(row.max_abs_diff, std::abs(buf[n] - exact[n]));
    }
  }
  if (sink == 42.0) std::printf(" ");  // defeat dead-code elimination
  return row;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(f),
                                    std::istreambuf_iterator<char>());
}

struct ProducerRow {
  std::size_t producers = 0;
  double dump_s = 0.0;
  bool bytes_identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = bench::quick_mode();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int reps = smoke ? 1 : 3;

  bench::print_header(
      "ERI compute kernels: shell-pair cache, Boys fast path, N producers",
      "PaSTRI (CLUSTER'18) dataset generation stage; "
      "McMurchie-Davidson engine");

  // -- 1. pair caching before/after ------------------------------------
  std::vector<PairCacheRow> cache_rows;
  cache_rows.push_back(
      bench_pair_cache("(dd|dd)", 2, 2, smoke ? 2 : 3, reps));
  cache_rows.push_back(
      bench_pair_cache("(ff|ff)", 3, 2, smoke ? 2 : 3, reps));
  bool all_identical = true;
  std::printf("pair caching, single thread, ordered quartets of one basis\n");
  for (const PairCacheRow& r : cache_rows) {
    all_identical = all_identical && r.bitwise_identical;
    std::printf(
        "  %s  %5zu quartets   before %9.0f q/s   after %9.0f q/s   "
        "%.2fx   bits %s\n",
        r.config, r.quartets, r.before_qps, r.after_qps, r.speedup(),
        r.bitwise_identical ? "identical" : "DIFFER");
  }
  std::printf("\n");

  // -- 2. Boys series vs table -----------------------------------------
  const BoysRow boys_row = bench_boys(reps);
  std::printf("Boys function, full span to order %d, dense off-grid sweep\n",
              kMaxBoysOrder);
  std::printf("  exact series   %12.0f evals/s\n",
              boys_row.series_evals_per_s);
  std::printf("  tabulated      %12.0f evals/s   (%.2fx)\n",
              boys_row.table_evals_per_s,
              boys_row.series_evals_per_s > 0
                  ? boys_row.table_evals_per_s / boys_row.series_evals_per_s
                  : 0.0);
  std::printf("  max |table - series| over sweep: %.3e\n\n",
              boys_row.max_abs_diff);

  // -- 3. multi-producer dump byte identity ----------------------------
  const std::string dir = "/tmp/pastri_bench_eri_kernels";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const Molecule mol = make_molecule("benzene");
  DatasetOptions dopt_ds;
  dopt_ds.config = parse_config("(dd|dd)");
  dopt_ds.max_blocks = smoke ? 48 : 256;
  dopt_ds.seed = 20180901;
  Params params;
  EriDumpOptions dump_opt;
  dump_opt.num_shards = 2;

  std::vector<ProducerRow> prod_rows;
  std::printf("dump_eri_sharded, %zu blocks, %d shards\n",
              dopt_ds.max_blocks, dump_opt.num_shards);
  for (const std::size_t producers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
    EriPipelineOptions popt;
    popt.producers = producers;
    const std::string base = "p" + std::to_string(producers);
    ProducerRow row;
    row.producers = producers;
    row.dump_s = bench::best_time_seconds(
        [&] {
          dump_eri_sharded(mol, dopt_ds, params, dir, base, dump_opt, popt);
        },
        reps);
    for (int s = 0; s < dump_opt.num_shards; ++s) {
      const std::string suffix = "." + std::to_string(s);
      row.bytes_identical =
          row.bytes_identical &&
          slurp(dir + "/" + base + suffix) == slurp(dir + "/p1" + suffix);
    }
    all_identical = all_identical && row.bytes_identical;
    std::printf("  producers=%zu   %7.3f s   bytes %s\n", producers,
                row.dump_s,
                row.bytes_identical ? "identical" : "DIFFER");
    prod_rows.push_back(row);
  }
  std::filesystem::remove_all(dir);

  // -- artifact --------------------------------------------------------
  const std::string out = bench::artifact_path("BENCH_eri_kernels.json");
  std::FILE* f = smoke ? nullptr : std::fopen(out.c_str(), "w");
  if (f) {
    std::fprintf(f, "{\n  \"mode\": \"default\",\n");
    std::fprintf(f, "  \"pair_cache\": [\n");
    for (std::size_t i = 0; i < cache_rows.size(); ++i) {
      const PairCacheRow& r = cache_rows[i];
      std::fprintf(f,
                   "    {\"config\": \"%s\", \"quartets\": %zu, "
                   "\"before_quartets_per_s\": %.1f, "
                   "\"after_quartets_per_s\": %.1f, \"speedup\": %.3f, "
                   "\"bitwise_identical\": %s}%s\n",
                   r.config, r.quartets, r.before_qps, r.after_qps,
                   r.speedup(), r.bitwise_identical ? "true" : "false",
                   i + 1 < cache_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"boys\": {\"order\": %d, \"series_evals_per_s\": %.1f, "
                 "\"table_evals_per_s\": %.1f, \"speedup\": %.3f, "
                 "\"max_abs_diff\": %.3e},\n",
                 kMaxBoysOrder, boys_row.series_evals_per_s,
                 boys_row.table_evals_per_s,
                 boys_row.series_evals_per_s > 0
                     ? boys_row.table_evals_per_s /
                           boys_row.series_evals_per_s
                     : 0.0,
                 boys_row.max_abs_diff);
    std::fprintf(f, "  \"dump_producers\": [\n");
    for (std::size_t i = 0; i < prod_rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"producers\": %zu, \"dump_s\": %.4f, "
                   "\"bytes_identical\": %s}%s\n",
                   prod_rows[i].producers, prod_rows[i].dump_s,
                   prod_rows[i].bytes_identical ? "true" : "false",
                   i + 1 < prod_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
  }

  return all_identical ? 0 : 1;
}
