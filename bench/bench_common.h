// bench_common.h - Shared infrastructure for the paper-reproduction
// benches: the six evaluation datasets (tri-alanine/benzene/glutamine x
// (dd|dd)/(ff|ff)), timing helpers, and plain-text table printing.
//
// Dataset sizes are scaled down from the paper's 2 GB samples to finish
// on one node in seconds (population statistics converge at MBs);
// set PASTRI_BENCH_QUICK=1 for an even smaller sweep, or
// PASTRI_BENCH_FULL=1 for larger samples.  Generated datasets are cached
// on disk under /tmp/pastri_bench_cache so successive benches reuse them.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/pastri.h"
#include "qc/eri_engine.h"

namespace pastri::bench {

inline bool quick_mode() {
  const char* q = std::getenv("PASTRI_BENCH_QUICK");
  return q != nullptr && q[0] == '1';
}
inline bool full_mode() {
  const char* f = std::getenv("PASTRI_BENCH_FULL");
  return f != nullptr && f[0] == '1';
}

struct DatasetSpec {
  const char* molecule;
  const char* config;
  std::size_t blocks_default;
  std::size_t blocks_quick;
  std::size_t blocks_full;
};

/// The paper's six evaluation datasets (Fig. 9).
inline const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> specs{
      {"alanine", "(dd|dd)", 1500, 250, 6000},
      {"alanine", "(ff|ff)", 220, 40, 900},
      {"benzene", "(dd|dd)", 1296, 250, 1296},
      {"benzene", "(ff|ff)", 220, 40, 900},
      {"glutamine", "(dd|dd)", 1500, 250, 6000},
      {"glutamine", "(ff|ff)", 220, 40, 900},
  };
  return specs;
}

inline std::size_t spec_blocks(const DatasetSpec& s) {
  if (quick_mode()) return s.blocks_quick;
  if (full_mode()) return s.blocks_full;
  return s.blocks_default;
}

/// Generate (or load from the cache) one benchmark dataset.
inline qc::EriDataset load_bench_dataset(const DatasetSpec& spec) {
  const std::size_t blocks = spec_blocks(spec);
  const std::filesystem::path cache_dir = "/tmp/pastri_bench_cache";
  std::filesystem::create_directories(cache_dir);
  const std::string key = std::string(spec.molecule) + "_" +
                          qc::make_molecule(spec.molecule).name + "_" +
                          spec.config + "_" + std::to_string(blocks);
  std::string fname = key;
  for (char& c : fname) {
    if (c == '(' || c == ')' || c == '|') c = '_';
  }
  const std::filesystem::path path = cache_dir / (fname + ".bin");
  if (std::filesystem::exists(path)) {
    try {
      return qc::load_dataset(path.string());
    } catch (const std::exception&) {
      // fall through and regenerate
    }
  }
  qc::DatasetOptions opt;
  opt.config = qc::parse_config(spec.config);
  opt.max_blocks = blocks;
  opt.seed = 20180901;  // CLUSTER'18
  const qc::EriDataset ds =
      qc::generate_eri_dataset(qc::make_molecule(spec.molecule), opt);
  try {
    qc::save_dataset(ds, path.string());
  } catch (const std::exception&) {
    // cache is best-effort
  }
  return ds;
}

inline BlockSpec block_spec_of(const qc::EriDataset& ds) {
  return BlockSpec{ds.shape.num_sub_blocks(), ds.shape.sub_block_size()};
}

/// Wall-clock seconds of a callable.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

/// Best-of-N timing (reduces scheduler noise on shared machines).
inline double best_time_seconds(const std::function<void()>& fn,
                                int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, time_seconds(fn));
  return best;
}

/// Where to write a checked-in bench artifact (BENCH_*.json): the repo
/// root when the build exported it (bench/CMakeLists.txt defines
/// PASTRI_SOURCE_DIR), falling back to the working directory so the
/// binaries still run standalone.
inline std::string artifact_path(const char* filename) {
#ifdef PASTRI_SOURCE_DIR
  return std::string(PASTRI_SOURCE_DIR) + "/" + filename;
#else
  return filename;
#endif
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void print_header(const char* title, const char* paper_ref) {
  print_rule();
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  if (quick_mode()) std::printf("(quick mode: reduced dataset sizes)\n");
  print_rule();
}

}  // namespace pastri::bench
