// bench_fig4_scaling_metrics - Reproduces the Fig. 4 table: compression
// ratio per pattern-scaling metric (FR / ER / AR / AAR / IS) at
// EB = 1e-10 over the evaluation datasets.
//
// Paper values: FR n/a (unreliable), ER 17.46, AR 16.92, AAR 17.44,
// IS 17.20 -- ER best and cheapest.
#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header("Fig. 4 -- pattern-scaling metric comparison",
                      "Fig. 4 (right table), Section IV-A");

  std::vector<qc::EriDataset> datasets;
  for (const auto& spec : bench::paper_datasets()) {
    datasets.push_back(bench::load_bench_dataset(spec));
  }

  const ScalingMetric metrics[] = {ScalingMetric::FR, ScalingMetric::ER,
                                   ScalingMetric::AR, ScalingMetric::AAR,
                                   ScalingMetric::IS};

  std::printf("%-8s %14s %16s\n", "Method", "Comp. Ratio",
              "(avg over 6 datasets)");
  double er_ratio = 0.0, best_other = 0.0;
  for (ScalingMetric m : metrics) {
    std::size_t in = 0, out = 0;
    for (const auto& ds : datasets) {
      Params p;
      p.error_bound = 1e-10;
      p.metric = m;
      Stats st;
      compress(ds.values, bench::block_spec_of(ds), p, &st);
      in += st.input_bytes;
      out += st.output_bytes;
    }
    const double ratio = static_cast<double>(in) / out;
    std::printf("%-8s %14.2f\n", scaling_metric_name(m), ratio);
    if (m == ScalingMetric::ER) {
      er_ratio = ratio;
    } else if (m != ScalingMetric::FR) {
      best_other = std::max(best_other, ratio);
    }
  }
  bench::print_rule();
  std::printf("paper shape: ER >= AAR ~ IS ~ AR, FR far behind "
              "(first points can be ~0).\n");
  std::printf("measured: ER %.2f vs best non-ER %.2f -> ER %s\n", er_ratio,
              best_other, er_ratio >= best_other * 0.99 ? "best-or-tied"
                                                        : "NOT best");
  return 0;
}
