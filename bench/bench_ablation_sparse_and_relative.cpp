// bench_ablation_sparse_and_relative - Two ablations of PaSTRI design
// choices:
//   (1) the sparse-vs-dense ECQ representation choice of Section IV-C
//       ("PaSTRI decides whether to use sparse representation or
//       non-sparse representation ... also helps boosting compression
//       ratios");
//   (2) the BlockRelative bound mode, this repository's implementation
//       of the paper's "extend it to suit more chemistry applications"
//       future work -- preserving relative accuracy in far-field blocks
//       that an absolute bound zeroes out.
#include <cmath>

#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header("Ablation -- sparse ECQ and relative-bound mode",
                      "Section IV-C (sparse) + Section VI (future work)");

  std::printf("(1) sparse-vs-dense ECQ at EB = 1e-10\n");
  std::printf("%-22s %12s %12s %12s\n", "dataset", "dense-only",
              "adaptive", "sparse blks");
  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    const BlockSpec bs = bench::block_spec_of(ds);
    Params dense, adaptive;
    dense.allow_sparse = false;
    Stats st_d, st_a;
    compress(ds.values, bs, dense, &st_d);
    compress(ds.values, bs, adaptive, &st_a);
    std::printf("%-22s %12.2f %12.2f %12zu\n", ds.label.c_str(),
                st_d.ratio(), st_a.ratio(), st_a.sparse_blocks);
  }

  std::printf("\n(2) absolute EB = 1e-10 vs block-relative 1e-6\n");
  std::printf("%-22s %10s %10s %14s %14s\n", "dataset", "abs", "rel",
              "zeroed (abs)", "zeroed (rel)");
  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    const BlockSpec bs = bench::block_spec_of(ds);
    Params abs, rel;
    abs.error_bound = 1e-10;
    rel.bound_mode = BoundMode::BlockRelative;
    rel.error_bound = 1e-6;
    Stats st_abs, st_rel;
    compress(ds.values, bs, abs, &st_abs);
    compress(ds.values, bs, rel, &st_rel);
    std::printf("%-22s %10.2f %10.2f %14zu %14zu\n", ds.label.c_str(),
                st_abs.ratio(), st_rel.ratio(), st_abs.blocks_by_type[0],
                st_rel.blocks_by_type[0]);
  }
  bench::print_rule();
  std::printf("shape: adaptive sparse never loses to dense-only; the "
              "relative mode trades ratio for per-block significance "
              "(only exactly-screened blocks are dropped).\n");
  return 0;
}
