// bench_fig9cd_rates - Reproduces Fig. 9(c,d): single-core compression
// and decompression rates (MB/s) of SZ, ZFP, and PaSTRI over the six
// datasets at EB in {1e-11, 1e-10, 1e-9}.
//
// Paper averages at 1e-10: compression SZ 104.1, ZFP 308.5, PaSTRI
// > 660 MB/s; decompression SZ 148.6, ZFP 260.5, PaSTRI > 1110 MB/s.
#include "bench_common.h"
#include "compressors/compressor_iface.h"

using namespace pastri;

int main() {
  bench::print_header(
      "Fig. 9(c,d) -- compression / decompression rates (MB/s)",
      "Fig. 9(c) and 9(d), Section V-B");

  const double ebs[] = {1e-11, 1e-10, 1e-9};
  const int reps = bench::quick_mode() ? 1 : 3;

  for (double eb : ebs) {
    std::printf("\nEB = %.0e\n", eb);
    std::printf("%-22s %9s %9s %9s | %9s %9s %9s\n", "dataset", "SZ c",
                "ZFP c", "PaS c", "SZ d", "ZFP d", "PaS d");
    double csum[3] = {0, 0, 0}, dsum[3] = {0, 0, 0};
    int n = 0;
    for (const auto& spec : bench::paper_datasets()) {
      const auto ds = bench::load_bench_dataset(spec);
      const BlockSpec bs = bench::block_spec_of(ds);
      const double mb = static_cast<double>(ds.size_bytes()) / 1e6;
      const std::unique_ptr<baselines::LossyCompressor> codecs[3] = {
          baselines::make_sz_compressor(),
          baselines::make_zfp_compressor(),
          baselines::make_pastri_compressor(bs)};
      double crate[3], drate[3];
      for (int c = 0; c < 3; ++c) {
        std::vector<std::uint8_t> stream;
        const double ct = bench::best_time_seconds(
            [&] { stream = codecs[c]->compress(ds.values, eb); }, reps);
        std::vector<double> back;
        const double dt = bench::best_time_seconds(
            [&] { back = codecs[c]->decompress(stream); }, reps);
        crate[c] = mb / ct;
        drate[c] = mb / dt;
        csum[c] += crate[c];
        dsum[c] += drate[c];
      }
      ++n;
      std::printf("%-22s %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n",
                  ds.label.c_str(), crate[0], crate[1], crate[2], drate[0],
                  drate[1], drate[2]);
    }
    std::printf("%-22s %9.1f %9.1f %9.1f | %9.1f %9.1f %9.1f\n", "Average",
                csum[0] / n, csum[1] / n, csum[2] / n, dsum[0] / n,
                dsum[1] / n, dsum[2] / n);
  }
  bench::print_rule();
  std::printf("paper shape: PaSTRI fastest in both directions "
              "(c: PaSTRI > ZFP > SZ; d: PaSTRI > ZFP ~ SZ).\n");
  return 0;
}
