// bench_ablation_lossless - Reproduces the Sections I-II observation
// that lossless compression is inadequate for ERI data ("lossless
// compressors suffer from poor compression ratios (1.1~2 in most
// cases)"), motivating error-bounded lossy compression.
#include <cstring>

#include "bench_common.h"
#include "compressors/lossless/fpc.h"
#include "compressors/lossless/lzss.h"

using namespace pastri;

int main() {
  bench::print_header("Ablation -- lossless (LZSS, FPC) vs PaSTRI at 1e-10",
                      "Sections I-II (lossless motivation)");

  std::printf("%-22s %12s %12s %12s %14s\n", "dataset", "LZSS", "FPC",
              "PaSTRI", "advantage");
  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(ds.values.data()),
        ds.size_bytes());
    const auto lz = baselines::lzss_compress(bytes);
    const double lz_ratio =
        static_cast<double>(bytes.size()) / lz.size();
    const auto fpc = baselines::fpc_compress(ds.values);
    const double fpc_ratio =
        static_cast<double>(bytes.size()) / fpc.size();

    Params p;
    p.error_bound = 1e-10;
    Stats st;
    compress(ds.values, bench::block_spec_of(ds), p, &st);
    std::printf("%-22s %12.2f %12.2f %12.2f %13.1fx\n", ds.label.c_str(),
                lz_ratio, fpc_ratio, st.ratio(),
                st.ratio() / std::max(lz_ratio, fpc_ratio));
  }
  bench::print_rule();
  std::printf("paper shape: lossless ratios are small on floating-point "
              "ERI data (mantissas are incompressible; zero blocks give "
              "LZ its only traction), far below the error-bounded lossy "
              "ratios.\n");
  return 0;
}
