// bench_fig7_encoding_trees - Reproduces the Fig. 7 table: compression
// ratio per ECQ encoding tree at EB = 1e-10.
//
// Paper values: Tree1 17.60, Tree2 17.34, Tree3 17.99, Tree4 17.41,
// Tree5 18.13 -- the adaptive Tree 5 wins, Tree 2's greedy +-1
// placement loses.
#include <algorithm>

#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header("Fig. 7 -- ECQ encoding tree comparison",
                      "Fig. 7 (ratio table), Section IV-C");

  std::vector<qc::EriDataset> datasets;
  for (const auto& spec : bench::paper_datasets()) {
    datasets.push_back(bench::load_bench_dataset(spec));
  }

  const EcqTree trees[] = {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                           EcqTree::Tree4, EcqTree::Tree5};

  std::printf("%-8s %14s\n", "Tree", "Comp. Ratio");
  double ratios[6] = {0};
  for (EcqTree t : trees) {
    std::size_t in = 0, out = 0;
    for (const auto& ds : datasets) {
      Params p;
      p.error_bound = 1e-10;
      p.tree = t;
      Stats st;
      compress(ds.values, bench::block_spec_of(ds), p, &st);
      in += st.input_bytes;
      out += st.output_bytes;
    }
    const double ratio = static_cast<double>(in) / out;
    ratios[static_cast<int>(t)] = ratio;
    std::printf("%-8s %14.2f\n", ecq_tree_name(t), ratio);
  }
  bench::print_rule();
  std::printf("paper values: T1 17.60, T2 17.34, T3 17.99, T4 17.41, "
              "T5 18.13 (spread < 5%%, Tree 5 best).\n");
  std::printf("measured orderings: Tree5>=Tree3 %s, Tree3>Tree2 %s, "
              "Tree5>Tree4 %s, all within 20%% of each other %s\n",
              ratios[5] >= ratios[3] * 0.999 ? "yes" : "NO",
              ratios[3] > ratios[2] ? "yes" : "NO",
              ratios[5] > ratios[4] ? "yes" : "NO",
              *std::min_element(ratios + 1, ratios + 6) >
                      0.8 * *std::max_element(ratios + 1, ratios + 6)
                  ? "yes"
                  : "NO");
  std::printf("note: our synthetic datasets carry heavier near-field ECQ "
              "tails than the paper's GAMESS samples, which favours "
              "Tree 1's shorter 'others' prefix by ~2%% (see "
              "EXPERIMENTS.md).\n");
  return 0;
}
