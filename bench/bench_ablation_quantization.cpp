// bench_ablation_quantization - Reproduces the Section IV-B argument for
// the "practical approach": quantizing the scales with S_b = P_b instead
// of forcing S_binsize = 2*EB (which costs S_b ~ 33 bits at EB = 1e-10,
// the paper's worked example) shrinks SQ storage at nearly no cost in
// ECQ, because the extra scale-quantization error consumes at most two
// ECQ bins (Eq. 23).
#include <cmath>

#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header(
      "Ablation -- scale quantization: S_b = P_b vs S_binsize = 2*EB",
      "Section IV-B (practical approach, Eq. 20-23)");

  const double eb = 1e-10;
  // Naive scheme: S quantized as finely as P, S_binsize = 2*EB over
  // S in [-1, 1] -> S_b = ceil(log2(2 / (2*EB))) bits.
  const unsigned naive_sb = static_cast<unsigned>(
      std::ceil(std::log2(1.0 / eb)));
  std::printf("EB = %.0e -> naive S_b = %u bits (paper's example: 33)\n\n",
              eb, naive_sb);

  std::printf("%-22s %10s %12s %12s %10s\n", "dataset", "avg P_b",
              "practical", "naive", "saving");
  Params p;
  p.error_bound = eb;
  for (const auto& spec : bench::paper_datasets()) {
    const auto ds = bench::load_bench_dataset(spec);
    const BlockSpec bs = bench::block_spec_of(ds);
    std::size_t practical_bits = 0, naive_bits = 0, pb_sum = 0,
                nonzero_blocks = 0;
    for (std::size_t b = 0; b < ds.num_blocks; ++b) {
      const BlockAnalysis a = analyze_block(ds.block(b), bs, p);
      practical_bits += a.payload_bits;
      if (a.zero_block) {
        naive_bits += a.payload_bits;
        continue;
      }
      ++nonzero_blocks;
      pb_sum += a.quantized.spec.scale_bits;
      // Naive: replace num_SB * S_b with num_SB * naive_sb; the ECQ
      // payload stays essentially unchanged (Eq. 23's <= 2 extra bins
      // do not move EC_b in practice).
      naive_bits += a.payload_bits +
                    bs.num_sub_blocks *
                        (naive_sb - a.quantized.spec.scale_bits);
    }
    std::printf("%-22s %10.1f %12zu %12zu %9.1f%%\n", ds.label.c_str(),
                static_cast<double>(pb_sum) /
                    std::max<std::size_t>(1, nonzero_blocks),
                practical_bits / 8, naive_bits / 8,
                100.0 * (1.0 - static_cast<double>(practical_bits) /
                                   naive_bits));
  }
  bench::print_rule();
  std::printf("paper shape: the practical approach 'boosts the "
              "compression ratio significantly while requiring no "
              "computationally expensive steps'.\n");
  return 0;
}
