// bench_omp_scaling - Block-level parallel scaling of PaSTRI
// (Section IV-C: "PaSTRI is highly parallelizable ... each block can be
// compressed and decompressed completely independent from each other").
// Sweeps OpenMP thread counts over both the one-shot drivers and the
// bounded-memory streaming pipeline (StreamWriter / StreamConsumer); on
// a single-core host the table shows flat times, on a multicore host
// near-linear speedup.  The streaming pipeline must stay within a few
// percent of batch -- it is the same encoder behind a chunked driver --
// and its bytes must be identical at every thread count.
//
// Results are also written to BENCH_omp_scaling.json (one object per
// thread count) so the numbers are scriptable.
#include <omp.h>

#include <fstream>

#include "bench_common.h"
#include "core/stream.h"
#include "obs/metrics.h"

using namespace pastri;

int main() {
  bench::print_header("Ablation -- OpenMP block-parallel scaling",
                      "Section IV-C (parallelizability)");

  const auto ds = bench::load_bench_dataset({"glutamine", "(dd|dd)", 1500,
                                             250, 6000});
  const BlockSpec bs = bench::block_spec_of(ds);
  const double mb = static_cast<double>(ds.size_bytes()) / 1e6;
  const int hw = omp_get_max_threads();
  std::printf("dataset %.1f MB; hardware threads available: %d\n\n", mb,
              hw);

  std::printf("%-9s %12s %12s %12s %12s %12s\n", "threads", "comp MB/s",
              "decomp MB/s", "strm-c MB/s", "strm-d MB/s", "obs ovh %");
  std::ofstream json(bench::artifact_path("BENCH_omp_scaling.json"));
  json << "[\n";
  std::vector<std::uint8_t> reference;
  bool first = true;
  for (int threads : {1, 2, 4, 8}) {
    Params p;
    p.num_threads = threads;
    std::vector<std::uint8_t> stream;
    const double ct = bench::best_time_seconds(
        [&] { stream = compress(ds.values, bs, p); }, 3);

    // Same compress with the telemetry registry disabled: the delta is
    // the total cost of the always-on instrumentation (budget: < 2%,
    // DESIGN.md section 8).  Report-only -- timing noise on loaded hosts
    // must not flip a correctness bench.
    obs::registry().set_enabled(false);
    const double ct_off = bench::best_time_seconds(
        [&] { stream = compress(ds.values, bs, p); }, 3);
    obs::registry().set_enabled(true);
    const double overhead_pct = (ct - ct_off) / ct_off * 100.0;

    std::vector<double> back;
    const double dt = bench::best_time_seconds(
        [&] { back = decompress(stream, threads); }, 3);

    // Streaming pipeline, chunked on both ends (1 MiB value slices in,
    // 1 MiB compressed chunks out) -- the bounded-memory path a
    // compute -> compress producer or a pipe consumer takes.
    const std::size_t slice = (std::size_t{1} << 20) / sizeof(double);
    std::vector<std::uint8_t> streamed;
    const double sct = bench::best_time_seconds(
        [&] {
          VectorSink sink;
          StreamWriter w(sink, bs, p);
          for (std::size_t at = 0; at < ds.values.size(); at += slice) {
            const std::size_t n =
                std::min(slice, ds.values.size() - at);
            w.put_values(
                std::span<const double>(ds.values).subspan(at, n));
          }
          w.finish();
          streamed = sink.take();
        },
        3);
    std::vector<double> sback(ds.values.size());
    const double sdt = bench::best_time_seconds(
        [&] {
          SpanSource src(streamed);
          StreamConsumer c(
              src, StreamConsumerOptions{.num_threads = threads});
          std::size_t got = 0;
          while (got < sback.size()) {
            const std::size_t n = c.read_values(
                std::span<double>(sback).subspan(
                    got, std::min<std::size_t>(slice,
                                               sback.size() - got)));
            if (n == 0) break;
            got += n;
          }
        },
        3);

    std::printf("%-9d %12.1f %12.1f %12.1f %12.1f %12.2f\n", threads,
                mb / ct, mb / dt, mb / sct, mb / sdt, overhead_pct);
    if (!first) json << ",\n";
    first = false;
    json << "  {\"threads\": " << threads << ", \"compress_mbps\": "
         << mb / ct << ", \"decompress_mbps\": " << mb / dt
         << ", \"stream_compress_mbps\": " << mb / sct
         << ", \"stream_decompress_mbps\": " << mb / sdt
         << ", \"metrics_overhead_pct\": " << overhead_pct << "}";

    if (streamed != stream) {
      std::printf("ERROR: streaming bytes differ from batch!\n");
      return 1;
    }
    if (sback != back) {
      std::printf("ERROR: streaming decode differs from batch!\n");
      return 1;
    }
    if (reference.empty()) {
      reference = stream;
    } else if (stream != reference) {
      std::printf("ERROR: stream differs across thread counts!\n");
      return 1;
    }
  }
  json << "\n]\n";
  bench::print_rule();
  std::printf("compressed bytes are identical at every thread count and "
              "between the batch\nand streaming pipelines (block "
              "independence); JSON in BENCH_omp_scaling.json.\n");
  return 0;
}
