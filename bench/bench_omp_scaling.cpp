// bench_omp_scaling - Block-level parallel scaling of PaSTRI
// (Section IV-C: "PaSTRI is highly parallelizable ... each block can be
// compressed and decompressed completely independent from each other").
// Sweeps OpenMP thread counts; on a single-core host the table shows
// flat times, on a multicore host near-linear speedup.
#include <omp.h>

#include "bench_common.h"

using namespace pastri;

int main() {
  bench::print_header("Ablation -- OpenMP block-parallel scaling",
                      "Section IV-C (parallelizability)");

  const auto ds = bench::load_bench_dataset({"glutamine", "(dd|dd)", 1500,
                                             250, 6000});
  const BlockSpec bs = bench::block_spec_of(ds);
  const double mb = static_cast<double>(ds.size_bytes()) / 1e6;
  const int hw = omp_get_max_threads();
  std::printf("dataset %.1f MB; hardware threads available: %d\n\n", mb,
              hw);

  std::printf("%-9s %14s %14s\n", "threads", "comp MB/s", "decomp MB/s");
  std::vector<std::uint8_t> reference;
  for (int threads : {1, 2, 4, 8}) {
    Params p;
    p.num_threads = threads;
    std::vector<std::uint8_t> stream;
    const double ct = bench::best_time_seconds(
        [&] { stream = compress(ds.values, bs, p); }, 3);
    std::vector<double> back;
    const double dt = bench::best_time_seconds(
        [&] { back = decompress(stream); }, 3);
    std::printf("%-9d %14.1f %14.1f\n", threads, mb / ct, mb / dt);
    if (reference.empty()) {
      reference = stream;
    } else if (stream != reference) {
      std::printf("ERROR: stream differs across thread counts!\n");
      return 1;
    }
  }
  bench::print_rule();
  std::printf("the compressed stream is bit-identical at every thread "
              "count (block independence).\n");
  return 0;
}
