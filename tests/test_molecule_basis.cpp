// Tests for molecular geometries and the synthetic basis builder.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "qc/basis.h"
#include "qc/molecule.h"

namespace pastri::qc {
namespace {

std::map<std::string, int> formula(const Molecule& m) {
  std::map<std::string, int> f;
  for (const auto& a : m.atoms) ++f[a.symbol];
  return f;
}

TEST(Molecule, BenzeneFormulaAndGeometry) {
  const Molecule m = make_benzene();
  const auto f = formula(m);
  EXPECT_EQ(f.at("C"), 6);
  EXPECT_EQ(f.at("H"), 6);
  // C-C bond length 1.397 A in Bohr.
  const double rcc =
      std::sqrt(dist2(m.atoms[0].position, m.atoms[1].position));
  EXPECT_NEAR(rcc, 1.397 * kAngstromToBohr, 1e-9);
  // Planar: all z = 0.
  for (const auto& a : m.atoms) EXPECT_DOUBLE_EQ(a.position[2], 0.0);
}

TEST(Molecule, GlutamineFormula) {
  const auto f = formula(make_glutamine());
  EXPECT_EQ(f.at("C"), 5);
  EXPECT_EQ(f.at("H"), 10);
  EXPECT_EQ(f.at("N"), 2);
  EXPECT_EQ(f.at("O"), 3);
}

TEST(Molecule, TriAlanineFormula) {
  const auto f = formula(make_trialanine());
  EXPECT_EQ(f.at("C"), 9);
  EXPECT_EQ(f.at("H"), 17);
  EXPECT_EQ(f.at("N"), 3);
  EXPECT_EQ(f.at("O"), 4);
}

TEST(Molecule, SizesOrderedBenzeneSmallest) {
  // The paper's molecules span a size range; tri-alanine is the largest.
  EXPECT_LT(make_benzene().diameter(), make_trialanine().diameter());
  EXPECT_LT(make_glutamine().diameter(), make_trialanine().diameter());
}

TEST(Molecule, BondLengthsSane) {
  // No two atoms should sit closer than ~0.8 A or be part of a bond
  // longer than the molecular diameter.
  for (Molecule (*make)() :
       {&make_benzene, &make_glutamine, &make_trialanine}) {
    const Molecule m = make();
    for (std::size_t i = 0; i < m.atoms.size(); ++i) {
      for (std::size_t j = i + 1; j < m.atoms.size(); ++j) {
        const double d =
            std::sqrt(dist2(m.atoms[i].position, m.atoms[j].position));
        EXPECT_GT(d, 0.8 * kAngstromToBohr)
            << m.name << " atoms " << i << "," << j;
      }
    }
  }
}

TEST(Molecule, LookupByName) {
  EXPECT_EQ(make_molecule("benzene").atoms.size(), 12u);
  EXPECT_EQ(make_molecule("glutamine").atoms.size(), 20u);
  EXPECT_EQ(make_molecule("alanine").atoms.size(), 33u);
  EXPECT_EQ(make_molecule("trialanine").atoms.size(), 33u);
  EXPECT_THROW(make_molecule("water"), std::invalid_argument);
}

TEST(Basis, ShellCountsFollowOptions) {
  const Molecule m = make_benzene();  // 6 C + 6 H
  BasisOptions o;
  o.l = 2;
  o.shells_per_atom = 2;
  const BasisSet b = make_basis(m, o);
  // Heavy atoms get 2 shells, hydrogens 1.
  EXPECT_EQ(b.num_shells(), 6u * 2 + 6u * 1);
  EXPECT_EQ(b.num_basis_functions(), b.num_shells() * 6);

  BasisOptions heavy = o;
  heavy.heavy_atoms_only = true;
  EXPECT_EQ(make_basis(m, heavy).num_shells(), 12u);
}

TEST(Basis, ContractionDepth) {
  BasisOptions o;
  o.l = 3;
  o.contraction = 3;
  const BasisSet b = make_basis(make_glutamine(), o);
  for (const auto& sh : b.shells) {
    EXPECT_EQ(sh.l, 3);
    EXPECT_EQ(sh.primitives.size(), 3u);
    // Even-tempered: strictly increasing exponents.
    EXPECT_LT(sh.primitives[0].exponent, sh.primitives[1].exponent);
    EXPECT_LT(sh.primitives[1].exponent, sh.primitives[2].exponent);
  }
}

TEST(Basis, ExponentsVaryByElementAndShellIndex) {
  BasisOptions o;
  o.l = 2;
  o.shells_per_atom = 2;
  const BasisSet b = make_basis(make_glutamine(), o);
  // Successive shells on the same atom must be more diffuse.
  for (std::size_t i = 0; i + 1 < b.shells.size(); ++i) {
    if (b.shells[i].atom_index == b.shells[i + 1].atom_index) {
      EXPECT_GT(b.shells[i].primitives[0].exponent,
                b.shells[i + 1].primitives[0].exponent);
    }
  }
}

TEST(Basis, RejectsBadOptions) {
  BasisOptions o;
  o.l = 9;
  EXPECT_THROW(make_basis(make_benzene(), o), std::invalid_argument);
  o.l = 2;
  o.contraction = 0;
  EXPECT_THROW(make_basis(make_benzene(), o), std::invalid_argument);
  o.contraction = 1;
  o.shells_per_atom = 0;
  EXPECT_THROW(make_basis(make_benzene(), o), std::invalid_argument);
}

TEST(Shell, NormalizationSelfOverlapIsOne) {
  // After normalize(), the contracted (L,0,0) self-overlap must be 1.
  for (int l : {0, 1, 2, 3}) {
    Shell sh;
    sh.l = l;
    sh.primitives = {{0.8, 0.7}, {2.0, 0.4}};
    sh.normalize();
    double s = 0.0;
    for (const auto& pi : sh.primitives) {
      for (const auto& pj : sh.primitives) {
        const double gamma = pi.exponent + pj.exponent;
        const double ov = double_factorial_odd(l) *
                          std::pow(M_PI / gamma, 1.5) /
                          std::pow(2.0 * gamma, l);
        s += pi.coefficient * pj.coefficient * ov;
      }
    }
    EXPECT_NEAR(s, 1.0, 1e-12) << "l=" << l;
  }
}

TEST(Shell, ComponentNormRatio) {
  // d_xx vs d_xy: ratio sqrt(3!! / (1!! 1!!)) = sqrt(3) for xy.
  const CartComponent xy{1, 1, 0};
  EXPECT_NEAR(component_norm_ratio(2, xy), std::sqrt(3.0), 1e-14);
  const CartComponent xx{2, 0, 0};
  EXPECT_NEAR(component_norm_ratio(2, xx), 1.0, 1e-14);
  const CartComponent xyz{1, 1, 1};
  EXPECT_NEAR(component_norm_ratio(3, xyz), std::sqrt(15.0), 1e-14);
}

}  // namespace
}  // namespace pastri::qc
