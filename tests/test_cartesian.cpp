// Tests for Cartesian angular-momentum bookkeeping.
#include <gtest/gtest.h>

#include <set>

#include "qc/cartesian.h"

namespace pastri::qc {
namespace {

TEST(Cartesian, ComponentCounts) {
  EXPECT_EQ(num_cartesians(0), 1);   // s
  EXPECT_EQ(num_cartesians(1), 3);   // p
  EXPECT_EQ(num_cartesians(2), 6);   // d
  EXPECT_EQ(num_cartesians(3), 10);  // f
  EXPECT_EQ(num_cartesians(4), 15);  // g
}

TEST(Cartesian, SpanSizesMatchCounts) {
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    EXPECT_EQ(cartesian_components(l).size(),
              static_cast<std::size_t>(num_cartesians(l)));
  }
}

TEST(Cartesian, ComponentsSumToL) {
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    for (const auto& c : cartesian_components(l)) {
      EXPECT_EQ(c.total(), l);
    }
  }
}

TEST(Cartesian, ComponentsAreDistinct) {
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    std::set<std::array<int, 3>> seen;
    for (const auto& c : cartesian_components(l)) {
      EXPECT_TRUE(seen.insert({c.lx, c.ly, c.lz}).second)
          << "duplicate component in l=" << l;
    }
  }
}

TEST(Cartesian, GamessDOrder) {
  const auto d = cartesian_components(2);
  // xx yy zz xy xz yz
  EXPECT_EQ(component_label(2, 0), "xx");
  EXPECT_EQ(component_label(2, 1), "yy");
  EXPECT_EQ(component_label(2, 2), "zz");
  EXPECT_EQ(component_label(2, 3), "xy");
  EXPECT_EQ(component_label(2, 4), "xz");
  EXPECT_EQ(component_label(2, 5), "yz");
  EXPECT_EQ(d[3].lx, 1);
  EXPECT_EQ(d[3].ly, 1);
  EXPECT_EQ(d[3].lz, 0);
}

TEST(Cartesian, LabelsMatchExponents) {
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    const auto comps = cartesian_components(l);
    for (int i = 0; i < num_cartesians(l); ++i) {
      const auto label = component_label(l, i);
      if (l == 0) {
        EXPECT_EQ(label, "1");
        continue;
      }
      int nx = 0, ny = 0, nz = 0;
      for (char ch : label) {
        nx += (ch == 'x');
        ny += (ch == 'y');
        nz += (ch == 'z');
      }
      EXPECT_EQ(nx, comps[i].lx) << "l=" << l << " i=" << i;
      EXPECT_EQ(ny, comps[i].ly);
      EXPECT_EQ(nz, comps[i].lz);
    }
  }
}

TEST(Cartesian, ShellLetters) {
  EXPECT_EQ(shell_letter(0), 's');
  EXPECT_EQ(shell_letter(1), 'p');
  EXPECT_EQ(shell_letter(2), 'd');
  EXPECT_EQ(shell_letter(3), 'f');
  EXPECT_EQ(shell_letter(4), 'g');
  for (int l = 0; l <= kMaxAngularMomentum; ++l) {
    EXPECT_EQ(shell_momentum(shell_letter(l)), l);
  }
  EXPECT_EQ(shell_momentum('q'), -1);
}

TEST(Cartesian, DoubleFactorial) {
  EXPECT_DOUBLE_EQ(double_factorial_odd(0), 1.0);   // (-1)!!
  EXPECT_DOUBLE_EQ(double_factorial_odd(1), 1.0);   // 1!!
  EXPECT_DOUBLE_EQ(double_factorial_odd(2), 3.0);   // 3!!
  EXPECT_DOUBLE_EQ(double_factorial_odd(3), 15.0);  // 5!!
  EXPECT_DOUBLE_EQ(double_factorial_odd(4), 105.0); // 7!!
}

}  // namespace
}  // namespace pastri::qc
