// Failure-injection tests: every decompressor must reject corrupt or
// truncated streams with an exception (never crash, hang, or read out of
// bounds).  Random bit flips and truncations are applied to valid
// streams of every codec.
#include <gtest/gtest.h>

#include <random>

#include "compressors/lossless/fpc.h"
#include "compressors/lossless/lzss.h"
#include "compressors/rpp/rpp.h"
#include "compressors/sz/sz.h"
#include "compressors/zfp/zfp.h"
#include "core/pastri.h"
#include "test_util.h"

namespace pastri {
namespace {

/// Run `decode` over mutated copies of `stream`; success or a thrown
/// std::exception are both acceptable, anything else aborts the test
/// process (caught by the harness as a crash).
template <typename Decode>
void fuzz_stream(const std::vector<std::uint8_t>& stream, Decode&& decode,
                 int trials, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> mutated = stream;
    const int kind = static_cast<int>(gen() % 3);
    if (kind == 0 && !mutated.empty()) {
      // Flip 1-8 random bits.
      const int flips = 1 + static_cast<int>(gen() % 8);
      for (int f = 0; f < flips; ++f) {
        mutated[gen() % mutated.size()] ^=
            static_cast<std::uint8_t>(1u << (gen() % 8));
      }
    } else if (kind == 1 && mutated.size() > 4) {
      mutated.resize(4 + gen() % (mutated.size() - 4));  // truncate
    } else {
      // Append garbage.
      for (int k = 0; k < 16; ++k) {
        mutated.push_back(static_cast<std::uint8_t>(gen()));
      }
    }
    try {
      (void)decode(mutated);
    } catch (const std::exception&) {
      // rejected cleanly
    }
  }
}

std::vector<double> fuzz_payload() {
  const BlockSpec spec{12, 12};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 8; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

TEST(Fuzz, PastriDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  fuzz_stream(
      stream, [](const auto& s) { return decompress(s); }, 300, 1);
}

TEST(Fuzz, SzDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  baselines::SzParams p;
  const auto stream = baselines::sz_compress(data, p);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::sz_decompress(s); },
      200, 2);
}

TEST(Fuzz, ZfpDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  baselines::ZfpParams p;
  const auto stream = baselines::zfp_compress(data, p);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::zfp_decompress(s); },
      200, 3);
}

TEST(Fuzz, LzssDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(data.data()),
      data.size() * sizeof(double));
  const auto stream = baselines::lzss_compress(bytes);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::lzss_decompress(s); },
      200, 4);
}

TEST(Fuzz, FpcDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  const auto stream = baselines::fpc_compress(data);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::fpc_decompress(s); },
      200, 5);
}

TEST(Fuzz, RppDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  const auto stream = baselines::rpp_compress(data, 1e-10);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::rpp_decompress(s); },
      200, 6);
}

}  // namespace
}  // namespace pastri
