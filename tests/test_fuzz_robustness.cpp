// Failure-injection tests: every decompressor must reject corrupt or
// truncated streams with an exception (never crash, hang, or read out of
// bounds).  Random bit flips and truncations are applied to valid
// streams of every codec.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "compressors/lossless/fpc.h"
#include "compressors/lossless/lzss.h"
#include "compressors/rpp/rpp.h"
#include "compressors/sz/sz.h"
#include "compressors/zfp/zfp.h"
#include "core/pastri.h"
#include "core/pastri_capi.h"
#include "core/stream.h"
#include "io/compressed_file.h"
#include "io/file_per_process.h"
#include "test_util.h"

namespace pastri {
namespace {

/// Run `decode` over mutated copies of `stream`; success or a thrown
/// std::exception are both acceptable, anything else aborts the test
/// process (caught by the harness as a crash).
template <typename Decode>
void fuzz_stream(const std::vector<std::uint8_t>& stream, Decode&& decode,
                 int trials, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint8_t> mutated = stream;
    const int kind = static_cast<int>(gen() % 3);
    if (kind == 0 && !mutated.empty()) {
      // Flip 1-8 random bits.
      const int flips = 1 + static_cast<int>(gen() % 8);
      for (int f = 0; f < flips; ++f) {
        mutated[gen() % mutated.size()] ^=
            static_cast<std::uint8_t>(1u << (gen() % 8));
      }
    } else if (kind == 1 && mutated.size() > 4) {
      mutated.resize(4 + gen() % (mutated.size() - 4));  // truncate
    } else {
      // Append garbage.
      for (int k = 0; k < 16; ++k) {
        mutated.push_back(static_cast<std::uint8_t>(gen()));
      }
    }
    try {
      (void)decode(mutated);
    } catch (const std::exception&) {
      // rejected cleanly
    }
  }
}

/// ASan's throwing operator new aborts the process (instead of raising
/// std::bad_alloc) once an allocation exceeds the sanitizer allocator
/// limit, so the PaSTRI harnesses mimic libFuzzer's malloc_limit: a
/// mutant whose *declared* decoded size is absurd is skipped.  In plain
/// builds such streams throw std::bad_alloc, which fuzz_stream already
/// accepts as a clean rejection.
constexpr std::size_t kMaxDecodedDoubles = std::size_t{1} << 24;

bool pastri_decode_in_budget(std::span<const std::uint8_t> s) {
  try {
    const StreamInfo info = peek_info(s);
    const std::size_t bs = info.spec.block_size();
    return bs == 0 || info.num_blocks <= kMaxDecodedDoubles / bs;
  } catch (const std::exception&) {
    return true;  // corrupt header: decoding throws before allocating
  }
}

std::vector<double> fuzz_payload() {
  const BlockSpec spec{12, 12};
  std::vector<double> data;
  for (std::uint64_t b = 0; b < 8; ++b) {
    auto block = testutil::noisy_pattern_block(spec, 1e-6, b);
    data.insert(data.end(), block.begin(), block.end());
  }
  return data;
}

TEST(Fuzz, PastriDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  fuzz_stream(
      stream,
      [](const auto& s) {
        if (!pastri_decode_in_budget(s)) return std::vector<double>{};
        return decompress(s);
      },
      300, 1);
}

TEST(Fuzz, PastriRandomAccessNeverCrashes) {
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  fuzz_stream(
      stream,
      [](const auto& s) {
        std::vector<double> out;
        if (!pastri_decode_in_budget(s)) return out;
        const BlockReader reader(s);
        for (std::size_t b = 0; b < reader.num_blocks(); ++b) {
          const auto block = reader.read_block(b);
          out.insert(out.end(), block.begin(), block.end());
        }
        return out;
      },
      300, 7);
  fuzz_stream(
      stream,
      [](const auto& s) {
        if (!pastri_decode_in_budget(s)) return std::vector<double>{};
        return decompress_block_at(s, 3);
      },
      300, 8);
}

TEST(Fuzz, PastriStreamConsumerNeverCrashes) {
  // The chunked decoder walks the payloads through a rolling buffer;
  // mutations must surface as exceptions regardless of where the damage
  // lands relative to chunk boundaries.  Small chunk sizes force every
  // refill/compact path.
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{37},
                                  std::size_t{4096}}) {
    fuzz_stream(
        stream,
        [chunk](const auto& s) {
          std::vector<double> out;
          if (!pastri_decode_in_budget(s)) return out;
          SpanSource src(s);
          StreamConsumer c(src,
                           StreamConsumerOptions{.chunk_bytes = chunk});
          std::vector<double> buf(c.info().spec.block_size());
          while (c.read_blocks(buf) > 0) {
            out.insert(out.end(), buf.begin(), buf.end());
          }
          return out;
        },
        200, 11 + static_cast<std::uint64_t>(chunk));
  }
}

TEST(Fuzz, PastriStreamConsumerTruncationInsideChunk) {
  // Hard truncations at every byte position near payload boundaries:
  // the consumer must either finish cleanly (truncation past the last
  // needed byte) or throw -- never hang waiting for bytes or read OOB.
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  for (std::size_t cut = 0; cut <= stream.size(); cut += 7) {
    std::vector<std::uint8_t> clipped(stream.begin(),
                                      stream.begin() + cut);
    try {
      SpanSource src(clipped);
      StreamConsumer c(src, StreamConsumerOptions{.chunk_bytes = 64});
      std::vector<double> buf(c.info().spec.block_size());
      while (c.read_blocks(buf) > 0) {
      }
    } catch (const std::exception&) {
      // rejected cleanly
    }
  }
}

TEST(Fuzz, ShardAppendCorruptFooterNeverCrashes) {
  // Appending re-parses the shard's footer and offset table; a corrupt
  // or clipped tail must be rejected with an exception, and the shard
  // file must be left unmodified by the failed open.
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "pastri_fuzz_append";
  fs::create_directories(dir);
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  const std::string path = io::rank_file_path(dir.string(), "shard", 0);
  std::mt19937_64 gen(21);
  for (int t = 0; t < 200; ++t) {
    std::vector<std::uint8_t> mutated = stream;
    const std::size_t tail = std::min<std::size_t>(40, mutated.size());
    if (t % 2 == 0) {
      const int flips = 1 + static_cast<int>(gen() % 6);
      for (int f = 0; f < flips; ++f) {
        const std::size_t at = mutated.size() - 1 - gen() % tail;
        mutated[at] ^= static_cast<std::uint8_t>(1u << (gen() % 8));
      }
    } else {
      mutated.resize(mutated.size() - 1 - gen() % tail);
    }
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(mutated.data()),
              static_cast<std::streamsize>(mutated.size()));
    }
    try {
      io::ShardWriter w(dir.string(), "shard", 0, p);
      w.put_block(std::vector<double>(144, 0.5));
      w.finish();
    } catch (const std::exception&) {
      // A failed append-open must not have altered the file.
      std::error_code ec;
      EXPECT_EQ(fs::file_size(path, ec), mutated.size()) << t;
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(Fuzz, PastriIndexFooterNeverCrashes) {
  // Target the index footer and offset table specifically: mutate only
  // the last 32 bytes (footer is 20, table a few more) plus hard
  // truncations into them.  Decoders must throw, never read OOB.
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  std::mt19937_64 gen(9);
  for (int t = 0; t < 400; ++t) {
    std::vector<std::uint8_t> mutated = stream;
    if (t % 2 == 0) {
      const std::size_t tail = std::min<std::size_t>(32, mutated.size());
      const int flips = 1 + static_cast<int>(gen() % 6);
      for (int f = 0; f < flips; ++f) {
        const std::size_t at = mutated.size() - 1 - gen() % tail;
        mutated[at] ^= static_cast<std::uint8_t>(1u << (gen() % 8));
      }
    } else {
      mutated.resize(mutated.size() - 1 - gen() % 28);  // clip the tail
    }
    try {
      const BlockReader reader(mutated);
      for (std::size_t b = 0; b < reader.num_blocks(); ++b) {
        (void)reader.read_block(b);
      }
    } catch (const std::exception&) {
      // rejected cleanly
    }
  }
}

TEST(Fuzz, CApiReturnsStatusCodesNeverAborts) {
  // The C boundary must translate every failure on a mutated stream
  // into a pastri_status -- an exception escaping through extern "C"
  // would std::terminate (and a sanitizer build would flag any OOB
  // read long before that).
  const auto data = fuzz_payload();
  Params p;
  const auto stream = compress(data, BlockSpec{12, 12}, p);
  const auto is_status = [](pastri_status st) {
    return st == PASTRI_OK || st == PASTRI_ERR_INVALID_ARGUMENT ||
           st == PASTRI_ERR_CORRUPT_STREAM || st == PASTRI_ERR_INTERNAL ||
           st == PASTRI_ERR_IO;
  };
  fuzz_stream(
      stream,
      [&](const auto& s) {
        if (!pastri_decode_in_budget(s)) return 0;
        double* out = nullptr;
        size_t out_count = 0;
        const pastri_status st =
            pastri_decompress_buffer(s.data(), s.size(), &out, &out_count);
        EXPECT_TRUE(is_status(st));
        if (st != PASTRI_OK) {
          EXPECT_NE(pastri_last_error_message()[0], '\0');
        }
        pastri_free(out);
        return 0;
      },
      300, 31);
  fuzz_stream(
      stream,
      [&](const auto& s) {
        if (!pastri_decode_in_budget(s)) return 0;
        double out[144];
        EXPECT_TRUE(is_status(
            pastri_decompress_block(s.data(), s.size(), 3, out, 144)));
        return 0;
      },
      300, 32);
  fuzz_stream(
      stream,
      [&](const auto& s) {
        double eb = 0;
        size_t nsb = 0, sbs = 0, nb = 0;
        EXPECT_TRUE(is_status(
            pastri_peek(s.data(), s.size(), &eb, &nsb, &sbs, &nb)));
        return 0;
      },
      300, 33);
}

TEST(Fuzz, SzDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  baselines::SzParams p;
  const auto stream = baselines::sz_compress(data, p);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::sz_decompress(s); },
      200, 2);
}

TEST(Fuzz, ZfpDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  baselines::ZfpParams p;
  const auto stream = baselines::zfp_compress(data, p);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::zfp_decompress(s); },
      200, 3);
}

TEST(Fuzz, LzssDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(data.data()),
      data.size() * sizeof(double));
  const auto stream = baselines::lzss_compress(bytes);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::lzss_decompress(s); },
      200, 4);
}

TEST(Fuzz, FpcDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  const auto stream = baselines::fpc_compress(data);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::fpc_decompress(s); },
      200, 5);
}

TEST(Fuzz, RppDecompressorNeverCrashes) {
  const auto data = fuzz_payload();
  const auto stream = baselines::rpp_compress(data, 1e-10);
  fuzz_stream(
      stream, [](const auto& s) { return baselines::rpp_decompress(s); },
      200, 6);
}

}  // namespace
}  // namespace pastri
