// Differential tests pinning the SIMD bit-identity contract: every
// kernel in every vector backend (AVX2, AVX-512, NEON -- whichever this
// host supports) must match the scalar backend exactly -- same doubles,
// same int64s, same stats, and (end to end) the same compressed bytes
// and the same decoded values -- across sub-block sizes, unaligned
// spans, all five scaling metrics, and the floating-point edge cases
// the vector paths special-case (exact .5 fractions, saturating
// magnitudes, NaN/Inf, denormals, negative zero).  The decode kernels
// are additionally diffed against BitReader itself, the serial ground
// truth they replace.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "bitio/bit_reader.h"
#include "bitio/bit_writer.h"
#include "core/ecq_tree.h"
#include "core/pastri.h"
#include "core/simd/simd.h"

namespace pastri {
namespace {

using simd::Backend;

const simd::EncodeKernels& encode_table(Backend b) {
  switch (b) {
    case Backend::Avx2: return simd::kAvx2Kernels;
    case Backend::Avx512: return simd::kAvx512Kernels;
    case Backend::Neon: return simd::kNeonKernels;
    default: return simd::kScalarKernels;
  }
}

const simd::DecodeKernels& decode_table(Backend b) {
  switch (b) {
    case Backend::Avx2: return simd::kAvx2Decode;
    case Backend::Avx512: return simd::kAvx512Decode;
    case Backend::Neon: return simd::kNeonDecode;
    default: return simd::kScalarDecode;
  }
}

/// The vector tiers this host can actually run (tables of unsupported
/// tiers may contain instructions the CPU lacks -- never call those).
std::vector<Backend> vector_backends() {
  std::vector<Backend> v;
  for (Backend b : {Backend::Avx2, Backend::Avx512, Backend::Neon}) {
    if (simd::backend_supported(b)) v.push_back(b);
  }
  return v;
}

/// Restore the CPUID/env-selected backend when a test body returns.
struct BackendGuard {
  ~BackendGuard() { simd::refresh_backend_from_env(); }
};

/// Values exercising every special case in the vector round/convert
/// paths: exact halves (round-half-away vs round-half-even), the magic
/// bias validity limit, llround saturation, non-finite, denormal, -0.0.
std::vector<double> edge_values() {
  return {
      0.0,
      -0.0,
      0.5,
      -0.5,
      1.5,
      -1.5,
      2.5,
      -2.5,
      0.49999999999999994,   // nearest double below 0.5: must round to 0
      -0.49999999999999994,
      4503599627370496.0,    // 2^52: integer-valued, at rounding limit
      2251799813685248.0,    // 2^51: magic-bias fast-path boundary
      2251799813685249.0,
      -2251799813685248.5,
      9.2e18,                // llround saturation probe threshold
      -9.2e18,
      1e300,
      -1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1e-300,
  };
}

/// Deterministic mixed payload: smooth pattern-scaled values plus a
/// sprinkling of edge values, sized with `pad` leading doubles so the
/// span handed to the kernels starts at any lane offset.
std::vector<double> make_payload(std::size_t n, std::size_t pad,
                                 std::uint32_t seed, bool with_edges) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  const auto edges = edge_values();
  std::vector<double> buf(pad + n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = std::exp(-0.02 * static_cast<double>(i)) * uni(rng);
    if (with_edges && rng() % 7 == 0) {
      v = edges[rng() % edges.size()];
    }
    buf[pad + i] = v;
  }
  return buf;
}

TEST(SimdDiff, WidestSupportedBackendIsActiveByDefault) {
  BackendGuard guard;
  simd::refresh_backend_from_env();
  if (std::getenv("PASTRI_SIMD") != nullptr) {
    GTEST_SKIP() << "PASTRI_SIMD override active in the environment";
  }
  // Priority: avx512 > avx2 > neon > scalar (simd.cpp).
  Backend expect = Backend::Scalar;
  if (simd::backend_supported(Backend::Neon)) expect = Backend::Neon;
  if (simd::backend_supported(Backend::Avx2)) expect = Backend::Avx2;
  if (simd::backend_supported(Backend::Avx512)) expect = Backend::Avx512;
  EXPECT_EQ(simd::active_backend(), expect);
}

TEST(SimdDiff, EnvOverrideSelectsEveryNamedTier) {
  BackendGuard guard;
  ::setenv("PASTRI_SIMD", "scalar", 1);
  simd::refresh_backend_from_env();
  EXPECT_EQ(simd::active_backend(), Backend::Scalar);
  for (Backend b :
       {Backend::Avx2, Backend::Avx512, Backend::Neon}) {
    ::setenv("PASTRI_SIMD", simd::backend_name(b), 1);
    simd::refresh_backend_from_env();
    if (simd::backend_supported(b)) {
      EXPECT_EQ(simd::active_backend(), b) << simd::backend_name(b);
    } else {
      // Unsupported requests fall back to the safe tier, never crash.
      EXPECT_EQ(simd::active_backend(), Backend::Scalar)
          << simd::backend_name(b);
    }
  }
  ::setenv("PASTRI_SIMD", "bogus-tier", 1);
  simd::refresh_backend_from_env();
  EXPECT_EQ(simd::active_backend(), Backend::Scalar);
  ::unsetenv("PASTRI_SIMD");
}

TEST(SimdDiff, ScanKernelsMatchAcrossSizesAndOffsets) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  const simd::EncodeKernels& s = simd::kScalarKernels;
  for (Backend tier : tiers) {
    const simd::EncodeKernels& v = encode_table(tier);
    for (std::size_t n = 1; n <= 100; ++n) {
      for (std::size_t pad = 0; pad < 4; ++pad) {
        const auto buf =
            make_payload(n, pad, static_cast<std::uint32_t>(n * 4 + pad),
                         /*with_edges=*/true);
        const double* x = buf.data() + pad;
        const double m_s = s.abs_max(x, n);
        const double m_v = v.abs_max(x, n);
        // Bitwise comparison: +0.0 vs -0.0 and NaN handling must agree.
        EXPECT_EQ(std::memcmp(&m_s, &m_v, sizeof m_s), 0)
            << simd::backend_name(tier) << " abs_max n=" << n
            << " pad=" << pad;
        EXPECT_EQ(s.find_first_abs_eq(x, n, m_s),
                  v.find_first_abs_eq(x, n, m_s))
            << simd::backend_name(tier) << " find_first_abs_eq n=" << n
            << " pad=" << pad;
        for (double bound : {0.0, 1e-12, 0.25, 1e299}) {
          EXPECT_EQ(s.any_abs_above(x, n, bound),
                    v.any_abs_above(x, n, bound))
              << simd::backend_name(tier) << " any_abs_above n=" << n
              << " pad=" << pad << " b=" << bound;
        }
      }
    }
  }
}

TEST(SimdDiff, QuantizeSignedMatchesAcrossSizesOffsetsAndWidths) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  const simd::EncodeKernels& s = simd::kScalarKernels;
  for (Backend tier : tiers) {
    const simd::EncodeKernels& v = encode_table(tier);
    for (std::size_t n = 1; n <= 100; n += (n < 12 ? 1 : 7)) {
      for (std::size_t pad = 0; pad < 4; ++pad) {
        const auto buf = make_payload(
            n, pad, static_cast<std::uint32_t>(1000 + n + pad),
            /*with_edges=*/true);
        const double* x = buf.data() + pad;
        for (unsigned nbits : {2u, 11u, 31u, 52u, 54u}) {
          for (double binsize : {2e-10, 1.0, 0.5, 1e-300}) {
            std::vector<std::int64_t> qs(n), qv(n);
            std::vector<double> rs(n), rv(n);
            s.quantize_signed(x, n, binsize, nbits, binsize, qs.data(),
                              rs.data());
            v.quantize_signed(x, n, binsize, nbits, binsize, qv.data(),
                              rv.data());
            EXPECT_EQ(qs, qv)
                << simd::backend_name(tier) << " n=" << n << " pad=" << pad
                << " nbits=" << nbits << " bin=" << binsize;
            EXPECT_EQ(
                std::memcmp(rs.data(), rv.data(), n * sizeof(double)), 0)
                << simd::backend_name(tier) << " recon n=" << n
                << " nbits=" << nbits;
          }
        }
      }
    }
  }
}

TEST(SimdDiff, QuantizeSignedEdgeValuesExactly) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  // Every edge value at every lane position of an 8-wide vector (covers
  // all lanes of every tier's width).
  const auto edges = edge_values();
  for (Backend tier : tiers) {
    for (std::size_t lane = 0; lane < 8; ++lane) {
      for (double e : edges) {
        std::vector<double> x(8, 0.25);
        x[lane] = e;
        std::vector<std::int64_t> qs(8), qv(8);
        std::vector<double> rs(8), rv(8);
        simd::kScalarKernels.quantize_signed(x.data(), 8, 1.0, 54, 1.0,
                                             qs.data(), rs.data());
        encode_table(tier).quantize_signed(x.data(), 8, 1.0, 54, 1.0,
                                           qv.data(), rv.data());
        EXPECT_EQ(qs, qv) << simd::backend_name(tier) << " edge=" << e
                          << " lane=" << lane;
      }
    }
  }
}

TEST(SimdDiff, EcqResidualMatchesAndCountsAreExact) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  std::mt19937 rng(99);
  for (Backend tier : tiers) {
    for (std::size_t sbs = 1; sbs <= 100; sbs += (sbs < 10 ? 1 : 9)) {
      for (std::size_t nsb : {1, 3, 16}) {
        const std::size_t n = nsb * sbs;
        auto buf =
            make_payload(n, 0, static_cast<std::uint32_t>(sbs * 131),
                         /*with_edges=*/true);
        std::vector<double> p_hat(sbs), s_hat(nsb);
        std::uniform_real_distribution<double> uni(-1.0, 1.0);
        for (auto& p : p_hat) p = uni(rng);
        for (auto& sc : s_hat) sc = uni(rng);
        const double binsize = 2e-4;
        std::vector<std::int64_t> es(n), ev(n);
        simd::EcqStats sts, stv;
        simd::kScalarKernels.ecq_residual(buf.data(), nsb, sbs,
                                          p_hat.data(), s_hat.data(),
                                          binsize, es.data(), &sts);
        encode_table(tier).ecq_residual(buf.data(), nsb, sbs,
                                        p_hat.data(), s_hat.data(),
                                        binsize, ev.data(), &stv);
        ASSERT_EQ(es, ev) << simd::backend_name(tier) << " sbs=" << sbs
                          << " nsb=" << nsb;
        EXPECT_EQ(sts.max_magnitude, stv.max_magnitude);
        EXPECT_EQ(sts.num_outliers, stv.num_outliers);
        EXPECT_EQ(sts.num_plus1, stv.num_plus1);
        EXPECT_EQ(sts.num_minus1, stv.num_minus1);
        // The stats must also agree with a direct count of the output.
        std::size_t outliers = 0, plus1 = 0, minus1 = 0;
        std::uint64_t max_mag = 0;
        for (std::int64_t e : es) {
          if (e == 0) continue;
          ++outliers;
          if (e == 1) ++plus1;
          if (e == -1) ++minus1;
          const std::uint64_t mag =
              e > 0 ? static_cast<std::uint64_t>(e)
                    : static_cast<std::uint64_t>(-(e + 1)) + 1;
          if (mag > max_mag) max_mag = mag;
        }
        EXPECT_EQ(sts.num_outliers, outliers);
        EXPECT_EQ(sts.num_plus1, plus1);
        EXPECT_EQ(sts.num_minus1, minus1);
        EXPECT_EQ(sts.max_magnitude, max_mag);
      }
    }
  }
}

TEST(SimdDiff, CountedDenseBitsEqualWalkedDenseBits) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> small(-40, 40);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng() % 300;
    std::vector<std::int64_t> ecq(n);
    std::size_t outliers = 0, plus1 = 0, minus1 = 0;
    unsigned ecb_max = 1;
    for (auto& e : ecq) {
      e = rng() % 3 == 0 ? small(rng) : (rng() % 2 == 0 ? 0 : 1);
      if (e == 0) continue;
      ++outliers;
      if (e == 1) ++plus1;
      if (e == -1) ++minus1;
      ecb_max = std::max(ecb_max, ecq_bin(e));
    }
    for (EcqTree t : {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                      EcqTree::Tree5}) {
      ASSERT_TRUE(ecq_dense_bits_countable(t));
      EXPECT_EQ(ecq_encoded_bits_counted(t, n, outliers, plus1, minus1,
                                         ecb_max),
                ecq_encoded_bits(t, ecq, ecb_max))
          << ecq_tree_name(t) << " trial=" << trial;
    }
    EXPECT_FALSE(ecq_dense_bits_countable(EcqTree::Tree4));
  }
}

TEST(SimdDiff, EncodeRunBitIdenticalToPerSymbolEncode) {
  std::mt19937 rng(13);
  std::uniform_int_distribution<std::int64_t> wide(-5000, 5000);
  for (EcqTree t : {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                    EcqTree::Tree4, EcqTree::Tree5}) {
    for (unsigned ecb_max : {2u, 6u, 14u, 40u, 64u}) {
      std::vector<std::int64_t> ecq(977);
      for (auto& e : ecq) {
        const int c = static_cast<int>(rng() % 10);
        e = c < 6 ? 0 : (c < 8 ? (rng() % 2 ? 1 : -1) : wide(rng));
        if (ecq_bin(e) > ecb_max) e = 0;
      }
      bitio::BitWriter ref, run;
      for (std::int64_t v : ecq) ecq_encode_fast(ref, t, v, ecb_max);
      ecq_encode_run(run, t, ecq, ecb_max);
      EXPECT_EQ(ref.bit_count(), run.bit_count())
          << ecq_tree_name(t) << " ecb=" << ecb_max;
      const auto ref_bytes = ref.finish_view();
      const auto run_bytes = run.finish_view();
      ASSERT_EQ(ref_bytes.size(), run_bytes.size());
      EXPECT_TRUE(std::memcmp(ref_bytes.data(), run_bytes.data(),
                              ref_bytes.size()) == 0)
          << ecq_tree_name(t) << " ecb=" << ecb_max;
    }
  }
}

// ---- Decode kernel diffs ------------------------------------------------

/// unpack_signed vs BitReader::read_signed_run (the serial ground
/// truth) and vs the scalar decode table, over sizes 1..100, all eight
/// start-bit offsets, and widths spanning the gather/window/tail paths.
TEST(SimdDiff, UnpackSignedMatchesBitReaderAcrossWidthsAndOffsets) {
  std::mt19937_64 rng(4242);
  const auto tiers = vector_backends();
  for (unsigned nbits : {1u, 2u, 7u, 11u, 31u, 52u, 54u, 57u}) {
    for (std::size_t n = 1; n <= 100; n += (n < 12 ? 1 : 7)) {
      for (unsigned offset = 0; offset < 8; ++offset) {
        // Author a payload with BitWriter: `offset` junk bits, then a
        // signed run of extreme and random values.
        std::vector<std::int64_t> truth(n);
        const std::int64_t hi =
            nbits >= 64 ? std::numeric_limits<std::int64_t>::max()
                        : (std::int64_t{1} << (nbits - 1)) - 1;
        const std::int64_t lo = -hi - 1;
        for (std::size_t i = 0; i < n; ++i) {
          switch (rng() % 4) {
            case 0: truth[i] = hi; break;
            case 1: truth[i] = lo; break;
            case 2: truth[i] = 0; break;
            default:
              truth[i] = static_cast<std::int64_t>(rng()) % (hi + 1);
          }
        }
        bitio::BitWriter w;
        if (offset != 0) w.write_bits(0x55, offset);
        w.write_signed_run(truth, nbits);
        const auto bytes = w.finish_view();

        bitio::BitReader r(bytes);
        r.skip_bits(offset);
        std::vector<std::int64_t> via_reader(n);
        r.read_signed_run(nbits, via_reader);
        ASSERT_EQ(via_reader, truth)
            << "BitReader ground truth nbits=" << nbits;

        std::vector<std::int64_t> got(n);
        simd::kScalarDecode.unpack_signed(bytes.data(), bytes.size(),
                                          offset, nbits, got.data(), n);
        ASSERT_EQ(got, truth) << "scalar nbits=" << nbits << " n=" << n
                              << " offset=" << offset;
        for (Backend tier : tiers) {
          std::vector<std::int64_t> vec(n, -777);
          decode_table(tier).unpack_signed(bytes.data(), bytes.size(),
                                           offset, nbits, vec.data(), n);
          ASSERT_EQ(vec, truth)
              << simd::backend_name(tier) << " nbits=" << nbits
              << " n=" << n << " offset=" << offset;
        }
      }
    }
  }
}

/// unpack_pairs vs a per-record BitReader walk, including the wide
/// (idx_bits + val_bits > 57) records that force the two-load path.
TEST(SimdDiff, UnpackPairsMatchesBitReaderAcrossWidths) {
  std::mt19937_64 rng(777);
  const auto tiers = vector_backends();
  for (unsigned idx_bits : {1u, 5u, 12u, 17u}) {
    for (unsigned val_bits : {2u, 11u, 40u, 57u, 63u}) {
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{17}, std::size_t{64}}) {
        for (unsigned offset : {0u, 3u, 7u}) {
          std::vector<std::uint64_t> idx_truth(n);
          std::vector<std::int64_t> val_truth(n);
          bitio::BitWriter w;
          if (offset != 0) w.write_bits(0x2A, offset);
          for (std::size_t k = 0; k < n; ++k) {
            idx_truth[k] = rng() & ((std::uint64_t{1} << idx_bits) - 1);
            const std::int64_t hi =
                (std::int64_t{1} << (val_bits - 1)) - 1;
            const std::int64_t v = static_cast<std::int64_t>(rng());
            val_truth[k] = k % 5 == 0 ? hi : (k % 5 == 1 ? -hi - 1
                                                         : v % (hi + 1));
            w.write_bits(idx_truth[k], idx_bits);
            w.write_signed(val_truth[k], val_bits);
          }
          const auto bytes = w.finish_view();
          std::vector<std::uint64_t> idx_s(n);
          std::vector<std::int64_t> val_s(n);
          simd::kScalarDecode.unpack_pairs(bytes.data(), bytes.size(),
                                           offset, idx_bits, val_bits,
                                           idx_s.data(), val_s.data(), n);
          ASSERT_EQ(idx_s, idx_truth)
              << "scalar idx ib=" << idx_bits << " vb=" << val_bits;
          ASSERT_EQ(val_s, val_truth)
              << "scalar val ib=" << idx_bits << " vb=" << val_bits;
          for (Backend tier : tiers) {
            std::vector<std::uint64_t> idx_v(n, 999999);
            std::vector<std::int64_t> val_v(n, -777);
            decode_table(tier).unpack_pairs(bytes.data(), bytes.size(),
                                            offset, idx_bits, val_bits,
                                            idx_v.data(), val_v.data(),
                                            n);
            ASSERT_EQ(idx_v, idx_truth)
                << simd::backend_name(tier) << " ib=" << idx_bits
                << " vb=" << val_bits << " n=" << n << " off=" << offset;
            ASSERT_EQ(val_v, val_truth)
                << simd::backend_name(tier) << " ib=" << idx_bits
                << " vb=" << val_bits << " n=" << n << " off=" << offset;
          }
        }
      }
    }
  }
}

TEST(SimdDiff, ApplyBaseMatchesScalarAcrossSizes) {
  std::mt19937_64 rng(31337);
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  for (std::size_t n = 0; n <= 70; n += (n < 10 ? 1 : 13)) {
    std::vector<std::int64_t> base(n), devs(n);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = static_cast<std::int64_t>(rng());
      devs[i] = static_cast<std::int64_t>(rng() % 1000) - 500;
    }
    std::vector<std::int64_t> want = devs;
    simd::kScalarDecode.apply_base_i64(want.data(), base.data(), n);
    for (Backend tier : tiers) {
      std::vector<std::int64_t> got = devs;
      decode_table(tier).apply_base_i64(got.data(), base.data(), n);
      EXPECT_EQ(got, want) << simd::backend_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdDiff, ScatterEcqMatchesScalarAndRejectsOutOfRange) {
  std::mt19937_64 rng(2024);
  const auto tiers = vector_backends();
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{36},
                        std::size_t{100}}) {
    for (std::size_t nol = 0; nol <= n; nol += (nol < 4 ? 1 : 7)) {
      std::vector<std::uint64_t> idx(nol);
      std::vector<std::int64_t> val(nol);
      for (std::size_t k = 0; k < nol; ++k) {
        idx[k] = rng() % n;  // duplicates allowed: last record wins
        val[k] = static_cast<std::int64_t>(rng() % 2001) - 1000;
      }
      std::vector<std::int64_t> want(n, -9);
      ASSERT_TRUE(simd::kScalarDecode.scatter_ecq(want.data(), n,
                                                  idx.data(), val.data(),
                                                  nol));
      for (Backend tier : tiers) {
        std::vector<std::int64_t> got(n, 42);
        ASSERT_TRUE(decode_table(tier).scatter_ecq(
            got.data(), n, idx.data(), val.data(), nol))
            << simd::backend_name(tier);
        EXPECT_EQ(got, want)
            << simd::backend_name(tier) << " n=" << n << " nol=" << nol;
      }
      // One out-of-range index anywhere must fail on every backend.
      if (nol > 0) {
        auto bad = idx;
        bad[rng() % nol] = n;
        EXPECT_FALSE(simd::kScalarDecode.scatter_ecq(
            want.data(), n, bad.data(), val.data(), nol));
        for (Backend tier : tiers) {
          std::vector<std::int64_t> got(n, 42);
          EXPECT_FALSE(decode_table(tier).scatter_ecq(
              got.data(), n, bad.data(), val.data(), nol))
              << simd::backend_name(tier);
        }
      }
    }
  }
}

/// reconstruct: bitwise-identical doubles on every backend across
/// geometries, widths (including the > 52-bit codes that force the
/// AVX2 scalar fallback), denormal bin sizes, saturated codes, negative
/// scales (the -0.0 + 0.0 case), empty (all-zero) ECQ.
TEST(SimdDiff, ReconstructBitExactAcrossBackends) {
  std::mt19937_64 rng(555);
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  for (std::size_t sbs = 1; sbs <= 100; sbs += (sbs < 10 ? 1 : 11)) {
    for (std::size_t nsb : {1, 3, 16}) {
      for (unsigned bits : {2u, 31u, 52u, 54u}) {
        for (unsigned ecb_max : {1u, 5u, 52u, 63u}) {
          const std::int64_t pmax = (std::int64_t{1} << (bits - 1)) - 1;
          std::vector<std::int64_t> pq(sbs), sq(nsb),
              ecq(nsb * sbs, 0);
          for (auto& p : pq) {
            p = static_cast<std::int64_t>(rng()) % (pmax + 1);
          }
          for (auto& s : sq) {
            s = static_cast<std::int64_t>(rng()) % (pmax + 1);
          }
          if (ecb_max >= 2) {
            const std::int64_t emax =
                (std::int64_t{1} << (ecb_max - 1)) - 1;
            for (auto& e : ecq) {
              const auto c = rng() % 4;
              e = c == 0 ? 0
                         : (c == 1 ? emax
                                   : (c == 2 ? -emax - 1
                                             : static_cast<std::int64_t>(
                                                   rng() % 7) -
                                                   3));
            }
          }
          for (double pattern_bin : {2e-10, 1e-300}) {
            const double scale_bin =
                std::ldexp(1.0, 1 - static_cast<int>(bits));
            std::vector<double> scratch_s(sbs), out_s(nsb * sbs);
            simd::kScalarDecode.reconstruct(
                pq.data(), sq.data(), ecq.data(), nsb, sbs, pattern_bin,
                scale_bin, pattern_bin, bits, ecb_max, scratch_s.data(),
                out_s.data());
            for (Backend tier : tiers) {
              std::vector<double> scratch_v(sbs), out_v(nsb * sbs, 7.0);
              decode_table(tier).reconstruct(
                  pq.data(), sq.data(), ecq.data(), nsb, sbs,
                  pattern_bin, scale_bin, pattern_bin, bits, ecb_max,
                  scratch_v.data(), out_v.data());
              ASSERT_EQ(std::memcmp(out_s.data(), out_v.data(),
                                    out_s.size() * sizeof(double)),
                        0)
                  << simd::backend_name(tier) << " sbs=" << sbs
                  << " nsb=" << nsb << " bits=" << bits
                  << " ecb=" << ecb_max << " pbin=" << pattern_bin;
            }
          }
        }
      }
    }
  }
}

/// Signed zero discipline: a zero pattern code times a negative scale
/// is -0.0; adding the (always-present) zero ECQ term must normalize it
/// to +0.0 identically on every backend.
TEST(SimdDiff, ReconstructNegativeZeroIdentical) {
  const auto tiers = vector_backends();
  const std::size_t sbs = 9, nsb = 3;
  std::vector<std::int64_t> pq(sbs, 0), sq(nsb, -1),
      ecq(nsb * sbs, 0);
  std::vector<double> scratch(sbs), want(nsb * sbs), got(nsb * sbs);
  simd::kScalarDecode.reconstruct(pq.data(), sq.data(), ecq.data(), nsb,
                                  sbs, 2e-10, 0.5, 2e-10, 11, 1,
                                  scratch.data(), want.data());
  for (double v : want) {
    EXPECT_FALSE(std::signbit(v)) << "scalar must produce +0.0";
  }
  for (Backend tier : tiers) {
    decode_table(tier).reconstruct(pq.data(), sq.data(), ecq.data(), nsb,
                                   sbs, 2e-10, 0.5, 2e-10, 11, 1,
                                   scratch.data(), got.data());
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          want.size() * sizeof(double)),
              0)
        << simd::backend_name(tier);
  }
}

// ---- Full-stream identity ----------------------------------------------

/// End-to-end: identical compressed streams from every backend for all
/// five metrics, both bound modes, several geometries (including
/// sub-block sizes that are not multiples of any vector width).
TEST(SimdDiff, FullStreamsBitIdenticalAcrossBackends) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  BackendGuard guard;
  const BlockSpec specs[] = {{1, 1}, {3, 5}, {16, 24}, {10, 100}, {7, 33}};
  for (const BlockSpec& spec : specs) {
    for (ScalingMetric metric : {ScalingMetric::FR, ScalingMetric::ER,
                                 ScalingMetric::AR, ScalingMetric::AAR,
                                 ScalingMetric::IS}) {
      for (BoundMode mode : {BoundMode::Absolute, BoundMode::BlockRelative}) {
        Params p;
        p.metric = metric;
        p.bound_mode = mode;
        p.error_bound = mode == BoundMode::Absolute ? 1e-10 : 1e-8;
        const std::size_t blocks = 24;
        auto data = make_payload(blocks * spec.block_size(), 0,
                                 static_cast<std::uint32_t>(
                                     spec.block_size() * 17 +
                                     static_cast<unsigned>(metric)),
                                 /*with_edges=*/false);
        // A few all-zero and all-edge blocks in the mix.
        std::fill_n(data.begin(), spec.block_size(), 0.0);
        simd::force_backend(Backend::Scalar);
        const auto scalar_stream = compress(data, spec, p);
        for (Backend tier : tiers) {
          simd::force_backend(tier);
          const auto vec_stream = compress(data, spec, p);
          ASSERT_EQ(scalar_stream, vec_stream)
              << simd::backend_name(tier) << " "
              << scaling_metric_name(metric)
              << " mode=" << static_cast<int>(mode)
              << " nsb=" << spec.num_sub_blocks
              << " sbs=" << spec.sub_block_size;
        }
        // And the stream still round-trips within bound.
        const auto back = decompress(scalar_stream);
        ASSERT_EQ(back.size(), data.size());
      }
    }
  }
}

/// End-to-end decode: every backend decodes the same stream to
/// bitwise-identical doubles, across all five metrics and both bound
/// modes, for plain (v3) and dictionary (v4) streams.  The dictionary
/// stream is seeded with repeating blocks so ExactRef and DeltaRef
/// payloads (the apply_base path) actually occur.
TEST(SimdDiff, FullStreamDecodeValueIdenticalAcrossBackends) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  BackendGuard guard;
  const BlockSpec spec{6, 30};
  for (DictMode dict : {DictMode::Off, DictMode::On}) {
    for (ScalingMetric metric : {ScalingMetric::FR, ScalingMetric::ER,
                                 ScalingMetric::AR, ScalingMetric::AAR,
                                 ScalingMetric::IS}) {
      for (BoundMode mode : {BoundMode::Absolute, BoundMode::BlockRelative}) {
        Params p;
        p.metric = metric;
        p.bound_mode = mode;
        p.error_bound = mode == BoundMode::Absolute ? 1e-10 : 1e-8;
        p.dict = dict;
        const std::size_t blocks = 40;
        auto data = make_payload(blocks * spec.block_size(), 0,
                                 static_cast<std::uint32_t>(
                                     90 + static_cast<unsigned>(metric)),
                                 /*with_edges=*/false);
        // Repeat one block (exact and nearly) so the dictionary emits
        // ExactRef and DeltaRef frames, plus one zero block.
        for (std::size_t b = 4; b < blocks; b += 5) {
          for (std::size_t i = 0; i < spec.block_size(); ++i) {
            const double base = data[2 * spec.block_size() + i];
            data[b * spec.block_size() + i] =
                b % 2 == 0 ? base : base * (1.0 + 1e-13);
          }
        }
        std::fill_n(data.begin() + spec.block_size(), spec.block_size(),
                    0.0);
        const auto stream = compress(data, spec, p);
        simd::force_backend(Backend::Scalar);
        const auto want = decompress(stream);
        ASSERT_EQ(want.size(), data.size());
        for (Backend tier : tiers) {
          simd::force_backend(tier);
          const auto got = decompress(stream);
          ASSERT_EQ(got.size(), want.size());
          ASSERT_EQ(std::memcmp(want.data(), got.data(),
                                want.size() * sizeof(double)),
                    0)
              << simd::backend_name(tier) << " "
              << scaling_metric_name(metric)
              << " mode=" << static_cast<int>(mode)
              << " dict=" << static_cast<int>(dict);
        }
      }
    }
  }
}

/// Sparse-ECQ and empty/all-escape dense payloads decode identically on
/// every backend: blocks engineered to hit (a) the sparse scatter path
/// with few outliers, (b) dense runs where every symbol is an escape,
/// and (c) ECQ-free blocks (ecb_max < 2).
TEST(SimdDiff, SparseAndEscapeHeavyBlocksDecodeIdentically) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  BackendGuard guard;
  const BlockSpec spec{4, 36};
  Params p;
  p.error_bound = 1e-10;
  std::mt19937_64 rng(64);
  std::vector<double> data;
  // Block 0: pure pattern-scaled (no outliers -> ecb_max < 2).
  // Block 1: one huge outlier (sparse path).
  // Block 2: broadband noise (dense, mostly escapes).
  // Block 3: zero block.
  std::vector<double> pattern(spec.sub_block_size);
  for (auto& v : pattern) {
    v = 1e-6 * (1.0 + static_cast<double>(rng() % 1000) / 1000.0);
  }
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t j = 0; j < spec.num_sub_blocks; ++j) {
      const double s = 0.5 + 0.1 * static_cast<double>(j);
      for (std::size_t i = 0; i < spec.sub_block_size; ++i) {
        double v = s * pattern[i];
        if (b == 1 && j == 1 && i == 7) v += 1e-3;
        if (b == 2) {
          v += 1e-7 * (static_cast<double>(rng() % 2000) - 1000.0);
        }
        if (b == 3) v = 0.0;
        data.push_back(v);
      }
    }
  }
  const auto stream = compress(data, spec, p);
  simd::force_backend(Backend::Scalar);
  const auto want = decompress(stream);
  for (Backend tier : tiers) {
    simd::force_backend(tier);
    const auto got = decompress(stream);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(std::memcmp(want.data(), got.data(),
                          want.size() * sizeof(double)),
              0)
        << simd::backend_name(tier);
  }
}

/// Corrupt-stream behaviour is backend-independent: truncations and
/// bit flips that throw on the scalar tier throw on every tier (and
/// decode results, when they do not throw, stay value-identical).
TEST(SimdDiff, CorruptStreamExceptionsMatchAcrossBackends) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  BackendGuard guard;
  const BlockSpec spec{4, 25};
  Params p;
  p.error_bound = 1e-10;
  auto data = make_payload(8 * spec.block_size(), 0, 1234,
                           /*with_edges=*/false);
  const auto stream = compress(data, spec, p);
  // Truncations at every eighth byte + a spread of single bit flips.
  for (std::size_t cut = 8; cut < stream.size(); cut += 8) {
    std::vector<std::uint8_t> trunc(stream.begin(),
                                    stream.begin() + cut);
    simd::force_backend(Backend::Scalar);
    bool scalar_threw = false;
    std::vector<double> scalar_out;
    try {
      scalar_out = decompress(trunc);
    } catch (const std::exception&) {
      scalar_threw = true;
    }
    for (Backend tier : tiers) {
      simd::force_backend(tier);
      bool tier_threw = false;
      std::vector<double> tier_out;
      try {
        tier_out = decompress(trunc);
      } catch (const std::exception&) {
        tier_threw = true;
      }
      EXPECT_EQ(scalar_threw, tier_threw)
          << simd::backend_name(tier) << " cut=" << cut;
      if (!scalar_threw && !tier_threw) {
        EXPECT_EQ(scalar_out, tier_out)
            << simd::backend_name(tier) << " cut=" << cut;
      }
    }
  }
}

/// Sub-block sizes 1..100 under ER (the shipped configuration), scalar
/// vs every vector tier, one block spec per size -- the fused path's
/// geometry sweep, now also checking decoded values bitwise.
TEST(SimdDiff, ErStreamsBitIdenticalForAllSubBlockSizes) {
  const auto tiers = vector_backends();
  if (tiers.empty()) GTEST_SKIP() << "no vector backend on this host";
  BackendGuard guard;
  Params p;
  p.error_bound = 1e-10;
  for (std::size_t sbs = 1; sbs <= 100; ++sbs) {
    const BlockSpec spec{5, sbs};
    auto data = make_payload(8 * spec.block_size(), 0,
                             static_cast<std::uint32_t>(sbs),
                             /*with_edges=*/true);
    // NaN/Inf would (identically) poison both streams but break the
    // round-trip check; strip non-finite values, keep the rest.
    for (auto& v : data) {
      if (!std::isfinite(v)) v = 1e-9;
    }
    simd::force_backend(Backend::Scalar);
    const auto scalar_stream = compress(data, spec, p);
    const auto scalar_values = decompress(scalar_stream);
    for (Backend tier : tiers) {
      simd::force_backend(tier);
      const auto vec_stream = compress(data, spec, p);
      ASSERT_EQ(scalar_stream, vec_stream)
          << simd::backend_name(tier) << " sbs=" << sbs;
      const auto vec_values = decompress(scalar_stream);
      ASSERT_EQ(std::memcmp(scalar_values.data(), vec_values.data(),
                            scalar_values.size() * sizeof(double)),
                0)
          << simd::backend_name(tier) << " sbs=" << sbs;
    }
  }
}

}  // namespace
}  // namespace pastri
