// Differential tests pinning the SIMD bit-identity contract: every
// kernel in the AVX2 backend must match the scalar backend exactly --
// same doubles, same int64s, same stats, and (end to end) the same
// compressed bytes -- across sub-block sizes, unaligned spans, all five
// scaling metrics, and the floating-point edge cases the vector paths
// special-case (exact .5 fractions, saturating magnitudes, NaN/Inf,
// denormals, negative zero).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "bitio/bit_writer.h"
#include "core/ecq_tree.h"
#include "core/pastri.h"
#include "core/simd/simd.h"

namespace pastri {
namespace {

using simd::Backend;

bool avx2_available() {
  return simd::avx2_compiled_in() && simd::backend_supported(Backend::Avx2);
}

/// Restore the CPUID/env-selected backend when a test body returns.
struct BackendGuard {
  ~BackendGuard() { simd::refresh_backend_from_env(); }
};

/// Values exercising every special case in the vector round/convert
/// paths: exact halves (round-half-away vs round-half-even), the magic
/// bias validity limit, llround saturation, non-finite, denormal, -0.0.
std::vector<double> edge_values() {
  return {
      0.0,
      -0.0,
      0.5,
      -0.5,
      1.5,
      -1.5,
      2.5,
      -2.5,
      0.49999999999999994,   // nearest double below 0.5: must round to 0
      -0.49999999999999994,
      4503599627370496.0,    // 2^52: integer-valued, at rounding limit
      2251799813685248.0,    // 2^51: magic-bias fast-path boundary
      2251799813685249.0,
      -2251799813685248.5,
      9.2e18,                // llround saturation probe threshold
      -9.2e18,
      1e300,
      -1e300,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1e-300,
  };
}

/// Deterministic mixed payload: smooth pattern-scaled values plus a
/// sprinkling of edge values, sized with `pad` leading doubles so the
/// span handed to the kernels starts at any lane offset.
std::vector<double> make_payload(std::size_t n, std::size_t pad,
                                 std::uint32_t seed, bool with_edges) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  const auto edges = edge_values();
  std::vector<double> buf(pad + n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = std::exp(-0.02 * static_cast<double>(i)) * uni(rng);
    if (with_edges && rng() % 7 == 0) {
      v = edges[rng() % edges.size()];
    }
    buf[pad + i] = v;
  }
  return buf;
}

TEST(SimdDiff, Avx2BackendIsActiveByDefaultOnThisCpu) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  BackendGuard guard;
  simd::refresh_backend_from_env();
  if (std::getenv("PASTRI_SIMD") == nullptr) {
    EXPECT_EQ(simd::active_backend(), Backend::Avx2);
  }
}

TEST(SimdDiff, EnvOverrideSelectsScalar) {
  BackendGuard guard;
  ::setenv("PASTRI_SIMD", "scalar", 1);
  simd::refresh_backend_from_env();
  EXPECT_EQ(simd::active_backend(), Backend::Scalar);
  ::setenv("PASTRI_SIMD", "avx2", 1);
  simd::refresh_backend_from_env();
  if (avx2_available()) {
    EXPECT_EQ(simd::active_backend(), Backend::Avx2);
  } else {
    EXPECT_EQ(simd::active_backend(), Backend::Scalar);
  }
  ::unsetenv("PASTRI_SIMD");
}

TEST(SimdDiff, ScanKernelsMatchAcrossSizesAndOffsets) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  const simd::EncodeKernels& s = simd::kScalarKernels;
  const simd::EncodeKernels& v = simd::kAvx2Kernels;
  for (std::size_t n = 1; n <= 100; ++n) {
    for (std::size_t pad = 0; pad < 4; ++pad) {
      const auto buf =
          make_payload(n, pad, static_cast<std::uint32_t>(n * 4 + pad),
                       /*with_edges=*/true);
      const double* x = buf.data() + pad;
      const double m_s = s.abs_max(x, n);
      const double m_v = v.abs_max(x, n);
      // Bitwise comparison: +0.0 vs -0.0 and NaN handling must agree.
      EXPECT_EQ(std::memcmp(&m_s, &m_v, sizeof m_s), 0)
          << "abs_max n=" << n << " pad=" << pad;
      EXPECT_EQ(s.find_first_abs_eq(x, n, m_s),
                v.find_first_abs_eq(x, n, m_s))
          << "find_first_abs_eq n=" << n << " pad=" << pad;
      for (double bound : {0.0, 1e-12, 0.25, 1e299}) {
        EXPECT_EQ(s.any_abs_above(x, n, bound), v.any_abs_above(x, n, bound))
            << "any_abs_above n=" << n << " pad=" << pad << " b=" << bound;
      }
    }
  }
}

TEST(SimdDiff, QuantizeSignedMatchesAcrossSizesOffsetsAndWidths) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  const simd::EncodeKernels& s = simd::kScalarKernels;
  const simd::EncodeKernels& v = simd::kAvx2Kernels;
  for (std::size_t n = 1; n <= 100; n += (n < 12 ? 1 : 7)) {
    for (std::size_t pad = 0; pad < 4; ++pad) {
      const auto buf =
          make_payload(n, pad, static_cast<std::uint32_t>(1000 + n + pad),
                       /*with_edges=*/true);
      const double* x = buf.data() + pad;
      for (unsigned nbits : {2u, 11u, 31u, 52u, 54u}) {
        for (double binsize : {2e-10, 1.0, 0.5, 1e-300}) {
          std::vector<std::int64_t> qs(n), qv(n);
          std::vector<double> rs(n), rv(n);
          s.quantize_signed(x, n, binsize, nbits, binsize, qs.data(),
                            rs.data());
          v.quantize_signed(x, n, binsize, nbits, binsize, qv.data(),
                            rv.data());
          EXPECT_EQ(qs, qv) << "n=" << n << " pad=" << pad
                            << " nbits=" << nbits << " bin=" << binsize;
          EXPECT_EQ(std::memcmp(rs.data(), rv.data(), n * sizeof(double)),
                    0)
              << "recon n=" << n << " nbits=" << nbits;
        }
      }
    }
  }
}

TEST(SimdDiff, QuantizeSignedEdgeValuesExactly) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  // Every edge value at every lane position of a 4-wide vector.
  const auto edges = edge_values();
  for (std::size_t lane = 0; lane < 4; ++lane) {
    for (double e : edges) {
      std::vector<double> x(4, 0.25);
      x[lane] = e;
      std::vector<std::int64_t> qs(4), qv(4);
      std::vector<double> rs(4), rv(4);
      simd::kScalarKernels.quantize_signed(x.data(), 4, 1.0, 54, 1.0,
                                           qs.data(), rs.data());
      simd::kAvx2Kernels.quantize_signed(x.data(), 4, 1.0, 54, 1.0,
                                         qv.data(), rv.data());
      EXPECT_EQ(qs, qv) << "edge=" << e << " lane=" << lane;
    }
  }
}

TEST(SimdDiff, EcqResidualMatchesAndCountsAreExact) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  std::mt19937 rng(99);
  for (std::size_t sbs = 1; sbs <= 100; sbs += (sbs < 10 ? 1 : 9)) {
    for (std::size_t nsb : {1, 3, 16}) {
      const std::size_t n = nsb * sbs;
      auto buf = make_payload(n, 0, static_cast<std::uint32_t>(sbs * 131),
                              /*with_edges=*/true);
      std::vector<double> p_hat(sbs), s_hat(nsb);
      std::uniform_real_distribution<double> uni(-1.0, 1.0);
      for (auto& p : p_hat) p = uni(rng);
      for (auto& sc : s_hat) sc = uni(rng);
      const double binsize = 2e-4;
      std::vector<std::int64_t> es(n), ev(n);
      simd::EcqStats sts, stv;
      simd::kScalarKernels.ecq_residual(buf.data(), nsb, sbs, p_hat.data(),
                                        s_hat.data(), binsize, es.data(),
                                        &sts);
      simd::kAvx2Kernels.ecq_residual(buf.data(), nsb, sbs, p_hat.data(),
                                      s_hat.data(), binsize, ev.data(),
                                      &stv);
      ASSERT_EQ(es, ev) << "sbs=" << sbs << " nsb=" << nsb;
      EXPECT_EQ(sts.max_magnitude, stv.max_magnitude);
      EXPECT_EQ(sts.num_outliers, stv.num_outliers);
      EXPECT_EQ(sts.num_plus1, stv.num_plus1);
      EXPECT_EQ(sts.num_minus1, stv.num_minus1);
      // The stats must also agree with a direct count of the output.
      std::size_t outliers = 0, plus1 = 0, minus1 = 0;
      std::uint64_t max_mag = 0;
      for (std::int64_t e : es) {
        if (e == 0) continue;
        ++outliers;
        if (e == 1) ++plus1;
        if (e == -1) ++minus1;
        const std::uint64_t mag =
            e > 0 ? static_cast<std::uint64_t>(e)
                  : static_cast<std::uint64_t>(-(e + 1)) + 1;
        if (mag > max_mag) max_mag = mag;
      }
      EXPECT_EQ(sts.num_outliers, outliers);
      EXPECT_EQ(sts.num_plus1, plus1);
      EXPECT_EQ(sts.num_minus1, minus1);
      EXPECT_EQ(sts.max_magnitude, max_mag);
    }
  }
}

TEST(SimdDiff, CountedDenseBitsEqualWalkedDenseBits) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> small(-40, 40);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng() % 300;
    std::vector<std::int64_t> ecq(n);
    std::size_t outliers = 0, plus1 = 0, minus1 = 0;
    unsigned ecb_max = 1;
    for (auto& e : ecq) {
      e = rng() % 3 == 0 ? small(rng) : (rng() % 2 == 0 ? 0 : 1);
      if (e == 0) continue;
      ++outliers;
      if (e == 1) ++plus1;
      if (e == -1) ++minus1;
      ecb_max = std::max(ecb_max, ecq_bin(e));
    }
    for (EcqTree t : {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                      EcqTree::Tree5}) {
      ASSERT_TRUE(ecq_dense_bits_countable(t));
      EXPECT_EQ(ecq_encoded_bits_counted(t, n, outliers, plus1, minus1,
                                         ecb_max),
                ecq_encoded_bits(t, ecq, ecb_max))
          << ecq_tree_name(t) << " trial=" << trial;
    }
    EXPECT_FALSE(ecq_dense_bits_countable(EcqTree::Tree4));
  }
}

TEST(SimdDiff, EncodeRunBitIdenticalToPerSymbolEncode) {
  std::mt19937 rng(13);
  std::uniform_int_distribution<std::int64_t> wide(-5000, 5000);
  for (EcqTree t : {EcqTree::Tree1, EcqTree::Tree2, EcqTree::Tree3,
                    EcqTree::Tree4, EcqTree::Tree5}) {
    for (unsigned ecb_max : {2u, 6u, 14u, 40u, 64u}) {
      std::vector<std::int64_t> ecq(977);
      for (auto& e : ecq) {
        const int c = static_cast<int>(rng() % 10);
        e = c < 6 ? 0 : (c < 8 ? (rng() % 2 ? 1 : -1) : wide(rng));
        if (ecq_bin(e) > ecb_max) e = 0;
      }
      bitio::BitWriter ref, run;
      for (std::int64_t v : ecq) ecq_encode_fast(ref, t, v, ecb_max);
      ecq_encode_run(run, t, ecq, ecb_max);
      EXPECT_EQ(ref.bit_count(), run.bit_count())
          << ecq_tree_name(t) << " ecb=" << ecb_max;
      const auto ref_bytes = ref.finish_view();
      const auto run_bytes = run.finish_view();
      ASSERT_EQ(ref_bytes.size(), run_bytes.size());
      EXPECT_TRUE(std::memcmp(ref_bytes.data(), run_bytes.data(),
                              ref_bytes.size()) == 0)
          << ecq_tree_name(t) << " ecb=" << ecb_max;
    }
  }
}

/// End-to-end: identical compressed streams from both backends for all
/// five metrics, both bound modes, several geometries (including
/// sub-block sizes that are not multiples of the vector width).
TEST(SimdDiff, FullStreamsBitIdenticalAcrossBackends) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  BackendGuard guard;
  const BlockSpec specs[] = {{1, 1}, {3, 5}, {16, 24}, {10, 100}, {7, 33}};
  for (const BlockSpec& spec : specs) {
    for (ScalingMetric metric : {ScalingMetric::FR, ScalingMetric::ER,
                                 ScalingMetric::AR, ScalingMetric::AAR,
                                 ScalingMetric::IS}) {
      for (BoundMode mode : {BoundMode::Absolute, BoundMode::BlockRelative}) {
        Params p;
        p.metric = metric;
        p.bound_mode = mode;
        p.error_bound = mode == BoundMode::Absolute ? 1e-10 : 1e-8;
        const std::size_t blocks = 24;
        auto data = make_payload(blocks * spec.block_size(), 0,
                                 static_cast<std::uint32_t>(
                                     spec.block_size() * 17 +
                                     static_cast<unsigned>(metric)),
                                 /*with_edges=*/false);
        // A few all-zero and all-edge blocks in the mix.
        std::fill_n(data.begin(), spec.block_size(), 0.0);
        simd::force_backend(Backend::Scalar);
        const auto scalar_stream = compress(data, spec, p);
        simd::force_backend(Backend::Avx2);
        const auto avx2_stream = compress(data, spec, p);
        ASSERT_EQ(scalar_stream, avx2_stream)
            << scaling_metric_name(metric) << " mode="
            << static_cast<int>(mode) << " nsb=" << spec.num_sub_blocks
            << " sbs=" << spec.sub_block_size;
        // And the stream still round-trips within bound.
        const auto back = decompress(avx2_stream);
        ASSERT_EQ(back.size(), data.size());
      }
    }
  }
}

/// Sub-block sizes 1..100 under ER (the shipped configuration), scalar
/// vs AVX2, one block spec per size -- the fused path's geometry sweep.
TEST(SimdDiff, ErStreamsBitIdenticalForAllSubBlockSizes) {
  if (!avx2_available()) GTEST_SKIP() << "no AVX2 backend on this host";
  BackendGuard guard;
  Params p;
  p.error_bound = 1e-10;
  for (std::size_t sbs = 1; sbs <= 100; ++sbs) {
    const BlockSpec spec{5, sbs};
    auto data = make_payload(8 * spec.block_size(), 0,
                             static_cast<std::uint32_t>(sbs),
                             /*with_edges=*/true);
    // NaN/Inf would (identically) poison both streams but break the
    // round-trip check; strip non-finite values, keep the rest.
    for (auto& v : data) {
      if (!std::isfinite(v)) v = 1e-9;
    }
    simd::force_backend(Backend::Scalar);
    const auto scalar_stream = compress(data, spec, p);
    simd::force_backend(Backend::Avx2);
    const auto avx2_stream = compress(data, spec, p);
    ASSERT_EQ(scalar_stream, avx2_stream) << "sbs=" << sbs;
  }
}

}  // namespace
}  // namespace pastri
